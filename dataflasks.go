// Package dataflasks is an epidemic, dependable key-value substrate —
// a from-scratch Go implementation of DATAFLASKS (Maia, Matos, Vilaça,
// Pereira, Oliveira, Rivière; DSN 2013).
//
// DataFlasks is the persistent bottom layer of a stratified store: it
// assumes an upper layer (the paper's DataDroplets) that totally orders
// writes per key by attaching version numbers, and in exchange offers
// extreme scale and churn tolerance by being fully unstructured:
//
//   - membership is a gossip Peer Sampling Service (Cyclon/Newscast);
//   - the system autonomously partitions itself into k slices ordered
//     by node capacity, with no coordination (distributed slicing);
//   - a key belongs to a slice, and every node of that slice stores it
//     — the slice size is the replication factor;
//   - requests are routed by bounded epidemic flooding over the random
//     views until they hit the target slice, then disseminated
//     intra-slice only;
//   - anti-entropy between slice-mates keeps replicas converged under
//     churn.
//
// Three deployment modes share the identical protocol code:
//
//   - Cluster: an in-process cluster of goroutine-driven nodes,
//     for embedding and tests (this package).
//   - Node: a real node on TCP (cmd/flasksd).
//   - internal/lab: thousands of nodes in a deterministic
//     discrete-event simulation (cmd/flaskbench reproduces the paper's
//     evaluation with it).
package dataflasks

import (
	"time"

	"dataflasks/internal/core"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// Latest is the version sentinel for newest-wins reads.
const Latest = store.Latest

// AllVersions is the version sentinel for whole-key deletes: every
// stored version of the key is removed on each replica (Redis DEL
// semantics). Valid in Delete, DeleteAsync and KeyVersion; rejected by
// writes.
const AllVersions = store.AllVersions

// Object is one (key, version, value) triple, the unit of batch writes
// (Client.PutBatch).
type Object = store.Object

// KeyVersion names one (key, version) pair, the unit of batch deletes
// (Client.DeleteBatch). Version may be Latest to remove each replica's
// newest stored version of the key, or AllVersions to remove the whole
// key.
type KeyVersion struct {
	Key     string
	Version uint64
}

// NodeID identifies a node in a cluster.
type NodeID = transport.NodeID

// PSS selects the peer-sampling protocol.
type PSS int

// Peer-sampling choices.
const (
	// Cyclon is the default: shuffle-based membership with strong
	// self-healing (the view turnover evicts dead peers fast).
	Cyclon PSS = iota
	// Newscast trades some in-degree uniformity for simplicity and
	// very fast news propagation.
	Newscast
)

// Slicer selects the slice-manager protocol.
type Slicer int

// Engine selects the persistence engine behind a node's data
// directory.
type Engine int

// Engine choices.
const (
	// LogEngine (the default for nodes with a data directory) is the
	// log-structured engine: segmented append-only files, checksummed
	// records, group-commit fsync and background compaction.
	LogEngine Engine = iota
	// DiskEngine is the file-per-object engine — simple and
	// debuggable, but one file (and with Fsync one fsync) per write.
	DiskEngine
	// MemoryEngine keeps objects in RAM even when a data directory is
	// configured.
	MemoryEngine
)

// Slicer choices.
const (
	// RankSlicer estimates each node's capacity rank from the gossip
	// stream at zero message cost (the DSlead-style default).
	RankSlicer Slicer = iota
	// SwapSlicer is Jelasity–Kermarrec ordered slicing (two messages
	// per node per round).
	SwapSlicer
	// StaticSlicer hashes the node id — the paper's "coin toss"
	// baseline; it cannot rebalance after correlated failures.
	StaticSlicer
)

// Config tunes a DataFlasks deployment. The zero value is a working
// configuration for a mid-sized cluster; Slices and SystemSize are the
// knobs most deployments set.
type Config struct {
	// Slices is the number of slices k; the expected replication
	// factor is N/k (default 10, the paper's evaluation setting).
	Slices int
	// WireCodec selects the frame encoding live fabrics use on the
	// wire: "binary" (hand-rolled, near zero-allocation; the default)
	// or "gob" (the original reflection-based encoding, kept for
	// rolling upgrades). Peers negotiate per connection and every
	// frame is version-tagged, so mixed-codec clusters interoperate.
	// Simulated and in-process fabrics pass pointers and ignore this.
	WireCodec string
	// SystemSize is the expected node count N, used to size gossip
	// fanout and flood TTLs. Zero enables the built-in gossip size
	// estimator instead.
	SystemSize int
	// Capacity is this node's slicing attribute (for example free
	// disk space). Zero draws a stable pseudo-capacity from the node
	// id.
	Capacity float64
	// PSS selects the membership protocol.
	PSS PSS
	// Slicer selects the slice manager.
	Slicer Slicer
	// PutAcks is how many replica acknowledgements complete a write
	// (default 1; -1 makes writes fire-and-forget).
	PutAcks int
	// AntiEntropy enables replica repair between slice-mates
	// (default on; the zero value enables it).
	DisableAntiEntropy bool
	// MaxPushBytes bounds the value bytes per anti-entropy repair push
	// message (default 1 MiB); a single larger object still ships
	// alone.
	MaxPushBytes int
	// RepairRateBytes caps repair push bytes per node per anti-entropy
	// round (a token bucket), so background repair cannot starve
	// foreground traffic. 0 = unlimited.
	RepairRateBytes int
	// BloomFullEvery is the repair digest cadence: every Nth
	// anti-entropy round exchanges complete header lists; the rounds
	// between open with a compact Bloom summary (~10 bits per object on
	// the wire instead of the full key). The periodic full round
	// guarantees convergence past the filter's ~1% false positives.
	// Default 8; 1 makes every round full-header (Bloom disabled).
	BloomFullEvery int
	// EvictForeign lets a node drop objects outside its slice after a
	// slice change (off by default, like the paper's conservative
	// stance).
	EvictForeign bool
	// Bootstrap makes the node recover its slice's data in bulk at
	// startup: it asks a slice-mate for whole sealed segments
	// (internal/bootstrap) and lets anti-entropy mop up the delta. Off
	// by default; set it on a node (re)joining a cluster that already
	// holds data.
	Bootstrap bool
	// DisableBootstrap removes the segment-streaming protocol entirely:
	// the node neither joins via segments nor serves them to joiners.
	DisableBootstrap bool
	// BootstrapRateBytes caps the bytes a node streams to joiners per
	// gossip round (0 = 1 MiB default, negative = unlimited), so serving
	// a cold joiner cannot starve foreground traffic.
	BootstrapRateBytes int
	// Engine selects the persistence engine used with a data
	// directory (default LogEngine).
	Engine Engine
	// Fsync makes writes block until durable; the log engine coalesces
	// concurrent writers into one fsync (group commit).
	Fsync bool
	// SegmentMaxBytes is the log engine's segment roll size
	// (default 64 MiB).
	SegmentMaxBytes int64
	// CommitWindow is the log engine's group-commit window (default 0:
	// batches form naturally while an fsync is in flight).
	CommitWindow time.Duration
	// CompactLiveRatio is the live-byte ratio under which the log
	// engine compacts sealed segments (default 0.5; negative
	// disables).
	CompactLiveRatio float64
	// CompactRateBytesPerSec throttles the log engine's background
	// compaction copy I/O in bytes per second (0 = unlimited), keeping
	// maintenance from starving foreground requests.
	CompactRateBytesPerSec int64
	// DataShards partitions the node's data plane (puts, gets, deletes
	// and their batches) across this many shard goroutines by key hash,
	// each with its own mailbox and coalescing window, while the
	// epidemic control plane stays single-threaded. Raise it on
	// multi-core hosts saturated by data traffic; keep the default on
	// small nodes. 0 or 1 means one shard (the classic runtime).
	DataShards int
	// Seed makes a cluster's randomness reproducible (0 = fixed
	// default seed).
	Seed uint64
}

// coreConfig translates the public configuration to the internal one.
func (c Config) coreConfig() core.Config {
	cc := core.Config{
		Slices:       c.Slices,
		SystemSize:   c.SystemSize,
		Capacity:     c.Capacity,
		Seed:         c.Seed,
		EvictForeign: c.EvictForeign,
		DataShards:   c.DataShards,
	}
	switch c.PSS {
	case Newscast:
		cc.PSS = core.PSSNewscast
	default:
		cc.PSS = core.PSSCyclon
	}
	switch c.Slicer {
	case SwapSlicer:
		cc.Slicer = core.SlicerSwap
	case StaticSlicer:
		cc.Slicer = core.SlicerStatic
	default:
		cc.Slicer = core.SlicerRank
	}
	if c.DisableAntiEntropy {
		cc.AntiEntropyEvery = -1
	}
	cc.AntiEntropyMaxPushBytes = c.MaxPushBytes
	cc.AntiEntropyRateBytes = c.RepairRateBytes
	cc.AntiEntropyFullEvery = c.BloomFullEvery
	cc.Bootstrap = c.Bootstrap
	cc.DisableBootstrap = c.DisableBootstrap
	cc.BootstrapRateBytes = c.BootstrapRateBytes
	cc.Store = core.StoreConfig{
		Fsync:                  c.Fsync,
		SegmentMaxBytes:        c.SegmentMaxBytes,
		CommitWindow:           c.CommitWindow,
		CompactLiveRatio:       c.CompactLiveRatio,
		CompactRateBytesPerSec: c.CompactRateBytesPerSec,
	}
	switch c.Engine {
	case DiskEngine:
		cc.Store.Engine = core.StoreDisk
	case MemoryEngine:
		cc.Store.Engine = core.StoreMemory
	default:
		cc.Store.Engine = core.StoreLog
	}
	return cc
}

// slicesOrDefault returns the configured slice count with the default
// applied (clients need it to group batch puts per target slice).
func (c Config) slicesOrDefault() int {
	if c.Slices > 0 {
		return c.Slices
	}
	return 10
}

// clientPutAcks translates the public ack knob for the client library.
func (c Config) clientPutAcks() int {
	switch {
	case c.PutAcks < 0:
		return -1 // fire-and-forget
	case c.PutAcks == 0:
		return 1
	default:
		return c.PutAcks
	}
}
