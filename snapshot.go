package dataflasks

import (
	"context"
	"math/rand/v2"

	"dataflasks/internal/bootstrap"
	"dataflasks/internal/transport"
)

// SnapshotResult summarizes a completed snapshot download.
type SnapshotResult struct {
	// Segments is how many sealed segments the snapshot holds.
	Segments int
	// Bytes is the total segment payload downloaded and verified.
	Bytes int64
}

// DownloadSnapshot pulls one running node's sealed segments into dir as
// a crash-consistent, restorable snapshot (`flaskctl snapshot`) without
// stopping the node. seed is an "id@host:port" contact; every chunk and
// every completed segment is CRC-verified against the node's manifest,
// and the manifest file is written last, so an interrupted download
// leaves no usable snapshot. The result restores via
// NodeConfig.RestoreDir (flasksd -restore).
//
// onProgress, when non-nil, observes verified bytes per segment as they
// land.
func DownloadSnapshot(ctx context.Context, seed, dir string, cfg Config, onProgress func(segment uint64, bytes int64)) (SnapshotResult, error) {
	var res SnapshotResult
	sid, addr, err := ParseSeed(seed)
	if err != nil {
		return res, err
	}
	codec, err := wireCodecFor(cfg.WireCodec)
	if err != nil {
		return res, err
	}
	id := clientIDBase + NodeID(rand.Uint32N(1<<24))
	mailbox := make(chan transport.Envelope, defaultMailbox)
	handler := func(env transport.Envelope) {
		select {
		case mailbox <- env:
		default:
			// Overflow drops are safe: the download protocol re-fetches
			// at its verified offset on any gap.
		}
	}
	tcpNet, err := transport.ListenTCP(id, "127.0.0.1:0", "", transport.TCPConfig{Codec: codec}, handler)
	if err != nil {
		return res, err
	}
	defer tcpNet.Close()
	tcpNet.Learn(sid, addr)

	man, err := bootstrap.Download(ctx, tcpNet.Sender(), sid, mailbox, dir, bootstrap.DownloadOptions{
		OnProgress: onProgress,
	})
	if err != nil {
		return res, err
	}
	res.Segments = len(man.Segments)
	for _, s := range man.Segments {
		res.Bytes += s.Bytes
	}
	return res, nil
}
