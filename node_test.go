package dataflasks_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dataflasks"
)

func TestTCPClusterPutGet(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n = 8
	cfg := dataflasks.Config{Slices: 2, SystemSize: n, Seed: 5}

	nodes := make([]*dataflasks.Node, 0, n)
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})

	first, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID: 1, Bind: "127.0.0.1:0", Config: cfg,
		RoundPeriod: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartNode 1: %v", err)
	}
	nodes = append(nodes, first)
	seed := fmt.Sprintf("1@%s", first.Addr())

	for i := 2; i <= n; i++ {
		nd, err := dataflasks.StartNode(dataflasks.NodeConfig{
			ID: dataflasks.NodeID(i), Bind: "127.0.0.1:0",
			Seeds: []string{seed}, Config: cfg,
			RoundPeriod: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartNode %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}

	// Let gossip spread addresses and slices.
	time.Sleep(2 * time.Second)

	for _, nd := range nodes {
		if nd.PeersKnown() < n/2 {
			t.Errorf("node %s knows only %d peers", nd.ID(), nd.PeersKnown())
		}
	}

	cl, err := dataflasks.ConnectClient("127.0.0.1:0", []string{seed}, cfg)
	if err != nil {
		t.Fatalf("ConnectClient: %v", err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Put(ctx, "tcp-key", 1, []byte("over the wire")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := cl.Get(ctx, "tcp-key", 1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "over the wire" {
		t.Fatalf("Get = %q, want %q", got, "over the wire")
	}

	// The write must replicate beyond one node. Intra-slice copies ride
	// the event loop's accumulation window and land at each mate's next
	// tick, so poll for up to a few rounds instead of sampling once.
	deadline := time.Now().Add(3 * time.Second)
	for {
		total := 0
		for _, nd := range nodes {
			total += nd.StoredObjects()
		}
		if total >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("object stored on %d nodes total, want >= 2", total)
			break
		}
		time.Sleep(30 * time.Millisecond)
	}
}
