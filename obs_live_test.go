package dataflasks_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dataflasks"
	"dataflasks/internal/obs"
)

func scrape(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestObsLiveCluster boots a cluster with the observability plane on
// and pins the three live contracts end to end: /readyz flips 503->200
// when the node becomes ready, /metrics serves a conformant exposition,
// and a traced put is reconstructible from the /trace journals of at
// least three nodes.
func TestObsLiveCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("live observability cluster in -short mode")
	}
	const n = 4
	cfg := dataflasks.Config{Slices: 1, SystemSize: n, Seed: 11}

	nodes := make([]*dataflasks.Node, 0, n)
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})

	first, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID: 1, Bind: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0",
		Config: cfg, RoundPeriod: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartNode 1: %v", err)
	}
	nodes = append(nodes, first)
	if first.HTTPAddr() == "" {
		t.Fatal("node started with HTTPAddr but exposes no observability address")
	}

	// The rank slicer cannot place the node before gossip rounds run,
	// so immediately after startup readiness must be refused with a
	// reason.
	if code, body := scrape(t, first.HTTPAddr(), "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("fresh node /readyz = %d %q, want 503", code, body)
	} else if !strings.Contains(body, "not ready") {
		t.Fatalf("/readyz refusal carries no reason: %q", body)
	}

	seed := fmt.Sprintf("1@%s", first.Addr())
	for i := 2; i <= n; i++ {
		nd, err := dataflasks.StartNode(dataflasks.NodeConfig{
			ID: dataflasks.NodeID(i), Bind: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0",
			Seeds: []string{seed}, Config: cfg,
			RoundPeriod: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartNode %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}

	// Every node must eventually report ready once slices are assigned
	// and bootstrap completes.
	deadline := time.Now().Add(20 * time.Second)
	for _, nd := range nodes {
		for {
			code, _ := scrape(t, nd.HTTPAddr(), "/readyz")
			if code == http.StatusOK {
				if !nd.Ready() {
					t.Errorf("node %s serves 200 on /readyz but Ready() is false", nd.ID())
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became ready", nd.ID())
			}
			time.Sleep(30 * time.Millisecond)
		}
	}

	// A live scrape must survive the strict exposition validator.
	if code, body := scrape(t, first.HTTPAddr(), "/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	} else if _, err := obs.ParseExposition([]byte(body)); err != nil {
		t.Fatalf("live /metrics fails validation: %v", err)
	}

	cl, err := dataflasks.ConnectClient("127.0.0.1:0", []string{seed}, cfg)
	if err != nil {
		t.Fatalf("ConnectClient: %v", err)
	}
	defer cl.Close()

	const traceID = 0xABCDE
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Put(ctx, "traced-key", 1, []byte("traced"), dataflasks.WithTraceID(traceID)); err != nil {
		t.Fatalf("traced Put: %v", err)
	}

	// The traced put must be reconstructible across the cluster: its
	// trace id has to show up in at least three nodes' journals (entry
	// apply, relays, and the intra-slice copies at later ticks).
	type dump struct {
		Node   uint64 `json:"node"`
		Events []struct {
			Kind    string `json:"kind"`
			TraceID uint64 `json:"trace_id"`
			Key     string `json:"key"`
		} `json:"events"`
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		journaled, applied := 0, 0
		for _, nd := range nodes {
			code, body := scrape(t, nd.HTTPAddr(), fmt.Sprintf("/trace?id=%d", traceID))
			if code != http.StatusOK {
				t.Fatalf("/trace on node %s = %d", nd.ID(), code)
			}
			var d dump
			if err := json.Unmarshal([]byte(body), &d); err != nil {
				t.Fatalf("/trace on node %s is not JSON: %v\n%s", nd.ID(), err, body)
			}
			if len(d.Events) == 0 {
				continue
			}
			journaled++
			for _, ev := range d.Events {
				if ev.TraceID != traceID {
					t.Fatalf("foreign event leaked through ?id= filter on node %s: %+v", nd.ID(), ev)
				}
				if ev.Kind == "put_apply" && ev.Key == "traced-key" {
					applied++
					break
				}
			}
		}
		if journaled >= 3 && applied >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("traced put visible in %d journals (%d applies), want >= 3 journals", journaled, applied)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
