package dataflasks_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dataflasks"
)

// TestClusterShardHammer storms a sharded in-process cluster with
// concurrent clients mixing puts, gets, deletes and batch puts while
// membership churns underneath: a cold node joins and an original one
// crashes mid-hammer. The point is the race detector's view of the
// shard runtime — per-shard mailboxes, coalescing windows and counters
// racing against the control plane's gossip, slicing and anti-entropy
// — so it runs (reduced) even in -short CI.
func TestClusterShardHammer(t *testing.T) {
	c := startCluster(t, 20, dataflasks.Config{Slices: 3, DataShards: 4, Seed: 9})
	time.Sleep(500 * time.Millisecond)

	iters := 120
	if testing.Short() {
		iters = 30
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const workers = 4
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cl, err := c.NewClient()
		if err != nil {
			t.Fatalf("NewClient %d: %v", w, err)
		}
		wg.Add(1)
		go func(w int, cl *dataflasks.Client) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("hammer-%d", (w*iters+i)%64)
				switch i % 4 {
				case 0:
					if err := cl.Put(ctx, key, uint64(i+1), []byte("v")); err != nil {
						errs <- fmt.Errorf("worker %d put %s: %w", w, key, err)
						return
					}
				case 1:
					// Concurrent deletes make misses legitimate.
					if _, _, err := cl.GetLatest(ctx, key); err != nil && !errors.Is(err, dataflasks.ErrNotFound) {
						errs <- fmt.Errorf("worker %d get %s: %w", w, key, err)
						return
					}
				case 2:
					objs := []dataflasks.Object{
						{Key: key, Version: uint64(i + 2), Value: []byte("b1")},
						{Key: fmt.Sprintf("hammer-b-%d", i%64), Version: uint64(i + 1), Value: []byte("b2")},
					}
					if err := cl.PutBatch(ctx, objs); err != nil {
						errs <- fmt.Errorf("worker %d putbatch: %w", w, err)
						return
					}
				case 3:
					if err := cl.Delete(ctx, key, uint64(i)); err != nil {
						errs <- fmt.Errorf("worker %d delete %s: %w", w, key, err)
						return
					}
				}
			}
		}(w, cl)
	}

	// Churn while the hammer runs: one cold joiner, one crash.
	time.Sleep(100 * time.Millisecond)
	if _, err := c.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := c.RemoveNode(c.NodeIDs()[2]); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLiveNodeShardHammer is the TCP variant with persistence in the
// loop: log-engine stores with tiny segments and an aggressive compact
// threshold (so compaction runs during the hammer), sharded data
// planes, a cold bootstrap joiner streaming segments mid-traffic, and
// a full Close at the end — which must drain every shard mailbox
// before the stores shut down.
func TestLiveNodeShardHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP hammer in -short mode")
	}
	const n = 4
	cfg := dataflasks.Config{
		Slices: 2, SystemSize: n + 1, Seed: 11,
		DataShards:       4,
		Engine:           dataflasks.LogEngine,
		SegmentMaxBytes:  32 << 10,
		CompactLiveRatio: 0.9,
	}

	var nodes []*dataflasks.Node
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})
	first, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID: 1, Bind: "127.0.0.1:0", DataDir: t.TempDir(), Config: cfg,
		RoundPeriod: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartNode 1: %v", err)
	}
	nodes = append(nodes, first)
	seed := fmt.Sprintf("1@%s", first.Addr())
	for i := 2; i <= n; i++ {
		nd, err := dataflasks.StartNode(dataflasks.NodeConfig{
			ID: dataflasks.NodeID(i), Bind: "127.0.0.1:0", DataDir: t.TempDir(),
			Seeds: []string{seed}, Config: cfg, RoundPeriod: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartNode %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	time.Sleep(1500 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const workers = 3
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cl, err := dataflasks.ConnectClient("127.0.0.1:0", []string{seed}, cfg)
		if err != nil {
			t.Fatalf("ConnectClient %d: %v", w, err)
		}
		t.Cleanup(func() { cl.Close() })
		wg.Add(1)
		go func(w int, cl *dataflasks.Client) {
			defer wg.Done()
			val := make([]byte, 512) // push the tiny segments to roll
			for i := 0; i < 80; i++ {
				key := fmt.Sprintf("live-%d", (w*80+i)%48)
				switch i % 4 {
				case 0, 2:
					if err := cl.Put(ctx, key, uint64(i+1), val); err != nil {
						errs <- fmt.Errorf("worker %d put %s: %w", w, key, err)
						return
					}
				case 1:
					// A concurrently-deleted key only resolves ErrNotFound
					// after the full attempt budget; keep it tight or the
					// misses dominate the hammer's wall clock.
					if _, _, err := cl.GetLatest(ctx, key,
						dataflasks.WithTimeout(time.Second), dataflasks.WithRetries(1)); err != nil && !errors.Is(err, dataflasks.ErrNotFound) {
						errs <- fmt.Errorf("worker %d get %s: %w", w, key, err)
						return
					}
				case 3:
					if err := cl.Delete(ctx, key, uint64(i-2)); err != nil {
						errs <- fmt.Errorf("worker %d delete %s: %w", w, key, err)
						return
					}
				}
			}
		}(w, cl)
	}

	// Cold joiner bootstraps its slice by segment streaming while the
	// hammer is still writing.
	time.Sleep(200 * time.Millisecond)
	joinCfg := cfg
	joinCfg.Bootstrap = true
	joiner, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID: n + 1, Bind: "127.0.0.1:0", DataDir: t.TempDir(),
		Seeds: []string{seed}, Config: joinCfg, RoundPeriod: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartNode joiner: %v", err)
	}
	nodes = append(nodes, joiner)

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Explicit ordered shutdown (cleanup would also do it, but the
	// drain ordering is the point of the test): every Close must return
	// cleanly with shard mailboxes flushed into still-open stores.
	for _, nd := range nodes {
		if err := nd.Close(); err != nil {
			t.Errorf("Close %s: %v", nd.ID(), err)
		}
	}
	nodes = nil
}
