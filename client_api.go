package dataflasks

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/gossip"
	"dataflasks/internal/slicing"
	"dataflasks/internal/transport"
)

// ErrNotFound reports a read that produced no replica answer within
// its retry budget. Epidemic reads have no authoritative negative: the
// object may not exist, or every reached replica may be missing it.
var ErrNotFound = errors.New("dataflasks: not found")

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("dataflasks: client closed")

// ErrCanceled reports an operation abandoned via Op.Cancel (or a
// blocking wrapper's context expiring).
var ErrCanceled = errors.New("dataflasks: operation canceled")

// ErrInFlight is returned by Op.Err while the operation has not
// completed yet.
var ErrInFlight = errors.New("dataflasks: operation in flight")

// ErrTimeout reports an operation that exhausted its retry budget
// without enough replica replies — usually an unreachable or still
// converging cluster. Reads surface it as ErrNotFound instead (an
// epidemic read has no authoritative negative).
var ErrTimeout = client.ErrTimeout

// Client is the client API (paper §V): operations go to a
// load-balanced contact node, spread epidemically, and the multiple
// replies that come back are de-duplicated by request id.
//
// The API is future-based: PutAsync, GetAsync, DeleteAsync and
// PutBatchAsync return immediately with an *Op handle, so one client
// pipelines hundreds of in-flight operations over its single event
// loop. The blocking Put/Get/GetLatest/Delete/PutBatch methods are
// thin wrappers (start async, Wait, Cancel on context expiry) and stay
// source-compatible with the pre-futures API. Safe for concurrent use.
type Client struct {
	core   *client.Core
	period time.Duration
	slices int

	cmds chan func()
	done chan struct{}
	wg   sync.WaitGroup

	// dropped reports inbound replies discarded by a full mailbox; the
	// fabric owns the count (a SharedCounter incremented by the TCP
	// handler, or the in-process network's per-recipient counter).
	dropped func() uint64

	closeOnce sync.Once
}

// newLiveClient wraps the event-driven client core in a goroutine that
// owns it: mailbox messages, timeout ticks and API commands are
// serialized onto one loop, preserving the core's single-threaded
// contract. slices is the deployment's slice count (callers resolve
// the default via Config.slicesOrDefault), used to group batch puts
// per target slice; dropped reports the fabric's mailbox-overflow
// count for this client (nil for fabrics that never drop).
func newLiveClient(id NodeID, cfg client.Config, sender transport.Sender, lb client.LoadBalancer, mailbox <-chan transport.Envelope, period time.Duration, slices int, dropped func() uint64) *Client {
	c := &Client{
		core:    client.NewCore(id, cfg, sender, lb),
		period:  period,
		slices:  slices,
		cmds:    make(chan func(), 64),
		done:    make(chan struct{}),
		dropped: dropped,
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case env, ok := <-mailbox:
				if !ok {
					return
				}
				c.core.HandleMessage(env)
			case <-ticker.C:
				c.core.Tick()
			case cmd := <-c.cmds:
				cmd()
			case <-c.done:
				return
			}
		}
	}()
	return c
}

// Close stops the client loop. In-flight operations fail with
// ErrClientClosed.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
	})
	c.wg.Wait()
}

// Pending returns the number of operations currently in flight (0 on a
// closed client).
func (c *Client) Pending() int {
	res := make(chan int, 1)
	if err := c.submit(func() { res <- c.core.Pending() }); err != nil {
		return 0
	}
	select {
	case n := <-res:
		return n
	case <-c.done:
		return 0
	}
}

// MailboxDropped returns how many inbound replies were dropped because
// the client's mailbox overflowed (the event loop was too slow to
// drain it). Epidemic reply redundancy and retries cover the loss.
func (c *Client) MailboxDropped() uint64 {
	if c.dropped == nil {
		return 0
	}
	return c.dropped()
}

// submit runs fn on the client loop.
func (c *Client) submit(fn func()) error {
	select {
	case c.cmds <- fn:
		return nil
	case <-c.done:
		return ErrClientClosed
	}
}

// --- per-operation options --------------------------------------------------

// OpOption customizes one operation, overriding the client-level
// configuration for that call only.
type OpOption func(*opSettings)

type opSettings struct {
	opts client.Opts
	// timeout is converted to ticks against the client's period at
	// start time.
	timeout time.Duration
}

// WithAcks requires n distinct replica acknowledgements before a
// write (put, batch put or delete) completes. n < 1 is treated as 1;
// use WithFireAndForget for zero-ack writes.
func WithAcks(n int) OpOption {
	return func(s *opSettings) {
		if n < 1 {
			n = 1
		}
		s.opts.Acks = n
	}
}

// WithFireAndForget makes a write complete instantly without waiting
// for any replica acknowledgement (and tells replicas not to send
// one). The future resolves immediately.
func WithFireAndForget() OpOption {
	return func(s *opSettings) { s.opts.Acks = -1 }
}

// WithTimeout bounds each attempt of the operation to d before the
// client retries with a fresh contact (total worst-case latency is
// roughly d × (retries+1)). The duration is rounded up to the client's
// tick period.
func WithTimeout(d time.Duration) OpOption {
	return func(s *opSettings) { s.timeout = d }
}

// WithRetries sets how many fresh attempts follow a timed-out one
// (0 = fail after the first attempt).
func WithRetries(n int) OpOption {
	return func(s *opSettings) {
		if n <= 0 {
			s.opts.Retries = -1
			return
		}
		s.opts.Retries = n
	}
}

// WithTraceID stamps the operation with a non-zero trace id. Every
// node the request touches — entry point, relays, replicas — journals
// its lifecycle under that id in the node's /trace ring (served by the
// observability plane), so one put or get can be stitched across hops
// with `flaskctl trace`. Retried attempts keep the same id.
func WithTraceID(id uint64) OpOption {
	return func(s *opSettings) { s.opts.TraceID = id }
}

func (c *Client) resolveSettings(opts []OpOption) client.Opts {
	var s opSettings
	for _, o := range opts {
		o(&s)
	}
	if s.timeout > 0 {
		ticks := int((s.timeout + c.period - 1) / c.period)
		if ticks < 1 {
			ticks = 1
		}
		s.opts.TimeoutTicks = ticks
	}
	return s.opts
}

// --- futures ----------------------------------------------------------------

type apiKind int

const (
	kindPut apiKind = iota + 1
	kindGet
	kindDelete
	kindBatch
	kindDeleteBatch
)

// Op is the handle of one asynchronous operation. Completion is
// observable three ways: Done (a channel for select loops), Wait
// (blocking with a context) and Err (non-blocking poll). Result
// accessors (Value, Version, Acks, Retries) are valid once Done is
// closed. Safe for concurrent use.
type Op struct {
	c       *Client
	kind    apiKind
	key     string
	version uint64
	nObjs   int

	done chan struct{}

	// Written on the client loop goroutine (or before the Op escapes)
	// strictly before done is closed; readers synchronize on done.
	res      client.Result
	reqID    gossip.RequestID
	finished bool
}

// finish records the result and releases waiters. It must only run on
// the client loop goroutine (or, for ops that failed to start, before
// the Op is returned to the caller).
func (o *Op) finish(r client.Result) {
	if o.finished {
		return
	}
	o.finished = true
	o.res = r
	close(o.done)
}

// Done returns a channel closed when the operation completes (with
// either outcome). It never closes if the client is closed first; pair
// it with the client's lifetime in select loops, or use Wait.
func (o *Op) Done() <-chan struct{} { return o.done }

// Wait blocks until the operation completes, ctx expires or the client
// closes, returning the operation error, ctx.Err() or ErrClientClosed
// respectively. A context expiry does NOT cancel the operation — the
// future stays valid and may still complete; call Cancel to abandon
// it.
func (o *Op) Wait(ctx context.Context) error {
	select {
	case <-o.done:
		return o.err()
	default:
	}
	select {
	case <-o.done:
		return o.err()
	case <-ctx.Done():
		return ctx.Err()
	case <-o.c.done:
		return ErrClientClosed
	}
}

// Err polls the operation: ErrInFlight while incomplete, then nil or
// the operation's error.
func (o *Op) Err() error {
	select {
	case <-o.done:
		return o.err()
	default:
		return ErrInFlight
	}
}

// Value returns a get's value (nil until Done closes, and for other
// kinds).
func (o *Op) Value() []byte {
	select {
	case <-o.done:
		return o.res.Value
	default:
		return nil
	}
}

// Version returns the version the operation resolved to — for
// GetLatestAsync, the newest version found (0 until Done closes).
func (o *Op) Version() uint64 {
	select {
	case <-o.done:
		return o.res.Version
	default:
		return 0
	}
}

// Acks returns how many distinct replicas acknowledged a write (0
// until Done closes).
func (o *Op) Acks() int {
	select {
	case <-o.done:
		return o.res.Acks
	default:
		return 0
	}
}

// Applied returns, for batch operations, the largest per-replica
// application count any acknowledgement reported: objects stored for a
// batch put, objects that existed and were removed for a batch delete
// (0 until Done closes, and for single-object kinds). Replicas may
// disagree while epidemic convergence is in progress; this is the most
// complete replica's view.
func (o *Op) Applied() int {
	select {
	case <-o.done:
		return o.res.Applied
	default:
		return 0
	}
}

// Retries returns how many times the operation was re-issued (valid
// once Done closes).
func (o *Op) Retries() int {
	select {
	case <-o.done:
		return o.res.Retries
	default:
		return 0
	}
}

// Cancel abandons the operation: it is removed from the client's
// pending table immediately (instead of lingering until its retry
// budget expires) and the future resolves to ErrCanceled. Canceling a
// completed operation is a no-op.
func (o *Op) Cancel() {
	_ = o.c.submit(func() {
		if o.finished {
			return
		}
		o.c.core.Cancel(o.reqID)
		o.finish(client.Result{Key: o.key, Version: o.version, Err: ErrCanceled})
	})
}

// err maps the raw core result to the public error surface.
func (o *Op) err() error {
	r := o.res
	if r.Err == nil {
		return nil
	}
	if errors.Is(r.Err, ErrCanceled) || errors.Is(r.Err, ErrClientClosed) {
		return r.Err
	}
	switch o.kind {
	case kindGet:
		if errors.Is(r.Err, client.ErrTimeout) {
			return fmt.Errorf("dataflasks: get %q: %w", o.key, ErrNotFound)
		}
		return fmt.Errorf("dataflasks: get %q: %w", o.key, r.Err)
	case kindDelete:
		return fmt.Errorf("dataflasks: delete %q: %w", o.key, r.Err)
	case kindBatch:
		return fmt.Errorf("dataflasks: put batch (%d objects): %w", o.nObjs, r.Err)
	case kindDeleteBatch:
		return fmt.Errorf("dataflasks: delete batch (%d items): %w", o.nObjs, r.Err)
	default:
		return fmt.Errorf("dataflasks: put %q v%d: %w", o.key, o.version, r.Err)
	}
}

// newOp allocates a handle; start must enqueue the core call.
func (c *Client) newOp(kind apiKind, key string, version uint64) *Op {
	return &Op{c: c, kind: kind, key: key, version: version, done: make(chan struct{})}
}

// failedOp returns an already-resolved handle (validation errors,
// closed client).
func (c *Client) failedOp(kind apiKind, key string, version uint64, err error) *Op {
	op := c.newOp(kind, key, version)
	op.finish(client.Result{Key: key, Version: version, Err: err})
	return op
}

// PutAsync starts storing value under (key, version) and returns its
// future. Versions must be assigned in increasing order per key by the
// caller — DataFlasks is the bottom layer of a stratified store and
// does not order writes itself (§III). The future resolves once the
// configured (or WithAcks-overridden) number of replicas acknowledged.
func (c *Client) PutAsync(key string, version uint64, value []byte, opts ...OpOption) *Op {
	if version == Latest || version == AllVersions {
		return c.failedOp(kindPut, key, version,
			fmt.Errorf("dataflasks: version %d is reserved", version))
	}
	settings := c.resolveSettings(opts)
	op := c.newOp(kindPut, key, version)
	if err := c.submit(func() {
		op.reqID = c.core.StartPutOpts(key, version, value, settings, op.finish)
	}); err != nil {
		op.finish(client.Result{Err: err})
	}
	return op
}

// GetAsync starts reading (key, version) — version may be Latest — and
// returns its future; read the outcome with Value and Version.
func (c *Client) GetAsync(key string, version uint64, opts ...OpOption) *Op {
	settings := c.resolveSettings(opts)
	op := c.newOp(kindGet, key, version)
	if err := c.submit(func() {
		op.reqID = c.core.StartGetOpts(key, version, settings, op.finish)
	}); err != nil {
		op.finish(client.Result{Err: err})
	}
	return op
}

// GetLatestAsync starts a newest-version read of key.
func (c *Client) GetLatestAsync(key string, opts ...OpOption) *Op {
	return c.GetAsync(key, Latest, opts...)
}

// DeleteAsync starts deleting (key, version); version Latest removes
// each replica's newest stored version (resolved independently per
// replica, mirroring reads), and AllVersions removes every stored
// version of the key. Completion follows the same ack rules as puts.
func (c *Client) DeleteAsync(key string, version uint64, opts ...OpOption) *Op {
	settings := c.resolveSettings(opts)
	op := c.newOp(kindDelete, key, version)
	if err := c.submit(func() {
		op.reqID = c.core.StartDelete(key, version, settings, op.finish)
	}); err != nil {
		op.finish(client.Result{Err: err})
	}
	return op
}

// PutBatchAsync starts storing a batch of objects. Objects are grouped
// by target slice (using the client's configured slice count, which
// must match the deployment's) and each group travels as ONE wire
// message that lands on every replica as one store.PutBatch call — the
// cheapest write path for bulk loads. One future per group is
// returned, in first-appearance order of the groups.
func (c *Client) PutBatchAsync(objs []Object, opts ...OpOption) []*Op {
	for _, o := range objs {
		if o.Version == Latest || o.Version == AllVersions {
			return []*Op{c.failedOp(kindBatch, o.Key, o.Version,
				fmt.Errorf("dataflasks: version %d is reserved", o.Version))}
		}
	}
	settings := c.resolveSettings(opts)
	groups := groupBySlice(objs, c.slices)
	ops := make([]*Op, 0, len(groups))
	for _, g := range groups {
		g := g
		op := c.newOp(kindBatch, g[0].Key, 0)
		op.nObjs = len(g)
		if err := c.submit(func() {
			op.reqID = c.core.StartPutBatch(g, settings, op.finish)
		}); err != nil {
			op.finish(client.Result{Err: err})
		}
		ops = append(ops, op)
	}
	return ops
}

// DeleteBatchAsync starts deleting a batch of (key, version) pairs —
// versions may be Latest. Items are grouped by target slice (mirroring
// PutBatchAsync) and each group travels as ONE core.DeleteBatchRequest
// wire message that every replica applies in one pass over its store.
// One future per group is returned, in first-appearance order of the
// groups; each future's Applied reports how many of its group's items
// the most complete acking replica actually held.
func (c *Client) DeleteBatchAsync(items []KeyVersion, opts ...OpOption) []*Op {
	settings := c.resolveSettings(opts)
	groups := groupKVBySlice(items, c.slices)
	ops := make([]*Op, 0, len(groups))
	for _, g := range groups {
		g := g
		op := c.newOp(kindDeleteBatch, g[0].Key, 0)
		op.nObjs = len(g)
		if err := c.submit(func() {
			op.reqID = c.core.StartDeleteBatch(g, settings, op.finish)
		}); err != nil {
			op.finish(client.Result{Err: err})
		}
		ops = append(ops, op)
	}
	return ops
}

// groupBySlice partitions objects by target slice for batch puts.
func groupBySlice(objs []Object, slices int) [][]Object {
	return groupBySliceKeyed(objs, slices, func(o Object) (string, Object) { return o.Key, o })
}

// groupKVBySlice partitions delete items by target slice, producing
// the wire-level core.DeleteItem groups directly.
func groupKVBySlice(items []KeyVersion, slices int) [][]core.DeleteItem {
	return groupBySliceKeyed(items, slices, func(kv KeyVersion) (string, core.DeleteItem) {
		return kv.Key, core.DeleteItem{Key: kv.Key, Version: kv.Version}
	})
}

// groupBySliceKeyed partitions items by their key's target slice,
// preserving the first-appearance order of slices and the item order
// within each — the invariant both batch puts and batch deletes rely
// on.
func groupBySliceKeyed[T, G any](items []T, slices int, conv func(T) (string, G)) [][]G {
	index := make(map[int32]int)
	var groups [][]G
	for _, it := range items {
		key, out := conv(it)
		s := slicing.KeySlice(key, slices)
		i, ok := index[s]
		if !ok {
			i = len(groups)
			index[s] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], out)
	}
	return groups
}

// --- blocking wrappers ------------------------------------------------------

// await waits for op; if the context expires, the operation is
// canceled so it does not linger in the pending table until its retry
// budget runs out.
func (c *Client) await(ctx context.Context, op *Op) error {
	err := op.Wait(ctx)
	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		op.Cancel()
	}
	return err
}

// Put stores value under (key, version), blocking until the configured
// number of replicas acknowledged. It is a thin wrapper over PutAsync.
func (c *Client) Put(ctx context.Context, key string, version uint64, value []byte, opts ...OpOption) error {
	return c.await(ctx, c.PutAsync(key, version, value, opts...))
}

// Get returns the value stored at (key, version).
func (c *Client) Get(ctx context.Context, key string, version uint64, opts ...OpOption) ([]byte, error) {
	op := c.GetAsync(key, version, opts...)
	if err := c.await(ctx, op); err != nil {
		return nil, err
	}
	return op.Value(), nil
}

// GetLatest returns the newest stored version of key and its version
// number.
func (c *Client) GetLatest(ctx context.Context, key string, opts ...OpOption) (value []byte, version uint64, err error) {
	op := c.GetLatestAsync(key, opts...)
	if err := c.await(ctx, op); err != nil {
		return nil, 0, err
	}
	return op.Value(), op.Version(), nil
}

// Delete removes (key, version) from the target slice's replicas;
// version Latest removes each replica's newest stored version,
// AllVersions the whole key. It blocks until the configured number of
// replicas acknowledged.
func (c *Client) Delete(ctx context.Context, key string, version uint64, opts ...OpOption) error {
	return c.await(ctx, c.DeleteAsync(key, version, opts...))
}

// PutBatch stores objs, grouped per target slice into one wire message
// per group (see PutBatchAsync), and blocks until every group
// acknowledged. The first error (if any) is returned; on context
// expiry the remaining groups are canceled.
func (c *Client) PutBatch(ctx context.Context, objs []Object, opts ...OpOption) error {
	var firstErr error
	for _, op := range c.PutBatchAsync(objs, opts...) {
		if err := c.await(ctx, op); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DeleteBatch removes items, grouped per target slice into one wire
// message per group (see DeleteBatchAsync), and blocks until every
// group acknowledged. It returns how many items the acking replicas
// actually held (summed across groups) and the first error, if any.
func (c *Client) DeleteBatch(ctx context.Context, items []KeyVersion, opts ...OpOption) (applied int, err error) {
	for _, op := range c.DeleteBatchAsync(items, opts...) {
		if werr := c.await(ctx, op); werr != nil {
			if err == nil {
				err = werr
			}
			continue
		}
		applied += op.Applied()
	}
	return applied, err
}
