package dataflasks

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dataflasks/internal/client"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// ErrNotFound reports a read that produced no replica answer within
// its retry budget. Epidemic reads have no authoritative negative: the
// object may not exist, or every reached replica may be missing it.
var ErrNotFound = errors.New("dataflasks: not found")

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("dataflasks: client closed")

// Client is the blocking client API (paper §V): operations go to a
// load-balanced contact node, spread epidemically, and the multiple
// replies that come back are de-duplicated by request id. Safe for
// concurrent use.
type Client struct {
	core *client.Core

	cmds chan func()
	done chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
}

// newLiveClient wraps the event-driven client core in a goroutine that
// owns it: mailbox messages, timeout ticks and API commands are
// serialized onto one loop, preserving the core's single-threaded
// contract.
func newLiveClient(id NodeID, cfg client.Config, sender transport.Sender, lb client.LoadBalancer, mailbox <-chan transport.Envelope, period time.Duration) *Client {
	c := &Client{
		core: client.NewCore(id, cfg, sender, lb),
		cmds: make(chan func(), 64),
		done: make(chan struct{}),
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case env, ok := <-mailbox:
				if !ok {
					return
				}
				c.core.HandleMessage(env)
			case <-ticker.C:
				c.core.Tick()
			case cmd := <-c.cmds:
				cmd()
			case <-c.done:
				return
			}
		}
	}()
	return c
}

// Close stops the client loop. In-flight operations fail with
// ErrClientClosed.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
	})
	c.wg.Wait()
}

// submit runs fn on the client loop.
func (c *Client) submit(fn func()) error {
	select {
	case c.cmds <- fn:
		return nil
	case <-c.done:
		return ErrClientClosed
	}
}

// Put stores value under (key, version). Versions must be assigned in
// increasing order per key by the caller — DataFlasks is the bottom
// layer of a stratified store and does not order writes itself (§III).
// Put returns once the configured number of replicas acknowledged.
func (c *Client) Put(ctx context.Context, key string, version uint64, value []byte) error {
	if version == Latest {
		return fmt.Errorf("dataflasks: version %d is reserved for reads", Latest)
	}
	res := make(chan client.Result, 1)
	err := c.submit(func() {
		c.core.StartPut(key, version, value, func(r client.Result) { res <- r })
	})
	if err != nil {
		return err
	}
	select {
	case r := <-res:
		if r.Err != nil {
			return fmt.Errorf("dataflasks: put %q v%d: %w", key, version, r.Err)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.done:
		return ErrClientClosed
	}
}

// Get returns the value stored at (key, version).
func (c *Client) Get(ctx context.Context, key string, version uint64) ([]byte, error) {
	val, _, err := c.get(ctx, key, version)
	return val, err
}

// GetLatest returns the newest stored version of key and its version
// number.
func (c *Client) GetLatest(ctx context.Context, key string) (value []byte, version uint64, err error) {
	return c.get(ctx, key, store.Latest)
}

func (c *Client) get(ctx context.Context, key string, version uint64) ([]byte, uint64, error) {
	res := make(chan client.Result, 1)
	err := c.submit(func() {
		c.core.StartGet(key, version, func(r client.Result) { res <- r })
	})
	if err != nil {
		return nil, 0, err
	}
	select {
	case r := <-res:
		if r.Err != nil {
			if errors.Is(r.Err, client.ErrTimeout) {
				return nil, 0, fmt.Errorf("dataflasks: get %q: %w", key, ErrNotFound)
			}
			return nil, 0, fmt.Errorf("dataflasks: get %q: %w", key, r.Err)
		}
		return r.Value, r.Version, nil
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-c.done:
		return nil, 0, ErrClientClosed
	}
}
