package dataflasks_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"dataflasks"
)

// startStaticCluster boots a cluster whose nodes know their slice
// immediately (static slicer), so async tests spend their budget on
// the client API rather than slicing convergence.
func startStaticCluster(t *testing.T, n, slices int) *dataflasks.Cluster {
	t.Helper()
	c, err := dataflasks.NewCluster(n, dataflasks.Config{
		Slices:     slices,
		SystemSize: n,
		Slicer:     dataflasks.StaticSlicer,
		Seed:       7,
	}, dataflasks.WithRoundPeriod(5*time.Millisecond))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestPipelinedFuturesRace floods one client with hundreds of
// concurrent in-flight operations and waits for them in shuffled
// order. Run with -race (CI does): it exercises the Op handle's
// cross-goroutine completion handoff.
func TestPipelinedFuturesRace(t *testing.T) {
	c := startStaticCluster(t, 12, 2)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // let views fill

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const ops = 200
	puts := make([]*dataflasks.Op, 0, ops)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("pipe%04d", i)
		puts = append(puts, cl.PutAsync(key, 1, []byte(key),
			dataflasks.WithTimeout(250*time.Millisecond), dataflasks.WithRetries(20)))
	}
	// Shuffled completions: Wait order is decoupled from issue order.
	rng := rand.New(rand.NewPCG(1, 2))
	rng.Shuffle(len(puts), func(i, j int) { puts[i], puts[j] = puts[j], puts[i] })
	for _, op := range puts {
		if err := op.Wait(ctx); err != nil {
			t.Fatalf("pipelined put: %v", err)
		}
		if op.Acks() < 1 || op.Err() != nil {
			t.Fatalf("completed put: acks=%d err=%v", op.Acks(), op.Err())
		}
	}

	gets := make([]*dataflasks.Op, 0, ops)
	for i := 0; i < ops; i++ {
		gets = append(gets, cl.GetAsync(fmt.Sprintf("pipe%04d", i), 1,
			dataflasks.WithTimeout(250*time.Millisecond), dataflasks.WithRetries(20)))
	}
	rng.Shuffle(len(gets), func(i, j int) { gets[i], gets[j] = gets[j], gets[i] })
	for _, op := range gets {
		if err := op.Wait(ctx); err != nil {
			t.Fatalf("pipelined get: %v", err)
		}
		if len(op.Value()) == 0 {
			t.Fatal("pipelined get returned no value")
		}
	}
	if n := cl.Pending(); n != 0 {
		t.Errorf("pending after all futures resolved = %d", n)
	}
}

// TestPerOpOptionsEndToEnd drives WithAcks / WithFireAndForget /
// WithTimeout through a live cluster.
func TestPerOpOptionsEndToEnd(t *testing.T) {
	c := startStaticCluster(t, 12, 2)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// WithAcks(2): two distinct replicas must confirm.
	op := cl.PutAsync("opt-acks", 1, []byte("v"),
		dataflasks.WithAcks(2), dataflasks.WithTimeout(300*time.Millisecond), dataflasks.WithRetries(20))
	if err := op.Wait(ctx); err != nil {
		t.Fatalf("WithAcks(2) put: %v", err)
	}
	if op.Acks() < 2 {
		t.Fatalf("acks = %d, want >= 2", op.Acks())
	}

	// WithFireAndForget resolves instantly...
	ff := cl.PutAsync("opt-ff", 1, []byte("v"), dataflasks.WithFireAndForget())
	select {
	case <-ff.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("fire-and-forget future did not resolve instantly")
	}
	if ff.Err() != nil || ff.Acks() != 0 {
		t.Fatalf("fire-and-forget: err=%v acks=%d", ff.Err(), ff.Acks())
	}
	// ...and the write still lands (read it back with retries).
	if _, err := cl.Get(ctx, "opt-ff", 1,
		dataflasks.WithTimeout(300*time.Millisecond), dataflasks.WithRetries(20)); err != nil {
		t.Fatalf("fire-and-forget write never landed: %v", err)
	}
}

// TestDeleteEndToEnd puts, deletes, and verifies the object is gone
// from every replica.
func TestDeleteEndToEnd(t *testing.T) {
	c := startStaticCluster(t, 12, 2)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	retry := []dataflasks.OpOption{
		dataflasks.WithTimeout(300 * time.Millisecond), dataflasks.WithRetries(20),
	}

	if err := cl.Put(ctx, "doomed", 1, []byte("x"), retry...); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := cl.Delete(ctx, "doomed", 1, retry...); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// The delete floods every replica; poll until the last copy is
	// gone (intra-phase deletes propagate within a few rounds). A
	// delete can race the tail of the put's own flood — a late put
	// relay re-stores the object on a node the delete already passed —
	// so, like a real client under eventual semantics, re-issue the
	// delete if copies persist.
	deadline := time.Now().Add(10 * time.Second)
	for tries := 0; c.ReplicaCount("doomed", 1) > 0; {
		if time.Now().After(deadline) {
			t.Fatalf("%d replicas still hold the deleted object", c.ReplicaCount("doomed", 1))
		}
		time.Sleep(20 * time.Millisecond)
		if tries++; tries%50 == 0 { // every ~1s of persistence
			if err := cl.Delete(ctx, "doomed", 1, retry...); err != nil {
				t.Fatalf("re-issued Delete: %v", err)
			}
		}
	}
}

// TestPutBatchEndToEnd bulk-writes across slices through the batched
// wire path and reads everything back.
func TestPutBatchEndToEnd(t *testing.T) {
	c := startStaticCluster(t, 12, 2)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	retry := []dataflasks.OpOption{
		dataflasks.WithTimeout(300 * time.Millisecond), dataflasks.WithRetries(20),
	}

	objs := make([]dataflasks.Object, 0, 64)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("bulk%04d", i)
		objs = append(objs, dataflasks.Object{Key: key, Version: 1, Value: []byte(key)})
	}
	if err := cl.PutBatch(ctx, objs, retry...); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for _, o := range objs {
		got, err := cl.Get(ctx, o.Key, 1, retry...)
		if err != nil {
			t.Fatalf("Get %s after batch: %v", o.Key, err)
		}
		if string(got) != o.Key {
			t.Fatalf("Get %s = %q", o.Key, got)
		}
	}
}

// TestCancelFreesPendingOp pins the pending-op leak fix: a blocking
// call abandoned by its context must remove the op from the core's
// table immediately, not at retry-budget exhaustion.
func TestCancelFreesPendingOp(t *testing.T) {
	c := startStaticCluster(t, 3, 1)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	// A get for a key nobody holds would otherwise pend for the whole
	// default retry budget (~80 ticks).
	if _, err := cl.Get(ctx, "never-stored", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get with canceled ctx: %v", err)
	}
	// Cancel is enqueued behind the op start on the client loop;
	// Pending is enqueued after both, so 0 means the table was freed.
	if n := cl.Pending(); n != 0 {
		t.Fatalf("pending after context cancel = %d, want 0", n)
	}

	// Explicit Op.Cancel behaves the same and resolves the future.
	op := cl.GetAsync("never-stored-2", 1)
	if err := op.Err(); !errors.Is(err, dataflasks.ErrInFlight) {
		t.Fatalf("Err before completion = %v, want ErrInFlight", err)
	}
	op.Cancel()
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := op.Wait(wctx); !errors.Is(err, dataflasks.ErrCanceled) {
		t.Fatalf("canceled op Wait = %v, want ErrCanceled", err)
	}
	if n := cl.Pending(); n != 0 {
		t.Fatalf("pending after Op.Cancel = %d, want 0", n)
	}
}

func TestClosedClientFailsFast(t *testing.T) {
	c := startStaticCluster(t, 3, 1)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	cl.Close()
	ctx := context.Background()
	if err := cl.Put(ctx, "k", 1, nil); !errors.Is(err, dataflasks.ErrClientClosed) {
		t.Errorf("Put on closed client: %v", err)
	}
	op := cl.GetAsync("k", 1)
	if err := op.Wait(ctx); !errors.Is(err, dataflasks.ErrClientClosed) {
		t.Errorf("async op on closed client: %v", err)
	}
	if cl.Pending() != 0 {
		t.Error("closed client reports pending ops")
	}
}

func TestPutReservedVersionFails(t *testing.T) {
	c := startStaticCluster(t, 3, 1)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := cl.Put(context.Background(), "k", dataflasks.Latest, nil); err == nil {
		t.Error("Put with the reserved version succeeded")
	}
	if err := cl.PutBatch(context.Background(), []dataflasks.Object{
		{Key: "k", Version: dataflasks.Latest},
	}); err == nil {
		t.Error("PutBatch with the reserved version succeeded")
	}
}

// --- ParseSeed / ConnectClient error paths ----------------------------------

func TestParseSeed(t *testing.T) {
	id, addr, err := dataflasks.ParseSeed("42@10.0.0.1:7001")
	if err != nil || id != 42 || addr != "10.0.0.1:7001" {
		t.Fatalf("ParseSeed = (%v, %q, %v)", id, addr, err)
	}
	for _, bad := range []string{
		"",                         // empty
		"10.0.0.1:7001",            // no id separator
		"@10.0.0.1:7001",           // empty id
		"42@",                      // empty address
		"abc@10.0.0.1:7001",        // non-numeric id
		"-1@10.0.0.1:7001",         // negative id
		"99999999999999999999@h:1", // id overflows 32 bits
	} {
		if _, _, err := dataflasks.ParseSeed(bad); err == nil {
			t.Errorf("ParseSeed(%q) succeeded, want error", bad)
		}
	}
}

func TestConnectClientErrorPaths(t *testing.T) {
	if _, err := dataflasks.ConnectClient("127.0.0.1:0", nil, dataflasks.Config{}); err == nil {
		t.Error("ConnectClient with no seeds succeeded")
	}
	if _, err := dataflasks.ConnectClient("127.0.0.1:0", []string{"not-a-seed"}, dataflasks.Config{}); err == nil {
		t.Error("ConnectClient with a malformed seed succeeded")
	}
	if _, err := dataflasks.ConnectClient("not-a-bind-address", []string{"1@127.0.0.1:7001"}, dataflasks.Config{}); err == nil {
		t.Error("ConnectClient with an unbindable address succeeded")
	}
	if !strings.Contains(fmt.Sprint(mustErr(t)), "id@host:port") {
		t.Error("seed parse error does not explain the expected format")
	}
}

func mustErr(t *testing.T) error {
	t.Helper()
	_, _, err := dataflasks.ParseSeed("oops")
	if err == nil {
		t.Fatal("ParseSeed(oops) succeeded")
	}
	return err
}
