package dataflasks

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/obs"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
	"dataflasks/internal/wire"
)

// NodeConfig configures a standalone TCP node.
type NodeConfig struct {
	// ID must be unique across the deployment and fit in 32 bits.
	ID NodeID
	// Bind is the listen address ("host:port"; port 0 allowed).
	Bind string
	// Advertise is the address peers dial (default: the bound
	// address).
	Advertise string
	// Seeds are bootstrap contacts, each "id@host:port".
	Seeds []string
	// DataDir persists objects on disk; empty keeps them in memory.
	DataDir string
	// RestoreDir, when set, replays a snapshot (written by
	// `flaskctl snapshot` or store.WriteSnapshot) into the node's store
	// before it starts gossiping — disaster recovery for a node whose
	// data directory was lost. Existing objects win by version as usual,
	// so restoring over a live data directory is safe.
	RestoreDir string
	// RoundPeriod is the gossip period (default 500ms).
	RoundPeriod time.Duration
	// UDPBind enables the datagram control plane: PSS shuffles, slicing
	// swaps, aggregation and anti-entropy digests ride single UDP
	// frames, with oversize or failed datagrams falling back to TCP.
	// Peers address datagrams at each other's advertised TCP port, so
	// the value must bind the same port as Bind; "auto" derives it from
	// the bound TCP listener. Empty disables (all traffic on TCP).
	// Mixed deployments are safe: a peer's datagram path is only used
	// after it answers a probe, so traffic to UDP-less nodes stays on
	// TCP.
	UDPBind string
	// HTTPAddr enables the observability plane: an HTTP listener
	// ("host:port", port 0 allowed) serving /metrics (Prometheus text
	// exposition), /healthz, /readyz, /trace and /debug/pprof/. Empty
	// disables the plane entirely.
	HTTPAddr string
	// TraceEvents sizes the /trace ring (rounded up to a power of two;
	// default 1024, negative disables tracing). Only meaningful with
	// HTTPAddr: without the plane no ring is created and trace calls
	// cost two compares on the event loop.
	TraceEvents int
	// RESPStats, when set, is the RESP gateway's per-command registry;
	// the plane exports it as the flasks_resp_* families. The caller
	// (cmd/flasksd) owns it and shares it with the gateway.
	RESPStats *metrics.CommandStats
	// Config carries the protocol configuration.
	Config Config
}

// Node is a standalone DataFlasks host on TCP — the deployable unit
// behind cmd/flasksd.
type Node struct {
	id     NodeID
	net    *transport.TCPNetwork
	udp    *transport.UDPTransport // nil unless UDPBind was set
	wstats *metrics.WireStats
	core   *core.Node
	st     store.Store

	mailbox chan transport.Envelope
	done    chan struct{}
	cancel  context.CancelFunc // aborts in-flight control-loop sends at shutdown
	// dataCancel bounds the shard goroutines' sends. It is cancelled
	// only after Close drains the shard mailboxes, so queued acks still
	// reach the wire during the drain.
	dataCancel context.CancelFunc
	wg         sync.WaitGroup

	// drops counts mailbox overflow: messages the TCP fabric delivered
	// but the event loop was too slow to accept. Incremented from
	// connection goroutines, hence the shared counter.
	drops metrics.SharedCounter
	// sendErrs mirrors the core's wire_send_errors counter into an
	// atomic the status reporter can read without racing the event
	// loop's own metrics.
	sendErrs metrics.SharedCounter

	// status is the latest obs.Status snapshot, published by the event
	// loop once per tick (and on readiness flips) so the observability
	// plane and status reporters never read live event-loop state.
	status atomic.Pointer[obs.Status]
	trace  *obs.Ring   // /trace journal; nil when the plane is off
	obsSrv *obs.Server // nil unless HTTPAddr was set

	closeOnce sync.Once
}

// wireCodecFor resolves a Config.WireCodec name (empty means binary).
func wireCodecFor(name string) (transport.WireCodec, error) {
	if name == "" {
		name = "binary"
	}
	c, ok := wire.CodecByName(name)
	if !ok {
		return nil, fmt.Errorf("dataflasks: unknown wire codec %q (want binary or gob)", name)
	}
	return c, nil
}

// ParseSeed parses "id@host:port".
func ParseSeed(s string) (NodeID, string, error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return 0, "", fmt.Errorf("dataflasks: seed %q must be id@host:port", s)
	}
	id, err := strconv.ParseUint(s[:at], 10, 32)
	if err != nil {
		return 0, "", fmt.Errorf("dataflasks: seed %q: bad id: %w", s, err)
	}
	return NodeID(id), s[at+1:], nil
}

// StartNode boots a TCP node: it listens, learns its seeds and starts
// gossiping immediately.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == 0 || uint64(cfg.ID) > 1<<32-1 {
		return nil, fmt.Errorf("dataflasks: node id %d must be in [1, 2^32)", cfg.ID)
	}
	if cfg.RoundPeriod <= 0 {
		cfg.RoundPeriod = 500 * time.Millisecond
	}
	codec, err := wireCodecFor(cfg.Config.WireCodec)
	if err != nil {
		return nil, err
	}

	n := &Node{
		id:      cfg.ID,
		wstats:  &metrics.WireStats{},
		mailbox: make(chan transport.Envelope, defaultMailbox),
		done:    make(chan struct{}),
	}
	// The TCP fabric decodes on per-connection goroutines; funnel into
	// the mailbox so the protocol core stays single-threaded.
	handler := func(env transport.Envelope) {
		select {
		case n.mailbox <- env:
		default:
			// Congested: drop, gossip redundancy covers it — but never
			// silently; sustained growth of this counter means the
			// round period or mailbox size is mis-sized for the load.
			n.drops.Inc()
		}
	}
	tcpNet, err := transport.ListenTCP(cfg.ID, cfg.Bind, cfg.Advertise,
		transport.TCPConfig{Codec: codec, Stats: n.wstats}, handler)
	if err != nil {
		return nil, err
	}
	n.net = tcpNet

	coreCfg := cfg.Config.coreConfig()
	if cfg.UDPBind != "" {
		udpBind := cfg.UDPBind
		if udpBind == "auto" {
			udpBind = tcpNet.BoundAddr()
		}
		udpT, err := transport.ListenUDP(cfg.ID, udpBind, transport.UDPConfig{
			Codec: codec,
			Resolve: func(id transport.NodeID) (string, bool) {
				addr := tcpNet.PeerAddr(id)
				return addr, addr != ""
			},
			Stats: n.wstats,
		}, handler)
		if err != nil {
			tcpNet.Close()
			return nil, err
		}
		n.udp = udpT
		// Control traffic tries one datagram first; unproven datagram
		// paths (peers that never acked a probe — e.g. nodes running
		// without -udp-addr), oversize frames, unknown peers and socket
		// errors retry on the TCP stream.
		coreCfg.Control = transport.FallbackSender(udpT.Sender(), tcpNet.Sender())
		coreCfg.IsControl = wire.Control
	}
	st, err := coreCfg.Store.Open(cfg.DataDir)
	if err != nil {
		n.closeFabrics()
		return nil, err
	}
	n.st = st
	if cfg.RestoreDir != "" {
		if _, err := store.Restore(cfg.RestoreDir, st); err != nil {
			n.closeFabrics()
			_ = n.st.Close()
			return nil, fmt.Errorf("dataflasks: restore %s: %w", cfg.RestoreDir, err)
		}
	}
	coreCfg.RoundPeriod = cfg.RoundPeriod
	coreCfg.AdvertiseAddr = tcpNet.Addr()
	coreCfg.AddressBook = tcpNet
	coreCfg.OnSendErr = func(error) { n.sendErrs.Inc() }
	if cfg.HTTPAddr != "" && cfg.TraceEvents >= 0 {
		events := cfg.TraceEvents
		if events == 0 {
			events = 1024
		}
		n.trace = obs.NewRing(events)
		coreCfg.Trace = n.trace
	}
	n.core = core.NewNode(cfg.ID, coreCfg, n.st, tcpNet.Sender())

	seedIDs := make([]NodeID, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		id, addr, err := ParseSeed(s)
		if err != nil {
			n.closeFabrics()
			_ = n.st.Close()
			return nil, err
		}
		tcpNet.Learn(id, addr)
		seedIDs = append(seedIDs, id)
	}
	n.core.Bootstrap(seedIDs)
	// First snapshot before anything concurrent can read: status is
	// never nil once StartNode returns.
	n.publishStatus()

	if cfg.HTTPAddr != "" {
		src := obs.Sources{
			NodeID: uint64(cfg.ID),
			Status: func() obs.Status {
				if st := n.status.Load(); st != nil {
					return *st
				}
				return obs.Status{Reason: "no status published"}
			},
			Wire:            n.wstats.Snapshot,
			RESP:            cfg.RESPStats,
			TickDur:         n.core.TickDurations(),
			MailboxDepth:    func() int { return len(n.mailbox) },
			MailboxCapacity: cap(n.mailbox),
			MailboxDropped:  n.drops.Load,
			SendErrors:      n.sendErrs.Load,
			Trace:           n.trace,
			Shards:          n.core.ShardCount(),
			ShardDepth:      n.core.ShardDepth,
			ShardCapacity:   n.core.ShardMailboxCapacity(),
			ShardDropped:    n.core.ShardDropped,
			ShardTickDur:    n.core.ShardTickDurations,
		}
		if sp, ok := n.st.(store.StatsProvider); ok {
			src.Store = sp.Stats
		}
		srv := obs.NewServer(src)
		if _, err := srv.Listen(cfg.HTTPAddr); err != nil {
			n.closeFabrics()
			_ = n.st.Close()
			return nil, fmt.Errorf("dataflasks: observability plane: %w", err)
		}
		n.obsSrv = srv
	}

	// The lifecycle context bounds every send the event loop makes;
	// Close cancels it first, so a round blocked on a slow peer stops
	// dialing instead of stalling shutdown.
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	// The data-plane shards run as their own goroutines and outlive the
	// control loop by one drain: their sends get a separate context that
	// Close cancels only after StopShards returns.
	dataCtx, dataCancel := context.WithCancel(context.Background())
	n.dataCancel = dataCancel
	n.core.StartShards(dataCtx)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(cfg.RoundPeriod)
		defer ticker.Stop()
		ready := n.status.Load().Ready
		for {
			select {
			case env := <-n.mailbox:
				n.core.HandleMessage(ctx, env)
				// Bootstrap can finish on a handled message; /readyz
				// must flip the moment it does, not a tick later.
				if r := n.coreReady(); r != ready {
					n.publishStatus()
					ready = r
				}
			case <-ticker.C:
				n.core.Tick(ctx)
				n.publishStatus()
				ready = n.status.Load().Ready
			case <-n.done:
				return
			}
		}
	}()
	return n, nil
}

// coreReady computes the readiness predicate from live core state.
// Event-loop goroutine only.
func (n *Node) coreReady() bool {
	return n.core.Slice() >= 0 && n.core.BootstrapDone()
}

// publishStatus snapshots the core into an immutable obs.Status for
// concurrent readers (observability plane, BootstrapStats, status
// reporters). Event-loop goroutine only (plus once before it starts).
func (n *Node) publishStatus() {
	st := &obs.Status{
		Counters:          n.core.Metrics().Snapshot(),
		Slice:             n.core.Slice(),
		BootstrapDone:     n.core.BootstrapDone(),
		BootstrapFellBack: n.core.BootstrapFellBack(),
	}
	switch {
	case st.Slice < 0:
		st.Reason = "slice not yet assigned"
	case !st.BootstrapDone:
		st.Reason = "bootstrap in progress"
	default:
		st.Ready = true
	}
	n.status.Store(st)
}

// ID returns the node id.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the advertised address.
func (n *Node) Addr() string { return n.net.Addr() }

// Slice returns the node's current slice claim (-1 while undecided),
// from the latest published snapshot.
func (n *Node) Slice() int32 { return n.status.Load().Slice }

// StoredObjects returns how many object versions the node holds.
func (n *Node) StoredObjects() int { return n.st.Count() }

// PeersKnown returns the size of the fabric's learned address
// directory.
func (n *Node) PeersKnown() int { return n.net.PeerCount() }

// MailboxDropped returns how many delivered messages were discarded
// because a mailbox was full: the fabric mailbox (event loop
// congestion) plus the per-shard data mailboxes (shard congestion).
func (n *Node) MailboxDropped() uint64 { return n.drops.Load() + n.core.ShardDropped() }

// SendErrors returns how many fabric sends failed across every
// protocol and routing path (the core's wire_send_errors counter,
// mirrored atomically for concurrent readers).
func (n *Node) SendErrors() uint64 { return n.sendErrs.Load() }

// WireStats reports wire-level accounting shared by the node's TCP and
// UDP fabrics: encoded bytes, codec fallbacks, and datagram counters.
func (n *Node) WireStats() metrics.WireSnapshot { return n.wstats.Snapshot() }

// BootstrapStats is a snapshot of segment-bootstrap progress: the
// bootstrap_* counters plus the joiner's terminal state. Done is true
// on nodes that never joined via segments (nothing left to do).
type BootstrapStats struct {
	Sent            uint64 // protocol messages sent (serving + joining)
	Segments        uint64 // whole segments received and CRC-verified
	Bytes           uint64 // verbatim segment bytes applied
	ChunksRejected  uint64 // chunks discarded for CRC/parse failure
	FallbackObjects uint64 // objects repaired after falling back
	Done            bool
	FellBack        bool
}

// BootstrapStats reports segment-bootstrap progress, for status lines
// and tests. It reads the event loop's published snapshot — at most
// one tick stale, never racing the loop's live counters.
func (n *Node) BootstrapStats() BootstrapStats {
	st := n.status.Load()
	return BootstrapStats{
		Sent:            st.Counters[metrics.BootstrapSent],
		Segments:        st.Counters[metrics.BootstrapSegments],
		Bytes:           st.Counters[metrics.BootstrapBytes],
		ChunksRejected:  st.Counters[metrics.BootstrapChunksRejected],
		FallbackObjects: st.Counters[metrics.BootstrapFallbackObjects],
		Done:            st.BootstrapDone,
		FellBack:        st.BootstrapFellBack,
	}
}

// UDPAddr returns the datagram listener's bound address, or "" when
// the datagram control plane is disabled.
func (n *Node) UDPAddr() string {
	if n.udp == nil {
		return ""
	}
	return n.udp.Addr()
}

// HTTPAddr returns the observability plane's bound address, or ""
// when the plane is disabled.
func (n *Node) HTTPAddr() string {
	if n.obsSrv == nil {
		return ""
	}
	return n.obsSrv.Addr()
}

// Ready reports the /readyz verdict from the latest published
// snapshot: slice assigned and bootstrap finished.
func (n *Node) Ready() bool { return n.status.Load().Ready }

func (n *Node) closeFabrics() {
	if n.udp != nil {
		_ = n.udp.Close()
	}
	_ = n.net.Close()
}

// Close shuts the node down and releases the store.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		if n.obsSrv != nil {
			_ = n.obsSrv.Close()
		}
		n.cancel()
		close(n.done)
		n.wg.Wait()
		// The control loop is gone, so nothing dispatches into the shard
		// mailboxes anymore; drain them before the fabrics and the store
		// go away so every accepted write lands and its ack gets a live
		// connection to leave on.
		n.core.StopShards()
		n.dataCancel()
		if n.udp != nil {
			err = n.udp.Close()
		}
		if cerr := n.net.Close(); err == nil {
			err = cerr
		}
		if cerr := n.st.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// ConnectClient opens a client against a TCP deployment. Seeds are
// "id@host:port" contacts; bind may be ":0". cfg.Slices must match the
// deployment's slice count for batch puts to group correctly.
func ConnectClient(bind string, seeds []string, cfg Config) (*Client, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("dataflasks: ConnectClient needs at least one seed")
	}
	codec, err := wireCodecFor(cfg.WireCodec)
	if err != nil {
		return nil, err
	}
	// Client ids live in their own range; collisions across
	// independent clients are avoided by random draw.
	id := clientIDBase + NodeID(rand.Uint32N(1<<24))

	drops := &metrics.SharedCounter{} // shared with the client below
	mailbox := make(chan transport.Envelope, defaultMailbox)
	handler := func(env transport.Envelope) {
		select {
		case mailbox <- env:
		default:
			drops.Inc()
		}
	}
	tcpNet, err := transport.ListenTCP(id, bind, "", transport.TCPConfig{Codec: codec}, handler)
	if err != nil {
		return nil, err
	}
	ids := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		sid, addr, err := ParseSeed(s)
		if err != nil {
			tcpNet.Close()
			return nil, err
		}
		tcpNet.Learn(sid, addr)
		ids = append(ids, sid)
	}
	lb := client.NewRandomLB(ids, rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())))
	period := 500 * time.Millisecond
	clientCfg := client.Config{PutAcks: cfg.clientPutAcks(), SelfAddr: tcpNet.Addr()}
	cl := newLiveClient(id, clientCfg, tcpNet.Sender(), lb, mailbox, period, cfg.slicesOrDefault(), drops.Load)
	// Tie the fabric's lifetime to the client.
	go func() {
		cl.wg.Wait()
		_ = tcpNet.Close()
	}()
	return cl, nil
}
