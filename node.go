package dataflasks

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
	"dataflasks/internal/wire"
)

// NodeConfig configures a standalone TCP node.
type NodeConfig struct {
	// ID must be unique across the deployment and fit in 32 bits.
	ID NodeID
	// Bind is the listen address ("host:port"; port 0 allowed).
	Bind string
	// Advertise is the address peers dial (default: the bound
	// address).
	Advertise string
	// Seeds are bootstrap contacts, each "id@host:port".
	Seeds []string
	// DataDir persists objects on disk; empty keeps them in memory.
	DataDir string
	// RoundPeriod is the gossip period (default 500ms).
	RoundPeriod time.Duration
	// Config carries the protocol configuration.
	Config Config
}

// Node is a standalone DataFlasks host on TCP — the deployable unit
// behind cmd/flasksd.
type Node struct {
	id   NodeID
	net  *transport.TCPNetwork
	core *core.Node
	st   store.Store

	mailbox chan transport.Envelope
	done    chan struct{}
	wg      sync.WaitGroup

	// drops counts mailbox overflow: messages the TCP fabric delivered
	// but the event loop was too slow to accept. Incremented from
	// connection goroutines, hence the shared counter.
	drops metrics.SharedCounter

	closeOnce sync.Once
}

// ParseSeed parses "id@host:port".
func ParseSeed(s string) (NodeID, string, error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return 0, "", fmt.Errorf("dataflasks: seed %q must be id@host:port", s)
	}
	id, err := strconv.ParseUint(s[:at], 10, 32)
	if err != nil {
		return 0, "", fmt.Errorf("dataflasks: seed %q: bad id: %w", s, err)
	}
	return NodeID(id), s[at+1:], nil
}

// StartNode boots a TCP node: it listens, learns its seeds and starts
// gossiping immediately.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == 0 || uint64(cfg.ID) > 1<<32-1 {
		return nil, fmt.Errorf("dataflasks: node id %d must be in [1, 2^32)", cfg.ID)
	}
	if cfg.RoundPeriod <= 0 {
		cfg.RoundPeriod = 500 * time.Millisecond
	}
	wire.Register()

	n := &Node{
		id:      cfg.ID,
		mailbox: make(chan transport.Envelope, defaultMailbox),
		done:    make(chan struct{}),
	}
	// The TCP fabric decodes on per-connection goroutines; funnel into
	// the mailbox so the protocol core stays single-threaded.
	handler := func(env transport.Envelope) {
		select {
		case n.mailbox <- env:
		default:
			// Congested: drop, gossip redundancy covers it — but never
			// silently; sustained growth of this counter means the
			// round period or mailbox size is mis-sized for the load.
			n.drops.Inc()
		}
	}
	tcpNet, err := transport.ListenTCP(cfg.ID, cfg.Bind, cfg.Advertise, handler)
	if err != nil {
		return nil, err
	}
	n.net = tcpNet

	coreCfg := cfg.Config.coreConfig()
	st, err := coreCfg.Store.Open(cfg.DataDir)
	if err != nil {
		tcpNet.Close()
		return nil, err
	}
	n.st = st
	coreCfg.RoundPeriod = cfg.RoundPeriod
	coreCfg.AdvertiseAddr = tcpNet.Addr()
	coreCfg.AddressBook = tcpNet
	n.core = core.NewNode(cfg.ID, coreCfg, n.st, tcpNet.Sender())

	seedIDs := make([]NodeID, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		id, addr, err := ParseSeed(s)
		if err != nil {
			tcpNet.Close()
			_ = n.st.Close()
			return nil, err
		}
		tcpNet.Learn(id, addr)
		seedIDs = append(seedIDs, id)
	}
	n.core.Bootstrap(seedIDs)

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(cfg.RoundPeriod)
		defer ticker.Stop()
		for {
			select {
			case env := <-n.mailbox:
				n.core.HandleMessage(env)
			case <-ticker.C:
				n.core.Tick()
			case <-n.done:
				return
			}
		}
	}()
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the advertised address.
func (n *Node) Addr() string { return n.net.Addr() }

// Slice returns the node's current slice claim (-1 while undecided).
func (n *Node) Slice() int32 { return n.core.Slice() }

// StoredObjects returns how many object versions the node holds.
func (n *Node) StoredObjects() int { return n.st.Count() }

// PeersKnown returns the size of the fabric's learned address
// directory.
func (n *Node) PeersKnown() int { return n.net.PeerCount() }

// MailboxDropped returns how many delivered messages were discarded
// because the node's mailbox was full (event loop congestion).
func (n *Node) MailboxDropped() uint64 { return n.drops.Load() }

// Close shuts the node down and releases the store.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		n.wg.Wait()
		err = n.net.Close()
		if cerr := n.st.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// ConnectClient opens a client against a TCP deployment. Seeds are
// "id@host:port" contacts; bind may be ":0". cfg.Slices must match the
// deployment's slice count for batch puts to group correctly.
func ConnectClient(bind string, seeds []string, cfg Config) (*Client, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("dataflasks: ConnectClient needs at least one seed")
	}
	wire.Register()
	// Client ids live in their own range; collisions across
	// independent clients are avoided by random draw.
	id := clientIDBase + NodeID(rand.Uint32N(1<<24))

	drops := &metrics.SharedCounter{} // shared with the client below
	mailbox := make(chan transport.Envelope, defaultMailbox)
	handler := func(env transport.Envelope) {
		select {
		case mailbox <- env:
		default:
			drops.Inc()
		}
	}
	tcpNet, err := transport.ListenTCP(id, bind, "", handler)
	if err != nil {
		return nil, err
	}
	ids := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		sid, addr, err := ParseSeed(s)
		if err != nil {
			tcpNet.Close()
			return nil, err
		}
		tcpNet.Learn(sid, addr)
		ids = append(ids, sid)
	}
	lb := client.NewRandomLB(ids, rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())))
	period := 500 * time.Millisecond
	clientCfg := client.Config{PutAcks: cfg.clientPutAcks(), SelfAddr: tcpNet.Addr()}
	cl := newLiveClient(id, clientCfg, tcpNet.Sender(), lb, mailbox, period, cfg.slicesOrDefault(), drops.Load)
	// Tie the fabric's lifetime to the client.
	go func() {
		cl.wg.Wait()
		_ = tcpNet.Close()
	}()
	return cl, nil
}
