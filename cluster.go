package dataflasks

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// defaultMailbox bounds each node's in-process mailbox; overflow drops
// messages, which epidemic protocols tolerate by design.
const defaultMailbox = 4096

// clientIDBase keeps client ids clear of node ids while fitting the
// 32-bit origin field of request ids.
const clientIDBase NodeID = 0xC0000000

// Cluster is an in-process DataFlasks deployment: every node runs as
// one goroutine over an in-memory fabric. It is the embedding and
// testing mode; protocol behaviour is identical to TCP deployments.
type Cluster struct {
	cfg    Config
	period time.Duration
	net    *transport.ChanNetwork

	mu      sync.Mutex
	nodes   map[NodeID]*core.Node
	stops   map[NodeID]chan struct{}
	clients []*Client
	nextID  NodeID
	nextCl  NodeID
	started bool
	closed  bool
	// deferredRuns holds node loops created before Start.
	deferredRuns []func()

	wg sync.WaitGroup
}

// ClusterOption customizes NewCluster.
type ClusterOption func(*Cluster)

// WithRoundPeriod sets the gossip round period (default 100ms — fast
// convergence for in-process clusters).
func WithRoundPeriod(d time.Duration) ClusterOption {
	return func(c *Cluster) {
		if d > 0 {
			c.period = d
		}
	}
}

// LatencyModel draws a one-way message delivery delay (see
// transport.LANLatency for the datacenter default).
type LatencyModel = transport.LatencyModel

// LANLatency approximates a datacenter network: 0.2ms base plus an
// exponential tail with 0.3ms mean, capped at 10ms.
func LANLatency() LatencyModel { return transport.LANLatency() }

// WithLatency makes the in-process fabric deliver every message after
// a real-time delay drawn from model, so network round trips cost what
// they would on a LAN. The default is immediate delivery; benchmarks
// that compare blocking against pipelined clients need the delay for
// the comparison to mean anything.
func WithLatency(model LatencyModel) ClusterOption {
	return func(c *Cluster) {
		if model == nil {
			return
		}
		var mu sync.Mutex
		rng := sim.RNG(c.cfg.Seed, 0x1a7e)
		c.net.SetDelay(func() time.Duration {
			mu.Lock()
			defer mu.Unlock()
			return model(rng)
		})
	}
}

// NewCluster creates a stopped cluster of n nodes. Call Start to run
// it and defer Stop.
func NewCluster(n int, cfg Config, opts ...ClusterOption) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataflasks: cluster size must be positive, got %d", n)
	}
	if cfg.SystemSize == 0 {
		cfg.SystemSize = n
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	c := &Cluster{
		cfg:    cfg,
		period: 100 * time.Millisecond,
		net:    transport.NewChanNetwork(),
		nodes:  make(map[NodeID]*core.Node, n),
		stops:  make(map[NodeID]chan struct{}, n),
		nextID: 1,
		nextCl: clientIDBase,
	}
	for _, opt := range opts {
		opt(c)
	}
	for i := 0; i < n; i++ {
		if _, _, err := c.addNodeLocked(); err != nil {
			return nil, err
		}
	}
	// Bootstrap every node with a few seeds drawn deterministically.
	rng := sim.RNG(cfg.Seed, 0xb007)
	ids := c.nodeIDsLocked()
	for _, id := range ids {
		seeds := make([]NodeID, 0, 5)
		for len(seeds) < 5 && len(seeds) < len(ids)-1 {
			cand := ids[rng.IntN(len(ids))]
			if cand == id || containsID(seeds, cand) {
				continue
			}
			seeds = append(seeds, cand)
		}
		c.nodes[id].Bootstrap(seeds)
	}
	return c, nil
}

func containsID(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// addNodeLocked creates and registers a node (not yet running). The
// returned closure launches the node's loop; on a stopped cluster it
// is nil (Start consumes the deferred list instead). Callers must
// finish seeding the node (Bootstrap) before invoking it — the loop
// goroutine reads protocol state from its first instant.
func (c *Cluster) addNodeLocked() (NodeID, func(), error) {
	id := c.nextID
	c.nextID++
	mailbox, sender, err := c.net.Attach(id, defaultMailbox)
	if err != nil {
		return 0, nil, fmt.Errorf("dataflasks: attach node %s: %w", id, err)
	}
	nodeCfg := c.cfg.coreConfig()
	nodeCfg.RoundPeriod = c.period
	n := core.NewNode(id, nodeCfg, store.NewMemory(), sender)
	c.nodes[id] = n
	stop := make(chan struct{})
	c.stops[id] = stop
	run := func() { c.runNode(n, mailbox, stop) }
	if !c.started {
		// Defer the goroutine to Start; remember the mailbox by
		// closure.
		c.deferredRuns = append(c.deferredRuns, run)
		run = nil
	}
	return id, run, nil
}

func (c *Cluster) runNode(n *core.Node, mailbox <-chan transport.Envelope, stop chan struct{}) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// Per-node lifecycle context: bounds every send the node makes.
		// StopShards runs before cancel (LIFO defers) so the shard
		// drain's sends still reach the fabric.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		defer n.StopShards()
		n.StartShards(ctx)
		ticker := time.NewTicker(c.period)
		defer ticker.Stop()
		for {
			select {
			case env, ok := <-mailbox:
				if !ok {
					return
				}
				n.HandleMessage(ctx, env)
			case <-ticker.C:
				n.Tick(ctx)
			case <-stop:
				return
			}
		}
	}()
}

// Start launches every node goroutine. It is an error to Start twice.
func (c *Cluster) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("dataflasks: cluster is stopped")
	}
	if c.started {
		return errors.New("dataflasks: cluster already started")
	}
	c.started = true
	for _, run := range c.deferredRuns {
		run()
	}
	c.deferredRuns = nil
	return nil
}

// Stop terminates all clients and nodes and waits for their
// goroutines.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()

	for _, cl := range clients {
		cl.Close()
	}
	c.net.Close() // closes every mailbox; node loops drain and exit
	c.wg.Wait()
}

// NodeIDs returns the live node ids in ascending order.
func (c *Cluster) NodeIDs() []NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodeIDsLocked()
}

func (c *Cluster) nodeIDsLocked() []NodeID {
	ids := make([]NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	return ids
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// AddNode grows the cluster by one bootstrapped node (usable while
// running).
func (c *Cluster) AddNode() (NodeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("dataflasks: cluster is stopped")
	}
	id, run, err := c.addNodeLocked()
	if err != nil {
		return 0, err
	}
	ids := c.nodeIDsLocked()
	rng := sim.RNG(c.cfg.Seed, uint64(id))
	seeds := make([]NodeID, 0, 5)
	for len(seeds) < 5 && len(seeds) < len(ids)-1 {
		cand := ids[rng.IntN(len(ids))]
		if cand == id || containsID(seeds, cand) {
			continue
		}
		seeds = append(seeds, cand)
	}
	c.nodes[id].Bootstrap(seeds)
	if run != nil {
		// On a running cluster the loop launches only now, after the
		// bootstrap seeding above — the loop goroutine reads protocol
		// state immediately.
		run()
	}
	return id, nil
}

// RemoveNode crashes a node (fail-stop, no goodbye), exercising the
// churn tolerance.
func (c *Cluster) RemoveNode(id NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[id]; !ok {
		return fmt.Errorf("dataflasks: unknown node %s", id)
	}
	delete(c.nodes, id)
	if stop, ok := c.stops[id]; ok {
		close(stop)
		delete(c.stops, id)
	}
	c.net.Detach(id)
	return nil
}

// SliceOf reports a node's current slice claim (-1 while undecided).
func (c *Cluster) SliceOf(id NodeID) (int32, error) {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return -1, fmt.Errorf("dataflasks: unknown node %s", id)
	}
	return n.Slice(), nil
}

// ReplicaCount reports how many live nodes hold (key, version) — a
// testing/observability helper.
func (c *Cluster) ReplicaCount(key string, version uint64) int {
	c.mu.Lock()
	nodes := make([]*core.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	count := 0
	for _, n := range nodes {
		if _, _, ok, err := n.Store().Get(key, version); err == nil && ok {
			count++
		}
	}
	return count
}

// DumpStore returns node id's logical store inventory — key to stored
// versions in ascending order — a testing/observability helper like
// ReplicaCount, used by equivalence experiments to compare converged
// cluster states. Stores are safe for concurrent readers, so the dump
// may run while the cluster gossips; it is only a consistent snapshot
// once traffic has quiesced.
func (c *Cluster) DumpStore(id NodeID) (map[string][]uint64, error) {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dataflasks: unknown node %s", id)
	}
	out := make(map[string][]uint64)
	err := n.Store().ForEach(func(key string, version uint64) bool {
		out[key] = append(out[key], version)
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, vs := range out {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	return out, nil
}

// NewClient attaches a client endpoint to the cluster.
func (c *Cluster) NewClient() (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("dataflasks: cluster is stopped")
	}
	id := c.nextCl
	c.nextCl++
	mailbox, sender, err := c.net.Attach(id, defaultMailbox)
	if err != nil {
		return nil, fmt.Errorf("dataflasks: attach client: %w", err)
	}
	lb := client.NewRandomLB(c.nodeIDsLocked(), sim.RNG(c.cfg.Seed, uint64(id)))
	cl := newLiveClient(id, client.Config{PutAcks: c.cfg.clientPutAcks()}, sender, lb, mailbox, c.period, c.cfg.slicesOrDefault(),
		func() uint64 { return c.net.DroppedFor(id) })
	c.clients = append(c.clients, cl)
	return cl, nil
}

// MailboxDropped returns how many messages the in-process fabric
// discarded — a node's (or client's) mailbox was full, or the peer was
// already removed. Epidemic redundancy tolerates the loss, but a
// counter growing while membership is stable means event loops are not
// keeping up with the round period.
func (c *Cluster) MailboxDropped() uint64 {
	return c.net.Stats().Dropped
}
