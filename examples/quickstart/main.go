// Quickstart: embed a DataFlasks cluster, write versioned objects and
// read them back.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dataflasks"
)

func main() {
	// 60 nodes, 6 slices → every object lives on ~10 replicas.
	cluster, err := dataflasks.NewCluster(60, dataflasks.Config{Slices: 6},
		dataflasks.WithRoundPeriod(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// Let the peer-sampling overlay mix and the slices form.
	fmt.Println("letting the overlay converge...")
	time.Sleep(2 * time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// DataFlasks is the bottom layer of a stratified store: the caller
	// (the paper's DataDroplets) assigns monotonically increasing
	// versions per key.
	fmt.Println("writing profile v1 and v2...")
	if err := client.Put(ctx, "user:alice", 1, []byte(`{"name":"Alice"}`)); err != nil {
		log.Fatal(err)
	}
	if err := client.Put(ctx, "user:alice", 2, []byte(`{"name":"Alice","city":"Braga"}`)); err != nil {
		log.Fatal(err)
	}

	latest, version, err := client.GetLatest(ctx, "user:alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latest  (v%d): %s\n", version, latest)

	v1, err := client.Get(ctx, "user:alice", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history (v1): %s\n", v1)

	fmt.Printf("replicas of v2 in the cluster: %d\n", cluster.ReplicaCount("user:alice", 2))
}
