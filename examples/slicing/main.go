// Slicing: watch the cluster autonomously partition itself into slices
// by node capacity, with no coordinator — then crash most of one slice
// and watch the survivors rebalance (paper §IV-A).
//
//	go run ./examples/slicing
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"dataflasks"
)

const (
	nodes  = 100
	slices = 5
)

func main() {
	cluster, err := dataflasks.NewCluster(nodes, dataflasks.Config{Slices: slices},
		dataflasks.WithRoundPeriod(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	fmt.Println("slices forming (each node estimates its capacity rank by gossip):")
	for i := 0; i < 6; i++ {
		time.Sleep(500 * time.Millisecond)
		printHistogram(cluster)
	}

	// Correlated failure: crash 80% of slice 2 (say, a rack died).
	var members []dataflasks.NodeID
	for _, id := range cluster.NodeIDs() {
		if s, err := cluster.SliceOf(id); err == nil && s == 2 {
			members = append(members, id)
		}
	}
	killed := 0
	for _, id := range members[:len(members)*4/5] {
		if err := cluster.RemoveNode(id); err == nil {
			killed++
		}
	}
	fmt.Printf("\n!!! correlated failure: crashed %d of %d members of slice 2\n\n", killed, len(members))

	fmt.Println("rank-based slicing rebalances the survivors:")
	for i := 0; i < 8; i++ {
		time.Sleep(500 * time.Millisecond)
		printHistogram(cluster)
	}
}

func printHistogram(cluster *dataflasks.Cluster) {
	counts := make([]int, slices)
	undecided := 0
	for _, id := range cluster.NodeIDs() {
		s, err := cluster.SliceOf(id)
		if err != nil {
			continue
		}
		if s < 0 {
			undecided++
			continue
		}
		counts[s]++
	}
	var b strings.Builder
	for s, c := range counts {
		fmt.Fprintf(&b, "s%d:%-3d %-22s", s, c, strings.Repeat("█", c))
	}
	fmt.Printf("%s undecided:%d\n", b.String(), undecided)
}
