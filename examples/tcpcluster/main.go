// TCP cluster: real sockets on localhost — the same protocol stack the
// simulations run, but over gob-encoded TCP streams with a gossiped
// address directory.
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dataflasks"
)

func main() {
	const n = 10
	cfg := dataflasks.Config{Slices: 2, SystemSize: n}

	fmt.Printf("starting %d TCP nodes on 127.0.0.1...\n", n)
	nodes := make([]*dataflasks.Node, 0, n)
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()

	first, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID:          1,
		Bind:        "127.0.0.1:0",
		Config:      cfg,
		RoundPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes = append(nodes, first)
	seed := fmt.Sprintf("1@%s", first.Addr())
	fmt.Printf("  node 1 @ %s (seed)\n", first.Addr())

	for i := 2; i <= n; i++ {
		nd, err := dataflasks.StartNode(dataflasks.NodeConfig{
			ID:          dataflasks.NodeID(i),
			Bind:        "127.0.0.1:0",
			Seeds:       []string{seed},
			Config:      cfg,
			RoundPeriod: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, nd)
	}

	fmt.Println("gossiping addresses and slices...")
	time.Sleep(3 * time.Second)
	for _, nd := range nodes {
		fmt.Printf("  node %s: slice=%d peers-known=%d\n", nd.ID(), nd.Slice(), nd.PeersKnown())
	}

	client, err := dataflasks.ConnectClient("127.0.0.1:0", []string{seed}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.Put(ctx, "wire", 1, []byte("hello over TCP")); err != nil {
		log.Fatal(err)
	}
	value, version, err := client.GetLatest(ctx, "wire")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q (v%d)\n", value, version)

	stored := 0
	for _, nd := range nodes {
		stored += nd.StoredObjects()
	}
	fmt.Printf("object copies across the cluster: %d\n", stored)
}
