// RESP gateway: serve a DataFlasks cluster to any Redis client. This
// example boots a single-node deployment with the gateway attached
// (exactly what `flasksd -resp-addr` does) and then talks to it with
// nothing but a plain net.Conn — no Redis library, just the RESP bytes
// any off-the-shelf client would send.
//
//	go run ./examples/resp
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"dataflasks"
	"dataflasks/internal/metrics"
	"dataflasks/internal/resp"
)

func main() {
	// One node, one slice, static slicer: a singleton that serves every
	// key immediately (a lone node has no gossip stream to rank-slice
	// from).
	cfg := dataflasks.Config{Slices: 1, Slicer: dataflasks.StaticSlicer, SystemSize: 1}
	node, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID:          1,
		Bind:        "127.0.0.1:0",
		RoundPeriod: 50 * time.Millisecond,
		Config:      cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// The gateway dispatches every RESP command through one shared
	// future-based client, so pipelined commands overlap on the wire.
	cl, err := dataflasks.ConnectClient("127.0.0.1:0",
		[]string{fmt.Sprintf("1@%s", node.Addr())}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	gw := resp.NewServer(cl, resp.Config{Stats: metrics.NewCommandStats()})
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	fmt.Printf("RESP gateway on %s — try: redis-cli -p %d\n", addr, addr.(*net.TCPAddr).AddrPort().Port())

	// A plain TCP connection speaking raw RESP. Everything below is
	// what redis-cli would put on the wire for:
	//   SET greeting "hello from RESP"
	//   GET greeting
	//   DEL greeting
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Pipelined: all three commands go out in one write; the replies
	// come back in order.
	payload := "hello from RESP"
	pipeline := fmt.Sprintf("*3\r\n$3\r\nSET\r\n$8\r\ngreeting\r\n$%d\r\n%s\r\n", len(payload), payload) +
		"*2\r\n$3\r\nGET\r\n$8\r\ngreeting\r\n" +
		"*2\r\n$3\r\nDEL\r\n$8\r\ngreeting\r\n"
	if _, err := conn.Write([]byte(pipeline)); err != nil {
		log.Fatal(err)
	}

	br := bufio.NewReader(conn)
	for _, cmd := range []string{"SET", "GET", "DEL"} {
		line, err := br.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		switch line[0] {
		case '$': // bulk: the value follows
			var n int
			fmt.Sscanf(line, "$%d", &n)
			value := make([]byte, n+2)
			if _, err := io.ReadFull(br, value); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-4s → %q\n", cmd, value[:n])
		default: // +OK, :1, -ERR ...
			fmt.Printf("%-4s → %s", cmd, line)
		}
	}

	// The inline form works too (this is what typing into telnet sends).
	if _, err := conn.Write([]byte("PING\r\n")); err != nil {
		log.Fatal(err)
	}
	pong, err := br.ReadString('\n')
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PING → %s", pong)
}
