// Anti-entropy: kill replicas of an object and watch the surviving
// slice-mates re-replicate it onto newcomers — the paper's §VII
// replication-maintenance future work, implemented.
//
//	go run ./examples/antientropy
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dataflasks"
)

func main() {
	cluster, err := dataflasks.NewCluster(60, dataflasks.Config{Slices: 6},
		dataflasks.WithRoundPeriod(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(2 * time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const key = "precious"
	if err := client.Put(ctx, key, 1, []byte("replicate me")); err != nil {
		log.Fatal(err)
	}
	time.Sleep(time.Second)
	fmt.Printf("initial replicas: %d\n", cluster.ReplicaCount(key, 1))

	// Crash half the holders and add fresh nodes to take their place.
	killed := 0
	for _, id := range cluster.NodeIDs() {
		if cluster.ReplicaCount(key, 1) <= 4 {
			break
		}
		if s, err := cluster.SliceOf(id); err != nil || s < 0 {
			continue
		}
		// Only holders matter; probing via ReplicaCount is cluster-wide,
		// so remove nodes until the count halves.
		before := cluster.ReplicaCount(key, 1)
		if err := cluster.RemoveNode(id); err != nil {
			continue
		}
		if cluster.ReplicaCount(key, 1) < before {
			killed++
			if _, err := cluster.AddNode(); err != nil {
				log.Fatal(err)
			}
		}
		if killed >= 6 {
			break
		}
	}
	fmt.Printf("crashed %d replica holders (replaced with fresh nodes): %d replicas left\n",
		killed, cluster.ReplicaCount(key, 1))

	fmt.Println("anti-entropy repairing...")
	for i := 0; i < 10; i++ {
		time.Sleep(time.Second)
		fmt.Printf("  t+%2ds: %d replicas\n", i+1, cluster.ReplicaCount(key, 1))
	}
}
