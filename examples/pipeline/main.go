// Pipeline: the asynchronous client API — futures, per-operation
// options, batched puts and deletes — and the throughput gap between
// one-blocking-op-at-a-time and hundreds of in-flight operations.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dataflasks"
)

func main() {
	cluster, err := dataflasks.NewCluster(60, dataflasks.Config{Slices: 6},
		dataflasks.WithRoundPeriod(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("letting the overlay converge...")
	time.Sleep(2 * time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const ops = 200

	// Baseline: the blocking API, one op in flight at a time. Each Put
	// is a thin wrapper over PutAsync + Wait, so this is exactly the
	// pre-futures behavior.
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := client.Put(ctx, fmt.Sprintf("block%04d", i), 1, []byte("payload")); err != nil {
			log.Fatal(err)
		}
	}
	blocking := time.Since(start)
	fmt.Printf("blocking:  %4d puts in %8s (%6.0f ops/s)\n",
		ops, blocking.Round(time.Millisecond), float64(ops)/blocking.Seconds())

	// Pipelined: issue every future first, then wait. The client core
	// tracks all of them concurrently over its single event loop.
	start = time.Now()
	futures := make([]*dataflasks.Op, 0, ops)
	for i := 0; i < ops; i++ {
		futures = append(futures, client.PutAsync(fmt.Sprintf("pipe%04d", i), 1, []byte("payload")))
	}
	for _, op := range futures {
		if err := op.Wait(ctx); err != nil {
			log.Fatal(err)
		}
	}
	pipelined := time.Since(start)
	// Pipelining hides network round-trips, so its win tracks the
	// fabric's RTT: on this zero-latency in-process fabric it is
	// modest, over TCP or the simulator's LAN model it is 40-100x
	// (see `flaskbench -exp pipeline`).
	fmt.Printf("pipelined: %4d puts in %8s (%6.0f ops/s) — %.1fx\n",
		ops, pipelined.Round(time.Millisecond), float64(ops)/pipelined.Seconds(),
		float64(blocking)/float64(pipelined))

	// Batched: objects are grouped per target slice and each group is
	// ONE wire message, applied by every replica as one store.PutBatch.
	start = time.Now()
	objs := make([]dataflasks.Object, 0, ops)
	for i := 0; i < ops; i++ {
		objs = append(objs, dataflasks.Object{
			Key: fmt.Sprintf("batch%04d", i), Version: 1, Value: []byte("payload"),
		})
	}
	if err := client.PutBatch(ctx, objs); err != nil {
		log.Fatal(err)
	}
	batched := time.Since(start)
	fmt.Printf("batched:   %4d puts in %8s (%6.0f ops/s) — %.0fx\n",
		ops, batched.Round(time.Millisecond), float64(ops)/batched.Seconds(),
		float64(blocking)/float64(batched))

	// Per-operation options override the client configuration for one
	// call: here a write that two distinct replicas must confirm, with
	// a tight per-attempt timeout.
	op := client.PutAsync("important", 1, []byte("twice-acked"),
		dataflasks.WithAcks(2), dataflasks.WithTimeout(2*time.Second))
	if err := op.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WithAcks(2) put confirmed by %d replicas after %d retries\n", op.Acks(), op.Retries())

	// And a fire-and-forget write: the future resolves instantly.
	client.PutAsync("lossy-ok", 1, []byte("best effort"), dataflasks.WithFireAndForget())

	// Deletes are first-class and routed like writes; version Latest
	// removes each replica's newest version.
	if err := client.Delete(ctx, "important", dataflasks.Latest); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Get(ctx, "important", 1); err != nil {
		fmt.Printf("after delete: get => %v\n", err)
	}
}
