// Churn: hammer a cluster with node crashes and joins while a client
// keeps reading — the dependability claim of the paper, live.
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"dataflasks"
)

func main() {
	const (
		nodes   = 80
		slices  = 8
		records = 20
	)
	cluster, err := dataflasks.NewCluster(nodes, dataflasks.Config{Slices: slices},
		dataflasks.WithRoundPeriod(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(2 * time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Printf("preloading %d records...\n", records)
	for i := 0; i < records; i++ {
		key := fmt.Sprintf("record%03d", i)
		if err := client.Put(ctx, key, 1, []byte("survives churn")); err != nil {
			log.Fatalf("preload %s: %v", key, err)
		}
	}

	fmt.Println("reading under churn (crash one node + add one node per read)...")
	rng := rand.New(rand.NewPCG(7, 7))
	ok, failed := 0, 0
	for i := 0; i < 60; i++ {
		// Replacement churn: one out, one in.
		ids := cluster.NodeIDs()
		victim := ids[rng.IntN(len(ids))]
		if err := cluster.RemoveNode(victim); err == nil {
			if _, err := cluster.AddNode(); err != nil {
				log.Fatalf("AddNode: %v", err)
			}
		}

		key := fmt.Sprintf("record%03d", rng.IntN(records))
		if _, err := client.Get(ctx, key, 1); err != nil {
			failed++
		} else {
			ok++
		}
	}
	fmt.Printf("reads: %d ok, %d failed (%.0f%% availability)\n",
		ok, failed, 100*float64(ok)/float64(ok+failed))
	fmt.Printf("population after churn: %d nodes\n", len(cluster.NodeIDs()))
}
