package dataflasks_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dataflasks"
)

// startCluster boots an in-process cluster with a fast gossip period
// and registers cleanup.
func startCluster(t *testing.T, n int, cfg dataflasks.Config) *dataflasks.Cluster {
	t.Helper()
	c, err := dataflasks.NewCluster(n, cfg, dataflasks.WithRoundPeriod(20*time.Millisecond))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestLiveClusterPutGet(t *testing.T) {
	c := startCluster(t, 40, dataflasks.Config{Slices: 4})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	// Let the overlay converge.
	time.Sleep(800 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if err := cl.Put(ctx, "greeting", 1, []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := cl.Get(ctx, "greeting", 1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("Get = %q, want %q", got, "hello")
	}

	if err := cl.Put(ctx, "greeting", 2, []byte("hello again")); err != nil {
		t.Fatalf("Put v2: %v", err)
	}
	val, ver, err := cl.GetLatest(ctx, "greeting")
	if err != nil {
		t.Fatalf("GetLatest: %v", err)
	}
	if ver != 2 || string(val) != "hello again" {
		t.Fatalf("GetLatest = (%q, v%d), want (%q, v2)", val, ver, "hello again")
	}
}

func TestLiveClusterMissingKey(t *testing.T) {
	c := startCluster(t, 30, dataflasks.Config{Slices: 3})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(500 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = cl.Get(ctx, "never-stored", 1)
	if !errors.Is(err, dataflasks.ErrNotFound) {
		t.Fatalf("Get missing key: err = %v, want ErrNotFound", err)
	}
}

func TestLiveClusterSurvivesNodeRemoval(t *testing.T) {
	c := startCluster(t, 40, dataflasks.Config{Slices: 4})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(800 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Put(ctx, "durable", 1, []byte("survives")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Crash a quarter of the cluster.
	ids := c.NodeIDs()
	for i := 0; i < len(ids)/4; i++ {
		if err := c.RemoveNode(ids[i]); err != nil {
			t.Fatalf("RemoveNode: %v", err)
		}
	}

	got, err := cl.Get(ctx, "durable", 1)
	if err != nil {
		t.Fatalf("Get after churn: %v", err)
	}
	if string(got) != "survives" {
		t.Fatalf("Get after churn = %q, want %q", got, "survives")
	}
}

func TestClusterLifecycleErrors(t *testing.T) {
	if _, err := dataflasks.NewCluster(0, dataflasks.Config{}); err == nil {
		t.Error("NewCluster(0) should fail")
	}
	c, err := dataflasks.NewCluster(3, dataflasks.Config{})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Start(); err == nil {
		t.Error("second Start should fail")
	}
	c.Stop()
	c.Stop() // idempotent
	if _, err := c.NewClient(); err == nil {
		t.Error("NewClient after Stop should fail")
	}
}
