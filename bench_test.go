// Benchmarks regenerating the paper's evaluation (§VI) and micro-
// benchmarks for the substrates. One benchmark per figure:
//
//	go test -bench=Fig3 -benchmem            # paper Figure 3
//	go test -bench=Fig4 -benchmem            # paper Figure 4
//	go test -bench=. -benchmem               # everything
//
// The figure benchmarks report msgs/node (the paper's y-axis) as a
// custom metric per sweep point; wall-clock time is the simulator's
// cost, not the system's. Full-resolution sweeps (500–3000 nodes) run
// via cmd/flaskbench; benchmarks use a reduced sweep so `go test
// -bench=.` stays minutes, not hours.
package dataflasks_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dataflasks"
	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/gossip"
	"dataflasks/internal/lab"
	"dataflasks/internal/pss"
	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
	"dataflasks/internal/workload"
)

// benchNs is the reduced node sweep for benchmarks.
var benchNs = []int{250, 500, 1000}

// BenchmarkFig3 regenerates Figure 3 (messages per node, constant
// slices) at each sweep point.
func BenchmarkFig3(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var last lab.FigureRow
			for i := 0; i < b.N; i++ {
				last = lab.MessagesAt(n, 10, lab.FigureOptions{Seed: 42 + uint64(i)})
			}
			b.ReportMetric(last.MsgsPerNode, "msgs/node")
			b.ReportMetric(float64(last.OK), "ops-ok")
		})
	}
}

// BenchmarkFig4 regenerates Figure 4 (messages per node, slices
// proportional to nodes, replication factor 50).
func BenchmarkFig4(b *testing.B) {
	for _, n := range benchNs {
		k := n / 50
		if k < 1 {
			k = 1
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var last lab.FigureRow
			for i := 0; i < b.N; i++ {
				last = lab.MessagesAt(n, k, lab.FigureOptions{Seed: 42 + uint64(i)})
			}
			b.ReportMetric(last.MsgsPerNode, "msgs/node")
			b.ReportMetric(float64(last.OK), "ops-ok")
		})
	}
}

// BenchmarkSimulationRound measures the simulator driving one full
// gossip round across a converged cluster (PSS + slicing + discovery).
func BenchmarkSimulationRound(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			c := lab.NewCluster(lab.ClusterConfig{
				N: n, Seed: 7, Node: core.Config{Slices: 10},
			})
			c.Run(20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Run(1)
			}
		})
	}
}

// BenchmarkSimulatedPut measures one epidemic write spreading through
// a converged simulated cluster until fully drained.
func BenchmarkSimulatedPut(b *testing.B) {
	c := lab.NewCluster(lab.ClusterConfig{
		N: 500, Seed: 9, Node: core.Config{Slices: 10},
	})
	cl := c.NewClient(client.Config{}, nil)
	c.Run(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.StartPut(fmt.Sprintf("bench%08d", i), 1, []byte("payload"), nil)
		c.Run(3)
	}
}

// BenchmarkLiveClusterPut measures end-to-end acknowledged writes on a
// real goroutine cluster (in-memory fabric).
func BenchmarkLiveClusterPut(b *testing.B) {
	cluster, err := dataflasks.NewCluster(40, dataflasks.Config{Slices: 4},
		dataflasks.WithRoundPeriod(10*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop()
	cl, err := cluster.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // converge
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("bench%08d", i), 1, []byte("payload")); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkMemoryStorePut(b *testing.B) {
	s := store.NewMemory()
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Put(fmt.Sprintf("key%08d", i%10000), uint64(i), val)
	}
}

func BenchmarkMemoryStoreGetLatest(b *testing.B) {
	s := store.NewMemory()
	defer s.Close()
	val := make([]byte, 100)
	for i := 0; i < 10000; i++ {
		_ = s.Put(fmt.Sprintf("key%08d", i), 1, val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, _ = s.Get(fmt.Sprintf("key%08d", i%10000), store.Latest)
	}
}

func BenchmarkDiskStorePut(b *testing.B) {
	s, err := store.OpenDisk(b.TempDir(), store.DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Put(fmt.Sprintf("key%08d", i), 1, val)
	}
}

func BenchmarkLogStorePut(b *testing.B) {
	s, err := store.OpenLog(b.TempDir(), store.LogOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Put(fmt.Sprintf("key%08d", i), 1, val)
	}
}

func BenchmarkLogStoreGetLatest(b *testing.B) {
	s, err := store.OpenLog(b.TempDir(), store.LogOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	for i := 0; i < 10000; i++ {
		_ = s.Put(fmt.Sprintf("key%08d", i), 1, val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, _ = s.Get(fmt.Sprintf("key%08d", i%10000), store.Latest)
	}
}

// BenchmarkStorePutFsync is the durability head-to-head: file-per-
// object with an fsync per write versus the log engine's group commit.
// Concurrent writers let the log coalesce fsyncs; the disk engine pays
// one per object no matter what.
func BenchmarkStorePutFsync(b *testing.B) {
	open := map[string]func(dir string) (store.Store, error){
		"disk": func(dir string) (store.Store, error) {
			return store.OpenDisk(dir, store.DiskOptions{Fsync: true})
		},
		"log": func(dir string) (store.Store, error) {
			return store.OpenLog(dir, store.LogOptions{Fsync: true})
		},
	}
	for _, name := range []string{"disk", "log"} {
		b.Run(name, func(b *testing.B) {
			s, err := open[name](b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			val := make([]byte, 100)
			var seq atomic.Uint64
			// Epidemic replication hands a node many concurrent writes;
			// raise the writer count so the comparison exercises group
			// commit even on single-core runners.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					if err := s.Put(fmt.Sprintf("key%08d", i), 1, val); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkLogStorePutBatch is the batched write path: 64 objects per
// PutBatch, one lock acquisition, one encoded append and one
// group-commit fsync per batch — against which BenchmarkStorePutFsync
// pays per object.
func BenchmarkLogStorePutBatch(b *testing.B) {
	s, err := store.OpenLog(b.TempDir(), store.LogOptions{Fsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	const batchSize = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs := make([]store.Object, batchSize)
		for j := range objs {
			objs[j] = store.Object{Key: fmt.Sprintf("key%08d-%02d", i, j), Version: 1, Value: val}
		}
		if err := s.PutBatch(objs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batchSize, "objs/op")
}

// BenchmarkLogRecovery measures reopening (sequential replay + index
// rebuild) of a log holding 10k objects.
func BenchmarkLogRecovery(b *testing.B) {
	dir := b.TempDir()
	s, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 100)
	for i := 0; i < 10000; i++ {
		_ = s.Put(fmt.Sprintf("key%08d", i), 1, val)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := store.OpenLog(dir, store.LogOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if s.Count() != 10000 {
			b.Fatalf("recovered %d objects", s.Count())
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

func BenchmarkCyclonShuffleRound(b *testing.B) {
	sink := transport.SenderFunc(func(context.Context, transport.NodeID, interface{}) error { return nil })
	c := pss.NewCyclon(1, pss.CyclonConfig{ViewSize: 20}, sink, sim.RNG(1, 1), nil)
	seeds := make([]transport.NodeID, 20)
	for i := range seeds {
		seeds[i] = transport.NodeID(i + 2)
	}
	c.Bootstrap(seeds)
	sample := make([]pss.Descriptor, 10)
	for i := range sample {
		sample[i] = pss.Descriptor{ID: transport.NodeID(100 + i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(context.Background())
		c.Handle(context.Background(), 2, &pss.ShuffleRequest{Sample: sample})
	}
}

func BenchmarkKeySlice(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = slicing.KeySlice(keys[i%len(keys)], 60)
	}
}

func BenchmarkDedupSeen(b *testing.B) {
	d := gossip.NewDedup(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Seen(gossip.RequestID(i % 16384))
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := workload.NewZipfian(100000, 0.99)
	rng := sim.RNG(1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next(rng)
	}
}

func BenchmarkNodeHandlePut(b *testing.B) {
	sink := transport.SenderFunc(func(context.Context, transport.NodeID, interface{}) error { return nil })
	n := core.NewNode(1, core.Config{
		Slices: 1, Slicer: core.SlicerStatic, SystemSize: 1000, AntiEntropyEvery: -1,
	}, store.NewMemory(), sink)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.HandleMessage(context.Background(), transport.Envelope{From: 2, To: 1, Msg: &core.PutRequest{
			ID:  gossip.MakeRequestID(3, uint32(i)),
			Key: fmt.Sprintf("key%08d", i%4096), Version: uint64(i), Value: val,
			TTL: 4, NoAck: true,
		}})
	}
}
