package dataflasks_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dataflasks"
)

// startWireCluster boots n TCP nodes where codecFor picks each node's
// wire codec and udpFor its datagram bind ("" disables), returning the
// nodes and the seed contact string.
func startWireCluster(t *testing.T, n int, cfg dataflasks.Config, codecFor func(i int) string, udpFor func(i int) string) ([]*dataflasks.Node, string) {
	t.Helper()
	nodes := make([]*dataflasks.Node, 0, n)
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})
	seed := ""
	for i := 1; i <= n; i++ {
		ncfg := cfg
		ncfg.WireCodec = codecFor(i)
		nodeCfg := dataflasks.NodeConfig{
			ID: dataflasks.NodeID(i), Bind: "127.0.0.1:0",
			RoundPeriod: 30 * time.Millisecond,
			UDPBind:     udpFor(i),
			Config:      ncfg,
		}
		if seed != "" {
			nodeCfg.Seeds = []string{seed}
		}
		nd, err := dataflasks.StartNode(nodeCfg)
		if err != nil {
			t.Fatalf("StartNode %d: %v", i, err)
		}
		nodes = append(nodes, nd)
		if seed == "" {
			seed = fmt.Sprintf("1@%s", nd.Addr())
		}
	}
	return nodes, seed
}

// exerciseCluster waits for membership, round-trips a write through a
// client, and requires the object to replicate beyond one node.
func exerciseCluster(t *testing.T, nodes []*dataflasks.Node, seed string, cfg dataflasks.Config, key string) {
	t.Helper()
	n := len(nodes)
	time.Sleep(2 * time.Second)
	for _, nd := range nodes {
		if nd.PeersKnown() < n/2 {
			t.Errorf("node %s knows only %d peers", nd.ID(), nd.PeersKnown())
		}
	}

	cl, err := dataflasks.ConnectClient("127.0.0.1:0", []string{seed}, cfg)
	if err != nil {
		t.Fatalf("ConnectClient: %v", err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Put(ctx, key, 1, []byte("interop payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := cl.Get(ctx, key, 1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "interop payload" {
		t.Fatalf("Get = %q", got)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		total := 0
		for _, nd := range nodes {
			total += nd.StoredObjects()
		}
		if total >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("object stored on %d nodes total, want >= 2", total)
			return
		}
		time.Sleep(30 * time.Millisecond)
	}
}

// TestMixedCodecClusterConverges is the rolling-upgrade scenario: odd
// nodes speak gob, even nodes prefer binary, and the cluster still
// forms one overlay and replicates writes. Binary nodes dialing gob
// nodes must negotiate down (visible in codec_fallbacks).
func TestMixedCodecClusterConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n = 6
	cfg := dataflasks.Config{Slices: 2, SystemSize: n, Seed: 11}
	nodes, seed := startWireCluster(t, n, cfg, func(i int) string {
		if i%2 == 1 {
			return "gob"
		}
		return "binary"
	}, func(int) string { return "" })
	exerciseCluster(t, nodes, seed, cfg, "mixed-codec-key")

	fallbacks := uint64(0)
	for _, nd := range nodes {
		fallbacks += nd.WireStats().CodecFallbacks
	}
	if fallbacks == 0 {
		t.Error("a mixed cluster should record codec fallbacks on binary->gob links")
	}
}

// TestUDPControlPlaneCluster runs a uniform binary cluster with the
// datagram control plane enabled: gossip control traffic rides UDP
// frames on the TCP port, and the cluster still converges and serves
// writes (which stay on TCP).
func TestUDPControlPlaneCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n = 6
	cfg := dataflasks.Config{Slices: 2, SystemSize: n, Seed: 17}
	nodes, seed := startWireCluster(t, n, cfg, func(int) string { return "binary" }, func(int) string { return "auto" })
	for _, nd := range nodes {
		if nd.UDPAddr() == "" {
			t.Fatalf("node %s has no datagram listener", nd.ID())
		}
	}
	exerciseCluster(t, nodes, seed, cfg, "udp-control-key")

	sent := uint64(0)
	for _, nd := range nodes {
		sent += nd.WireStats().UDPSent
	}
	if sent == 0 {
		t.Error("control plane never used the datagram path")
	}
}

// TestPartialUDPClusterConverges is the rolling-enablement trap: the
// seed speaks gob with NO datagram listener while the rest run binary
// with UDP enabled. Datagrams to the seed vanish into a closed port,
// so without probe-gated datagram paths the bootstrap shuffle is lost
// and membership never forms — the probe handshake must keep control
// traffic to the seed on TCP while UDP-capable pairs still use
// datagrams with each other.
func TestPartialUDPClusterConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n = 6
	cfg := dataflasks.Config{Slices: 2, SystemSize: n, Seed: 23}
	nodes, seed := startWireCluster(t, n, cfg,
		func(i int) string {
			if i == 1 {
				return "gob"
			}
			return "binary"
		},
		func(i int) string {
			if i == 1 {
				return ""
			}
			return "auto"
		})
	exerciseCluster(t, nodes, seed, cfg, "partial-udp-key")

	sent := uint64(0)
	for _, nd := range nodes[1:] {
		sent += nd.WireStats().UDPSent
	}
	if sent == 0 {
		t.Error("UDP-capable pairs never used the datagram path")
	}
}
