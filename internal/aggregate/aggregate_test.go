package aggregate

import (
	"context"
	"math"
	"testing"

	"dataflasks/internal/sim"
	"dataflasks/internal/transport"
)

// aggNet wires n estimators with synchronous delivery and uniform
// random partners.
type aggNet struct {
	ids      []transport.NodeID
	extremas map[transport.NodeID]*Extrema
	pushsums map[transport.NodeID]*PushSum
	queue    []transport.Envelope
}

func newAggNet(n int) *aggNet {
	net := &aggNet{
		extremas: make(map[transport.NodeID]*Extrema, n),
		pushsums: make(map[transport.NodeID]*PushSum, n),
	}
	for i := 1; i <= n; i++ {
		net.ids = append(net.ids, transport.NodeID(i))
	}
	return net
}

func (a *aggNet) sender(from transport.NodeID) transport.Sender {
	return transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		a.queue = append(a.queue, transport.Envelope{From: from, To: to, Msg: msg})
		return nil
	})
}

func (a *aggNet) partner(self transport.NodeID, stream uint64) PartnerFunc {
	rng := sim.RNG(77, stream)
	return func() (transport.NodeID, bool) {
		for {
			p := a.ids[rng.IntN(len(a.ids))]
			if p != self {
				return p, true
			}
		}
	}
}

func (a *aggNet) deliverAll() {
	for len(a.queue) > 0 {
		env := a.queue[0]
		a.queue = a.queue[1:]
		if e, ok := a.extremas[env.To]; ok && e.Handle(context.Background(), env.From, env.Msg) {
			continue
		}
		if p, ok := a.pushsums[env.To]; ok {
			p.Handle(env.From, env.Msg)
		}
	}
}

func TestExtremaEstimatesSystemSize(t *testing.T) {
	const n = 200
	net := newAggNet(n)
	for _, id := range net.ids {
		net.extremas[id] = NewExtrema(ExtremaConfig{VectorLen: 128, RestartEvery: 0},
			net.sender(id), net.partner(id, uint64(id)), sim.RNG(3, uint64(id)))
	}
	for r := 0; r < 20; r++ {
		for _, id := range net.ids {
			net.extremas[id].Tick(context.Background())
		}
		net.deliverAll()
	}
	for _, id := range net.ids[:10] {
		est, _ := net.extremas[id].Estimate()
		if RelativeError(est, n) > 0.35 {
			t.Errorf("node %v estimates N=%.0f (truth %d)", id, est, n)
		}
	}
}

func TestExtremaVectorsConvergeIdentically(t *testing.T) {
	const n = 50
	net := newAggNet(n)
	for _, id := range net.ids {
		net.extremas[id] = NewExtrema(ExtremaConfig{VectorLen: 32, RestartEvery: 0},
			net.sender(id), net.partner(id, uint64(id)), sim.RNG(5, uint64(id)))
	}
	for r := 0; r < 30; r++ {
		for _, id := range net.ids {
			net.extremas[id].Tick(context.Background())
		}
		net.deliverAll()
	}
	ref, _ := net.extremas[1].Estimate()
	for _, id := range net.ids {
		est, _ := net.extremas[id].Estimate()
		if math.Abs(est-ref) > 1e-9 {
			t.Fatalf("node %v estimate %.3f differs from node 1's %.3f (min-vectors not converged)", id, est, ref)
		}
	}
}

func TestExtremaInitialEstimate(t *testing.T) {
	net := newAggNet(1)
	e := NewExtrema(ExtremaConfig{VectorLen: 64}, net.sender(1), func() (transport.NodeID, bool) { return 0, false }, sim.RNG(1, 1))
	est, _ := e.Estimate()
	// Alone, the estimate should be around 1 (its own variates).
	if est < 0.2 || est > 6 {
		t.Errorf("solo estimate = %.2f, want ~1", est)
	}
}

func TestExtremaHandleForeign(t *testing.T) {
	net := newAggNet(1)
	e := NewExtrema(ExtremaConfig{}, net.sender(1), func() (transport.NodeID, bool) { return 0, false }, sim.RNG(1, 1))
	if e.Handle(context.Background(), 2, "nope") {
		t.Error("claimed a foreign message")
	}
}

func TestPushSumAverages(t *testing.T) {
	const n = 100
	net := newAggNet(n)
	truth := 0.0
	for i, id := range net.ids {
		v := float64(i * 10)
		truth += v
		net.pushsums[id] = NewPushSum(v, net.sender(id), net.partner(id, 1000+uint64(id)))
	}
	truth /= n
	for r := 0; r < 60; r++ {
		for _, id := range net.ids {
			net.pushsums[id].Tick(context.Background())
		}
		net.deliverAll()
	}
	for _, id := range net.ids[:10] {
		avg := net.pushsums[id].Average()
		if RelativeError(avg, truth) > 0.10 {
			t.Errorf("node %v average %.1f, truth %.1f", id, avg, truth)
		}
	}
}

func TestPushSumConservesMass(t *testing.T) {
	const n = 30
	net := newAggNet(n)
	for i, id := range net.ids {
		net.pushsums[id] = NewPushSum(float64(i), net.sender(id), net.partner(id, 2000+uint64(id)))
	}
	for r := 0; r < 25; r++ {
		for _, id := range net.ids {
			net.pushsums[id].Tick(context.Background())
		}
		net.deliverAll() // all mass delivered: none in flight
	}
	var sum, weight float64
	for _, id := range net.ids {
		sum += net.pushsums[id].sum
		weight += net.pushsums[id].weight
	}
	wantSum := float64(n*(n-1)) / 2
	if math.Abs(sum-wantSum) > 1e-6 {
		t.Errorf("total sum = %v, want %v", sum, wantSum)
	}
	if math.Abs(weight-float64(n)) > 1e-6 {
		t.Errorf("total weight = %v, want %d", weight, n)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Errorf("RelativeError(110,100) = %v", RelativeError(110, 100))
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("division by zero truth not inf")
	}
}
