// Package aggregate implements gossip-based aggregation in the style of
// the fault-tolerant aggregation work the paper cites ([24]): every
// node learns global quantities — system size, attribute averages —
// from purely local exchanges.
//
// Two estimators are provided:
//
//   - Extrema propagation for system size: every node draws M
//     exponential(1) variates; gossip folds views with pointwise MIN
//     (idempotent, so duplicates and message loss are harmless). After
//     the vector converges, sum(min-vector) is Gamma(M, 1/N)-ish and
//     N̂ = (M-1)/sum is an unbiased size estimate.
//   - Push-sum averaging (Kempe et al.) for attribute means, with
//     mass-conserving pairwise transfers.
//
// The size estimate is what lets nodes auto-tune fanout = ln(N̂)+c and
// TTL without configuration (§II's dissemination sizing).
package aggregate

import (
	"context"
	"math"
	"math/rand/v2"

	"dataflasks/internal/transport"
)

// ExtremaMsg carries a node's current min-vector.
type ExtremaMsg struct {
	Seeds []float64
}

// PartnerFunc supplies a random gossip partner.
type PartnerFunc func() (transport.NodeID, bool)

// ExtremaConfig tunes the size estimator.
type ExtremaConfig struct {
	// VectorLen M trades accuracy (stderr ≈ N/sqrt(M-2)) for message
	// size. Default 64.
	VectorLen int
	// RestartEvery re-draws the local variates and restarts convergence
	// every this many ticks so departures (which would otherwise pin
	// old minima forever) age out. Default 64; 0 keeps one epoch
	// forever.
	RestartEvery int
	// OnSendErr observes gossip send failures. The fold is idempotent,
	// so a lost push costs only a round — but the failure is counted,
	// never silently dropped (wire_send_errors).
	OnSendErr func(error)
}

func (c *ExtremaConfig) defaults() {
	if c.VectorLen <= 0 {
		c.VectorLen = 64
	}
	if c.RestartEvery < 0 {
		c.RestartEvery = 0
	} else if c.RestartEvery == 0 {
		c.RestartEvery = 64
	}
}

// Extrema is the extrema-propagation size estimator. Not safe for
// concurrent use.
type Extrema struct {
	cfg     ExtremaConfig
	out     transport.Sender
	partner PartnerFunc
	rng     *rand.Rand

	local []float64 // this node's own variates (kept across folds)
	vec   []float64 // current min-vector
	ticks int
	est   float64
	// converged counts ticks without vector change: a proxy for "the
	// estimate is usable".
	stableTicks int
}

// NewExtrema creates a size estimator.
func NewExtrema(cfg ExtremaConfig, out transport.Sender, partner PartnerFunc, rng *rand.Rand) *Extrema {
	cfg.defaults()
	if out == nil || partner == nil || rng == nil {
		panic("aggregate: NewExtrema requires sender, partner func and rng")
	}
	e := &Extrema{cfg: cfg, out: out, partner: partner, rng: rng}
	e.restart()
	return e
}

func (e *Extrema) restart() {
	e.local = make([]float64, e.cfg.VectorLen)
	for i := range e.local {
		e.local[i] = e.rng.ExpFloat64()
	}
	e.vec = make([]float64, e.cfg.VectorLen)
	copy(e.vec, e.local)
	e.stableTicks = 0
}

// Estimate returns the current size estimate (1 before convergence
// begins) and the number of ticks the min-vector has been stable.
func (e *Extrema) Estimate() (n float64, stableTicks int) {
	sum := 0.0
	for _, v := range e.vec {
		sum += v
	}
	if sum <= 0 {
		return 1, e.stableTicks
	}
	// (M-1)/sum is the unbiased MLE-adjusted estimator for N from the
	// minimum of N exponentials in each coordinate.
	n = float64(len(e.vec)-1) / sum
	if n < 1 {
		n = 1
	}
	return n, e.stableTicks
}

// sendErr reports a failed gossip send to the configured observer.
func (e *Extrema) sendErr(err error) {
	if err != nil && e.cfg.OnSendErr != nil {
		e.cfg.OnSendErr(err)
	}
}

// Tick runs one gossip round: push the vector to a random partner.
// ctx bounds the round's sends.
func (e *Extrema) Tick(ctx context.Context) {
	e.ticks++
	if e.cfg.RestartEvery > 0 && e.ticks%e.cfg.RestartEvery == 0 {
		e.restart()
	}
	peer, ok := e.partner()
	if !ok {
		return
	}
	vec := make([]float64, len(e.vec))
	copy(vec, e.vec)
	e.sendErr(e.out.Send(ctx, peer, &ExtremaMsg{Seeds: vec}))
	e.stableTicks++
}

// Handle folds a received vector; it reports false for foreign
// messages. Receivers push back when the fold taught them something,
// which spreads news fast without flooding. ctx bounds the push-back.
func (e *Extrema) Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool {
	m, ok := msg.(*ExtremaMsg)
	if !ok {
		return false
	}
	changedMine, theirsStale := e.fold(m.Seeds)
	if changedMine {
		e.stableTicks = 0
	}
	if theirsStale {
		vec := make([]float64, len(e.vec))
		copy(vec, e.vec)
		e.sendErr(e.out.Send(ctx, from, &ExtremaMsg{Seeds: vec}))
	}
	return true
}

// fold merges pointwise minima. It reports whether our vector improved
// and whether the sender's vector was missing any of our minima.
func (e *Extrema) fold(theirs []float64) (changedMine, theirsStale bool) {
	n := len(e.vec)
	if len(theirs) < n {
		n = len(theirs)
	}
	for i := 0; i < n; i++ {
		switch {
		case theirs[i] < e.vec[i]:
			e.vec[i] = theirs[i]
			changedMine = true
		case theirs[i] > e.vec[i]:
			theirsStale = true
		}
	}
	return changedMine, theirsStale
}

// PushSumMsg carries half the sender's (sum, weight) mass.
type PushSumMsg struct {
	Sum    float64
	Weight float64
}

// PushSum is the Kempe et al. mass-conserving average estimator: each
// node holds (sum, weight) initialized to (value, 1); every tick it
// keeps half its mass and sends half to a random partner; sum/weight
// converges to the global average at every node. Not safe for
// concurrent use.
type PushSum struct {
	out     transport.Sender
	partner PartnerFunc

	// OnSendErr observes transfer send failures (optional; set before
	// the first Tick). Counted by the node runtime (wire_send_errors).
	OnSendErr func(error)

	sum    float64
	weight float64
}

// NewPushSum creates an average estimator seeded with this node's
// value.
func NewPushSum(value float64, out transport.Sender, partner PartnerFunc) *PushSum {
	if out == nil || partner == nil {
		panic("aggregate: NewPushSum requires sender and partner func")
	}
	return &PushSum{out: out, partner: partner, sum: value, weight: 1}
}

// Average returns the node's current estimate of the global mean.
func (p *PushSum) Average() float64 {
	if p.weight == 0 {
		return 0
	}
	return p.sum / p.weight
}

// Tick sends half the mass to a random partner. ctx bounds the send.
// A send the fabric rejects outright restores the transferred mass:
// push-sum's correctness is mass conservation, and before errors were
// threaded through (PR 7) every fabric-level failure silently
// evaporated half this node's mass. (Mass lost in flight is still
// gone — that is the protocol's known loss sensitivity — but local
// failures no longer contribute.)
func (p *PushSum) Tick(ctx context.Context) {
	peer, ok := p.partner()
	if !ok {
		return
	}
	p.sum /= 2
	p.weight /= 2
	if err := p.out.Send(ctx, peer, &PushSumMsg{Sum: p.sum, Weight: p.weight}); err != nil {
		p.sum *= 2
		p.weight *= 2
		if p.OnSendErr != nil {
			p.OnSendErr(err)
		}
	}
}

// Handle folds received mass; it reports false for foreign messages.
func (p *PushSum) Handle(_ transport.NodeID, msg interface{}) bool {
	m, ok := msg.(*PushSumMsg)
	if !ok {
		return false
	}
	p.sum += m.Sum
	p.weight += m.Weight
	return true
}

// RelativeError is a test helper: |est-truth|/truth.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		return math.Inf(1)
	}
	return math.Abs(est-truth) / truth
}
