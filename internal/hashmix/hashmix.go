// Package hashmix provides a 64-bit finalizer and helpers shared by
// every place that turns a hash into a ring position or slice index.
//
// FNV-1a alone is not enough: its final multiply leaves the high bits
// of short inputs (8-byte node ids, short keys) barely mixed, which
// once collapsed an entire 200-node cluster into a single slice. The
// splitmix64 finalizer gives full avalanche.
package hashmix

import "hash/fnv"

// Mix64 is the splitmix64 finalizer: every input bit avalanches to
// every output bit.
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// HashString hashes s with FNV-1a and finalizes with Mix64.
func HashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return Mix64(h.Sum64())
}

// HashUint64 mixes a 64-bit value directly (ids need no FNV pass).
func HashUint64(v uint64) uint64 { return Mix64(v) }

// Frac maps a mixed hash to [0, 1) with 53 bits of precision.
func Frac(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
