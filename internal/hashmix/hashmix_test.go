package hashmix

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Fatal("adjacent inputs collide")
	}
}

func TestFracInRange(t *testing.T) {
	prop := func(v uint64) bool {
		f := Frac(Mix64(v))
		return f >= 0 && f < 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestSequentialIDsSpread is the regression test for the bug where all
// 200 sequential node ids landed in one slice: the high bits of the
// mixed hash must vary for dense small inputs.
func TestSequentialIDsSpread(t *testing.T) {
	const n, buckets = 1000, 10
	counts := make([]int, buckets)
	for i := 1; i <= n; i++ {
		b := int(Frac(HashUint64(uint64(i))) * buckets)
		counts[b]++
	}
	for b, c := range counts {
		if c < n/buckets/2 || c > n/buckets*2 {
			t.Errorf("bucket %d has %d of %d (want ~%d): %v", b, c, n, n/buckets, counts)
		}
	}
}

func TestSequentialKeysSpread(t *testing.T) {
	const n, buckets = 1000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		b := int(Frac(HashString(fmt.Sprintf("user%08d", i))) * buckets)
		counts[b]++
	}
	for b, c := range counts {
		if c < n/buckets/2 || c > n/buckets*2 {
			t.Errorf("bucket %d has %d of %d: %v", b, c, n, counts)
		}
	}
}

func TestHashStringDiffersFromHashUint64(t *testing.T) {
	// Different domains should not trivially collide.
	if HashString("1") == HashUint64(1) {
		t.Error("string and uint64 domains collide on trivial input")
	}
}

func TestMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection: no two inputs in a dense
	// range may collide.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}
