package lab

import "testing"

// TestChurnConvergenceCompare is the small-scale version of the
// flaskbench churn experiment: after a 25% churn burst both digest
// modes must restore full replication, and the Bloom mode must spend
// meaningfully less digest bandwidth doing it.
func TestChurnConvergenceCompare(t *testing.T) {
	opts := ChurnConvergenceOptions{
		N:        80,
		Slices:   4,
		Records:  48,
		KillFrac: 0.25,
		Rounds:   100,
		Seed:     7,
	}
	full, bloom := ChurnConvergenceCompare(opts, 12)

	for _, r := range []ChurnConvergenceResult{full, bloom} {
		if !r.Converged {
			t.Errorf("%s mode never restored full replication (min coverage %.2f after %d rounds)",
				r.Mode, r.MinCoverage, r.Rounds)
		}
		if r.PushedObjects == 0 {
			t.Errorf("%s mode pushed no objects — repair did not run", r.Mode)
		}
		if r.DigestBytes == 0 {
			t.Errorf("%s mode reported no digest bytes — accounting broken", r.Mode)
		}
	}
	if full.DigestBytes <= bloom.DigestBytes {
		t.Errorf("bloom digests (%d B) not cheaper than full headers (%d B)",
			bloom.DigestBytes, full.DigestBytes)
	}
	t.Logf("full-header: converged@%d digest=%dB push=%dB objs=%d",
		full.ConvergedRound, full.DigestBytes, full.PushBytes, full.PushedObjects)
	t.Logf("bloom:       converged@%d digest=%dB push=%dB objs=%d (digest ratio %.1fx)",
		bloom.ConvergedRound, bloom.DigestBytes, bloom.PushBytes, bloom.PushedObjects,
		float64(full.DigestBytes)/float64(bloom.DigestBytes))
}
