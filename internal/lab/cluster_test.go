package lab

import (
	"testing"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/store"
	"dataflasks/internal/workload"
)

func smallCluster(t *testing.T, n, slices int, seed uint64) *Cluster {
	t.Helper()
	return NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{Slices: slices},
	})
}

func TestClusterSlicingConverges(t *testing.T) {
	c := smallCluster(t, 100, 5, 7)
	c.Run(30)

	sizes := c.SliceSizes()
	if n, ok := sizes[-1]; ok && n > 0 {
		t.Fatalf("after 30 rounds %d nodes still undecided: %v", n, sizes)
	}
	// Every slice should be populated and roughly balanced (20 ± 15).
	for s := int32(0); s < 5; s++ {
		if sizes[s] < 5 || sizes[s] > 35 {
			t.Errorf("slice %d has %d members, want 5..35 of 100: %v", s, sizes[s], sizes)
		}
	}
	if acc := c.SliceAccuracy(); acc < 0.6 {
		t.Errorf("slice accuracy %.2f, want >= 0.6", acc)
	}
}

func TestClusterPutGetRoundTrip(t *testing.T) {
	c := smallCluster(t, 100, 5, 11)
	cl := c.NewClient(client.Config{}, nil)
	c.Run(30)

	var putDone, getDone client.Result
	cl.StartPut("alpha", 1, []byte("value-1"), func(r client.Result) { putDone = r })
	c.Run(10)
	if putDone.Err != nil {
		t.Fatalf("put failed: %v", putDone.Err)
	}

	replicas := c.ReplicaCount("alpha", 1)
	if replicas < 5 {
		t.Errorf("object replicated to %d nodes, want >= 5 (slice size ~20)", replicas)
	}

	cl.StartGet("alpha", store.Latest, func(r client.Result) { getDone = r })
	c.Run(10)
	if getDone.Err != nil {
		t.Fatalf("get failed: %v", getDone.Err)
	}
	if string(getDone.Value) != "value-1" {
		t.Fatalf("get returned %q, want %q", getDone.Value, "value-1")
	}
	if getDone.Version != 1 {
		t.Fatalf("get returned version %d, want 1", getDone.Version)
	}
}

func TestClusterVersionedReads(t *testing.T) {
	c := smallCluster(t, 80, 4, 13)
	cl := c.NewClient(client.Config{}, nil)
	c.Run(30)

	for v := uint64(1); v <= 3; v++ {
		val := []byte{byte('a' + v)}
		cl.StartPut("k", v, val, nil)
		c.Run(8)
	}

	var r1, rLatest client.Result
	cl.StartGet("k", 1, func(r client.Result) { r1 = r })
	cl.StartGet("k", store.Latest, func(r client.Result) { rLatest = r })
	c.Run(10)

	if r1.Err != nil || r1.Version != 1 {
		t.Errorf("versioned get: err=%v version=%d, want version 1", r1.Err, r1.Version)
	}
	if rLatest.Err != nil || rLatest.Version != 3 {
		t.Errorf("latest get: err=%v version=%d, want version 3", rLatest.Err, rLatest.Version)
	}
}

// TestWorkloadPreloadDirect drives a read-only workload over a key
// space bulk-loaded straight into the slice owners' stores (PutBatch
// per node), verifying the direct preload seeds reads the epidemic
// path can serve.
func TestWorkloadPreloadDirect(t *testing.T) {
	c := smallCluster(t, 100, 5, 17)
	stats := c.RunWorkload(WorkloadOptions{
		Ops:           30,
		Mix:           workload.MixC, // read only
		Records:       40,
		PreloadDirect: true,
		Seed:          5,
	})
	if stats.OK < stats.Ops*8/10 {
		t.Fatalf("reads over direct preload: ok=%d failed=%d of %d", stats.OK, stats.Failed, stats.Ops)
	}
	// Every record must be replicated: each key's slice owners were
	// batch-seeded before the measured phase.
	for i := 0; i < 40; i++ {
		if c.ReplicaCount(workload.Key(i), 1) == 0 {
			t.Fatalf("record %d not present on any node after direct preload", i)
		}
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() []uint64 {
		c := smallCluster(t, 60, 4, 99)
		cl := c.NewClient(client.Config{}, nil)
		c.Run(20)
		for i := 0; i < 5; i++ {
			cl.StartPut(string(rune('a'+i)), 1, []byte{byte(i)}, nil)
		}
		c.Run(15)
		return c.MessagesPerNode()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different population: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged: %d vs %d messages", i, a[i], b[i])
		}
	}
}
