package lab

import (
	"fmt"
	"testing"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
	"dataflasks/internal/workload"
)

// batchCountingStore records how write traffic reaches the engine.
// The simulation is single-threaded, so plain counters suffice.
type batchCountingStore struct {
	store.Store
	putCalls   int
	batchCalls int
	batchSizes []int
}

func (s *batchCountingStore) Put(key string, version uint64, value []byte) error {
	s.putCalls++
	return s.Store.Put(key, version, value)
}

func (s *batchCountingStore) PutBatch(objs []store.Object) error {
	s.batchCalls++
	s.batchSizes = append(s.batchSizes, len(objs))
	return s.Store.PutBatch(objs)
}

// TestBatchPutConvergesViaSinglePutBatch pins the acceptance criterion
// of the batched write path: a client batch reaches the target slice's
// replicas, converges (every reached replica holds every object), and
// lands on each replica through exactly ONE store.PutBatch call —
// never as per-object puts.
func TestBatchPutConvergesViaSinglePutBatch(t *testing.T) {
	const (
		n      = 80
		slices = 4
		seed   = 11
	)
	stores := make(map[transport.NodeID]*batchCountingStore)
	c := NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{
			Slices: slices,
			Slicer: core.SlicerStatic, // slice membership known instantly
			// Anti-entropy also calls PutBatch; keep it out of the count.
			AntiEntropyEvery: -1,
		},
		StoreFactory: func(id transport.NodeID) store.Store {
			s := &batchCountingStore{Store: store.NewMemory()}
			stores[id] = s
			return s
		},
	})
	c.Run(20) // fill PSS and intra views

	// Build a batch wholly owned by one slice, as the public client's
	// per-slice grouping produces.
	const target = int32(2)
	objs := make([]store.Object, 0, 48)
	for i := 0; len(objs) < 48; i++ {
		key := fmt.Sprintf("bulk%06d", i)
		if slicing.KeySlice(key, slices) == target {
			objs = append(objs, store.Object{Key: key, Version: 1, Value: []byte("payload")})
		}
	}

	cl := c.NewClient(client.Config{PutAcks: 1}, nil)
	var res *client.Result
	c.Engine.Schedule(0, func() {
		cl.StartPutBatch(objs, client.Opts{}, func(r client.Result) { res = &r })
	})
	c.Run(30) // deliver, ack, and let intra relays drain

	if res == nil {
		t.Fatal("batch put never completed")
	}
	if res.Err != nil {
		t.Fatalf("batch put failed: %v", res.Err)
	}

	sliceNodes, converged := 0, 0
	for _, node := range c.Nodes() {
		if node.Slice() != target {
			if got := node.Store().Count(); got != 0 {
				t.Errorf("off-slice node %s stored %d batch objects", node.ID(), got)
			}
			continue
		}
		sliceNodes++
		cs := stores[node.ID()]
		if node.Store().Count() == 0 {
			continue // flood w.h.p. coverage, not a guarantee
		}
		converged++
		if node.Store().Count() != len(objs) {
			t.Errorf("node %s holds %d of %d batch objects (partial batch application)",
				node.ID(), node.Store().Count(), len(objs))
		}
		if cs.putCalls != 0 {
			t.Errorf("node %s applied batch objects via %d individual Puts", node.ID(), cs.putCalls)
		}
		if cs.batchCalls != 1 || cs.batchSizes[0] != len(objs) {
			t.Errorf("node %s applied the batch via %d PutBatch calls (sizes %v), want one call of %d",
				node.ID(), cs.batchCalls, cs.batchSizes, len(objs))
		}
	}
	if sliceNodes == 0 {
		t.Fatal("no node claims the target slice")
	}
	// Replica convergence: the write flood reaches (nearly) the whole
	// slice; anti-entropy is off, so this is the raw dissemination.
	if converged*10 < sliceNodes*8 {
		t.Fatalf("batch converged on %d of %d slice nodes, want >= 80%%", converged, sliceNodes)
	}
}

// TestPipelineComparisonSpeedup pins the headline claim of the async
// API: pipelined and batched puts complete the same workload at least
// 5x faster (virtual wall-clock) than one-blocking-op-at-a-time, at
// the same ack level.
func TestPipelineComparisonSpeedup(t *testing.T) {
	rows := PipelineComparison(150, 10, 100, 1, 42)
	byMode := map[string]PipelineRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Failed > 0 {
			t.Errorf("mode %s: %d of %d ops failed", r.Mode, r.Failed, r.Ops)
		}
		if r.OK == 0 || r.Elapsed <= 0 {
			t.Fatalf("mode %s: degenerate measurement %+v", r.Mode, r)
		}
	}
	blocking := byMode["blocking"].Elapsed
	for _, mode := range []string{"pipelined", "batch"} {
		if got := byMode[mode].Elapsed; got*5 > blocking {
			t.Errorf("%s elapsed %v vs blocking %v: speedup %.1fx, want >= 5x",
				mode, got, blocking, float64(blocking)/float64(got))
		}
	}
	// The batch path must also collapse the per-object wire cost.
	if byMode["batch"].DataMsgsPerOp >= byMode["pipelined"].DataMsgsPerOp/2 {
		t.Errorf("batch data msgs/op %.1f not well below pipelined %.1f",
			byMode["batch"].DataMsgsPerOp, byMode["pipelined"].DataMsgsPerOp)
	}
}

// TestWorkloadPreloadBatch runs a read-mix workload whose preload goes
// through the batched client path, verifying reads then succeed
// against batch-loaded replicas.
func TestWorkloadPreloadBatch(t *testing.T) {
	c := NewCluster(ClusterConfig{
		N:    60,
		Seed: 3,
		Node: core.Config{Slices: 4},
	})
	stats := c.RunWorkload(WorkloadOptions{
		Ops:          30,
		Records:      40,
		Mix:          workload.MixC,
		PreloadBatch: true,
		Seed:         9,
	})
	if stats.Failed > stats.Ops/10 {
		t.Fatalf("reads over batch-preloaded data: %d of %d failed", stats.Failed, stats.Ops)
	}
}
