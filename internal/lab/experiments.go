package lab

import (
	"dataflasks/internal/churn"
	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/dht"
	"dataflasks/internal/gossip"
	"dataflasks/internal/metrics"
	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/workload"
)

// ---------------------------------------------------------------------------
// E3 — slicing convergence and accuracy (with and without churn)

// SlicingPoint is one round's measurement.
type SlicingPoint struct {
	Round    int
	Accuracy float64
	// Undecided counts nodes still reporting SliceUnknown.
	Undecided int
}

// SlicingConvergence runs n nodes with k slices for rounds rounds,
// sampling accuracy each round while injecting churnRate replacement
// churn per round.
func SlicingConvergence(n, k, rounds int, churnRate float64, slicer core.SlicerKind, seed uint64) []SlicingPoint {
	c := NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{Slices: k, Slicer: slicer},
	})
	inj := churn.NewInjector(churnRate, sim.RNG(seed, 0xc42))
	points := make([]SlicingPoint, 0, rounds)
	for r := 1; r <= rounds; r++ {
		c.Run(1)
		if churnRate > 0 {
			inj.Tick(c)
		}
		points = append(points, SlicingPoint{
			Round:     r,
			Accuracy:  c.SliceAccuracy(),
			Undecided: c.SliceSizes()[-1],
		})
	}
	return points
}

// ---------------------------------------------------------------------------
// E4 — correlated slice failure: adaptive slicing re-balances, the
// static "coin toss" baseline cannot (§IV-A)

// CorrelatedResult compares slice repopulation after a targeted
// failure.
type CorrelatedResult struct {
	Slicer        core.SlicerKind
	TargetSlice   int32
	Killed        int
	BeforeMembers int
	// AfterMembers tracks the victim slice's population at each
	// measured round after the failure.
	AfterMembers []int
}

// CorrelatedFailure kills frac of one slice's members and watches the
// population recover (or not) over measureRounds.
func CorrelatedFailure(n, k int, frac float64, slicer core.SlicerKind, measureRounds int, seed uint64) CorrelatedResult {
	c := NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{Slices: k, Slicer: slicer},
	})
	c.Run(40) // converge first

	target := int32(k / 2)
	before := c.SliceSizes()[target]
	killed := churn.KillSliceFraction(c, target, frac, sim.RNG(seed, 0xdead))

	res := CorrelatedResult{
		Slicer:        slicer,
		TargetSlice:   target,
		Killed:        killed,
		BeforeMembers: before,
	}
	for r := 0; r < measureRounds; r++ {
		c.Run(5)
		res.AfterMembers = append(res.AfterMembers, c.SliceSizes()[target])
	}
	return res
}

// ---------------------------------------------------------------------------
// E5 — read availability under churn (the dependability headline)

// ChurnPoint is one churn rate's availability measurement.
type ChurnPoint struct {
	ChurnPerRound float64
	OK, Failed    int
	Availability  float64
	Retries       int
}

// AvailabilityUnderChurn preloads records, then runs a read-heavy
// workload while replacement churn runs at each rate.
func AvailabilityUnderChurn(n, k int, rates []float64, ops int, seed uint64) []ChurnPoint {
	points := make([]ChurnPoint, 0, len(rates))
	for _, rate := range rates {
		c := NewCluster(ClusterConfig{
			N:    n,
			Seed: seed + uint64(rate*10000),
			Node: core.Config{Slices: k, AntiEntropyEvery: 5},
		})
		cl := c.NewClient(client.Config{}, nil)
		c.Run(30)

		records := 20
		for i := 0; i < records; i++ {
			cl.StartPut(workload.Key(i), 1, []byte("payload"), nil)
		}
		c.Run(20)

		inj := churn.NewInjector(rate, sim.RNG(seed, 0xc0de))
		var ok, failed, retries int
		done := func(r client.Result) {
			retries += r.Retries
			if r.Err != nil {
				failed++
			} else {
				ok++
			}
		}
		rng := sim.RNG(seed, 0xf00d)
		issued := 0
		for issued < ops {
			c.Run(1)
			inj.Tick(c)
			for i := 0; i < 2 && issued < ops; i++ {
				cl.StartGet(workload.Key(rng.IntN(records)), store.Latest, done)
				issued++
			}
		}
		c.Run(80) // drain: every op completes or exhausts retries
		points = append(points, ChurnPoint{
			ChurnPerRound: rate,
			OK:            ok,
			Failed:        failed,
			Availability:  float64(ok) / float64(ok+failed),
			Retries:       retries,
		})
	}
	return points
}

// ---------------------------------------------------------------------------
// E6 — replication repair via anti-entropy

// RepairPoint tracks one object's replica count over time.
type RepairPoint struct {
	Round    int
	Replicas int
}

// RepairResult reports replica-count recovery after a burst kill.
type RepairResult struct {
	Key            string
	InitialCount   int
	AfterKillCount int
	Timeline       []RepairPoint
}

// ReplicationRepair stores one object, kills half its replicas, and
// watches anti-entropy restore the count.
func ReplicationRepair(n, k int, antiEntropyEvery int, seed uint64) RepairResult {
	c := NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{Slices: k, AntiEntropyEvery: antiEntropyEvery},
	})
	cl := c.NewClient(client.Config{}, nil)
	c.Run(40)

	const key = "repair-me"
	cl.StartPut(key, 1, []byte("precious"), nil)
	c.Run(15)

	res := RepairResult{Key: key, InitialCount: c.ReplicaCount(key, 1)}

	// Kill half the current holders.
	holders := 0
	for _, id := range c.AliveIDs() {
		node := c.Node(id)
		if _, _, ok, _ := node.Store().Get(key, 1); ok {
			holders++
			if holders%2 == 0 {
				c.Kill(id)
			}
		}
	}
	// Replace the killed population so slice sizes recover.
	for i := 0; i < holders/2; i++ {
		c.Spawn()
	}
	res.AfterKillCount = c.ReplicaCount(key, 1)

	for r := 5; r <= 60; r += 5 {
		c.Run(5)
		res.Timeline = append(res.Timeline, RepairPoint{Round: r, Replicas: c.ReplicaCount(key, 1)})
	}
	return res
}

// ---------------------------------------------------------------------------
// E7 — load-balancer ablation (§VII optimization)

// LBResult compares message cost with and without the slice cache.
type LBResult struct {
	Caching      bool
	MsgsPerNode  float64
	DataPerNode  float64
	OK, Failed   int
	MeanRetries  float64
	MsgsPerOp    float64
	CacheWarmups int
}

// LoadBalancerAblation runs the same read-heavy workload with the
// random and caching balancers.
func LoadBalancerAblation(n, k, ops int, seed uint64) []LBResult {
	out := make([]LBResult, 0, 2)
	for _, caching := range []bool{false, true} {
		c := NewCluster(ClusterConfig{
			N:    n,
			Seed: seed,
			Node: core.Config{Slices: k},
		})
		stats := c.RunWorkload(WorkloadOptions{
			Ops:       ops,
			Mix:       workload.MixB,
			Records:   50,
			Preload:   true,
			CachingLB: caching,
			Seed:      seed,
		})
		total := float64(stats.OK + stats.Failed)
		res := LBResult{
			Caching:     caching,
			MsgsPerNode: stats.Messages.Mean,
			DataPerNode: stats.DataMessages.Mean,
			OK:          stats.OK,
			Failed:      stats.Failed,
		}
		if total > 0 {
			res.MeanRetries = float64(stats.Retries) / total
			res.MsgsPerOp = stats.DataMessages.Mean * float64(c.N()) / total
		}
		out = append(out, res)
	}
	return out
}

// ---------------------------------------------------------------------------
// E8 — DataFlasks vs the structured DHT baseline under churn

// CompareRow is one churn rate's head-to-head measurement.
type CompareRow struct {
	ChurnPerRound float64
	// Availability of reads.
	FlasksAvail float64
	DHTAvail    float64
	// Mean messages per node over the measured phase (cost of the
	// substrate).
	FlasksMsgs float64
	DHTMsgs    float64
}

// CompareWithDHT preloads both stores, then reads under churn.
func CompareWithDHT(n, k, ops int, rates []float64, seed uint64) []CompareRow {
	rows := make([]CompareRow, 0, len(rates))
	records := 20
	for _, rate := range rates {
		row := CompareRow{ChurnPerRound: rate}

		// --- DataFlasks side
		fc := NewCluster(ClusterConfig{
			N:    n,
			Seed: seed,
			Node: core.Config{Slices: k, AntiEntropyEvery: 5},
		})
		fcl := fc.NewClient(client.Config{}, nil)
		fc.Run(30)
		for i := 0; i < records; i++ {
			fcl.StartPut(workload.Key(i), 1, []byte("payload"), nil)
		}
		fc.Run(20)
		fc.ResetMetrics()
		fInj := churn.NewInjector(rate, sim.RNG(seed, 0xaaaa))
		var fOK, fFail int
		fDone := func(r client.Result) {
			if r.Err != nil {
				fFail++
			} else {
				fOK++
			}
		}
		fRng := sim.RNG(seed, 0xbbbb)
		for issued := 0; issued < ops; {
			fc.Run(1)
			fInj.Tick(fc)
			for i := 0; i < 2 && issued < ops; i++ {
				fcl.StartGet(workload.Key(fRng.IntN(records)), store.Latest, fDone)
				issued++
			}
		}
		fc.Run(80)
		row.FlasksAvail = float64(fOK) / float64(fOK+fFail)
		row.FlasksMsgs = metrics.SummarizeValues(fc.MessagesPerNode()).Mean

		// --- DHT side
		dc := NewDHTCluster(n, dht.Config{Replicas: 3}, seed)
		dcl := dc.NewClient(dht.ClientConfig{})
		dc.Run(30)
		for i := 0; i < records; i++ {
			dcl.StartPut(workload.Key(i), 1, []byte("payload"), nil)
		}
		dc.Run(20)
		dc.ResetMetrics()
		dInj := churn.NewInjector(rate, sim.RNG(seed, 0xcccc))
		var dOK, dFail int
		dDone := func(r dht.ClientResult) {
			if r.Err != nil {
				dFail++
			} else {
				dOK++
			}
		}
		dRng := sim.RNG(seed, 0xdddd)
		for issued := 0; issued < ops; {
			dc.Run(1)
			dInj.Tick(dc)
			for i := 0; i < 2 && issued < ops; i++ {
				dcl.StartGet(workload.Key(dRng.IntN(records)), dDone)
				issued++
			}
		}
		dc.Run(80)
		row.DHTAvail = float64(dOK) / float64(dOK+dFail)
		row.DHTMsgs = metrics.SummarizeValues(dc.MessagesPerNode()).Mean

		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------------
// E9 — peer-sampling quality

// PSSQuality reports in-degree distribution statistics for the overlay
// after the given number of rounds. A uniform in-degree (Cyclon's
// signature) means every node is equally likely to be sampled; a
// skewed one (Newscast's freshness bias) concentrates load. Zero
// in-degree at a snapshot is not a partition — views churn every round
// — but counts how uneven the instantaneous graph is.
type PSSQuality struct {
	Rounds       int
	InDegree     metrics.Summary
	MaxOutAge    uint32
	ZeroInDegree int
}

// MeasurePSSQuality runs a plain cluster and inspects the overlay graph.
func MeasurePSSQuality(n, rounds int, kind core.PSSKind, seed uint64) PSSQuality {
	c := NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{Slices: 4, PSS: kind},
	})
	c.Run(rounds)

	indeg := make(map[int]uint64) // index into order → count
	idx := make(map[int64]int, n)
	for i, id := range c.AliveIDs() {
		idx[int64(id)] = i
	}
	var maxAge uint32
	for _, node := range c.Nodes() {
		for _, d := range node.PSSView() {
			if i, ok := idx[int64(d.ID)]; ok {
				indeg[i]++
			}
			if d.Age > maxAge {
				maxAge = d.Age
			}
		}
	}
	vals := make([]uint64, n)
	for i, v := range indeg {
		vals[i] = v
	}
	zero := 0
	for _, v := range vals {
		if v == 0 {
			zero++
		}
	}
	return PSSQuality{
		Rounds:       rounds,
		InDegree:     metrics.SummarizeValues(vals),
		MaxOutAge:    maxAge,
		ZeroInDegree: zero,
	}
}

// ---------------------------------------------------------------------------
// E10 — fanout sweep vs delivery probability (§II theory check)

// FanoutPoint compares measured flood coverage against the paper's
// e^(-e^(-c)) bound.
type FanoutPoint struct {
	C          float64
	Fanout     int
	MeanCover  float64 // fraction of nodes reached, averaged over trials
	FullFloods int     // floods that reached every node
	Trials     int
	TheoryP    float64 // e^(-e^(-c))
	MeasuredP  float64 // FullFloods / Trials
}

// FanoutSweep floods a converged overlay with varying fanout safety
// terms and measures atomic-delivery rates. Slices are set to N (one
// node per slice) so requests travel the pure global relay path, and
// anti-entropy is disabled so nothing repairs a missed node — coverage
// is "which nodes processed the request", via the dedup caches.
//
// The measured rate sits above the e^(-e^(-c)) bound: the bound models
// one relay generation per node, while the flood's TTL lets late copies
// re-trigger relays. The shape (monotone in c, saturating at 1) is the
// §II claim under test.
func FanoutSweep(n int, cs []float64, trials int, seed uint64) []FanoutPoint {
	points := make([]FanoutPoint, 0, len(cs))
	for _, cTerm := range cs {
		cl := NewCluster(ClusterConfig{
			N:    n,
			Seed: seed,
			Node: core.Config{
				Slices:           n,
				FanoutC:          cTerm,
				AntiEntropyEvery: -1,
				// Mate discovery is pointless with singleton slices.
				DiscoveryMaxQueries: 1,
			},
		})
		cl.Run(30)

		full := 0
		var coverSum float64
		for trial := 0; trial < trials; trial++ {
			id := gossip.MakeRequestID(clientIDBase, uint32(trial+1))
			contact := cl.AliveIDs()[trial%cl.N()]
			req := &core.GetRequest{
				ID:      id,
				Key:     workload.Key(trial),
				Version: 1,
				Origin:  clientIDBase,
				TTL:     255, // full-coverage budget, stamped below
			}
			// Stamp a full flood budget explicitly: gets normally use
			// the bounded coverage TTL, but here the flood itself is
			// the object of study.
			req.TTL = gossip.TTL(n, gossip.Fanout(n, cTerm), 2)
			cl.Inject(contact, req)
			cl.Run(8)

			seen := 0
			for _, node := range cl.Nodes() {
				if node.HasSeen(id) {
					seen++
				}
			}
			coverSum += float64(seen) / float64(cl.N())
			if seen == cl.N() {
				full++
			}
		}
		points = append(points, FanoutPoint{
			C:          cTerm,
			Fanout:     gossip.Fanout(n, cTerm),
			MeanCover:  coverSum / float64(trials),
			FullFloods: full,
			Trials:     trials,
			TheoryP:    gossip.AtomicInfectionProbability(cTerm),
			MeasuredP:  float64(full) / float64(trials),
		})
	}
	return points
}
