package lab

import (
	"testing"
	"time"
)

// TestRESPComparisonSmoke runs a miniature E16: the pipelined RESP
// driver must complete the workload with zero hard errors and beat the
// blocking baseline (the full >= 5x bar is enforced by the flaskbench
// CI step at real scale; this guards the harness itself). Real-time
// latency emulation makes it a slow test.
func TestRESPComparisonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time LAN emulation; skipped in -short")
	}
	rows, err := RESPComparison(16, 2, 60, 20*time.Millisecond, 42)
	if err != nil {
		t.Fatalf("RESPComparison: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	var blocking, pipelined time.Duration
	for _, r := range rows {
		if r.OK+r.Failed != r.Ops {
			t.Fatalf("%s: %d ok + %d failed != %d ops", r.Mode, r.OK, r.Failed, r.Ops)
		}
		if r.Failed > r.Ops/10 {
			t.Fatalf("%s: %d/%d failed", r.Mode, r.Failed, r.Ops)
		}
		switch r.Mode {
		case "resp-blocking":
			blocking = r.Elapsed
		case "resp-pipelined":
			pipelined = r.Elapsed
		}
	}
	if blocking == 0 || pipelined == 0 {
		t.Fatal("missing modes in result rows")
	}
	if pipelined >= blocking {
		t.Fatalf("pipelined RESP (%s) not faster than blocking (%s)", pipelined, blocking)
	}
}
