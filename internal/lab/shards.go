// Experiment E19: the sharded data-plane runtime.
//
// Two claims are measured. Scaling: with the data plane partitioned
// across shard goroutines, one node's put/get throughput grows with
// cores instead of saturating one event loop — ShardScaling drives a
// single node's shards directly and reports ops/sec per shard count.
// Equivalence: sharding must not change what the protocol computes —
// ShardEquivalence runs the same seeded workload against a 1-shard
// and an 8-shard cluster and demands every node converge to an
// identical store inventory (keys, versions, deletions applied).
package lab

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"dataflasks"
	"dataflasks/internal/core"
	"dataflasks/internal/gossip"
	"dataflasks/internal/metrics"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// ShardScalingOptions sizes the single-node shard throughput bench.
type ShardScalingOptions struct {
	// Shards lists the shard counts to measure (e.g. 1 and 8).
	Shards []int
	// Keys is the preloaded keyspace the gets hit.
	Keys int
	// ValueBytes sizes each stored value.
	ValueBytes int
	// Producers is how many goroutines feed the shard mailboxes.
	Producers int
	// Duration is the measurement window per shard count.
	Duration time.Duration
	// Seed keys the node's deterministic RNG lanes.
	Seed uint64
}

// ShardScalingResult is one shard count's measurement.
type ShardScalingResult struct {
	Shards    int           `json:"shards"`
	Ops       uint64        `json:"ops"`
	Dropped   uint64        `json:"dropped"`
	Elapsed   time.Duration `json:"elapsed_nanos"`
	OpsPerSec float64       `json:"ops_per_sec"`
}

// ShardScaling measures one node's data-plane throughput as its shard
// count grows. The node owns a single slice (static slicer, k=1) so
// every request is served locally: the measured work is the real
// handler path — dedup, route lookup, store access, reply build —
// with the wire swallowed by a no-op sender. Producers dispatch a
// 90/10 get/put mix through DispatchData exactly as a live fabric
// would; ops counts requests the shards actually served.
func ShardScaling(opts ShardScalingOptions) []ShardScalingResult {
	if opts.Keys <= 0 {
		opts.Keys = 4096
	}
	if opts.ValueBytes <= 0 {
		opts.ValueBytes = 128
	}
	if opts.Producers <= 0 {
		opts.Producers = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	results := make([]ShardScalingResult, 0, len(opts.Shards))
	for _, shards := range opts.Shards {
		results = append(results, shardScalingRun(opts, shards))
	}
	return results
}

func shardScalingRun(opts ShardScalingOptions, shards int) ShardScalingResult {
	st := store.NewMemory()
	discard := transport.SenderFunc(func(context.Context, transport.NodeID, interface{}) error { return nil })
	n := core.NewNode(1, core.Config{
		Slices:     1,
		Slicer:     core.SlicerStatic,
		DataShards: shards,
		Seed:       opts.Seed,
	}, st, discard)

	val := make([]byte, opts.ValueBytes)
	key := func(i int) string { return fmt.Sprintf("bench-%d", i) }
	for i := 0; i < opts.Keys; i++ {
		if err := st.Put(key(i), 1, val); err != nil {
			panic(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n.StartShards(ctx)

	stop := make(chan struct{})
	done := make(chan struct{}, opts.Producers)
	start := time.Now()
	for p := 0; p < opts.Producers; p++ {
		go func(p int) {
			defer func() { done <- struct{}{} }()
			// Per-producer id lane keeps request ids unique without
			// cross-producer coordination.
			base := uint64(p+1) << 40
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key(int(i) % opts.Keys)
				var msg interface{}
				if i%10 == 0 {
					msg = &core.PutRequest{
						ID: gossip.RequestID(base | i), Key: k, Version: i,
						Value: val, NoAck: true, TTL: core.TTLUnset,
					}
				} else {
					msg = &core.GetRequest{
						ID: gossip.RequestID(base | i), Key: k,
						Version: store.Latest, Origin: 2, TTL: core.TTLUnset,
					}
				}
				n.DispatchData(transport.Envelope{From: 2, To: 1, Msg: msg})
			}
		}(p)
	}
	time.Sleep(opts.Duration)
	close(stop)
	for p := 0; p < opts.Producers; p++ {
		<-done
	}
	n.StopShards()
	elapsed := time.Since(start)

	m := n.Metrics()
	ops := m.Get(metrics.GetsServed) + m.Get(metrics.PutsServed)
	return ShardScalingResult{
		Shards:    shards,
		Ops:       ops,
		Dropped:   n.ShardDropped(),
		Elapsed:   elapsed,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
	}
}

// ShardEquivalenceOptions sizes the sharded-vs-unsharded cluster
// comparison.
type ShardEquivalenceOptions struct {
	// N is the cluster size, Slices the slice count.
	N, Slices int
	// Keys is the workload keyspace; each key gets a few versions and
	// some keys are deleted again.
	Keys int
	// Shards is the sharded cluster's DataShards (the baseline runs 1).
	Shards int
	// Period is the gossip round period.
	Period time.Duration
	// Timeout bounds the convergence wait per cluster pair.
	Timeout time.Duration
	// Seed drives both clusters identically.
	Seed uint64
}

// ShardEquivalenceResult reports the comparison's verdict.
type ShardEquivalenceResult struct {
	Equal bool `json:"equal"`
	// Nodes is how many node stores were compared.
	Nodes int `json:"nodes"`
	// Objects is the converged object-version total per cluster.
	Objects int `json:"objects"`
	// Waited is how long convergence took.
	Waited time.Duration `json:"waited_nanos"`
	// Mismatch names the first diverging node, empty when Equal.
	Mismatch string `json:"mismatch,omitempty"`
}

// ShardEquivalence runs one seeded workload — versioned puts, batch
// puts, deletes — against two identically-configured clusters that
// differ only in DataShards (1 vs opts.Shards), waits for both to
// converge, and compares every node's store inventory. The static
// slicer pins node-to-slice assignment to the node id, so converged
// stores must match node by node: same keys, same versions, deletions
// equally absent.
//
// Deletes need care: anti-entropy repairs by pushing objects a
// slice-mate is missing and carries no deletion record, so a replica
// the delete flood missed resurrects the object on everyone else —
// whether a deleted version survives depends on flood-vs-repair
// timing, not on the shard count. The driver therefore re-issues each
// delete until no replica holds the version; once globally absent,
// anti-entropy has nothing left to push and the outcome is pinned.
func ShardEquivalence(opts ShardEquivalenceOptions) (ShardEquivalenceResult, error) {
	if opts.N <= 0 {
		opts.N = 12
	}
	if opts.Slices <= 0 {
		opts.Slices = 3
	}
	if opts.Keys <= 0 {
		opts.Keys = 60
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.Period <= 0 {
		opts.Period = 20 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}

	run := func(shards int) (*dataflasks.Cluster, error) {
		cluster, err := dataflasks.NewCluster(opts.N, dataflasks.Config{
			Slices:     opts.Slices,
			SystemSize: opts.N,
			Slicer:     dataflasks.StaticSlicer,
			DataShards: shards,
			Seed:       opts.Seed,
		}, dataflasks.WithRoundPeriod(opts.Period))
		if err != nil {
			return nil, err
		}
		if err := cluster.Start(); err != nil {
			cluster.Stop()
			return nil, err
		}
		cl, err := cluster.NewClient()
		if err != nil {
			cluster.Stop()
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
		defer cancel()
		key := func(i int) string { return fmt.Sprintf("eq-%d", i) }
		// Two versions per key, written one by one and as per-slice
		// batches; every third key loses its first version again.
		for i := 0; i < opts.Keys; i++ {
			if err := cl.Put(ctx, key(i), 1, []byte(key(i))); err != nil {
				cluster.Stop()
				return nil, fmt.Errorf("put %s: %w", key(i), err)
			}
		}
		batch := make([]dataflasks.Object, 0, opts.Keys)
		for i := 0; i < opts.Keys; i++ {
			batch = append(batch, dataflasks.Object{Key: key(i), Version: 2, Value: []byte("v2")})
		}
		if err := cl.PutBatch(ctx, batch); err != nil {
			cluster.Stop()
			return nil, fmt.Errorf("putbatch: %w", err)
		}
		// Drive every third key's first version to global absence:
		// re-issue the delete while any replica still holds it (see the
		// resurrection note above). Each retry is a fresh request id,
		// so per-shard dedup does not swallow it.
		for i := 0; i < opts.Keys; i += 3 {
			for cluster.ReplicaCount(key(i), 1) > 0 {
				if err := cl.Delete(ctx, key(i), 1); err != nil {
					cluster.Stop()
					return nil, fmt.Errorf("delete %s: %w", key(i), err)
				}
				if ctx.Err() != nil {
					cluster.Stop()
					return nil, fmt.Errorf("delete %s: %w", key(i), ctx.Err())
				}
				time.Sleep(opts.Period)
			}
		}
		return cluster, nil
	}

	base, err := run(1)
	if err != nil {
		return ShardEquivalenceResult{}, err
	}
	defer base.Stop()
	sharded, err := run(opts.Shards)
	if err != nil {
		return ShardEquivalenceResult{}, err
	}
	defer sharded.Stop()

	// Convergence: poll until every node's inventory matches across the
	// two clusters (anti-entropy keeps spreading replicas until the
	// slice holds everything), or the timeout reports the first
	// mismatch.
	start := time.Now()
	deadline := start.Add(opts.Timeout)
	res := ShardEquivalenceResult{Nodes: opts.N}
	for {
		equal := true
		objects := 0
		res.Mismatch = ""
		for _, id := range base.NodeIDs() {
			a, err := base.DumpStore(id)
			if err != nil {
				return res, err
			}
			b, err := sharded.DumpStore(id)
			if err != nil {
				return res, err
			}
			if !reflect.DeepEqual(a, b) {
				equal = false
				res.Mismatch = id.String()
				break
			}
			for _, vs := range a {
				objects += len(vs)
			}
		}
		if equal && objects > 0 {
			res.Equal = true
			res.Objects = objects
			res.Waited = time.Since(start)
			return res, nil
		}
		if time.Now().After(deadline) {
			res.Waited = time.Since(start)
			return res, nil
		}
		time.Sleep(opts.Period)
	}
}
