package lab

import (
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/workload"
)

// ---------------------------------------------------------------------------
// E17 — churn convergence: time-to-replication-factor and repair
// bandwidth of the Bloom-digest protocol vs the full-header baseline

// ChurnConvergenceOptions configures one churn-convergence run.
type ChurnConvergenceOptions struct {
	// N is the cluster size, Slices the slice count k.
	N, Slices int
	// Records is the preloaded key-space size.
	Records int
	// ValueSize is the object payload size (default 128).
	ValueSize int
	// KillFrac is the fraction of nodes crashed (and replaced by fresh
	// joiners) in the churn burst.
	KillFrac float64
	// Rounds is the measured window after the burst; both protocol
	// modes run the same window so bandwidth totals are comparable.
	Rounds int
	// AntiEntropyEvery is the repair cadence in gossip rounds
	// (default 2 — aggressive, the regime under study).
	AntiEntropyEvery int
	// FullEvery is the full-header round cadence (1 = the full-header
	// baseline, every round complete header lists; larger values open
	// most rounds with a Bloom summary).
	FullEvery int
	// Seed drives every random choice.
	Seed uint64
}

func (o *ChurnConvergenceOptions) defaults() {
	if o.ValueSize <= 0 {
		o.ValueSize = 128
	}
	if o.AntiEntropyEvery <= 0 {
		o.AntiEntropyEvery = 2
	}
	if o.FullEvery == 0 {
		o.FullEvery = 1
	}
}

// ChurnConvergenceResult reports one run. Bandwidth totals cover the
// whole measured window (both modes run the same number of rounds over
// the same population, so totals compare directly).
type ChurnConvergenceResult struct {
	// Mode labels the digest protocol ("full-header" or "bloom").
	Mode string
	// Converged reports whether every slice member came to hold every
	// object of its slice within the window; ConvergedRound is the
	// first round (after the burst) where that held (-1 if never).
	Converged      bool
	ConvergedRound int
	// Rounds is the measured window length.
	Rounds int
	// MinCoverage is the final min over objects of
	// holders-in-slice / slice-members (1.0 = fully replicated).
	MinCoverage float64
	// DigestBytes sums difference-discovery bytes sent (header lists,
	// Bloom summaries, pull lists) across all nodes in the window.
	DigestBytes uint64
	// PushBytes sums repaired value bytes shipped; PushedObjects the
	// object count.
	PushBytes     uint64
	PushedObjects uint64
	// DigestBytesPerNodeRound normalizes DigestBytes by population and
	// window — the steady per-node cost of running the repair digests.
	DigestBytesPerNodeRound float64
	// RepairBytesPerObject is (DigestBytes+PushBytes)/PushedObjects:
	// what moving one object cost, overhead included.
	RepairBytesPerObject float64
}

// ChurnConvergence preloads a fully replicated key space, crashes
// KillFrac of the nodes and replaces them with fresh joiners, then
// measures how many rounds anti-entropy needs to restore full
// replication (every slice member holds every object of its slice) and
// how many digest/push bytes it spent doing so. FullEvery selects the
// repair digest mode, so the same run compared at FullEvery=1 (always
// full headers) vs >1 (Bloom rounds with a periodic full fallback) is
// the paper-style ablation for the Bloom-digest protocol.
func ChurnConvergence(opts ChurnConvergenceOptions) ChurnConvergenceResult {
	opts.defaults()
	mode := "bloom"
	if opts.FullEvery == 1 {
		mode = "full-header"
	}
	c := NewCluster(ClusterConfig{
		N:    opts.N,
		Seed: opts.Seed,
		Node: core.Config{
			Slices:               opts.Slices,
			AntiEntropyEvery:     opts.AntiEntropyEvery,
			AntiEntropyFullEvery: opts.FullEvery,
		},
	})
	defer c.Close()
	c.Run(40) // let slicing and the intra views converge

	// Preload: exact slice-complete replication, like an operator
	// bulk-load, so the churn burst is the only damage to repair.
	value := make([]byte, opts.ValueSize)
	keys := make([]string, opts.Records)
	bySlice := make(map[int32][]store.Object, opts.Slices)
	for i := range keys {
		keys[i] = workload.Key(i)
		s := slicing.KeySlice(keys[i], opts.Slices)
		bySlice[s] = append(bySlice[s], store.Object{Key: keys[i], Version: 1, Value: value})
	}
	for _, n := range c.Nodes() {
		if batch := bySlice[n.Slice()]; len(batch) > 0 {
			if err := n.Store().PutBatch(batch); err != nil {
				panic("lab: churn convergence preload: " + err.Error())
			}
		}
	}
	c.ResetMetrics()

	// The burst: crash KillFrac of the population, spawn replacements.
	// Replacements join empty — they must learn their slice AND pull
	// its whole object set through anti-entropy.
	rng := sim.RNG(opts.Seed, 0xc09e)
	alive := c.AliveIDs()
	rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	kills := int(float64(len(alive)) * opts.KillFrac)
	res := ChurnConvergenceResult{Mode: mode, Rounds: opts.Rounds, ConvergedRound: -1}
	for _, id := range alive[:kills] {
		harvestRepairMetrics(c.Node(id).Metrics(), &res)
		c.Kill(id)
	}
	for i := 0; i < kills; i++ {
		c.Spawn()
	}

	for r := 1; r <= opts.Rounds; r++ {
		c.Run(1)
		cov := c.sliceCoverage(keys, 1, opts.Slices)
		res.MinCoverage = cov
		if cov >= 1 && res.ConvergedRound < 0 {
			res.ConvergedRound = r
			res.Converged = true
		}
	}
	for _, n := range c.Nodes() {
		harvestRepairMetrics(n.Metrics(), &res)
	}
	if opts.N > 0 && opts.Rounds > 0 {
		res.DigestBytesPerNodeRound = float64(res.DigestBytes) / float64(opts.N) / float64(opts.Rounds)
	}
	if res.PushedObjects > 0 {
		res.RepairBytesPerObject = float64(res.DigestBytes+res.PushBytes) / float64(res.PushedObjects)
	}
	return res
}

// harvestRepairMetrics folds one node's repair counters into the
// result — called for nodes about to be killed (their counters vanish
// with them) and for the survivors at the end of the window.
func harvestRepairMetrics(m *metrics.NodeMetrics, res *ChurnConvergenceResult) {
	res.DigestBytes += m.Get(metrics.AntiEntropyDigestBytes)
	res.PushBytes += m.Get(metrics.AntiEntropyPushBytes)
	res.PushedObjects += m.Get(metrics.AntiEntropyPushedObjects)
}

// sliceCoverage returns the min over keys of
// holders-among-members / members-of-the-key's-slice: 1.0 means every
// node currently claiming a slice holds every preloaded object of that
// slice — the "replication factor restored" condition. A slice nobody
// claims counts as coverage 0 (its objects are unreachable).
func (c *Cluster) sliceCoverage(keys []string, version uint64, k int) float64 {
	members := make(map[int32][]*core.Node, k)
	for _, n := range c.Nodes() {
		members[n.Slice()] = append(members[n.Slice()], n)
	}
	min := 1.0
	for _, key := range keys {
		s := slicing.KeySlice(key, k)
		mates := members[s]
		if len(mates) == 0 {
			return 0
		}
		holders := 0
		for _, n := range mates {
			if _, _, ok, err := n.Store().Get(key, version); err == nil && ok {
				holders++
			}
		}
		if cov := float64(holders) / float64(len(mates)); cov < min {
			min = cov
		}
	}
	return min
}

// ChurnConvergenceCompare runs the identical churn scenario under the
// full-header baseline and the Bloom-digest protocol and returns both
// results (baseline first). bloomFullEvery is the Bloom mode's
// fallback cadence.
func ChurnConvergenceCompare(opts ChurnConvergenceOptions, bloomFullEvery int) (full, bloom ChurnConvergenceResult) {
	if bloomFullEvery <= 1 {
		bloomFullEvery = 12
	}
	opts.FullEvery = 1
	full = ChurnConvergence(opts)
	opts.FullEvery = bloomFullEvery
	bloom = ChurnConvergence(opts)
	return full, bloom
}
