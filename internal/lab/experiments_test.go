package lab

import (
	"testing"

	"dataflasks/internal/core"
	"dataflasks/internal/dht"
)

// Experiment smoke tests at reduced scale: they assert the qualitative
// claims each experiment exists to demonstrate, so a regression in any
// protocol shows up as a reversed conclusion, not just different
// numbers.

func TestSlicingConvergenceReachesAccuracy(t *testing.T) {
	points := SlicingConvergence(200, 5, 40, 0, core.SlicerRank, 3)
	last := points[len(points)-1]
	if last.Accuracy < 0.6 {
		t.Errorf("rank slicer accuracy %.2f after 40 rounds, want >= 0.6", last.Accuracy)
	}
	if last.Undecided != 0 {
		t.Errorf("%d nodes still undecided", last.Undecided)
	}
	// Accuracy improves from early rounds to late rounds.
	if points[4].Accuracy > last.Accuracy {
		t.Errorf("accuracy degraded: r5=%.2f r40=%.2f", points[4].Accuracy, last.Accuracy)
	}
}

func TestCorrelatedFailureRankRecoversStaticDoesNot(t *testing.T) {
	rank := CorrelatedFailure(200, 5, 0.8, core.SlicerRank, 6, 7)
	static := CorrelatedFailure(200, 5, 0.8, core.SlicerStatic, 6, 7)

	if rank.Killed == 0 || static.Killed == 0 {
		t.Fatalf("kills: rank=%d static=%d", rank.Killed, static.Killed)
	}
	rankFinal := rank.AfterMembers[len(rank.AfterMembers)-1]
	staticFinal := static.AfterMembers[len(static.AfterMembers)-1]

	// §IV-A's claim: the adaptive slicer repopulates the gutted slice,
	// the memoryless baseline cannot.
	if rankFinal <= staticFinal {
		t.Errorf("rank slicer final members %d not above static %d", rankFinal, staticFinal)
	}
	if rankFinal < rank.BeforeMembers/2 {
		t.Errorf("rank slicer recovered only %d of %d members", rankFinal, rank.BeforeMembers)
	}
	if staticFinal > static.BeforeMembers-static.Killed+2 {
		t.Errorf("static slicer gained members (%d) without a mechanism to", staticFinal)
	}
}

func TestAvailabilityDegradesGracefully(t *testing.T) {
	points := AvailabilityUnderChurn(150, 5, []float64{0, 0.02}, 40, 11)
	if points[0].Availability < 0.99 {
		t.Errorf("churn-free availability %.2f, want ~1", points[0].Availability)
	}
	if points[1].Availability < 0.8 {
		t.Errorf("availability at 2%%/round churn = %.2f, want >= 0.8", points[1].Availability)
	}
}

func TestReplicationRepairRestoresReplicas(t *testing.T) {
	res := ReplicationRepair(150, 5, 3, 13)
	if res.InitialCount == 0 {
		t.Fatal("object never replicated")
	}
	if res.AfterKillCount >= res.InitialCount {
		t.Fatalf("kill did not reduce replicas: %d → %d", res.InitialCount, res.AfterKillCount)
	}
	final := res.Timeline[len(res.Timeline)-1].Replicas
	if final <= res.AfterKillCount {
		t.Errorf("anti-entropy never repaired: %d → %d", res.AfterKillCount, final)
	}
}

func TestLoadBalancerCachingReducesTraffic(t *testing.T) {
	rows := LoadBalancerAblation(150, 5, 60, 17)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	random, caching := rows[0], rows[1]
	if caching.Failed > random.Failed+3 {
		t.Errorf("caching LB failed more: %d vs %d", caching.Failed, random.Failed)
	}
	// The §VII claim: a slice-aware contact collapses the global
	// dissemination phase.
	if caching.DataPerNode >= random.DataPerNode {
		t.Errorf("caching LB data traffic %f >= random %f", caching.DataPerNode, random.DataPerNode)
	}
}

func TestDHTComparisonDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping the slowest comparison sweep")
	}
	rows := CompareWithDHT(120, 5, 40, []float64{0, 0.05}, 19)
	calm, stormy := rows[0], rows[1]
	// Both work when calm.
	if calm.FlasksAvail < 0.95 || calm.DHTAvail < 0.9 {
		t.Errorf("calm availability: flasks=%.2f dht=%.2f", calm.FlasksAvail, calm.DHTAvail)
	}
	// Under heavy churn the epidemic substrate must win — the paper's
	// whole thesis.
	if stormy.FlasksAvail <= stormy.DHTAvail {
		t.Errorf("under churn flasks %.2f <= dht %.2f", stormy.FlasksAvail, stormy.DHTAvail)
	}
}

func TestPSSQualityCyclonUniform(t *testing.T) {
	q := MeasurePSSQuality(200, 30, core.PSSCyclon, 23)
	if q.ZeroInDegree > 2 {
		t.Errorf("cyclon left %d nodes with zero in-degree", q.ZeroInDegree)
	}
	// In-degree should be near the view size with modest spread.
	if q.InDegree.Mean < 10 || q.InDegree.Mean > 30 {
		t.Errorf("mean in-degree = %.1f", q.InDegree.Mean)
	}
	if q.InDegree.P99 > 3*uint64(q.InDegree.Mean) {
		t.Errorf("cyclon in-degree skewed: p99=%d mean=%.1f", q.InDegree.P99, q.InDegree.Mean)
	}
}

func TestFanoutSweepMonotone(t *testing.T) {
	points := FanoutSweep(150, []float64{-2, 1}, 10, 29)
	lo, hi := points[0], points[1]
	if hi.MeanCover < lo.MeanCover {
		t.Errorf("coverage not monotone in c: %.3f → %.3f", lo.MeanCover, hi.MeanCover)
	}
	if hi.MeanCover < 0.95 {
		t.Errorf("coverage at c=1 only %.3f", hi.MeanCover)
	}
}

func TestSliceReconfigurationGrowsReplication(t *testing.T) {
	res := SliceReconfiguration(150, 6, 3, 31)
	final := res.Timeline[len(res.Timeline)-1]
	// Halving k must grow the replica set substantially.
	if final.Replicas < res.BeforeReps*3/2 {
		t.Errorf("replicas %d → %d after halving k, want >= 1.5x", res.BeforeReps, final.Replicas)
	}
	if final.SliceAccuracy < 0.6 {
		t.Errorf("population never re-sorted: accuracy %.2f", final.SliceAccuracy)
	}
}

func TestPutFloodAblationTradeoff(t *testing.T) {
	rows := PutFloodAblation(150, 5, 37)
	full, bounded := rows[0], rows[1]
	if bounded.DataPerNode >= full.DataPerNode {
		t.Errorf("bounded flood not cheaper: %.1f vs %.1f", bounded.DataPerNode, full.DataPerNode)
	}
	// Anti-entropy must close most of the replication gap.
	if bounded.RepairedReps < full.RepairedReps/2 {
		t.Errorf("bounded flood under-replicated even after repair: %d vs %d",
			bounded.RepairedReps, full.RepairedReps)
	}
}

func TestDHTClusterBasics(t *testing.T) {
	c := NewDHTCluster(50, dht.Config{Replicas: 3}, 41)
	cl := c.NewClient(dht.ClientConfig{})
	c.Run(20)

	var put, get *dht.ClientResult
	cl.StartPut("key", 1, []byte("v"), func(r dht.ClientResult) { put = &r })
	c.Run(10)
	if put == nil || put.Err != nil {
		t.Fatalf("dht put = %+v", put)
	}
	if got := c.ReplicaCount("key", 1); got != 3 {
		t.Errorf("dht replicas = %d, want 3", got)
	}
	cl.StartGet("key", func(r dht.ClientResult) { get = &r })
	c.Run(10)
	if get == nil || get.Err != nil || string(get.Value) != "v" {
		t.Fatalf("dht get = %+v", get)
	}

	// Churn interface: kill and spawn keep the cluster usable.
	c.Kill(c.AliveIDs()[0])
	c.Spawn()
	if c.N() != 50 {
		t.Errorf("population = %d", c.N())
	}
}
