// Package lab assembles simulated DataFlasks (and baseline DHT)
// clusters on the discrete-event engine and implements every experiment
// of the paper's evaluation plus this reproduction's extensions. It is
// the Minha-equivalent test bench: thousands of unmodified protocol
// nodes in virtual time on one machine, bit-for-bit reproducible per
// seed.
//
// Cluster is the DataFlasks harness (nodes, clients, churn surface,
// metrics collection); DHTCluster mirrors it for the structured
// baseline. RunWorkload drives the paper's §VI methodology (warm up,
// preload, measure, drain) with YCSB-style mixes; Figure3/Figure4
// regenerate the paper's headline plots; the E-numbered experiment
// functions (slicing convergence, correlated failure, availability and
// convergence under churn, repair, ablations, PSS quality, fanout
// theory checks, client-API and RESP throughput) each return plain
// result structs that cmd/flaskbench renders — and, for the gated
// ones, asserts on in CI. Determinism is the point: virtual time makes
// throughput and bandwidth ratios exact enough to fail a build on.
package lab

import (
	"context"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"sort"
	"time"

	"dataflasks/internal/churn"
	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// Round is the virtual gossip period every protocol ticks at.
const Round = time.Second

// clientIDBase keeps client ids out of the node id range while still
// fitting the 32-bit origin field of request ids.
const clientIDBase = 0xC0000000

// ClusterConfig sets up a simulated DataFlasks cluster.
type ClusterConfig struct {
	// N is the initial node count.
	N int
	// Node is the per-node configuration; SystemSize and Seed are
	// overridden per cluster/node.
	Node core.Config
	// Seed drives every random choice in the cluster.
	Seed uint64
	// SeedContacts is how many bootstrap contacts each node gets
	// (default 5).
	SeedContacts int
	// LossRate drops messages uniformly at random.
	LossRate float64
	// Latency overrides the fabric latency model (default LAN).
	Latency transport.LatencyModel
	// StoreFactory builds each node's store (default: built from Store
	// and StoreDir, which means memory when both are zero).
	StoreFactory func(id transport.NodeID) store.Store
	// Store selects the persistence engine used when StoreFactory is
	// nil, so any experiment can run over any engine.
	Store core.StoreConfig
	// StoreDir roots the per-node data directories of non-memory
	// engines; each node stores under StoreDir/<id>.
	StoreDir string
	// AutoSystemSize leaves Node.SystemSize zero so nodes run the
	// gossip size estimator instead of being told N.
	AutoSystemSize bool
}

// Cluster is a simulated DataFlasks deployment.
type Cluster struct {
	Engine *sim.Engine
	Net    *transport.SimNetwork

	// ctx is the cluster-lifetime context threaded into every node's
	// Tick and HandleMessage; the simulated fabric never blocks, so it
	// only carries the plumbing contract, not cancellation pressure.
	ctx context.Context

	cfg     ClusterConfig
	rng     *rand.Rand
	nodes   map[transport.NodeID]*core.Node
	order   []transport.NodeID // alive nodes, ascending id
	tickers map[transport.NodeID]func()
	clients map[transport.NodeID]*client.Core
	nextID  transport.NodeID
	nextCl  transport.NodeID
}

var _ churn.SliceTarget = (*Cluster)(nil)

// StoreFactoryFor builds per-node stores of the configured engine,
// each rooted in its own subdirectory of baseDir. It lets every
// experiment run the identical workload over the memory, disk or log
// engine. A config needing a directory without one panics — that is a
// harness bug, not a runtime condition.
func StoreFactoryFor(sc core.StoreConfig, baseDir string) func(id transport.NodeID) store.Store {
	if baseDir == "" && sc.Engine != 0 && sc.Engine != core.StoreMemory {
		panic("lab: persistent store engine configured without StoreDir")
	}
	return func(id transport.NodeID) store.Store {
		dir := ""
		if baseDir != "" {
			dir = filepath.Join(baseDir, id.String())
		}
		s, err := sc.Open(dir)
		if err != nil {
			panic(fmt.Sprintf("lab: open store for node %s: %v", id, err))
		}
		return s
	}
}

// NewCluster builds and bootstraps a cluster (no rounds run yet).
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.N <= 0 {
		panic("lab: cluster needs N > 0")
	}
	if cfg.SeedContacts <= 0 {
		cfg.SeedContacts = 5
	}
	if cfg.StoreFactory == nil {
		sc := cfg.Store
		if sc == (core.StoreConfig{}) {
			// Honor the knob on the embedded node config too, so
			// setting it there is not a silent no-op.
			sc = cfg.Node.Store
		}
		cfg.StoreFactory = StoreFactoryFor(sc, cfg.StoreDir)
	}
	engine := sim.NewEngine()
	net := transport.NewSimNetwork(engine, transport.SimNetworkConfig{
		Latency:  cfg.Latency,
		LossRate: cfg.LossRate,
		Seed:     cfg.Seed,
	})
	c := &Cluster{
		Engine:  engine,
		Net:     net,
		ctx:     context.Background(),
		cfg:     cfg,
		rng:     sim.RNG(cfg.Seed, 0x1ab),
		nodes:   make(map[transport.NodeID]*core.Node, cfg.N),
		tickers: make(map[transport.NodeID]func()),
		clients: make(map[transport.NodeID]*client.Core),
		nextID:  1,
		nextCl:  clientIDBase,
	}
	for i := 0; i < cfg.N; i++ {
		c.addNode()
	}
	// Bootstrap views over the full initial population.
	for _, id := range c.order {
		c.nodes[id].Bootstrap(c.randomSeeds(id))
	}
	return c
}

// addNode creates, attaches and schedules one node (without bootstrap).
func (c *Cluster) addNode() transport.NodeID { return c.addNodeWith(nil) }

// addNodeWith is addNode with a config modifier applied to the fresh
// node (e.g. a joiner that bootstraps via segment streaming while the
// rest of the population does not).
func (c *Cluster) addNodeWith(mod func(*core.Config)) transport.NodeID {
	id := c.nextID
	c.nextID++

	nodeCfg := c.cfg.Node
	nodeCfg.Seed = c.cfg.Seed
	if !c.cfg.AutoSystemSize {
		nodeCfg.SystemSize = c.cfg.N
	}
	if mod != nil {
		mod(&nodeCfg)
	}

	var n *core.Node
	sender := c.Net.Attach(id, func(env transport.Envelope) { n.HandleMessage(c.ctx, env) })
	n = core.NewNode(id, nodeCfg, c.cfg.StoreFactory(id), sender)
	c.nodes[id] = n
	c.insertOrdered(id)

	// Stagger ticks uniformly inside the round so the cluster is not in
	// lockstep (Minha models the same phase noise).
	offset := time.Duration(c.rng.Int64N(int64(Round)))
	stop := c.Engine.Ticker(c.Engine.Now()+offset, Round, func(time.Duration) { n.Tick(c.ctx) })
	c.tickers[id] = stop
	return id
}

func (c *Cluster) insertOrdered(id transport.NodeID) {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id
}

func (c *Cluster) randomSeeds(self transport.NodeID) []transport.NodeID {
	seeds := make([]transport.NodeID, 0, c.cfg.SeedContacts)
	for len(seeds) < c.cfg.SeedContacts && len(seeds) < len(c.order)-1 {
		cand := c.order[c.rng.IntN(len(c.order))]
		if cand == self {
			continue
		}
		dup := false
		for _, s := range seeds {
			if s == cand {
				dup = true
				break
			}
		}
		if !dup {
			seeds = append(seeds, cand)
		}
	}
	return seeds
}

// Run advances the simulation by the given number of gossip rounds.
func (c *Cluster) Run(rounds int) {
	c.Engine.Run(c.Engine.Now() + time.Duration(rounds)*Round)
}

// N returns the live node count.
func (c *Cluster) N() int { return len(c.order) }

// Nodes returns the live nodes in ascending id order.
func (c *Cluster) Nodes() []*core.Node {
	out := make([]*core.Node, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id])
	}
	return out
}

// Node returns one node by id (nil when dead/unknown).
func (c *Cluster) Node(id transport.NodeID) *core.Node { return c.nodes[id] }

// AliveIDs implements churn.Target.
func (c *Cluster) AliveIDs() []transport.NodeID {
	out := make([]transport.NodeID, len(c.order))
	copy(out, c.order)
	return out
}

// Kill implements churn.Target: fail-stop crash. The node's store is
// closed (its on-disk state stays, as after a real crash) so engines
// with background goroutines or open files release them.
func (c *Cluster) Kill(id transport.NodeID) {
	n, ok := c.nodes[id]
	if !ok {
		return
	}
	c.Net.Detach(id)
	if stop := c.tickers[id]; stop != nil {
		stop()
	}
	_ = n.Store().Close()
	delete(c.tickers, id)
	delete(c.nodes, id)
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	if i < len(c.order) && c.order[i] == id {
		c.order = append(c.order[:i], c.order[i+1:]...)
	}
}

// Close releases every alive node's store. Memory-backed clusters do
// not need it; log/disk-backed ones hold open files (and the log
// engine a compaction goroutine) per node until closed.
func (c *Cluster) Close() {
	for _, id := range c.order {
		_ = c.nodes[id].Store().Close()
	}
}

// Spawn implements churn.Target: a fresh node joins, bootstrapped from
// live seeds.
func (c *Cluster) Spawn() transport.NodeID {
	id := c.addNode()
	c.nodes[id].Bootstrap(c.randomSeeds(id))
	return id
}

// SpawnWith is Spawn with a config modifier for the fresh node.
func (c *Cluster) SpawnWith(mod func(*core.Config)) transport.NodeID {
	id := c.addNodeWith(mod)
	c.nodes[id].Bootstrap(c.randomSeeds(id))
	return id
}

// SliceOf implements churn.SliceTarget.
func (c *Cluster) SliceOf(id transport.NodeID) int32 {
	n, ok := c.nodes[id]
	if !ok {
		return -1
	}
	return n.Slice()
}

// NewClient attaches a client endpoint with the given configuration and
// load balancer (nil lb = random over current nodes).
func (c *Cluster) NewClient(cfg client.Config, lb client.LoadBalancer) *client.Core {
	id := c.nextCl
	c.nextCl++
	if lb == nil {
		lb = client.NewRandomLB(c.AliveIDs(), sim.RNG(c.cfg.Seed, uint64(id)))
	}
	var cl *client.Core
	sender := c.Net.Attach(id, func(env transport.Envelope) { cl.HandleMessage(env) })
	cl = client.NewCore(id, cfg, sender, lb)
	c.clients[id] = cl
	stop := c.Engine.Ticker(c.Engine.Now()+Round/2, Round, func(time.Duration) { cl.Tick() })
	_ = stop // clients live for the whole simulation
	return cl
}

// Inject delivers a request directly to a node's handler at the current
// virtual instant, bypassing the client library (used by experiments
// that measure raw dissemination).
func (c *Cluster) Inject(contact transport.NodeID, msg interface{}) {
	n, ok := c.nodes[contact]
	if !ok {
		return
	}
	c.Engine.Schedule(0, func() {
		n.HandleMessage(c.ctx, transport.Envelope{From: 0, To: contact, Msg: msg})
	})
}

// ResetMetrics zeroes every node's counters and the fabric stats — the
// evaluation measures the workload phase only, after warm-up, like the
// paper's experiments.
func (c *Cluster) ResetMetrics() {
	for _, n := range c.nodes {
		n.ResetMetrics()
	}
}

// MessagesPerNode returns each live node's sent+received message count
// (the paper's Figures 3/4 metric).
func (c *Cluster) MessagesPerNode() []uint64 {
	out := make([]uint64, 0, len(c.order))
	for _, id := range c.order {
		m := c.nodes[id].Metrics()
		out = append(out, m.Get(metrics.MsgSent)+m.Get(metrics.MsgRecv))
	}
	return out
}

// NodeMetrics returns the live nodes' metric handles in id order.
func (c *Cluster) NodeMetrics() []*metrics.NodeMetrics {
	out := make([]*metrics.NodeMetrics, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id].Metrics())
	}
	return out
}

// SliceSizes returns how many live nodes currently claim each slice
// (index SliceUnknown claims are under key -1).
func (c *Cluster) SliceSizes() map[int32]int {
	out := make(map[int32]int)
	for _, id := range c.order {
		out[c.nodes[id].Slice()]++
	}
	return out
}

// SliceAccuracy compares every node's claim against its true
// rank-derived slice and returns the fraction of correct claims.
func (c *Cluster) SliceAccuracy() float64 {
	if len(c.order) == 0 {
		return 0
	}
	k := c.cfg.Node.Slices
	if k <= 0 {
		k = 10
	}
	// True slice: position of the node's attribute among all live
	// attributes.
	type nodeAttr struct {
		id   transport.NodeID
		attr float64
	}
	attrs := make([]nodeAttr, 0, len(c.order))
	for _, id := range c.order {
		attrs = append(attrs, nodeAttr{id: id, attr: c.nodes[id].Attr()})
	}
	sort.Slice(attrs, func(i, j int) bool {
		if attrs[i].attr != attrs[j].attr {
			return attrs[i].attr < attrs[j].attr
		}
		return attrs[i].id < attrs[j].id
	})
	truth := make(map[transport.NodeID]int32, len(attrs))
	for rank, na := range attrs {
		truth[na.id] = int32(rank * k / len(attrs))
	}
	correct := 0
	for _, id := range c.order {
		if c.nodes[id].Slice() == truth[id] {
			correct++
		}
	}
	return float64(correct) / float64(len(c.order))
}

// ReplicaCount returns how many live nodes hold (key, version).
func (c *Cluster) ReplicaCount(key string, version uint64) int {
	count := 0
	for _, id := range c.order {
		if _, _, ok, err := c.nodes[id].Store().Get(key, version); err == nil && ok {
			count++
		}
	}
	return count
}

// String summarizes the cluster for logs.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster[n=%d t=%s events=%d]", len(c.order), c.Engine.Now(), c.Engine.Executed())
}
