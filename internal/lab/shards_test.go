package lab

import (
	"testing"
	"time"
)

// TestShardEquivalence pins the determinism claim behind the sharded
// runtime: a cluster running eight data shards per node must converge
// to exactly the same per-node store inventory — keys, versions,
// deletions — as a single-shard cluster fed the identical seeded
// workload. Any divergence means shard routing or the coalescing
// windows changed what the protocol computes, not just how fast.
func TestShardEquivalence(t *testing.T) {
	opts := ShardEquivalenceOptions{
		N: 12, Slices: 3, Keys: 60, Shards: 8,
		Period: 15 * time.Millisecond, Timeout: 60 * time.Second, Seed: 7,
	}
	if testing.Short() {
		opts.N, opts.Keys = 8, 24
	}
	res, err := ShardEquivalence(opts)
	if err != nil {
		t.Fatalf("ShardEquivalence: %v", err)
	}
	t.Logf("result=%+v", res)
	if !res.Equal {
		t.Fatalf("clusters diverged: first mismatch at node %s after %s", res.Mismatch, res.Waited)
	}
	if res.Objects == 0 {
		t.Fatal("converged on empty stores — workload never landed")
	}
}

// TestShardScalingRuns smoke-tests the throughput experiment shape (the
// >=2x scaling gate itself lives in cmd/flaskbench, where core count is
// checked): both shard counts must serve traffic and report sane rates.
func TestShardScalingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("timed benchmark; skipped in -short")
	}
	results := ShardScaling(ShardScalingOptions{
		Shards: []int{1, 4}, Keys: 256, Producers: 2,
		Duration: 150 * time.Millisecond, Seed: 7,
	})
	for _, r := range results {
		t.Logf("shards=%d ops=%d dropped=%d ops/sec=%.0f", r.Shards, r.Ops, r.Dropped, r.OpsPerSec)
		if r.Ops == 0 {
			t.Errorf("shards=%d served no requests", r.Shards)
		}
		if r.OpsPerSec <= 0 {
			t.Errorf("shards=%d non-positive rate %f", r.Shards, r.OpsPerSec)
		}
	}
}
