package lab

import (
	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/workload"
)

// ---------------------------------------------------------------------------
// E11 — dynamic slice-count reconfiguration (§IV-C replication
// management): halving k doubles the replication factor of every
// object, with anti-entropy moving the data.

// ReconfigPoint tracks an object's replica count through a k change.
type ReconfigPoint struct {
	Round    int
	Replicas int
	// SliceAccuracy tracks how quickly the population re-sorts.
	SliceAccuracy float64
}

// ReconfigResult reports a live k change.
type ReconfigResult struct {
	Key        string
	OldSlices  int
	NewSlices  int
	BeforeReps int
	Timeline   []ReconfigPoint
}

// SliceReconfiguration writes an object under kOld slices, then
// reconfigures every node to kNew at runtime and watches replication
// adapt. Halving k should roughly double the replica count.
func SliceReconfiguration(n, kOld, kNew int, seed uint64) ReconfigResult {
	c := NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{Slices: kOld, AntiEntropyEvery: 3},
	})
	cl := c.NewClient(client.Config{}, nil)
	c.Run(40)

	const key = "reconfigured"
	cl.StartPut(key, 1, []byte("elastic"), nil)
	c.Run(15)

	res := ReconfigResult{
		Key:        key,
		OldSlices:  kOld,
		NewSlices:  kNew,
		BeforeReps: c.ReplicaCount(key, 1),
	}

	// Reconfigure every node — in production this would arrive via a
	// management epidemic; the mechanism under test is the adaptation,
	// not the announcement.
	for _, node := range c.Nodes() {
		node.SetSliceCount(kNew)
	}
	// Accuracy is now measured against kNew.
	c.cfg.Node.Slices = kNew

	for r := 5; r <= 50; r += 5 {
		c.Run(5)
		res.Timeline = append(res.Timeline, ReconfigPoint{
			Round:         r,
			Replicas:      c.ReplicaCount(key, 1),
			SliceAccuracy: c.SliceAccuracy(),
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// E12 — bounded-put-flood ablation: routing writes with the coverage-
// bounded global phase (§IV-B's optimization applied to puts) slashes
// message cost, while anti-entropy recovers the replication the
// truncated flood does not deliver synchronously.

// PutFloodRow compares one flood policy.
type PutFloodRow struct {
	Bounded bool
	// MsgsPerNode during the measured workload.
	MsgsPerNode float64
	DataPerNode float64
	// ImmediateReps is the replica count right after the floods drain.
	ImmediateReps int
	// RepairedReps is the count after anti-entropy catches up.
	RepairedReps int
	OK, Failed   int
}

// PutFloodAblation runs the same write workload with full and bounded
// put floods.
func PutFloodAblation(n, k int, seed uint64) []PutFloodRow {
	rows := make([]PutFloodRow, 0, 2)
	for _, bounded := range []bool{false, true} {
		c := NewCluster(ClusterConfig{
			N:    n,
			Seed: seed,
			Node: core.Config{
				Slices:           k,
				BoundedPutFlood:  bounded,
				AntiEntropyEvery: 3,
			},
		})
		cl := c.NewClient(client.Config{}, nil)
		c.Run(30)
		c.ResetMetrics()

		var ok, failed int
		done := func(r client.Result) {
			if r.Err != nil {
				failed++
			} else {
				ok++
			}
		}
		const probe = "probe-object"
		cl.StartPut(probe, 1, []byte("x"), done)
		for i := 0; i < 29; i++ {
			cl.StartPut(workload.Key(i), 1, []byte("x"), done)
		}
		c.Run(10)

		row := PutFloodRow{
			Bounded:       bounded,
			ImmediateReps: c.ReplicaCount(probe, 1),
			OK:            ok,
			Failed:        failed,
		}
		c.Run(40) // anti-entropy window
		row.RepairedReps = c.ReplicaCount(probe, 1)
		row.MsgsPerNode = metrics.SummarizeValues(c.MessagesPerNode()).Mean
		row.DataPerNode = metrics.Summarize(c.NodeMetrics(), metrics.DataSent).Mean
		rows = append(rows, row)
	}
	return rows
}
