package lab

import (
	"math/rand/v2"
	"sort"
	"time"

	"dataflasks/internal/churn"
	"dataflasks/internal/dht"
	"dataflasks/internal/metrics"
	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// DHTCluster mirrors Cluster for the structured baseline, so the
// comparison experiment drives both stores with identical churn and
// workloads.
type DHTCluster struct {
	Engine *sim.Engine
	Net    *transport.SimNetwork

	cfg     dht.Config
	seed    uint64
	rng     *rand.Rand
	nodes   map[transport.NodeID]*dht.Node
	order   []transport.NodeID
	tickers map[transport.NodeID]func()
	nextID  transport.NodeID
	nextCl  transport.NodeID
}

var _ churn.Target = (*DHTCluster)(nil)

// NewDHTCluster builds and bootstraps a baseline cluster.
func NewDHTCluster(n int, cfg dht.Config, seed uint64) *DHTCluster {
	if n <= 0 {
		panic("lab: DHT cluster needs n > 0")
	}
	engine := sim.NewEngine()
	net := transport.NewSimNetwork(engine, transport.SimNetworkConfig{Seed: seed})
	c := &DHTCluster{
		Engine:  engine,
		Net:     net,
		cfg:     cfg,
		seed:    seed,
		rng:     sim.RNG(seed, 0xd47),
		nodes:   make(map[transport.NodeID]*dht.Node, n),
		tickers: make(map[transport.NodeID]func()),
		nextID:  1,
		nextCl:  clientIDBase,
	}
	for i := 0; i < n; i++ {
		c.addNode()
	}
	for _, id := range c.order {
		c.nodes[id].Bootstrap(c.randomSeeds(id, 5))
	}
	return c
}

func (c *DHTCluster) addNode() transport.NodeID {
	id := c.nextID
	c.nextID++
	cfg := c.cfg
	cfg.Seed = c.seed
	var n *dht.Node
	sender := c.Net.Attach(id, func(env transport.Envelope) { n.HandleMessage(env) })
	n = dht.NewNode(id, cfg, store.NewMemory(), sender)
	c.nodes[id] = n
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id

	offset := time.Duration(c.rng.Int64N(int64(Round)))
	c.tickers[id] = c.Engine.Ticker(c.Engine.Now()+offset, Round, func(time.Duration) { n.Tick() })
	return id
}

func (c *DHTCluster) randomSeeds(self transport.NodeID, count int) []transport.NodeID {
	seeds := make([]transport.NodeID, 0, count)
	for len(seeds) < count && len(seeds) < len(c.order)-1 {
		cand := c.order[c.rng.IntN(len(c.order))]
		if cand == self {
			continue
		}
		dup := false
		for _, s := range seeds {
			if s == cand {
				dup = true
				break
			}
		}
		if !dup {
			seeds = append(seeds, cand)
		}
	}
	return seeds
}

// Run advances the simulation by rounds gossip periods.
func (c *DHTCluster) Run(rounds int) {
	c.Engine.Run(c.Engine.Now() + time.Duration(rounds)*Round)
}

// N returns the live node count.
func (c *DHTCluster) N() int { return len(c.order) }

// AliveIDs implements churn.Target.
func (c *DHTCluster) AliveIDs() []transport.NodeID {
	out := make([]transport.NodeID, len(c.order))
	copy(out, c.order)
	return out
}

// Kill implements churn.Target.
func (c *DHTCluster) Kill(id transport.NodeID) {
	if _, ok := c.nodes[id]; !ok {
		return
	}
	c.Net.Detach(id)
	if stop := c.tickers[id]; stop != nil {
		stop()
	}
	delete(c.tickers, id)
	delete(c.nodes, id)
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	if i < len(c.order) && c.order[i] == id {
		c.order = append(c.order[:i], c.order[i+1:]...)
	}
}

// Spawn implements churn.Target.
func (c *DHTCluster) Spawn() transport.NodeID {
	id := c.addNode()
	c.nodes[id].Bootstrap(c.randomSeeds(id, 5))
	return id
}

// NewClient attaches a baseline client.
func (c *DHTCluster) NewClient(cfg dht.ClientConfig) *dht.Client {
	id := c.nextCl
	c.nextCl++
	var cl *dht.Client
	sender := c.Net.Attach(id, func(env transport.Envelope) { cl.HandleMessage(env) })
	cl = dht.NewClient(id, cfg, sender, c.AliveIDs(), sim.RNG(c.seed, uint64(id)))
	c.Engine.Ticker(c.Engine.Now()+Round/2, Round, func(time.Duration) { cl.Tick() })
	return cl
}

// ResetMetrics zeroes node counters.
func (c *DHTCluster) ResetMetrics() {
	for _, n := range c.nodes {
		n.Metrics().Reset()
	}
}

// MessagesPerNode returns each live node's sent+received counts.
func (c *DHTCluster) MessagesPerNode() []uint64 {
	out := make([]uint64, 0, len(c.order))
	for _, id := range c.order {
		m := c.nodes[id].Metrics()
		out = append(out, m.Get(metrics.MsgSent)+m.Get(metrics.MsgRecv))
	}
	return out
}

// ReplicaCount returns how many live nodes hold (key, version).
func (c *DHTCluster) ReplicaCount(key string, version uint64) int {
	count := 0
	for _, id := range c.order {
		if _, _, ok, err := c.nodes[id].Store().Get(key, version); err == nil && ok {
			count++
		}
	}
	return count
}
