package lab

import (
	"time"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/workload"
)

// PipelineRow reports one client-shape measurement of the E15
// experiment.
type PipelineRow struct {
	// Mode is "blocking", "pipelined" or "batch".
	Mode string
	// Ops is the number of objects written; OK/Failed split the
	// completions.
	Ops, OK, Failed int
	// Elapsed is the virtual time from first injection to last
	// completion — the latency a real caller would observe.
	Elapsed time.Duration
	// OpsPerSec is Ops over Elapsed in virtual seconds.
	OpsPerSec float64
	// DataMsgsPerOp is total data-plane sends per object — the wire
	// cost the batch path collapses.
	DataMsgsPerOp float64
}

// PipelineComparison is experiment E15: the same put workload driven
// through three client shapes over identical overlays (same seed, same
// warm-up) — one blocking op at a time (the pre-futures API), all ops
// pipelined as futures, and per-slice batches on the PutBatch wire
// path. Wall-clock is virtual, so the comparison is deterministic.
func PipelineComparison(n, slices, ops, acks int, seed uint64) []PipelineRow {
	modes := []string{"blocking", "pipelined", "batch"}
	rows := make([]PipelineRow, 0, len(modes))
	for _, mode := range modes {
		rows = append(rows, runPipelineMode(mode, n, slices, ops, acks, seed))
	}
	return rows
}

func runPipelineMode(mode string, n, slices, ops, acks int, seed uint64) PipelineRow {
	c := NewCluster(ClusterConfig{
		N:    n,
		Seed: seed,
		Node: core.Config{
			Slices: slices,
			// Replication repair is off so DataMsgsPerOp isolates the
			// request dissemination cost.
			AntiEntropyEvery: -1,
		},
	})
	c.Run(30) // converge slicing and views
	c.ResetMetrics()

	cl := c.NewClient(client.Config{PutAcks: acks, TimeoutTicks: 5, Retries: 5}, nil)
	value := make([]byte, 100)

	row := PipelineRow{Mode: mode, Ops: ops}
	start := c.Engine.Now()
	var last time.Duration
	completed := 0
	target := ops
	// finish records one completion covering objCount objects (1 for
	// single puts, the group size for batches).
	finish := func(r client.Result, objCount int) {
		completed++
		if r.Err != nil {
			row.Failed += objCount
		} else {
			row.OK += objCount
		}
		if now := c.Engine.Now(); now > last {
			last = now
		}
	}
	done := func(r client.Result) { finish(r, 1) }

	switch mode {
	case "blocking":
		// One op in flight at a time: the next put is issued only from
		// the previous one's completion callback, exactly what a caller
		// of the blocking API experiences.
		var issue func(i int)
		issue = func(i int) {
			cl.StartPut(workload.Key(i), 1, value, func(r client.Result) {
				done(r)
				if i+1 < ops {
					c.Engine.Schedule(0, func() { issue(i + 1) })
				}
			})
		}
		c.Engine.Schedule(0, func() { issue(0) })
	case "pipelined":
		// Hundreds of futures in flight over the one client core.
		c.Engine.Schedule(0, func() {
			for i := 0; i < ops; i++ {
				cl.StartPut(workload.Key(i), 1, value, done)
			}
		})
	case "batch":
		// Group per target slice; each group is one wire message that
		// lands as one store.PutBatch per replica.
		bySlice := make(map[int32][]store.Object, slices)
		for i := 0; i < ops; i++ {
			key := workload.Key(i)
			s := slicing.KeySlice(key, slices)
			bySlice[s] = append(bySlice[s], store.Object{Key: key, Version: 1, Value: value})
		}
		target = len(bySlice)
		c.Engine.Schedule(0, func() {
			for _, group := range bySlice {
				group := group
				cl.StartPutBatch(group, client.Opts{}, func(r client.Result) {
					finish(r, len(group))
				})
			}
		})
	}

	// Run until every completion fired; the cap is a liveness backstop
	// (5 ticks/attempt × 6 attempts ≈ 30 rounds per op worst case).
	for rounds := 0; completed < target && rounds < 40*ops+100; rounds++ {
		c.Run(1)
	}

	row.Elapsed = last - start
	if row.Elapsed > 0 {
		row.OpsPerSec = float64(ops) / row.Elapsed.Seconds()
	}
	dataSends := uint64(0)
	for _, m := range c.NodeMetrics() {
		dataSends += m.Get(metrics.DataSent)
	}
	row.DataMsgsPerOp = float64(dataSends) / float64(ops)
	return row
}
