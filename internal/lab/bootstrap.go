package lab

import (
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/workload"
)

// ---------------------------------------------------------------------------
// E18 — cold-join bootstrap: segment streaming vs object-wise repair

// BootstrapRecoveryOptions configures one cold-joiner recovery run.
type BootstrapRecoveryOptions struct {
	// N is the cluster size, Slices the slice count k.
	N, Slices int
	// Records is the preloaded key-space size.
	Records int
	// ValueSize is the object payload size (default 128).
	ValueSize int
	// Rounds bounds the measured window after the join.
	Rounds int
	// AntiEntropyEvery is the repair cadence in gossip rounds
	// (default 2 — the same aggressive regime as the churn experiments,
	// so the object-wise baseline is as fast as repair gets).
	AntiEntropyEvery int
	// Segment enables the joiner's segment bootstrap; off measures the
	// object-wise anti-entropy baseline.
	Segment bool
	// DisablePeerBootstrap removes the protocol from the pre-existing
	// population — the mixed-version cluster where nobody can answer
	// the joiner's manifest probe and it must fall back cleanly.
	DisablePeerBootstrap bool
	// Seed drives every random choice.
	Seed uint64
}

func (o *BootstrapRecoveryOptions) defaults() {
	if o.ValueSize <= 0 {
		o.ValueSize = 128
	}
	if o.AntiEntropyEvery <= 0 {
		o.AntiEntropyEvery = 2
	}
	if o.Rounds <= 0 {
		o.Rounds = 200
	}
}

// BootstrapRecoveryResult reports one cold-joiner run.
type BootstrapRecoveryResult struct {
	// Mode labels the recovery path ("segment", "object" or
	// "segment-fallback" for the mixed-version cluster).
	Mode string
	// JoinRounds is the first round (after the spawn) where the joiner
	// claimed a slice and held every preloaded object of it (-1 if the
	// window expired first).
	JoinRounds int
	// SliceObjects is how many preloaded objects the joiner's final
	// slice holds — the recovery workload size.
	SliceObjects int
	// BootstrapSegments and BootstrapBytes are the joiner's verified
	// segment-streaming counters; ChunksRejected counts failed
	// verifications.
	BootstrapSegments uint64
	BootstrapBytes    uint64
	ChunksRejected    uint64
	// FallbackObjects counts objects that reached the joiner via
	// anti-entropy pushes AFTER its segment bootstrap fell back.
	FallbackObjects uint64
	// FellBack reports the joiner gave up on segment streaming.
	FellBack bool
}

// BootstrapRecovery preloads a fully replicated key space, spawns one
// cold joiner and measures how many rounds it needs to hold its whole
// slice — via segment-streaming bootstrap (Segment) or via the
// object-wise anti-entropy baseline. The ratio of the two is the
// subsystem's headline number: bulk transfer moves a slice in a few
// rounds, while object repair pays the per-round push caps.
func BootstrapRecovery(opts BootstrapRecoveryOptions) BootstrapRecoveryResult {
	opts.defaults()
	mode := "object"
	if opts.Segment {
		mode = "segment"
		if opts.DisablePeerBootstrap {
			mode = "segment-fallback"
		}
	}
	c := NewCluster(ClusterConfig{
		N:    opts.N,
		Seed: opts.Seed,
		Node: core.Config{
			Slices:           opts.Slices,
			AntiEntropyEvery: opts.AntiEntropyEvery,
			DisableBootstrap: opts.DisablePeerBootstrap,
		},
	})
	defer c.Close()
	c.Run(40) // let slicing and the intra views converge

	// Preload: exact slice-complete replication (bulk-load style), so
	// the joiner's recovery is the only repair the window measures.
	value := make([]byte, opts.ValueSize)
	keys := make([]string, opts.Records)
	bySlice := make(map[int32][]store.Object, opts.Slices)
	for i := range keys {
		keys[i] = workload.Key(i)
		s := slicing.KeySlice(keys[i], opts.Slices)
		bySlice[s] = append(bySlice[s], store.Object{Key: keys[i], Version: 1, Value: value})
	}
	for _, n := range c.Nodes() {
		if batch := bySlice[n.Slice()]; len(batch) > 0 {
			if err := n.Store().PutBatch(batch); err != nil {
				panic("lab: bootstrap recovery preload: " + err.Error())
			}
		}
	}
	c.ResetMetrics()

	joinerID := c.SpawnWith(func(cfg *core.Config) {
		cfg.Bootstrap = opts.Segment
		cfg.DisableBootstrap = false
	})
	joiner := c.Node(joinerID)

	res := BootstrapRecoveryResult{Mode: mode, JoinRounds: -1}
	for r := 1; r <= opts.Rounds; r++ {
		c.Run(1)
		if res.JoinRounds < 0 && joinerHoldsSlice(joiner, keys, opts.Slices) {
			res.JoinRounds = r
			break
		}
	}
	if s := joiner.Slice(); s != slicing.SliceUnknown {
		for _, key := range keys {
			if slicing.KeySlice(key, opts.Slices) == s {
				res.SliceObjects++
			}
		}
	}
	m := joiner.Metrics()
	res.BootstrapSegments = m.Get(metrics.BootstrapSegments)
	res.BootstrapBytes = m.Get(metrics.BootstrapBytes)
	res.ChunksRejected = m.Get(metrics.BootstrapChunksRejected)
	res.FallbackObjects = m.Get(metrics.BootstrapFallbackObjects)
	res.FellBack = joiner.BootstrapFellBack()
	return res
}

// joinerHoldsSlice reports whether the joiner claims a slice and holds
// every preloaded object mapping to it.
func joinerHoldsSlice(joiner *core.Node, keys []string, k int) bool {
	s := joiner.Slice()
	if s == slicing.SliceUnknown {
		return false
	}
	inSlice := 0
	for _, key := range keys {
		if slicing.KeySlice(key, k) != s {
			continue
		}
		inSlice++
		if _, _, ok, err := joiner.Store().Get(key, 1); err != nil || !ok {
			return false
		}
	}
	return inSlice > 0
}

// BootstrapRecoveryCompare runs the identical cold-join scenario with
// segment bootstrap on and off and returns both results.
func BootstrapRecoveryCompare(opts BootstrapRecoveryOptions) (segment, object BootstrapRecoveryResult) {
	opts.DisablePeerBootstrap = false
	opts.Segment = true
	segment = BootstrapRecovery(opts)
	opts.Segment = false
	object = BootstrapRecovery(opts)
	return segment, object
}
