package lab

import "testing"

// TestBootstrapRecoveryOutpacesObjectRepair is the subsystem's headline
// regression: a cold joiner recovering its slice via segment streaming
// must converge several times faster than the object-wise anti-entropy
// baseline (cmd/flaskbench gates the full >=5x target; this guards a
// conservative 3x so the unit suite stays fast and unflaky).
func TestBootstrapRecoveryOutpacesObjectRepair(t *testing.T) {
	seg, obj := BootstrapRecoveryCompare(BootstrapRecoveryOptions{
		N: 50, Slices: 5, Records: 5000, Rounds: 200, Seed: 7,
	})
	t.Logf("segment=%+v", seg)
	t.Logf("object=%+v", obj)
	if seg.JoinRounds < 0 || obj.JoinRounds < 0 {
		t.Fatalf("join never completed: segment=%d object=%d", seg.JoinRounds, obj.JoinRounds)
	}
	if seg.FellBack {
		t.Error("segment joiner fell back to object repair")
	}
	if seg.BootstrapSegments == 0 || seg.BootstrapBytes == 0 {
		t.Errorf("segment joiner streamed nothing (segments=%d bytes=%d)",
			seg.BootstrapSegments, seg.BootstrapBytes)
	}
	if obj.JoinRounds < 3*seg.JoinRounds {
		t.Errorf("segment bootstrap %d rounds vs object repair %d rounds, want >=3x",
			seg.JoinRounds, obj.JoinRounds)
	}
}

// TestBootstrapFallbackMixedCluster covers the mixed-version cluster: a
// joiner that wants segments among peers that do not speak the protocol
// must fall back cleanly to object-wise repair and still converge, with
// the fallback visible in bootstrap_fallback_objects.
func TestBootstrapFallbackMixedCluster(t *testing.T) {
	res := BootstrapRecovery(BootstrapRecoveryOptions{
		N: 50, Slices: 5, Records: 5000, Rounds: 200, Seed: 7,
		Segment: true, DisablePeerBootstrap: true,
	})
	t.Logf("fallback=%+v", res)
	if !res.FellBack {
		t.Error("joiner never fell back despite bootstrap-less peers")
	}
	if res.JoinRounds < 0 {
		t.Fatal("joiner never converged via anti-entropy after fallback")
	}
	if res.BootstrapSegments != 0 {
		t.Errorf("streamed %d segments from peers without the protocol", res.BootstrapSegments)
	}
	if res.FallbackObjects == 0 {
		t.Error("bootstrap_fallback_objects stayed zero: fallback repair was not counted")
	}
}
