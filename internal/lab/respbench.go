package lab

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"

	"dataflasks"
	"dataflasks/internal/resp"
)

// RESPRow reports one driver-shape measurement of the E16 experiment.
type RESPRow struct {
	// Mode is "resp-blocking", "resp-pipelined" or "native-pipelined".
	Mode string
	// Ops is the number of SETs driven; OK/Failed split the replies.
	Ops, OK, Failed int
	// Elapsed is wall-clock from first issue to last reply.
	Elapsed time.Duration
	// OpsPerSec is Ops over Elapsed.
	OpsPerSec float64
}

// RESPComparison is experiment E16: an in-process DataFlasks cluster
// with LAN-model message latency serves a live RESP gateway on
// loopback TCP, and the same SET workload is driven three ways — one
// command per round trip (the naive Redis client loop), the whole
// batch pipelined down one connection (what redis-benchmark -P does),
// and the native future-based client as the no-RESP-framing reference.
// The pipelined RESP driver exercises the gateway's overlapping
// dispatch + in-order completion queue; the per-message LAN delay is
// what makes the blocking baseline pay a real round trip per command.
func RESPComparison(n, slices, ops int, period time.Duration, seed uint64) ([]RESPRow, error) {
	cluster, err := dataflasks.NewCluster(n,
		dataflasks.Config{Slices: slices, Seed: seed},
		dataflasks.WithRoundPeriod(period),
		dataflasks.WithLatency(dataflasks.LANLatency()))
	if err != nil {
		return nil, err
	}
	if err := cluster.Start(); err != nil {
		return nil, err
	}
	defer cluster.Stop()

	cl, err := cluster.NewClient()
	if err != nil {
		return nil, err
	}
	srv := resp.NewServer(cl, resp.Config{MaxInflight: 1024})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	if err := warmUp(cl, slices); err != nil {
		return nil, err
	}

	payload := []byte("resp-bench-payload")
	rows := make([]RESPRow, 0, 3)

	blocking, err := driveRESPBlocking(addr.String(), ops, payload)
	if err != nil {
		return nil, err
	}
	rows = append(rows, blocking)

	pipelined, err := driveRESPPipelined(addr.String(), ops, payload)
	if err != nil {
		return nil, err
	}
	rows = append(rows, pipelined)

	rows = append(rows, driveNative(cl, ops, payload))
	return rows, nil
}

// warmUp waits until writes reach every slice: epidemic routing needs
// converged views before per-op latency is meaningful. One probe per
// slice (well past it, by key spread) must succeed in a single sweep.
func warmUp(cl *dataflasks.Client, slices int) error {
	deadline := time.Now().Add(60 * time.Second)
	probes := slices * 4
	for attempt := 0; ; attempt++ {
		ok := true
		for i := 0; i < probes; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			err := cl.Put(ctx, fmt.Sprintf("warm%04d", i), uint64(attempt+1), []byte("w"))
			cancel()
			if err != nil {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("lab: cluster failed to converge for the RESP bench")
		}
	}
}

// setCmd renders one SET as a RESP multibulk command.
func setCmd(dst []byte, key string, value []byte) []byte {
	dst = append(dst, "*3\r\n$3\r\nSET\r\n$"...)
	dst = strconv.AppendInt(dst, int64(len(key)), 10)
	dst = append(dst, "\r\n"...)
	dst = append(dst, key...)
	dst = append(dst, "\r\n$"...)
	dst = strconv.AppendInt(dst, int64(len(value)), 10)
	dst = append(dst, "\r\n"...)
	dst = append(dst, value...)
	dst = append(dst, "\r\n"...)
	return dst
}

// readReply consumes one RESP reply and reports whether it was an
// error reply.
func readReply(br *bufio.Reader) (isErr bool, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return false, err
	}
	if len(line) < 3 {
		return false, fmt.Errorf("lab: short RESP reply %q", line)
	}
	body := line[1 : len(line)-2]
	switch line[0] {
	case '+', ':':
		return false, nil
	case '-':
		return true, nil
	case '$':
		n, convErr := strconv.Atoi(body)
		if convErr != nil {
			return false, convErr
		}
		if n < 0 {
			return false, nil // null bulk
		}
		if _, err := io.CopyN(io.Discard, br, int64(n)+2); err != nil {
			return false, err
		}
		return false, nil
	case '*':
		n, convErr := strconv.Atoi(body)
		if convErr != nil {
			return false, convErr
		}
		for i := 0; i < n; i++ {
			if _, err := readReply(br); err != nil {
				return false, err
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("lab: unknown RESP reply type %q", line[0])
	}
}

// driveRESPBlocking issues one SET per round trip — write, wait for
// the reply, repeat — the shape every non-pipelining Redis client
// produces.
func driveRESPBlocking(addr string, ops int, payload []byte) (RESPRow, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return RESPRow{}, err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	row := RESPRow{Mode: "resp-blocking", Ops: ops}
	var cmd []byte
	start := time.Now()
	for i := 0; i < ops; i++ {
		cmd = setCmd(cmd[:0], fmt.Sprintf("respblk%06d", i), payload)
		if _, err := conn.Write(cmd); err != nil {
			return RESPRow{}, err
		}
		isErr, err := readReply(br)
		if err != nil {
			return RESPRow{}, err
		}
		if isErr {
			row.Failed++
		} else {
			row.OK++
		}
	}
	finishRow(&row, start)
	return row, nil
}

// driveRESPPipelined writes every SET down the connection before
// reading any reply — RESP pipelining, no client-side changes beyond
// buffering.
func driveRESPPipelined(addr string, ops int, payload []byte) (RESPRow, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return RESPRow{}, err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	row := RESPRow{Mode: "resp-pipelined", Ops: ops}
	start := time.Now()

	writeErr := make(chan error, 1)
	go func() {
		bw := bufio.NewWriterSize(conn, 64<<10)
		var cmd []byte
		for i := 0; i < ops; i++ {
			cmd = setCmd(cmd[:0], fmt.Sprintf("resppipe%06d", i), payload)
			if _, err := bw.Write(cmd); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- bw.Flush()
	}()

	for i := 0; i < ops; i++ {
		isErr, err := readReply(br)
		if err != nil {
			return RESPRow{}, err
		}
		if isErr {
			row.Failed++
		} else {
			row.OK++
		}
	}
	if err := <-writeErr; err != nil {
		return RESPRow{}, err
	}
	finishRow(&row, start)
	return row, nil
}

// driveNative is the reference: the same workload through the
// future-based client API directly, no RESP framing or TCP hop.
func driveNative(cl *dataflasks.Client, ops int, payload []byte) RESPRow {
	row := RESPRow{Mode: "native-pipelined", Ops: ops}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	futures := make([]*dataflasks.Op, 0, ops)
	for i := 0; i < ops; i++ {
		futures = append(futures, cl.PutAsync(fmt.Sprintf("respnat%06d", i), 1, payload))
	}
	for _, op := range futures {
		if err := op.Wait(ctx); err != nil {
			row.Failed++
		} else {
			row.OK++
		}
	}
	finishRow(&row, start)
	return row
}

func finishRow(row *RESPRow, start time.Time) {
	row.Elapsed = time.Since(start)
	if row.Elapsed > 0 {
		row.OpsPerSec = float64(row.Ops) / row.Elapsed.Seconds()
	}
}
