package lab

import (
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
)

// DefaultNs is the paper's node-count sweep (§VI).
var DefaultNs = []int{500, 1000, 1500, 2000, 2500, 3000}

// FigureOptions tunes the two headline experiments.
type FigureOptions struct {
	// Ns is the node-count sweep (default DefaultNs).
	Ns []int
	// Slices for Figure 3's constant-k run (default 10, as in §VI).
	Slices int
	// ReplicationFactor for Figure 4's constant-replication run:
	// k = N / ReplicationFactor (default 50, giving k=10 at N=500 so
	// the two experiments coincide at the smallest scale).
	ReplicationFactor int
	// Workload drives the measured phase.
	Workload WorkloadOptions
	// Seed drives all randomness.
	Seed uint64
}

func (o *FigureOptions) defaults() {
	if len(o.Ns) == 0 {
		o.Ns = DefaultNs
	}
	if o.Slices <= 0 {
		o.Slices = 10
	}
	if o.ReplicationFactor <= 0 {
		o.ReplicationFactor = 50
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// FigureRow is one point of a figure's series.
type FigureRow struct {
	N      int
	Slices int
	// MsgsPerNode is the mean per-node sent+received message count
	// during the measured workload (the paper's y-axis).
	MsgsPerNode float64
	// Breakdown components (mean per-node sends).
	DataMsgs      float64
	PSSMsgs       float64
	DiscoveryMsgs float64
	// OK/Failed operations.
	OK, Failed int
}

// FigureResult is a regenerated figure.
type FigureResult struct {
	Name   string
	Rows   []FigureRow
	Series metrics.Series
}

// MessagesAt runs one (N, slices) configuration and returns its row.
func MessagesAt(n, slices int, opts FigureOptions) FigureRow {
	cluster := NewCluster(ClusterConfig{
		N:    n,
		Seed: opts.Seed + uint64(n)*7 + uint64(slices),
		Node: core.Config{
			Slices: slices,
		},
	})
	stats := cluster.RunWorkload(opts.Workload)
	return FigureRow{
		N:             n,
		Slices:        slices,
		MsgsPerNode:   stats.Messages.Mean,
		DataMsgs:      stats.DataMessages.Mean,
		PSSMsgs:       stats.PSSMessages.Mean,
		DiscoveryMsgs: stats.DiscoveryMessages.Mean,
		OK:            stats.OK,
		Failed:        stats.Failed,
	}
}

// Figure3 regenerates the paper's Figure 3: average messages per node
// with a constant number of slices while N grows 500→3000. Expected
// shape: roughly flat — extra nodes only deepen replication.
func Figure3(opts FigureOptions) FigureResult {
	opts.defaults()
	res := FigureResult{Name: "Figure 3: messages per node, constant slices"}
	res.Series.Name = res.Name
	for _, n := range opts.Ns {
		row := MessagesAt(n, opts.Slices, opts)
		res.Rows = append(res.Rows, row)
		res.Series.Append(float64(n), row.MsgsPerNode)
	}
	return res
}

// Figure4 regenerates the paper's Figure 4: average messages per node
// with slices proportional to nodes (constant replication factor).
// Expected shape: above Figure 3 and growing sub-linearly — the random
// contact node is almost never in the target slice and slice-mate
// discovery works harder as slices get scarce.
func Figure4(opts FigureOptions) FigureResult {
	opts.defaults()
	res := FigureResult{Name: "Figure 4: messages per node, slices proportional to nodes"}
	res.Series.Name = res.Name
	for _, n := range opts.Ns {
		k := n / opts.ReplicationFactor
		if k < 1 {
			k = 1
		}
		row := MessagesAt(n, k, opts)
		res.Rows = append(res.Rows, row)
		res.Series.Append(float64(n), row.MsgsPerNode)
	}
	return res
}
