package lab

import "testing"

// Reduced-scale versions of the headline experiments keep CI fast; the
// full sweeps run via cmd/flaskbench and the root benchmarks.

func TestFigure3ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	opts := FigureOptions{
		Ns:     []int{200, 400, 600},
		Slices: 5,
		Seed:   42,
	}
	res := Figure3(opts)
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		t.Logf("N=%d k=%d msgs/node=%.1f (data=%.1f pss=%.1f disc=%.1f) ok=%d fail=%d",
			r.N, r.Slices, r.MsgsPerNode, r.DataMsgs, r.PSSMsgs, r.DiscoveryMsgs, r.OK, r.Failed)
		if r.Failed > r.OK/10 {
			t.Errorf("N=%d: %d failures out of %d ops", r.N, r.Failed, r.OK+r.Failed)
		}
	}
	// Shape: roughly flat — the largest point within 1.6x of the smallest.
	first, last := res.Rows[0].MsgsPerNode, res.Rows[2].MsgsPerNode
	if last > first*1.6 || first > last*1.6 {
		t.Errorf("Figure 3 not flat: %.1f → %.1f", first, last)
	}
}

func TestFigure4ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	opts := FigureOptions{
		Ns:                []int{200, 400, 600},
		ReplicationFactor: 40, // k = 5, 10, 15
		Seed:              42,
	}
	res := Figure4(opts)
	for _, r := range res.Rows {
		t.Logf("N=%d k=%d msgs/node=%.1f (data=%.1f pss=%.1f disc=%.1f) ok=%d fail=%d",
			r.N, r.Slices, r.MsgsPerNode, r.DataMsgs, r.PSSMsgs, r.DiscoveryMsgs, r.OK, r.Failed)
	}
	// Shape: growing — more slices cost more messages per node.
	first, last := res.Rows[0].MsgsPerNode, res.Rows[2].MsgsPerNode
	if last <= first {
		t.Errorf("Figure 4 not growing: %.1f → %.1f", first, last)
	}
}
