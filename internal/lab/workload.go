package lab

import (
	"fmt"
	"time"

	"dataflasks/internal/client"
	"dataflasks/internal/metrics"
	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/workload"
)

// WorkloadOptions drives one measured workload phase against a cluster,
// mirroring the paper's §VI methodology: warm up the overlay, reset
// counters, run a YCSB-style workload, drain, measure.
type WorkloadOptions struct {
	// Ops is the number of operations (default 50, the scale at which
	// the paper's per-node message counts land in the hundreds).
	Ops int
	// OpsPerRound is the injection rate (default 2).
	OpsPerRound int
	// Mix is the operation mix (default write-only, as in §VI).
	Mix workload.Mix
	// Records is the key-space size (default Ops).
	Records int
	// ValueSize is the payload size (default 100).
	ValueSize int
	// Warmup rounds before measuring (default 30).
	Warmup int
	// Drain rounds after the last injection (default 15).
	Drain int
	// PutAcks required per put (default 1).
	PutAcks int
	// CachingLB enables the §VII slice-cache load balancer.
	CachingLB bool
	// Preload inserts every record before the measured phase (needed
	// by read mixes).
	Preload bool
	// PreloadDirect seeds node stores directly — one PutBatch per node
	// with the records of its slice — instead of pushing the key space
	// through the client. It models an operator bulk-load: exact
	// slice-complete replication at a fraction of the simulated rounds
	// a client-driven preload costs on large key spaces.
	PreloadDirect bool
	// PreloadBatch preloads through the client's batched wire path:
	// records grouped per target slice, shipped as PutBatchRequest
	// messages and applied by replicas via store.PutBatch. Unlike
	// PreloadDirect it exercises real routing; unlike Preload it costs
	// one message per group, not per record.
	PreloadBatch bool
	// Seed feeds the workload generator.
	Seed uint64
}

func (o *WorkloadOptions) defaults() {
	if o.Ops <= 0 {
		o.Ops = 50
	}
	if o.OpsPerRound <= 0 {
		o.OpsPerRound = 2
	}
	if o.Mix == (workload.Mix{}) {
		o.Mix = workload.WriteOnly
	}
	if o.Records <= 0 {
		o.Records = o.Ops
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 100
	}
	if o.Warmup <= 0 {
		o.Warmup = 30
	}
	if o.Drain <= 0 {
		o.Drain = 15
	}
	if o.PutAcks == 0 {
		o.PutAcks = 1
	}
}

// WorkloadStats reports one measured workload phase.
type WorkloadStats struct {
	// Ops issued, completed OK and failed.
	Ops, OK, Failed int
	// Retries across all operations.
	Retries int
	// Messages is the distribution of per-node sent+received messages
	// during the measured phase (the Figures 3/4 metric).
	Messages metrics.Summary
	// DataMessages isolates request-dissemination sends per node.
	DataMessages metrics.Summary
	// DiscoveryMessages isolates slice-mate discovery sends per node.
	DiscoveryMessages metrics.Summary
	// PSSMessages isolates peer-sampling sends per node.
	PSSMessages metrics.Summary
	// Rounds measured (workload + drain).
	Rounds int
}

// RunWorkload executes the §VI methodology against the cluster and
// returns the measured statistics.
func (c *Cluster) RunWorkload(opts WorkloadOptions) WorkloadStats {
	opts.defaults()

	gen, err := workload.NewGenerator(workload.Config{
		Records:   opts.Records,
		ValueSize: opts.ValueSize,
		Mix:       opts.Mix,
		Seed:      opts.Seed ^ c.cfg.Seed,
	})
	if err != nil {
		panic(err) // options are programmer-controlled in the harness
	}

	var lb client.LoadBalancer
	rng := sim.RNG(c.cfg.Seed, 0xc11e)
	random := client.NewRandomLB(c.AliveIDs(), rng)
	lb = random
	if opts.CachingLB {
		k := c.cfg.Node.Slices
		if k <= 0 {
			k = 10
		}
		lb = client.NewCachingLB(random, k)
	}
	cl := c.NewClient(client.Config{PutAcks: opts.PutAcks}, lb)

	// Warm-up: let the PSS mix, slicing converge and intra views fill.
	c.Run(opts.Warmup)

	// Optional preload (unmeasured): insert the whole key space.
	versions := make(map[string]uint64, opts.Records)
	switch {
	case opts.PreloadDirect:
		c.preloadDirect(versions, opts)
	case opts.PreloadBatch:
		c.preloadBatch(cl, versions, opts)
	case opts.Preload:
		c.preload(cl, versions, opts)
	}

	c.ResetMetrics()

	stats := WorkloadStats{Ops: opts.Ops}
	done := func(r client.Result) {
		stats.Retries += r.Retries
		if r.Err != nil {
			stats.Failed++
			return
		}
		stats.OK++
	}

	issued := 0
	injectRounds := (opts.Ops + opts.OpsPerRound - 1) / opts.OpsPerRound
	for round := 0; round < injectRounds; round++ {
		c.Engine.Schedule(time.Duration(round)*Round, func() {
			for i := 0; i < opts.OpsPerRound && issued < opts.Ops; i++ {
				op := gen.Next()
				switch op.Kind {
				case workload.OpRead:
					cl.StartGet(op.Key, store.Latest, done)
				default:
					versions[op.Key]++
					cl.StartPut(op.Key, versions[op.Key], op.Value, done)
				}
				issued++
			}
		})
	}
	measured := injectRounds + opts.Drain
	c.Run(measured)

	stats.Rounds = measured
	stats.Messages = metrics.SummarizeValues(c.MessagesPerNode())
	stats.DataMessages = metrics.Summarize(c.NodeMetrics(), metrics.DataSent)
	stats.DiscoveryMessages = metrics.Summarize(c.NodeMetrics(), metrics.DiscoverySent)
	stats.PSSMessages = metrics.Summarize(c.NodeMetrics(), metrics.PSSSent)
	return stats
}

// preloadDirect bulk-loads every record straight into the stores of
// the nodes whose slice owns it, one PutBatch per node.
func (c *Cluster) preloadDirect(versions map[string]uint64, opts WorkloadOptions) {
	k := c.cfg.Node.Slices
	if k <= 0 {
		k = 10
	}
	value := make([]byte, opts.ValueSize)
	bySlice := make(map[int32][]store.Object, k)
	for i := 0; i < opts.Records; i++ {
		key := workload.Key(i)
		versions[key] = 1
		slice := slicing.KeySlice(key, k)
		bySlice[slice] = append(bySlice[slice], store.Object{Key: key, Version: 1, Value: value})
	}
	for _, n := range c.Nodes() {
		batch := bySlice[n.Slice()]
		if len(batch) == 0 {
			continue
		}
		if err := n.Store().PutBatch(batch); err != nil {
			panic(fmt.Sprintf("lab: direct preload node %s: %v", n.ID(), err))
		}
	}
}

// preloadBatch inserts the key space through the client's batched put
// path: per-slice groups of at most 128 records, each one wire message
// applied by replicas as a single store.PutBatch (unmeasured).
func (c *Cluster) preloadBatch(cl *client.Core, versions map[string]uint64, opts WorkloadOptions) {
	k := c.cfg.Node.Slices
	if k <= 0 {
		k = 10
	}
	const maxBatch = 128
	bySlice := make(map[int32][]store.Object, k)
	for i := 0; i < opts.Records; i++ {
		key := workload.Key(i)
		versions[key] = 1
		value := make([]byte, opts.ValueSize)
		slice := slicing.KeySlice(key, k)
		bySlice[slice] = append(bySlice[slice], store.Object{Key: key, Version: 1, Value: value})
	}
	c.Engine.Schedule(0, func() {
		for _, objs := range bySlice {
			for start := 0; start < len(objs); start += maxBatch {
				end := start + maxBatch
				if end > len(objs) {
					end = len(objs)
				}
				cl.StartPutBatch(objs[start:end], client.Opts{}, nil)
			}
		}
	})
	c.Run(opts.Drain)
}

// preload inserts every record and waits for completion (unmeasured).
func (c *Cluster) preload(cl *client.Core, versions map[string]uint64, opts WorkloadOptions) {
	perRound := opts.OpsPerRound * 4
	if perRound < 8 {
		perRound = 8
	}
	idx := 0
	rounds := (opts.Records + perRound - 1) / perRound
	for r := 0; r < rounds; r++ {
		c.Engine.Schedule(time.Duration(r)*Round, func() {
			for i := 0; i < perRound && idx < opts.Records; i++ {
				key := workload.Key(idx)
				versions[key] = 1
				value := make([]byte, opts.ValueSize)
				cl.StartPut(key, 1, value, nil)
				idx++
			}
		})
	}
	c.Run(rounds + opts.Drain)
}
