package lab

import (
	"testing"

	"dataflasks/internal/client"
	"dataflasks/internal/core"
)

// TestAutoSystemSize runs a cluster where nodes are NOT told N: the
// extrema-propagation estimator must converge well enough that fanout
// and TTL budgets work and operations complete.
func TestAutoSystemSize(t *testing.T) {
	c := NewCluster(ClusterConfig{
		N:              150,
		Seed:           51,
		AutoSystemSize: true,
		Node:           core.Config{Slices: 5},
	})
	cl := c.NewClient(client.Config{}, nil)
	c.Run(40)

	// Every node's estimate should be within 2x of the truth.
	bad := 0
	for _, n := range c.Nodes() {
		est := n.SystemSizeEstimate()
		if est < 75 || est > 300 {
			bad++
		}
	}
	if bad > 15 {
		t.Errorf("%d of 150 nodes estimate N badly", bad)
	}

	var res client.Result
	gotRes := false
	cl.StartPut("auto", 1, []byte("sized by gossip"), func(r client.Result) { res = r; gotRes = true })
	c.Run(10)
	if !gotRes || res.Err != nil {
		t.Fatalf("put with estimated N: gotRes=%v err=%v", gotRes, res.Err)
	}
	if reps := c.ReplicaCount("auto", 1); reps < 10 {
		t.Errorf("replicated to %d nodes only", reps)
	}
}

// TestLossyNetwork verifies the epidemic substrate absorbs 10% message
// loss: operations still complete (with retries) and replication still
// reaches most of the slice.
func TestLossyNetwork(t *testing.T) {
	c := NewCluster(ClusterConfig{
		N:        150,
		Seed:     53,
		LossRate: 0.10,
		Node:     core.Config{Slices: 5, AntiEntropyEvery: 5},
	})
	cl := c.NewClient(client.Config{}, nil)
	c.Run(35)

	ok, failed := 0, 0
	done := func(r client.Result) {
		if r.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	for i := 0; i < 10; i++ {
		cl.StartPut("lossy-key-"+string(rune('a'+i)), 1, []byte("lossy"), done)
	}
	c.Run(60)
	if ok < 9 {
		t.Errorf("under 10%% loss only %d/10 puts completed (%d failed)", ok, failed)
	}
	if net := c.Net.Stats(); net.Dropped == 0 {
		t.Error("loss injection inactive")
	}
}

// TestPersistentBackedCluster runs a simulated cluster whose nodes
// persist via each durable engine, exercising the store integration
// (and the engine-selection plumbing) end to end.
func TestPersistentBackedCluster(t *testing.T) {
	for name, engine := range map[string]core.StoreEngine{
		"disk": core.StoreDisk,
		"log":  core.StoreLog,
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCluster(ClusterConfig{
				N:        40,
				Seed:     57,
				Node:     core.Config{Slices: 2},
				Store:    core.StoreConfig{Engine: engine},
				StoreDir: t.TempDir(),
			})
			defer c.Close()
			cl := c.NewClient(client.Config{}, nil)
			c.Run(25)

			var res client.Result
			cl.StartPut("durable", 1, []byte("on disk"), func(r client.Result) { res = r })
			c.Run(10)
			if res.Err != nil {
				t.Fatalf("put: %v", res.Err)
			}
			if reps := c.ReplicaCount("durable", 1); reps < 5 {
				t.Errorf("%s replicas = %d", name, reps)
			}
		})
	}
}
