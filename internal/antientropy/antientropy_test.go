package antientropy

import (
	"context"
	"fmt"
	"testing"

	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// pairHarness wires two anti-entropy protocols with synchronous
// delivery.
type pairHarness struct {
	a, b   *Protocol
	sa, sb store.Store
	queue  []transport.Envelope
	sentA  int
	sentB  int
}

func newPair(t *testing.T, cfg Config, slice int32, k int) *pairHarness {
	t.Helper()
	h := &pairHarness{sa: store.NewMemory(), sb: store.NewMemory()}
	mk := func(self, peer transport.NodeID, st store.Store, counter *int) *Protocol {
		return New(cfg, Env{
			Store: st,
			Send: transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
				h.queue = append(h.queue, transport.Envelope{From: self, To: to, Msg: msg})
				return nil
			}),
			Partner:    func() (transport.NodeID, bool) { return peer, true },
			Slice:      func() int32 { return slice },
			KeyInSlice: func(key string) bool { return slicing.KeySlice(key, k) == slice },
			OnSent:     func() { *counter++ },
		}, sim.RNG(1, uint64(self)))
	}
	h.a = mk(1, 2, h.sa, &h.sentA)
	h.b = mk(2, 1, h.sb, &h.sentB)
	return h
}

func (h *pairHarness) deliverAll() {
	for len(h.queue) > 0 {
		env := h.queue[0]
		h.queue = h.queue[1:]
		if env.To == 1 {
			h.a.Handle(context.Background(), env.From, env.Msg)
		} else {
			h.b.Handle(context.Background(), env.From, env.Msg)
		}
	}
}

// keysInSlice returns n distinct keys mapping to the slice.
func keysInSlice(t *testing.T, slice int32, k, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		key := fmt.Sprintf("obj%06d", i)
		if slicing.KeySlice(key, k) == slice {
			out = append(out, key)
		}
	}
	if len(out) < n {
		t.Fatal("not enough keys")
	}
	return out
}

func TestExchangeSyncsBothWays(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{}, slice, k)
	keys := keysInSlice(t, slice, k, 4)

	_ = h.sa.Put(keys[0], 1, []byte("only-a"))
	_ = h.sa.Put(keys[1], 2, []byte("both"))
	_ = h.sb.Put(keys[1], 2, []byte("both"))
	_ = h.sb.Put(keys[2], 1, []byte("only-b"))

	h.a.Tick(context.Background())
	h.deliverAll()

	for _, st := range []store.Store{h.sa, h.sb} {
		for _, key := range keys[:3] {
			if _, _, ok, _ := st.Get(key, store.Latest); !ok {
				t.Errorf("store missing %q after exchange", key)
			}
		}
	}
	if got, _, _, _ := h.sb.Get(keys[0], 1); string(got) != "only-a" {
		t.Errorf("b's copy = %q", got)
	}
}

func TestExchangeSkipsForeignKeys(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{}, slice, k)
	// Find a key NOT in the slice; A holds it (stale from a slice
	// change).
	var foreign string
	for i := 0; ; i++ {
		key := fmt.Sprintf("foreign%d", i)
		if slicing.KeySlice(key, k) != slice {
			foreign = key
			break
		}
	}
	_ = h.sa.Put(foreign, 1, []byte("stale"))
	h.a.Tick(context.Background())
	h.deliverAll()
	if _, _, ok, _ := h.sb.Get(foreign, 1); ok {
		t.Error("foreign key replicated")
	}
}

// TestPushWithInvalidObjectStillStoresRest covers the PutBatch
// fallback: a statically invalid object (which no honest store could
// have produced) fails the batch, and the per-object fallback must
// still land the valid ones.
func TestPushWithInvalidObjectStillStoresRest(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{}, slice, k)
	keys := keysInSlice(t, slice, k, 2)
	h.b.Handle(context.Background(), 1, &Push{Objects: []store.Object{
		{Key: keys[0], Version: store.Latest, Value: []byte("bogus")},
		{Key: keys[1], Version: 3, Value: []byte("good")},
	}})
	if val, _, ok, _ := h.sb.Get(keys[1], 3); !ok || string(val) != "good" {
		t.Errorf("valid object lost to the invalid one: %q %v", val, ok)
	}
	if h.sb.Count() != 1 {
		t.Errorf("Count = %d, want 1 (invalid object dropped)", h.sb.Count())
	}
}

func TestExchangeIgnoresOtherSlicesDigest(t *testing.T) {
	const k = 4
	h := newPair(t, Config{}, 1, k)
	key := keysInSlice(t, 1, k, 1)[0]
	_ = h.sa.Put(key, 1, []byte("x"))
	// B receives a digest claiming another slice: must be ignored.
	h.b.Handle(context.Background(), 1, &Digest{Slice: 2, Headers: []Header{{Key: key, Version: 1}}})
	h.deliverAll()
	if _, _, ok, _ := h.sb.Get(key, 1); ok {
		t.Error("cross-slice digest caused replication")
	}
}

func TestMaxPushBoundsOneExchange(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{MaxPush: 3}, slice, k)
	keys := keysInSlice(t, slice, k, 10)
	for i, key := range keys {
		_ = h.sa.Put(key, uint64(i+1), []byte("bulk"))
	}
	h.a.Tick(context.Background())
	h.deliverAll()
	if got := h.sb.Count(); got != 3 {
		t.Fatalf("first exchange moved %d objects, want 3", got)
	}
	// Repeated rounds converge.
	for i := 0; i < 5; i++ {
		h.a.Tick(context.Background())
		h.deliverAll()
	}
	if got := h.sb.Count(); got != len(keys) {
		t.Fatalf("after 6 exchanges b has %d of %d", got, len(keys))
	}
}

func TestEvictForeign(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{EvictForeign: true}, slice, k)
	mine := keysInSlice(t, slice, k, 1)[0]
	var foreign string
	for i := 0; ; i++ {
		key := fmt.Sprintf("old%d", i)
		if slicing.KeySlice(key, k) != slice {
			foreign = key
			break
		}
	}
	_ = h.sa.Put(mine, 1, []byte("keep"))
	_ = h.sa.Put(foreign, 1, []byte("drop"))
	h.a.Tick(context.Background())
	h.deliverAll()
	if _, _, ok, _ := h.sa.Get(mine, 1); !ok {
		t.Error("evicted an in-slice object")
	}
	if _, _, ok, _ := h.sa.Get(foreign, 1); ok {
		t.Error("foreign object survived eviction")
	}
}

func TestNoPartnerNoTraffic(t *testing.T) {
	sent := 0
	p := New(Config{}, Env{
		Store: store.NewMemory(),
		Send: transport.SenderFunc(func(context.Context, transport.NodeID, interface{}) error {
			sent++
			return nil
		}),
		Partner:    func() (transport.NodeID, bool) { return 0, false },
		Slice:      func() int32 { return 0 },
		KeyInSlice: func(string) bool { return true },
	}, sim.RNG(1, 1))
	p.Tick(context.Background())
	if sent != 0 {
		t.Errorf("sent %d messages without a partner", sent)
	}
}

func TestHandleForeignMessage(t *testing.T) {
	h := newPair(t, Config{}, 0, 1)
	if h.a.Handle(context.Background(), 2, "garbage") {
		t.Error("claimed a foreign message")
	}
}

func TestOnSentCounts(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{}, slice, k)
	key := keysInSlice(t, slice, k, 1)[0]
	_ = h.sa.Put(key, 1, []byte("x"))
	h.a.Tick(context.Background())
	h.deliverAll()
	if h.sentA == 0 || h.sentB == 0 {
		t.Errorf("OnSent hooks: a=%d b=%d", h.sentA, h.sentB)
	}
}

func TestDigestSamplesLargeStores(t *testing.T) {
	const slice, k = 0, 1 // every key in slice
	h := newPair(t, Config{MaxDigest: 16}, slice, k)
	for i := 0; i < 100; i++ {
		_ = h.sa.Put(fmt.Sprintf("k%03d", i), 1, nil)
	}
	d := h.a.digest()
	if len(d) != 16 {
		t.Fatalf("digest size = %d, want 16", len(d))
	}
	seen := map[string]bool{}
	for _, hd := range d {
		if seen[hd.Key] {
			t.Fatalf("digest has duplicate %q", hd.Key)
		}
		seen[hd.Key] = true
	}
}
