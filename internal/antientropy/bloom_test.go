package antientropy

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewFilter(1000)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key%06d", i), uint64(i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("key%06d", i), uint64(i)) {
			t.Fatalf("false negative for key%06d", i)
		}
	}
}

func TestFilterFalsePositiveRate(t *testing.T) {
	const n = 2000
	f := NewFilter(n)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("key%06d", i), 1)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("absent%06d", i), 1) {
			fp++
		}
	}
	// Sized for ~1%; 3% is a generous deterministic bound.
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.3f, want <= 0.03", rate)
	}
}

func TestFilterEmptyContainsNothing(t *testing.T) {
	var zero Filter
	if zero.Contains("k", 1) {
		t.Error("zero filter claims membership")
	}
	f := NewFilter(0)
	if f.Contains("k", 1) {
		t.Error("empty filter claims membership")
	}
}

func TestFilterDistinguishesVersions(t *testing.T) {
	f := NewFilter(64)
	f.Add("key", 1)
	if f.Contains("key", 2) {
		t.Skip("version 2 landed on version 1's bits (possible but ~1%)")
	}
}

// TestBloomExchangeSyncsBothWays is the Bloom-round analogue of
// TestExchangeSyncsBothWays: one Summary/SummaryReply round with
// direct pushes must repair both directions without any Pull leg.
func TestBloomExchangeSyncsBothWays(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{FullEvery: -1}, slice, k) // Bloom only
	keys := keysInSlice(t, slice, k, 4)

	_ = h.sa.Put(keys[0], 1, []byte("only-a"))
	_ = h.sa.Put(keys[1], 2, []byte("both"))
	_ = h.sb.Put(keys[1], 2, []byte("both"))
	_ = h.sb.Put(keys[2], 1, []byte("only-b"))

	h.a.Tick(context.Background())
	h.deliverAll()

	for _, st := range []store.Store{h.sa, h.sb} {
		for _, key := range keys[:3] {
			if _, _, ok, _ := st.Get(key, store.Latest); !ok {
				t.Errorf("store missing %q after Bloom exchange", key)
			}
		}
	}
	if got, _, _, _ := h.sb.Get(keys[0], 1); string(got) != "only-a" {
		t.Errorf("b's copy = %q", got)
	}
}

// TestFilterSaltZeroIsLegacyFamily pins wire compatibility: a filter
// that arrives without a salt (older peer, zero value) must hash
// exactly like the pre-salt implementation, i.e. identically to
// NewFilter's output.
func TestFilterSaltZeroIsLegacyFamily(t *testing.T) {
	a, b := NewFilter(256), NewFilterSalted(256, 0)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("key%06d", i)
		a.Add(key, uint64(i+1))
		b.Add(key, uint64(i+1))
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			t.Fatalf("salt-0 filter diverged from legacy filter at word %d", i)
		}
	}
}

// TestBloomFalsePositiveRepairedByResalting is the seeded regression
// test for per-summary filter salting. Unsalted, whether a header
// false-positives against a given object set is a pure function of the
// keys — the SAME headers are skipped on every Bloom round and only
// the periodic full-header round can repair them. With a fresh salt
// per summary, round 2 draws an independent hash family, so a header
// skipped in round 1 is repaired by the very next Bloom round: here
// FullEvery is -1 (no full-header fallback at all) and the victim
// still converges.
func TestBloomFalsePositiveRepairedByResalting(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{FullEvery: -1}, slice, k) // Bloom only

	base := keysInSlice(t, slice, k, 48)
	for i, key := range base {
		_ = h.sa.Put(key, uint64(i+1), []byte("base"))
	}

	// A's summary salts come from its deterministic rng (seeded like
	// newPair seeds it); clone the stream to know round 1's and round
	// 2's filters in advance, and pick a victim header that
	// false-positives under the first salt but not the second.
	saltRNG := sim.RNG(1, 1)
	salt1, salt2 := saltRNG.Uint64(), saltRNG.Uint64()
	buildFilter := func(salt uint64) *Filter {
		f := NewFilterSalted(h.sa.Count(), salt)
		_ = h.sa.ForEach(func(key string, version uint64) bool {
			f.Add(key, version)
			return true
		})
		return f
	}
	f1, f2 := buildFilter(salt1), buildFilter(salt2)
	const victimVersion = 7
	victim := ""
	for i := 0; i < 2_000_000 && victim == ""; i++ {
		key := fmt.Sprintf("fp%07d", i)
		if slicing.KeySlice(key, k) != slice {
			continue
		}
		if f1.Contains(key, victimVersion) && !f2.Contains(key, victimVersion) {
			victim = key
		}
	}
	if victim == "" {
		t.Fatal("no deterministic false positive found — filter parameters changed?")
	}
	_ = h.sb.Put(victim, victimVersion, []byte("precious"))

	// Round 1: B tests the victim against A's salt1 filter, wrongly
	// sees "A has it", pushes nothing.
	h.a.Tick(context.Background())
	h.deliverAll()
	if _, _, ok, _ := h.sa.Get(victim, victimVersion); ok {
		t.Fatal("round 1 repaired the victim — it should false-positive under salt1")
	}
	// Round 2: a fresh salt, an independent hash family — the victim
	// no longer hides, and a plain Bloom round repairs it.
	h.a.Tick(context.Background())
	h.deliverAll()
	if val, _, ok, _ := h.sa.Get(victim, victimVersion); !ok || string(val) != "precious" {
		t.Fatalf("re-salted Bloom round did not repair the false positive: ok=%v val=%q", ok, val)
	}
}

// TestMaxPushBytesBoundsOneExchange: the byte budget cuts a push off
// mid-list, and later rounds move the rest.
func TestMaxPushBytesBoundsOneExchange(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{FullEvery: -1, MaxPushBytes: 300}, slice, k)
	keys := keysInSlice(t, slice, k, 10)
	val := make([]byte, 100)
	for i, key := range keys {
		_ = h.sa.Put(key, uint64(i+1), val)
	}
	h.a.Tick(context.Background())
	h.deliverAll()
	// 100-byte values against a 300-byte budget: exactly 3 ship.
	if got := h.sb.Count(); got != 3 {
		t.Fatalf("first exchange moved %d objects, want 3", got)
	}
	for i := 0; i < 5; i++ {
		h.a.Tick(context.Background())
		h.deliverAll()
	}
	if got := h.sb.Count(); got != len(keys) {
		t.Fatalf("after 6 exchanges b has %d of %d", got, len(keys))
	}
}

// TestOversizedValueStillShips: one value above MaxPushBytes must ship
// alone rather than being starved forever.
func TestOversizedValueStillShips(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{FullEvery: -1, MaxPushBytes: 64}, slice, k)
	key := keysInSlice(t, slice, k, 1)[0]
	_ = h.sa.Put(key, 1, make([]byte, 500))
	h.a.Tick(context.Background())
	h.deliverAll()
	if val, _, ok, _ := h.sb.Get(key, 1); !ok || len(val) != 500 {
		t.Fatalf("oversized value not shipped: ok=%v len=%d", ok, len(val))
	}
}

// TestRateLimiterBoundsPerRoundBytes: with a byte budget per round,
// each exchange ships at most the refill (plus one object of
// overshoot), and convergence still happens across rounds.
func TestRateLimiterBoundsPerRoundBytes(t *testing.T) {
	const slice, k = 1, 4
	h := newPair(t, Config{FullEvery: -1, RateBytesPerRound: 150}, slice, k)
	keys := keysInSlice(t, slice, k, 12)
	val := make([]byte, 100)
	for i, key := range keys {
		_ = h.sa.Put(key, uint64(i+1), val)
	}
	prev := 0
	for round := 1; round <= 40 && h.sb.Count() < len(keys); round++ {
		h.a.Tick(context.Background())
		h.b.Tick(context.Background()) // refill B's bucket too (it has nothing to push)
		h.deliverAll()
		moved := h.sb.Count() - prev
		prev = h.sb.Count()
		// 150 B/round against 100-B values: at most 2 objects/round
		// (one token overshoot), never a burst-drain of the backlog.
		if moved > 2+4 { // +4: the initial 4-round burst allowance
			t.Fatalf("round %d moved %d objects despite the rate cap", round, moved)
		}
	}
	if h.sb.Count() != len(keys) {
		t.Fatalf("rate-limited repair never converged: %d of %d", h.sb.Count(), len(keys))
	}
}

// TestCorruptRecordNotPropagated is the acceptance test for CRC-
// verified streaming: corrupt one byte of a log-segment record on the
// serving node and the object is skipped — reported via OnCorrupt —
// while every healthy object still replicates.
func TestCorruptRecordNotPropagated(t *testing.T) {
	const slice, k = 1, 4
	dir := t.TempDir()
	lg, err := store.OpenLog(dir, store.LogOptions{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer lg.Close()

	keys := keysInSlice(t, slice, k, 3)
	val := []byte("0123456789abcdef")
	victim := keys[1]
	// Equal key lengths keep record offsets computable.
	for i, key := range keys {
		if len(key) != len(keys[0]) {
			t.Fatalf("test needs equal-length keys, got %q vs %q", key, keys[0])
		}
		if err := lg.Put(key, uint64(i+1), val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Record layout: u32 len | u32 crc | u8 typ | u64 ver | u16 klen |
	// key | value. Flip a value byte of record 1 (the victim).
	recLen := 8 + 11 + len(keys[0]) + len(val)
	off := int64(recLen + 8 + 11 + len(victim) + 5)
	segs, globErr := filepath.Glob(filepath.Join(dir, "*.seg"))
	if globErr != nil || len(segs) != 1 {
		t.Fatalf("segments: %v err=%v", segs, globErr)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	b := []byte{0}
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatalf("read: %v", err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	f.Close()

	// A serves from the corrupted log; B is a fresh empty mate.
	sb := store.NewMemory()
	var queue []transport.Envelope
	corrupt := 0
	mk := func(self, peer transport.NodeID, st store.Store, onCorrupt func(int)) *Protocol {
		return New(Config{FullEvery: -1}, Env{
			Store: st,
			Send: transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
				queue = append(queue, transport.Envelope{From: self, To: to, Msg: msg})
				return nil
			}),
			Partner:    func() (transport.NodeID, bool) { return peer, true },
			Slice:      func() int32 { return slice },
			KeyInSlice: func(key string) bool { return slicing.KeySlice(key, k) == slice },
			OnCorrupt:  onCorrupt,
		}, sim.RNG(1, uint64(self)))
	}
	a := mk(1, 2, lg, func(n int) { corrupt += n })
	bp := mk(2, 1, sb, nil)

	a.Tick(context.Background())
	for len(queue) > 0 {
		env := queue[0]
		queue = queue[1:]
		if env.To == 1 {
			a.Handle(context.Background(), env.From, env.Msg)
		} else {
			bp.Handle(context.Background(), env.From, env.Msg)
		}
	}

	if corrupt == 0 {
		t.Error("OnCorrupt never fired for the rotted record")
	}
	if _, _, ok, _ := sb.Get(victim, 2); ok {
		t.Error("corrupt object was propagated to the peer")
	}
	for i, key := range keys {
		if key == victim {
			continue
		}
		if v, _, ok, _ := sb.Get(key, uint64(i+1)); !ok || string(v) != string(val) {
			t.Errorf("healthy object %q not replicated: ok=%v", key, ok)
		}
	}
}

// TestFullEveryCadence pins the round schedule: FullEvery=3 sends
// Summaries on rounds 1-2 and a Digest on round 3.
func TestFullEveryCadence(t *testing.T) {
	var sent []interface{}
	p := New(Config{FullEvery: 3}, Env{
		Store: store.NewMemory(),
		Send: transport.SenderFunc(func(_ context.Context, _ transport.NodeID, msg interface{}) error {
			sent = append(sent, msg)
			return nil
		}),
		Partner:    func() (transport.NodeID, bool) { return 2, true },
		Slice:      func() int32 { return 0 },
		KeyInSlice: func(string) bool { return true },
	}, sim.RNG(1, 1))
	for i := 0; i < 3; i++ {
		p.Tick(context.Background())
	}
	if len(sent) != 3 {
		t.Fatalf("sent %d messages, want 3", len(sent))
	}
	if _, ok := sent[0].(*Summary); !ok {
		t.Errorf("round 1 sent %T, want *Summary", sent[0])
	}
	if _, ok := sent[1].(*Summary); !ok {
		t.Errorf("round 2 sent %T, want *Summary", sent[1])
	}
	if _, ok := sent[2].(*Digest); !ok {
		t.Errorf("round 3 sent %T, want *Digest", sent[2])
	}
}

// TestDigestBytesAccounting: Bloom summaries must report far fewer
// digest bytes than full headers for the same store.
func TestDigestBytesAccounting(t *testing.T) {
	const slice, k = 1, 4
	run := func(fullEvery int) int {
		bytes := 0
		h := newPair(t, Config{FullEvery: fullEvery}, slice, k)
		h.a.env.OnDigestBytes = func(n int) { bytes += n }
		h.b.env.OnDigestBytes = func(n int) { bytes += n }
		for i, key := range keysInSlice(t, slice, k, 200) {
			_ = h.sa.Put(key, uint64(i+1), []byte("v"))
			_ = h.sb.Put(key, uint64(i+1), []byte("v"))
		}
		h.a.Tick(context.Background())
		h.deliverAll()
		return bytes
	}
	full := run(1)
	bloom := run(-1)
	if bloom == 0 || full == 0 {
		t.Fatalf("accounting hooks silent: full=%d bloom=%d", full, bloom)
	}
	if bloom*5 > full {
		t.Fatalf("bloom digest bytes %d not >= 5x smaller than full %d", bloom, full)
	}
}
