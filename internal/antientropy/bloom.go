package antientropy

import "dataflasks/internal/hashmix"

// Filter is a Bloom filter over object headers: the compact digest
// that opens most anti-entropy rounds. Instead of advertising up to
// MaxDigest full (key, version) headers — O(objects · key bytes) on
// the wire — a node ships ~filterBitsPerHeader bits per object,
// independent of key length, and the responder tests its own headers
// against the filter. The filter has no false negatives: a header it
// reports absent is definitely absent, so pushing such objects is
// always productive. It has ~1% false positives: a header it reports
// present may in fact be missing on the sender, which is why the
// protocol keeps a periodic full-header round as the convergence
// guarantee (Config.FullEvery).
//
// Hashing is double hashing over the shared hashmix finalizer
// (Kirsch–Mitzenmacher: probe i uses h1 + i·h2), so Add and Contains
// cost two 64-bit mixes regardless of K. The zero Filter is valid and
// contains nothing — an empty store summarizes to "I have nothing",
// making the responder push everything it may.
//
// Salt perturbs the hash family. Without it, whether a given header
// false-positives against a given object set is a pure function of the
// keys involved — the SAME ~1% of headers is skipped on every Bloom
// round between every pair, and only the periodic full-header round
// can repair them. With a fresh random salt per summary, each round
// draws an independent false-positive set, so a header skipped this
// round is overwhelmingly likely to be repaired a round or two later
// instead of waiting out FullEvery. Salt travels inside the filter, so
// the tester always probes with the builder's hash family; a zero salt
// reproduces the unsalted family, keeping old frames meaningful.
type Filter struct {
	// K is the number of bit probes per header.
	K uint32
	// Salt perturbs the hash family (zero: unsalted legacy family).
	Salt uint64
	// Bits is the bit array, packed 64 per word.
	Bits []uint64
}

const (
	// filterBitsPerHeader sizes a filter at build time; together with
	// filterHashes probes it yields ~1% false positives at capacity.
	filterBitsPerHeader = 10
	// filterHashes is K for filters built by NewFilter.
	filterHashes = 7
)

// NewFilter returns an empty unsalted filter sized for n headers.
func NewFilter(n int) *Filter { return NewFilterSalted(n, 0) }

// NewFilterSalted returns an empty filter sized for n headers hashing
// with the given salt's family.
func NewFilterSalted(n int, salt uint64) *Filter {
	if n < 1 {
		n = 1
	}
	words := (n*filterBitsPerHeader + 63) / 64
	return &Filter{K: filterHashes, Salt: salt, Bits: make([]uint64, words)}
}

// headerHashes derives the double-hashing pair for one header under
// one salt's hash family. h2 is forced odd so consecutive probes never
// collapse onto one bit. Salt zero is exactly the unsalted family.
func headerHashes(key string, version uint64, salt uint64) (h1, h2 uint64) {
	h1 = hashmix.HashString(key) ^ hashmix.HashUint64(version)
	if salt != 0 {
		h1 ^= hashmix.Mix64(salt)
	}
	h2 = hashmix.Mix64(h1) | 1
	return
}

// Add inserts one header.
func (f *Filter) Add(key string, version uint64) {
	m := uint64(len(f.Bits)) * 64
	if m == 0 {
		return
	}
	h1, h2 := headerHashes(key, version, f.Salt)
	k := f.K
	if k == 0 {
		k = 1
	}
	for i := uint64(0); i < uint64(k); i++ {
		idx := (h1 + i*h2) % m
		f.Bits[idx/64] |= 1 << (idx % 64)
	}
}

// Contains reports whether the header may have been added: false is
// definitive, true may be a false positive. An empty or zero filter
// contains nothing.
func (f *Filter) Contains(key string, version uint64) bool {
	m := uint64(len(f.Bits)) * 64
	if m == 0 {
		return false
	}
	h1, h2 := headerHashes(key, version, f.Salt)
	k := f.K
	if k == 0 {
		k = 1
	}
	for i := uint64(0); i < uint64(k); i++ {
		idx := (h1 + i*h2) % m
		if f.Bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes approximates the filter's wire footprint (bit words plus
// the K and Salt fields) — what digest-bandwidth accounting charges
// per Summary.
func (f *Filter) SizeBytes() int { return len(f.Bits)*8 + 12 }

// Summary opens a Bloom round: a constant-bits-per-object encoding of
// every local header (unlike full Digests, it is never sampled down).
// The responder pushes the objects the filter proves missing and
// answers with its own filter so the exchange repairs both directions.
type Summary struct {
	Slice  int32
	Filter Filter
}

// SummaryReply carries the responder's filter back to the initiator,
// which pushes symmetrically. It ends the round: pushes ride directly
// on filter evidence, so Bloom rounds need no Pull leg.
type SummaryReply struct {
	Slice  int32
	Filter Filter
}
