// Package antientropy implements the replication-maintenance machinery
// the paper leaves as future work (§VII): periodic digest exchanges
// between slice-mates that (a) pull objects a node misses — so a node
// that joins a slice converges to the slice's object set without a
// dedicated state-transfer protocol — and (b) keep the replication
// factor at slice size despite churn, message loss and TTL-expired
// floods.
//
// The protocol is two-phase. Most rounds are Bloom rounds: A→B
// Summary(Bloom filter of A's headers); B pushes the objects the
// filter proves A lacks and answers B→A SummaryReply(B's filter); A
// pushes symmetrically. Digest cost is O(bits) instead of O(objects ·
// key bytes), and pushes ride directly on filter evidence (a Bloom
// filter has no false negatives), so a Bloom round is four messages
// with no Pull leg. Every FullEvery-th round falls back to the
// original full-header exchange — A→B Digest(headers); B→A Pull +
// DigestReply; A→B Push, and symmetrically — which is immune to the
// filter's ~1% false positives and therefore the convergence
// guarantee: an object a Bloom round skipped (its header false-
// positived as present) is provably repaired by the next full round.
//
// Repair is budgeted so it cannot starve foreground traffic: each Push
// is bounded in objects (MaxPush) and value bytes (MaxPushBytes), a
// per-node token bucket (RateBytesPerRound) caps bytes shipped per
// round, and values are served through store.StreamObjects — straight
// from log-segment offsets with CRC32 re-verification, skipping (never
// propagating) locally corrupt records. Repeated rounds converge.
package antientropy

import (
	"context"
	"errors"
	"math/rand/v2"

	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// Header identifies one object without its value.
type Header struct {
	Key     string
	Version uint64
}

// Digest opens a full-header exchange with the sender's object
// headers (up to MaxDigest, sampled uniformly beyond that).
type Digest struct {
	Slice   int32
	Headers []Header
}

// DigestReply returns the responder's headers so the initiator can pull
// symmetrically.
type DigestReply struct {
	Slice   int32
	Headers []Header
}

// Pull requests the listed objects' values.
type Pull struct {
	Headers []Header
}

// Push delivers requested (or provably missing) objects.
type Push struct {
	Objects []store.Object
}

// Env is what the protocol needs from its host node.
type Env struct {
	// Store is the local object store.
	Store store.Store
	// Send emits a message to a peer.
	Send transport.Sender
	// Partner picks a random slice-mate to exchange with.
	Partner func() (transport.NodeID, bool)
	// Slice returns the node's current slice claim.
	Slice func() int32
	// KeyInSlice reports whether a key belongs to the node's current
	// slice, gating what gets pulled/pushed and what EvictForeign
	// drops.
	KeyInSlice func(key string) bool
	// OnSent, when non-nil, is called once per protocol message emitted
	// (metrics hook).
	OnSent func()
	// OnDigestBytes, when non-nil, receives the approximate wire size
	// of every difference-discovery message sent (Digest, DigestReply,
	// Summary, SummaryReply, Pull) — the bandwidth the node spends
	// finding out WHAT to repair, as opposed to shipping the repairs.
	OnDigestBytes func(n int)
	// OnPush, when non-nil, is called once per Push sent with its
	// object count and summed value bytes.
	OnPush func(objects, valueBytes int)
	// OnCorrupt, when non-nil, receives the number of locally corrupt
	// records skipped while serving a push (surfaced so operators see
	// rot that repair routed around).
	OnCorrupt func(n int)
	// OnSendErr, when non-nil, observes send failures. Anti-entropy is
	// self-healing — a lost exchange is retried by construction on a
	// later round — but failures are counted (wire_send_errors), never
	// silently dropped.
	OnSendErr func(error)
}

// Config tunes the exchange.
type Config struct {
	// MaxPush bounds objects per Push message (default 64); the rest
	// is picked up on later rounds.
	MaxPush int
	// MaxPushBytes bounds the summed value bytes per Push message
	// (default 1 MiB). A single object larger than the budget still
	// ships alone, so oversized values are not starved forever.
	MaxPushBytes int
	// RateBytesPerRound is the per-node repair-rate limiter: a token
	// bucket refilled by this many bytes each Tick (burst: four
	// rounds' worth) that every pushed value is charged against, so
	// background repair cannot monopolize the disk and network under
	// foreground load. Zero (the default) is unlimited.
	RateBytesPerRound int
	// FullEvery makes every FullEvery-th round a full-header exchange;
	// the rounds between open with a Bloom summary. 1 means every
	// round is full-header (Bloom disabled); negative means Bloom only
	// (no false-positive-proof fallback — experiments only). Default 8.
	FullEvery int
	// MaxDigest bounds headers per full Digest; a store larger than
	// this advertises a uniformly random subset each full round, which
	// still converges. Bloom summaries always cover every header.
	// Default 4096.
	MaxDigest int
	// EvictForeign drops local objects outside the node's slice during
	// Tick (after a slice change). Default false.
	EvictForeign bool
}

func (c *Config) defaults() {
	if c.MaxPush <= 0 {
		c.MaxPush = 64
	}
	if c.MaxPushBytes <= 0 {
		c.MaxPushBytes = 1 << 20
	}
	if c.FullEvery == 0 {
		c.FullEvery = 8
	}
	if c.MaxDigest <= 0 {
		c.MaxDigest = 4096
	}
}

// Protocol runs anti-entropy for one node. Not safe for concurrent use.
type Protocol struct {
	cfg Config
	env Env
	rng *rand.Rand

	// rounds counts Ticks; it drives the Bloom/full-header cadence.
	rounds uint64
	// tokens is the repair-rate bucket (bytes); meaningful only when
	// RateBytesPerRound > 0. May go one object negative so a single
	// value larger than the refill still makes progress.
	tokens int64
}

// New creates the protocol. All Env fields except the metric hooks are
// required.
func New(cfg Config, env Env, rng *rand.Rand) *Protocol {
	cfg.defaults()
	if env.Store == nil || env.Send == nil || env.Partner == nil || env.Slice == nil || env.KeyInSlice == nil {
		panic("antientropy: incomplete Env")
	}
	if rng == nil {
		panic("antientropy: New requires an rng")
	}
	return &Protocol{cfg: cfg, env: env, rng: rng}
}

// Tick opens one exchange with a random slice-mate — a Bloom round,
// or a full-header round every FullEvery-th tick — refills the repair
// rate bucket and, when configured, evicts foreign objects. ctx
// bounds the round's sends.
func (p *Protocol) Tick(ctx context.Context) {
	p.rounds++
	if rate := int64(p.cfg.RateBytesPerRound); rate > 0 {
		p.tokens += rate
		if burst := 4 * rate; p.tokens > burst {
			p.tokens = burst
		}
	}
	if p.cfg.EvictForeign {
		p.evictForeign()
	}
	peer, ok := p.env.Partner()
	if !ok {
		return
	}
	if p.fullRound() {
		hs := p.digest()
		p.noteDigestBytes(headersWireSize(hs))
		p.send(ctx, peer, &Digest{Slice: p.env.Slice(), Headers: hs})
		return
	}
	f := p.summary()
	p.noteDigestBytes(f.SizeBytes())
	p.send(ctx, peer, &Summary{Slice: p.env.Slice(), Filter: f})
}

// fullRound reports whether the current round uses full headers.
func (p *Protocol) fullRound() bool {
	if p.cfg.FullEvery == 1 {
		return true
	}
	if p.cfg.FullEvery < 0 {
		return false
	}
	return p.rounds%uint64(p.cfg.FullEvery) == 0
}

// Handle processes anti-entropy traffic; it reports false for foreign
// messages. ctx bounds any replies and pushes the handler emits.
func (p *Protocol) Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool {
	switch m := msg.(type) {
	case *Digest:
		if m.Slice != p.env.Slice() {
			return true // stale partner from another slice; ignore
		}
		if wants := p.missing(m.Headers); len(wants) > 0 {
			p.noteDigestBytes(headersWireSize(wants))
			p.send(ctx, from, &Pull{Headers: wants})
		}
		hs := p.digest()
		p.noteDigestBytes(headersWireSize(hs))
		p.send(ctx, from, &DigestReply{Slice: p.env.Slice(), Headers: hs})
		return true
	case *DigestReply:
		if m.Slice != p.env.Slice() {
			return true
		}
		if wants := p.missing(m.Headers); len(wants) > 0 {
			p.noteDigestBytes(headersWireSize(wants))
			p.send(ctx, from, &Pull{Headers: wants})
		}
		return true
	case *Summary:
		if m.Slice != p.env.Slice() {
			return true
		}
		p.pushMissing(ctx, from, &m.Filter)
		f := p.summary()
		p.noteDigestBytes(f.SizeBytes())
		p.send(ctx, from, &SummaryReply{Slice: p.env.Slice(), Filter: f})
		return true
	case *SummaryReply:
		if m.Slice != p.env.Slice() {
			return true
		}
		p.pushMissing(ctx, from, &m.Filter)
		return true
	case *Pull:
		p.servePull(ctx, from, m)
		return true
	case *Push:
		// One store call for the whole push: the log engine turns the
		// batch into a single append and one group-commit fsync instead
		// of a lock acquisition (and fsync) per object. The message may
		// be shared with other recipients, so filter into a fresh slice.
		batch := make([]store.Object, 0, len(m.Objects))
		for _, o := range m.Objects {
			if !p.env.KeyInSlice(o.Key) {
				continue
			}
			batch = append(batch, o)
		}
		if len(batch) == 0 {
			return true
		}
		if err := p.env.Store.PutBatch(batch); isInvalidObject(err) {
			// A statically invalid object fails the whole batch; fall
			// back to per-object puts so one stray object cannot block
			// the repair of the rest. I/O errors are NOT retried per
			// object — they would fail identically N more times; later
			// rounds repair what this one could not.
			for _, o := range batch {
				_ = p.env.Store.Put(o.Key, o.Version, o.Value)
			}
		}
		return true
	default:
		return false
	}
}

// isInvalidObject reports whether err is a static validation failure
// (as opposed to an I/O or lifecycle error).
func isInvalidObject(err error) bool {
	return errors.Is(err, store.ErrBadVersion) ||
		errors.Is(err, store.ErrKeyTooLong) ||
		errors.Is(err, store.ErrValueTooLarge)
}

func (p *Protocol) send(ctx context.Context, to transport.NodeID, msg interface{}) {
	if p.env.OnSent != nil {
		p.env.OnSent()
	}
	if err := p.env.Send.Send(ctx, to, msg); err != nil && p.env.OnSendErr != nil {
		p.env.OnSendErr(err)
	}
}

func (p *Protocol) noteDigestBytes(n int) {
	if p.env.OnDigestBytes != nil {
		p.env.OnDigestBytes(n)
	}
}

// headersWireSize approximates the encoded size of a header list: key
// bytes plus version and length framing per entry.
func headersWireSize(hs []Header) int {
	n := 0
	for _, h := range hs {
		n += len(h.Key) + 10
	}
	return n
}

// digest lists up to MaxDigest local headers; larger stores advertise a
// random subset (reservoir sampling keeps the choice uniform).
func (p *Protocol) digest() []Header {
	out := make([]Header, 0, 128)
	seen := 0
	_ = p.env.Store.ForEach(func(key string, version uint64) bool {
		seen++
		h := Header{Key: key, Version: version}
		if len(out) < p.cfg.MaxDigest {
			out = append(out, h)
			return true
		}
		if j := p.rng.IntN(seen); j < p.cfg.MaxDigest {
			out[j] = h
		}
		return true
	})
	return out
}

// summary encodes every local header into a Bloom filter. Unlike
// digest it is never sampled down — the whole point is that O(bits)
// covers the whole store. Each summary draws a fresh salt so a header
// that false-positives this round is tested under an independent hash
// family next round instead of being skipped until the full-header
// fallback (see Filter).
func (p *Protocol) summary() Filter {
	f := NewFilterSalted(p.env.Store.Count(), p.rng.Uint64())
	_ = p.env.Store.ForEach(func(key string, version uint64) bool {
		f.Add(key, version)
		return true
	})
	return *f
}

// missing returns the headers we lack and should hold.
func (p *Protocol) missing(theirs []Header) []Header {
	var wants []Header
	for _, h := range theirs {
		if !p.env.KeyInSlice(h.Key) {
			continue
		}
		if _, _, ok, err := p.env.Store.Get(h.Key, h.Version); err == nil && !ok {
			wants = append(wants, h)
			if len(wants) >= p.cfg.MaxPush {
				break
			}
		}
	}
	return wants
}

// pushMissing pushes the local in-slice objects the peer's filter
// proves absent over there (no false negatives, so every push is
// productive; a false positive just defers the object to a full
// round).
func (p *Protocol) pushMissing(ctx context.Context, to transport.NodeID, f *Filter) {
	refs := make([]store.Ref, 0, 16)
	_ = p.env.Store.ForEach(func(key string, version uint64) bool {
		if !p.env.KeyInSlice(key) {
			return true
		}
		if f.Contains(key, version) {
			return true
		}
		refs = append(refs, store.Ref{Key: key, Version: version})
		return len(refs) < p.cfg.MaxPush
	})
	p.pushRefs(ctx, to, refs)
}

func (p *Protocol) servePull(ctx context.Context, from transport.NodeID, m *Pull) {
	refs := make([]store.Ref, 0, len(m.Headers))
	for _, h := range m.Headers {
		refs = append(refs, store.Ref{Key: h.Key, Version: h.Version})
	}
	p.pushRefs(ctx, from, refs)
}

// pushRefs streams the referenced objects out of the store — CRC-
// verified straight from log segments, skipping corrupt records — and
// ships them as one Push, bounded by MaxPush objects, MaxPushBytes
// value bytes and the repair-rate bucket. Whatever the budget cut off
// is picked up by a later round.
func (p *Protocol) pushRefs(ctx context.Context, to transport.NodeID, refs []store.Ref) {
	if len(refs) == 0 {
		return
	}
	objs := make([]store.Object, 0, len(refs))
	bytes := 0
	corrupt, _ := p.env.Store.StreamObjects(refs, func(o store.Object) bool {
		if len(objs) >= p.cfg.MaxPush {
			return false
		}
		if bytes > 0 && bytes+len(o.Value) > p.cfg.MaxPushBytes {
			return false
		}
		if !p.takeTokens(len(o.Value)) {
			return false
		}
		// The streamed value aliases the store's scratch buffer; the
		// outgoing message needs its own copy.
		val := make([]byte, len(o.Value))
		copy(val, o.Value)
		objs = append(objs, store.Object{Key: o.Key, Version: o.Version, Value: val})
		bytes += len(o.Value)
		return true
	})
	if corrupt > 0 && p.env.OnCorrupt != nil {
		p.env.OnCorrupt(corrupt)
	}
	if len(objs) == 0 {
		return
	}
	if p.env.OnPush != nil {
		p.env.OnPush(len(objs), bytes)
	}
	p.send(ctx, to, &Push{Objects: objs})
}

// takeTokens charges n bytes against the repair-rate bucket. The
// bucket may go one object negative — otherwise a value larger than
// the refill could never ship.
func (p *Protocol) takeTokens(n int) bool {
	if p.cfg.RateBytesPerRound <= 0 {
		return true
	}
	if p.tokens <= 0 {
		return false
	}
	p.tokens -= int64(n)
	return true
}

func (p *Protocol) evictForeign() {
	var foreign []Header
	_ = p.env.Store.ForEach(func(key string, version uint64) bool {
		if !p.env.KeyInSlice(key) {
			foreign = append(foreign, Header{Key: key, Version: version})
		}
		return true
	})
	for _, h := range foreign {
		_, _ = p.env.Store.Delete(h.Key, h.Version)
	}
}
