// Package antientropy implements the replication-maintenance machinery
// the paper leaves as future work (§VII): periodic digest exchanges
// between slice-mates that (a) pull objects a node misses — so a node
// that joins a slice converges to the slice's object set without a
// dedicated state-transfer protocol — and (b) keep the replication
// factor at slice size despite churn, message loss and TTL-expired
// floods.
//
// One exchange is four messages: A→B Digest(A's headers); B→A
// Pull(what B lacks) and B→A DigestReply(B's headers); A→B
// Push(objects); and symmetrically A pulls what it lacks from B's
// reply. Pushes are bounded per exchange; repeated rounds converge.
package antientropy

import (
	"errors"
	"math/rand/v2"

	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// Header identifies one object without its value.
type Header struct {
	Key     string
	Version uint64
}

// Digest opens an exchange with the sender's object headers.
type Digest struct {
	Slice   int32
	Headers []Header
}

// DigestReply returns the responder's headers so the initiator can pull
// symmetrically.
type DigestReply struct {
	Slice   int32
	Headers []Header
}

// Pull requests the listed objects' values.
type Pull struct {
	Headers []Header
}

// Push delivers requested objects.
type Push struct {
	Objects []store.Object
}

// Env is what the protocol needs from its host node.
type Env struct {
	// Store is the local object store.
	Store store.Store
	// Send emits a message to a peer.
	Send transport.Sender
	// Partner picks a random slice-mate to exchange with.
	Partner func() (transport.NodeID, bool)
	// Slice returns the node's current slice claim.
	Slice func() int32
	// KeyInSlice reports whether a key belongs to the node's current
	// slice, gating what gets pulled and what EvictForeign drops.
	KeyInSlice func(key string) bool
	// OnSent, when non-nil, is called once per protocol message emitted
	// (metrics hook).
	OnSent func()
}

// Config tunes the exchange.
type Config struct {
	// MaxPush bounds objects per Push message (default 64); the rest
	// is picked up on later rounds.
	MaxPush int
	// MaxDigest bounds headers per Digest; a store larger than this
	// advertises a uniformly random subset each round, which still
	// converges. Default 4096.
	MaxDigest int
	// EvictForeign drops local objects outside the node's slice during
	// Tick (after a slice change). Default false.
	EvictForeign bool
}

func (c *Config) defaults() {
	if c.MaxPush <= 0 {
		c.MaxPush = 64
	}
	if c.MaxDigest <= 0 {
		c.MaxDigest = 4096
	}
}

// Protocol runs anti-entropy for one node. Not safe for concurrent use.
type Protocol struct {
	cfg Config
	env Env
	rng *rand.Rand
}

// New creates the protocol. All Env fields except OnSent are required.
func New(cfg Config, env Env, rng *rand.Rand) *Protocol {
	cfg.defaults()
	if env.Store == nil || env.Send == nil || env.Partner == nil || env.Slice == nil || env.KeyInSlice == nil {
		panic("antientropy: incomplete Env")
	}
	if rng == nil {
		panic("antientropy: New requires an rng")
	}
	return &Protocol{cfg: cfg, env: env, rng: rng}
}

// Tick opens one exchange with a random slice-mate and, when
// configured, evicts foreign objects.
func (p *Protocol) Tick() {
	if p.cfg.EvictForeign {
		p.evictForeign()
	}
	peer, ok := p.env.Partner()
	if !ok {
		return
	}
	p.send(peer, &Digest{Slice: p.env.Slice(), Headers: p.digest()})
}

// Handle processes anti-entropy traffic; it reports false for foreign
// messages.
func (p *Protocol) Handle(from transport.NodeID, msg interface{}) bool {
	switch m := msg.(type) {
	case *Digest:
		if m.Slice != p.env.Slice() {
			return true // stale partner from another slice; ignore
		}
		if wants := p.missing(m.Headers); len(wants) > 0 {
			p.send(from, &Pull{Headers: wants})
		}
		p.send(from, &DigestReply{Slice: p.env.Slice(), Headers: p.digest()})
		return true
	case *DigestReply:
		if m.Slice != p.env.Slice() {
			return true
		}
		if wants := p.missing(m.Headers); len(wants) > 0 {
			p.send(from, &Pull{Headers: wants})
		}
		return true
	case *Pull:
		p.servePull(from, m)
		return true
	case *Push:
		// One store call for the whole push: the log engine turns the
		// batch into a single append and one group-commit fsync instead
		// of a lock acquisition (and fsync) per object. The message may
		// be shared with other recipients, so filter into a fresh slice.
		batch := make([]store.Object, 0, len(m.Objects))
		for _, o := range m.Objects {
			if !p.env.KeyInSlice(o.Key) {
				continue
			}
			batch = append(batch, o)
		}
		if len(batch) == 0 {
			return true
		}
		if err := p.env.Store.PutBatch(batch); isInvalidObject(err) {
			// A statically invalid object fails the whole batch; fall
			// back to per-object puts so one stray object cannot block
			// the repair of the rest. I/O errors are NOT retried per
			// object — they would fail identically N more times; later
			// rounds repair what this one could not.
			for _, o := range batch {
				_ = p.env.Store.Put(o.Key, o.Version, o.Value)
			}
		}
		return true
	default:
		return false
	}
}

// isInvalidObject reports whether err is a static validation failure
// (as opposed to an I/O or lifecycle error).
func isInvalidObject(err error) bool {
	return errors.Is(err, store.ErrBadVersion) ||
		errors.Is(err, store.ErrKeyTooLong) ||
		errors.Is(err, store.ErrValueTooLarge)
}

func (p *Protocol) send(to transport.NodeID, msg interface{}) {
	if p.env.OnSent != nil {
		p.env.OnSent()
	}
	_ = p.env.Send.Send(to, msg)
}

// digest lists up to MaxDigest local headers; larger stores advertise a
// random subset (reservoir sampling keeps the choice uniform).
func (p *Protocol) digest() []Header {
	out := make([]Header, 0, 128)
	seen := 0
	_ = p.env.Store.ForEach(func(key string, version uint64) bool {
		seen++
		h := Header{Key: key, Version: version}
		if len(out) < p.cfg.MaxDigest {
			out = append(out, h)
			return true
		}
		if j := p.rng.IntN(seen); j < p.cfg.MaxDigest {
			out[j] = h
		}
		return true
	})
	return out
}

// missing returns the headers we lack and should hold.
func (p *Protocol) missing(theirs []Header) []Header {
	var wants []Header
	for _, h := range theirs {
		if !p.env.KeyInSlice(h.Key) {
			continue
		}
		if _, _, ok, err := p.env.Store.Get(h.Key, h.Version); err == nil && !ok {
			wants = append(wants, h)
			if len(wants) >= p.cfg.MaxPush {
				break
			}
		}
	}
	return wants
}

func (p *Protocol) servePull(from transport.NodeID, m *Pull) {
	objs := make([]store.Object, 0, len(m.Headers))
	for _, h := range m.Headers {
		if len(objs) >= p.cfg.MaxPush {
			break
		}
		val, actual, ok, err := p.env.Store.Get(h.Key, h.Version)
		if err != nil || !ok || actual != h.Version {
			continue
		}
		objs = append(objs, store.Object{Key: h.Key, Version: h.Version, Value: val})
	}
	if len(objs) > 0 {
		p.send(from, &Push{Objects: objs})
	}
}

func (p *Protocol) evictForeign() {
	var foreign []Header
	_ = p.env.Store.ForEach(func(key string, version uint64) bool {
		if !p.env.KeyInSlice(key) {
			foreign = append(foreign, Header{Key: key, Version: version})
		}
		return true
	})
	for _, h := range foreign {
		_, _ = p.env.Store.Delete(h.Key, h.Version)
	}
}
