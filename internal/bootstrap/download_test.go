package bootstrap

import (
	"context"
	"testing"
	"time"

	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// TestDownloadSnapshotRoundTrip drives the synchronous snapshot client
// against a served Protocol: every Download send is handled inline by
// the server, whose replies land in the client's inbox. The downloaded
// directory must restore into an empty store as an exact copy.
func TestDownloadSnapshotRoundTrip(t *testing.T) {
	keys := keysInSlice(t, 60)
	server := openServerLog(t, keys)

	inbox := make(chan transport.Envelope, 4096)
	const clientID, serverID = transport.NodeID(9), transport.NodeID(2)
	srv := New(Config{RateBytesPerRound: -1}, Env{
		Store: server,
		Send: transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
			inbox <- transport.Envelope{From: serverID, To: to, Msg: msg}
			return nil
		}),
		Partner:    fixedPartner(clientID),
		Slice:      func() int32 { return testSlice },
		KeyInSlice: func(string) bool { return true },
	}, sim.RNG(1, uint64(serverID)))
	toServer := transport.SenderFunc(func(ctx context.Context, to transport.NodeID, msg interface{}) error {
		srv.Handle(ctx, clientID, msg)
		return nil
	})

	dir := t.TempDir()
	var progressed bool
	man, err := Download(context.Background(), toServer, serverID, inbox, dir, DownloadOptions{
		Timeout:    100 * time.Millisecond,
		OnProgress: func(uint64, int64) { progressed = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) < 2 {
		t.Fatalf("snapshot holds %d segments, want a multi-segment transfer", len(man.Segments))
	}
	if !progressed {
		t.Error("OnProgress never fired")
	}

	restored := store.NewMemory()
	stats, err := store.Restore(dir, restored)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedSegments != 0 {
		t.Errorf("clean download restored with %d truncated segments", stats.TruncatedSegments)
	}
	for _, key := range keys {
		val, _, ok, err := restored.Get(key, 1)
		if err != nil || !ok {
			t.Fatalf("restored store missing %q (err=%v)", key, err)
		}
		if string(val) != string(valueFor(key)) {
			t.Fatalf("restored value for %q = %q", key, val)
		}
	}
}
