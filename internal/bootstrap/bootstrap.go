// Package bootstrap implements bulk recovery for cold-joining nodes:
// instead of discovering its slice's object set one anti-entropy round
// at a time — O(objects) Bloom exchanges, pushes capped per round — a
// joiner asks one slice-mate for its sealed-segment manifest and
// streams whole segments down verbatim, then lets the always-running
// anti-entropy rounds mop up whatever was written after the manifest
// was cut. Segment streaming moves bytes at sequential-read speed with
// CRC re-verification end to end (the serving store re-verifies every
// record as it reads, the joiner re-verifies every chunk and the whole
// segment against the manifest), so a joiner is never the vector that
// spreads a peer's bit rot.
//
// The server side is stateless: a SegmentFetch names a segment and a
// byte offset, and the server streams record-aligned chunks from there
// until the segment ends (SegmentDone) or its per-round byte budget
// runs out (it just stops; the joiner notices the stall and re-issues
// the fetch at its current offset). Lost messages, a killed server and
// a throttled server all look the same to the joiner — no progress —
// and are all handled by the same re-fetch path, which escalates to
// abandoning the peer and re-probing another slice-mate. A cluster
// whose peers predate this protocol never answers the manifest probe
// (unknown wire kinds are dropped by design), so after MaxProbes
// unanswered attempts the joiner falls back cleanly to object-wise
// anti-entropy repair — mixed-version clusters converge either way.
//
// Chunks from parallel segment fetches are applied through
// store.RecordApplier, which defers tombstones to the end of the
// session so out-of-order arrival cannot resurrect deleted objects.
package bootstrap

import (
	"context"
	"hash/crc32"
	"math/rand/v2"

	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// ManifestRequest asks a peer for its sealed-segment manifest. Slice
// guards against stale partner views: a peer in a different slice
// ignores the probe. Slice -1 means "any" (snapshot clients, which
// want the peer's whole manifest).
type ManifestRequest struct {
	Slice int32
}

// ManifestReply returns the responder's manifest. The joiner fetches
// the listed segments and trusts the per-segment CRCs as the ground
// truth for end-to-end verification.
type ManifestReply struct {
	Slice    int32
	Segments []store.SegmentInfo
}

// SegmentFetch asks the responder to stream one segment starting at a
// byte offset. It is idempotent and stateless: re-issuing it at the
// joiner's current offset is the recovery path for every loss mode.
type SegmentFetch struct {
	Segment uint64
	Offset  int64
}

// SegmentChunk carries record-aligned verbatim segment bytes. CRC
// covers Data, so one flipped byte in flight rejects one chunk, not
// the session.
type SegmentChunk struct {
	Segment uint64
	Offset  int64
	CRC     uint32
	Data    []byte
}

// SegmentDone ends one segment's stream. Bytes is the segment size the
// server reached; a joiner short of it lost chunks and re-fetches the
// tail. Missing reports a segment that vanished server-side
// (compaction) — the joiner drops it, the live data lives in later
// segments.
type SegmentDone struct {
	Segment uint64
	Bytes   int64
	Missing bool
}

// Env is what the protocol needs from its host node.
type Env struct {
	// Store is the local object store (served from and applied into).
	Store store.Store
	// Send emits a message to a peer.
	Send transport.Sender
	// Partner picks a random slice-mate to bootstrap from.
	Partner func() (transport.NodeID, bool)
	// Slice returns the node's current slice claim.
	Slice func() int32
	// KeyInSlice filters which fetched records the joiner applies.
	KeyInSlice func(key string) bool
	// OnSent, when non-nil, is called once per protocol message emitted.
	OnSent func()
	// OnFetch, when non-nil, observes every segment fetch the joiner
	// requests (segment id and resume offset) — the trace journal's
	// boot_fetch events.
	OnFetch func(segment uint64, offset int64)
	// OnSegment, when non-nil, is called once per segment the joiner
	// completed and verified (bootstrap_segments).
	OnSegment func()
	// OnBytes, when non-nil, receives the size of every verified chunk
	// the joiner applied (bootstrap_bytes).
	OnBytes func(n int)
	// OnChunkRejected, when non-nil, is called whenever a received
	// chunk or completed segment failed verification
	// (bootstrap_chunks_rejected); the joiner re-fetches from another
	// peer.
	OnChunkRejected func()
	// OnComplete, when non-nil, observes the end of the join: fellBack
	// reports that no peer answered the manifest probe and convergence
	// is left to object-wise anti-entropy repair.
	OnComplete func(fellBack bool)
	// OnSendErr, when non-nil, observes send failures (counted, never
	// silently dropped; the stall/re-fetch path retries by design).
	OnSendErr func(error)
}

// Config tunes the exchange. The zero value is a serving-only node.
type Config struct {
	// Join makes the node actively bootstrap at startup: probe a
	// slice-mate for its manifest and stream its segments down.
	Join bool
	// RateBytesPerRound budgets the bytes a SERVER streams per tick —
	// the same token-bucket pattern as anti-entropy's repair limiter
	// (refilled per Tick, four rounds of burst), so serving a joiner
	// cannot monopolize disk and network under foreground load. Zero
	// means the 1 MiB default; negative means unlimited.
	RateBytesPerRound int
	// MaxInflight bounds how many segments the joiner fetches in
	// parallel (default 2).
	MaxInflight int
	// ProbeTicks is how many ticks the joiner waits for a ManifestReply
	// before trying another peer (default 5).
	ProbeTicks int
	// MaxProbes bounds manifest probe attempts before the joiner gives
	// up and falls back to anti-entropy-only convergence (default 4).
	MaxProbes int
	// StallTicks is how many progress-free ticks a segment fetch waits
	// before re-issuing the fetch at its current offset (default 5).
	StallTicks int
	// MaxRefetches bounds re-issues per segment before the peer is
	// declared dead and the joiner re-probes elsewhere (default 3).
	MaxRefetches int
}

// defaultRateBytes is the per-round server streaming budget when
// Config.RateBytesPerRound is zero.
const defaultRateBytes = 1 << 20

func (c *Config) defaults() {
	if c.RateBytesPerRound == 0 {
		c.RateBytesPerRound = defaultRateBytes
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2
	}
	if c.ProbeTicks <= 0 {
		c.ProbeTicks = 5
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 4
	}
	if c.StallTicks <= 0 {
		c.StallTicks = 5
	}
	if c.MaxRefetches <= 0 {
		c.MaxRefetches = 3
	}
}

// joiner states.
const (
	stateIdle = iota // not yet probed (or between peers)
	stateProbing
	stateFetching
)

// fetchState tracks one in-flight segment fetch.
type fetchState struct {
	next      int64  // next expected byte offset
	crc       uint32 // running CRC of applied bytes
	stalls    int    // progress-free ticks
	refetches int    // fetch re-issues against this peer
	progress  bool   // saw a verified chunk since the last tick
}

// Protocol runs segment bootstrap for one node: every node serves,
// a joining node additionally drives the fetch state machine. Not safe
// for concurrent use — it lives on the node's event loop like every
// other protocol.
type Protocol struct {
	cfg Config
	env Env
	rng *rand.Rand

	// tokens is the server-side streaming budget (bytes); see
	// Config.RateBytesPerRound.
	tokens    int64
	unlimited bool

	joining  bool
	state    int
	peer     transport.NodeID
	waited   int // ticks since the manifest probe went out
	probes   int
	manifest map[uint64]store.SegmentInfo
	queue    []uint64
	inflight map[uint64]*fetchState
	applier  *store.RecordApplier
	done     bool
	fellBack bool
}

// New creates the protocol. All Env fields except the metric hooks are
// required.
func New(cfg Config, env Env, rng *rand.Rand) *Protocol {
	cfg.defaults()
	if env.Store == nil || env.Send == nil || env.Partner == nil || env.Slice == nil || env.KeyInSlice == nil {
		panic("bootstrap: incomplete Env")
	}
	if rng == nil {
		panic("bootstrap: New requires an rng")
	}
	p := &Protocol{cfg: cfg, env: env, rng: rng, joining: cfg.Join}
	if cfg.RateBytesPerRound < 0 {
		p.unlimited = true
	}
	if !p.joining {
		p.done = true
	}
	return p
}

// Done reports that the joiner finished (or never joined): segments
// verified and applied, or fallen back to anti-entropy.
func (p *Protocol) Done() bool { return p.done }

// FellBack reports that the join gave up on segment streaming (no peer
// answered the manifest probe, or every peer failed mid-transfer) and
// convergence is riding on object-wise anti-entropy repair.
func (p *Protocol) FellBack() bool { return p.fellBack }

// Tick refills the server streaming budget and advances the joiner
// state machine: probe timeouts, fetch stalls, in-flight top-up.
func (p *Protocol) Tick(ctx context.Context) {
	if !p.unlimited {
		rate := int64(p.cfg.RateBytesPerRound)
		p.tokens += rate
		if burst := 4 * rate; p.tokens > burst {
			p.tokens = burst
		}
	}
	if !p.joining || p.done {
		return
	}
	switch p.state {
	case stateIdle:
		p.probe(ctx)
	case stateProbing:
		p.waited++
		if p.waited > p.cfg.ProbeTicks {
			p.probe(ctx)
		}
	case stateFetching:
		p.tickFetching(ctx)
	}
}

// probe sends the next manifest probe, or falls back when the attempt
// budget is spent. Probes without a reachable partner (the membership
// view is still warming up) are free: nothing was asked of anyone.
func (p *Protocol) probe(ctx context.Context) {
	if p.probes >= p.cfg.MaxProbes {
		p.finish(true)
		return
	}
	peer, ok := p.env.Partner()
	if !ok {
		p.state = stateIdle
		return
	}
	p.probes++
	p.peer = peer
	p.waited = 0
	p.state = stateProbing
	p.send(ctx, peer, &ManifestRequest{Slice: p.env.Slice()})
}

// tickFetching runs the per-tick fetch bookkeeping: top up parallel
// fetches, detect stalls, re-issue or abandon.
func (p *Protocol) tickFetching(ctx context.Context) {
	p.pumpFetches(ctx)
	for id, fs := range p.inflight {
		if fs.progress {
			fs.progress = false
			fs.stalls = 0
			continue
		}
		fs.stalls++
		if fs.stalls < p.cfg.StallTicks {
			continue
		}
		fs.stalls = 0
		fs.refetches++
		if fs.refetches > p.cfg.MaxRefetches {
			// The peer stopped answering (died, or keeps failing): apply
			// what we verified so far and start over with another peer.
			p.abandonPeer(ctx)
			return
		}
		p.sendFetch(ctx, id, fs.next)
	}
	p.maybeFinish()
}

// pumpFetches keeps MaxInflight segment fetches outstanding.
func (p *Protocol) pumpFetches(ctx context.Context) {
	for len(p.inflight) < p.cfg.MaxInflight && len(p.queue) > 0 {
		id := p.queue[0]
		p.queue = p.queue[1:]
		p.inflight[id] = &fetchState{}
		p.sendFetch(ctx, id, 0)
	}
}

func (p *Protocol) sendFetch(ctx context.Context, id uint64, off int64) {
	if p.env.OnFetch != nil {
		p.env.OnFetch(id, off)
	}
	p.send(ctx, p.peer, &SegmentFetch{Segment: id, Offset: off})
}

// maybeFinish completes the join once nothing is queued or in flight.
func (p *Protocol) maybeFinish() {
	if p.state == stateFetching && len(p.inflight) == 0 && len(p.queue) == 0 {
		p.finish(false)
	}
}

// abandonPeer ends the current transfer session — verified data stays
// applied; puts are idempotent, so overlap with the next peer's stream
// is harmless — and re-probes another slice-mate immediately.
func (p *Protocol) abandonPeer(ctx context.Context) {
	p.finishApplier()
	p.resetSession()
	p.probe(ctx)
}

// finish ends the join for good.
func (p *Protocol) finish(fellBack bool) {
	p.finishApplier()
	p.resetSession()
	p.state = stateIdle
	p.done = true
	p.fellBack = fellBack
	if p.env.OnComplete != nil {
		p.env.OnComplete(fellBack)
	}
}

// finishApplier flushes staged puts and applies deferred tombstones.
// Errors are not fatal to the node: whatever the applier could not
// write is repaired by anti-entropy like any other divergence.
func (p *Protocol) finishApplier() {
	if p.applier != nil {
		_, _ = p.applier.Finish()
		p.applier = nil
	}
}

func (p *Protocol) resetSession() {
	p.manifest = nil
	p.queue = nil
	p.inflight = nil
	p.state = stateIdle
	p.waited = 0
}

// Handle processes bootstrap traffic; it reports false for foreign
// messages.
func (p *Protocol) Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool {
	switch m := msg.(type) {
	case *ManifestRequest:
		p.serveManifest(ctx, from, m)
		return true
	case *SegmentFetch:
		p.serveFetch(ctx, from, m)
		return true
	case *ManifestReply:
		p.handleManifest(ctx, from, m)
		return true
	case *SegmentChunk:
		p.handleChunk(ctx, from, m)
		return true
	case *SegmentDone:
		p.handleDone(ctx, from, m)
		return true
	default:
		return false
	}
}

// --- server side ------------------------------------------------------------

// sealer matches engines whose active segment can be rolled into the
// sealed set (the log engine), so a manifest covers everything written
// before the probe instead of just past roll-overs.
type sealer interface{ Seal() error }

func (p *Protocol) serveManifest(ctx context.Context, from transport.NodeID, m *ManifestRequest) {
	if m.Slice >= 0 && m.Slice != p.env.Slice() {
		return // stale partner view; the joiner re-probes elsewhere
	}
	if s, ok := p.env.Store.(sealer); ok {
		_ = s.Seal()
	}
	segs, err := p.env.Store.Segments()
	if err != nil {
		return // let the joiner's probe time out; it retries elsewhere
	}
	p.send(ctx, from, &ManifestReply{Slice: p.env.Slice(), Segments: segs})
}

// serveFetch streams one segment from the requested offset, chunk by
// chunk, until it ends or the round's byte budget runs out. Budget
// exhaustion just stops — the joiner re-fetches at its offset next
// round, which is exactly how it recovers from loss, so throttling
// needs no protocol of its own.
func (p *Protocol) serveFetch(ctx context.Context, from transport.NodeID, m *SegmentFetch) {
	var reached int64
	sawEnd := false
	budgetStop := false
	err := p.env.Store.StreamSegments([]store.SegmentRef{{ID: m.Segment, Offset: m.Offset}}, func(c store.SegmentChunk) bool {
		if !p.takeTokens(len(c.Data)) {
			budgetStop = true
			return false
		}
		reached = c.Offset + int64(len(c.Data))
		if c.Last {
			sawEnd = true
		}
		if len(c.Data) > 0 {
			// The chunk aliases the store's scratch buffer; the wire
			// message needs its own copy.
			data := append([]byte(nil), c.Data...)
			p.send(ctx, from, &SegmentChunk{
				Segment: m.Segment, Offset: c.Offset,
				CRC: crc32.ChecksumIEEE(data), Data: data,
			})
		}
		return true
	})
	switch {
	case sawEnd:
		p.send(ctx, from, &SegmentDone{Segment: m.Segment, Bytes: reached})
	case budgetStop:
		// Out of tokens mid-segment: silence; the joiner's stall logic
		// resumes the transfer next round.
	default:
		// Vanished under compaction, locally corrupt past this point
		// (err is ErrCorrupt), or a nonsense offset: this copy cannot
		// complete the segment. Tell the joiner to look elsewhere.
		_ = err
		p.send(ctx, from, &SegmentDone{Segment: m.Segment, Bytes: reached, Missing: true})
	}
}

// takeTokens charges n bytes against the streaming budget. Like the
// anti-entropy limiter, it may go one chunk negative so progress never
// wedges on a chunk larger than the refill.
func (p *Protocol) takeTokens(n int) bool {
	if p.unlimited {
		return true
	}
	if p.tokens <= 0 {
		return false
	}
	p.tokens -= int64(n)
	return true
}

// --- joiner side ------------------------------------------------------------

func (p *Protocol) handleManifest(ctx context.Context, from transport.NodeID, m *ManifestReply) {
	if !p.joining || p.done || p.state != stateProbing || from != p.peer {
		return
	}
	p.manifest = make(map[uint64]store.SegmentInfo, len(m.Segments))
	p.queue = p.queue[:0]
	for _, info := range m.Segments {
		if info.Bytes <= 0 {
			continue
		}
		p.manifest[info.ID] = info
		p.queue = append(p.queue, info.ID)
	}
	p.inflight = make(map[uint64]*fetchState, p.cfg.MaxInflight)
	p.applier = store.NewRecordApplier(p.env.Store, p.env.KeyInSlice)
	p.state = stateFetching
	p.pumpFetches(ctx)
	p.maybeFinish() // an empty manifest completes immediately
}

func (p *Protocol) handleChunk(ctx context.Context, from transport.NodeID, m *SegmentChunk) {
	if p.state != stateFetching || from != p.peer {
		return
	}
	fs := p.inflight[m.Segment]
	if fs == nil {
		return
	}
	if m.Offset != fs.next {
		// A chunk behind our offset is a duplicate (re-fetch overlap);
		// one ahead means loss in between. Either way the stall path
		// re-synchronizes by re-fetching at fs.next.
		return
	}
	if crc32.ChecksumIEEE(m.Data) != m.CRC {
		// Corrupted in flight or served from rot the CRC happens to
		// cover: don't apply, don't trust this peer further.
		p.noteRejected()
		p.abandonPeer(ctx)
		return
	}
	if _, err := p.applier.Apply(m.Segment, m.Offset, m.Data); err != nil {
		// Chunk CRC passed but the records inside don't parse: the peer
		// is serving garbage with valid framing.
		p.noteRejected()
		p.abandonPeer(ctx)
		return
	}
	fs.crc = crc32.Update(fs.crc, crc32.IEEETable, m.Data)
	fs.next += int64(len(m.Data))
	fs.progress = true
	if p.env.OnBytes != nil {
		p.env.OnBytes(len(m.Data))
	}
}

func (p *Protocol) handleDone(ctx context.Context, from transport.NodeID, m *SegmentDone) {
	if p.state != stateFetching || from != p.peer {
		return
	}
	fs := p.inflight[m.Segment]
	if fs == nil {
		return
	}
	if m.Missing {
		// Compacted away (or rotten) server-side; its live records are
		// in later segments or will arrive via anti-entropy.
		delete(p.inflight, m.Segment)
		p.pumpFetches(ctx)
		p.maybeFinish()
		return
	}
	if m.Bytes > fs.next {
		// Done outran us: chunks were lost. Fetch the missing tail —
		// but charge the re-issue against the segment's budget, or a
		// peer whose chunks are persistently lost (only its Done frames
		// get through) would be re-fetched forever: the Done would keep
		// resetting the stall clock and the stall path would never run.
		fs.refetches++
		if fs.refetches > p.cfg.MaxRefetches {
			p.abandonPeer(ctx)
			return
		}
		fs.progress = true // the Done itself is progress
		p.sendFetch(ctx, m.Segment, fs.next)
		return
	}
	info := p.manifest[m.Segment]
	if fs.next != info.Bytes || fs.crc != info.CRC {
		// End-to-end verification against the manifest failed — drifted
		// synthetic segment or undetected corruption. Start over with
		// another peer.
		p.noteRejected()
		p.abandonPeer(ctx)
		return
	}
	delete(p.inflight, m.Segment)
	if p.env.OnSegment != nil {
		p.env.OnSegment()
	}
	p.pumpFetches(ctx)
	p.maybeFinish()
}

func (p *Protocol) noteRejected() {
	if p.env.OnChunkRejected != nil {
		p.env.OnChunkRejected()
	}
}

func (p *Protocol) send(ctx context.Context, to transport.NodeID, msg interface{}) {
	if p.env.OnSent != nil {
		p.env.OnSent()
	}
	if err := p.env.Send.Send(ctx, to, msg); err != nil && p.env.OnSendErr != nil {
		p.env.OnSendErr(err)
	}
}
