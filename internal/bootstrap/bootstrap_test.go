package bootstrap

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

const (
	testSlice int32 = 1
	testK           = 4
)

// harness wires bootstrap protocols over a synchronous queue. mutate,
// when non-nil, may rewrite an envelope in flight or drop it (return
// false) — the loss and corruption injector.
type harness struct {
	queue  []transport.Envelope
	order  []transport.NodeID
	nodes  map[transport.NodeID]*Protocol
	mutate func(*transport.Envelope) bool
}

func newHarness() *harness {
	return &harness{nodes: make(map[transport.NodeID]*Protocol)}
}

func (h *harness) sender(self transport.NodeID) transport.Sender {
	return transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		h.queue = append(h.queue, transport.Envelope{From: self, To: to, Msg: msg})
		return nil
	})
}

// add registers a node. modEnv, when non-nil, attaches test hooks
// before the protocol is constructed.
func (h *harness) add(id transport.NodeID, cfg Config, st store.Store, partner func() (transport.NodeID, bool), modEnv func(*Env)) *Protocol {
	env := Env{
		Store:      st,
		Send:       h.sender(id),
		Partner:    partner,
		Slice:      func() int32 { return testSlice },
		KeyInSlice: func(key string) bool { return slicing.KeySlice(key, testK) == testSlice },
	}
	if modEnv != nil {
		modEnv(&env)
	}
	p := New(cfg, env, sim.RNG(1, uint64(id)))
	h.nodes[id] = p
	h.order = append(h.order, id)
	return p
}

func (h *harness) deliverAll(t *testing.T) {
	t.Helper()
	for len(h.queue) > 0 {
		env := h.queue[0]
		h.queue = h.queue[1:]
		if h.mutate != nil && !h.mutate(&env) {
			continue
		}
		if p := h.nodes[env.To]; p != nil {
			p.Handle(context.Background(), env.From, env.Msg)
		}
	}
}

// run ticks every node (in registration order) and drains the queue,
// for up to ticks rounds or until the joiner reports done.
func (h *harness) run(t *testing.T, joiner *Protocol, ticks int) {
	t.Helper()
	for i := 0; i < ticks && !joiner.Done(); i++ {
		for _, id := range h.order {
			h.nodes[id].Tick(context.Background())
		}
		h.deliverAll(t)
	}
}

// keysInSlice returns n distinct keys mapping to the test slice.
func keysInSlice(t *testing.T, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		key := fmt.Sprintf("obj%06d", i)
		if slicing.KeySlice(key, testK) == testSlice {
			out = append(out, key)
		}
	}
	if len(out) < n {
		t.Fatal("not enough keys")
	}
	return out
}

func valueFor(key string) []byte {
	return []byte(fmt.Sprintf("value-of-%s-padding-padding-padding", key))
}

// openServerLog builds a sealed multi-segment log store holding the
// given in-slice keys plus a few foreign ones (segments ship verbatim,
// so the joiner must filter them out).
func openServerLog(t *testing.T, keys []string) *store.Log {
	t.Helper()
	st, err := store.OpenLog(t.TempDir(), store.LogOptions{
		SegmentMaxBytes:  1024,
		CompactLiveRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for _, key := range keys {
		if err := st.Put(key, 1, valueFor(key)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("foreign%06d", i)
		if slicing.KeySlice(key, testK) == testSlice {
			continue
		}
		if err := st.Put(key, 1, []byte("stale")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	return st
}

func fixedPartner(id transport.NodeID) func() (transport.NodeID, bool) {
	return func() (transport.NodeID, bool) { return id, true }
}

func TestJoinStreamsSegmentsFromMate(t *testing.T) {
	keys := keysInSlice(t, 60)
	server := openServerLog(t, keys)

	h := newHarness()
	joinerStore := store.NewMemory()
	var segments, bytes int
	var completed, fellBack bool
	h.add(2, Config{}, server, fixedPartner(1), nil)
	joiner := h.add(1, Config{Join: true}, joinerStore, fixedPartner(2), func(e *Env) {
		e.OnSegment = func() { segments++ }
		e.OnBytes = func(n int) { bytes += n }
		e.OnComplete = func(fb bool) { completed, fellBack = true, fb }
	})
	h.run(t, joiner, 50)

	if !joiner.Done() || !completed || fellBack {
		t.Fatalf("done=%v completed=%v fellBack=%v", joiner.Done(), completed, fellBack)
	}
	if segments < 2 {
		t.Errorf("streamed %d segments, want multi-segment transfer", segments)
	}
	if bytes == 0 {
		t.Error("no bytes counted")
	}
	for _, key := range keys {
		val, _, ok, err := joinerStore.Get(key, 1)
		if err != nil || !ok {
			t.Fatalf("joiner missing %q (err=%v)", key, err)
		}
		if string(val) != string(valueFor(key)) {
			t.Fatalf("joiner value for %q = %q", key, val)
		}
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("foreign%06d", i)
		if _, _, ok, _ := joinerStore.Get(key, 1); ok {
			t.Errorf("foreign key %q applied despite filter", key)
		}
	}
}

func TestUnansweredProbesFallBack(t *testing.T) {
	h := newHarness()
	// Peers that predate the protocol drop the unknown wire kind; model
	// that by discarding every ManifestRequest in flight.
	h.mutate = func(env *transport.Envelope) bool {
		_, isProbe := env.Msg.(*ManifestRequest)
		return !isProbe
	}
	var fellBack bool
	h.add(2, Config{}, store.NewMemory(), fixedPartner(1), nil)
	joiner := h.add(1, Config{Join: true}, store.NewMemory(), fixedPartner(2), func(e *Env) {
		e.OnComplete = func(fb bool) { fellBack = fb }
	})
	h.run(t, joiner, 60)

	if !joiner.Done() {
		t.Fatal("joiner never finished")
	}
	if !joiner.FellBack() || !fellBack {
		t.Error("want clean fallback to anti-entropy after unanswered probes")
	}
}

func TestCorruptChunkAbandonsPeer(t *testing.T) {
	keys := keysInSlice(t, 60)
	badServer := openServerLog(t, keys)
	goodServer := openServerLog(t, keys)

	h := newHarness()
	// Every chunk from the bad server is flipped in flight; its CRC no
	// longer matches, so the joiner must reject it and move on.
	h.mutate = func(env *transport.Envelope) bool {
		if m, ok := env.Msg.(*SegmentChunk); ok && env.From == 2 && len(m.Data) > 0 {
			m.Data[0] ^= 0xff
		}
		return true
	}
	probes := 0
	partner := func() (transport.NodeID, bool) {
		probes++
		if probes == 1 {
			return 2, true
		}
		return 3, true
	}
	var rejected int
	h.add(2, Config{}, badServer, fixedPartner(1), nil)
	h.add(3, Config{}, goodServer, fixedPartner(1), nil)
	joiner := h.add(1, Config{Join: true}, store.NewMemory(), partner, func(e *Env) {
		e.OnChunkRejected = func() { rejected++ }
	})
	h.run(t, joiner, 60)

	if !joiner.Done() || joiner.FellBack() {
		t.Fatalf("done=%v fellBack=%v", joiner.Done(), joiner.FellBack())
	}
	if rejected == 0 {
		t.Error("corrupted chunks were never rejected")
	}
	for _, key := range keys {
		if _, _, ok, _ := h.nodes[1].env.Store.Get(key, 1); !ok {
			t.Fatalf("joiner missing %q after re-fetch from good peer", key)
		}
	}
}

// TestLostChunksExhaustRefetches pins the Done-outran-us budget: a
// peer whose chunks are persistently lost while its Done frames get
// through must be abandoned after MaxRefetches re-issues — the Done
// resets the stall clock, so without charging these re-issues the
// joiner would re-fetch the same segment forever.
func TestLostChunksExhaustRefetches(t *testing.T) {
	keys := keysInSlice(t, 60)
	lossyServer := openServerLog(t, keys)
	goodServer := openServerLog(t, keys)

	h := newHarness()
	// Every chunk from the lossy server vanishes in flight; its Done
	// frames still arrive.
	h.mutate = func(env *transport.Envelope) bool {
		_, isChunk := env.Msg.(*SegmentChunk)
		return !(isChunk && env.From == 2)
	}
	probes := 0
	partner := func() (transport.NodeID, bool) {
		probes++
		if probes == 1 {
			return 2, true
		}
		return 3, true
	}
	h.add(2, Config{}, lossyServer, fixedPartner(1), nil)
	h.add(3, Config{}, goodServer, fixedPartner(1), nil)
	joiner := h.add(1, Config{Join: true}, store.NewMemory(), partner, nil)
	h.run(t, joiner, 60)

	if !joiner.Done() || joiner.FellBack() {
		t.Fatalf("done=%v fellBack=%v; want the lossy peer abandoned and the join finished elsewhere",
			joiner.Done(), joiner.FellBack())
	}
	for _, key := range keys {
		if _, _, ok, _ := h.nodes[1].env.Store.Get(key, 1); !ok {
			t.Fatalf("joiner missing %q after abandoning the lossy peer", key)
		}
	}
}

func TestThrottledServerStreamsAcrossRounds(t *testing.T) {
	keys := keysInSlice(t, 60)
	server := openServerLog(t, keys)

	h := newHarness()
	// A tight per-round budget: the server goes silent mid-transfer and
	// the joiner's stall logic must resume at its verified offset.
	h.add(2, Config{RateBytesPerRound: 700}, server, fixedPartner(1), nil)
	joiner := h.add(1, Config{Join: true, MaxRefetches: 100}, store.NewMemory(), fixedPartner(2), nil)
	h.run(t, joiner, 400)

	if !joiner.Done() || joiner.FellBack() {
		t.Fatalf("done=%v fellBack=%v", joiner.Done(), joiner.FellBack())
	}
	for _, key := range keys {
		if _, _, ok, _ := h.nodes[1].env.Store.Get(key, 1); !ok {
			t.Fatalf("joiner missing %q after throttled transfer", key)
		}
	}
}

func TestRottenSegmentSkipped(t *testing.T) {
	keys := keysInSlice(t, 60)
	server := openServerLog(t, keys)
	segs, err := server.Segments()
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments (err=%v)", err)
	}
	// Rot one byte of the first sealed segment on disk AFTER the
	// manifest was cut: the server detects it mid-stream and reports the
	// segment missing instead of shipping garbage.
	path := filepath.Join(server.Dir(), store.SegmentFileName(segs[0].ID))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	h := newHarness()
	joinerStore := store.NewMemory()
	h.add(2, Config{}, server, fixedPartner(1), nil)
	joiner := h.add(1, Config{Join: true}, joinerStore, fixedPartner(2), nil)
	h.run(t, joiner, 50)

	if !joiner.Done() || joiner.FellBack() {
		t.Fatalf("done=%v fellBack=%v", joiner.Done(), joiner.FellBack())
	}
	// The rotten segment's tail is lost (anti-entropy's job), but every
	// later segment must have arrived intact.
	later := 0
	for _, key := range keys {
		if _, _, ok, _ := joinerStore.Get(key, 1); ok {
			later++
		}
	}
	if later == 0 {
		t.Error("nothing survived the rotten first segment")
	}
	if later >= len(keys) {
		t.Error("corruption was not detected: every key arrived")
	}
}

func TestEmptyManifestCompletesImmediately(t *testing.T) {
	h := newHarness()
	h.add(2, Config{}, store.NewMemory(), fixedPartner(1), nil)
	joiner := h.add(1, Config{Join: true}, store.NewMemory(), fixedPartner(2), nil)
	h.run(t, joiner, 5)

	if !joiner.Done() || joiner.FellBack() {
		t.Fatalf("done=%v fellBack=%v against an empty peer", joiner.Done(), joiner.FellBack())
	}
}

func TestStaleSliceProbeIgnored(t *testing.T) {
	h := newHarness()
	// The server claims another slice: the joiner's partner view was
	// stale. Probes go unanswered and the join falls back.
	h.add(2, Config{}, store.NewMemory(), fixedPartner(1), func(e *Env) {
		e.Slice = func() int32 { return testSlice + 1 }
	})
	joiner := h.add(1, Config{Join: true}, store.NewMemory(), fixedPartner(2), nil)
	h.run(t, joiner, 60)

	if !joiner.Done() || !joiner.FellBack() {
		t.Fatalf("done=%v fellBack=%v, want fallback on slice mismatch", joiner.Done(), joiner.FellBack())
	}
}
