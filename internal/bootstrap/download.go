package bootstrap

import (
	"context"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// DownloadOptions tunes a remote snapshot download.
type DownloadOptions struct {
	// Timeout bounds each wait for a reply before the request is
	// re-issued (default 3s).
	Timeout time.Duration
	// Retries bounds re-issues per request before the download fails
	// (default 5).
	Retries int
	// OnProgress, when non-nil, observes verified bytes as they land.
	OnProgress func(segment uint64, bytes int64)
}

func (o *DownloadOptions) defaults() {
	if o.Timeout <= 0 {
		o.Timeout = 3 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 5
	}
}

// Download pulls a remote node's sealed segments into dir as a
// snapshot (segment files plus MANIFEST.json) — `flaskctl snapshot`
// without stopping the node. It drives the same manifest/fetch/chunk
// protocol a joining node uses, synchronously over the given sender
// and inbound envelope stream, verifying every chunk CRC and every
// completed segment against the manifest. Unlike a joiner it has no
// anti-entropy to fall back on, so verification failures and exhausted
// retries are errors, not detours. The manifest is written last, so an
// aborted download leaves no usable snapshot.
func Download(ctx context.Context, send transport.Sender, peer transport.NodeID, inbox <-chan transport.Envelope, dir string, opts DownloadOptions) (store.SnapshotManifest, error) {
	opts.defaults()
	var man store.SnapshotManifest

	recv := func() (interface{}, error) {
		timer := time.NewTimer(opts.Timeout)
		defer timer.Stop()
		select {
		case env, ok := <-inbox:
			if !ok {
				return nil, fmt.Errorf("bootstrap: inbox closed")
			}
			if env.From != peer {
				return nil, nil // stray traffic; caller keeps waiting
			}
			return env.Msg, nil
		case <-timer.C:
			return nil, nil // timeout; caller re-issues
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Fetch the manifest. Slice -1: a snapshot wants everything the
	// peer holds, whatever slice it claims.
	var segs []store.SegmentInfo
	got := false
	for attempt := 0; attempt <= opts.Retries && !got; attempt++ {
		if err := send.Send(ctx, peer, &ManifestRequest{Slice: -1}); err != nil {
			return man, fmt.Errorf("bootstrap: manifest request: %w", err)
		}
		deadline := time.Now().Add(opts.Timeout)
		for time.Now().Before(deadline) && !got {
			msg, err := recv()
			if err != nil {
				return man, err
			}
			if r, ok := msg.(*ManifestReply); ok {
				segs = r.Segments
				got = true
			}
		}
	}
	if !got {
		return man, fmt.Errorf("bootstrap: node %s did not answer the manifest probe (is it running a build with bootstrap support?)", peer)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].ID < segs[j].ID })

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return man, fmt.Errorf("bootstrap: create snapshot dir: %w", err)
	}
	kept := make([]store.SegmentInfo, 0, len(segs))
	for _, info := range segs {
		if info.Bytes <= 0 {
			continue
		}
		ok, err := downloadSegment(ctx, send, peer, recv, dir, info, opts)
		if err != nil {
			return man, err
		}
		if ok {
			kept = append(kept, info)
		}
	}
	return store.WriteManifest(dir, kept)
}

// downloadSegment fetches one segment into its snapshot file. ok is
// false when the server reported the segment missing (compacted away
// mid-download) — skipped, not fatal.
func downloadSegment(ctx context.Context, send transport.Sender, peer transport.NodeID, recv func() (interface{}, error), dir string, info store.SegmentInfo, opts DownloadOptions) (ok bool, err error) {
	path := filepath.Join(dir, store.SegmentFileName(info.ID))
	f, err := os.Create(path)
	if err != nil {
		return false, fmt.Errorf("bootstrap: create segment file: %w", err)
	}
	defer func() {
		f.Close()
		if err != nil || !ok {
			os.Remove(path)
		}
	}()

	var next int64
	var crc uint32
	retries := 0
	fetch := func() error {
		return send.Send(ctx, peer, &SegmentFetch{Segment: info.ID, Offset: next})
	}
	if err := fetch(); err != nil {
		return false, fmt.Errorf("bootstrap: segment fetch: %w", err)
	}
	for {
		msg, rerr := recv()
		if rerr != nil {
			return false, rerr
		}
		switch m := msg.(type) {
		case *SegmentChunk:
			if m.Segment != info.ID || m.Offset != next {
				continue // stray, duplicate or out of order; re-fetch resyncs
			}
			if crc32.ChecksumIEEE(m.Data) != m.CRC {
				return false, fmt.Errorf("bootstrap: segment %d: chunk at %d failed CRC", info.ID, m.Offset)
			}
			if _, err := f.Write(m.Data); err != nil {
				return false, fmt.Errorf("bootstrap: write segment: %w", err)
			}
			next += int64(len(m.Data))
			crc = crc32.Update(crc, crc32.IEEETable, m.Data)
			retries = 0
			if opts.OnProgress != nil {
				opts.OnProgress(info.ID, next)
			}
		case *SegmentDone:
			if m.Segment != info.ID {
				continue
			}
			if m.Missing {
				return false, nil
			}
			if m.Bytes > next {
				// Lost chunks; resume at our verified offset.
				if err := fetch(); err != nil {
					return false, err
				}
				continue
			}
			if next != info.Bytes || crc != info.CRC {
				return false, fmt.Errorf("bootstrap: segment %d: downloaded %d bytes CRC %08x, manifest says %d bytes CRC %08x",
					info.ID, next, crc, info.Bytes, info.CRC)
			}
			if err := f.Sync(); err != nil {
				return false, fmt.Errorf("bootstrap: sync segment: %w", err)
			}
			return true, nil
		case nil:
			// Timeout or stray sender: the server may be throttling
			// (token budget) or a message was lost — either way, resume
			// at our offset.
			retries++
			if retries > opts.Retries {
				return false, fmt.Errorf("bootstrap: segment %d stalled at offset %d after %d retries", info.ID, next, opts.Retries)
			}
			if err := fetch(); err != nil {
				return false, err
			}
		}
	}
}
