package bootstrap

import (
	"os"
	"testing"

	"dataflasks/internal/leakcheck"
)

// TestMain fails the package if any goroutine outlives the tests: the
// protocol is single-threaded by contract, so a surviving goroutine
// means a harness leaked one.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
