package churn

import (
	"testing"

	"dataflasks/internal/sim"
	"dataflasks/internal/transport"
)

// fakeCluster implements SliceTarget for injector tests.
type fakeCluster struct {
	alive  map[transport.NodeID]bool
	slices map[transport.NodeID]int32
	nextID transport.NodeID
}

func newFakeCluster(n int) *fakeCluster {
	f := &fakeCluster{
		alive:  make(map[transport.NodeID]bool, n),
		slices: make(map[transport.NodeID]int32, n),
		nextID: transport.NodeID(n + 1),
	}
	for i := 1; i <= n; i++ {
		f.alive[transport.NodeID(i)] = true
		f.slices[transport.NodeID(i)] = int32(i % 4)
	}
	return f
}

func (f *fakeCluster) AliveIDs() []transport.NodeID {
	out := make([]transport.NodeID, 0, len(f.alive))
	for id := range f.alive {
		out = append(out, id)
	}
	// Stable order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (f *fakeCluster) Kill(id transport.NodeID) { delete(f.alive, id) }

func (f *fakeCluster) Spawn() transport.NodeID {
	id := f.nextID
	f.nextID++
	f.alive[id] = true
	f.slices[id] = int32(int(id) % 4)
	return id
}

func (f *fakeCluster) SliceOf(id transport.NodeID) int32 { return f.slices[id] }

func TestInjectorReplacementKeepsPopulation(t *testing.T) {
	f := newFakeCluster(100)
	inj := NewInjector(0.05, sim.RNG(1, 1))
	for r := 0; r < 20; r++ {
		inj.Tick(f)
	}
	if got := len(f.alive); got != 100 {
		t.Errorf("population = %d, want 100", got)
	}
	if inj.Killed() != inj.Spawned() {
		t.Errorf("killed %d != spawned %d", inj.Killed(), inj.Spawned())
	}
	// 5% of 100 over 20 rounds = ~100 replacements.
	if inj.Killed() < 90 || inj.Killed() > 110 {
		t.Errorf("killed = %d, want ~100", inj.Killed())
	}
}

func TestInjectorFractionalRateAccumulates(t *testing.T) {
	f := newFakeCluster(10)
	inj := NewInjector(0.05, sim.RNG(2, 2)) // 0.5 nodes per tick
	for r := 0; r < 10; r++ {
		inj.Tick(f)
	}
	// 0.05 × 10 nodes × 10 ticks = 5 kills via the fractional carry.
	if inj.Killed() != 5 {
		t.Errorf("killed = %d, want 5", inj.Killed())
	}
}

func TestInjectorZeroRate(t *testing.T) {
	f := newFakeCluster(10)
	inj := NewInjector(0, sim.RNG(3, 3))
	inj.Tick(f)
	if inj.Killed() != 0 || len(f.alive) != 10 {
		t.Error("zero-rate injector churned")
	}
	if neg := NewInjector(-1, sim.RNG(3, 4)); neg.Rate != 0 {
		t.Error("negative rate not clamped")
	}
}

func TestKillSliceFraction(t *testing.T) {
	f := newFakeCluster(100) // 25 nodes per slice (ids mod 4)
	killed := KillSliceFraction(f, 2, 0.8, sim.RNG(4, 4))
	if killed != 20 {
		t.Errorf("killed = %d, want 20 (80%% of 25)", killed)
	}
	// Only slice 2 was touched.
	remaining := 0
	for id := range f.alive {
		if f.slices[id] == 2 {
			remaining++
		}
	}
	if remaining != 5 {
		t.Errorf("slice 2 has %d members left, want 5", remaining)
	}
	if len(f.alive) != 80 {
		t.Errorf("population = %d, want 80", len(f.alive))
	}
}

func TestKillSliceFractionEdgeCases(t *testing.T) {
	f := newFakeCluster(20)
	if got := KillSliceFraction(f, 1, 0, sim.RNG(5, 5)); got != 0 {
		t.Errorf("frac 0 killed %d", got)
	}
	if got := KillSliceFraction(f, 99, 1, sim.RNG(5, 6)); got != 0 {
		t.Errorf("empty slice killed %d", got)
	}
	// frac > 1 clamps to the whole slice.
	if got := KillSliceFraction(f, 1, 5, sim.RNG(5, 7)); got != 5 {
		t.Errorf("clamped kill = %d, want 5", got)
	}
}
