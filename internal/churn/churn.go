// Package churn injects membership dynamics into simulated clusters:
// steady background node replacement (the regime the paper argues makes
// DHT-based stores fragile, §I) and correlated failures that wipe out
// most of one slice at once (§IV-A's argument for adaptive slicing over
// coin tossing).
package churn

import (
	"math/rand/v2"

	"dataflasks/internal/transport"
)

// Target is the cluster surface churn drives: harnesses implement it
// for both DataFlasks and the DHT baseline.
type Target interface {
	// AliveIDs lists currently live nodes in a stable order.
	AliveIDs() []transport.NodeID
	// Kill crashes a node (no goodbye message — fail-stop).
	Kill(id transport.NodeID)
	// Spawn starts a fresh node bootstrapped from current seeds and
	// returns its id.
	Spawn() transport.NodeID
}

// SliceTarget additionally exposes slice membership, enabling
// correlated slice failures.
type SliceTarget interface {
	Target
	// SliceOf returns the node's current slice claim.
	SliceOf(id transport.NodeID) int32
}

// Injector drives steady replacement churn: each Tick it kills a
// random fraction of live nodes and spawns replacements, holding the
// population roughly constant. Not safe for concurrent use.
type Injector struct {
	// Rate is the fraction of live nodes replaced per tick (for
	// example 0.01 = 1% churn per round).
	Rate float64
	rng  *rand.Rand

	killed  int
	spawned int
	// carry accumulates fractional kills so low rates still churn.
	carry float64
}

// NewInjector creates an injector with the given per-tick replacement
// rate.
func NewInjector(rate float64, rng *rand.Rand) *Injector {
	if rng == nil {
		panic("churn: NewInjector requires an rng")
	}
	if rate < 0 {
		rate = 0
	}
	return &Injector{Rate: rate, rng: rng}
}

// Killed returns the total nodes killed so far.
func (i *Injector) Killed() int { return i.killed }

// Spawned returns the total nodes spawned so far.
func (i *Injector) Spawned() int { return i.spawned }

// Tick performs one round of replacement churn against t.
func (i *Injector) Tick(t Target) {
	alive := t.AliveIDs()
	if len(alive) == 0 || i.Rate == 0 {
		return
	}
	i.carry += i.Rate * float64(len(alive))
	n := int(i.carry)
	i.carry -= float64(n)
	if n == 0 {
		return
	}
	victims := make([]transport.NodeID, len(alive))
	copy(victims, alive)
	i.rng.Shuffle(len(victims), func(a, b int) { victims[a], victims[b] = victims[b], victims[a] })
	if n > len(victims) {
		n = len(victims)
	}
	for _, id := range victims[:n] {
		t.Kill(id)
		i.killed++
	}
	for j := 0; j < n; j++ {
		t.Spawn()
		i.spawned++
	}
}

// KillSliceFraction crashes frac of the nodes currently claiming slice
// s — the correlated failure of §IV-A (for example one rack holding
// most of a slice). It returns how many nodes it killed.
func KillSliceFraction(t SliceTarget, s int32, frac float64, rng *rand.Rand) int {
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	var members []transport.NodeID
	for _, id := range t.AliveIDs() {
		if t.SliceOf(id) == s {
			members = append(members, id)
		}
	}
	if len(members) == 0 {
		return 0
	}
	rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
	n := int(float64(len(members)) * frac)
	for _, id := range members[:n] {
		t.Kill(id)
	}
	return n
}
