// Package leakcheck fails a test binary whose goroutines outlive its
// tests. It is a dependency-free stand-in for goleak: TestMain hands
// the *testing.M to Main, which runs the package's tests and then
// snapshots runtime.Stack until every non-benign goroutine has exited
// or a grace period expires. A goroutine still alive after the grace
// period is a leak — a transport reader missing a Close path, an event
// loop without a stop channel — and its full stack is printed so the
// culprit's creation site is one read away.
//
// Usage:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long Main waits for goroutines to wind down after the
// tests pass. Shutdown is asynchronous (closed listeners unwind their
// accept loops, tickers fire one last time), so the check retries
// instead of failing on the first racy snapshot.
const grace = 5 * time.Second

// benignMarks identify goroutines the Go toolchain itself runs during
// a test binary's lifetime; their presence is not a leak.
var benignMarks = []string{
	"testing.Main(",
	"testing.runTests(",
	"testing.(*M).",
	"testing.(*T).Run(",
	"os/signal.signal_recv(",
	"os/signal.loop(",
	"runtime.ensureSigM(",
	"runtime/trace.Start.",
	"runtime.ReadTrace(",
}

// Main runs the package's tests, then enforces that no goroutines
// leak. It returns the exit code for os.Exit: the tests' own code
// when they fail (a leak report would only bury the real failure),
// 1 when the tests pass but goroutines remain.
func Main(m *testing.M) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	leaked := await(grace)
	if len(leaked) == 0 {
		return code
	}
	fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) outlived the tests:\n\n", len(leaked))
	for _, g := range leaked {
		fmt.Fprintf(os.Stderr, "%s\n\n", g)
	}
	return 1
}

// Check asserts mid-test that no extra goroutines are running beyond
// those in before (a snapshot from Snapshot). It lets individual
// tests bracket a start/stop cycle tightly instead of relying on the
// end-of-binary sweep.
func Check(t *testing.T, before map[string]bool) {
	t.Helper()
	deadline := time.Now().Add(grace)
	for {
		var fresh []string
		for _, g := range stacks() {
			if !before[creator(g)] {
				fresh = append(fresh, g)
			}
		}
		if len(fresh) == 0 {
			return
		}
		if time.Now().After(deadline) {
			for _, g := range fresh {
				t.Errorf("leakcheck: goroutine outlived the test:\n%s", g)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Snapshot records the currently running goroutines (by creation
// site) for a later Check.
func Snapshot() map[string]bool {
	out := make(map[string]bool)
	for _, g := range stacks() {
		out[creator(g)] = true
	}
	return out
}

// await polls until no leaked goroutines remain or the grace period
// expires, returning the survivors.
func await(d time.Duration) []string {
	deadline := time.Now().Add(d)
	for {
		leaked := stacks()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stacks returns the stack of every live goroutine except the calling
// one and the toolchain's own, one string per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	// The first chunk is the calling goroutine itself.
	for _, g := range strings.Split(string(buf), "\n\n")[1:] {
		if g = strings.TrimSpace(g); g == "" || benign(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func benign(g string) bool {
	for _, m := range benignMarks {
		if strings.Contains(g, m) {
			return true
		}
	}
	return false
}

// creator extracts the "created by ..." line that identifies where a
// goroutine was started (the whole stack when the line is absent, as
// for goroutine 1).
func creator(g string) string {
	if i := strings.LastIndex(g, "created by "); i >= 0 {
		return strings.TrimSpace(g[i:])
	}
	return g
}
