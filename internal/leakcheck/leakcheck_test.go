package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestDetectsBlockedGoroutine proves the snapshot machinery sees a
// deliberately leaked goroutine and that Check clears once it exits.
func TestDetectsBlockedGoroutine(t *testing.T) {
	before := Snapshot()
	release := make(chan struct{})
	go func() { <-release }()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if snapshotContains("leakcheck.TestDetectsBlockedGoroutine") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stacks() never observed the leaked goroutine")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	Check(t, before) // must converge to clean once the goroutine exits
}

func snapshotContains(mark string) bool {
	for _, g := range stacks() {
		if strings.Contains(g, mark) {
			return true
		}
	}
	return false
}

// TestCreatorExtractsSpawnSite pins the keying used by Snapshot/Check.
func TestCreatorExtractsSpawnSite(t *testing.T) {
	g := "goroutine 7 [chan receive]:\nmain.worker()\n\t/x/main.go:10\ncreated by main.start\n\t/x/main.go:5"
	got := creator(g)
	if !strings.HasPrefix(got, "created by main.start") {
		t.Fatalf("creator() = %q, want created-by line", got)
	}
	if creator("goroutine 1 [running]:\nmain.main()") == "" {
		t.Fatal("creator() must fall back to the stack when no created-by line exists")
	}
}
