// Package gossip provides the epidemic-dissemination primitives
// DataFlasks routes requests with: duplicate suppression (relay-once
// flooding over the PSS views) and the random-graph sizing math of
// paper §II — with views of ln(N)+c uniformly sampled nodes, a flood in
// which every node relays once reaches all nodes with probability
// e^(-e^(-c)).
package gossip

import (
	"fmt"
	"math"

	"dataflasks/internal/transport"
)

// RequestID uniquely identifies one client operation as it spreads
// through the system; replicas use it to suppress duplicate relays and
// clients use it to de-duplicate replies (paper §V).
type RequestID uint64

// MakeRequestID packs an origin and a per-origin sequence number. Origins
// are 32 bits in practice (node ids assigned by the deployer), so the
// pair is unique without coordination.
func MakeRequestID(origin transport.NodeID, seq uint32) RequestID {
	return RequestID(uint64(origin)<<32 | uint64(seq))
}

// Origin recovers the originating endpoint of a request id.
func (r RequestID) Origin() transport.NodeID {
	return transport.NodeID(uint64(r) >> 32)
}

// Seq recovers the per-origin sequence number.
func (r RequestID) Seq() uint32 { return uint32(uint64(r) & 0xffffffff) }

// String renders the id as "origin/seq" — the shape batch-ack and
// timeout diagnostics quote, where a raw uint64 is unreadable.
func (r RequestID) String() string {
	return fmt.Sprintf("%s/%d", r.Origin(), r.Seq())
}

// Fanout returns the per-node relay fanout for a system of (estimated)
// size n with safety term c: ceil(ln n + c), at least 1.
func Fanout(n int, c float64) int {
	if n < 2 {
		return 1
	}
	f := int(math.Ceil(math.Log(float64(n)) + c))
	if f < 1 {
		f = 1
	}
	return f
}

// AtomicInfectionProbability is the paper's §II bound: the probability a
// flood with per-node fanout ln(N)+c infects every node.
func AtomicInfectionProbability(c float64) float64 {
	return math.Exp(-math.Exp(-c))
}

// TTL returns a hop budget sufficient for a flood with the given fanout
// to cover n nodes: ceil(log_fanout n) plus a safety margin.
func TTL(n, fanout, margin int) uint8 {
	if n < 2 || fanout < 2 {
		return uint8(clampTTL(1 + margin))
	}
	hops := int(math.Ceil(math.Log(float64(n)) / math.Log(float64(fanout))))
	return uint8(clampTTL(hops + margin))
}

func clampTTL(v int) int {
	if v < 1 {
		return 1
	}
	if v > 255 {
		return 255
	}
	return v
}

// Dedup is a bounded set of recently seen request ids with FIFO
// eviction. Epidemic routing only needs to remember ids for roughly one
// flood's lifetime, so a modest capacity suffices; evicting an id early
// merely costs a duplicate relay, never correctness.
//
// The zero value is unusable; create with NewDedup. Not safe for
// concurrent use.
type Dedup struct {
	capacity int
	set      map[RequestID]struct{}
	order    []RequestID // ring buffer of insertion order
	head     int         // next eviction slot
}

// NewDedup creates a dedup cache remembering up to capacity ids.
func NewDedup(capacity int) *Dedup {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Dedup{
		capacity: capacity,
		set:      make(map[RequestID]struct{}, capacity),
		order:    make([]RequestID, 0, capacity),
	}
}

// Seen reports whether id was observed and records it. The first call
// for an id returns false, subsequent calls true (until evicted).
func (d *Dedup) Seen(id RequestID) bool {
	if _, ok := d.set[id]; ok {
		return true
	}
	d.add(id)
	return false
}

// Contains reports whether id is currently remembered, without
// recording it.
func (d *Dedup) Contains(id RequestID) bool {
	_, ok := d.set[id]
	return ok
}

// Len returns the number of remembered ids.
func (d *Dedup) Len() int { return len(d.set) }

func (d *Dedup) add(id RequestID) {
	if len(d.order) < d.capacity {
		d.order = append(d.order, id)
		d.set[id] = struct{}{}
		return
	}
	evicted := d.order[d.head]
	delete(d.set, evicted)
	d.order[d.head] = id
	d.head = (d.head + 1) % d.capacity
	d.set[id] = struct{}{}
}
