package gossip

import (
	"math"
	"testing"
	"testing/quick"

	"dataflasks/internal/transport"
)

func TestRequestIDRoundTrip(t *testing.T) {
	prop := func(origin uint32, seq uint32) bool {
		id := MakeRequestID(transport.NodeID(origin), seq)
		return id.Origin() == transport.NodeID(origin) && id.Seq() == seq
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRequestIDUnique(t *testing.T) {
	a := MakeRequestID(1, 1)
	b := MakeRequestID(1, 2)
	c := MakeRequestID(2, 1)
	if a == b || a == c || b == c {
		t.Errorf("collisions: %v %v %v", a, b, c)
	}
}

func TestFanout(t *testing.T) {
	tests := []struct {
		n    int
		c    float64
		want int
	}{
		{1, 1, 1},
		{2, 0, 1},
		{1000, 0, 7},  // ln(1000) ≈ 6.9
		{1000, 1, 8},  // +c
		{3000, 1, 10}, // ln(3000)+1 ≈ 9.006 → 10
		{100, -10, 1}, // clamped to 1
	}
	for _, tt := range tests {
		if got := Fanout(tt.n, tt.c); got != tt.want {
			t.Errorf("Fanout(%d, %v) = %d, want %d", tt.n, tt.c, got, tt.want)
		}
	}
}

func TestAtomicInfectionProbability(t *testing.T) {
	// Known values of e^(-e^(-c)).
	tests := []struct {
		c, want float64
	}{
		{0, 1 / math.E},
		{2, 0.873},
		{-2, 0.0006},
	}
	for _, tt := range tests {
		got := AtomicInfectionProbability(tt.c)
		if math.Abs(got-tt.want) > 0.01 {
			t.Errorf("p(c=%v) = %v, want ~%v", tt.c, got, tt.want)
		}
	}
	// Monotone in c.
	prev := 0.0
	for c := -3.0; c <= 5; c += 0.5 {
		p := AtomicInfectionProbability(c)
		if p < prev {
			t.Fatalf("probability not monotone at c=%v", c)
		}
		prev = p
	}
}

func TestTTL(t *testing.T) {
	// fanout 10: 10^3 = 1000 ≥ 1000 nodes.
	if got := TTL(1000, 10, 0); got != 3 {
		t.Errorf("TTL(1000, 10, 0) = %d, want 3", got)
	}
	if got := TTL(1000, 10, 2); got != 5 {
		t.Errorf("TTL(1000, 10, 2) = %d, want 5", got)
	}
	// Degenerate cases clamp to at least 1.
	if got := TTL(1, 10, 0); got < 1 {
		t.Errorf("TTL(1,10,0) = %d, want >= 1", got)
	}
	if got := TTL(1000, 1, 0); got < 1 {
		t.Errorf("TTL with fanout 1 = %d, want >= 1", got)
	}
	// Never overflows uint8.
	if got := TTL(1<<30, 2, 300); got != 255 {
		t.Errorf("TTL clamp = %d, want 255", got)
	}
}

func TestDedupBasic(t *testing.T) {
	d := NewDedup(8)
	id := MakeRequestID(1, 1)
	if d.Seen(id) {
		t.Fatal("first Seen returned true")
	}
	if !d.Seen(id) {
		t.Fatal("second Seen returned false")
	}
	if !d.Contains(id) {
		t.Fatal("Contains returned false for remembered id")
	}
	if d.Contains(MakeRequestID(9, 9)) {
		t.Fatal("Contains returned true for unknown id")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDedupEvictsFIFO(t *testing.T) {
	d := NewDedup(3)
	ids := []RequestID{
		MakeRequestID(1, 1), MakeRequestID(1, 2),
		MakeRequestID(1, 3), MakeRequestID(1, 4),
	}
	for _, id := range ids {
		d.Seen(id)
	}
	if d.Contains(ids[0]) {
		t.Error("oldest id not evicted")
	}
	for _, id := range ids[1:] {
		if !d.Contains(id) {
			t.Errorf("id %v evicted too early", id)
		}
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want capacity 3", d.Len())
	}
}

func TestDedupEvictedIDCanBeSeenAgain(t *testing.T) {
	d := NewDedup(2)
	a := MakeRequestID(1, 1)
	d.Seen(a)
	d.Seen(MakeRequestID(1, 2))
	d.Seen(MakeRequestID(1, 3)) // evicts a
	if d.Seen(a) {
		t.Fatal("evicted id reported as seen")
	}
	if !d.Seen(a) {
		t.Fatal("re-added id not remembered")
	}
}

func TestDedupProperty(t *testing.T) {
	// After any sequence of distinct inserts, the most recent
	// min(cap, len) ids are remembered and Len never exceeds capacity.
	prop := func(seqs []uint32) bool {
		const cap = 16
		d := NewDedup(cap)
		seen := make(map[RequestID]bool)
		var order []RequestID
		for _, s := range seqs {
			id := MakeRequestID(1, s)
			if seen[id] {
				continue
			}
			seen[id] = true
			order = append(order, id)
			d.Seen(id)
		}
		if d.Len() > cap {
			return false
		}
		start := 0
		if len(order) > cap {
			start = len(order) - cap
		}
		for _, id := range order[start:] {
			if !d.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDedupDefaultCapacity(t *testing.T) {
	d := NewDedup(0)
	for i := 0; i < 5000; i++ {
		d.Seen(MakeRequestID(1, uint32(i)))
	}
	if d.Len() != 4096 {
		t.Errorf("default capacity: Len = %d, want 4096", d.Len())
	}
}
