package resp_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"dataflasks"
	"dataflasks/internal/metrics"
	"dataflasks/internal/resp"
)

// startGateway boots a real single-node TCP deployment (static slicer,
// one slice: the node serves every key immediately) behind a RESP
// gateway — the exact wiring flasksd -resp-addr uses — and returns the
// gateway address plus its stats registry.
func startGateway(t *testing.T) (string, *metrics.CommandStats) {
	t.Helper()
	cfg := dataflasks.Config{Slices: 1, Slicer: dataflasks.StaticSlicer, SystemSize: 1}
	node, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID:          1,
		Bind:        "127.0.0.1:0",
		RoundPeriod: 25 * time.Millisecond,
		Config:      cfg,
	})
	if err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	t.Cleanup(func() { _ = node.Close() })

	cl, err := dataflasks.ConnectClient("127.0.0.1:0",
		[]string{fmt.Sprintf("1@%s", node.Addr())}, cfg)
	if err != nil {
		t.Fatalf("ConnectClient: %v", err)
	}
	t.Cleanup(cl.Close)

	stats := metrics.NewCommandStats()
	srv := resp.NewServer(cl, resp.Config{
		// A miss costs the read attempt budget; keep it short so the
		// null-reply cases don't dominate the test.
		GetTimeout: 100 * time.Millisecond,
		GetRetries: 1,
		Stats:      stats,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr.String(), stats
}

func dialGateway(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial gateway: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// roundTrip writes send and asserts the next len(want) reply bytes
// match byte-for-byte.
func roundTrip(t *testing.T, conn net.Conn, br *bufio.Reader, send, want string) {
	t.Helper()
	if _, err := conn.Write([]byte(send)); err != nil {
		t.Fatalf("write %q: %v", send, err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	got := make([]byte, len(want))
	if _, err := io.ReadFull(br, got); err != nil {
		t.Fatalf("reply to %q: %v (got %q so far)", send, err, got)
	}
	if string(got) != want {
		t.Fatalf("reply to %q:\n got %q\nwant %q", send, got, want)
	}
}

// TestGatewayConformance drives the full command table — inline and
// multibulk forms, hits and misses, wrong arity and unknown commands —
// and asserts every reply byte-for-byte.
func TestGatewayConformance(t *testing.T) {
	addr, stats := startGateway(t)
	conn := dialGateway(t, addr)
	br := bufio.NewReader(conn)

	// Liveness and echo, both command forms.
	roundTrip(t, conn, br, "*1\r\n$4\r\nPING\r\n", "+PONG\r\n")
	roundTrip(t, conn, br, "PING\r\n", "+PONG\r\n")
	roundTrip(t, conn, br, "*2\r\n$4\r\nPING\r\n$5\r\nhello\r\n", "$5\r\nhello\r\n")
	roundTrip(t, conn, br, "*2\r\n$4\r\nECHO\r\n$3\r\nabc\r\n", "$3\r\nabc\r\n")
	roundTrip(t, conn, br, "ECHO inline-arg\r\n", "$10\r\ninline-arg\r\n")

	// Case-insensitive dispatch.
	roundTrip(t, conn, br, "*3\r\n$3\r\nset\r\n$2\r\nk1\r\n$2\r\nv1\r\n", "+OK\r\n")
	roundTrip(t, conn, br, "*2\r\n$3\r\nGeT\r\n$2\r\nk1\r\n", "$2\r\nv1\r\n")

	// SET overwrites: the gateway mints increasing versions, GET reads
	// newest.
	roundTrip(t, conn, br, "*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$5\r\nv1bis\r\n", "+OK\r\n")
	roundTrip(t, conn, br, "*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n", "$5\r\nv1bis\r\n")

	// Binary-safe values (embedded CRLF).
	roundTrip(t, conn, br, "*3\r\n$3\r\nSET\r\n$3\r\nbin\r\n$4\r\na\r\nb\r\n", "+OK\r\n")
	roundTrip(t, conn, br, "*2\r\n$3\r\nGET\r\n$3\r\nbin\r\n", "$4\r\na\r\nb\r\n")

	// Misses answer null after the read budget.
	roundTrip(t, conn, br, "*2\r\n$3\r\nGET\r\n$7\r\nmissing\r\n", "$-1\r\n")

	// MSET / MGET / EXISTS / DEL over multiple keys.
	roundTrip(t, conn, br,
		"*5\r\n$4\r\nMSET\r\n$2\r\nma\r\n$2\r\nva\r\n$2\r\nmb\r\n$2\r\nvb\r\n", "+OK\r\n")
	roundTrip(t, conn, br,
		"*4\r\n$4\r\nMGET\r\n$2\r\nma\r\n$7\r\nmissing\r\n$2\r\nmb\r\n",
		"*3\r\n$2\r\nva\r\n$-1\r\n$2\r\nvb\r\n")
	roundTrip(t, conn, br,
		"*4\r\n$6\r\nEXISTS\r\n$2\r\nma\r\n$7\r\nmissing\r\n$2\r\nmb\r\n", ":2\r\n")
	roundTrip(t, conn, br,
		"*4\r\n$3\r\nDEL\r\n$2\r\nma\r\n$2\r\nmb\r\n$7\r\nmissing\r\n", ":2\r\n")
	roundTrip(t, conn, br, "*2\r\n$6\r\nEXISTS\r\n$2\r\nma\r\n", ":0\r\n")

	// A key SET repeatedly accumulates versions; DEL must remove the
	// WHOLE key (Redis semantics), not just tombstone the newest
	// version and resurface an older value.
	roundTrip(t, conn, br, "*3\r\n$3\r\nSET\r\n$5\r\nmulti\r\n$2\r\nv1\r\n", "+OK\r\n")
	roundTrip(t, conn, br, "*3\r\n$3\r\nSET\r\n$5\r\nmulti\r\n$2\r\nv2\r\n", "+OK\r\n")
	roundTrip(t, conn, br, "*3\r\n$3\r\nSET\r\n$5\r\nmulti\r\n$2\r\nv3\r\n", "+OK\r\n")
	roundTrip(t, conn, br, "*2\r\n$3\r\nDEL\r\n$5\r\nmulti\r\n", ":1\r\n")
	roundTrip(t, conn, br, "*2\r\n$3\r\nGET\r\n$5\r\nmulti\r\n", "$-1\r\n")

	// A key bound twice in one MSET resolves to its LAST value (each
	// pair gets its own minted version; a shared one would drop the
	// second put as an idempotent no-op).
	roundTrip(t, conn, br,
		"*5\r\n$4\r\nMSET\r\n$3\r\ndup\r\n$5\r\nfirst\r\n$3\r\ndup\r\n$4\r\nlast\r\n", "+OK\r\n")
	roundTrip(t, conn, br, "*2\r\n$3\r\nGET\r\n$3\r\ndup\r\n", "$4\r\nlast\r\n")

	// Redis SET options are valid arity but unsupported semantics: the
	// reply is a syntax error, not a wrong-arity complaint.
	roundTrip(t, conn, br, "*5\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n$2\r\nEX\r\n$2\r\n10\r\n",
		"-ERR syntax error\r\n")

	// MSET with an odd tail is rejected without touching the store.
	roundTrip(t, conn, br,
		"*4\r\n$4\r\nMSET\r\n$1\r\nx\r\n$1\r\n1\r\n$1\r\ny\r\n",
		"-ERR wrong number of arguments for 'mset' command\r\n")

	// Wrong arity and unknown commands answer errors and keep the
	// connection usable.
	roundTrip(t, conn, br, "*1\r\n$3\r\nGET\r\n",
		"-ERR wrong number of arguments for 'get' command\r\n")
	roundTrip(t, conn, br, "*1\r\n$7\r\nFLUSHDB\r\n",
		"-ERR unknown command 'FLUSHDB'\r\n")
	roundTrip(t, conn, br, "PING\r\n", "+PONG\r\n")

	// Introspection: COMMAND COUNT, COMMAND DOCS, HELLO negotiation.
	roundTrip(t, conn, br, "*2\r\n$7\r\nCOMMAND\r\n$5\r\nCOUNT\r\n", ":12\r\n")
	roundTrip(t, conn, br, "*2\r\n$7\r\nCOMMAND\r\n$4\r\nDOCS\r\n", "*0\r\n")
	roundTrip(t, conn, br, "*2\r\n$5\r\nHELLO\r\n$1\r\n3\r\n",
		"-NOPROTO unsupported protocol version\r\n")

	// INFO is a bulk reply carrying the per-command stats.
	if _, err := conn.Write([]byte("*1\r\n$4\r\nINFO\r\n")); err != nil {
		t.Fatalf("write INFO: %v", err)
	}
	header, err := br.ReadString('\n')
	if err != nil || header[0] != '$' {
		t.Fatalf("INFO header %q: %v", header, err)
	}
	n := 0
	if _, err := fmt.Sscanf(header, "$%d\r\n", &n); err != nil {
		t.Fatalf("INFO length: %v", err)
	}
	body := make([]byte, n+2)
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatalf("INFO body: %v", err)
	}
	for _, want := range []string{"# Server", "server:dataflasks-resp-gateway", "cmdstat_set:", "cmdstat_get:"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("INFO body missing %q:\n%s", want, body)
		}
	}

	// QUIT acknowledges and closes.
	roundTrip(t, conn, br, "*1\r\n$4\r\nQUIT\r\n", "+OK\r\n")
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection open after QUIT: %v", err)
	}

	if calls, _ := stats.Totals(); calls == 0 {
		t.Fatal("command stats recorded nothing")
	}
	if got := stats.Stat("set").Calls.Load(); got < 3 {
		t.Fatalf("cmdstat set calls = %d, want >= 3", got)
	}
	if got := stats.Stat("unknown").Errors.Load(); got == 0 {
		t.Fatal("unknown-command errors not counted")
	}
}

// TestGatewayPipelined floods one connection with interleaved writes
// and reads in a single TCP burst and asserts the replies come back
// complete and in request order.
func TestGatewayPipelined(t *testing.T) {
	addr, _ := startGateway(t)
	conn := dialGateway(t, addr)
	br := bufio.NewReader(conn)

	const ops = 100
	var req, want bytes.Buffer
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("pipe%03d", i)
		val := fmt.Sprintf("val%03d", i)
		fmt.Fprintf(&req, "*3\r\n$3\r\nSET\r\n$%d\r\n%s\r\n$%d\r\n%s\r\n",
			len(key), key, len(val), val)
		want.WriteString("+OK\r\n")
	}
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("pipe%03d", i)
		val := fmt.Sprintf("val%03d", i)
		fmt.Fprintf(&req, "*2\r\n$3\r\nGET\r\n$%d\r\n%s\r\n", len(key), key)
		fmt.Fprintf(&want, "$%d\r\n%s\r\n", len(val), val)
	}
	if _, err := conn.Write(req.Bytes()); err != nil {
		t.Fatalf("write pipeline: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	got := make([]byte, want.Len())
	if _, err := io.ReadFull(br, got); err != nil {
		t.Fatalf("read pipeline replies: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("pipelined replies diverge:\n got %q\nwant %q", got, want.Bytes())
	}
}

// TestGatewayEarlyFlush proves a fast command's reply is not withheld
// behind a slow one queued after it: SET's +OK must reach the client
// while the following GET of a missing key is still waiting out its
// read budget.
func TestGatewayEarlyFlush(t *testing.T) {
	addr, _ := startGateway(t)
	conn := dialGateway(t, addr)
	br := bufio.NewReader(conn)

	// Pipeline: a SET (completes in ~ms) then a GET miss (~2x100ms
	// budget). The +OK must arrive well before the miss resolves.
	burst := "*3\r\n$3\r\nSET\r\n$4\r\nfast\r\n$1\r\nv\r\n" +
		"*2\r\n$3\r\nGET\r\n$10\r\nslow-miss-\r\n"
	start := time.Now()
	if _, err := conn.Write([]byte(burst)); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	ok := make([]byte, len("+OK\r\n"))
	if _, err := io.ReadFull(br, ok); err != nil {
		t.Fatalf("read +OK: %v", err)
	}
	okAt := time.Since(start)
	if string(ok) != "+OK\r\n" {
		t.Fatalf("first reply = %q", ok)
	}
	null := make([]byte, len("$-1\r\n"))
	if _, err := io.ReadFull(br, null); err != nil {
		t.Fatalf("read null: %v", err)
	}
	missAt := time.Since(start)
	if string(null) != "$-1\r\n" {
		t.Fatalf("second reply = %q", null)
	}
	// The miss pays its budget (>= ~200ms); the +OK must not have
	// waited for it.
	if missAt < 100*time.Millisecond {
		t.Fatalf("miss resolved in %s — read budget not exercised, test proves nothing", missAt)
	}
	if okAt > missAt/2 {
		t.Fatalf("+OK arrived at %s, withheld behind the %s miss", okAt, missAt)
	}
}

// TestGatewayProtocolErrorCloses proves malformed framing draws one
// -ERR Protocol error reply and a severed connection, like Redis.
func TestGatewayProtocolErrorCloses(t *testing.T) {
	addr, _ := startGateway(t)
	conn := dialGateway(t, addr)
	br := bufio.NewReader(conn)

	if _, err := conn.Write([]byte("*1\r\n+OK\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read error reply: %v", err)
	}
	if !strings.HasPrefix(line, "-ERR Protocol error") {
		t.Fatalf("reply = %q, want -ERR Protocol error...", line)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after protocol error: %v", err)
	}
}
