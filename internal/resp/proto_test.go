package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// chunkReader yields at most n bytes per Read, modeling fragmented TCP
// delivery: a RESP frame can arrive split at every possible boundary.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func readAll(t *testing.T, r *Reader) [][][]byte {
	t.Helper()
	var cmds [][][]byte
	for {
		args, err := r.ReadCommand()
		if errors.Is(err, io.EOF) {
			return cmds
		}
		if err != nil {
			t.Fatalf("ReadCommand: %v", err)
		}
		// The reader reuses its buffers; keep copies for the assertion.
		cp := make([][]byte, len(args))
		for i, a := range args {
			cp[i] = append([]byte(nil), a...)
		}
		cmds = append(cmds, cp)
	}
}

func TestReadCommandMultibulk(t *testing.T) {
	in := "*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\nvalue\r\n"
	cmds := readAll(t, NewReader(strings.NewReader(in)))
	if len(cmds) != 1 {
		t.Fatalf("got %d commands, want 1", len(cmds))
	}
	want := []string{"SET", "key", "value"}
	for i, w := range want {
		if string(cmds[0][i]) != w {
			t.Fatalf("arg %d = %q, want %q", i, cmds[0][i], w)
		}
	}
}

func TestReadCommandInline(t *testing.T) {
	in := "PING\r\n  get   some-key  \r\n\r\nECHO hi\n"
	cmds := readAll(t, NewReader(strings.NewReader(in)))
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3 (empty line skipped)", len(cmds))
	}
	if string(cmds[0][0]) != "PING" {
		t.Fatalf("cmd 0 = %q", cmds[0][0])
	}
	if string(cmds[1][0]) != "get" || string(cmds[1][1]) != "some-key" {
		t.Fatalf("cmd 1 = %q", cmds[1])
	}
	if string(cmds[2][0]) != "ECHO" || string(cmds[2][1]) != "hi" {
		t.Fatalf("cmd 2 (bare LF line) = %q", cmds[2])
	}
}

// TestReadCommandFragmented decodes a pipelined multi-command stream
// delivered in every fragment size from 1 byte up — the reader must
// reassemble identical commands regardless of how TCP slices them.
func TestReadCommandFragmented(t *testing.T) {
	in := []byte("*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$11\r\nhello world\r\n" +
		"PING\r\n" +
		"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n" +
		"*4\r\n$3\r\nDEL\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n")
	want := [][]string{
		{"SET", "key", "hello world"},
		{"PING"},
		{"GET", "key"},
		{"DEL", "a", "b", "c"},
	}
	for frag := 1; frag <= len(in); frag++ {
		cmds := readAll(t, NewReader(&chunkReader{data: in, n: frag}))
		if len(cmds) != len(want) {
			t.Fatalf("frag=%d: got %d commands, want %d", frag, len(cmds), len(want))
		}
		for i, w := range want {
			if len(cmds[i]) != len(w) {
				t.Fatalf("frag=%d cmd %d: %d args, want %d", frag, i, len(cmds[i]), len(w))
			}
			for j, arg := range w {
				if string(cmds[i][j]) != arg {
					t.Fatalf("frag=%d cmd %d arg %d = %q, want %q", frag, i, j, cmds[i][j], arg)
				}
			}
		}
	}
}

// TestReadCommandTruncated proves a frame cut mid-way reports an
// unexpected EOF, not a clean one — the server logs it instead of
// treating it as a polite close.
func TestReadCommandTruncated(t *testing.T) {
	whole := "*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\nvalue\r\n"
	for cut := 1; cut < len(whole); cut++ {
		r := NewReader(strings.NewReader(whole[:cut]))
		_, err := r.ReadCommand()
		if err == nil {
			t.Fatalf("cut=%d: no error for truncated frame", cut)
		}
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: clean EOF for truncated frame", cut)
		}
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"negative multibulk", "*-1\r\n"},
		{"huge multibulk", "*99999999\r\n"},
		{"non-numeric multibulk", "*x2\r\n"},
		{"missing bulk marker", "*1\r\n+OK\r\n"},
		{"negative bulk length", "*1\r\n$-1\r\n"},
		{"huge bulk length", "*1\r\n$999999999999\r\n"},
		{"bulk not terminated by CRLF", "*1\r\n$2\r\nabXY\r\n"},
		{"bare negative header", "*-\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.in))
			_, err := r.ReadCommand()
			var perr ProtocolError
			if !errors.As(err, &perr) {
				t.Fatalf("got %v, want ProtocolError", err)
			}
		})
	}
}

func TestReadCommandTooBigInline(t *testing.T) {
	r := NewReader(strings.NewReader(strings.Repeat("a", maxInline+10) + "\r\n"))
	_, err := r.ReadCommand()
	var perr ProtocolError
	if !errors.As(err, &perr) {
		t.Fatalf("got %v, want ProtocolError for oversized inline line", err)
	}
}

func TestWriterReplies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Simple("OK"); err != nil {
		t.Fatal(err)
	}
	if err := w.Error("ERR boom\r\nwith newline"); err != nil {
		t.Fatal(err)
	}
	if err := w.Int(-42); err != nil {
		t.Fatal(err)
	}
	if err := w.Bulk([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := w.Null(); err != nil {
		t.Fatal(err)
	}
	if err := w.Array(2); err != nil {
		t.Fatal(err)
	}
	if err := w.BulkString("a"); err != nil {
		t.Fatal(err)
	}
	if err := w.BulkString(""); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n" +
		"-ERR boom  with newline\r\n" +
		":-42\r\n" +
		"$2\r\nhi\r\n" +
		"$-1\r\n" +
		"*2\r\n$1\r\na\r\n$0\r\n\r\n"
	if buf.String() != want {
		t.Fatalf("wire bytes:\n got %q\nwant %q", buf.String(), want)
	}
}
