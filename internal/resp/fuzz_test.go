package resp

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzRESPParse proves the wire reader never panics on arbitrary input
// and that every malformed stream is classified as either a protocol
// error (answerable with an -ERR reply) or an I/O condition — the two
// outcomes the server knows how to handle. It also checks the decode
// loop always terminates and that decoded commands respect the wire
// limits the reader promises to enforce.
func FuzzRESPParse(f *testing.F) {
	seeds := []string{
		"*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\nvalue\r\n",
		"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n",
		"PING\r\n",
		"get some key\r\n",
		"*1\r\n$4\r\nQUIT\r\n",
		"*0\r\n*1\r\n$4\r\nPING\r\n",
		"*-1\r\n",
		"*2\r\n$3\r\nGET\r\n",
		"*1\r\n+OK\r\n",
		"$5\r\nhello\r\n",
		"*1\r\n$-5\r\n",
		"*1\r\n$3\r\nab\r\n",
		"\r\n\r\nPING\r\n",
		"*1000000\r\n",
		"-ERR backwards\r\n",
		"*2\r\n$1\r\na\r\n$1\r\nb\r\nleftover",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				var perr ProtocolError
				if !errors.As(err, &perr) &&
					!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unclassified error: %v", err)
				}
				// A protocol error must render as a writable reply.
				if errors.As(err, &perr) {
					var buf bytes.Buffer
					w := NewWriter(&buf)
					if werr := w.Error("ERR " + perr.Error()); werr != nil {
						t.Fatalf("error reply not writable: %v", werr)
					}
					if werr := w.Flush(); werr != nil {
						t.Fatalf("flush: %v", werr)
					}
					if !bytes.HasPrefix(buf.Bytes(), []byte("-ERR ")) ||
						!bytes.HasSuffix(buf.Bytes(), []byte("\r\n")) {
						t.Fatalf("malformed error reply %q", buf.Bytes())
					}
				}
				return
			}
			if len(args) == 0 {
				t.Fatal("ReadCommand returned an empty command")
			}
			if len(args) > maxArgs {
				t.Fatalf("command with %d args exceeds maxArgs", len(args))
			}
			for _, a := range args {
				if len(a) > maxBulk {
					t.Fatalf("arg of %d bytes exceeds maxBulk", len(a))
				}
			}
			if i > len(data) {
				t.Fatal("decode loop did not consume input")
			}
		}
	})
}
