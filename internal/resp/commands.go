package resp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"dataflasks"
	"dataflasks/internal/metrics"
)

// command describes one table entry. Arity follows the Redis
// convention: positive means exactly that many words (command
// included), negative -N means at least N words.
type command struct {
	name  string
	arity int
	// flags render in COMMAND replies ("write", "readonly", "fast").
	flags []string
	// handler decodes args (args[0] is the command word, already
	// validated against arity) and returns the reply to queue. It runs
	// on the reader goroutine: it must copy what it keeps (the arg
	// buffers are reused by the next command) and must not block on
	// backend completions — that is the reply's job.
	handler func(c *conn, args [][]byte) reply
}

// commandTable holds every supported command, keyed by lowercase name.
var commandTable map[string]*command

func init() {
	cmds := []*command{
		{name: "ping", arity: -1, flags: []string{"fast"}, handler: cmdPing},
		{name: "echo", arity: 2, flags: []string{"fast"}, handler: cmdEcho},
		{name: "set", arity: -3, flags: []string{"write"}, handler: cmdSet},
		{name: "get", arity: 2, flags: []string{"readonly", "fast"}, handler: cmdGet},
		{name: "del", arity: -2, flags: []string{"write"}, handler: cmdDel},
		{name: "exists", arity: -2, flags: []string{"readonly", "fast"}, handler: cmdExists},
		{name: "mset", arity: -3, flags: []string{"write"}, handler: cmdMSet},
		{name: "mget", arity: -2, flags: []string{"readonly", "fast"}, handler: cmdMGet},
		{name: "info", arity: -1, flags: []string{"readonly"}, handler: cmdInfo},
		{name: "command", arity: -1, flags: []string{"readonly"}, handler: cmdCommand},
		{name: "hello", arity: -1, flags: []string{"fast"}, handler: cmdHello},
		{name: "quit", arity: 1, flags: []string{"fast"}, handler: cmdQuit},
	}
	commandTable = make(map[string]*command, len(cmds))
	for _, cmd := range cmds {
		commandTable[cmd.name] = cmd
	}
}

// checkArity reports whether n words satisfy the command's arity.
func (cmd *command) checkArity(n int) bool {
	if cmd.arity < 0 {
		return n >= -cmd.arity
	}
	return n == cmd.arity
}

// dispatch resolves one decoded command and queues its reply. It runs
// on the reader goroutine.
func (c *conn) dispatch(args [][]byte) {
	start := time.Now()
	name := lowerWord(args[0])
	cmd, ok := commandTable[name]

	var stat *metrics.CommandStat
	if c.s.cfg.Stats != nil {
		if ok {
			stat = c.s.cfg.Stats.Stat(name)
		} else {
			stat = c.s.cfg.Stats.Stat("unknown")
		}
	}
	var rp reply
	switch {
	case !ok:
		msg := fmt.Sprintf("ERR unknown command '%s'", printableWord(args[0]))
		rp = errReply(msg)
	case !cmd.checkArity(len(args)):
		rp = errReply(fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd.name))
	default:
		rp = cmd.handler(c, args)
	}
	c.enqueue(pendingReply{write: rp, stat: stat, start: start})
}

// --- tiny reply constructors ------------------------------------------------

func errReply(msg string) reply {
	return func(w *Writer) (bool, error) { return true, w.Error(msg) }
}

func simpleReply(s string) reply {
	return func(w *Writer) (bool, error) { return false, w.Simple(s) }
}

func intReply(n int64) reply {
	return func(w *Writer) (bool, error) { return false, w.Int(n) }
}

// backendErr renders a failed backend op as a RESP error.
func backendErr(err error) string {
	if errors.Is(err, ErrServerClosed) {
		return "ERR server shutting down"
	}
	if errors.Is(err, dataflasks.ErrTimeout) {
		return "ERR cluster unavailable (operation timed out)"
	}
	return "ERR " + err.Error()
}

// --- handlers ---------------------------------------------------------------

func cmdPing(c *conn, args [][]byte) reply {
	switch len(args) {
	case 1:
		return simpleReply("PONG")
	case 2:
		msg := append([]byte(nil), args[1]...)
		return func(w *Writer) (bool, error) { return false, w.Bulk(msg) }
	default:
		return errReply("ERR wrong number of arguments for 'ping' command")
	}
}

func cmdEcho(c *conn, args [][]byte) reply {
	msg := append([]byte(nil), args[1]...)
	return func(w *Writer) (bool, error) { return false, w.Bulk(msg) }
}

// cmdSet stores the value under a fresh, strictly increasing version
// minted by the gateway — the upper-layer version-ordering contract of
// the paper (§III) — so plain Redis SET semantics (last writer wins)
// hold across connections. Redis SET options (EX/NX/...) are not
// supported and answer a syntax error rather than silently dropping
// durability expectations.
func cmdSet(c *conn, args [][]byte) reply {
	if len(args) > 3 {
		return errReply("ERR syntax error") // SET options are unsupported
	}
	key := string(args[1])
	value := append([]byte(nil), args[2]...)
	op := c.s.backend.PutAsync(key, c.s.cfg.Version(), value)
	return func(w *Writer) (bool, error) {
		if err := c.waitOp(w, op); err != nil {
			return true, w.Error(backendErr(err))
		}
		return false, w.Simple("OK")
	}
}

// cmdGet maps GET onto a newest-version read. A missing key has no
// authoritative negative in an epidemic store: the miss is reported
// after the configured read attempt budget (Config.GetTimeout ×
// (GetRetries+1)) as the RESP null bulk.
func cmdGet(c *conn, args [][]byte) reply {
	op := c.getLatest(string(args[1]))
	return func(w *Writer) (bool, error) {
		if err := c.waitOp(w, op); err != nil {
			if errors.Is(err, dataflasks.ErrNotFound) {
				return false, w.Null()
			}
			return true, w.Error(backendErr(err))
		}
		return false, w.Bulk(op.Value())
	}
}

// getLatest issues one bounded newest-version read.
func (c *conn) getLatest(key string) *dataflasks.Op {
	return c.s.backend.GetLatestAsync(key,
		dataflasks.WithTimeout(c.s.cfg.GetTimeout),
		dataflasks.WithRetries(c.s.cfg.GetRetries))
}

// cmdDel removes every named key — every stored version, matching
// Redis DEL — through the batched delete wire path: keys are grouped
// per target slice, each group is ONE DeleteBatchRequest applied by
// replicas in a single pass. The integer reply is how many keys
// existed on the acking replicas — Redis DEL's removed-count, seen
// through the most complete replica.
func cmdDel(c *conn, args [][]byte) reply {
	items := make([]dataflasks.KeyVersion, 0, len(args)-1)
	for _, a := range args[1:] {
		items = append(items, dataflasks.KeyVersion{Key: string(a), Version: dataflasks.AllVersions})
	}
	ops := c.s.backend.DeleteBatchAsync(items)
	return func(w *Writer) (bool, error) {
		removed := 0
		for i, op := range ops {
			if err := c.waitOp(w, op); err != nil {
				cancelOps(ops[i+1:])
				return true, w.Error(backendErr(err))
			}
			removed += op.Applied()
		}
		return false, w.Int(int64(removed))
	}
}

// cancelOps abandons sibling futures after an early error reply, so
// they do not linger in the client's pending table burning their retry
// budget against the cluster (the pending-op-leak class the blocking
// wrappers also guard against).
func cancelOps(ops []*dataflasks.Op) {
	for _, op := range ops {
		op.Cancel()
	}
}

// cmdExists counts keys that resolve to a value. Missing keys cost the
// read attempt budget each, though the probes for all keys overlap.
func cmdExists(c *conn, args [][]byte) reply {
	ops := make([]*dataflasks.Op, 0, len(args)-1)
	for _, a := range args[1:] {
		ops = append(ops, c.getLatest(string(a)))
	}
	return func(w *Writer) (bool, error) {
		found := int64(0)
		for _, op := range ops {
			err := c.waitOp(w, op)
			switch {
			case err == nil:
				found++
			case errors.Is(err, dataflasks.ErrNotFound):
				// absent: counts zero
			default:
				return true, w.Error(backendErr(err))
			}
		}
		return false, w.Int(found)
	}
}

// cmdMSet writes every pair through the PutBatch wire path: objects
// are grouped per target slice, each group ONE PutBatchRequest landing
// on every replica as a single store.PutBatch append.
func cmdMSet(c *conn, args [][]byte) reply {
	if len(args)%2 != 1 {
		return errReply("ERR wrong number of arguments for 'mset' command")
	}
	// One fresh version per pair, in argument order: a key bound twice
	// in the same MSET resolves to its LAST value (Redis semantics) —
	// a shared version would make the second put an idempotent no-op.
	objs := make([]dataflasks.Object, 0, (len(args)-1)/2)
	for i := 1; i < len(args); i += 2 {
		objs = append(objs, dataflasks.Object{
			Key:     string(args[i]),
			Version: c.s.cfg.Version(),
			Value:   append([]byte(nil), args[i+1]...),
		})
	}
	ops := c.s.backend.PutBatchAsync(objs)
	return func(w *Writer) (bool, error) {
		for i, op := range ops {
			if err := c.waitOp(w, op); err != nil {
				cancelOps(ops[i+1:])
				return true, w.Error(backendErr(err))
			}
		}
		return false, w.Simple("OK")
	}
}

// cmdMGet overlaps one newest-version read per key and replies with
// the values in key order (null for misses), like Redis MGET.
func cmdMGet(c *conn, args [][]byte) reply {
	ops := make([]*dataflasks.Op, 0, len(args)-1)
	for _, a := range args[1:] {
		ops = append(ops, c.getLatest(string(a)))
	}
	return func(w *Writer) (bool, error) {
		sawErr := false
		if err := w.Array(len(ops)); err != nil {
			return false, err
		}
		for _, op := range ops {
			err := c.waitOp(w, op)
			switch {
			case err == nil:
				if werr := w.Bulk(op.Value()); werr != nil {
					return sawErr, werr
				}
			case errors.Is(err, dataflasks.ErrNotFound):
				if werr := w.Null(); werr != nil {
					return sawErr, werr
				}
			default:
				// The array header is committed, so a failed read must
				// still fill its slot; a null keeps the frame
				// well-formed and the command is counted as errored.
				sawErr = true
				if werr := w.Null(); werr != nil {
					return sawErr, werr
				}
			}
		}
		return sawErr, nil
	}
}

// cmdInfo reports gateway state in the sectioned key:value format
// Redis clients and dashboards parse, including the per-command
// counters and latency quantiles (DBSIZE-style observability — an
// epidemic client cannot see a global keyspace count, so the gateway
// reports its own traffic instead).
func cmdInfo(c *conn, args [][]byte) reply {
	return func(w *Writer) (bool, error) {
		var b strings.Builder
		fmt.Fprintf(&b, "# Server\r\n")
		fmt.Fprintf(&b, "server:dataflasks-resp-gateway\r\n")
		fmt.Fprintf(&b, "resp_protocol:2\r\n")
		fmt.Fprintf(&b, "tcp_port:%s\r\n", portOf(c.s.Addr()))
		fmt.Fprintf(&b, "# Clients\r\n")
		fmt.Fprintf(&b, "connected_clients:%d\r\n", c.s.Conns())
		fmt.Fprintf(&b, "# Stats\r\n")
		fmt.Fprintf(&b, "pending_backend_ops:%d\r\n", c.s.backend.Pending())
		if stats := c.s.cfg.Stats; stats != nil {
			calls, errs := stats.Totals()
			fmt.Fprintf(&b, "total_commands_processed:%d\r\n", calls)
			fmt.Fprintf(&b, "total_error_replies:%d\r\n", errs)
			fmt.Fprintf(&b, "latency_p50_usec:%d\r\n", stats.Quantile(0.50).Microseconds())
			fmt.Fprintf(&b, "latency_p99_usec:%d\r\n", stats.Quantile(0.99).Microseconds())
			fmt.Fprintf(&b, "# Commandstats\r\n")
			for _, name := range stats.Names() {
				st := stats.Stat(name)
				fmt.Fprintf(&b, "cmdstat_%s:calls=%d,errors=%d,mean_usec=%d,p99_usec=%d\r\n",
					name, st.Calls.Load(), st.Errors.Load(),
					st.Latency.Mean().Microseconds(), st.Latency.Quantile(0.99).Microseconds())
			}
		}
		return false, w.BulkString(b.String())
	}
}

// cmdCommand answers the introspection forms clients call on connect.
func cmdCommand(c *conn, args [][]byte) reply {
	if len(args) == 1 {
		return commandListReply()
	}
	switch lowerWord(args[1]) {
	case "count":
		return intReply(int64(len(commandTable)))
	case "docs":
		// RESP2 renders the docs map as a flat array; empty is valid
		// and keeps redis-cli quiet.
		return func(w *Writer) (bool, error) { return false, w.Array(0) }
	case "info":
		names := make([]string, 0, len(args)-2)
		for _, a := range args[2:] {
			names = append(names, lowerWord(a))
		}
		return func(w *Writer) (bool, error) {
			if err := w.Array(len(names)); err != nil {
				return false, err
			}
			for _, name := range names {
				cmd, ok := commandTable[name]
				if !ok {
					if err := w.Null(); err != nil {
						return false, err
					}
					continue
				}
				if err := writeCommandInfo(w, cmd); err != nil {
					return false, err
				}
			}
			return false, nil
		}
	default:
		return commandListReply()
	}
}

func commandListReply() reply {
	return func(w *Writer) (bool, error) {
		if err := w.Array(len(commandTable)); err != nil {
			return false, err
		}
		for _, name := range commandNames() {
			if err := writeCommandInfo(w, commandTable[name]); err != nil {
				return false, err
			}
		}
		return false, nil
	}
}

// commandNames returns the table keys in stable order so COMMAND
// replies are deterministic (the conformance suite diffs bytes).
func commandNames() []string {
	names := make([]string, 0, len(commandTable))
	for name := range commandTable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeCommandInfo renders one COMMAND entry in the classic 6-element
// shape: name, arity, flags, first key, last key, key step.
func writeCommandInfo(w *Writer, cmd *command) error {
	if err := w.Array(6); err != nil {
		return err
	}
	if err := w.BulkString(cmd.name); err != nil {
		return err
	}
	if err := w.Int(int64(cmd.arity)); err != nil {
		return err
	}
	if err := w.Array(len(cmd.flags)); err != nil {
		return err
	}
	for _, f := range cmd.flags {
		if err := w.BulkString(f); err != nil {
			return err
		}
	}
	first, last, step := keySpec(cmd)
	if err := w.Int(int64(first)); err != nil {
		return err
	}
	if err := w.Int(int64(last)); err != nil {
		return err
	}
	return w.Int(int64(step))
}

// keySpec returns the (first, last, step) key positions of a command.
func keySpec(cmd *command) (int, int, int) {
	switch cmd.name {
	case "get", "set":
		return 1, 1, 1
	case "del", "exists", "mget":
		return 1, -1, 1
	case "mset":
		return 1, -1, 2
	default:
		return 0, 0, 0
	}
}

// cmdHello negotiates the protocol: only RESP2 is spoken. The reply is
// the RESP2 (flat array) rendering of the handshake map, enough for
// redis-cli and client libraries to proceed.
func cmdHello(c *conn, args [][]byte) reply {
	if len(args) > 1 && string(args[1]) != "2" {
		return errReply("NOPROTO unsupported protocol version")
	}
	if len(args) > 2 {
		// HELLO options (AUTH user pass, SETNAME ...) must not be
		// silently swallowed: a client that sent credentials would
		// proceed believing they were validated.
		return errReply(fmt.Sprintf("ERR unsupported HELLO option '%s'", printableWord(args[2])))
	}
	return func(w *Writer) (bool, error) {
		fields := []struct{ k, v string }{
			{"server", "dataflasks-resp-gateway"},
			{"version", "1.0.0"},
			{"mode", "cluster"},
			{"role", "master"},
		}
		if err := w.Array(len(fields)*2 + 2); err != nil {
			return false, err
		}
		for _, f := range fields {
			if err := w.BulkString(f.k); err != nil {
				return false, err
			}
			if err := w.BulkString(f.v); err != nil {
				return false, err
			}
		}
		if err := w.BulkString("proto"); err != nil {
			return false, err
		}
		return false, w.Int(2)
	}
}

func cmdQuit(c *conn, args [][]byte) reply {
	c.quit = true
	return simpleReply("OK")
}

// --- small helpers ----------------------------------------------------------

// lowerWord lowercases a short command word without allocating for the
// common already-lowercase case.
func lowerWord(b []byte) string {
	hasUpper := false
	for _, c := range b {
		if c >= 'A' && c <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return string(b)
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

// printableWord truncates and sanitizes an unknown command word for an
// error message.
func printableWord(b []byte) string {
	const max = 64
	if len(b) > max {
		b = b[:max]
	}
	out := make([]byte, 0, len(b))
	for _, c := range b {
		if c < 0x20 || c >= 0x7f {
			out = append(out, '?')
			continue
		}
		out = append(out, c)
	}
	return string(out)
}

// portOf extracts the port of "host:port" ("" when unknown).
func portOf(addr string) string {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return ""
	}
	return addr[i+1:]
}
