// Package resp serves a DataFlasks cluster over RESP2, the Redis
// serialization protocol, so any existing Redis client, benchmark
// driver or workload can talk to the substrate without a bespoke SDK.
//
// The package has two layers. The wire layer (this file) is a
// zero-allocation-minded Reader/Writer pair for the RESP2 framing:
// inline and multibulk commands in, simple/error/integer/bulk/array
// replies out. The server layer (server.go, commands.go) is a
// per-connection state machine that decodes pipelined commands,
// dispatches them as overlapping asynchronous operations on a shared
// dataflasks.Client, and writes replies back in request order — so one
// RESP connection gets the full pipelining win of the future-based
// client API with no client-side changes.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Wire limits. Redis caps multibulk element counts at 1M and bulk
// payloads at 512 MB; the gateway is more conservative on payloads
// (DataFlasks values ride gob messages end to end).
const (
	// maxArgs bounds the elements of one multibulk command.
	maxArgs = 1024 * 1024
	// maxBulk bounds one bulk payload (a SET value).
	maxBulk = 64 << 20
	// maxCommand bounds one whole command's payload bytes (the sum of
	// its arguments) — the per-arg and arg-count limits alone would
	// still admit a multi-TB command that OOMs the process.
	maxCommand = 256 << 20
	// maxInline bounds one inline command line.
	maxInline = 64 << 10
	// arenaKeep is the largest argument arena retained between
	// commands; one huge MSET must not pin its buffer for the
	// connection's lifetime.
	arenaKeep = 1 << 20
)

// ProtocolError reports malformed RESP input. The server answers it
// with an -ERR Protocol error reply and closes the connection, exactly
// like Redis.
type ProtocolError string

// Error implements error.
func (e ProtocolError) Error() string { return "Protocol error: " + string(e) }

// protoErrf builds a ProtocolError.
func protoErrf(format string, args ...interface{}) ProtocolError {
	return ProtocolError(fmt.Sprintf(format, args...))
}

// Reader decodes RESP2 commands (multibulk and inline forms) from a
// byte stream. Arguments returned by ReadCommand point into an
// internal buffer that is reused by the next call — callers copy what
// they keep, which the gateway does anyway when it hands keys and
// values to the client library.
type Reader struct {
	br *bufio.Reader
	// buf is the flat arena the current command's arguments live in.
	buf []byte
	// args holds the argument slices handed to the caller.
	args [][]byte
	// line is scratch for inline commands and long header lines.
	line []byte
}

// NewReader wraps r for command decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 16<<10)}
}

// ReadCommand decodes the next command. Empty inline lines are skipped
// (Redis does the same — they keep telnet sessions usable). The error
// is a ProtocolError for malformed input (answer and close), or an I/O
// error from the underlying stream.
func (r *Reader) ReadCommand() ([][]byte, error) {
	// Release an oversized argument arena from the previous command
	// before decoding the next, whichever form it takes: one huge MSET
	// must not pin its buffer for the connection's lifetime.
	if cap(r.buf) > arenaKeep {
		r.buf = nil
	}
	for {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if first == '*' {
			args, err := r.readMultibulk()
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue // "*0\r\n": an empty command, nothing to run
			}
			return args, nil
		}
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		args, err := r.readInline()
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			continue // bare CRLF between commands
		}
		return args, nil
	}
}

// readMultibulk parses "*N\r\n" followed by N bulk strings; the leading
// '*' is already consumed.
func (r *Reader) readMultibulk() ([][]byte, error) {
	n, err := r.readHeaderInt('*')
	if err != nil {
		return nil, err
	}
	if n < 0 || n > maxArgs {
		return nil, protoErrf("invalid multibulk length")
	}
	r.buf = r.buf[:0]
	r.args = r.args[:0]
	// offs records each argument as (start, end) into r.buf: appending
	// to the arena may reallocate it, so slices are cut only at the end.
	// The capacity hint is clamped: n comes straight off the wire, and
	// a header-only attacker must not get a 16MB allocation for free.
	capHint := n
	if capHint > 64 {
		capHint = 64
	}
	offs := make([][2]int, 0, capHint)
	for i := int64(0); i < n; i++ {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, eofIsUnexpected(err)
		}
		if first != '$' {
			return nil, protoErrf("expected '$', got '%s'", printable(first))
		}
		ln, err := r.readHeaderInt('$')
		if err != nil {
			return nil, err
		}
		if ln < 0 || ln > maxBulk {
			return nil, protoErrf("invalid bulk length")
		}
		if int64(len(r.buf))+ln > maxCommand {
			return nil, protoErrf("command payload too large")
		}
		start := len(r.buf)
		r.buf = append(r.buf, make([]byte, ln)...)
		if _, err := io.ReadFull(r.br, r.buf[start:]); err != nil {
			return nil, eofIsUnexpected(err)
		}
		if err := r.expectCRLF(); err != nil {
			return nil, err
		}
		offs = append(offs, [2]int{start, len(r.buf)})
	}
	for _, o := range offs {
		r.args = append(r.args, r.buf[o[0]:o[1]])
	}
	return r.args, nil
}

// readHeaderInt parses the decimal integer and CRLF of a "*N" or "$N"
// header whose type byte is already consumed.
func (r *Reader) readHeaderInt(kind byte) (int64, error) {
	line, err := r.readLine()
	if err != nil {
		return 0, err
	}
	if len(line) == 0 {
		return 0, protoErrf("invalid %s header", printable(kind))
	}
	neg := false
	i := 0
	if line[0] == '-' {
		neg = true
		i = 1
		if len(line) == 1 {
			return 0, protoErrf("invalid %s header", printable(kind))
		}
	}
	var n int64
	for ; i < len(line); i++ {
		c := line[i]
		if c < '0' || c > '9' {
			return 0, protoErrf("invalid %s header", printable(kind))
		}
		n = n*10 + int64(c-'0')
		if n > maxBulk+1 { // bounds both header kinds; avoids overflow
			return 0, protoErrf("invalid %s header", printable(kind))
		}
	}
	if neg {
		n = -n
	}
	return n, nil
}

// readInline parses one inline command line into whitespace-separated
// arguments (no quoting — the inline form exists for telnet debugging;
// binary payloads belong in multibulk).
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	r.buf = append(r.buf[:0], line...)
	r.args = r.args[:0]
	start := -1
	for i := 0; i <= len(r.buf); i++ {
		atSep := i == len(r.buf) || r.buf[i] == ' ' || r.buf[i] == '\t'
		switch {
		case atSep && start >= 0:
			r.args = append(r.args, r.buf[start:i])
			start = -1
		case !atSep && start < 0:
			start = i
		}
	}
	return r.args, nil
}

// readLine reads through the next LF, tolerating lines longer than the
// bufio buffer, and returns the line with its trailing CRLF (or bare
// LF) stripped. Lines beyond maxInline are a protocol error.
func (r *Reader) readLine() ([]byte, error) {
	r.line = r.line[:0]
	for {
		frag, err := r.br.ReadSlice('\n')
		r.line = append(r.line, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(r.line) > maxInline {
				return nil, protoErrf("too big inline request")
			}
			continue
		}
		return nil, eofIsUnexpected(err)
	}
	if len(r.line) > maxInline {
		return nil, protoErrf("too big inline request")
	}
	line := r.line[:len(r.line)-1] // strip LF
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// expectCRLF consumes the terminator after a bulk payload.
func (r *Reader) expectCRLF() error {
	cr, err := r.br.ReadByte()
	if err != nil {
		return eofIsUnexpected(err)
	}
	lf, err := r.br.ReadByte()
	if err != nil {
		return eofIsUnexpected(err)
	}
	if cr != '\r' || lf != '\n' {
		return protoErrf("expected CRLF after bulk payload")
	}
	return nil
}

// eofIsUnexpected maps a clean EOF mid-frame to ErrUnexpectedEOF so
// callers can distinguish "connection closed between commands" (EOF
// from ReadCommand's first byte) from a truncated frame.
func eofIsUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// printable renders a byte for error messages without control noise.
func printable(b byte) string {
	if b >= 0x20 && b < 0x7f {
		return string(rune(b))
	}
	return fmt.Sprintf("\\x%02x", b)
}

// Writer encodes RESP2 replies onto a buffered stream. It is not safe
// for concurrent use; the server's per-connection writer goroutine owns
// it. Flush is explicit so pipelined replies coalesce into few writes.
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewWriter wraps w for reply encoding.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16<<10)}
}

// Simple writes "+s\r\n".
func (w *Writer) Simple(s string) error {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Error writes "-msg\r\n". msg should start with an error code word
// ("ERR ...", "WRONGTYPE ...").
func (w *Writer) Error(msg string) error {
	w.bw.WriteByte('-')
	w.bw.WriteString(sanitizeLine(msg))
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Int writes ":n\r\n".
func (w *Writer) Int(n int64) error {
	w.bw.WriteByte(':')
	w.scratch = strconv.AppendInt(w.scratch[:0], n, 10)
	w.bw.Write(w.scratch)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Bulk writes "$len\r\nb\r\n".
func (w *Writer) Bulk(b []byte) error {
	w.bw.WriteByte('$')
	w.scratch = strconv.AppendInt(w.scratch[:0], int64(len(b)), 10)
	w.bw.Write(w.scratch)
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// BulkString writes a string bulk without copying through a []byte.
func (w *Writer) BulkString(s string) error {
	w.bw.WriteByte('$')
	w.scratch = strconv.AppendInt(w.scratch[:0], int64(len(s)), 10)
	w.bw.Write(w.scratch)
	w.bw.WriteString("\r\n")
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Null writes the RESP2 null bulk "$-1\r\n" (missing key).
func (w *Writer) Null() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// Array writes the "*n\r\n" header; the caller then writes n elements.
func (w *Writer) Array(n int) error {
	w.bw.WriteByte('*')
	w.scratch = strconv.AppendInt(w.scratch[:0], int64(n), 10)
	w.bw.Write(w.scratch)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Flush pushes buffered replies to the connection.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Buffered reports bytes waiting for Flush.
func (w *Writer) Buffered() int { return w.bw.Buffered() }

// sanitizeLine strips CR/LF so a message can never break RESP framing.
func sanitizeLine(s string) string {
	clean := false
	for i := 0; i < len(s); i++ {
		if s[i] == '\r' || s[i] == '\n' {
			clean = true
			break
		}
	}
	if !clean {
		return s
	}
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\r' || s[i] == '\n' {
			b = append(b, ' ')
			continue
		}
		b = append(b, s[i])
	}
	return string(b)
}
