package resp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dataflasks"
	"dataflasks/internal/metrics"
)

// Backend is the slice of the dataflasks.Client surface the gateway
// dispatches through. *dataflasks.Client implements it; tests may
// substitute an in-process cluster client.
type Backend interface {
	PutAsync(key string, version uint64, value []byte, opts ...dataflasks.OpOption) *dataflasks.Op
	GetLatestAsync(key string, opts ...dataflasks.OpOption) *dataflasks.Op
	PutBatchAsync(objs []dataflasks.Object, opts ...dataflasks.OpOption) []*dataflasks.Op
	DeleteBatchAsync(items []dataflasks.KeyVersion, opts ...dataflasks.OpOption) []*dataflasks.Op
	Pending() int
}

var _ Backend = (*dataflasks.Client)(nil)

// ErrServerClosed reports an operation abandoned because the gateway
// shut down.
var ErrServerClosed = errors.New("resp: server closed")

// Config tunes the gateway.
type Config struct {
	// MaxInflight bounds the pipelined commands outstanding per
	// connection (decoded but not yet answered). When the queue is
	// full the reader stops consuming the socket, which backpressures
	// the client through TCP (default 128).
	MaxInflight int
	// ReadTimeout is the per-connection idle limit: a connection that
	// sends no command for this long is closed (default 5m).
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply flush (default 1m).
	WriteTimeout time.Duration
	// GetTimeout bounds each attempt of a read (GET/MGET/EXISTS).
	// Epidemic reads have no authoritative negative, so a missing key
	// costs the full attempt budget before the gateway answers null —
	// this knob is that latency (default 2s).
	GetTimeout time.Duration
	// GetRetries is how many fresh attempts follow a timed-out read
	// (default 1).
	GetRetries int
	// Version mints the version number a SET stores under. The default
	// source is a process-wide monotonic wall clock (UnixNano,
	// strictly increasing), giving last-writer-wins across gateway
	// connections — the version-ordering contract DataFlasks expects
	// its upper layer to provide.
	Version func() uint64
	// Stats receives per-command call counters and latency histograms
	// (latency measured decode → reply written, so it includes queue
	// wait). Optional; nil disables accounting.
	Stats *metrics.CommandStats
	// Logf logs accept/serve errors (optional).
	Logf func(format string, args ...interface{})
}

func (c *Config) defaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = time.Minute
	}
	if c.GetTimeout <= 0 {
		c.GetTimeout = 2 * time.Second
	}
	if c.GetRetries < 0 {
		c.GetRetries = 0
	} else if c.GetRetries == 0 {
		c.GetRetries = 1
	}
	if c.Version == nil {
		c.Version = globalVersions.next
	}
}

// versionSource mints strictly increasing versions anchored to the
// wall clock, shared by every connection of the process.
type versionSource struct {
	last atomic.Uint64
}

var globalVersions versionSource

func (v *versionSource) next() uint64 {
	for {
		now := uint64(time.Now().UnixNano())
		last := v.last.Load()
		if now <= last {
			now = last + 1
		}
		if v.last.CompareAndSwap(last, now) {
			return now
		}
	}
}

// Server is the RESP gateway: one TCP listener whose connections all
// dispatch through one shared DataFlasks client. Its lifecycle is
// Listen → (serving) → Close.
type Server struct {
	cfg     Config
	backend Backend

	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	closeOnce sync.Once
}

// NewServer creates a gateway over backend.
func NewServer(backend Backend, cfg Config) *Server {
	if backend == nil {
		panic("resp: NewServer requires a backend")
	}
	cfg.defaults()
	return &Server{
		cfg:     cfg,
		backend: backend,
		done:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Listen binds addr (host:port, port 0 allowed) and starts accepting
// connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("resp: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Addr returns the bound address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Conns returns the number of live connections.
func (s *Server) Conns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops the listener, severs every connection and waits for the
// per-connection goroutines. In-flight backend operations are
// abandoned (their replies are never written).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		if s.ln != nil {
			_ = s.ln.Close()
		}
		s.mu.Lock()
		for nc := range s.conns {
			_ = nc.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	// Transient accept failures (EMFILE under fd pressure, aborted
	// handshakes) must not kill the gateway for the daemon's lifetime;
	// back off and retry, like net/http.Server does.
	backoff := 5 * time.Millisecond
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("resp: accept: %v (retrying in %s)", err, backoff)
			select {
			case <-time.After(backoff):
			case <-s.done:
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		s.conns[nc] = struct{}{}
		// Close severs every conn registered when it takes the lock; a
		// conn accepted concurrently would otherwise be missed and pin
		// Close until its read deadline. Registering first and then
		// checking done under the same lock closes the window: either
		// Close sees the conn in the map, or this sees done closed.
		closing := false
		select {
		case <-s.done:
			closing = true
			delete(s.conns, nc)
		default:
		}
		s.mu.Unlock()
		if closing {
			_ = nc.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// reply produces one command's wire bytes. It runs on the connection's
// writer goroutine, in decode order, and may block waiting on backend
// futures — that wait is what keeps pipelined replies in request
// order while the operations themselves overlap. errReply reports
// whether an error reply was written (per-command error accounting);
// err is an I/O failure on the connection.
type reply func(w *Writer) (errReply bool, err error)

// pendingReply carries a queued reply and its accounting context.
type pendingReply struct {
	write reply
	stat  *metrics.CommandStat
	start time.Time
}

// serveConn runs one connection: this goroutine decodes and dispatches
// commands; a companion writer goroutine drains the in-order queue.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		_ = nc.Close()
	}()

	c := &conn{
		s:       s,
		nc:      nc,
		r:       NewReader(nc),
		pending: make(chan pendingReply, s.cfg.MaxInflight),
	}

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writeLoop()
	}()

	c.readLoop()
	close(c.pending)
	writerWG.Wait()
}

// conn is one RESP connection's state.
type conn struct {
	s  *Server
	nc net.Conn
	r  *Reader

	// pending is the in-order completion queue. Its capacity is the
	// max-inflight backpressure bound.
	pending chan pendingReply

	// quit makes the reader stop after the current command's reply is
	// queued (QUIT, protocol error).
	quit bool
}

// enqueue queues one reply for the writer, blocking when MaxInflight
// commands are outstanding (the backpressure path). A failure means
// the server is shutting down; the reader stops.
func (c *conn) enqueue(pr pendingReply) {
	select {
	case c.pending <- pr:
	case <-c.s.done:
		c.quit = true
	}
}

// readLoop decodes commands until EOF, error or QUIT.
func (c *conn) readLoop() {
	for !c.quit {
		_ = c.nc.SetReadDeadline(time.Now().Add(c.s.cfg.ReadTimeout))
		args, err := c.r.ReadCommand()
		if err != nil {
			var perr ProtocolError
			if errors.As(err, &perr) {
				// Answer like Redis: one -ERR reply, then sever.
				msg := "ERR " + perr.Error()
				c.enqueue(pendingReply{write: func(w *Writer) (bool, error) {
					return true, w.Error(msg)
				}})
			} else if !isClosing(err) {
				c.s.logf("resp: read %s: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		c.dispatch(args)
	}
}

// writeLoop drains the pending queue in order, waiting each reply's
// backend futures out, and flushes when the queue momentarily empties —
// one flush per pipeline burst instead of one per reply.
func (c *conn) writeLoop() {
	w := NewWriter(c.nc)
	for pr := range c.pending {
		// A fresh deadline per reply: replies larger than the buffer
		// flush implicitly inside write, and must not run against a
		// stale (possibly expired) deadline from an earlier burst —
		// nor against none at all, which would let a client that stops
		// reading pin this goroutine forever.
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.s.cfg.WriteTimeout))
		errReply, err := pr.write(w)
		if pr.stat != nil {
			pr.stat.Observe(time.Since(pr.start), errReply)
		}
		if err == nil && len(c.pending) == 0 && w.Buffered() > 0 {
			err = w.Flush()
		}
		if err != nil {
			if !isClosing(err) {
				c.s.logf("resp: write %s: %v", c.nc.RemoteAddr(), err)
			}
			// Sever the socket first so the reader unblocks, closes the
			// queue, and the drain below terminates.
			_ = c.nc.Close()
			for range c.pending {
			}
			return
		}
	}
	_ = c.nc.SetWriteDeadline(time.Now().Add(c.s.cfg.WriteTimeout))
	_ = w.Flush()
}

// waitOp blocks until op completes or the server closes. w, when the
// op is still pending, is flushed first: bytes already produced —
// earlier replies in the pipeline, or this reply's own prefix (an
// MGET's hits before a miss) — must not sit buffered while this wait
// runs. The write deadline was set by writeLoop at reply start.
func (c *conn) waitOp(w *Writer, op *dataflasks.Op) error {
	select {
	case <-op.Done():
		return op.Err()
	default:
	}
	if w.Buffered() > 0 {
		if err := w.Flush(); err != nil {
			op.Cancel()
			return err
		}
	}
	select {
	case <-op.Done():
		return op.Err()
	case <-c.s.done:
		op.Cancel()
		return ErrServerClosed
	}
}

// isClosing reports errors expected while a connection or the server
// winds down.
func isClosing(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.EOF)
}
