package pss

import (
	"context"
	"math/rand/v2"

	"dataflasks/internal/transport"
)

// CyclonConfig tunes the Cyclon shuffle protocol.
type CyclonConfig struct {
	// ViewSize bounds the partial view (paper §II: ln(N)+c entries
	// suffice for epidemic dissemination; 20 is the customary default).
	ViewSize int
	// ShuffleLen is how many descriptors each exchange carries.
	ShuffleLen int
	// SelfAddr is this node's dialable address, gossiped with its
	// descriptor (empty in simulations).
	SelfAddr string
	// OnSendErr observes shuffle send failures. Epidemic rounds never
	// retry — view turnover handles dead peers — but failures must not
	// vanish either; the node runtime counts them (wire_send_errors).
	OnSendErr func(error)
}

func (c *CyclonConfig) defaults() {
	if c.ViewSize <= 0 {
		c.ViewSize = 20
	}
	if c.ShuffleLen <= 0 {
		c.ShuffleLen = c.ViewSize/2 + 1
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
}

// Cyclon implements inexpensive membership management via view shuffles
// (Voulgaris, Gavidia, van Steen). Each round a node contacts its oldest
// neighbour, trades a random sample including a fresh self-descriptor,
// and replaces the entries it sent with the entries it received. Dead
// peers age out because initiating a shuffle removes the target: if it
// never answers, it is simply gone from the view.
//
// Cyclon is not safe for concurrent use; the owning node drives it from
// its single event loop.
type Cyclon struct {
	self     transport.NodeID
	cfg      CyclonConfig
	view     View
	out      transport.Sender
	rng      *rand.Rand
	selfInfo SelfInfo
	observer Observer

	// One shuffle is outstanding at a time; sent descriptors are
	// replaced by the reply's.
	pendingPeer transport.NodeID
	pendingSent []Descriptor
	hasPending  bool
}

var _ Protocol = (*Cyclon)(nil)

// NewCyclon creates a Cyclon instance for self. selfInfo may be nil when
// the deployment does not use slicing metadata.
func NewCyclon(self transport.NodeID, cfg CyclonConfig, out transport.Sender, rng *rand.Rand, selfInfo SelfInfo) *Cyclon {
	cfg.defaults()
	if out == nil {
		panic("pss: NewCyclon requires a sender")
	}
	if rng == nil {
		panic("pss: NewCyclon requires an rng")
	}
	if selfInfo == nil {
		selfInfo = func() (float64, int32) { return 0, SliceUnknown }
	}
	return &Cyclon{self: self, cfg: cfg, out: out, rng: rng, selfInfo: selfInfo}
}

// Bootstrap implements Protocol.
func (c *Cyclon) Bootstrap(seeds []transport.NodeID) {
	for _, id := range seeds {
		if id == c.self {
			continue
		}
		c.view.Add(Descriptor{ID: id, Age: 0, Slice: SliceUnknown})
	}
	c.view.TruncateOldest(c.cfg.ViewSize)
}

// SetObserver implements Protocol.
func (c *Cyclon) SetObserver(o Observer) { c.observer = o }

// View implements Protocol.
func (c *Cyclon) View() []Descriptor { return c.view.Entries() }

// Alive implements Protocol.
func (c *Cyclon) Alive() int { return c.view.Len() }

// RandomPeers implements Protocol.
func (c *Cyclon) RandomPeers(n int) []transport.NodeID {
	sub := c.view.RandomSubset(c.rng, n)
	out := make([]transport.NodeID, len(sub))
	for i, d := range sub {
		out[i] = d.ID
	}
	return out
}

// selfDescriptor stamps a fresh descriptor for the local node.
func (c *Cyclon) selfDescriptor() Descriptor {
	attr, slice := c.selfInfo()
	return Descriptor{ID: c.self, Age: 0, Attr: attr, Slice: slice, Addr: c.cfg.SelfAddr}
}

// sendErr reports a failed shuffle send to the configured observer.
func (c *Cyclon) sendErr(err error) {
	if err != nil && c.cfg.OnSendErr != nil {
		c.cfg.OnSendErr(err)
	}
}

// Tick implements Protocol: one shuffle initiation.
func (c *Cyclon) Tick(ctx context.Context) {
	c.view.IncrementAges()
	target, ok := c.view.Oldest()
	if !ok {
		return
	}
	// Removing the target is Cyclon's failure handling: only a reply
	// reinstates a (fresh) descriptor for it.
	c.view.Remove(target.ID)

	sample := c.view.RandomSubset(c.rng, c.cfg.ShuffleLen-1)
	sample = append(sample, c.selfDescriptor())

	c.pendingPeer = target.ID
	c.pendingSent = sample
	c.hasPending = true
	c.sendErr(c.out.Send(ctx, target.ID, &ShuffleRequest{Sample: sample}))
}

// Handle implements Protocol.
func (c *Cyclon) Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool {
	switch m := msg.(type) {
	case *ShuffleRequest:
		c.onRequest(ctx, from, m)
		return true
	case *ShuffleReply:
		c.onReply(from, m)
		return true
	default:
		return false
	}
}

func (c *Cyclon) onRequest(ctx context.Context, from transport.NodeID, m *ShuffleRequest) {
	// Answer with a random sample of our own. A fresh self-descriptor
	// tops up short replies: without it, two nodes that both just
	// shuffled their last entry away would trade empty samples forever
	// and a sparsely-bootstrapped overlay could never grow.
	reply := c.view.RandomSubset(c.rng, c.cfg.ShuffleLen-1)
	reply = append(reply, c.selfDescriptor())
	c.sendErr(c.out.Send(ctx, from, &ShuffleReply{Sample: reply}))
	c.merge(m.Sample, reply)
}

func (c *Cyclon) onReply(from transport.NodeID, m *ShuffleReply) {
	sent := []Descriptor(nil)
	if c.hasPending && c.pendingPeer == from {
		sent = c.pendingSent
		c.hasPending = false
		c.pendingSent = nil
	}
	c.merge(m.Sample, sent)
}

// merge folds received descriptors into the view: entries for self are
// skipped, known entries keep the younger copy, and when the view is
// full, descriptors we sent away in this exchange are evicted first (in
// the order they were sent, which keeps simulations deterministic),
// then the oldest.
func (c *Cyclon) merge(received, sentAway []Descriptor) {
	sentQueue := make([]transport.NodeID, 0, len(sentAway))
	for _, d := range sentAway {
		if d.ID != c.self {
			sentQueue = append(sentQueue, d.ID)
		}
	}
	for _, d := range received {
		if d.ID == c.self {
			continue
		}
		if c.observer != nil {
			c.observer(d)
		}
		if c.view.Contains(d.ID) {
			c.view.Add(d) // keeps the younger copy
			continue
		}
		if c.view.Len() < c.cfg.ViewSize {
			c.view.Add(d)
			continue
		}
		if evicted := c.evictSent(&sentQueue); evicted {
			c.view.Add(d)
			continue
		}
		// View full of entries we did not send: replace the oldest if
		// the incoming descriptor is fresher.
		oldest, _ := c.view.Oldest()
		if d.Age < oldest.Age {
			c.view.Remove(oldest.ID)
			c.view.Add(d)
		}
	}
}

// evictSent removes the next view entry that was shipped out in the
// current exchange, freeing a slot.
func (c *Cyclon) evictSent(sentQueue *[]transport.NodeID) bool {
	q := *sentQueue
	for len(q) > 0 {
		id := q[0]
		q = q[1:]
		if c.view.Remove(id) {
			*sentQueue = q
			return true
		}
	}
	*sentQueue = q
	return false
}
