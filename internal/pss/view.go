// Package pss implements the Peer Sampling Service the paper builds on:
// every node maintains a small partial view approximating a uniform
// random sample of the whole system. Two classic protocols are provided,
// Cyclon (shuffle-based, [9]) and Newscast (freshness-based, [10]).
//
// Descriptors piggyback each node's slicing attribute and current slice
// claim, so the slicing protocol and the intra-slice discovery receive a
// continuous stream of uniform samples at no extra message cost — the
// "low memory" mode of operation DSlead advocates.
package pss

import (
	"math/rand/v2"

	"dataflasks/internal/transport"
)

// SliceUnknown marks a descriptor whose node has not yet decided its
// slice.
const SliceUnknown int32 = -1

// Descriptor advertises one node in a view.
type Descriptor struct {
	ID transport.NodeID
	// Age counts gossip rounds since the descriptor was created (Cyclon)
	// or a logical freshness timestamp (Newscast, where higher is
	// fresher and the field is inverted at merge time).
	Age uint32
	// Attr is the node's slicing attribute (for example storage
	// capacity) at descriptor creation time.
	Attr float64
	// Slice is the slice the node believed it belonged to, or
	// SliceUnknown.
	Slice int32
	// Addr is the node's dialable address in real (TCP) deployments;
	// empty in simulations. Gossiping addresses with descriptors is
	// what lets an unstructured overlay bootstrap its own routing
	// directory.
	Addr string
}

// View is a bounded set of descriptors with no duplicates and never
// containing the owner. The zero value is an empty view; use the methods
// to keep the invariants.
type View struct {
	entries []Descriptor
}

// Len returns the number of descriptors.
func (v *View) Len() int { return len(v.entries) }

// Entries returns a copy of the descriptors (callers may not mutate the
// view through the result).
func (v *View) Entries() []Descriptor {
	out := make([]Descriptor, len(v.entries))
	copy(out, v.entries)
	return out
}

// IDs returns the node ids currently in the view.
func (v *View) IDs() []transport.NodeID {
	out := make([]transport.NodeID, len(v.entries))
	for i, d := range v.entries {
		out[i] = d.ID
	}
	return out
}

// Contains reports whether id is in the view.
func (v *View) Contains(id transport.NodeID) bool {
	return v.indexOf(id) >= 0
}

// Get returns the descriptor for id.
func (v *View) Get(id transport.NodeID) (Descriptor, bool) {
	if i := v.indexOf(id); i >= 0 {
		return v.entries[i], true
	}
	return Descriptor{}, false
}

func (v *View) indexOf(id transport.NodeID) int {
	for i, d := range v.entries {
		if d.ID == id {
			return i
		}
	}
	return -1
}

// Add inserts d if absent; when present it keeps the younger
// descriptor (ties go to the incoming copy, whose metadata travelled
// more recently). Returns true when the view changed.
func (v *View) Add(d Descriptor) bool {
	if i := v.indexOf(d.ID); i >= 0 {
		if d.Age <= v.entries[i].Age {
			v.entries[i] = d
			return true
		}
		return false
	}
	v.entries = append(v.entries, d)
	return true
}

// Remove deletes id, reporting whether it was present.
func (v *View) Remove(id transport.NodeID) bool {
	i := v.indexOf(id)
	if i < 0 {
		return false
	}
	last := len(v.entries) - 1
	v.entries[i] = v.entries[last]
	v.entries = v.entries[:last]
	return true
}

// IncrementAges adds one round to every descriptor's age.
func (v *View) IncrementAges() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// Oldest returns the descriptor with the highest age.
func (v *View) Oldest() (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	best := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[best].Age {
			best = i
		}
	}
	return v.entries[best], true
}

// Random returns a uniformly random descriptor.
func (v *View) Random(rng *rand.Rand) (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	return v.entries[rng.IntN(len(v.entries))], true
}

// RandomSubset returns up to n distinct descriptors chosen uniformly.
func (v *View) RandomSubset(rng *rand.Rand, n int) []Descriptor {
	if n <= 0 || len(v.entries) == 0 {
		return nil
	}
	if n >= len(v.entries) {
		return v.Entries()
	}
	idx := rng.Perm(len(v.entries))[:n]
	out := make([]Descriptor, 0, n)
	for _, i := range idx {
		out = append(out, v.entries[i])
	}
	return out
}

// TruncateOldest drops the oldest descriptors until the view holds at
// most max entries.
func (v *View) TruncateOldest(max int) {
	for len(v.entries) > max {
		best := 0
		for i := 1; i < len(v.entries); i++ {
			if v.entries[i].Age > v.entries[best].Age {
				best = i
			}
		}
		last := len(v.entries) - 1
		v.entries[best] = v.entries[last]
		v.entries = v.entries[:last]
	}
}

// CheckInvariants verifies no duplicates and that self is absent; it is
// used by tests and debug builds.
func (v *View) CheckInvariants(self transport.NodeID) error {
	seen := make(map[transport.NodeID]bool, len(v.entries))
	for _, d := range v.entries {
		if d.ID == self {
			return errSelfInView
		}
		if seen[d.ID] {
			return errDuplicateInView
		}
		seen[d.ID] = true
	}
	return nil
}
