package pss

import (
	"context"
	"errors"

	"dataflasks/internal/transport"
)

// Errors reported by view invariant checks.
var (
	errSelfInView      = errors.New("pss: view contains self")
	errDuplicateInView = errors.New("pss: view contains duplicate")
)

// SelfInfo supplies the caller's current slicing attribute and slice
// claim, stamped into every self-descriptor the protocol emits.
type SelfInfo func() (attr float64, slice int32)

// Observer receives every remote descriptor learned through gossip: the
// uniform random node stream that upper protocols (slicing, discovery)
// consume.
type Observer func(Descriptor)

// ShuffleRequest initiates a Cyclon exchange (also reused by Newscast,
// where Sample carries the full view plus self).
type ShuffleRequest struct {
	Sample []Descriptor
}

// ShuffleReply answers a ShuffleRequest with the receiver's sample.
type ShuffleReply struct {
	Sample []Descriptor
}

// Protocol is the peer-sampling interface the node runtime drives.
type Protocol interface {
	// Bootstrap seeds the view with initial contacts.
	Bootstrap(seeds []transport.NodeID)
	// Tick runs one gossip round (initiates one exchange). ctx bounds
	// the round's sends.
	Tick(ctx context.Context)
	// Handle processes a message; it reports false when the message is
	// not a peer-sampling message. ctx bounds any sends the handler
	// makes (shuffle replies).
	Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool
	// View returns a copy of the current partial view.
	View() []Descriptor
	// RandomPeers returns up to n distinct peers drawn uniformly from
	// the view.
	RandomPeers(n int) []transport.NodeID
	// SetObserver registers the descriptor-stream consumer. Only one
	// observer is supported; the node runtime fans out internally.
	SetObserver(Observer)
	// Alive reports peers believed reachable (the whole view; epidemic
	// protocols have no failure detector beyond view turnover).
	Alive() int
}
