package pss

import (
	"context"
	"math/rand/v2"

	"dataflasks/internal/transport"
)

// NewscastConfig tunes the Newscast protocol.
type NewscastConfig struct {
	// ViewSize bounds the partial view.
	ViewSize int
	// SelfAddr is this node's dialable address, gossiped with its
	// descriptor (empty in simulations).
	SelfAddr string
	// OnSendErr observes exchange send failures (no retries — view
	// turnover handles dead peers — but the runtime counts them).
	OnSendErr func(error)
}

func (c *NewscastConfig) defaults() {
	if c.ViewSize <= 0 {
		c.ViewSize = 20
	}
}

// Newscast implements the robust gossip membership protocol of Jelasity
// & van Steen: each round a node picks a uniformly random neighbour,
// both exchange their full views plus a fresh self-descriptor, and both
// keep the freshest ViewSize entries. Freshness is tracked with the Age
// field (0 = freshest), aged once per local round, which preserves the
// protocol's newest-wins merge without synchronized clocks.
//
// Newscast is not safe for concurrent use; the owning node drives it
// from its single event loop.
type Newscast struct {
	self     transport.NodeID
	cfg      NewscastConfig
	view     View
	out      transport.Sender
	rng      *rand.Rand
	selfInfo SelfInfo
	observer Observer
}

var _ Protocol = (*Newscast)(nil)

// NewNewscast creates a Newscast instance for self.
func NewNewscast(self transport.NodeID, cfg NewscastConfig, out transport.Sender, rng *rand.Rand, selfInfo SelfInfo) *Newscast {
	cfg.defaults()
	if out == nil {
		panic("pss: NewNewscast requires a sender")
	}
	if rng == nil {
		panic("pss: NewNewscast requires an rng")
	}
	if selfInfo == nil {
		selfInfo = func() (float64, int32) { return 0, SliceUnknown }
	}
	return &Newscast{self: self, cfg: cfg, out: out, rng: rng, selfInfo: selfInfo}
}

// Bootstrap implements Protocol.
func (n *Newscast) Bootstrap(seeds []transport.NodeID) {
	for _, id := range seeds {
		if id == n.self {
			continue
		}
		n.view.Add(Descriptor{ID: id, Age: 0, Slice: SliceUnknown})
	}
	n.view.TruncateOldest(n.cfg.ViewSize)
}

// SetObserver implements Protocol.
func (n *Newscast) SetObserver(o Observer) { n.observer = o }

// View implements Protocol.
func (n *Newscast) View() []Descriptor { return n.view.Entries() }

// Alive implements Protocol.
func (n *Newscast) Alive() int { return n.view.Len() }

// RandomPeers implements Protocol.
func (n *Newscast) RandomPeers(count int) []transport.NodeID {
	sub := n.view.RandomSubset(n.rng, count)
	out := make([]transport.NodeID, len(sub))
	for i, d := range sub {
		out[i] = d.ID
	}
	return out
}

func (n *Newscast) selfDescriptor() Descriptor {
	attr, slice := n.selfInfo()
	return Descriptor{ID: n.self, Age: 0, Attr: attr, Slice: slice, Addr: n.cfg.SelfAddr}
}

// sendErr reports a failed exchange send to the configured observer.
func (n *Newscast) sendErr(err error) {
	if err != nil && n.cfg.OnSendErr != nil {
		n.cfg.OnSendErr(err)
	}
}

// Tick implements Protocol: exchange views with one random neighbour.
func (n *Newscast) Tick(ctx context.Context) {
	n.view.IncrementAges()
	target, ok := n.view.Random(n.rng)
	if !ok {
		return
	}
	sample := append(n.view.Entries(), n.selfDescriptor())
	n.sendErr(n.out.Send(ctx, target.ID, &ShuffleRequest{Sample: sample}))
}

// Handle implements Protocol.
func (n *Newscast) Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool {
	switch m := msg.(type) {
	case *ShuffleRequest:
		reply := append(n.view.Entries(), n.selfDescriptor())
		n.sendErr(n.out.Send(ctx, from, &ShuffleReply{Sample: reply}))
		n.merge(m.Sample)
		return true
	case *ShuffleReply:
		n.merge(m.Sample)
		return true
	default:
		return false
	}
}

// merge folds the received view in and keeps the freshest entries.
func (n *Newscast) merge(received []Descriptor) {
	for _, d := range received {
		if d.ID == n.self {
			continue
		}
		if n.observer != nil {
			n.observer(d)
		}
		n.view.Add(d)
	}
	n.view.TruncateOldest(n.cfg.ViewSize)
}
