package pss

import (
	"context"
	"math/rand/v2"
	"testing"

	"dataflasks/internal/transport"
)

// fakeNet delivers messages synchronously in FIFO order — a minimal
// in-package harness for protocol logic tests.
type fakeNet struct {
	handlers map[transport.NodeID]Protocol
	queue    []transport.Envelope
	dead     map[transport.NodeID]bool
}

func newFakeNet() *fakeNet {
	return &fakeNet{
		handlers: make(map[transport.NodeID]Protocol),
		dead:     make(map[transport.NodeID]bool),
	}
}

func (f *fakeNet) sender(from transport.NodeID) transport.Sender {
	return transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		f.queue = append(f.queue, transport.Envelope{From: from, To: to, Msg: msg})
		return nil
	})
}

func (f *fakeNet) deliverAll() {
	for len(f.queue) > 0 {
		env := f.queue[0]
		f.queue = f.queue[1:]
		if f.dead[env.To] {
			continue
		}
		if p, ok := f.handlers[env.To]; ok {
			p.Handle(context.Background(), env.From, env.Msg)
		}
	}
}

// buildCyclonNet wires n Cyclon nodes in a line bootstrap (each knows
// its predecessor), the hardest starting topology.
func buildCyclonNet(t *testing.T, n int, cfg CyclonConfig) (*fakeNet, []*Cyclon) {
	t.Helper()
	net := newFakeNet()
	nodes := make([]*Cyclon, 0, n)
	for i := 1; i <= n; i++ {
		id := transport.NodeID(i)
		c := NewCyclon(id, cfg, net.sender(id), rand.New(rand.NewPCG(7, uint64(i))), nil)
		net.handlers[id] = c
		nodes = append(nodes, c)
	}
	for i, c := range nodes {
		c.Bootstrap([]transport.NodeID{transport.NodeID((i+1)%n + 1)})
	}
	return net, nodes
}

func runRounds(net *fakeNet, nodes []*Cyclon, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, c := range nodes {
			c.Tick(context.Background())
		}
		net.deliverAll()
	}
}

func TestCyclonViewsFillAndStayValid(t *testing.T) {
	cfg := CyclonConfig{ViewSize: 8, ShuffleLen: 4}
	net, nodes := buildCyclonNet(t, 30, cfg)
	runRounds(net, nodes, 20)

	for _, c := range nodes {
		if c.view.Len() < cfg.ViewSize/2 {
			t.Errorf("node %v view has %d entries, want >= %d", c.self, c.view.Len(), cfg.ViewSize/2)
		}
		if err := c.view.CheckInvariants(c.self); err != nil {
			t.Errorf("node %v: %v", c.self, err)
		}
	}
}

func TestCyclonConnectivity(t *testing.T) {
	net, nodes := buildCyclonNet(t, 40, CyclonConfig{ViewSize: 8})
	runRounds(net, nodes, 25)

	// BFS over the union of views from node 1: all nodes reachable.
	adj := make(map[transport.NodeID][]transport.NodeID)
	for _, c := range nodes {
		adj[c.self] = c.view.IDs()
	}
	seen := map[transport.NodeID]bool{nodes[0].self: true}
	frontier := []transport.NodeID{nodes[0].self}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, peer := range adj[next] {
			if !seen[peer] {
				seen[peer] = true
				frontier = append(frontier, peer)
			}
		}
	}
	if len(seen) != len(nodes) {
		t.Errorf("overlay reaches %d of %d nodes", len(seen), len(nodes))
	}
}

func TestCyclonEvictsDeadPeers(t *testing.T) {
	net, nodes := buildCyclonNet(t, 20, CyclonConfig{ViewSize: 6})
	runRounds(net, nodes, 15)

	victim := nodes[0].self
	net.dead[victim] = true
	runRounds(net, nodes[1:], 3*6+5) // several view lifetimes

	for _, c := range nodes[1:] {
		if c.view.Contains(victim) {
			t.Errorf("node %v still references dead %v after 23 rounds", c.self, victim)
		}
	}
}

func TestCyclonObserverSeesStream(t *testing.T) {
	net, nodes := buildCyclonNet(t, 10, CyclonConfig{ViewSize: 5})
	var observed int
	nodes[0].SetObserver(func(d Descriptor) {
		observed++
		if d.ID == nodes[0].self {
			t.Error("observer saw a self descriptor")
		}
	})
	runRounds(net, nodes, 10)
	if observed == 0 {
		t.Error("observer never called")
	}
}

func TestCyclonSelfInfoPiggybacked(t *testing.T) {
	net := newFakeNet()
	mkNode := func(id transport.NodeID, attr float64, slice int32) *Cyclon {
		c := NewCyclon(id, CyclonConfig{ViewSize: 4}, net.sender(id),
			rand.New(rand.NewPCG(1, uint64(id))),
			func() (float64, int32) { return attr, slice })
		net.handlers[id] = c
		return c
	}
	a := mkNode(1, 0.25, 3)
	b := mkNode(2, 0.75, 1)
	a.Bootstrap([]transport.NodeID{2})
	b.Bootstrap([]transport.NodeID{1})

	a.Tick(context.Background())
	net.deliverAll()

	d, ok := b.view.Get(1)
	if !ok {
		t.Fatal("b never learned a")
	}
	if d.Attr != 0.25 || d.Slice != 3 {
		t.Errorf("piggyback = attr %v slice %d, want 0.25/3", d.Attr, d.Slice)
	}
}

func TestCyclonRandomPeers(t *testing.T) {
	net, nodes := buildCyclonNet(t, 20, CyclonConfig{ViewSize: 8})
	runRounds(net, nodes, 10)
	peers := nodes[0].RandomPeers(3)
	if len(peers) != 3 {
		t.Fatalf("RandomPeers(3) = %d peers", len(peers))
	}
	for _, p := range peers {
		if p == nodes[0].self {
			t.Error("RandomPeers returned self")
		}
	}
}

func TestNewscastConvergesAndStaysFresh(t *testing.T) {
	net := newFakeNet()
	n := 30
	nodes := make([]*Newscast, 0, n)
	for i := 1; i <= n; i++ {
		id := transport.NodeID(i)
		nc := NewNewscast(id, NewscastConfig{ViewSize: 8}, net.sender(id),
			rand.New(rand.NewPCG(3, uint64(i))), nil)
		net.handlers[id] = nc
		nodes = append(nodes, nc)
	}
	for i, nc := range nodes {
		nc.Bootstrap([]transport.NodeID{transport.NodeID((i+1)%n + 1)})
	}
	for r := 0; r < 20; r++ {
		for _, nc := range nodes {
			nc.Tick(context.Background())
		}
		net.deliverAll()
	}
	for _, nc := range nodes {
		if nc.view.Len() < 4 {
			t.Errorf("node %v view only %d entries", nc.self, nc.view.Len())
		}
		if err := nc.view.CheckInvariants(nc.self); err != nil {
			t.Errorf("node %v: %v", nc.self, err)
		}
		// Freshness: no entry should be much older than the view size
		// in rounds.
		for _, d := range nc.View() {
			if d.Age > 20 {
				t.Errorf("node %v keeps stale entry age %d", nc.self, d.Age)
			}
		}
	}
}

func TestBootstrapSkipsSelf(t *testing.T) {
	c := NewCyclon(1, CyclonConfig{ViewSize: 4}, newFakeNet().sender(1),
		rand.New(rand.NewPCG(1, 1)), nil)
	c.Bootstrap([]transport.NodeID{1, 2, 3})
	if c.view.Contains(1) {
		t.Error("bootstrap admitted self")
	}
	if c.view.Len() != 2 {
		t.Errorf("view = %d entries, want 2", c.view.Len())
	}
}

func TestCyclonHandleForeignMessage(t *testing.T) {
	c := NewCyclon(1, CyclonConfig{}, newFakeNet().sender(1),
		rand.New(rand.NewPCG(1, 1)), nil)
	if c.Handle(context.Background(), 2, "not a pss message") {
		t.Error("Handle claimed a foreign message")
	}
}
