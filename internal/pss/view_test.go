package pss

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dataflasks/internal/transport"
)

func TestViewAddKeepsYounger(t *testing.T) {
	var v View
	v.Add(Descriptor{ID: 1, Age: 5})
	if changed := v.Add(Descriptor{ID: 1, Age: 9}); changed {
		t.Error("older duplicate replaced younger entry")
	}
	if changed := v.Add(Descriptor{ID: 1, Age: 2, Slice: 3}); !changed {
		t.Error("younger duplicate did not replace entry")
	}
	d, ok := v.Get(1)
	if !ok || d.Age != 2 || d.Slice != 3 {
		t.Errorf("entry = %+v, want age 2 slice 3", d)
	}
	// Equal age refreshes metadata (ties go to the incoming copy).
	if changed := v.Add(Descriptor{ID: 1, Age: 2, Slice: 4}); !changed {
		t.Error("equal-age duplicate did not refresh entry")
	}
	if d, _ := v.Get(1); d.Slice != 4 {
		t.Errorf("equal-age refresh kept slice %d, want 4", d.Slice)
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d, want 1", v.Len())
	}
}

func TestViewRemove(t *testing.T) {
	var v View
	v.Add(Descriptor{ID: 1})
	v.Add(Descriptor{ID: 2})
	if !v.Remove(1) {
		t.Error("Remove(1) = false")
	}
	if v.Remove(1) {
		t.Error("second Remove(1) = true")
	}
	if v.Contains(1) || !v.Contains(2) {
		t.Error("wrong membership after remove")
	}
}

func TestViewOldestAndTruncate(t *testing.T) {
	var v View
	for i, age := range []uint32{3, 9, 1, 7} {
		v.Add(Descriptor{ID: transport.NodeID(i + 1), Age: age})
	}
	d, ok := v.Oldest()
	if !ok || d.Age != 9 {
		t.Errorf("Oldest = %+v, want age 9", d)
	}
	v.TruncateOldest(2)
	if v.Len() != 2 {
		t.Fatalf("Len = %d after truncate, want 2", v.Len())
	}
	// The two youngest survive.
	if !v.Contains(3) || !v.Contains(1) {
		t.Errorf("truncate kept wrong entries: %+v", v.Entries())
	}
}

func TestViewIncrementAges(t *testing.T) {
	var v View
	v.Add(Descriptor{ID: 1, Age: 0})
	v.Add(Descriptor{ID: 2, Age: 5})
	v.IncrementAges()
	a, _ := v.Get(1)
	b, _ := v.Get(2)
	if a.Age != 1 || b.Age != 6 {
		t.Errorf("ages = %d, %d; want 1, 6", a.Age, b.Age)
	}
}

func TestViewRandomSubset(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var v View
	for i := 1; i <= 10; i++ {
		v.Add(Descriptor{ID: transport.NodeID(i)})
	}
	sub := v.RandomSubset(rng, 4)
	if len(sub) != 4 {
		t.Fatalf("subset size = %d, want 4", len(sub))
	}
	seen := map[transport.NodeID]bool{}
	for _, d := range sub {
		if seen[d.ID] {
			t.Fatalf("duplicate %v in subset", d.ID)
		}
		seen[d.ID] = true
	}
	if got := v.RandomSubset(rng, 99); len(got) != 10 {
		t.Errorf("oversized subset = %d, want all 10", len(got))
	}
	if got := v.RandomSubset(rng, 0); got != nil {
		t.Errorf("zero subset = %v, want nil", got)
	}
}

func TestViewEntriesIsCopy(t *testing.T) {
	var v View
	v.Add(Descriptor{ID: 1, Age: 1})
	ents := v.Entries()
	ents[0].Age = 99
	d, _ := v.Get(1)
	if d.Age == 99 {
		t.Error("Entries aliases internal storage")
	}
}

func TestViewInvariantsProperty(t *testing.T) {
	// Any sequence of adds and removes preserves: no duplicates, no
	// self after CheckInvariants' contract.
	const self = transport.NodeID(0xFFFF)
	prop := func(ops []uint16) bool {
		var v View
		for _, op := range ops {
			id := transport.NodeID(op % 64)
			if id == self {
				continue
			}
			if op%3 == 0 {
				v.Remove(id)
			} else {
				v.Add(Descriptor{ID: id, Age: uint32(op % 7)})
			}
		}
		return v.CheckInvariants(self) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestViewCheckInvariantsDetectsSelf(t *testing.T) {
	var v View
	v.Add(Descriptor{ID: 7})
	if err := v.CheckInvariants(7); err == nil {
		t.Error("self in view not detected")
	}
	if err := v.CheckInvariants(8); err != nil {
		t.Errorf("false positive: %v", err)
	}
}
