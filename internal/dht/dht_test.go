package dht

import (
	"context"
	"math/rand/v2"
	"sort"
	"testing"

	"dataflasks/internal/metrics"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// wiring delivers synchronously between DHT nodes and a test client
// mailbox.
type wiring struct {
	nodes  map[transport.NodeID]*Node
	client []transport.Envelope // traffic to the client id
	id     transport.NodeID     // client id
	queue  []transport.Envelope
}

func newWiring(clientID transport.NodeID) *wiring {
	return &wiring{nodes: make(map[transport.NodeID]*Node), id: clientID}
}

func (w *wiring) sender(from transport.NodeID) transport.Sender {
	return transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		w.queue = append(w.queue, transport.Envelope{From: from, To: to, Msg: msg})
		return nil
	})
}

func (w *wiring) deliverAll() {
	for len(w.queue) > 0 {
		env := w.queue[0]
		w.queue = w.queue[1:]
		if env.To == w.id {
			w.client = append(w.client, env)
			continue
		}
		if n, ok := w.nodes[env.To]; ok {
			n.HandleMessage(env)
		}
	}
}

// fullMeshDHT builds n nodes that all know each other.
func fullMeshDHT(t *testing.T, n int, cfg Config) (*wiring, []*Node) {
	t.Helper()
	w := newWiring(0xC0000001)
	ids := make([]transport.NodeID, 0, n)
	for i := 1; i <= n; i++ {
		ids = append(ids, transport.NodeID(i))
	}
	nodes := make([]*Node, 0, n)
	for _, id := range ids {
		node := NewNode(id, cfg, store.NewMemory(), w.sender(id))
		node.Bootstrap(ids)
		w.nodes[id] = node
		nodes = append(nodes, node)
	}
	return w, nodes
}

func TestRingSuccessorWrapsAndOffsets(t *testing.T) {
	r := &ring{
		positions: []Position{100, 200, 300},
		ids:       []transport.NodeID{1, 2, 3},
	}
	if id, _ := r.successor(150, 0); id != 2 {
		t.Errorf("successor(150) = %v, want 2", id)
	}
	if id, _ := r.successor(301, 0); id != 1 {
		t.Errorf("successor wraps to %v, want 1", id)
	}
	if id, _ := r.successor(150, 1); id != 3 {
		t.Errorf("successor offset 1 = %v, want 3", id)
	}
	reps := r.replicas(150, 2)
	if len(reps) != 2 || reps[0] != 2 || reps[1] != 3 {
		t.Errorf("replicas = %v", reps)
	}
	if got := r.replicas(150, 99); len(got) != 3 {
		t.Errorf("replicas clamped = %v", got)
	}
	empty := &ring{}
	if _, ok := empty.successor(1, 0); ok {
		t.Error("empty ring returned a successor")
	}
}

func TestNodePositionsSpread(t *testing.T) {
	var positions []Position
	for i := 1; i <= 100; i++ {
		positions = append(positions, NodePosition(transport.NodeID(i)))
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	// No pathological clustering: the largest arc gap should be well
	// under a quarter of the ring for 100 mixed points.
	var maxGap Position
	for i := 1; i < len(positions); i++ {
		if g := positions[i] - positions[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if maxGap > 1<<62 {
		t.Errorf("max arc gap = %d — positions clustered", maxGap)
	}
}

func TestDHTPutReplicatesToSuccessors(t *testing.T) {
	w, nodes := fullMeshDHT(t, 10, Config{Replicas: 3})
	w.queue = append(w.queue, transport.Envelope{
		From: w.id, To: nodes[0].ID(),
		Msg: &PutRequest{ID: 1, Key: "k", Version: 1, Value: []byte("v"), Origin: w.id},
	})
	w.deliverAll()

	holders := 0
	for _, n := range nodes {
		if _, _, ok, _ := n.Store().Get("k", 1); ok {
			holders++
		}
	}
	if holders != 3 {
		t.Errorf("replicas = %d, want 3", holders)
	}
	if len(w.client) != 1 {
		t.Fatalf("client traffic = %+v", w.client)
	}
	if _, ok := w.client[0].Msg.(*PutAck); !ok {
		t.Fatalf("client got %#v", w.client[0].Msg)
	}
}

func TestDHTGetServedByAnyHolder(t *testing.T) {
	w, nodes := fullMeshDHT(t, 10, Config{Replicas: 3})
	w.queue = append(w.queue, transport.Envelope{
		From: w.id, To: nodes[3].ID(),
		Msg: &PutRequest{ID: 1, Key: "k", Version: 4, Value: []byte("v"), Origin: w.id},
	})
	w.deliverAll()
	w.client = nil

	w.queue = append(w.queue, transport.Envelope{
		From: w.id, To: nodes[7].ID(),
		Msg: &GetRequest{ID: 2, Key: "k", Origin: w.id},
	})
	w.deliverAll()
	if len(w.client) != 1 {
		t.Fatalf("client traffic = %+v", w.client)
	}
	rep, ok := w.client[0].Msg.(*GetReply)
	if !ok || !rep.Found || rep.Version != 4 || string(rep.Value) != "v" {
		t.Fatalf("reply = %#v", w.client[0].Msg)
	}
}

func TestDHTGetMissingReportsNotFound(t *testing.T) {
	w, nodes := fullMeshDHT(t, 5, Config{})
	w.queue = append(w.queue, transport.Envelope{
		From: w.id, To: nodes[0].ID(),
		Msg: &GetRequest{ID: 9, Key: "never", Origin: w.id},
	})
	w.deliverAll()
	if len(w.client) != 1 {
		t.Fatalf("client traffic = %+v", w.client)
	}
	if rep := w.client[0].Msg.(*GetReply); rep.Found {
		t.Error("missing key reported found")
	}
}

func TestDHTMembershipGossipSpreadsAndEvicts(t *testing.T) {
	// Two nodes that only know each other plus a third known to one.
	w := newWiring(0xC0000001)
	a := NewNode(1, Config{SuspectRounds: 3, GossipFanout: 2}, store.NewMemory(), w.sender(1))
	b := NewNode(2, Config{SuspectRounds: 3, GossipFanout: 2}, store.NewMemory(), w.sender(2))
	w.nodes[1], w.nodes[2] = a, b
	a.Bootstrap([]transport.NodeID{2, 3}) // 3 does not exist
	b.Bootstrap([]transport.NodeID{1})

	for r := 0; r < 2; r++ {
		a.Tick()
		b.Tick()
		w.deliverAll()
	}
	// b learned about 3 from a's gossip.
	if b.MemberCount() != 3 {
		t.Errorf("b members = %d, want 3 (self, a, ghost)", b.MemberCount())
	}
	// Ghost 3 never bumps its heartbeat: both evict it.
	for r := 0; r < 6; r++ {
		a.Tick()
		b.Tick()
		w.deliverAll()
	}
	if a.MemberCount() != 2 || b.MemberCount() != 2 {
		t.Errorf("after suspicion: a=%d b=%d members, want 2", a.MemberCount(), b.MemberCount())
	}
}

func TestDHTHopBound(t *testing.T) {
	w, nodes := fullMeshDHT(t, 5, Config{MaxHops: 2})
	// A request arriving with hops at the bound is not re-forwarded.
	key := "k"
	var owner transport.NodeID
	r := &ring{}
	for _, n := range nodes {
		r.positions = append(r.positions, n.pos)
		r.ids = append(r.ids, n.id)
	}
	sort.Sort(byPos{r})
	owner, _ = r.successor(KeyPosition(key), 0)
	var notOwner *Node
	for _, n := range nodes {
		if n.ID() != owner {
			notOwner = n
			break
		}
	}
	before := notOwner.Metrics().Get(metrics.RequestsRelayed)
	notOwner.HandleMessage(transport.Envelope{From: w.id, To: notOwner.ID(), Msg: &PutRequest{
		ID: 5, Key: key, Version: 1, Hops: 2, Origin: w.id,
	}})
	if notOwner.Metrics().Get(metrics.RequestsRelayed) != before {
		t.Error("relayed beyond MaxHops")
	}
}

// byPos sorts a ring in place (test helper).
type byPos struct{ r *ring }

func (b byPos) Len() int { return len(b.r.positions) }
func (b byPos) Less(i, j int) bool {
	return b.r.positions[i] < b.r.positions[j]
}
func (b byPos) Swap(i, j int) {
	b.r.positions[i], b.r.positions[j] = b.r.positions[j], b.r.positions[i]
	b.r.ids[i], b.r.ids[j] = b.r.ids[j], b.r.ids[i]
}

func TestDHTClientRetriesAndFails(t *testing.T) {
	var sent []transport.Envelope
	sender := transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		sent = append(sent, transport.Envelope{To: to, Msg: msg})
		return nil
	})
	cl := NewClient(0xC0000001, ClientConfig{TimeoutTicks: 1, Retries: 2}, sender,
		[]transport.NodeID{1, 2, 3}, randFor(1))
	var res *ClientResult
	cl.StartGet("k", func(r ClientResult) { res = &r })
	for i := 0; i < 10 && res == nil; i++ {
		cl.Tick()
	}
	if res == nil || res.Err == nil {
		t.Fatalf("res = %+v", res)
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d", res.Retries)
	}
	if len(sent) != 3 {
		t.Errorf("attempts = %d, want 3", len(sent))
	}
}

func TestDHTClientNotFoundTriggersNextReplica(t *testing.T) {
	var sent []transport.Envelope
	sender := transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		sent = append(sent, transport.Envelope{To: to, Msg: msg})
		return nil
	})
	cl := NewClient(0xC0000001, ClientConfig{Retries: 3}, sender, []transport.NodeID{1}, randFor(2))
	cl.StartGet("k", nil)
	id := sent[0].Msg.(*GetRequest).ID
	cl.HandleMessage(transport.Envelope{From: 1, Msg: &GetReply{ID: id, Found: false}})
	if len(sent) != 2 {
		t.Fatalf("no immediate re-route after not-found: %d sends", len(sent))
	}
	if sent[1].Msg.(*GetRequest).Attempt != 1 {
		t.Errorf("second attempt targets replica offset %d, want 1", sent[1].Msg.(*GetRequest).Attempt)
	}
}

// randFor builds a deterministic rng for client tests.
func randFor(stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(99, stream))
}
