// Package dht implements the structured baseline DataFlasks is
// motivated against (§I): a consistent-hashing key-value store in the
// Dynamo/Cassandra mould — gossip-maintained full membership, direct
// routing to the key's successor, replication to the R clockwise
// successors. When membership is stable it is dramatically cheaper per
// operation than epidemic dissemination; under churn its routing tables
// lag reality and operations misroute or land on dead owners, which is
// exactly the trade-off the comparison experiment (E8) measures.
package dht

import (
	"sort"

	"dataflasks/internal/hashmix"
	"dataflasks/internal/transport"
)

// Position is a point on the hash ring.
type Position uint64

// NodePosition places a node on the ring (full-avalanche mixed, so
// sequential ids spread uniformly).
func NodePosition(id transport.NodeID) Position {
	return Position(hashmix.HashUint64(uint64(id)))
}

// KeyPosition places a key on the ring.
func KeyPosition(key string) Position { return Position(hashmix.HashString(key)) }

// Member is one gossip membership entry.
type Member struct {
	ID        transport.NodeID
	Heartbeat uint64
	Position  Position
}

// Gossip carries membership state between nodes.
type Gossip struct {
	Members []Member
}

// PutRequest routes a write toward the key's owner.
type PutRequest struct {
	ID      uint64
	Key     string
	Version uint64
	Value   []byte
	Origin  transport.NodeID
	Hops    uint8
	// Replica marks a replication copy (store, do not re-route).
	Replica bool
}

// PutAck confirms a write reached the owner.
type PutAck struct {
	ID uint64
}

// GetRequest routes a read toward the key's owner.
type GetRequest struct {
	ID     uint64
	Key    string
	Origin transport.NodeID
	Hops   uint8
	// Attempt lets the router try the next replica on re-routes.
	Attempt uint8
}

// GetReply answers a read.
type GetReply struct {
	ID      uint64
	Key     string
	Version uint64
	Value   []byte
	Found   bool
}

// ring is a sorted snapshot of known-alive positions.
type ring struct {
	positions []Position
	ids       []transport.NodeID // parallel to positions
}

// successor returns the first node at or after p (wrapping).
func (r *ring) successor(p Position, offset int) (transport.NodeID, bool) {
	if len(r.positions) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.positions), func(i int) bool { return r.positions[i] >= p })
	i = (i + offset) % len(r.positions)
	return r.ids[i], true
}

// replicas returns the R distinct successors of p.
func (r *ring) replicas(p Position, count int) []transport.NodeID {
	if len(r.ids) == 0 {
		return nil
	}
	if count > len(r.ids) {
		count = len(r.ids)
	}
	out := make([]transport.NodeID, 0, count)
	for i := 0; i < count; i++ {
		id, _ := r.successor(p, i)
		out = append(out, id)
	}
	return out
}
