package dht

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"

	"dataflasks/internal/transport"
)

// ClientResult is the outcome of one DHT client operation.
type ClientResult struct {
	ID      uint64
	Key     string
	Version uint64
	Value   []byte
	Found   bool
	Err     error
	Retries int
}

// ClientConfig tunes the baseline client.
type ClientConfig struct {
	// TimeoutTicks per attempt (default 10 — direct routing is fast).
	TimeoutTicks int
	// Retries after timeouts (default 3).
	Retries int
}

func (c *ClientConfig) defaults() {
	if c.TimeoutTicks <= 0 {
		c.TimeoutTicks = 10
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
}

type clientOp struct {
	id       uint64
	isPut    bool
	key      string
	version  uint64
	value    []byte
	deadline uint64
	retries  int
	attempt  uint8
	done     func(ClientResult)
}

// Client drives operations against the DHT baseline, mirroring the
// DataFlasks client core so the comparison harness treats both stores
// identically. Not safe for concurrent use.
type Client struct {
	id    transport.NodeID
	cfg   ClientConfig
	out   transport.Sender
	nodes []transport.NodeID
	rng   *rand.Rand

	seq  uint64
	tick uint64
	ops  map[uint64]*clientOp
}

// NewClient creates a baseline client over the given contact list.
func NewClient(id transport.NodeID, cfg ClientConfig, out transport.Sender, nodes []transport.NodeID, rng *rand.Rand) *Client {
	cfg.defaults()
	if out == nil || rng == nil {
		panic("dht: NewClient requires a sender and rng")
	}
	cp := make([]transport.NodeID, len(nodes))
	copy(cp, nodes)
	return &Client{id: id, cfg: cfg, out: out, nodes: cp, rng: rng, ops: make(map[uint64]*clientOp)}
}

// SetNodes replaces the contact list.
func (c *Client) SetNodes(nodes []transport.NodeID) {
	c.nodes = append(c.nodes[:0], nodes...)
}

// Pending returns in-flight operation count.
func (c *Client) Pending() int { return len(c.ops) }

// StartPut begins an asynchronous put.
func (c *Client) StartPut(key string, version uint64, value []byte, done func(ClientResult)) {
	c.seq++
	op := &clientOp{
		id: c.seq, isPut: true, key: key, version: version,
		value: append([]byte(nil), value...), done: done,
	}
	c.ops[op.id] = op
	c.issue(op)
}

// StartGet begins an asynchronous latest-version get.
func (c *Client) StartGet(key string, done func(ClientResult)) {
	c.seq++
	op := &clientOp{id: c.seq, key: key, done: done}
	c.ops[op.id] = op
	c.issue(op)
}

func (c *Client) issue(op *clientOp) {
	op.deadline = c.tick + uint64(c.cfg.TimeoutTicks)
	if len(c.nodes) == 0 {
		return
	}
	contact := c.nodes[c.rng.IntN(len(c.nodes))]
	// Both sends are fire-and-forget by design: the DHT client retries
	// on its own deadline, so a failed send costs one timeout round.
	if op.isPut {
		//flasks:fire-and-forget
		_ = c.out.Send(context.Background(), contact, &PutRequest{
			ID: op.id, Key: op.key, Version: op.version, Value: op.value, Origin: c.id,
		})
		return
	}
	//flasks:fire-and-forget
	_ = c.out.Send(context.Background(), contact, &GetRequest{
		ID: op.id, Key: op.key, Origin: c.id, Attempt: op.attempt,
	})
}

// HandleMessage consumes replies addressed to this client.
func (c *Client) HandleMessage(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case *PutAck:
		op, ok := c.ops[m.ID]
		if !ok || !op.isPut {
			return
		}
		delete(c.ops, m.ID)
		if op.done != nil {
			op.done(ClientResult{ID: m.ID, Key: op.key, Version: op.version, Found: true, Retries: op.retries})
		}
	case *GetReply:
		op, ok := c.ops[m.ID]
		if !ok || op.isPut {
			return
		}
		if !m.Found {
			// Negative answer: try the next replica immediately.
			delete(c.ops, m.ID)
			c.retry(op)
			return
		}
		delete(c.ops, m.ID)
		if op.done != nil {
			op.done(ClientResult{
				ID: m.ID, Key: op.key, Version: m.Version, Value: m.Value,
				Found: true, Retries: op.retries,
			})
		}
	}
}

func (c *Client) retry(op *clientOp) {
	if op.retries >= c.cfg.Retries {
		if op.done != nil {
			op.done(ClientResult{
				ID: op.id, Key: op.key,
				Err:     fmt.Errorf("dht: %s failed after %d attempts", opName(op), op.retries+1),
				Retries: op.retries,
			})
		}
		return
	}
	op.retries++
	op.attempt++
	c.ops[op.id] = op
	c.issue(op)
}

func opName(op *clientOp) string {
	if op.isPut {
		return "put"
	}
	return "get"
}

// Tick advances timeouts.
func (c *Client) Tick() {
	c.tick++
	var expired []*clientOp
	for _, op := range c.ops {
		if c.tick >= op.deadline {
			expired = append(expired, op)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
	for _, op := range expired {
		delete(c.ops, op.id)
		c.retry(op)
	}
}
