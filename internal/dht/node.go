package dht

import (
	"context"
	"math/rand/v2"
	"sort"

	"dataflasks/internal/metrics"
	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// Config tunes a DHT node.
type Config struct {
	// Replicas R is the successor-list replication factor (default 3).
	Replicas int
	// GossipFanout is how many peers receive membership gossip per
	// round (default 3).
	GossipFanout int
	// SuspectRounds evicts members whose heartbeat has not advanced
	// for this many rounds (default 10) — the knob that trades
	// staleness against false suspicion under churn.
	SuspectRounds int
	// MaxHops bounds request forwarding (default 8).
	MaxHops uint8
	// Seed feeds the node's RNG.
	Seed uint64
}

func (c *Config) defaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = 3
	}
	if c.SuspectRounds <= 0 {
		c.SuspectRounds = 10
	}
	if c.MaxHops == 0 {
		c.MaxHops = 8
	}
}

type memberState struct {
	member    Member
	updatedAt uint64 // local round when heartbeat last advanced
}

// Node is one consistent-hashing store node. Event-driven and
// single-threaded, like the DataFlasks node, so the same harness can
// drive both.
type Node struct {
	id  transport.NodeID
	pos Position
	cfg Config
	out transport.Sender
	st  store.Store
	rng *rand.Rand
	met *metrics.NodeMetrics

	round     uint64
	heartbeat uint64
	members   map[transport.NodeID]*memberState
	// dead tombstones evicted members by the heartbeat they died at:
	// gossip re-advertising the same (or older) heartbeat must not
	// resurrect a ghost, only genuinely newer liveness can.
	dead   map[transport.NodeID]uint64
	cached ring
	dirty  bool
}

// NewNode creates a DHT node over the given store and sender.
func NewNode(id transport.NodeID, cfg Config, st store.Store, out transport.Sender) *Node {
	cfg.defaults()
	if st == nil || out == nil {
		panic("dht: NewNode requires a store and a sender")
	}
	n := &Node{
		id:      id,
		pos:     NodePosition(id),
		cfg:     cfg,
		out:     out,
		st:      st,
		rng:     sim.RNG(cfg.Seed, uint64(id)),
		met:     &metrics.NodeMetrics{},
		members: make(map[transport.NodeID]*memberState),
		dead:    make(map[transport.NodeID]uint64),
		dirty:   true,
	}
	n.members[id] = &memberState{member: Member{ID: id, Position: n.pos}}
	return n
}

// ID returns the node id.
func (n *Node) ID() transport.NodeID { return n.id }

// Metrics exposes the node's counters.
func (n *Node) Metrics() *metrics.NodeMetrics { return n.met }

// Store exposes the local store.
func (n *Node) Store() store.Store { return n.st }

// MemberCount returns the current membership view size.
func (n *Node) MemberCount() int { return len(n.members) }

// Bootstrap seeds the membership view.
func (n *Node) Bootstrap(seeds []transport.NodeID) {
	for _, id := range seeds {
		if id == n.id {
			continue
		}
		n.members[id] = &memberState{
			member:    Member{ID: id, Position: NodePosition(id)},
			updatedAt: n.round,
		}
	}
	n.dirty = true
}

func (n *Node) send(to transport.NodeID, msg interface{}) {
	n.met.Inc(metrics.MsgSent)
	// The DHT baseline is tick-driven with no lifecycle context; errors
	// are counted below, so the fabricated ctx is the only waiver here.
	//flasks:fire-and-forget
	if err := n.out.Send(context.Background(), to, msg); err != nil {
		n.met.Inc(metrics.MsgDropped)
	}
}

// Tick runs one round: advance our heartbeat, gossip membership, evict
// suspects.
func (n *Node) Tick() {
	n.round++
	n.heartbeat++
	self := n.members[n.id]
	self.member.Heartbeat = n.heartbeat
	self.updatedAt = n.round

	// Evict silent members, tombstoning the heartbeat they died at.
	for id, ms := range n.members {
		if id == n.id {
			continue
		}
		if n.round-ms.updatedAt > uint64(n.cfg.SuspectRounds) {
			n.dead[id] = ms.member.Heartbeat
			delete(n.members, id)
			n.dirty = true
		}
	}

	peers := n.randomPeers(n.cfg.GossipFanout)
	if len(peers) == 0 {
		return
	}
	snapshot := n.snapshot()
	for _, p := range peers {
		n.met.Inc(metrics.PSSSent)
		n.send(p, &Gossip{Members: snapshot})
	}
}

func (n *Node) snapshot() []Member {
	out := make([]Member, 0, len(n.members))
	for _, ms := range n.members {
		out = append(out, ms.member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (n *Node) randomPeers(count int) []transport.NodeID {
	ids := make([]transport.NodeID, 0, len(n.members)-1)
	for id := range n.members {
		if id != n.id {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if count >= len(ids) {
		return ids
	}
	n.rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
	return ids[:count]
}

func (n *Node) ring() *ring {
	if n.dirty {
		n.cached = ring{}
		type pair struct {
			pos Position
			id  transport.NodeID
		}
		pairs := make([]pair, 0, len(n.members))
		for id, ms := range n.members {
			pairs = append(pairs, pair{ms.member.Position, id})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].pos != pairs[j].pos {
				return pairs[i].pos < pairs[j].pos
			}
			return pairs[i].id < pairs[j].id
		})
		for _, p := range pairs {
			n.cached.positions = append(n.cached.positions, p.pos)
			n.cached.ids = append(n.cached.ids, p.id)
		}
		n.dirty = false
	}
	return &n.cached
}

// HandleMessage dispatches one delivered message.
func (n *Node) HandleMessage(env transport.Envelope) {
	n.met.Inc(metrics.MsgRecv)
	switch m := env.Msg.(type) {
	case *Gossip:
		n.onGossip(m)
	case *PutRequest:
		n.onPut(m)
	case *GetRequest:
		n.onGet(m)
	case *PutAck, *GetReply:
		// Client-bound traffic; ignore.
	}
}

func (n *Node) onGossip(m *Gossip) {
	for _, mem := range m.Members {
		if mem.ID == n.id {
			continue
		}
		if diedAt, dead := n.dead[mem.ID]; dead {
			if mem.Heartbeat <= diedAt {
				continue // stale gossip about a ghost
			}
			delete(n.dead, mem.ID) // genuinely alive again
		}
		ms, ok := n.members[mem.ID]
		if !ok {
			n.members[mem.ID] = &memberState{member: mem, updatedAt: n.round}
			n.dirty = true
			continue
		}
		if mem.Heartbeat > ms.member.Heartbeat {
			ms.member.Heartbeat = mem.Heartbeat
			ms.updatedAt = n.round
		}
	}
}

func (n *Node) onPut(m *PutRequest) {
	if m.Replica {
		if err := n.st.Put(m.Key, m.Version, m.Value); err == nil {
			n.met.Inc(metrics.PutsServed)
		}
		return
	}
	r := n.ring()
	owner, ok := r.successor(KeyPosition(m.Key), 0)
	if !ok {
		return
	}
	if owner != n.id {
		if m.Hops >= n.cfg.MaxHops {
			return
		}
		fwd := *m
		fwd.Hops++
		n.met.Inc(metrics.RequestsRelayed)
		n.send(owner, &fwd)
		return
	}
	// We own the key: store, replicate to successors, ack.
	if err := n.st.Put(m.Key, m.Version, m.Value); err == nil {
		n.met.Inc(metrics.PutsServed)
	}
	for _, rep := range r.replicas(KeyPosition(m.Key), n.cfg.Replicas) {
		if rep == n.id {
			continue
		}
		cp := *m
		cp.Replica = true
		n.met.Inc(metrics.DataSent)
		n.send(rep, &cp)
	}
	if m.Origin != 0 {
		n.send(m.Origin, &PutAck{ID: m.ID})
	}
}

func (n *Node) onGet(m *GetRequest) {
	// Serve locally when we hold it, regardless of ownership — a
	// replica hit is a hit.
	if val, ver, ok, err := n.st.Get(m.Key, store.Latest); err == nil && ok {
		n.met.Inc(metrics.GetsServed)
		n.send(m.Origin, &GetReply{ID: m.ID, Key: m.Key, Version: ver, Value: val, Found: true})
		return
	}
	r := n.ring()
	target, ok := r.successor(KeyPosition(m.Key), int(m.Attempt))
	if !ok || m.Hops >= n.cfg.MaxHops {
		return
	}
	if target == n.id {
		// We should own it but do not: a recent join missed the data.
		// Report not-found so clients can retry elsewhere.
		n.send(m.Origin, &GetReply{ID: m.ID, Key: m.Key, Found: false})
		return
	}
	fwd := *m
	fwd.Hops++
	n.met.Inc(metrics.RequestsRelayed)
	n.send(target, &fwd)
}
