package transport_test

// Codec-aware fabric tests live in an external test package so they
// can exercise the real wire codecs (package wire imports transport,
// so transport's own tests cannot).

import (
	"context"
	"errors"
	"testing"
	"time"

	"dataflasks/internal/antientropy"
	"dataflasks/internal/core"
	"dataflasks/internal/metrics"
	"dataflasks/internal/pss"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
	"dataflasks/internal/wire"
)

// collector funnels delivered envelopes into a channel.
type collector struct{ ch chan transport.Envelope }

func newCollector() *collector {
	return &collector{ch: make(chan transport.Envelope, 64)}
}

func (c *collector) handler(env transport.Envelope) { c.ch <- env }

func (c *collector) wait(t *testing.T) transport.Envelope {
	t.Helper()
	select {
	case env := <-c.ch:
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery within 5s")
		return transport.Envelope{}
	}
}

func listenTCP(t *testing.T, id transport.NodeID, cfg transport.TCPConfig, h func(transport.Envelope)) *transport.TCPNetwork {
	t.Helper()
	n, err := transport.ListenTCP(id, "127.0.0.1:0", "", cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func sendShuffle(t *testing.T, s transport.Sender, to transport.NodeID) {
	t.Helper()
	msg := &pss.ShuffleRequest{Sample: []pss.Descriptor{{ID: 1, Age: 2, Attr: 0.5, Slice: 3, Addr: "x:1"}}}
	if err := s.Send(context.Background(), to, msg); err != nil {
		t.Fatalf("send: %v", err)
	}
}

func assertShuffle(t *testing.T, env transport.Envelope, from transport.NodeID) {
	t.Helper()
	if env.From != from {
		t.Fatalf("From = %v, want %v", env.From, from)
	}
	m, ok := env.Msg.(*pss.ShuffleRequest)
	if !ok {
		t.Fatalf("message type %T", env.Msg)
	}
	if len(m.Sample) != 1 || m.Sample[0].Addr != "x:1" {
		t.Fatalf("payload mangled: %+v", m)
	}
}

// TestTCPBinaryFraming: two binary-preferring nodes negotiate framed
// mode and deliver both planes' messages.
func TestTCPBinaryFraming(t *testing.T) {
	codec := wire.BinaryCodec()
	ws := &metrics.WireStats{}
	col := newCollector()
	b := listenTCP(t, 2, transport.TCPConfig{Codec: codec}, col.handler)
	a := listenTCP(t, 1, transport.TCPConfig{Codec: codec, Stats: ws}, func(transport.Envelope) {})
	a.Learn(2, b.Addr())

	sendShuffle(t, a.Sender(), 2)
	assertShuffle(t, col.wait(t), 1)

	// Data plane on the same stream.
	put := &core.PutRequest{ID: 9, Key: "k", Version: 1, Value: []byte("v"), Origin: 1, TTL: 3}
	if err := a.Sender().Send(context.Background(), 2, put); err != nil {
		t.Fatal(err)
	}
	got := col.wait(t)
	if p, ok := got.Msg.(*core.PutRequest); !ok || p.Key != "k" || string(p.Value) != "v" {
		t.Fatalf("put mangled: %#v", got.Msg)
	}
	if ws.EncodeBytes.Load() == 0 {
		t.Error("wire_encode_bytes not counted on framed path")
	}
	if ws.CodecFallbacks.Load() != 0 {
		t.Errorf("codec_fallbacks = %d on a uniform binary pair", ws.CodecFallbacks.Load())
	}
}

// TestTCPNegotiatesDownToGob: a binary dialer against a gob-preferring
// listener settles on gob and counts one fallback.
func TestTCPNegotiatesDownToGob(t *testing.T) {
	ws := &metrics.WireStats{}
	col := newCollector()
	b := listenTCP(t, 2, transport.TCPConfig{Codec: wire.GobCodec()}, col.handler)
	a := listenTCP(t, 1, transport.TCPConfig{Codec: wire.BinaryCodec(), Stats: ws}, func(transport.Envelope) {})
	a.Learn(2, b.Addr())

	sendShuffle(t, a.Sender(), 2)
	assertShuffle(t, col.wait(t), 1)
	if ws.CodecFallbacks.Load() == 0 {
		t.Error("negotiating down to gob should count a codec fallback")
	}
}

// TestTCPGobDialerToBinaryListener: a gob-preferring dialer sends a
// legacy raw-gob stream; a binary-preferring listener must still
// accept it (no hello arrives, so the stream reads as legacy).
func TestTCPGobDialerToBinaryListener(t *testing.T) {
	col := newCollector()
	b := listenTCP(t, 2, transport.TCPConfig{Codec: wire.BinaryCodec()}, col.handler)
	a := listenTCP(t, 1, transport.TCPConfig{Codec: wire.GobCodec()}, func(transport.Envelope) {})
	a.Learn(2, b.Addr())

	sendShuffle(t, a.Sender(), 2)
	assertShuffle(t, col.wait(t), 1)
}

// TestTCPBinaryDialerToLegacyListener: a listener with no codec at all
// (a pre-negotiation build) closes on the hello; the dialer must fall
// back to raw gob and still deliver.
func TestTCPBinaryDialerToLegacyListener(t *testing.T) {
	wire.Register()
	ws := &metrics.WireStats{}
	col := newCollector()
	b := listenTCP(t, 2, transport.TCPConfig{}, col.handler)
	a := listenTCP(t, 1, transport.TCPConfig{Codec: wire.BinaryCodec(), Stats: ws}, func(transport.Envelope) {})
	a.Learn(2, b.Addr())

	// The first send pays the failed handshake and may be lost with
	// it; retry until the gob redial path delivers.
	msg := &pss.ShuffleRequest{Sample: []pss.Descriptor{{ID: 1, Age: 2, Attr: 0.5, Slice: 3, Addr: "x:1"}}}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := a.Sender().Send(context.Background(), 2, msg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertShuffle(t, col.wait(t), 1)
	if ws.CodecFallbacks.Load() == 0 {
		t.Error("legacy fallback should count")
	}
}

// sendShuffleProven retries a shuffle until the probe handshake proves
// the datagram path and the send goes through; every failure on the
// way must be ErrNoDatagramPath.
func sendShuffleProven(t *testing.T, s transport.Sender, to transport.NodeID) {
	t.Helper()
	msg := &pss.ShuffleRequest{Sample: []pss.Descriptor{{ID: 1, Age: 2, Attr: 0.5, Slice: 3, Addr: "x:1"}}}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Send(context.Background(), to, msg)
		if err == nil {
			return
		}
		if !errors.Is(err, transport.ErrNoDatagramPath) {
			t.Fatalf("send: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("datagram path never proved: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUDPDelivery: control messages cross the datagram fabric once the
// probe handshake proves the path; the same-port convention is
// exercised by resolving through a map.
func TestUDPDelivery(t *testing.T) {
	codec := wire.BinaryCodec()
	col := newCollector()
	addrs := map[transport.NodeID]string{}
	resolve := func(id transport.NodeID) (string, bool) {
		a, ok := addrs[id]
		return a, ok
	}
	ub, err := transport.ListenUDP(2, "127.0.0.1:0", transport.UDPConfig{Codec: codec, Resolve: resolve}, col.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer ub.Close()
	ws := &metrics.WireStats{}
	ua, err := transport.ListenUDP(1, "127.0.0.1:0", transport.UDPConfig{Codec: codec, Resolve: resolve, Stats: ws}, func(transport.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()
	addrs[2] = ub.Addr()

	// The first send probes instead of trusting the path blindly (the
	// peer might have no UDP listener); the ack flips it to proven.
	if err := ua.Sender().Send(context.Background(), 2, &pss.ShuffleRequest{}); !errors.Is(err, transport.ErrNoDatagramPath) {
		t.Fatalf("first send to unproven peer: %v, want ErrNoDatagramPath", err)
	}
	sendShuffleProven(t, ua.Sender(), 2)
	assertShuffle(t, col.wait(t), 1)
	if ws.UDPSent.Load() != 1 {
		t.Errorf("udp_datagrams_sent = %d, want 1", ws.UDPSent.Load())
	}

	// Unknown peer: dropped and counted, not an error class that can
	// wedge the caller.
	if err := ua.Sender().Send(context.Background(), 42, &pss.ShuffleRequest{}); !errors.Is(err, transport.ErrUnknownPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
	if ws.UDPDropped.Load() == 0 {
		t.Error("drop not counted")
	}
}

// TestUDPOversizeFallsBackToTCP: a frame over the datagram cap returns
// ErrOversize, and FallbackSender reroutes it over the stream fabric.
func TestUDPOversizeFallsBackToTCP(t *testing.T) {
	codec := wire.BinaryCodec()
	col := newCollector()
	tcpB := listenTCP(t, 2, transport.TCPConfig{Codec: codec}, col.handler)
	tcpA := listenTCP(t, 1, transport.TCPConfig{Codec: codec}, func(transport.Envelope) {})
	tcpA.Learn(2, tcpB.Addr())
	resolveVia := func(tn *transport.TCPNetwork) func(transport.NodeID) (string, bool) {
		return func(id transport.NodeID) (string, bool) { return tn.PeerAddr(id), tn.PeerAddr(id) != "" }
	}

	// Peer 2's datagram listener shares its TCP port (the same-port
	// convention node.go follows), so node 1 can prove the path.
	ub, err := transport.ListenUDP(2, tcpB.BoundAddr(), transport.UDPConfig{
		Codec: codec, Resolve: resolveVia(tcpB),
	}, col.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer ub.Close()
	ws := &metrics.WireStats{}
	ua, err := transport.ListenUDP(1, tcpA.BoundAddr(), transport.UDPConfig{
		Codec: codec, Stats: ws, MaxDatagram: 1024, Resolve: resolveVia(tcpA),
	}, func(transport.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()
	sendShuffleProven(t, ua.Sender(), 2) // prove the path first
	col.wait(t)

	// Direct send of an oversize frame on the proven path: ErrOversize.
	big := &antientropy.Push{Objects: []store.Object{{Key: "k", Version: 1, Value: make([]byte, 4096)}}}
	if err := ua.Sender().Send(context.Background(), 2, big); !errors.Is(err, transport.ErrOversize) {
		t.Fatalf("want ErrOversize, got %v", err)
	}
	if ws.UDPOversize.Load() != 1 {
		t.Errorf("udp_datagrams_oversize = %d, want 1", ws.UDPOversize.Load())
	}

	// Through the fallback chain it must land via TCP instead.
	fb := transport.FallbackSender(ua.Sender(), tcpA.Sender())
	if err := fb.Send(context.Background(), 2, big); err != nil {
		t.Fatalf("fallback send: %v", err)
	}
	env := col.wait(t)
	if p, ok := env.Msg.(*antientropy.Push); !ok || len(p.Objects) != 1 || len(p.Objects[0].Value) != 4096 {
		t.Fatalf("oversize payload mangled: %#v", env.Msg)
	}

	// A peer with no UDP listener at all: the probe goes unanswered, so
	// every send reports no path and FallbackSender keeps control
	// traffic on TCP — the mixed-deployment case that must not
	// blackhole.
	tcpC := listenTCP(t, 3, transport.TCPConfig{Codec: codec}, col.handler)
	tcpA.Learn(3, tcpC.Addr())
	if err := ua.Sender().Send(context.Background(), 3, &pss.ShuffleRequest{}); !errors.Is(err, transport.ErrNoDatagramPath) {
		t.Fatalf("send to UDP-less peer: %v, want ErrNoDatagramPath", err)
	}
	sendShuffle(t, fb, 3)
	assertShuffle(t, col.wait(t), 1)
}
