package transport_test

import (
	"os"
	"testing"

	"dataflasks/internal/leakcheck"
)

// TestMain fails the package if any goroutine outlives the tests:
// the transport owns accept loops, per-connection readers and the
// UDP receive loop, so a leak here means a Close path lost a
// goroutine.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
