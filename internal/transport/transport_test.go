package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dataflasks/internal/sim"
)

// --- SimNetwork -------------------------------------------------------------

func simPair(t *testing.T, cfg SimNetworkConfig) (*sim.Engine, *SimNetwork) {
	t.Helper()
	engine := sim.NewEngine()
	return engine, NewSimNetwork(engine, cfg)
}

func TestSimNetworkDelivers(t *testing.T) {
	engine, net := simPair(t, SimNetworkConfig{Latency: FixedLatency(time.Millisecond)})
	var got []Envelope
	net.Attach(2, func(env Envelope) { got = append(got, env) })
	s1 := net.Attach(1, func(Envelope) {})

	if err := s1.Send(context.Background(), 2, "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	engine.RunUntilIdle(0)
	if len(got) != 1 || got[0].From != 1 || got[0].Msg != "hello" {
		t.Fatalf("delivered = %+v", got)
	}
	stats := net.Stats()
	if stats.Sent != 1 || stats.Delivered != 1 || stats.Dropped != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSimNetworkUnknownPeer(t *testing.T) {
	engine, net := simPair(t, SimNetworkConfig{})
	s := net.Attach(1, func(Envelope) {})
	if err := s.Send(context.Background(), 99, "x"); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
	engine.RunUntilIdle(0)
	if net.Stats().Dropped != 1 {
		t.Errorf("dropped = %d", net.Stats().Dropped)
	}
}

func TestSimNetworkDetachDropsInFlight(t *testing.T) {
	engine, net := simPair(t, SimNetworkConfig{Latency: FixedLatency(time.Second)})
	delivered := 0
	net.Attach(2, func(Envelope) { delivered++ })
	s1 := net.Attach(1, func(Envelope) {})
	_ = s1.Send(context.Background(), 2, "in flight")
	net.Detach(2) // crash before delivery
	engine.RunUntilIdle(0)
	if delivered != 0 {
		t.Error("message delivered to crashed node")
	}
	// Sends from a crashed node drop too.
	if err := s1.Send(context.Background(), 2, "x"); err == nil {
		t.Error("send to detached peer succeeded")
	}
}

func TestSimNetworkSenderOfDetachedNodeFails(t *testing.T) {
	engine, net := simPair(t, SimNetworkConfig{})
	net.Attach(2, func(Envelope) {})
	s1 := net.Attach(1, func(Envelope) {})
	net.Detach(1)
	if err := s1.Send(context.Background(), 2, "zombie"); !errors.Is(err, ErrPeerDown) {
		t.Errorf("zombie send err = %v, want ErrPeerDown", err)
	}
	engine.RunUntilIdle(0)
}

func TestSimNetworkLossRate(t *testing.T) {
	engine, net := simPair(t, SimNetworkConfig{LossRate: 0.5, Seed: 7, Latency: FixedLatency(0)})
	delivered := 0
	net.Attach(2, func(Envelope) { delivered++ })
	s1 := net.Attach(1, func(Envelope) {})
	const total = 1000
	for i := 0; i < total; i++ {
		_ = s1.Send(context.Background(), 2, i)
	}
	engine.RunUntilIdle(0)
	if delivered < total/3 || delivered > total*2/3 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, total)
	}
}

func TestSimNetworkPartitionAndHeal(t *testing.T) {
	engine, net := simPair(t, SimNetworkConfig{Latency: FixedLatency(0)})
	delivered := map[NodeID]int{}
	for id := NodeID(1); id <= 4; id++ {
		id := id
		net.Attach(id, func(Envelope) { delivered[id]++ })
	}
	s1 := net.Attach(1, func(Envelope) { delivered[1]++ })

	heal := net.Partition(func(id NodeID) bool { return id <= 2 })
	_ = s1.Send(context.Background(), 2, "same side")
	_ = s1.Send(context.Background(), 3, "cross")
	engine.RunUntilIdle(0)
	if delivered[2] != 1 || delivered[3] != 0 {
		t.Fatalf("partition: delivered = %v", delivered)
	}
	heal()
	_ = s1.Send(context.Background(), 3, "healed")
	engine.RunUntilIdle(0)
	if delivered[3] != 1 {
		t.Fatalf("heal: delivered = %v", delivered)
	}
}

func TestSimNetworkDeterministic(t *testing.T) {
	run := func() uint64 {
		engine, net := simPair(t, SimNetworkConfig{LossRate: 0.3, Seed: 42})
		net.Attach(2, func(Envelope) {})
		s1 := net.Attach(1, func(Envelope) {})
		for i := 0; i < 200; i++ {
			_ = s1.Send(context.Background(), 2, i)
		}
		engine.RunUntilIdle(0)
		return net.Stats().Delivered
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed delivered %d vs %d", a, b)
	}
}

// --- ChanNetwork -------------------------------------------------------------

func TestChanNetworkRoundTrip(t *testing.T) {
	net := NewChanNetwork()
	defer net.Close()
	rx2, _, err := net.Attach(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, s1, err := net.Attach(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(context.Background(), 2, "ping"); err != nil {
		t.Fatal(err)
	}
	env := <-rx2
	if env.From != 1 || env.Msg != "ping" {
		t.Fatalf("env = %+v", env)
	}
}

func TestChanNetworkDuplicateAttach(t *testing.T) {
	net := NewChanNetwork()
	defer net.Close()
	if _, _, err := net.Attach(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Attach(1, 1); err == nil {
		t.Error("duplicate attach succeeded")
	}
}

func TestChanNetworkFullMailboxDrops(t *testing.T) {
	net := NewChanNetwork()
	defer net.Close()
	_, _, err := net.Attach(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, s1, _ := net.Attach(1, 1)
	if err := s1.Send(context.Background(), 2, "fits"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(context.Background(), 2, "overflow"); !errors.Is(err, ErrDropped) {
		t.Errorf("err = %v, want ErrDropped", err)
	}
	if net.Stats().Dropped != 1 {
		t.Errorf("stats = %+v", net.Stats())
	}
	// Per-recipient attribution: the drop belongs to 2's mailbox, and
	// only mailbox overflow counts (not sends to unknown peers).
	if got := net.DroppedFor(2); got != 1 {
		t.Errorf("DroppedFor(2) = %d, want 1", got)
	}
	if got := net.DroppedFor(1); got != 0 {
		t.Errorf("DroppedFor(1) = %d, want 0", got)
	}
	_ = s1.Send(context.Background(), 99, "nobody home")
	if got := net.DroppedFor(99); got != 0 {
		t.Errorf("DroppedFor(unknown peer) = %d, want 0", got)
	}
}

func TestChanNetworkDetachClosesMailbox(t *testing.T) {
	net := NewChanNetwork()
	defer net.Close()
	rx, _, _ := net.Attach(1, 1)
	net.Detach(1)
	if _, ok := <-rx; ok {
		t.Error("mailbox not closed")
	}
	_, s2, _ := net.Attach(2, 1)
	if err := s2.Send(context.Background(), 1, "gone"); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send to detached: %v", err)
	}
}

func TestChanNetworkConcurrentSendAndDetach(t *testing.T) {
	// The race this guards: Detach closes the mailbox while senders are
	// mid-send. Run with -race to exercise it.
	net := NewChanNetwork()
	defer net.Close()
	rx, _, _ := net.Attach(1, 64)
	go func() {
		for range rx {
			// drain until closed
		}
	}()
	_, sender, _ := net.Attach(2, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				_ = sender.Send(context.Background(), 1, j)
			}
		}()
	}
	time.Sleep(time.Millisecond)
	net.Detach(1)
	wg.Wait()
}

func TestChanNetworkCloseIsIdempotent(t *testing.T) {
	net := NewChanNetwork()
	net.Close()
	net.Close()
	if _, _, err := net.Attach(1, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("attach after close: %v", err)
	}
}

// --- latency models -----------------------------------------------------------

func TestLatencyModels(t *testing.T) {
	rng := sim.RNG(1, 1)
	fixed := FixedLatency(3 * time.Millisecond)
	for i := 0; i < 10; i++ {
		if d := fixed(rng); d != 3*time.Millisecond {
			t.Fatalf("fixed = %v", d)
		}
	}
	uni := UniformLatency(time.Millisecond, 2*time.Millisecond)
	for i := 0; i < 100; i++ {
		d := uni(rng)
		if d < time.Millisecond || d > 2*time.Millisecond {
			t.Fatalf("uniform out of range: %v", d)
		}
	}
	// Swapped bounds normalize.
	swapped := UniformLatency(2*time.Millisecond, time.Millisecond)
	if d := swapped(rng); d < time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("swapped-bounds uniform = %v", d)
	}
	lan := LANLatency()
	for i := 0; i < 1000; i++ {
		d := lan(rng)
		if d < 200*time.Microsecond || d > 10*time.Millisecond {
			t.Fatalf("lan latency out of bounds: %v", d)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeID(42).String(); got != "n42" {
		t.Errorf("String = %q", got)
	}
}
