package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPEnvelope is the frame exchanged on TCP streams. It mirrors
// wire.Envelope; it lives here so the transport has no dependency on
// protocol packages (wire.Register teaches gob the payload types).
type TCPEnvelope struct {
	From     NodeID
	FromAddr string
	To       NodeID
	Msg      interface{}
}

// TCPNetwork is the real-deployment fabric: one persistent outbound
// gob stream per peer, lazily dialed through an address directory that
// the overlay itself populates (PSS descriptors carry addresses; see
// AddressBook). Inbound connections are decoded by per-connection
// goroutines and handed to the node's handler.
//
// Sends are best-effort, matching the epidemic model: a failed dial or
// write drops the message and tears the connection down; gossip
// redundancy covers the loss.
type TCPNetwork struct {
	self     NodeID
	addr     string // advertised address
	ln       net.Listener
	handler  func(Envelope)
	dialTime time.Duration

	mu    sync.RWMutex
	peers map[NodeID]string
	conns map[NodeID]*tcpConn
	// all tracks every live net.Conn (inbound and outbound) so Close
	// can unblock their reader goroutines.
	all map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed atomic.Bool

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

var _ AddressBook = (*TCPNetwork)(nil)

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// ListenTCP binds the fabric. bind is the listen address ("host:port",
// port 0 allowed); advertise is the address peers should dial (empty =
// the bound address). handler receives every decoded envelope on
// per-connection goroutines; it must be safe for concurrent use (the
// node runtime funnels into a mailbox).
func ListenTCP(self NodeID, bind, advertise string, handler func(Envelope)) (*TCPNetwork, error) {
	if handler == nil {
		return nil, errors.New("transport: ListenTCP requires a handler")
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	t := &TCPNetwork{
		self:     self,
		addr:     advertise,
		ln:       ln,
		handler:  handler,
		dialTime: 3 * time.Second,
		peers:    make(map[NodeID]string),
		conns:    make(map[NodeID]*tcpConn),
		all:      make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the advertised address.
func (t *TCPNetwork) Addr() string { return t.addr }

// Learn implements AddressBook.
func (t *TCPNetwork) Learn(id NodeID, addr string) {
	if id == t.self || addr == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.peers[id] != addr {
		t.peers[id] = addr
		// The old connection (if any) points at a stale address.
		if c, ok := t.conns[id]; ok {
			delete(t.conns, id)
			_ = c.conn.Close()
		}
	}
}

// PeerCount returns the directory size.
func (t *TCPNetwork) PeerCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.peers)
}

// Stats returns delivery counters.
func (t *TCPNetwork) Stats() Stats {
	return Stats{Sent: t.sent.Load(), Delivered: t.delivered.Load(), Dropped: t.dropped.Load()}
}

// Sender returns the fabric's sender for the local node.
func (t *TCPNetwork) Sender() Sender {
	return SenderFunc(func(to NodeID, msg interface{}) error {
		return t.send(to, msg)
	})
}

// Close stops the listener and all connections and waits for the
// reader goroutines.
func (t *TCPNetwork) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := t.ln.Close()
	t.mu.Lock()
	for id := range t.conns {
		delete(t.conns, id)
	}
	for conn := range t.all {
		delete(t.all, conn)
		_ = conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// track registers a live connection; it reports false when the fabric
// is already closed (the caller must close the conn itself).
func (t *TCPNetwork) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return false
	}
	t.all[conn] = struct{}{}
	return true
}

func (t *TCPNetwork) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.all, conn)
	t.mu.Unlock()
}

func (t *TCPNetwork) send(to NodeID, msg interface{}) error {
	t.sent.Add(1)
	if t.closed.Load() {
		t.dropped.Add(1)
		return ErrClosed
	}
	c, err := t.connTo(to)
	if err != nil {
		t.dropped.Add(1)
		return err
	}
	env := TCPEnvelope{From: t.self, FromAddr: t.addr, To: to, Msg: msg}
	c.mu.Lock()
	err = c.enc.Encode(&env)
	c.mu.Unlock()
	if err != nil {
		t.dropConn(to, c)
		t.dropped.Add(1)
		return fmt.Errorf("%w: %v", ErrDropped, err)
	}
	t.delivered.Add(1)
	return nil
}

func (t *TCPNetwork) connTo(to NodeID) (*tcpConn, error) {
	t.mu.RLock()
	c, ok := t.conns[to]
	addr := t.peers[to]
	t.mu.RUnlock()
	if ok {
		return c, nil
	}
	if addr == "" {
		return nil, ErrUnknownPeer
	}
	conn, err := net.DialTimeout("tcp", addr, t.dialTime)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrPeerDown, addr, err)
	}
	nc := &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost the race; keep the established one.
		t.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	t.conns[to] = nc
	t.all[conn] = struct{}{}
	t.mu.Unlock()

	// Outbound connections are bidirectional: read replies from them.
	t.wg.Add(1)
	go t.readLoop(conn)
	return nc, nil
}

func (t *TCPNetwork) dropConn(id NodeID, c *tcpConn) {
	t.mu.Lock()
	if cur, ok := t.conns[id]; ok && cur == c {
		delete(t.conns, id)
	}
	t.mu.Unlock()
	_ = c.conn.Close()
}

func (t *TCPNetwork) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(conn) {
			_ = conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes envelopes until the stream dies. Sender addresses
// are learned opportunistically, so answering a brand-new peer works
// immediately.
func (t *TCPNetwork) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var env TCPEnvelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if t.closed.Load() {
			return
		}
		if env.FromAddr != "" {
			t.Learn(env.From, env.FromAddr)
		}
		t.handler(Envelope{From: env.From, To: env.To, Msg: env.Msg})
	}
}
