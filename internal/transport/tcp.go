package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dataflasks/internal/metrics"
)

// helloMagic opens the codec negotiation handshake. A dialer that
// wants a non-gob codec sends magic+version; a listener that sees the
// magic replies magic+chosen, where chosen is the minimum of the
// offered version and its own preference. Legacy (gob-only) dialers
// send no hello — their streams start with gob type definitions, which
// never collide with the magic — and legacy listeners close the
// connection on an unparseable hello, which the dialer treats as
// "gob only" and redials raw gob. Either way a mixed-version cluster
// converges on frames both ends understand.
var helloMagic = [4]byte{'D', 'F', 'W', 'P'}

const helloLen = 5 // magic + version byte

// maxTCPFrame caps a framed message so a corrupt or hostile length
// prefix cannot balloon memory. Pushes and batches stay well under it.
const maxTCPFrame = 64 << 20

// TCPConfig tunes a TCP fabric beyond the required listen parameters.
// The zero value is a legacy gob-stream fabric.
type TCPConfig struct {
	// Codec frames outbound messages and decodes framed inbound
	// streams. Nil (or a gob codec) keeps raw gob streams — the compat
	// path, byte-identical to pre-codec deployments.
	Codec WireCodec
	// Stats receives wire-level accounting; nil allocates a private
	// instance (Stats() still reports delivery counts either way).
	Stats *metrics.WireStats
	// DialTimeout bounds outbound connection attempts (default 3s).
	DialTimeout time.Duration
}

// TCPNetwork is the real-deployment fabric: one persistent outbound
// stream per peer, lazily dialed through an address directory that the
// overlay itself populates (PSS descriptors carry addresses; see
// AddressBook). Streams carry either raw gob (the compat codec) or
// length-prefixed binary frames, negotiated per connection by a
// five-byte hello. Inbound connections are decoded by per-connection
// goroutines and handed to the node's handler.
//
// Sends are best-effort, matching the epidemic model: a failed dial or
// write drops the message and tears the connection down; gossip
// redundancy covers the loss.
type TCPNetwork struct {
	self     NodeID
	addr     string // advertised address
	ln       net.Listener
	handler  func(Envelope)
	codec    WireCodec
	wstats   *metrics.WireStats
	dialTime time.Duration

	mu    sync.RWMutex
	peers map[NodeID]string
	conns map[NodeID]*tcpConn
	// gobOnly remembers peers that rejected the binary hello (legacy
	// nodes): further dials go straight to raw gob instead of paying a
	// failed handshake per reconnect.
	gobOnly map[NodeID]bool
	// all tracks every live net.Conn (inbound and outbound) so Close
	// can unblock their reader goroutines.
	all map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed atomic.Bool

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

var (
	_ AddressBook = (*TCPNetwork)(nil)
	_ Fabric      = (*TCPNetwork)(nil)
)

// tcpConn is one outbound stream. Exactly one of enc (raw gob mode) or
// framed is active, fixed at handshake time.
type tcpConn struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder // raw gob stream; nil in framed mode
	framed  bool
	scratch []byte // framed mode: reused [len prefix][frame] buffer
}

// ListenTCP binds the fabric. bind is the listen address ("host:port",
// port 0 allowed); advertise is the address peers should dial (empty =
// the bound address). handler receives every decoded envelope on
// per-connection goroutines; it must be safe for concurrent use (the
// node runtime funnels into a mailbox).
func ListenTCP(self NodeID, bind, advertise string, cfg TCPConfig, handler func(Envelope)) (*TCPNetwork, error) {
	if handler == nil {
		return nil, errors.New("transport: ListenTCP requires a handler")
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.Stats == nil {
		cfg.Stats = &metrics.WireStats{}
	}
	t := &TCPNetwork{
		self:     self,
		addr:     advertise,
		ln:       ln,
		handler:  handler,
		codec:    cfg.Codec,
		wstats:   cfg.Stats,
		dialTime: cfg.DialTimeout,
		peers:    make(map[NodeID]string),
		conns:    make(map[NodeID]*tcpConn),
		gobOnly:  make(map[NodeID]bool),
		all:      make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the advertised address.
func (t *TCPNetwork) Addr() string { return t.addr }

// BoundAddr returns the listener's actual bound address (which differs
// from Addr when advertising a public name or when bound to port 0).
// The datagram fabric binds the same port by convention.
func (t *TCPNetwork) BoundAddr() string { return t.ln.Addr().String() }

// Learn implements AddressBook.
func (t *TCPNetwork) Learn(id NodeID, addr string) {
	if id == t.self || addr == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.peers[id] != addr {
		t.peers[id] = addr
		// The old connection (if any) points at a stale address, and a
		// restarted peer may have been upgraded: forget both.
		delete(t.gobOnly, id)
		if c, ok := t.conns[id]; ok {
			delete(t.conns, id)
			_ = c.conn.Close()
		}
	}
}

// PeerCount returns the directory size.
func (t *TCPNetwork) PeerCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.peers)
}

// PeerAddr returns the learned address for id ("" when unknown). The
// UDP companion fabric resolves datagram destinations through it.
func (t *TCPNetwork) PeerAddr(id NodeID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.peers[id]
}

// Stats returns delivery counters.
func (t *TCPNetwork) Stats() Stats {
	return Stats{Sent: t.sent.Load(), Delivered: t.delivered.Load(), Dropped: t.dropped.Load()}
}

// WireStats returns the codec/datagram accounting shared with this
// fabric.
func (t *TCPNetwork) WireStats() *metrics.WireStats { return t.wstats }

// Sender returns the fabric's sender for the local node.
func (t *TCPNetwork) Sender() Sender { return BindSender(t, t.self) }

// Close stops the listener and all connections and waits for the
// reader goroutines.
func (t *TCPNetwork) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := t.ln.Close()
	t.mu.Lock()
	for id := range t.conns {
		delete(t.conns, id)
	}
	for conn := range t.all {
		delete(t.all, conn)
		_ = conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// track registers a live connection; it reports false when the fabric
// is already closed (the caller must close the conn itself).
func (t *TCPNetwork) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return false
	}
	t.all[conn] = struct{}{}
	return true
}

func (t *TCPNetwork) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.all, conn)
	t.mu.Unlock()
}

// preferredVersion is the frame version this node opens handshakes
// with (FrameGob when no codec is configured).
func (t *TCPNetwork) preferredVersion() byte {
	if t.codec == nil {
		return FrameGob
	}
	return t.codec.Version()
}

// Send implements Fabric.
func (t *TCPNetwork) Send(ctx context.Context, to NodeID, env Envelope) error {
	t.sent.Add(1)
	if t.closed.Load() {
		t.dropped.Add(1)
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		t.dropped.Add(1)
		return err
	}
	c, err := t.connTo(ctx, to)
	if err != nil {
		t.dropped.Add(1)
		return err
	}
	wenv := WireEnvelope{From: env.From, FromAddr: t.addr, To: to, Msg: env.Msg}
	if err := c.write(t.codec, &wenv, t.wstats); err != nil {
		t.dropConn(to, c)
		t.dropped.Add(1)
		return fmt.Errorf("%w: %v", ErrDropped, err)
	}
	t.delivered.Add(1)
	return nil
}

// write emits one envelope on the stream in the connection's
// negotiated mode.
func (c *tcpConn) write(codec WireCodec, env *WireEnvelope, ws *metrics.WireStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.framed {
		// Raw gob stream; the encoder's writer counts encode bytes.
		return c.enc.Encode(env)
	}
	// Framed: length prefix + codec frame, encoded into the reused
	// scratch so steady-state sends allocate nothing.
	buf := append(c.scratch[:0], 0, 0, 0, 0)
	buf, err := codec.Encode(buf, env)
	if err != nil {
		return err
	}
	c.scratch = buf
	frame := len(buf) - 4
	binary.BigEndian.PutUint32(buf[:4], uint32(frame))
	ws.EncodeBytes.Add(uint64(frame))
	_, err = c.conn.Write(buf)
	return err
}

// countingWriter counts bytes flowing into a raw gob stream so
// wire_encode_bytes covers the compat codec too.
type countingWriter struct {
	w io.Writer
	n *metrics.SharedCounter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(uint64(n))
	return n, err
}

func (t *TCPNetwork) connTo(ctx context.Context, to NodeID) (*tcpConn, error) {
	t.mu.RLock()
	c, ok := t.conns[to]
	addr := t.peers[to]
	gobOnly := t.gobOnly[to]
	t.mu.RUnlock()
	if ok {
		return c, nil
	}
	if addr == "" {
		return nil, ErrUnknownPeer
	}
	nc, err := t.dial(ctx, to, addr, gobOnly)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		_ = nc.conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost the race; keep the established one.
		t.mu.Unlock()
		_ = nc.conn.Close()
		return existing, nil
	}
	t.conns[to] = nc
	t.all[nc.conn] = struct{}{}
	t.mu.Unlock()

	// Outbound connections are bidirectional: read replies from them,
	// in whatever mode the handshake fixed.
	t.wg.Add(1)
	go t.readLoop(nc.conn, bufio.NewReader(nc.conn), nc.framed)
	return nc, nil
}

// dial establishes one outbound stream, negotiating the frame codec.
// When the local preference is binary and the peer is not known to be
// gob-only, a hello is sent and the peer's answer picks the mode; a
// peer that closes the connection instead of answering (a legacy node)
// is remembered as gob-only and redialed with a raw gob stream.
func (t *TCPNetwork) dial(ctx context.Context, to NodeID, addr string, gobOnly bool) (*tcpConn, error) {
	d := net.Dialer{Timeout: t.dialTime}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrPeerDown, addr, err)
	}
	if t.preferredVersion() == FrameGob || gobOnly {
		return t.gobConn(conn), nil
	}
	ver, err := t.offerHello(conn)
	if err != nil {
		// The peer tore the connection down instead of answering: a
		// legacy gob-only node. Remember and redial raw gob.
		_ = conn.Close()
		t.mu.Lock()
		t.gobOnly[to] = true
		t.mu.Unlock()
		t.wstats.CodecFallbacks.Inc()
		conn, err = d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("%w: dial %s: %v", ErrPeerDown, addr, err)
		}
		return t.gobConn(conn), nil
	}
	if ver == FrameGob {
		// Negotiated down: the peer prefers (or only speaks) gob.
		t.wstats.CodecFallbacks.Inc()
		return t.gobConn(conn), nil
	}
	return &tcpConn{conn: conn, framed: true}, nil
}

// gobConn wraps a connection as a raw gob stream with encode-byte
// accounting.
func (t *TCPNetwork) gobConn(conn net.Conn) *tcpConn {
	return &tcpConn{
		conn: conn,
		enc:  gob.NewEncoder(countingWriter{w: conn, n: &t.wstats.EncodeBytes}),
	}
}

// offerHello sends magic+version and waits briefly for the peer's
// choice.
func (t *TCPNetwork) offerHello(conn net.Conn) (byte, error) {
	hello := [helloLen]byte{helloMagic[0], helloMagic[1], helloMagic[2], helloMagic[3], t.preferredVersion()}
	if _, err := conn.Write(hello[:]); err != nil {
		return 0, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(t.dialTime))
	defer conn.SetReadDeadline(time.Time{})
	var reply [helloLen]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return 0, err
	}
	if [4]byte(reply[:4]) != helloMagic {
		return 0, fmt.Errorf("transport: bad hello reply %x", reply)
	}
	ver := reply[4]
	if ver > t.preferredVersion() {
		return 0, fmt.Errorf("transport: peer negotiated up to version %d", ver)
	}
	return ver, nil
}

func (t *TCPNetwork) dropConn(id NodeID, c *tcpConn) {
	t.mu.Lock()
	if cur, ok := t.conns[id]; ok && cur == c {
		delete(t.conns, id)
	}
	t.mu.Unlock()
	_ = c.conn.Close()
}

func (t *TCPNetwork) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(conn) {
			_ = conn.Close()
			return
		}
		t.wg.Add(1)
		go t.serveInbound(conn)
	}
}

// serveInbound sniffs the first bytes of an accepted stream: a hello
// gets answered with the chosen frame version (the minimum of what the
// peer offered and what we prefer); anything else is a legacy raw gob
// stream.
func (t *TCPNetwork) serveInbound(conn net.Conn) {
	br := bufio.NewReader(conn)
	head, err := br.Peek(len(helloMagic))
	if err != nil {
		t.untrack(conn)
		_ = conn.Close()
		t.wg.Done()
		return
	}
	framed := false
	if [4]byte(head) == helloMagic {
		var hello [helloLen]byte
		if _, err := io.ReadFull(br, hello[:]); err != nil {
			t.untrack(conn)
			_ = conn.Close()
			t.wg.Done()
			return
		}
		chosen := hello[4]
		if pref := t.preferredVersion(); chosen > pref {
			chosen = pref // never accept more than we are configured for
		}
		reply := [helloLen]byte{helloMagic[0], helloMagic[1], helloMagic[2], helloMagic[3], chosen}
		if _, err := conn.Write(reply[:]); err != nil {
			t.untrack(conn)
			_ = conn.Close()
			t.wg.Done()
			return
		}
		framed = chosen != FrameGob
		if hello[4] != chosen {
			t.wstats.CodecFallbacks.Inc()
		}
	}
	t.readLoop(conn, br, framed)
}

// readLoop decodes envelopes until the stream dies. Sender addresses
// are learned opportunistically, so answering a brand-new peer works
// immediately. The caller must have wg.Add'ed and track'ed the conn.
func (t *TCPNetwork) readLoop(conn net.Conn, br *bufio.Reader, framed bool) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer conn.Close()
	if framed {
		t.readFrames(br)
		return
	}
	dec := gob.NewDecoder(br)
	for {
		var env WireEnvelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if !t.deliver(&env) {
			return
		}
	}
}

// readFrames drains a length-prefixed frame stream.
func (t *TCPNetwork) readFrames(br *bufio.Reader) {
	var frame []byte
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxTCPFrame {
			return
		}
		if cap(frame) < int(n) {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		env, err := t.codec.Decode(frame)
		if err != nil {
			return
		}
		if !t.deliver(env) {
			return
		}
	}
}

// deliver hands one decoded envelope to the node; it reports false
// when the fabric is shutting down.
func (t *TCPNetwork) deliver(env *WireEnvelope) bool {
	if t.closed.Load() {
		return false
	}
	if env.FromAddr != "" {
		t.Learn(env.From, env.FromAddr)
	}
	t.handler(Envelope{From: env.From, To: env.To, Msg: env.Msg})
	return true
}
