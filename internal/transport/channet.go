package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ChanNetwork is an in-process fabric for live goroutine clusters: each
// attached node owns a bounded mailbox channel drained by its own event
// loop. Sends never block; a full mailbox drops the message, which
// models a congested link and is safe for epidemic protocols.
type ChanNetwork struct {
	mu        sync.RWMutex
	mailboxes map[NodeID]chan Envelope
	// perDrop counts, per recipient, messages discarded because that
	// recipient's mailbox was full — the receiver-side congestion
	// signal (Stats().Dropped also includes sends to unknown peers).
	perDrop map[NodeID]*atomic.Uint64
	closed  bool
	// delay, when set, draws a per-message delivery delay — real-time
	// RTT emulation for benchmarks that need network latency to matter
	// (the RESP pipelining comparison). Nil delivers immediately.
	delay func() time.Duration

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// NewChanNetwork creates an empty in-process fabric.
func NewChanNetwork() *ChanNetwork {
	return &ChanNetwork{
		mailboxes: make(map[NodeID]chan Envelope),
		perDrop:   make(map[NodeID]*atomic.Uint64),
	}
}

// Attach registers id with a mailbox of the given capacity and returns
// the receive channel plus the node's sender. The caller must drain the
// channel until Detach (or Close) closes it.
func (n *ChanNetwork) Attach(id NodeID, mailbox int) (<-chan Envelope, Sender, error) {
	if mailbox <= 0 {
		mailbox = 1024
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, nil, ErrClosed
	}
	if _, ok := n.mailboxes[id]; ok {
		return nil, nil, ErrUnknownPeer // id already in use
	}
	ch := make(chan Envelope, mailbox)
	n.mailboxes[id] = ch
	if n.perDrop[id] == nil {
		// Survives Detach/re-Attach so the count covers the id's whole
		// lifetime.
		n.perDrop[id] = &atomic.Uint64{}
	}
	return ch, BindSender(n, id), nil
}

// SetDelay installs a per-message artificial delivery delay drawn from
// fn (nil restores immediate delivery). fn must be safe for concurrent
// use. Delayed deliveries ride timers, so ordering between messages is
// not preserved — which is how real networks behave and what epidemic
// protocols are built for. Set it before traffic flows.
func (n *ChanNetwork) SetDelay(fn func() time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay = fn
}

// DroppedFor returns how many messages addressed to id were discarded
// because id's mailbox was full.
func (n *ChanNetwork) DroppedFor(id NodeID) uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if c, ok := n.perDrop[id]; ok {
		return c.Load()
	}
	return 0
}

// Detach removes id and closes its mailbox. In-flight sends to id after
// Detach are dropped.
func (n *ChanNetwork) Detach(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ch, ok := n.mailboxes[id]; ok {
		delete(n.mailboxes, id)
		close(ch)
	}
}

// Close detaches every node. Further Attach and Send calls fail.
func (n *ChanNetwork) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for id, ch := range n.mailboxes {
		delete(n.mailboxes, id)
		close(ch)
	}
}

// Stats returns fabric-level delivery counters.
func (n *ChanNetwork) Stats() Stats {
	return Stats{
		Sent:      n.sent.Load(),
		Delivered: n.delivered.Load(),
		Dropped:   n.dropped.Load(),
	}
}

// Send implements Fabric. A cancelled ctx drops the message before it
// is enqueued; in-flight delayed deliveries are not recalled (like a
// real network).
func (n *ChanNetwork) Send(ctx context.Context, to NodeID, env Envelope) error {
	n.sent.Add(1)
	if err := ctx.Err(); err != nil {
		n.dropped.Add(1)
		return err
	}
	n.mu.RLock()
	delay := n.delay
	n.mu.RUnlock()
	if delay != nil {
		if d := delay(); d > 0 {
			// Emulated network latency: deliver from a timer. Errors
			// after the delay (peer gone, mailbox full) are counted but
			// no longer reportable to the sender — like a real network.
			time.AfterFunc(d, func() { _ = n.deliver(env.From, to, env.Msg) })
			return nil
		}
	}
	return n.deliver(env.From, to, env.Msg)
}

func (n *ChanNetwork) deliver(from, to NodeID, msg interface{}) error {
	// The read lock is held across the channel send so Detach/Close
	// (which close the mailbox under the write lock) cannot race a
	// send into a closed channel. The send is non-blocking, so the
	// lock is never held for long.
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed {
		n.dropped.Add(1)
		return ErrClosed
	}
	ch, ok := n.mailboxes[to]
	if !ok {
		n.dropped.Add(1)
		return ErrUnknownPeer
	}
	select {
	case ch <- Envelope{From: from, To: to, Msg: msg}:
		n.delivered.Add(1)
		return nil
	default:
		n.dropped.Add(1)
		if c := n.perDrop[to]; c != nil {
			c.Add(1)
		}
		return ErrDropped
	}
}
