// Package transport defines how DataFlasks nodes exchange messages and
// provides three interchangeable fabrics: a deterministic simulated
// network driven by the discrete-event engine, an in-process channel
// network for live goroutine clusters, and a TCP network for real
// deployments. Protocol code depends only on the small Sender interface,
// so the same node logic runs unchanged on all three.
package transport

import (
	"errors"
	"strconv"
)

// NodeID identifies a node (or a client endpoint) in the system.
// IDs are opaque to the protocols; uniqueness is the deployer's job.
type NodeID uint64

// String formats the id as the paper's evaluation tables do ("n42").
func (id NodeID) String() string { return "n" + strconv.FormatUint(uint64(id), 10) }

// Envelope is one addressed protocol message in flight.
type Envelope struct {
	From NodeID
	To   NodeID
	Msg  interface{}
}

// Sender lets a node emit messages. Send is best-effort: epidemic
// protocols tolerate loss, so failures surface as an error for
// accounting but never block.
type Sender interface {
	Send(to NodeID, msg interface{}) error
}

// SenderFunc adapts a function to the Sender interface.
type SenderFunc func(to NodeID, msg interface{}) error

// Send implements Sender.
func (f SenderFunc) Send(to NodeID, msg interface{}) error { return f(to, msg) }

// AddressBook lets protocol layers feed learned (id → address)
// mappings to fabrics that need them (TCP). Simulated fabrics ignore
// addresses entirely.
type AddressBook interface {
	// Learn records that id is reachable at addr. Implementations must
	// be safe for concurrent use and tolerate re-learning.
	Learn(id NodeID, addr string)
}

// Common delivery errors.
var (
	// ErrUnknownPeer reports a destination that is not registered.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrPeerDown reports a destination that is registered but stopped.
	ErrPeerDown = errors.New("transport: peer down")
	// ErrDropped reports a message dropped by loss injection or a full
	// mailbox.
	ErrDropped = errors.New("transport: message dropped")
	// ErrClosed reports use of a closed endpoint or network.
	ErrClosed = errors.New("transport: closed")
)

// Stats aggregates fabric-level delivery accounting.
type Stats struct {
	Sent      uint64 // messages accepted for delivery
	Delivered uint64 // messages handed to a handler
	Dropped   uint64 // messages lost (loss model, dead peer, full mailbox)
}
