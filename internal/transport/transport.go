// Package transport defines how DataFlasks nodes exchange messages and
// provides four interchangeable fabrics: a deterministic simulated
// network driven by the discrete-event engine, an in-process channel
// network for live goroutine clusters, a TCP network for real
// deployments, and a UDP datagram path for the loss-tolerant epidemic
// control plane. Every fabric implements the same context-taking
// Send(ctx, to, env) signature (the Fabric interface); protocol code
// depends only on the narrow Sender interface bound to one originating
// node, so the same node logic runs unchanged on all fabrics.
package transport

import (
	"context"
	"errors"
	"strconv"
)

// NodeID identifies a node (or a client endpoint) in the system.
// IDs are opaque to the protocols; uniqueness is the deployer's job.
type NodeID uint64

// String formats the id as the paper's evaluation tables do ("n42").
func (id NodeID) String() string { return "n" + strconv.FormatUint(uint64(id), 10) }

// Envelope is one addressed protocol message in flight.
type Envelope struct {
	From NodeID
	To   NodeID
	Msg  interface{}
}

// Fabric is the unified send surface every transport implements: one
// context-taking signature shared by the simulated, channel, TCP and
// UDP fabrics. Send is best-effort — epidemic protocols tolerate loss,
// so failures surface as an error for accounting but never block
// beyond ctx.
type Fabric interface {
	Send(ctx context.Context, to NodeID, env Envelope) error
}

// Sender lets one node emit messages. It is the protocol-facing
// narrowing of Fabric: the originating node is bound in, so protocol
// code only names the destination. Send is best-effort, like
// Fabric.Send.
type Sender interface {
	Send(ctx context.Context, to NodeID, msg interface{}) error
}

// SenderFunc adapts a function to the Sender interface.
type SenderFunc func(ctx context.Context, to NodeID, msg interface{}) error

// Send implements Sender.
func (f SenderFunc) Send(ctx context.Context, to NodeID, msg interface{}) error {
	return f(ctx, to, msg)
}

// BindSender narrows a fabric to one originating node. All fabrics
// hand out senders through this single helper, so the per-fabric
// sender construction cannot drift.
func BindSender(f Fabric, from NodeID) Sender {
	return SenderFunc(func(ctx context.Context, to NodeID, msg interface{}) error {
		return f.Send(ctx, to, Envelope{From: from, To: to, Msg: msg})
	})
}

// FallbackSender tries primary and, when it fails, retries the same
// message on fallback. The canonical use is the control-plane split: a
// datagram path as primary (oversize frames or missing peer addresses
// fail fast) with the TCP stream path as the always-works fallback.
func FallbackSender(primary, fallback Sender) Sender {
	return SenderFunc(func(ctx context.Context, to NodeID, msg interface{}) error {
		if err := primary.Send(ctx, to, msg); err != nil {
			return fallback.Send(ctx, to, msg)
		}
		return nil
	})
}

// AddressBook lets protocol layers feed learned (id → address)
// mappings to fabrics that need them (TCP, UDP). Simulated fabrics
// ignore addresses entirely.
type AddressBook interface {
	// Learn records that id is reachable at addr. Implementations must
	// be safe for concurrent use and tolerate re-learning.
	Learn(id NodeID, addr string)
}

// WireEnvelope is the frame crossing real networks: the logical
// envelope plus the sender's dialable address, which lets receivers
// answer nodes they have never dialed.
type WireEnvelope struct {
	From     NodeID
	FromAddr string
	To       NodeID
	Msg      interface{}
}

// Frame version bytes: the first byte of every encoded frame names the
// codec that produced it, so receivers decode mixed-codec traffic
// without negotiation state.
const (
	// FrameGob marks a gob-encoded frame (the compat/fallback codec).
	FrameGob byte = 0
	// FrameBinary marks a hand-rolled binary frame (wire.BinaryCodec).
	FrameBinary byte = 1
)

// WireCodec turns envelopes into self-describing frames and back. The
// wire package provides the implementations (gob and binary); the
// transport layer only moves frames. Encode appends to buf (reuse
// buffers for zero-allocation sends) and the first byte of every
// produced frame is the codec's Version. Decode must accept frames of
// ANY known version — mixed-codec clusters deliver both.
type WireCodec interface {
	// Version is the frame version byte this codec encodes with.
	Version() byte
	// Encode appends env as one frame to buf and returns the extended
	// slice.
	Encode(buf []byte, env *WireEnvelope) ([]byte, error)
	// Decode parses one frame (the whole slice).
	Decode(data []byte) (*WireEnvelope, error)
	// Control reports whether msg is small, loss-tolerant control-plane
	// traffic eligible for the datagram path.
	Control(msg interface{}) bool
}

// Common delivery errors.
var (
	// ErrUnknownPeer reports a destination that is not registered.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrPeerDown reports a destination that is registered but stopped.
	ErrPeerDown = errors.New("transport: peer down")
	// ErrDropped reports a message dropped by loss injection or a full
	// mailbox.
	ErrDropped = errors.New("transport: message dropped")
	// ErrClosed reports use of a closed endpoint or network.
	ErrClosed = errors.New("transport: closed")
	// ErrOversize reports a frame too large for the datagram path; the
	// caller should retry on a stream fabric (FallbackSender does).
	ErrOversize = errors.New("transport: frame exceeds datagram size cap")
	// ErrNoDatagramPath reports a peer whose datagram path is unproven
	// (no probe ack yet — possibly a node with no UDP listener at all);
	// the caller should retry on a stream fabric (FallbackSender does).
	ErrNoDatagramPath = errors.New("transport: no proven datagram path")
)

// Stats aggregates fabric-level delivery accounting.
type Stats struct {
	Sent      uint64 // messages accepted for delivery
	Delivered uint64 // messages handed to a handler
	Dropped   uint64 // messages lost (loss model, dead peer, full mailbox)
}
