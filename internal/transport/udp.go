package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dataflasks/internal/metrics"
)

// DefaultMaxDatagram caps one control-plane frame per datagram. 8 KiB
// holds every routine control message — shuffles are a dozen
// descriptors, swap/aggregation messages are a few words, and a Bloom
// summary covers ~6500 objects — while staying far from the 64 KiB UDP
// ceiling and its fragmentation pathologies. Oversize frames bounce to
// the stream path (ErrOversize + FallbackSender).
const DefaultMaxDatagram = 8 << 10

// maxUDPRead sizes the receive buffer at the UDP payload ceiling, so a
// peer configured with a larger cap is still readable.
const maxUDPRead = 64 << 10

// Probe datagrams prove a peer's datagram path before any control
// frame trusts it. Not every peer listens on UDP — the flag is
// per-node, so a mixed deployment is normal — and a datagram sent to a
// TCP-only peer vanishes without an error, which would silently
// blackhole the control plane (the first PSS shuffle to such a seed
// would be lost and membership would never form). So an unproven peer
// costs one 9-byte probe and an ErrNoDatagramPath (FallbackSender then
// rides TCP); only after the peer's ack does control traffic switch to
// datagrams. Probe frames lead with bytes no codec version uses.
const (
	probeByte    byte = 0xFF
	probeAckByte byte = 0xFE
	probeLen          = 9 // type byte + sender id
)

// DefaultProveTTL bounds how long a probe ack is trusted. A peer that
// restarts without its UDP listener stops acking, so its path expires
// and traffic settles back on TCP within one TTL.
const DefaultProveTTL = 30 * time.Second

// probeInterval rate-limits probes per peer, so a TCP-only peer is
// poked at most once a second rather than once per control message.
const probeInterval = time.Second

// UDPConfig tunes the datagram fabric.
type UDPConfig struct {
	// Codec frames datagrams (required). Received datagrams are
	// decoded by their leading version byte, so mixed-codec clusters
	// interoperate per datagram.
	Codec WireCodec
	// Resolve maps a node id to its dialable "host:port" (required —
	// typically TCPNetwork.PeerAddr, since the datagram listener binds
	// the same port by convention).
	Resolve func(NodeID) (string, bool)
	// MaxDatagram caps the encoded frame size (default
	// DefaultMaxDatagram).
	MaxDatagram int
	// Stats receives datagram accounting; nil allocates a private
	// instance.
	Stats *metrics.WireStats
	// ProveTTL bounds how long a peer's probe ack keeps its datagram
	// path trusted (default DefaultProveTTL).
	ProveTTL time.Duration
}

// UDPTransport is the epidemic control plane's fast path: one frame
// per datagram, no connection setup, no head-of-line blocking, and no
// delivery guarantee — which is exactly the contract PSS shuffles,
// slicing swaps, aggregation and anti-entropy digests are built for.
// By convention it binds the same port as the node's TCP listener, so
// the overlay's learned TCP addresses double as datagram addresses and
// no extra discovery is needed.
type UDPTransport struct {
	self    NodeID
	conn    *net.UDPConn
	codec   WireCodec
	resolve func(NodeID) (string, bool)
	maxSize int
	wstats  *metrics.WireStats
	handler func(Envelope)

	proveTTL time.Duration

	mu      sync.Mutex
	scratch []byte
	// dests caches resolved datagram addresses per peer, invalidated
	// when the resolver's answer changes (a restarted peer).
	dests map[NodeID]*udpDest
	// proven records when each peer last proved its datagram path
	// (probe ack or any decoded datagram); lastProbe rate-limits the
	// probes sent while a path is unproven.
	proven    map[NodeID]time.Time
	lastProbe map[NodeID]time.Time

	wg     sync.WaitGroup
	closed atomic.Bool

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

type udpDest struct {
	raw  string
	addr *net.UDPAddr
}

var _ Fabric = (*UDPTransport)(nil)

// ListenUDP binds the datagram fabric on bind ("host:port"; by
// convention the same port as the TCP listener). handler receives
// every decoded envelope on the read goroutine; it must be safe for
// concurrent use.
func ListenUDP(self NodeID, bind string, cfg UDPConfig, handler func(Envelope)) (*UDPTransport, error) {
	if handler == nil {
		return nil, errors.New("transport: ListenUDP requires a handler")
	}
	if cfg.Codec == nil {
		return nil, errors.New("transport: ListenUDP requires a codec")
	}
	if cfg.Resolve == nil {
		return nil, errors.New("transport: ListenUDP requires a resolver")
	}
	laddr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: udp %s: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: udp listen %s: %w", bind, err)
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = DefaultMaxDatagram
	}
	if cfg.Stats == nil {
		cfg.Stats = &metrics.WireStats{}
	}
	if cfg.ProveTTL <= 0 {
		cfg.ProveTTL = DefaultProveTTL
	}
	u := &UDPTransport{
		self:      self,
		conn:      conn,
		codec:     cfg.Codec,
		resolve:   cfg.Resolve,
		maxSize:   cfg.MaxDatagram,
		wstats:    cfg.Stats,
		handler:   handler,
		proveTTL:  cfg.ProveTTL,
		dests:     make(map[NodeID]*udpDest),
		proven:    make(map[NodeID]time.Time),
		lastProbe: make(map[NodeID]time.Time),
	}
	u.wg.Add(1)
	go u.readLoop()
	return u, nil
}

// Addr returns the bound datagram address.
func (u *UDPTransport) Addr() string { return u.conn.LocalAddr().String() }

// Sender returns the fabric's sender for the local node.
func (u *UDPTransport) Sender() Sender { return BindSender(u, u.self) }

// Stats returns delivery counters. Delivered counts decoded inbound
// datagrams — UDP gives no send-side delivery signal.
func (u *UDPTransport) Stats() Stats {
	return Stats{Sent: u.sent.Load(), Delivered: u.delivered.Load(), Dropped: u.dropped.Load()}
}

// Close stops the read loop and releases the socket.
func (u *UDPTransport) Close() error {
	if !u.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

// Send implements Fabric: one best-effort datagram, no retransmit. A
// frame over the size cap returns ErrOversize, and a peer that has not
// proved its datagram path (see probeByte) returns ErrNoDatagramPath;
// both make FallbackSender route the message over the stream fabric
// instead.
func (u *UDPTransport) Send(ctx context.Context, to NodeID, env Envelope) error {
	u.sent.Add(1)
	if u.closed.Load() {
		u.dropped.Add(1)
		u.wstats.UDPDropped.Inc()
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		u.dropped.Add(1)
		u.wstats.UDPDropped.Inc()
		return err
	}
	dest, err := u.destFor(to)
	if err != nil {
		u.dropped.Add(1)
		u.wstats.UDPDropped.Inc()
		return err
	}
	if !u.pathProven(to) {
		u.probe(to, dest)
		u.dropped.Add(1)
		return fmt.Errorf("%w: peer %v has not acked a probe", ErrNoDatagramPath, to)
	}
	wenv := WireEnvelope{From: env.From, FromAddr: "", To: to, Msg: env.Msg}

	u.mu.Lock()
	buf, err := u.codec.Encode(u.scratch[:0], &wenv)
	if err == nil {
		u.scratch = buf
		if len(buf) > u.maxSize {
			u.mu.Unlock()
			u.dropped.Add(1)
			u.wstats.UDPOversize.Inc()
			return fmt.Errorf("%w: %d > %d bytes", ErrOversize, len(buf), u.maxSize)
		}
		u.wstats.EncodeBytes.Add(uint64(len(buf)))
		_, err = u.conn.WriteToUDP(buf, dest)
	}
	u.mu.Unlock()
	if err != nil {
		u.dropped.Add(1)
		u.wstats.UDPDropped.Inc()
		return fmt.Errorf("%w: %v", ErrDropped, err)
	}
	u.wstats.UDPSent.Inc()
	return nil
}

// destFor resolves and caches the datagram address for a peer.
func (u *UDPTransport) destFor(to NodeID) (*net.UDPAddr, error) {
	raw, ok := u.resolve(to)
	if !ok || raw == "" {
		return nil, ErrUnknownPeer
	}
	u.mu.Lock()
	if d, ok := u.dests[to]; ok && d.raw == raw {
		u.mu.Unlock()
		return d.addr, nil
	}
	u.mu.Unlock()
	addr, err := net.ResolveUDPAddr("udp", raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, err)
	}
	u.mu.Lock()
	u.dests[to] = &udpDest{raw: raw, addr: addr}
	u.mu.Unlock()
	return addr, nil
}

// pathProven reports whether to has acked a probe (or sent us any
// datagram) within the prove TTL.
func (u *UDPTransport) pathProven(to NodeID) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	t, ok := u.proven[to]
	return ok && time.Since(t) < u.proveTTL
}

// markProven records fresh evidence that id's datagram path works.
func (u *UDPTransport) markProven(id NodeID) {
	u.mu.Lock()
	u.proven[id] = time.Now()
	u.mu.Unlock()
}

// probe pokes an unproven peer with a 9-byte probe datagram, at most
// once per probeInterval. A listening peer acks (see readLoop) and the
// path flips to proven; a TCP-only peer ignores it forever.
func (u *UDPTransport) probe(to NodeID, dest *net.UDPAddr) {
	u.mu.Lock()
	if time.Since(u.lastProbe[to]) < probeInterval {
		u.mu.Unlock()
		return
	}
	u.lastProbe[to] = time.Now()
	u.mu.Unlock()
	frame := probeFrame(probeByte, u.self)
	_, _ = u.conn.WriteToUDP(frame[:], dest)
}

func probeFrame(kind byte, id NodeID) [probeLen]byte {
	var frame [probeLen]byte
	frame[0] = kind
	binary.LittleEndian.PutUint64(frame[1:], uint64(id))
	return frame
}

// readLoop decodes one frame per datagram. Truncated, corrupt or
// unknown-version datagrams are dropped silently (counted): the
// control plane is built for loss. Probe datagrams are answered and
// both probe directions mark the sender's path proven — the reply goes
// to the datagram's source address, which by the same-port convention
// is the peer's listener.
func (u *UDPTransport) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, maxUDPRead)
	for {
		n, src, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if u.closed.Load() {
			return
		}
		if n == probeLen && (buf[0] == probeByte || buf[0] == probeAckByte) {
			from := NodeID(binary.LittleEndian.Uint64(buf[1:probeLen]))
			if from != 0 && from != u.self {
				u.markProven(from)
				if buf[0] == probeByte {
					ack := probeFrame(probeAckByte, u.self)
					_, _ = u.conn.WriteToUDP(ack[:], src)
				}
			}
			continue
		}
		env, err := u.codec.Decode(buf[:n])
		if err != nil {
			u.dropped.Add(1)
			u.wstats.UDPDropped.Inc()
			continue
		}
		u.markProven(env.From)
		u.delivered.Add(1)
		u.handler(Envelope{From: env.From, To: env.To, Msg: env.Msg})
	}
}
