package transport

import (
	"math/rand/v2"
	"time"
)

// LatencyModel draws a one-way delivery delay. Implementations must be
// cheap; they run once per simulated message.
type LatencyModel func(rng *rand.Rand) time.Duration

// FixedLatency always returns d.
func FixedLatency(d time.Duration) LatencyModel {
	return func(*rand.Rand) time.Duration { return d }
}

// UniformLatency draws uniformly from [min, max].
func UniformLatency(min, max time.Duration) LatencyModel {
	if max < min {
		min, max = max, min
	}
	span := max - min
	return func(rng *rand.Rand) time.Duration {
		if span == 0 {
			return min
		}
		return min + time.Duration(rng.Int64N(int64(span)+1))
	}
}

// LANLatency approximates a datacenter network: 0.2ms base plus an
// exponential tail with 0.3ms mean, capped at 10ms.
func LANLatency() LatencyModel {
	return func(rng *rand.Rand) time.Duration {
		d := 200*time.Microsecond + time.Duration(rng.ExpFloat64()*float64(300*time.Microsecond))
		if d > 10*time.Millisecond {
			d = 10 * time.Millisecond
		}
		return d
	}
}
