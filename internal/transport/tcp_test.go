package transport

import (
	"context"
	"encoding/gob"
	"sync"
	"testing"
	"time"
)

type tcpTestMsg struct {
	Text string
}

func init() {
	gob.Register(&tcpTestMsg{})
}

// collector gathers delivered envelopes thread-safely.
type collector struct {
	mu   sync.Mutex
	envs []Envelope
	cond chan struct{}
}

func newCollector() *collector {
	return &collector{cond: make(chan struct{}, 64)}
}

func (c *collector) handler(env Envelope) {
	c.mu.Lock()
	c.envs = append(c.envs, env)
	c.mu.Unlock()
	select {
	case c.cond <- struct{}{}:
	default:
	}
}

func (c *collector) waitFor(t *testing.T, n int, timeout time.Duration) []Envelope {
	t.Helper()
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		if len(c.envs) >= n {
			out := make([]Envelope, len(c.envs))
			copy(out, c.envs)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.cond:
		case <-deadline:
			t.Fatalf("timed out waiting for %d envelopes", n)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	colB := newCollector()
	b, err := ListenTCP(2, "127.0.0.1:0", "", TCPConfig{}, colB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	colA := newCollector()
	a, err := ListenTCP(1, "127.0.0.1:0", "", TCPConfig{}, colA.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Learn(2, b.Addr())
	if err := a.Sender().Send(context.Background(), 2, &tcpTestMsg{Text: "over the wire"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	envs := colB.waitFor(t, 1, 5*time.Second)
	if envs[0].From != 1 {
		t.Errorf("From = %v", envs[0].From)
	}
	if m, ok := envs[0].Msg.(*tcpTestMsg); !ok || m.Text != "over the wire" {
		t.Errorf("Msg = %#v", envs[0].Msg)
	}

	// B learned A's address from the inbound stream and can reply
	// without ever having been configured.
	if b.PeerCount() != 1 {
		t.Fatalf("b.PeerCount = %d, want 1", b.PeerCount())
	}
	if err := b.Sender().Send(context.Background(), 1, &tcpTestMsg{Text: "right back"}); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	replies := colA.waitFor(t, 1, 5*time.Second)
	if m := replies[0].Msg.(*tcpTestMsg); m.Text != "right back" {
		t.Errorf("reply = %#v", replies[0].Msg)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", "", TCPConfig{}, func(Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Sender().Send(context.Background(), 9, &tcpTestMsg{}); err == nil {
		t.Error("send to unknown peer succeeded")
	}
	if a.Stats().Dropped != 1 {
		t.Errorf("stats = %+v", a.Stats())
	}
}

func TestTCPDeadPeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", "", TCPConfig{}, func(Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Learn(2, "127.0.0.1:1") // nothing listens there
	if err := a.Sender().Send(context.Background(), 2, &tcpTestMsg{}); err == nil {
		t.Error("send to dead peer succeeded")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", "", TCPConfig{}, func(Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	a.Learn(2, "127.0.0.1:1")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Sender().Send(context.Background(), 2, &tcpTestMsg{}); err == nil {
		t.Error("send after close succeeded")
	}
	// Idempotent close.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPLearnReplacesStaleAddress(t *testing.T) {
	colB := newCollector()
	b, err := ListenTCP(2, "127.0.0.1:0", "", TCPConfig{}, colB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(1, "127.0.0.1:0", "", TCPConfig{}, func(Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Learn(2, "127.0.0.1:1") // stale
	_ = a.Sender().Send(context.Background(), 2, &tcpTestMsg{})
	a.Learn(2, b.Addr()) // corrected by gossip
	if err := a.Sender().Send(context.Background(), 2, &tcpTestMsg{Text: "found you"}); err != nil {
		t.Fatalf("send after re-learn: %v", err)
	}
	colB.waitFor(t, 1, 5*time.Second)
}

func TestTCPConcurrentSends(t *testing.T) {
	colB := newCollector()
	b, err := ListenTCP(2, "127.0.0.1:0", "", TCPConfig{}, colB.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(1, "127.0.0.1:0", "", TCPConfig{}, func(Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Learn(2, b.Addr())

	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/8; j++ {
				_ = a.Sender().Send(context.Background(), 2, &tcpTestMsg{Text: "burst"})
			}
		}()
	}
	wg.Wait()
	colB.waitFor(t, n, 10*time.Second)
}
