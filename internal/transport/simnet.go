package transport

import (
	"context"
	"math/rand/v2"

	"dataflasks/internal/sim"
)

// SimNetwork delivers messages through a discrete-event engine with a
// configurable latency model and loss rate. It is single-threaded by
// construction (everything happens inside engine events) and therefore
// deterministic for a fixed seed.
type SimNetwork struct {
	engine    *sim.Engine
	rng       *rand.Rand
	latency   LatencyModel
	lossRate  float64
	handlers  map[NodeID]func(Envelope)
	down      map[NodeID]bool
	partition func(NodeID) bool // nil when the fabric is whole
	stats     Stats
}

// SimNetworkConfig tunes a simulated fabric.
type SimNetworkConfig struct {
	// Latency draws per-message delays. Defaults to LANLatency.
	Latency LatencyModel
	// LossRate in [0,1) drops messages uniformly at random.
	LossRate float64
	// Seed feeds the fabric's private RNG (latency jitter, loss).
	Seed uint64
}

// NewSimNetwork creates a simulated fabric on the given engine.
func NewSimNetwork(engine *sim.Engine, cfg SimNetworkConfig) *SimNetwork {
	if engine == nil {
		panic("transport: NewSimNetwork requires an engine")
	}
	lat := cfg.Latency
	if lat == nil {
		lat = LANLatency()
	}
	return &SimNetwork{
		engine:   engine,
		rng:      sim.RNG(cfg.Seed, 0xfab),
		latency:  lat,
		lossRate: cfg.LossRate,
		handlers: make(map[NodeID]func(Envelope)),
		down:     make(map[NodeID]bool),
	}
}

// Attach registers a handler for id and returns the node's sender.
// Re-attaching an id (a restarted node) replaces the old handler and
// clears the down flag.
func (n *SimNetwork) Attach(id NodeID, handler func(Envelope)) Sender {
	if handler == nil {
		panic("transport: Attach requires a handler")
	}
	n.handlers[id] = handler
	delete(n.down, id)
	return BindSender(n, id)
}

// Detach marks id permanently gone; queued messages to it are dropped on
// delivery. Used by churn injection to crash nodes.
func (n *SimNetwork) Detach(id NodeID) {
	n.down[id] = true
	delete(n.handlers, id)
}

// SetDown toggles a node's reachability without discarding its handler,
// modelling a transient crash or disconnection.
func (n *SimNetwork) SetDown(id NodeID, down bool) {
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// Partition splits the fabric: messages between the inA side and the
// rest are dropped until the returned heal function runs. Installing a
// new partition replaces the previous one.
func (n *SimNetwork) Partition(inA func(NodeID) bool) (heal func()) {
	n.partition = inA
	return func() { n.partition = nil }
}

// Stats returns fabric-level delivery counters.
func (n *SimNetwork) Stats() Stats { return n.stats }

// Send implements Fabric. The simulation is single-threaded and
// deterministic, so ctx is accounting-only: a cancelled ctx drops the
// message, nothing ever blocks.
func (n *SimNetwork) Send(ctx context.Context, to NodeID, env Envelope) error {
	from := env.From
	n.stats.Sent++
	if err := ctx.Err(); err != nil {
		n.stats.Dropped++
		return err
	}
	if n.down[from] {
		// A crashed node's in-flight callbacks may still try to send.
		n.stats.Dropped++
		return ErrPeerDown
	}
	if n.partition != nil && n.partition(from) != n.partition(to) {
		n.stats.Dropped++
		return ErrDropped
	}
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		n.stats.Dropped++
		return ErrDropped
	}
	if _, ok := n.handlers[to]; !ok {
		n.stats.Dropped++
		return ErrUnknownPeer
	}
	env.To = to
	delay := n.latency(n.rng)
	n.engine.Schedule(delay, func() {
		h, ok := n.handlers[to]
		if !ok || n.down[to] {
			n.stats.Dropped++
			return
		}
		n.stats.Delivered++
		h(env)
	})
	return nil
}
