// Package workload is the YCSB substitute used by the evaluation
// harness: it generates keyed operations with the same key-choosers
// (uniform, zipfian, latest) and operation mixes (workloads A/B/C plus
// the write-only mix the paper's §VI experiments use) as the original
// benchmark, against the DataFlasks API instead of a Java client.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dataflasks/internal/hashmix"
)

// OpKind is one generated operation's type.
type OpKind int

// Operation kinds.
const (
	OpInsert OpKind = iota + 1
	OpUpdate
	OpRead
)

// String names the op kind like YCSB's output.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpRead:
		return "READ"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  string
	// Value is nil for reads.
	Value []byte
}

// Mix is an operation mix; proportions must sum to 1.
type Mix struct {
	Read   float64
	Update float64
	Insert float64
}

// The standard mixes.
var (
	// WriteOnly is the mix of the paper's §VI experiments.
	WriteOnly = Mix{Insert: 1}
	// MixA is YCSB workload A: 50/50 read/update.
	MixA = Mix{Read: 0.5, Update: 0.5}
	// MixB is YCSB workload B: 95/5 read/update.
	MixB = Mix{Read: 0.95, Update: 0.05}
	// MixC is YCSB workload C: read only.
	MixC = Mix{Read: 1}
)

// Config tunes a generator.
type Config struct {
	// Records is the key-space size preloaded/inserted ("recordcount").
	Records int
	// ValueSize is the object payload size in bytes (default 100,
	// mirroring YCSB's 10×100B fields scaled down for simulation).
	ValueSize int
	// Mix is the operation mix (default WriteOnly).
	Mix Mix
	// Chooser picks keys for reads/updates (default Uniform).
	Chooser Chooser
	// Seed feeds the generator's RNG.
	Seed uint64
}

// Generator produces a deterministic operation stream. Not safe for
// concurrent use.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	inserted int
}

// NewGenerator validates cfg and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("workload: Records must be positive, got %d", cfg.Records)
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = WriteOnly
	}
	sum := cfg.Mix.Read + cfg.Mix.Update + cfg.Mix.Insert
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("workload: mix proportions sum to %v, want 1", sum)
	}
	if cfg.Chooser == nil {
		cfg.Chooser = NewUniform(cfg.Records)
	}
	return &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x79c5)),
	}, nil
}

// Key formats record i as a YCSB-style key.
func Key(i int) string { return fmt.Sprintf("user%08d", i) }

// Next produces the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	switch {
	case r < g.cfg.Mix.Insert:
		key := Key(g.inserted % g.cfg.Records)
		g.inserted++
		return Op{Kind: OpInsert, Key: key, Value: g.value()}
	case r < g.cfg.Mix.Insert+g.cfg.Mix.Update:
		return Op{Kind: OpUpdate, Key: g.chooseKey(), Value: g.value()}
	default:
		return Op{Kind: OpRead, Key: g.chooseKey()}
	}
}

// Inserted returns how many inserts were generated.
func (g *Generator) Inserted() int { return g.inserted }

func (g *Generator) chooseKey() string {
	// Reads/updates over inserted records when any exist, else over the
	// whole preload space.
	limit := g.inserted
	if limit <= 0 || limit > g.cfg.Records {
		limit = g.cfg.Records
	}
	idx := g.cfg.Chooser.Next(g.rng)
	return Key(idx % limit)
}

func (g *Generator) value() []byte {
	buf := make([]byte, g.cfg.ValueSize)
	for i := range buf {
		buf[i] = byte('a' + g.rng.IntN(26))
	}
	return buf
}

// Chooser picks record indices in [0, Records).
type Chooser interface {
	Next(rng *rand.Rand) int
}

// Uniform picks uniformly.
type Uniform struct{ n int }

// NewUniform creates a uniform chooser over n records.
func NewUniform(n int) *Uniform {
	if n <= 0 {
		n = 1
	}
	return &Uniform{n: n}
}

// Next implements Chooser.
func (u *Uniform) Next(rng *rand.Rand) int { return rng.IntN(u.n) }

// Zipfian is YCSB's scrambled zipfian chooser (Gray et al.'s
// algorithm): item popularity follows a zipf law with exponent theta,
// and ranks are hashed so hot keys spread across the key space.
type Zipfian struct {
	n     int
	theta float64

	alpha, zetan, eta, zeta2 float64
}

// NewZipfian creates a zipfian chooser over n records with the YCSB
// default skew (theta = 0.99).
func NewZipfian(n int, theta float64) *Zipfian {
	if n <= 0 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// nextRank draws a popularity rank (0 = most popular), unscrambled.
func (z *Zipfian) nextRank(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// Next implements Chooser.
func (z *Zipfian) Next(rng *rand.Rand) int {
	// Scramble so popular items are spread over the key space (YCSB's
	// "scrambled zipfian").
	return int(hashmix.HashUint64(uint64(z.nextRank(rng))) % uint64(z.n))
}

// Latest skews toward recently inserted records (YCSB's "latest"
// distribution): zipfian over recency.
type Latest struct {
	z        *Zipfian
	inserted func() int
}

// NewLatest creates a latest-skewed chooser; inserted reports the
// current insert count.
func NewLatest(n int, inserted func() int) *Latest {
	if inserted == nil {
		panic("workload: NewLatest requires an inserted func")
	}
	return &Latest{z: NewZipfian(n, 0.99), inserted: inserted}
}

// Next implements Chooser. The offset from the newest record follows
// the UNSCRAMBLED zipf law: rank 0 = the most recent insert (YCSB's
// SkewedLatest semantics).
func (l *Latest) Next(rng *rand.Rand) int {
	limit := l.inserted()
	if limit <= 0 {
		return 0
	}
	off := l.z.nextRank(rng)
	idx := limit - 1 - off%limit
	if idx < 0 {
		idx = 0
	}
	return idx
}
