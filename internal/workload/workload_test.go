package workload

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Records: 0}); err == nil {
		t.Error("Records=0 accepted")
	}
	if _, err := NewGenerator(Config{Records: 10, Mix: Mix{Read: 0.5}}); err == nil {
		t.Error("mix summing to 0.5 accepted")
	}
	if _, err := NewGenerator(Config{Records: 10}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestWriteOnlyMix(t *testing.T) {
	g, err := NewGenerator(Config{Records: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		op := g.Next()
		if op.Kind != OpInsert {
			t.Fatalf("write-only produced %v", op.Kind)
		}
		if op.Value == nil {
			t.Fatal("insert without value")
		}
	}
	if g.Inserted() != 200 {
		t.Errorf("Inserted = %d", g.Inserted())
	}
}

func TestMixProportions(t *testing.T) {
	g, err := NewGenerator(Config{Records: 100, Mix: MixB, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	const total = 10000
	for i := 0; i < total; i++ {
		counts[g.Next().Kind]++
	}
	reads := float64(counts[OpRead]) / total
	if reads < 0.93 || reads > 0.97 {
		t.Errorf("workload B reads = %.3f, want ~0.95", reads)
	}
	if counts[OpInsert] != 0 {
		t.Errorf("workload B produced %d inserts", counts[OpInsert])
	}
}

func TestValuesSized(t *testing.T) {
	g, _ := NewGenerator(Config{Records: 10, ValueSize: 37, Seed: 3})
	if op := g.Next(); len(op.Value) != 37 {
		t.Errorf("value size = %d", len(op.Value))
	}
}

func TestKeysDeterministicFormat(t *testing.T) {
	if Key(42) != "user00000042" {
		t.Errorf("Key(42) = %q", Key(42))
	}
	if !strings.HasPrefix(Key(0), "user") {
		t.Errorf("Key(0) = %q", Key(0))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	run := func() []string {
		g, _ := NewGenerator(Config{Records: 50, Mix: MixA, Seed: 9})
		var keys []string
		for i := 0; i < 100; i++ {
			keys = append(keys, g.Next().Key)
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestUniformChooserBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	u := NewUniform(10)
	prop := func(uint8) bool {
		v := u.Next(rng)
		return v >= 0 && v < 10
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfianBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	z := NewZipfian(1000, 0.99)
	for i := 0; i < 10000; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	const n = 1000
	z := NewZipfian(n, 0.99)
	counts := make(map[int]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[z.Next(rng)]++
	}
	// The hottest key must be far above uniform (50 draws/key).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 500 {
		t.Errorf("hottest key drawn %d times; distribution not skewed", max)
	}
	// But hot keys must be scrambled across the space, not all at 0.
	if counts[0] == max && counts[1] > max/2 {
		t.Error("hot keys not scrambled")
	}
}

func TestLatestChooserPrefersRecent(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	inserted := 1000
	l := NewLatest(1000, func() int { return inserted })
	recent := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		v := l.Next(rng)
		if v < 0 || v >= inserted {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= inserted-100 {
			recent++
		}
	}
	// The newest 10% of keys should receive well over 10% of draws.
	if float64(recent)/draws < 0.3 {
		t.Errorf("recent keys drew only %.1f%%", 100*float64(recent)/draws)
	}
}

func TestLatestChooserEmpty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	l := NewLatest(10, func() int { return 0 })
	if v := l.Next(rng); v != 0 {
		t.Errorf("empty latest = %d", v)
	}
}

func TestReadsTargetInsertedKeys(t *testing.T) {
	g, _ := NewGenerator(Config{Records: 1000, Mix: Mix{Insert: 0.5, Read: 0.5}, Seed: 6})
	for i := 0; i < 500; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		// Keys must be inside the already-inserted range (or the full
		// preload space before any insert).
		if g.Inserted() > 0 && op.Key >= Key(g.Inserted()) && op.Key < Key(1000) {
			t.Fatalf("read %q beyond inserted prefix %d", op.Key, g.Inserted())
		}
	}
}

func TestOpKindString(t *testing.T) {
	for kind, want := range map[OpKind]string{OpInsert: "INSERT", OpUpdate: "UPDATE", OpRead: "READ"} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", kind, kind.String())
		}
	}
	if !strings.Contains(OpKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}
