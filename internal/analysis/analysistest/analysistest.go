// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	_ = send.Send(ctx, to, msg) // want `discards the send error`
//
// A want comment holds one or more quoted regexps; each must be
// matched by a distinct diagnostic on that line, and every diagnostic
// must match a want. Fixtures live under testdata/src/<pkg>/ and are
// parsed with the same loader as real runs, so what the loader
// excludes (_test.go, generated files) is also invisible here — which
// is exactly how the exclusion rules get tested: seed a violation in
// an excluded file with no want comment and assert silence.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dataflasks/internal/analysis"
)

// wantRx matches the comment payload: `want "re"` or want `re`, with
// any number of backquoted or double-quoted expectations.
var wantRx = regexp.MustCompile("^(?:/[/*] )?want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var expRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// Run loads testdata/src/<pkg> for each named pkg into one program
// (so cross-package analyzers see all of them), applies a, and
// reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	dirs := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		dirs[p] = filepath.Join(testdata, "src", filepath.FromSlash(p))
	}
	prog, err := analysis.LoadDirs(testdata, dirs)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(prog.Pkgs) == 0 {
		t.Fatalf("no fixture packages loaded from %s", testdata)
	}

	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for i, f := range pkg.Files {
			ws, err := collectWants(prog, f, pkg.Filenames[i])
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	findings, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", filepath.Base(f.Pos.Filename), f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.rx)
		}
	}
}

// claim marks the first unhit expectation on the finding's line whose
// regexp matches.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants extracts every want expectation from one parsed file.
func collectWants(prog *analysis.Program, f *ast.File, filename string) ([]*expectation, error) {
	var out []*expectation
	for _, group := range f.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " "))
			m := wantRx.FindStringSubmatch("// " + text)
			if m == nil {
				if strings.HasPrefix(text, "want ") {
					return nil, fmt.Errorf("%s: malformed want comment: %s", filepath.Base(filename), c.Text)
				}
				continue
			}
			line := prog.Fset.Position(c.Pos()).Line
			for _, quoted := range expRx.FindAllString(m[1], -1) {
				var pat string
				if quoted[0] == '`' {
					pat = quoted[1 : len(quoted)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %v", filepath.Base(filename), line, quoted, err)
					}
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", filepath.Base(filename), line, pat, err)
				}
				out = append(out, &expectation{file: filename, line: line, rx: rx})
			}
		}
	}
	return out, nil
}
