// Package core is a wiretable fixture: protocol code sending one
// registered and one unregistered message type.
package core

import "context"

type sender interface {
	Send(ctx context.Context, to uint64, msg interface{}) error
}

type Registered struct{}

type Rogue struct{}

func emit(ctx context.Context, out sender) {
	if err := out.Send(ctx, 1, &Registered{}); err != nil { // ok: in the fixture table
		_ = err
	}
	msg := &Rogue{}
	if err := out.Send(ctx, 1, msg); err != nil { // want `message core.Rogue sent over the fabric but not registered in wire.Messages`
		_ = err
	}
	var opaque interface{} = msg
	if err := out.Send(ctx, 1, opaque); err != nil { // ok: untraceable, conservatively silent
		_ = err
	}
}
