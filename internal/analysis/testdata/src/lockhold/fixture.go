// Package store is a lockhold fixture: blocking work while a mutex is
// held.
package store

import (
	"context"
	"os"
	"sync"
	"time"
)

type sender interface {
	Send(ctx context.Context, to uint64, msg interface{}) error
}

type file interface {
	Sync() error
}

type state struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	f   file
	out sender
}

func (s *state) fsyncUnderLock() {
	s.mu.Lock()
	_ = s.f.Sync() // want `fsync \(.Sync\(\)\) while a mutex is held`
	s.mu.Unlock()
	_ = s.f.Sync() // ok: released
}

func (s *state) deferredHold(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while a mutex is held`
	_ = s.out.Send(ctx, 1, "m")  // want `fabric Send while a mutex is held`
	_, _ = os.Create("x")        // want `os.Create does file I/O while a mutex is held`
}

func (s *state) readLock() {
	s.rw.RLock()
	_, _ = os.ReadFile("x") // want `os.ReadFile does file I/O while a mutex is held`
	s.rw.RUnlock()
}

func (s *state) annotated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.f.Sync() //flasks:lockhold-ok fixture: ordering is the invariant here
}

func (s *state) funcLitRunsLater() {
	s.mu.Lock()
	go func() {
		_ = s.f.Sync() // ok: executes after the unlock below
	}()
	s.mu.Unlock()
}

func (s *state) distinctLocks(ctx context.Context) {
	s.mu.Lock()
	s.mu.Unlock()
	_ = s.out.Send(ctx, 1, "m") // ok: nothing held
}
