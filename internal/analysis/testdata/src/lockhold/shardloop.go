// Shard-router fixture: the route-view pattern. A router that sends on
// the fabric or sleeps while holding the view mutex serializes every
// shard behind one lock — the contention the snapshot-publish design
// exists to avoid. The clean pattern is copy-under-lock, act-after.
package store

import (
	"context"
	"sync"
	"time"
)

type routeState struct {
	mu    sync.RWMutex
	view  []uint64
	wire  sender
	ticks chan struct{}
}

func (r *routeState) sendUnderViewLock(ctx context.Context) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_ = r.wire.Send(ctx, r.view[0], "digest") // want `fabric Send while a mutex is held`
}

func (r *routeState) sleepUnderViewLock() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while a mutex is held`
	r.view = r.view[:0]
	r.mu.Unlock()
}

func (r *routeState) snapshotThenSend(ctx context.Context) {
	r.mu.RLock()
	snap := make([]uint64, len(r.view))
	copy(snap, r.view)
	r.mu.RUnlock()
	for _, to := range snap {
		_ = r.wire.Send(ctx, to, "digest") // ok: lock released before the wire
	}
}

func (r *routeState) funcLitDefersWork() {
	r.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond) // ok: the shard goroutine runs after the unlock
		<-r.ticks
	}()
	r.mu.Unlock()
}
