// Package transport is a ctxsend fixture for scoping: fabric
// implementations construct contexts legitimately, so nothing here is
// a finding despite matching the violation patterns.
package transport

import "context"

type fabric interface {
	Send(ctx context.Context, to uint64, msg interface{}) error
}

func probe(f fabric) {
	_ = f.Send(context.Background(), 1, "probe")
}
