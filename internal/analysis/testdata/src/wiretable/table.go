// Package wire is a wiretable fixture: a message table seeded with a
// kind collision, a zero kind, a missing codec, a Name/New mismatch
// and a missing golden frame.
package wire

type Plane int

const ControlPlane Plane = 1

type reader struct{}

type Spec struct {
	Kind  uint16
	Name  string
	Plane Plane
	New   func() interface{}
	enc   func(b []byte, msg interface{}) []byte
	dec   func(r *reader) interface{}
}

type Ping struct{}
type Pong struct{}
type Zero struct{}
type Stray struct{}
type NoCodec struct{}
type NoGolden struct{}

var Messages = []Spec{
	{Kind: 1, Name: "wire.Ping", Plane: ControlPlane,
		New: func() interface{} { return &Ping{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &Ping{} },
	},
	{Kind: 1, Name: "wire.Pong", Plane: ControlPlane, // want `wire.Pong reuses kind 1, already taken by wire.Ping`
		New: func() interface{} { return &Pong{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &Pong{} },
	},
	{Kind: 0, Name: "wire.Zero", Plane: ControlPlane, // want `wire.Zero has kind 0, the reserved invalid kind`
		New: func() interface{} { return new(Zero) }, // new(T) form resolves like &T{}
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return nil },
	},
	{Kind: 3, Name: "wire.NoCodec", Plane: ControlPlane, // want `wire.NoCodec has no binary field codec`
		New: func() interface{} { return &NoCodec{} },
	},
	{Kind: 4, Name: "wire.Mismatch", Plane: ControlPlane, // want `wire.Mismatch constructs wire.Stray; Name and New disagree`
		New: func() interface{} { return &Stray{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &Stray{} },
	},
	{Kind: 5, Name: "wire.NoGolden", Plane: ControlPlane, // want `wire.NoGolden has no golden frame`
		New: func() interface{} { return &NoGolden{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &NoGolden{} },
	},
	{Kind: 6, Name: "core.Registered", Plane: ControlPlane,
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return nil },
	},
}
