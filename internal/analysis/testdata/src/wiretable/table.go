// Package wire is a wiretable fixture: a message table seeded with a
// kind collision, a zero kind, a missing codec, a Name/New mismatch
// and a missing golden frame.
package wire

type Plane int

const ControlPlane Plane = 1

type reader struct{}

type Spec struct {
	Kind  uint16
	Name  string
	Plane Plane
	New   func() interface{}
	enc   func(b []byte, msg interface{}) []byte
	dec   func(r *reader) interface{}
}

type Ping struct{}
type Pong struct{}
type Zero struct{}
type Stray struct{}
type NoCodec struct{}
type NoGolden struct{}
type SegManifest struct{}
type SegChunk struct{}
type SegCollide struct{}

var Messages = []Spec{
	{Kind: 1, Name: "wire.Ping", Plane: ControlPlane,
		New: func() interface{} { return &Ping{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &Ping{} },
	},
	{Kind: 1, Name: "wire.Pong", Plane: ControlPlane, // want `wire.Pong reuses kind 1, already taken by wire.Ping`
		New: func() interface{} { return &Pong{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &Pong{} },
	},
	{Kind: 0, Name: "wire.Zero", Plane: ControlPlane, // want `wire.Zero has kind 0, the reserved invalid kind`
		New: func() interface{} { return new(Zero) }, // new(T) form resolves like &T{}
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return nil },
	},
	{Kind: 3, Name: "wire.NoCodec", Plane: ControlPlane, // want `wire.NoCodec has no binary field codec`
		New: func() interface{} { return &NoCodec{} },
	},
	{Kind: 4, Name: "wire.Mismatch", Plane: ControlPlane, // want `wire.Mismatch constructs wire.Stray; Name and New disagree`
		New: func() interface{} { return &Stray{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &Stray{} },
	},
	{Kind: 5, Name: "wire.NoGolden", Plane: ControlPlane, // want `wire.NoGolden has no golden frame`
		New: func() interface{} { return &NoGolden{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &NoGolden{} },
	},
	{Kind: 6, Name: "core.Registered", Plane: ControlPlane,
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return nil },
	},
	// The segment-streaming block mirrors the real table's kinds 30+:
	// two clean specs, then a new message grabbing an already-assigned
	// segment kind — the exact mistake the pass exists to catch when
	// the bulk-transfer range grows.
	{Kind: 30, Name: "wire.SegManifest", Plane: ControlPlane,
		New: func() interface{} { return &SegManifest{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &SegManifest{} },
	},
	{Kind: 31, Name: "wire.SegChunk", Plane: ControlPlane,
		New: func() interface{} { return &SegChunk{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &SegChunk{} },
	},
	{Kind: 30, Name: "wire.SegCollide", Plane: ControlPlane, // want `wire.SegCollide reuses kind 30, already taken by wire.SegManifest`
		New: func() interface{} { return &SegCollide{} },
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return &SegCollide{} },
	},
	// Registered on behalf of the bootstrap fixture package (its send
	// sites resolve to "bootstrap.SegFetch"); declared New-less like
	// core.Registered since fixtures do not import each other.
	{Kind: 32, Name: "bootstrap.SegFetch", Plane: ControlPlane,
		enc: func(b []byte, msg interface{}) []byte { return b },
		dec: func(r *reader) interface{} { return nil },
	},
}
