package aggregate

import "context"

// Violations here carry no want comments: _test.go files are outside
// the loader's view, so reporting anything fails the test.
func testOnlyViolation(out sender) {
	_ = out.Send(context.Background(), 1, "m")
}
