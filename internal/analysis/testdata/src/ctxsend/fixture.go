// Package aggregate is a ctxsend fixture: an in-scope protocol
// package exercising both rules and the fire-and-forget waiver.
package aggregate

import (
	"context"
)

type sender interface {
	Send(ctx context.Context, to uint64, msg interface{}) error
}

type proto struct {
	out   sender
	onErr func(error)
}

func (p *proto) tick(ctx context.Context) {
	_ = p.out.Send(context.Background(), 1, "m") // want `fabricates context.Background` `discarded with _ =`
	_ = p.out.Send(context.TODO(), 1, "m")       // want `fabricates context.TODO` `discarded with _ =`
	p.out.Send(ctx, 1, "m")                      // want `result ignored`

	if err := p.out.Send(ctx, 1, "m"); err != nil { // ok: ctx threaded, error handled
		p.onErr(err)
	}

	//flasks:fire-and-forget fixture: waiver on the line above
	_ = p.out.Send(context.Background(), 1, "m")
	_ = p.out.Send(context.Background(), 1, "m") //flasks:fire-and-forget trailing waiver
}
