// Package bootstrap is a wiretable fixture: the segment-streaming
// protocol package is in the analyzer's send scope, so any message it
// puts on the fabric must be registered in the wire table.
package bootstrap

import "context"

type sender interface {
	Send(ctx context.Context, to uint64, msg interface{}) error
}

// SegFetch mirrors a registered segment message (fixture table, kind
// 32); Probe is a new message someone forgot to register.
type SegFetch struct {
	Segment uint64
	Offset  int64
}

type Probe struct{}

func fetch(ctx context.Context, out sender) {
	if err := out.Send(ctx, 1, &SegFetch{Segment: 3}); err != nil { // ok: in the fixture table
		_ = err
	}
	req := &Probe{}
	if err := out.Send(ctx, 1, req); err != nil { // want `message bootstrap.Probe sent over the fabric but not registered in wire.Messages`
		_ = err
	}
}
