// Shard-loop fixture: the data-plane shard goroutines live in package
// core too, and a shard loop that sleeps or blocks on a channel send
// stalls every key hashed to that shard — the same latency rule as the
// control event loop, multiplied by partitioning.
package core

import "time"

type shardFixture struct {
	mailbox  chan int
	coalesce chan int
	stop     chan struct{}
}

func (s *shardFixture) runShardLoop() {
	for {
		select {
		case m := <-s.mailbox:
			s.coalesce <- m              // want `bare channel send`
			time.Sleep(time.Microsecond) // want `time.Sleep stalls the core event loop`
		case <-s.stop:
			return
		}
	}
}

func (s *shardFixture) dispatchNonBlocking(m int) bool {
	select {
	case s.mailbox <- m: // ok: overflow drops instead of blocking the router
		return true
	default:
		return false
	}
}

func (s *shardFixture) drainWaiver() {
	//flasks:noblock-ok drain: StopShards hands the final flush to the store on purpose
	s.coalesce <- 0
}
