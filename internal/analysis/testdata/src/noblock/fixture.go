// Package core is a noblock fixture: the event-loop package must not
// sleep, do I/O, or block on channel sends.
package core

import (
	"net"
	"os"
	"time"
)

type syncer interface {
	Sync() error
}

func handler(ch chan int, done chan struct{}, f syncer) {
	time.Sleep(time.Millisecond) // want `time.Sleep stalls the core event loop`
	_ = f.Sync()                 // want `fsync`
	_, _ = net.Dial("tcp", "x")  // want `net.Dial`
	_, _ = os.Create("x")        // want `os.Create`
	_ = os.Getpid()              // ok: not file I/O

	ch <- 1 // want `bare channel send`

	select {
	case ch <- 2: // ok: the default clause makes this non-blocking
	default:
	}

	select {
	case ch <- 3: // want `bare channel send`
	case <-done:
	}

	//flasks:noblock-ok fixture: waiver on the line above
	ch <- 4
	_ = f.Sync() //flasks:noblock-ok trailing waiver
}
