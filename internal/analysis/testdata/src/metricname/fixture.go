// Package metrics is a metricname fixture: a Counter enum with a
// duplicate name, an undocumented name, and a counter missing from the
// table.
package metrics

type Counter int

const (
	MsgSent Counter = iota
	MsgRecv
	Undocumented
	Orphan // want `counter Orphan has no entry in counterNames`

	numCounters
)

var counterNames = [...]string{
	MsgSent:      "msg_sent",
	MsgRecv:      "msg_sent",             // want `counter name "msg_sent" registered twice \(MsgSent and MsgRecv\)`
	Undocumented: "undocumented_counter", // want `counter name "undocumented_counter" appears in no status-line documentation`
}

// metricNames mirrors the observability plane's /metrics family
// inventory: index-less string elements, each of which must be unique
// and documented.
var metricNames = [...]string{
	"flasks_documented_family_total",
	"flasks_documented_family_total", // want `metric family "flasks_documented_family_total" registered twice in metricNames`
	"flasks_ghost_family",            // want `metric family "flasks_ghost_family" appears in no metrics documentation`
	"",                               // want `metric family with an empty name in metricNames`
}
