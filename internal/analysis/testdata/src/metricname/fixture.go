// Package metrics is a metricname fixture: a Counter enum with a
// duplicate name, an undocumented name, and a counter missing from the
// table.
package metrics

type Counter int

const (
	MsgSent Counter = iota
	MsgRecv
	Undocumented
	Orphan // want `counter Orphan has no entry in counterNames`

	numCounters
)

var counterNames = [...]string{
	MsgSent:      "msg_sent",
	MsgRecv:      "msg_sent",             // want `counter name "msg_sent" registered twice \(MsgSent and MsgRecv\)`
	Undocumented: "undocumented_counter", // want `counter name "undocumented_counter" appears in no status-line documentation`
}
