// Package analysis is a small, dependency-free analysis framework in
// the shape of golang.org/x/tools/go/analysis: an Analyzer inspects
// the parsed syntax of one package through a Pass and reports
// Diagnostics. The repo's invariant checkers under
// internal/analysis/passes build on it and cmd/flaskscheck drives them
// as a multichecker.
//
// The framework is deliberately syntactic — packages are parsed, not
// type-checked — so it runs offline with no module downloads. Analyzers
// resolve package qualifiers through each file's import table (see
// Imports) instead of go/types, which is exact for the selector-based
// patterns the checkers care about (context.Background, time.Sleep,
// mutex method sets).
//
// Deliberate violations are waived in source with a marker comment on
// the offending line or the line above:
//
//	//flasks:fire-and-forget <rationale>
//
// Each analyzer documents which marker it honors; Pass.Annotated does
// the lookup.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer names one invariant check. Run is invoked once per
// loaded package with a fresh Pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and on the
	// flaskscheck command line.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass.Pkg and reports violations via pass.Report
	// or pass.Reportf. A returned error aborts the whole run (reserve
	// it for broken inputs, not findings).
	Run func(pass *Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Package is the parsed syntax of one directory's package.
type Package struct {
	// Name is the package clause name ("core", "main", ...).
	Name string
	// Path is the import path ("dataflasks/internal/core"); fixture
	// packages loaded outside a module use their directory name.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files holds one parsed file per non-test, non-generated .go
	// file, parallel to Filenames.
	Files []*ast.File
	// Filenames holds the absolute path of each entry in Files.
	Filenames []string

	// annotations maps filename → line → flasks marker names present
	// on that line ("fire-and-forget" for //flasks:fire-and-forget).
	annotations map[string]map[int][]string
}

// A Program is a set of packages loaded together, sharing one FileSet.
// Analyzers that need cross-package context (wiretable's sent-type
// scan) reach sibling packages through Pass.Program.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// RootDir is the directory patterns were resolved against — the
	// module root for LoadPackages, the explicit root for LoadDirs.
	// Analyzers resolve repo-relative side inputs (golden files, docs)
	// against it.
	RootDir string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Program  *Program

	diags []Diagnostic
}

// Report records a violation.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records a violation with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Annotated reports whether a //flasks:name marker waives the line
// holding pos. The marker counts on the same line (trailing comment)
// or the line directly above (own-line comment).
func (p *Pass) Annotated(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	byLine := p.Pkg.annotations[position.Filename]
	for _, line := range [2]int{position.Line, position.Line - 1} {
		for _, marker := range byLine[line] {
			if marker == name {
				return true
			}
		}
	}
	return false
}

// A Finding is one diagnostic resolved to a position, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the finding the way go vet does, with the analyzer
// name tagged: "path:line:col: [analyzer] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package of prog and returns the
// findings sorted by file, line and column.
func Run(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs {
			pass := &Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Program: prog}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				out = append(out, Finding{Analyzer: a.Name, Pos: prog.Fset.Position(d.Pos), Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Imports returns a file's import table: local qualifier → import
// path. Unnamed imports map under the path's last element, following
// the universal Go convention that the package name matches it (true
// for the stdlib and for every package in this module). Blank and dot
// imports are skipped — the checkers' selector patterns cannot see
// through them anyway.
func Imports(f *ast.File) map[string]string {
	m := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			local = path[i+1:]
		}
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == "_" || local == "." {
			continue
		}
		m[local] = path
	}
	return m
}

// IsPkgFunc reports whether call is qualified-call pkgPath.name —
// e.g. IsPkgFunc(imports, call, "context", "Background") matches
// context.Background() under whatever local name the file imports
// "context" as.
func IsPkgFunc(imports map[string]string, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && imports[id.Name] == pkgPath
}

// MethodName returns the bare method name of a call through a
// selector ("Send" for x.y.Send(...)), or "" for plain function
// calls. Qualified package calls look identical syntactically, so
// callers that must exclude them check IsPkgFunc first or inspect the
// receiver expression.
func MethodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// flasksMarker extracts the marker name from one comment line, or "".
// "//flasks:fire-and-forget — acks drive retries" → "fire-and-forget".
func flasksMarker(text string) string {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "//flasks:")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// collectAnnotations indexes every //flasks: marker in f by line.
func collectAnnotations(fset *token.FileSet, f *ast.File, into map[string]map[int][]string) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			marker := flasksMarker(c.Text)
			if marker == "" {
				continue
			}
			pos := fset.Position(c.Pos())
			byLine := into[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]string)
				into[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], marker)
		}
	}
}
