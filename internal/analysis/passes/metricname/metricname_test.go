package metricname_test

import (
	"path/filepath"
	"testing"

	"dataflasks/internal/analysis/analysistest"
	"dataflasks/internal/analysis/passes/metricname"
)

func TestMetricname(t *testing.T) {
	// Point the documentation requirement at the fixture doc (which
	// documents msg_sent but not undocumented_counter).
	old := metricname.DocFiles
	metricname.DocFiles = []string{"docs.md"}
	defer func() { metricname.DocFiles = old }()
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), metricname.Analyzer, "metricname")
}
