// Package metricname keeps the metrics counter namespace honest: every
// Counter constant has exactly one snake_case name in the counterNames
// table, no two counters share a name, and every name is documented
// where operators look for it (the README and architecture docs that
// explain the flasksd status line). An undocumented counter is a dial
// nobody can find; a missing table entry makes Counter.String() render
// the empty string in every experiment report.
//
// The pass triggers on the package declaring
// `var counterNames = [...]string{...}` keyed by Counter constants. It
// cross-references the Counter const block (the typed-iota enum ending
// in an unexported sentinel) and greps DocFiles — resolved against the
// module root — for each name.
//
// It applies the same discipline to the observability plane: a package
// declaring `var metricNames = [...]string{...}` with plain string
// elements (internal/obs' /metrics family inventory) must name every
// family exactly once and have each documented in DocFiles, so a
// family added to /metrics without a row in the docs table fails CI.
package metricname

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dataflasks/internal/analysis"
)

// DocFiles are the module-root-relative documents every counter name
// must appear in (at least one of them). A var, not a const, so the
// fixture tests can point it at fixture docs.
var DocFiles = []string{"README.md", "docs/ARCHITECTURE.md"}

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "every metrics counter name is registered exactly once and documented",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	table, tablePos := findNames(pass.Pkg)
	families, famPos := findFamilies(pass.Pkg)
	if table == nil && families == nil {
		return nil
	}
	docs, missingDocs := loadDocs(pass.Program.RootDir)
	reportAt := tablePos
	if reportAt == token.NoPos {
		reportAt = famPos
	}
	for _, path := range missingDocs {
		pass.Reportf(reportAt, "counter documentation file %s is unreadable", path)
	}

	if table != nil {
		consts := counterConsts(pass.Pkg)
		seen := map[string]string{} // name → counter const that claimed it
		keyed := map[string]bool{}  // counter consts present in the table
		for _, e := range table {
			keyed[e.key] = true
			if e.name == "" {
				pass.Reportf(e.pos, "counter %s has an empty name", e.key)
				continue
			}
			if prev, dup := seen[e.name]; dup {
				pass.Reportf(e.pos, "counter name %q registered twice (%s and %s)", e.name, prev, e.key)
			} else {
				seen[e.name] = e.key
			}
			if len(docs) > 0 && !documented(docs, e.name) {
				pass.Reportf(e.pos, "counter name %q appears in no status-line documentation (%s)", e.name, strings.Join(DocFiles, ", "))
			}
		}
		for _, c := range consts {
			if !keyed[c.name] {
				pass.Reportf(c.pos, "counter %s has no entry in counterNames; Counter.String() would render \"\"", c.name)
			}
		}
	}

	seenFam := map[string]bool{}
	for _, e := range families {
		if e.name == "" {
			pass.Reportf(e.pos, "metric family with an empty name in metricNames")
			continue
		}
		if seenFam[e.name] {
			pass.Reportf(e.pos, "metric family %q registered twice in metricNames", e.name)
		} else {
			seenFam[e.name] = true
		}
		if len(docs) > 0 && !documented(docs, e.name) {
			pass.Reportf(e.pos, "metric family %q appears in no metrics documentation (%s)", e.name, strings.Join(DocFiles, ", "))
		}
	}
	return nil
}

type entry struct {
	pos  token.Pos
	key  string // Counter const ident
	name string // snake_case string value
}

type counterConst struct {
	pos  token.Pos
	name string
}

// findNames parses `var counterNames = [...]string{Key: "name", ...}`.
func findNames(pkg *analysis.Package) ([]entry, token.Pos) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, s := range gen.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "counterNames" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				var entries []entry
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					e := entry{pos: kv.Pos(), key: key.Name}
					if bl, ok := kv.Value.(*ast.BasicLit); ok && bl.Kind == token.STRING {
						e.name, _ = strconv.Unquote(bl.Value)
					}
					entries = append(entries, e)
				}
				return entries, vs.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// findFamilies parses `var metricNames = [...]string{"name", ...}` —
// the observability plane's index-less family inventory.
func findFamilies(pkg *analysis.Package) ([]entry, token.Pos) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, s := range gen.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "metricNames" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				var entries []entry
				for _, elt := range lit.Elts {
					bl, ok := elt.(*ast.BasicLit)
					if !ok || bl.Kind != token.STRING {
						continue
					}
					name, _ := strconv.Unquote(bl.Value)
					entries = append(entries, entry{pos: bl.Pos(), name: name})
				}
				return entries, vs.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// counterConsts collects the exported constants of the typed-iota
// Counter enum. The unexported length sentinel (numCounters) is not a
// counter and is skipped.
func counterConsts(pkg *analysis.Package) []counterConst {
	var out []counterConst
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.CONST || len(gen.Specs) == 0 {
				continue
			}
			first, ok := gen.Specs[0].(*ast.ValueSpec)
			if !ok || !isCounterIota(first) {
				continue
			}
			for _, s := range gen.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if ast.IsExported(name.Name) {
						out = append(out, counterConst{pos: name.Pos(), name: name.Name})
					}
				}
			}
		}
	}
	return out
}

// isCounterIota recognizes the enum head: `MsgSent Counter = iota`.
func isCounterIota(vs *ast.ValueSpec) bool {
	t, ok := vs.Type.(*ast.Ident)
	if !ok || t.Name != "Counter" || len(vs.Values) != 1 {
		return false
	}
	v, ok := vs.Values[0].(*ast.Ident)
	return ok && v.Name == "iota"
}

// loadDocs reads DocFiles; unreadable paths are returned separately
// so the caller can report them.
func loadDocs(root string) (contents []string, missing []string) {
	for _, rel := range DocFiles {
		data, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel)))
		if err != nil {
			missing = append(missing, rel)
			continue
		}
		contents = append(contents, string(data))
	}
	return contents, missing
}

func documented(docs []string, name string) bool {
	for _, d := range docs {
		if strings.Contains(d, name) {
			return true
		}
	}
	return false
}
