// Package noblock keeps the event loop latency-clean: internal/core is
// one goroutine serializing every put, get, digest and shuffle, so a
// single blocking call there stalls the whole node (the "32-core box at
// 1-core speed" loop the sharding refactor will split). The pass flags,
// anywhere in package core:
//
//   - time.Sleep
//   - direct file/network I/O: calls into the net package, blocking os
//     file operations, and .Sync() (fsync) method calls
//   - bare channel sends — `ch <- v` outside a select with a default
//     clause (a send inside such a select cannot block)
//
// Store operations are invisible to this pass by design: core writes
// through the store.Store interface, whose engines own their fsync
// discipline (group commit). The rule is about core doing I/O
// *itself*. Deliberate exceptions carry //flasks:noblock-ok.
package noblock

import (
	"go/ast"

	"dataflasks/internal/analysis"
)

// Marker waives a flagged line.
const Marker = "noblock-ok"

// blockingOS lists os package calls that hit the filesystem.
var blockingOS = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "ReadFile": true, "WriteFile": true,
	"ReadDir": true, "Truncate": true, "Chtimes": true, "Link": true, "Symlink": true,
}

// Analyzer is the noblock pass.
var Analyzer = &analysis.Analyzer{
	Name: "noblock",
	Doc:  "the core event loop must not sleep, do I/O, or block on a channel send",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name != "core" {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		imports := analysis.Imports(f)
		// nonBlockingSends holds `ch <- v` nodes that appear as the comm
		// of a select clause guarded by a default case.
		nonBlockingSends := map[*ast.SendStmt]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				markSelectSends(n, nonBlockingSends)
			case *ast.SendStmt:
				if !nonBlockingSends[n] && !pass.Annotated(n.Pos(), Marker) {
					pass.Reportf(n.Pos(), "bare channel send in the core event loop can block; use a select with default (or annotate //flasks:noblock-ok)")
				}
			case *ast.CallExpr:
				checkCall(pass, imports, n)
			}
			return true
		})
	}
	return nil
}

// markSelectSends records the comm sends of sel's clauses when sel has
// a default clause (making every comm non-blocking).
func markSelectSends(sel *ast.SelectStmt, into map[*ast.SendStmt]bool) {
	hasDefault := false
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		return
	}
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok {
			if send, ok := c.Comm.(*ast.SendStmt); ok {
				into[send] = true
			}
		}
	}
}

func checkCall(pass *analysis.Pass, imports map[string]string, call *ast.CallExpr) {
	if pass.Annotated(call.Pos(), Marker) {
		return
	}
	if analysis.IsPkgFunc(imports, call, "time", "Sleep") {
		pass.Reportf(call.Pos(), "time.Sleep stalls the core event loop; use the tick cadence (or annotate //flasks:noblock-ok)")
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if qual, ok := sel.X.(*ast.Ident); ok {
		switch imports[qual.Name] {
		case "net":
			pass.Reportf(call.Pos(), "net.%s does network I/O in the core event loop (or annotate //flasks:noblock-ok)", sel.Sel.Name)
			return
		case "os":
			if blockingOS[sel.Sel.Name] {
				pass.Reportf(call.Pos(), "os.%s does file I/O in the core event loop (or annotate //flasks:noblock-ok)", sel.Sel.Name)
				return
			}
		}
	}
	if sel.Sel.Name == "Sync" && len(call.Args) == 0 {
		pass.Reportf(call.Pos(), "fsync (.Sync()) in the core event loop blocks on the disk (or annotate //flasks:noblock-ok)")
	}
}
