package noblock_test

import (
	"path/filepath"
	"testing"

	"dataflasks/internal/analysis/analysistest"
	"dataflasks/internal/analysis/passes/noblock"
)

func TestNoblock(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), noblock.Analyzer, "noblock")
}
