// Package lockhold flags blocking work performed while a sync.Mutex or
// sync.RWMutex is held — the bug class PR 2's compaction fix was about:
// an fsync or a fabric send under the store's mu stalls every reader
// behind the lock, not just the caller.
//
// The pass is a lexical, per-function approximation: it scans each
// function body in source order, tracking Lock/RLock acquisitions and
// Unlock/RUnlock releases on the same receiver expression. A deferred
// unlock keeps the lock held to the end of the function (which is the
// point of defer). While any lock is held it flags:
//
//   - fabric sends (.Send with ≥2 args)
//   - fsync (.Sync()) and blocking os file operations
//   - net package calls and time.Sleep
//
// Function literals are skipped — they run later, under whatever locks
// their call site holds. Control flow is not modeled: an unlock inside
// a conditional releases the lexical count, so the pass under-reports
// rather than false-positives on early-return unlock patterns.
// Deliberate holds (e.g. the log engine's directory fsync inside
// segment rolls, where ordering IS the invariant) carry
// //flasks:lockhold-ok with a rationale.
package lockhold

import (
	"go/ast"

	"dataflasks/internal/analysis"
)

// Marker waives a flagged line.
const Marker = "lockhold-ok"

var blockingOS = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "ReadFile": true, "WriteFile": true,
	"ReadDir": true, "Truncate": true, "Chtimes": true, "Link": true, "Symlink": true,
}

// Analyzer is the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "no fsync, fabric send, or blocking I/O while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		imports := analysis.Imports(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, imports, fn)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, imports map[string]string, fn *ast.FuncDecl) {
	held := map[string]int{} // receiver expression → acquisition depth
	total := 0
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later, under its call site's locks
		case *ast.DeferStmt:
			// defer mu.Unlock() means held-to-end: simply never
			// decrement. Other deferred work also runs at return,
			// outside this lexical scan's scope.
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := exprString(sel.X)
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if recv != "" && len(n.Args) == 0 && !isPkgQualifier(imports, sel.X) {
					held[recv]++
					total++
				}
				return true
			case "Unlock", "RUnlock":
				if recv != "" && len(n.Args) == 0 && held[recv] > 0 {
					held[recv]--
					total--
				}
				return true
			}
			if total > 0 {
				checkBlocking(pass, imports, n, sel)
			}
		}
		return true
	})
}

func checkBlocking(pass *analysis.Pass, imports map[string]string, call *ast.CallExpr, sel *ast.SelectorExpr) {
	if pass.Annotated(call.Pos(), Marker) {
		return
	}
	if qual, ok := sel.X.(*ast.Ident); ok {
		switch imports[qual.Name] {
		case "time":
			if sel.Sel.Name == "Sleep" {
				pass.Reportf(call.Pos(), "time.Sleep while a mutex is held (or annotate //flasks:lockhold-ok)")
			}
			return
		case "net":
			pass.Reportf(call.Pos(), "net.%s while a mutex is held (or annotate //flasks:lockhold-ok)", sel.Sel.Name)
			return
		case "os":
			if blockingOS[sel.Sel.Name] {
				pass.Reportf(call.Pos(), "os.%s does file I/O while a mutex is held (or annotate //flasks:lockhold-ok)", sel.Sel.Name)
			}
			return
		}
	}
	switch {
	case sel.Sel.Name == "Send" && len(call.Args) >= 2:
		pass.Reportf(call.Pos(), "fabric Send while a mutex is held blocks every goroutine behind the lock (or annotate //flasks:lockhold-ok)")
	case sel.Sel.Name == "Sync" && len(call.Args) == 0:
		pass.Reportf(call.Pos(), "fsync (.Sync()) while a mutex is held stalls the lock for a disk flush (or annotate //flasks:lockhold-ok)")
	}
}

// isPkgQualifier reports whether x names an imported package — so
// flock.Lock(path) style qualified calls are not mistaken for mutex
// acquisitions.
func isPkgQualifier(imports map[string]string, x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := imports[id.Name]
	return isPkg
}

// exprString renders ident/selector chains ("l.mu", "s.store.mu");
// anything else — map index, call result — returns "" and is not
// tracked.
func exprString(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}
