package lockhold_test

import (
	"path/filepath"
	"testing"

	"dataflasks/internal/analysis/analysistest"
	"dataflasks/internal/analysis/passes/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), lockhold.Analyzer, "lockhold")
}
