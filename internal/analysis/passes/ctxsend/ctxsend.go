// Package ctxsend enforces the repo's send-plumbing contract: PR 6
// gave every fabric one ctx-taking Send(ctx, to, msg) signature so a
// protocol round's deadline reaches the socket — a Send that fabricates
// its own context.Background() defeats that, and a Send whose error is
// discarded silently loses the delivery accounting wire_send_errors
// exists for.
//
// Two rules, applied in protocol packages:
//
//  1. The first argument of a Send call must not be
//     context.Background() or context.TODO() — thread the caller's ctx.
//  2. A Send call's error must not be discarded (`_ = x.Send(...)` or a
//     bare statement call).
//
// Both are waived by //flasks:fire-and-forget on the line (or the line
// above) for sends whose failure handling genuinely lives elsewhere —
// e.g. the client's request launcher, where acks and per-op retry
// timers own delivery.
package ctxsend

import (
	"go/ast"

	"dataflasks/internal/analysis"
)

// Marker is the annotation that waives both rules.
const Marker = "fire-and-forget"

// scope lists the protocol package names the contract applies to.
// Fabric implementations (transport) and harnesses construct contexts
// legitimately and are out of scope.
var scope = map[string]bool{
	"pss":         true,
	"slicing":     true,
	"aggregate":   true,
	"antientropy": true,
	"gossip":      true,
	"core":        true,
	"client":      true,
	"dht":         true,
	"dataflasks":  true,
}

// Analyzer is the ctxsend pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsend",
	Doc:  "protocol Sends must thread the caller ctx and not discard the error",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !scope[pass.Pkg.Name] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		imports := analysis.Imports(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCtxArg(pass, imports, n)
			case *ast.AssignStmt:
				checkDiscard(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isSendCall(call) {
					if !pass.Annotated(call.Pos(), Marker) {
						pass.Reportf(call.Pos(), "Send result ignored; handle the error (or annotate //flasks:fire-and-forget)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSendCall reports whether call invokes a method named Send through
// a selector. Qualified function calls would match too, but no
// imported package exports a function (vs method) named Send.
func isSendCall(call *ast.CallExpr) bool {
	return analysis.MethodName(call) == "Send" && len(call.Args) >= 2
}

func checkCtxArg(pass *analysis.Pass, imports map[string]string, call *ast.CallExpr) {
	if !isSendCall(call) {
		return
	}
	arg, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return
	}
	for _, name := range [2]string{"Background", "TODO"} {
		if analysis.IsPkgFunc(imports, arg, "context", name) {
			if !pass.Annotated(call.Pos(), Marker) {
				pass.Reportf(arg.Pos(), "Send fabricates context.%s(); thread the caller's ctx (or annotate //flasks:fire-and-forget)", name)
			}
			return
		}
	}
}

// checkDiscard flags `_ = x.Send(...)`.
func checkDiscard(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !isSendCall(call) {
		return
	}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	if !pass.Annotated(assign.Pos(), Marker) {
		pass.Reportf(assign.Pos(), "Send error discarded with _ =; handle it (or annotate //flasks:fire-and-forget)")
	}
}
