package ctxsend_test

import (
	"path/filepath"
	"testing"

	"dataflasks/internal/analysis/analysistest"
	"dataflasks/internal/analysis/passes/ctxsend"
)

var testdata = filepath.Join("..", "..", "testdata")

// TestCtxsend exercises both rules and the waiver; the fixture
// directory also seeds violations in a generated file and a _test.go
// file with no want comments, so a loader-exclusion regression
// surfaces here as unexpected diagnostics.
func TestCtxsend(t *testing.T) {
	analysistest.Run(t, testdata, ctxsend.Analyzer, "ctxsend")
}

// TestCtxsendScope runs the pass over an out-of-scope fabric package
// full of pattern matches and expects silence.
func TestCtxsendScope(t *testing.T) {
	analysistest.Run(t, testdata, ctxsend.Analyzer, "ctxsend_outofscope")
}
