package wiretable_test

import (
	"path/filepath"
	"testing"

	"dataflasks/internal/analysis/analysistest"
	"dataflasks/internal/analysis/passes/wiretable"
)

// TestWiretable loads the fixture table (kind collision, zero kind,
// missing codec, Name/New mismatch, missing golden frame) together
// with a protocol package sending an unregistered message, in one
// program — the cross-package check resolves against the fixture
// table, not the real one.
func TestWiretable(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), wiretable.Analyzer,
		"wiretable", "wiretable_send")
}
