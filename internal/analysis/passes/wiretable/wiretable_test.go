package wiretable_test

import (
	"path/filepath"
	"testing"

	"dataflasks/internal/analysis/analysistest"
	"dataflasks/internal/analysis/passes/wiretable"
)

// TestWiretable loads the fixture table (kind collision, zero kind,
// missing codec, Name/New mismatch, missing golden frame, and a
// segment-kind block with its own collision) together with two
// protocol packages — core and the segment-streaming bootstrap — each
// sending an unregistered message, in one program. The cross-package
// check resolves against the fixture table, not the real one.
func TestWiretable(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), wiretable.Analyzer,
		"wiretable", "wiretable_send", "wiretable_boot")
}
