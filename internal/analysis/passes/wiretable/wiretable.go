// Package wiretable guards the wire contract: every protocol message
// lives in the declarative wire.Messages table with a stable, unique,
// non-zero kind ID, a binary field codec, and a pinned golden frame.
// Kind IDs are the on-the-wire compatibility surface — a duplicated or
// renumbered kind silently corrupts mixed-version clusters, and a
// message missing from the table falls back to gob (or fails to
// decode at all on the datagram path).
//
// On the package declaring `var Messages = []Spec{...}` the pass
// checks each spec for: a non-zero literal Kind, unique across the
// table; a Name; enc and dec codec functions; a New constructor whose
// returned type agrees with Name; and a frame for Name in
// testdata/frames.golden (regenerate with `go test -run Golden
// -update ./internal/wire`).
//
// Across protocol packages it additionally resolves the message
// argument of Send(ctx, to, msg) calls — composite literals, directly
// or through a local variable — and flags types that are not
// registered in the table. The resolution is deliberately
// conservative: a message it cannot trace to a literal is not a
// finding.
package wiretable

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dataflasks/internal/analysis"
)

// GoldenFile is the table-relative path of the pinned frames.
const GoldenFile = "testdata/frames.golden"

// sendScope lists the package names whose Send calls are checked
// against the table. Transport internals send transport.Envelope
// frames, not protocol messages, so they are out of scope.
var sendScope = map[string]bool{
	"pss":         true,
	"slicing":     true,
	"aggregate":   true,
	"antientropy": true,
	"gossip":      true,
	"core":        true,
	"client":      true,
	"dht":         true,
	"bootstrap":   true,
}

// Analyzer is the wiretable pass.
var Analyzer = &analysis.Analyzer{
	Name: "wiretable",
	Doc:  "every fabric message is registered in wire.Messages with a unique non-zero kind, a binary codec, and a golden frame",
	Run:  run,
}

// spec is one parsed Messages element.
type spec struct {
	pos     token.Pos
	kind    int
	kindSet bool
	name    string
	hasEnc  bool
	hasDec  bool
	newType string // "pkg.Type" from the New constructor, or ""
}

func run(pass *analysis.Pass) error {
	if table, pos := findTable(pass.Pkg); table != nil {
		checkTable(pass, table, pos)
	}
	if sendScope[pass.Pkg.Name] {
		checkSends(pass)
	}
	return nil
}

// findTable locates `var Messages = [...]{...}` in pkg and parses its
// specs. The second result is the table's position (for file-level
// diagnostics).
func findTable(pkg *analysis.Package) ([]spec, token.Pos) {
	for _, f := range pkg.Files {
		imports := analysis.Imports(f)
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, s := range gen.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "Messages" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				var specs []spec
				for _, elt := range lit.Elts {
					if el, ok := elt.(*ast.CompositeLit); ok {
						specs = append(specs, parseSpec(pkg, imports, el))
					}
				}
				return specs, vs.Pos()
			}
		}
	}
	return nil, token.NoPos
}

func parseSpec(pkg *analysis.Package, imports map[string]string, lit *ast.CompositeLit) spec {
	s := spec{pos: lit.Pos()}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Kind":
			if bl, ok := kv.Value.(*ast.BasicLit); ok && bl.Kind == token.INT {
				if v, err := strconv.Atoi(bl.Value); err == nil {
					s.kind, s.kindSet = v, true
				}
			}
		case "Name":
			if bl, ok := kv.Value.(*ast.BasicLit); ok && bl.Kind == token.STRING {
				s.name, _ = strconv.Unquote(bl.Value)
			}
		case "New":
			s.newType = constructedType(pkg, imports, kv.Value)
		case "enc":
			s.hasEnc = true
		case "dec":
			s.hasDec = true
		}
	}
	return s
}

// constructedType extracts "pkg.Type" from a New constructor literal:
// func() interface{} { return &pss.ShuffleRequest{} } (or new(T)).
func constructedType(pkg *analysis.Package, imports map[string]string, v ast.Expr) string {
	fn, ok := v.(*ast.FuncLit)
	if !ok || len(fn.Body.List) != 1 {
		return ""
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	switch r := ret.Results[0].(type) {
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			if cl, ok := r.X.(*ast.CompositeLit); ok {
				return typeName(pkg, imports, cl.Type)
			}
		}
	case *ast.CallExpr:
		if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "new" && len(r.Args) == 1 {
			return typeName(pkg, imports, r.Args[0])
		}
	}
	return ""
}

// typeName renders a type expression as the table's "pkg.Type" naming.
func typeName(pkg *analysis.Package, imports map[string]string, t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return pkg.Name + "." + t.Name
	case *ast.SelectorExpr:
		qual, ok := t.X.(*ast.Ident)
		if !ok {
			return ""
		}
		path := imports[qual.Name]
		if path == "" {
			return ""
		}
		short := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			short = path[i+1:]
		}
		return short + "." + t.Sel.Name
	}
	return ""
}

func checkTable(pass *analysis.Pass, specs []spec, tablePos token.Pos) {
	golden, goldenErr := readGolden(filepath.Join(pass.Pkg.Dir, filepath.FromSlash(GoldenFile)))
	if goldenErr != nil {
		pass.Reportf(tablePos, "wire.Messages has no readable golden frame file at %s: %v", GoldenFile, goldenErr)
	}
	byKind := map[int]string{}
	for _, s := range specs {
		label := s.name
		if label == "" {
			label = "spec"
			pass.Reportf(s.pos, "wire message spec has no Name")
		}
		switch {
		case !s.kindSet:
			pass.Reportf(s.pos, "%s has no literal Kind; kind IDs must be explicit integers", label)
		case s.kind == 0:
			pass.Reportf(s.pos, "%s has kind 0, the reserved invalid kind", label)
		case byKind[s.kind] != "":
			pass.Reportf(s.pos, "%s reuses kind %d, already taken by %s; kind IDs are wire contract", label, s.kind, byKind[s.kind])
		default:
			byKind[s.kind] = label
		}
		if !s.hasEnc || !s.hasDec {
			pass.Reportf(s.pos, "%s has no binary field codec (needs both enc and dec)", label)
		}
		if s.name != "" && s.newType != "" && s.name != s.newType {
			pass.Reportf(s.pos, "%s constructs %s; Name and New disagree", label, s.newType)
		}
		if s.name != "" && goldenErr == nil && !golden[s.name] {
			pass.Reportf(s.pos, "%s has no golden frame in %s (regenerate: go test -run Golden -update)", label, GoldenFile)
		}
	}
}

// readGolden parses the golden frame file's "<name>: <hex>" lines.
func readGolden(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexByte(line, ':'); i > 0 {
			names[strings.TrimSpace(line[:i])] = true
		}
	}
	return names, nil
}

// registeredNames collects the table's message names from whichever
// loaded package declares it.
func registeredNames(prog *analysis.Program) map[string]bool {
	for _, pkg := range prog.Pkgs {
		if table, _ := findTable(pkg); table != nil {
			names := make(map[string]bool, len(table))
			for _, s := range table {
				if s.name != "" {
					names[s.name] = true
				}
			}
			return names
		}
	}
	return nil
}

// checkSends flags Send(ctx, to, msg) calls whose msg resolves to a
// composite literal of a type absent from the table.
func checkSends(pass *analysis.Pass) {
	registered := registeredNames(pass.Program)
	if registered == nil {
		return // table not loaded (partial run); nothing to check against
	}
	for _, f := range pass.Pkg.Files {
		imports := analysis.Imports(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locals := localComposites(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || analysis.MethodName(call) != "Send" || len(call.Args) != 3 {
					return true
				}
				t := resolveMsgType(pass.Pkg, imports, locals, call.Args[2])
				if t != "" && !registered[t] {
					pass.Reportf(call.Args[2].Pos(), "message %s sent over the fabric but not registered in wire.Messages", t)
				}
				return true
			})
		}
	}
}

// localComposites maps identifiers assigned a composite literal
// (directly or by address) anywhere in fn — a lexical approximation
// that is exact for the "build message, then send it" idiom.
func localComposites(fn *ast.FuncDecl) map[string]ast.Expr {
	m := map[string]ast.Expr{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			switch rhs := assign.Rhs[i].(type) {
			case *ast.CompositeLit:
				m[id.Name] = rhs.Type
			case *ast.UnaryExpr:
				if cl, ok := rhs.X.(*ast.CompositeLit); ok && rhs.Op == token.AND {
					m[id.Name] = cl.Type
				}
			}
		}
		return true
	})
	return m
}

// resolveMsgType names the message type of a Send's third argument,
// or "" when it cannot be traced to a composite literal.
func resolveMsgType(pkg *analysis.Package, imports map[string]string, locals map[string]ast.Expr, arg ast.Expr) string {
	switch arg := arg.(type) {
	case *ast.UnaryExpr:
		if cl, ok := arg.X.(*ast.CompositeLit); ok && arg.Op == token.AND {
			return typeName(pkg, imports, cl.Type)
		}
	case *ast.CompositeLit:
		return typeName(pkg, imports, arg.Type)
	case *ast.Ident:
		if t, ok := locals[arg.Name]; ok {
			return typeName(pkg, imports, t)
		}
	}
	return ""
}
