package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// generatedRx is the official "generated file" convention
// (https://go.dev/s/generatedcode): a whole line matching this, before
// the package clause, excludes the file from analysis.
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// LoadPackages parses the packages matched by patterns, resolved
// against the module rooted at or above dir. Patterns follow the go
// tool's shape: "./..." walks everything under the module root,
// "./x/..." walks a subtree, "./x" names one directory. Test files
// (_test.go), generated files, and testdata/vendor/hidden directories
// are excluded — the invariants flaskscheck enforces are about shipped
// code, and fixtures under testdata must never be findings.
func LoadPackages(dir string, patterns []string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		expanded, err := expandPattern(root, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)

	prog := &Program{Fset: token.NewFileSet(), RootDir: root}
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs, err := parseDir(prog.Fset, d, importPath)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkgs...)
	}
	return prog, nil
}

// LoadDirs parses explicit directories outside any module — the
// analysistest fixture path. Keys are import paths, values
// directories; root anchors Program.RootDir for analyzers that read
// side files.
func LoadDirs(root string, pkgs map[string]string) (*Program, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	prog := &Program{Fset: token.NewFileSet(), RootDir: root}
	for _, path := range paths {
		parsed, err := parseDir(prog.Fset, pkgs[path], path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, parsed...)
	}
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// (module root, module path).
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// expandPattern resolves one go-tool-style pattern to directories.
func expandPattern(root, pat string) ([]string, error) {
	recursive := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
	}
	if pat == "" || pat == "." {
		pat = root
	} else if !filepath.IsAbs(pat) {
		pat = filepath.Join(root, pat)
	}
	if !recursive {
		return []string{pat}, nil
	}
	var dirs []string
	err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != pat && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses a directory's analyzable files, grouped into one
// Package per package clause (a dir can legally hold e.g. "main" next
// to nothing else, but fixtures are free-form). Directories with no
// analyzable Go files yield no packages.
func parseDir(fset *token.FileSet, dir, importPath string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*Package)
	var order []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		filename := filepath.Join(dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		if isGenerated(src) {
			continue
		}
		f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg := byName[f.Name.Name]
		if pkg == nil {
			pkg = &Package{
				Name:        f.Name.Name,
				Path:        importPath,
				Dir:         dir,
				annotations: make(map[string]map[int][]string),
			}
			byName[f.Name.Name] = pkg
			order = append(order, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, filename)
		collectAnnotations(fset, f, pkg.annotations)
	}
	sort.Strings(order)
	pkgs := make([]*Package, 0, len(order))
	for _, n := range order {
		pkgs = append(pkgs, byName[n])
	}
	return pkgs, nil
}

// isGenerated applies the generated-code convention to raw source:
// the marker line must appear before the package clause.
func isGenerated(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimRight(line, "\r")
		if strings.HasPrefix(trimmed, "package ") {
			return false
		}
		if generatedRx.MatchString(trimmed) {
			return true
		}
	}
	return false
}

// Inspect walks every file of the pass's package in depth-first
// order, calling fn exactly like ast.Inspect. Shared by the passes so
// their traversal idiom stays uniform.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
