// Package client implements the DataFlasks client library (paper §V):
// the API component that contacts a node supplied by the Load Balancer,
// and the reply handler that de-duplicates the multiple answers
// epidemic dissemination produces. The core is an event-driven state
// machine so the same code serves discrete-event simulations and the
// blocking public API.
package client

import (
	"math/rand/v2"
	"sync"

	"dataflasks/internal/slicing"
	"dataflasks/internal/transport"
)

// LoadBalancer chooses the contact node for a request (paper §V; the
// quality of this choice drives total message cost, §VII).
type LoadBalancer interface {
	// Contact returns a node to send the request for key to.
	Contact(key string) (transport.NodeID, bool)
	// ObserveReply feeds routing hints gleaned from replies.
	ObserveReply(key string, slice int32, node transport.NodeID)
	// Forget drops any cached state for a node that timed out.
	Forget(node transport.NodeID)
}

// RandomLB is the paper's baseline: a uniformly random contact node.
// Safe for concurrent use.
type RandomLB struct {
	mu    sync.RWMutex
	nodes []transport.NodeID
	rng   *rand.Rand
}

var _ LoadBalancer = (*RandomLB)(nil)

// NewRandomLB creates a random load balancer over the given contact
// list (copied).
func NewRandomLB(nodes []transport.NodeID, rng *rand.Rand) *RandomLB {
	cp := make([]transport.NodeID, len(nodes))
	copy(cp, nodes)
	return &RandomLB{nodes: cp, rng: rng}
}

// SetNodes replaces the contact list (membership refresh).
func (l *RandomLB) SetNodes(nodes []transport.NodeID) {
	cp := make([]transport.NodeID, len(nodes))
	copy(cp, nodes)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nodes = cp
}

// Contact implements LoadBalancer.
func (l *RandomLB) Contact(string) (transport.NodeID, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.nodes) == 0 {
		return 0, false
	}
	return l.nodes[l.rng.IntN(len(l.nodes))], true
}

// ObserveReply implements LoadBalancer (no-op for the baseline).
func (l *RandomLB) ObserveReply(string, int32, transport.NodeID) {}

// Forget implements LoadBalancer. The node stays in the list — with
// thousands of nodes the random balancer relies on churn-tolerant
// retries rather than membership accuracy.
func (l *RandomLB) Forget(transport.NodeID) {}

// CachingLB implements the §VII optimization: it remembers, per slice,
// a node that recently answered for that slice and contacts it
// directly, collapsing the global dissemination phase. Misses fall back
// to the wrapped balancer. Safe for concurrent use.
type CachingLB struct {
	fallback LoadBalancer
	slices   int

	mu    sync.RWMutex
	cache map[int32]transport.NodeID
}

var _ LoadBalancer = (*CachingLB)(nil)

// NewCachingLB wraps fallback with a slice-contact cache. slices must
// match the cluster's slice count for the key→slice mapping.
func NewCachingLB(fallback LoadBalancer, slices int) *CachingLB {
	if fallback == nil {
		panic("client: NewCachingLB requires a fallback balancer")
	}
	if slices <= 0 {
		slices = 1
	}
	return &CachingLB{
		fallback: fallback,
		slices:   slices,
		cache:    make(map[int32]transport.NodeID),
	}
}

// Contact implements LoadBalancer.
func (l *CachingLB) Contact(key string) (transport.NodeID, bool) {
	s := slicing.KeySlice(key, l.slices)
	l.mu.RLock()
	node, ok := l.cache[s]
	l.mu.RUnlock()
	if ok {
		return node, true
	}
	return l.fallback.Contact(key)
}

// ObserveReply implements LoadBalancer.
func (l *CachingLB) ObserveReply(key string, slice int32, node transport.NodeID) {
	if slice < 0 {
		return
	}
	l.mu.Lock()
	l.cache[slice] = node
	l.mu.Unlock()
	l.fallback.ObserveReply(key, slice, node)
}

// Forget implements LoadBalancer.
func (l *CachingLB) Forget(node transport.NodeID) {
	l.mu.Lock()
	for s, n := range l.cache {
		if n == node {
			delete(l.cache, s)
		}
	}
	l.mu.Unlock()
	l.fallback.Forget(node)
}

// CacheSize returns the number of cached slice contacts.
func (l *CachingLB) CacheSize() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.cache)
}
