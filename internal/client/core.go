package client

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dataflasks/internal/core"
	"dataflasks/internal/gossip"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// Operation outcomes.
var (
	// ErrTimeout reports an operation that exhausted its retries
	// without enough replies. For gets this is also how "not found"
	// manifests: epidemic reads have no authoritative negative.
	ErrTimeout = errors.New("client: operation timed out")
	// ErrNoContact reports an empty load balancer.
	ErrNoContact = errors.New("client: no contact node available")
)

// Result is the outcome of one operation, delivered to its callback.
type Result struct {
	ID      gossip.RequestID
	Key     string
	Version uint64
	Value   []byte
	Err     error
	// Acks is how many distinct replicas acknowledged a put, batch put
	// or delete.
	Acks int
	// Applied is the largest per-replica application count reported by
	// the acks of a batch operation: objects stored for a batch put,
	// objects that existed and were removed for a batch delete. Zero
	// for single-object operations.
	Applied int
	// Retries is how many times the operation was re-issued.
	Retries int
}

// Config tunes the client core.
type Config struct {
	// PutAcks is how many distinct replica acks complete a put, batch
	// put or delete (default 1; 0 makes writes fire-and-forget,
	// completing instantly). Overridable per operation via Opts.Acks.
	PutAcks int
	// TimeoutTicks is how many ticks an attempt may run before retry
	// (default 20).
	TimeoutTicks int
	// Retries is how many fresh attempts follow a timeout (default 3).
	// Each retry uses a new request id — duplicate-suppression caches
	// across the system would swallow a re-used id — and a fresh
	// contact node.
	Retries int
	// SelfAddr is the client's dialable address, stamped into requests
	// so replicas on TCP fabrics can answer. Empty for in-process and
	// simulated deployments.
	SelfAddr string
}

func (c *Config) defaults() {
	if c.PutAcks < 0 {
		c.PutAcks = 0
	} else if c.PutAcks == 0 {
		c.PutAcks = 1
	}
	if c.TimeoutTicks <= 0 {
		c.TimeoutTicks = 20
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
}

// Opts overrides the core configuration for one operation. The zero
// value inherits every config default, so existing call sites keep
// their behavior.
type Opts struct {
	// Acks overrides Config.PutAcks for this write: 0 inherits,
	// negative makes it fire-and-forget (completes instantly, no acks
	// awaited). Ignored by gets.
	Acks int
	// TimeoutTicks overrides the per-attempt tick budget (0 inherits).
	TimeoutTicks int
	// Retries overrides the retry budget: 0 inherits, negative means
	// no retries (one attempt only).
	Retries int
	// TraceID, when non-zero, stamps the request so every node it
	// touches journals its lifecycle in the node's /trace ring. Retries
	// keep the same trace id: the attempts are one logical operation.
	TraceID uint64
}

type opKind int

const (
	opPut opKind = iota + 1
	opGet
	opDelete
	opPutBatch
	opDeleteBatch
)

type pending struct {
	kind    opKind
	id      gossip.RequestID
	key     string
	version uint64
	value   []byte
	objs    []store.Object    // opPutBatch payload
	items   []core.DeleteItem // opDeleteBatch payload
	noAck   bool
	// applied is the largest per-replica application count any ack
	// reported (see Result.Applied).
	applied int

	// Per-op knobs resolved from Opts at start time.
	wantAcks     int
	timeoutTicks int
	maxRetries   int
	traceID      uint64

	ackFrom     map[transport.NodeID]bool
	deadline    uint64
	retries     int
	lastContact transport.NodeID
	hasContact  bool
	done        func(Result)
	// attempts holds the superseded request ids of earlier attempts of
	// this op; acks addressed to them still count (see Core.aliases).
	attempts []gossip.RequestID
}

// countsAcks reports whether the op completes by accumulating replica
// acknowledgements (everything but gets, which complete on the first
// reply).
func (p *pending) countsAcks() bool { return p.kind != opGet }

// Core is the client library's event-driven engine: it issues requests
// through the load balancer, tracks outstanding operations, de-dupes
// the multiple replies epidemic routing produces (§V) and drives
// timeouts/retries off an abstract tick clock. Not safe for concurrent
// use; the live wrapper serializes access.
type Core struct {
	id  transport.NodeID
	cfg Config
	out transport.Sender
	lb  LoadBalancer

	seq  uint32
	tick uint64
	ops  map[gossip.RequestID]*pending
	// aliases maps the request ids of superseded attempts of ack-counted
	// ops to their live op: a retry re-issues under a fresh id (dedup
	// caches across the system would swallow a re-used one), but acks
	// for the previous attempt may still be in flight and are from
	// distinct replicas all the same — dropping them makes Acks>1
	// operations time out needlessly.
	aliases map[gossip.RequestID]*pending
}

// NewCore creates a client engine. id must be unique in the fabric —
// replies are routed to it like any other message.
func NewCore(id transport.NodeID, cfg Config, out transport.Sender, lb LoadBalancer) *Core {
	cfg.defaults()
	if out == nil || lb == nil {
		panic("client: NewCore requires a sender and a load balancer")
	}
	return &Core{
		id:      id,
		cfg:     cfg,
		out:     out,
		lb:      lb,
		ops:     make(map[gossip.RequestID]*pending),
		aliases: make(map[gossip.RequestID]*pending),
	}
}

// ID returns the client's fabric identity.
func (c *Core) ID() transport.NodeID { return c.id }

// Pending returns the number of in-flight operations.
func (c *Core) Pending() int { return len(c.ops) }

// resolve fills per-op knobs from opts over the config defaults.
func (c *Core) resolve(op *pending, opts Opts) {
	op.wantAcks = c.cfg.PutAcks
	if opts.Acks > 0 {
		op.wantAcks = opts.Acks
	} else if opts.Acks < 0 {
		op.wantAcks = 0
	}
	op.noAck = op.wantAcks == 0
	op.timeoutTicks = c.cfg.TimeoutTicks
	if opts.TimeoutTicks > 0 {
		op.timeoutTicks = opts.TimeoutTicks
	}
	op.maxRetries = c.cfg.Retries
	if opts.Retries > 0 {
		op.maxRetries = opts.Retries
	} else if opts.Retries < 0 {
		op.maxRetries = 0
	}
	op.traceID = opts.TraceID
}

// StartPut begins an asynchronous put with the config defaults; done
// runs when enough acks arrive or retries are exhausted. It returns the
// first attempt's request id.
func (c *Core) StartPut(key string, version uint64, value []byte, done func(Result)) gossip.RequestID {
	return c.StartPutOpts(key, version, value, Opts{}, done)
}

// StartPutOpts begins an asynchronous put with per-op overrides.
func (c *Core) StartPutOpts(key string, version uint64, value []byte, opts Opts, done func(Result)) gossip.RequestID {
	op := &pending{
		kind:    opPut,
		key:     key,
		version: version,
		value:   append([]byte(nil), value...),
		ackFrom: make(map[transport.NodeID]bool),
		done:    done,
	}
	c.resolve(op, opts)
	c.launch(op)
	if op.noAck {
		// Fire-and-forget: complete immediately.
		c.complete(op, Result{ID: op.id, Key: key, Version: version})
	}
	return op.id
}

// StartGet begins an asynchronous get; version may be store.Latest.
func (c *Core) StartGet(key string, version uint64, done func(Result)) gossip.RequestID {
	return c.StartGetOpts(key, version, Opts{}, done)
}

// StartGetOpts begins an asynchronous get with per-op overrides.
func (c *Core) StartGetOpts(key string, version uint64, opts Opts, done func(Result)) gossip.RequestID {
	op := &pending{
		kind:    opGet,
		key:     key,
		version: version,
		ackFrom: make(map[transport.NodeID]bool),
		done:    done,
	}
	c.resolve(op, opts)
	c.launch(op)
	return op.id
}

// StartDelete begins an asynchronous delete of (key, version); version
// store.Latest removes each replica's newest version. Completion
// follows the same ack-counting rules as puts.
func (c *Core) StartDelete(key string, version uint64, opts Opts, done func(Result)) gossip.RequestID {
	op := &pending{
		kind:    opDelete,
		key:     key,
		version: version,
		ackFrom: make(map[transport.NodeID]bool),
		done:    done,
	}
	c.resolve(op, opts)
	c.launch(op)
	if op.noAck {
		c.complete(op, Result{ID: op.id, Key: key, Version: version})
	}
	return op.id
}

// StartPutBatch begins an asynchronous multi-object put. All objects
// must map to the same slice (callers group per slice before issuing);
// the batch travels as one wire message and lands on each replica as
// one store.PutBatch call. Acks count whole batches. An empty batch
// completes immediately (there is nothing to replicate).
func (c *Core) StartPutBatch(objs []store.Object, opts Opts, done func(Result)) gossip.RequestID {
	if len(objs) == 0 {
		if done != nil {
			done(Result{})
		}
		return 0
	}
	cp := make([]store.Object, len(objs))
	copy(cp, objs)
	op := &pending{
		kind:    opPutBatch,
		key:     cp[0].Key, // contact selection and balancer hints
		objs:    cp,
		ackFrom: make(map[transport.NodeID]bool),
		done:    done,
	}
	c.resolve(op, opts)
	c.launch(op)
	if op.noAck {
		c.complete(op, Result{ID: op.id, Key: op.key})
	}
	return op.id
}

// StartDeleteBatch begins an asynchronous multi-object delete,
// mirroring StartPutBatch: all items must map to the same slice
// (callers group per slice before issuing), the batch travels as one
// wire message and lands on each replica as one pass over its store.
// Item versions may be store.Latest. Acks count whole batches; the
// result's Applied reports the largest per-replica count of items that
// actually existed. An empty batch completes immediately.
func (c *Core) StartDeleteBatch(items []core.DeleteItem, opts Opts, done func(Result)) gossip.RequestID {
	if len(items) == 0 {
		if done != nil {
			done(Result{})
		}
		return 0
	}
	cp := make([]core.DeleteItem, len(items))
	copy(cp, items)
	op := &pending{
		kind:    opDeleteBatch,
		key:     cp[0].Key, // contact selection and balancer hints
		items:   cp,
		ackFrom: make(map[transport.NodeID]bool),
		done:    done,
	}
	c.resolve(op, opts)
	c.launch(op)
	if op.noAck {
		c.complete(op, Result{ID: op.id, Key: op.key})
	}
	return op.id
}

// Cancel abandons the operation that id belongs to (any attempt id of
// the op works). The op is removed from the pending table immediately —
// instead of lingering until its retry budget expires — and its done
// callback never runs. It reports whether a live op was found.
func (c *Core) Cancel(id gossip.RequestID) bool {
	op, ok := c.ops[id]
	if !ok {
		op, ok = c.aliases[id]
	}
	if !ok {
		return false
	}
	delete(c.ops, op.id)
	for _, attempt := range op.attempts {
		delete(c.aliases, attempt)
	}
	return true
}

// launch (re)issues op with a fresh id and contact.
func (c *Core) launch(op *pending) {
	c.seq++
	op.id = gossip.MakeRequestID(c.id, c.seq)
	op.deadline = c.tick + uint64(op.timeoutTicks)
	c.ops[op.id] = op

	contact, ok := c.lb.Contact(op.key)
	if !ok {
		// Leave the op pending; the timeout path will retry (the
		// balancer may learn nodes meanwhile) and eventually fail it.
		op.hasContact = false
		return
	}
	op.lastContact = contact
	op.hasContact = true
	// Every launch below is deliberately fire-and-forget: the client is
	// its own retry loop (deadline -> relaunch under a fresh id), so a
	// failed or slow send is indistinguishable from a lost message and
	// needs no ctx or error plumbing.
	switch op.kind {
	case opPut:
		//flasks:fire-and-forget
		_ = c.out.Send(context.Background(), contact, &core.PutRequest{
			ID: op.id, Key: op.key, Version: op.version, Value: op.value,
			Origin: c.id, OriginAddr: c.cfg.SelfAddr,
			TTL: core.TTLUnset, NoAck: op.noAck, TraceID: op.traceID,
		})
	case opGet:
		//flasks:fire-and-forget
		_ = c.out.Send(context.Background(), contact, &core.GetRequest{
			ID: op.id, Key: op.key, Version: op.version,
			Origin: c.id, OriginAddr: c.cfg.SelfAddr,
			TTL: core.TTLUnset, TraceID: op.traceID,
		})
	case opDelete:
		//flasks:fire-and-forget
		_ = c.out.Send(context.Background(), contact, &core.DeleteRequest{
			ID: op.id, Key: op.key, Version: op.version,
			Origin: c.id, OriginAddr: c.cfg.SelfAddr,
			TTL: core.TTLUnset, NoAck: op.noAck, TraceID: op.traceID,
		})
	case opPutBatch:
		//flasks:fire-and-forget
		_ = c.out.Send(context.Background(), contact, &core.PutBatchRequest{
			ID: op.id, Objs: op.objs,
			Origin: c.id, OriginAddr: c.cfg.SelfAddr,
			TTL: core.TTLUnset, NoAck: op.noAck, TraceID: op.traceID,
		})
	case opDeleteBatch:
		//flasks:fire-and-forget
		_ = c.out.Send(context.Background(), contact, &core.DeleteBatchRequest{
			ID: op.id, Items: op.items,
			Origin: c.id, OriginAddr: c.cfg.SelfAddr,
			TTL: core.TTLUnset, NoAck: op.noAck, TraceID: op.traceID,
		})
	}
}

// HandleMessage consumes replies addressed to this client. Unknown or
// duplicate replies are dropped, which is the §V duplicate-reply
// handling.
func (c *Core) HandleMessage(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case *core.PutAck:
		c.onAck(m.ID, opPut, env.From, 0)
	case *core.PutBatchAck:
		c.onAck(m.ID, opPutBatch, env.From, m.Stored)
	case *core.DeleteAck:
		c.onAck(m.ID, opDelete, env.From, 0)
	case *core.DeleteBatchAck:
		c.onAck(m.ID, opDeleteBatch, env.From, m.Applied)
	case *core.GetReply:
		op, ok := c.ops[m.ID]
		if !ok || op.kind != opGet {
			return // late duplicate for a completed get, or foreign id
		}
		c.lb.ObserveReply(op.key, m.Slice, env.From)
		c.complete(op, Result{
			ID: m.ID, Key: op.key, Version: m.Version,
			Value: m.Value, Retries: op.retries,
		})
	}
}

// onAck counts one replica acknowledgement for an ack-counted op. Acks
// for superseded attempt ids of a still-live op count too: the replica
// stored (or deleted) the same object either way. applied is the
// replica's per-batch application count (0 for single-object acks); the
// largest observed value is surfaced in the result.
func (c *Core) onAck(id gossip.RequestID, kind opKind, from transport.NodeID, applied int) {
	op, ok := c.ops[id]
	if !ok {
		op, ok = c.aliases[id]
	}
	if !ok || op.kind != kind {
		return
	}
	if op.ackFrom[from] {
		return // duplicate ack from the same replica
	}
	op.ackFrom[from] = true
	if applied > op.applied {
		op.applied = applied
	}
	if len(op.ackFrom) >= op.wantAcks {
		c.complete(op, Result{
			ID: op.id, Key: op.key, Version: op.version,
			Acks: len(op.ackFrom), Applied: op.applied, Retries: op.retries,
		})
	}
}

// complete finishes op, retiring its current id and every superseded
// attempt id; late replies to any of them then miss both maps and are
// dropped by HandleMessage.
func (c *Core) complete(op *pending, r Result) {
	delete(c.ops, op.id)
	for _, id := range op.attempts {
		delete(c.aliases, id)
	}
	if op.done != nil {
		op.done(r)
	}
}

// Tick advances the client clock: expired attempts are retried with
// fresh ids and contacts, and exhausted operations fail.
func (c *Core) Tick() {
	c.tick++
	var expired []*pending
	for _, op := range c.ops {
		if c.tick >= op.deadline {
			expired = append(expired, op)
		}
	}
	// Stable order keeps simulations deterministic (map iteration is
	// randomized).
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
	for _, op := range expired {
		if op.hasContact {
			// The contact did not produce a completion in time; let
			// caching balancers evict it.
			c.lb.Forget(op.lastContact)
		}
		if op.retries >= op.maxRetries {
			c.complete(op, Result{
				ID: op.id, Key: op.key, Version: op.version,
				Err:     fmt.Errorf("%w after %d attempts (op %s)", ErrTimeout, op.retries+1, op.id),
				Retries: op.retries,
			})
			continue
		}
		delete(c.ops, op.id)
		op.retries++
		// Partial acks may come from a half-replicated write; keep them
		// counting across attempts (they are distinct replicas either
		// way) — and keep the old id aliased to the op, so acks the
		// previous attempt already provoked count too when they land.
		if op.countsAcks() {
			op.attempts = append(op.attempts, op.id)
			c.aliases[op.id] = op
		}
		c.launch(op)
	}
}
