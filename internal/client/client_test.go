package client

import (
	"context"
	"errors"
	"testing"

	"dataflasks/internal/core"
	"dataflasks/internal/gossip"
	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// capture records everything the client sends.
type capture struct {
	sent []transport.Envelope
}

func (c *capture) sender(from transport.NodeID) transport.Sender {
	return transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		c.sent = append(c.sent, transport.Envelope{From: from, To: to, Msg: msg})
		return nil
	})
}

func newTestCore(t *testing.T, cfg Config, nodes []transport.NodeID) (*Core, *capture) {
	t.Helper()
	cap := &capture{}
	lb := NewRandomLB(nodes, sim.RNG(1, 99))
	return NewCore(0xC0000001, cfg, cap.sender(0xC0000001), lb), cap
}

func TestPutCompletesOnAck(t *testing.T) {
	cl, cap := newTestCore(t, Config{}, []transport.NodeID{1, 2, 3})
	var res *Result
	cl.StartPut("k", 1, []byte("v"), func(r Result) { res = &r })

	if len(cap.sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(cap.sent))
	}
	req, ok := cap.sent[0].Msg.(*core.PutRequest)
	if !ok {
		t.Fatalf("sent %#v", cap.sent[0].Msg)
	}
	if req.TTL != core.TTLUnset {
		t.Errorf("client stamped TTL %d itself", req.TTL)
	}
	if res != nil {
		t.Fatal("put completed before any ack")
	}

	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: req.ID, Key: "k", Version: 1}})
	if res == nil || res.Err != nil {
		t.Fatalf("put not completed: %+v", res)
	}
	if res.Acks != 1 {
		t.Errorf("acks = %d", res.Acks)
	}
	if cl.Pending() != 0 {
		t.Errorf("pending = %d", cl.Pending())
	}
}

func TestPutRequiresDistinctAckers(t *testing.T) {
	cl, cap := newTestCore(t, Config{PutAcks: 2}, []transport.NodeID{1})
	var res *Result
	cl.StartPut("k", 1, nil, func(r Result) { res = &r })
	id := cap.sent[0].Msg.(*core.PutRequest).ID

	// The same replica acking twice must not satisfy PutAcks=2.
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: id}})
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: id}})
	if res != nil {
		t.Fatal("duplicate acker completed the put")
	}
	cl.HandleMessage(transport.Envelope{From: 6, Msg: &core.PutAck{ID: id}})
	if res == nil || res.Acks != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFireAndForgetPut(t *testing.T) {
	cl, _ := newTestCore(t, Config{PutAcks: -1}, []transport.NodeID{1})
	var res *Result
	cl.StartPut("k", 1, nil, func(r Result) { res = &r })
	if res == nil || res.Err != nil {
		t.Fatalf("fire-and-forget put did not complete immediately: %+v", res)
	}
	if cl.Pending() != 0 {
		t.Errorf("pending = %d", cl.Pending())
	}
}

func TestGetFirstReplyWinsAndDuplicatesDropped(t *testing.T) {
	cl, cap := newTestCore(t, Config{}, []transport.NodeID{1})
	count := 0
	var res Result
	cl.StartGet("k", 7, func(r Result) { count++; res = r })
	id := cap.sent[0].Msg.(*core.GetRequest).ID

	reply := &core.GetReply{ID: id, Key: "k", Version: 7, Value: []byte("x"), Slice: 3}
	cl.HandleMessage(transport.Envelope{From: 5, Msg: reply})
	cl.HandleMessage(transport.Envelope{From: 6, Msg: reply}) // epidemic duplicate
	cl.HandleMessage(transport.Envelope{From: 7, Msg: reply})

	if count != 1 {
		t.Fatalf("done callback ran %d times", count)
	}
	if res.Err != nil || string(res.Value) != "x" || res.Version != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRetryUsesFreshIDAndContact(t *testing.T) {
	cl, cap := newTestCore(t, Config{TimeoutTicks: 2, Retries: 2}, []transport.NodeID{1, 2, 3, 4, 5, 6, 7, 8})
	var res *Result
	cl.StartGet("k", 1, func(r Result) { res = &r })
	first := cap.sent[0].Msg.(*core.GetRequest).ID

	cl.Tick()
	cl.Tick() // deadline hits → retry
	if len(cap.sent) != 2 {
		t.Fatalf("sent %d messages after timeout, want 2", len(cap.sent))
	}
	second := cap.sent[1].Msg.(*core.GetRequest).ID
	if second == first {
		t.Error("retry reused the request id (would be dedup'd everywhere)")
	}
	if res != nil {
		t.Fatal("op completed during retries")
	}

	// A late reply to the OLD id is ignored...
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.GetReply{ID: first, Value: []byte("old")}})
	if res != nil {
		t.Fatal("stale-id reply completed the op")
	}
	// ...while the new id completes it.
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.GetReply{ID: second, Value: []byte("new")}})
	if res == nil || string(res.Value) != "new" || res.Retries != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRetriesExhaustToTimeout(t *testing.T) {
	cl, _ := newTestCore(t, Config{TimeoutTicks: 1, Retries: 2}, []transport.NodeID{1})
	var res *Result
	cl.StartGet("k", 1, func(r Result) { res = &r })
	for i := 0; i < 10 && res == nil; i++ {
		cl.Tick()
	}
	if res == nil {
		t.Fatal("op never failed")
	}
	if !errors.Is(res.Err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", res.Err)
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d, want 2", res.Retries)
	}
}

func TestAcksAccumulateAcrossRetries(t *testing.T) {
	cl, cap := newTestCore(t, Config{PutAcks: 2, TimeoutTicks: 2, Retries: 3}, []transport.NodeID{1})
	var res *Result
	cl.StartPut("k", 1, nil, func(r Result) { res = &r })
	first := cap.sent[0].Msg.(*core.PutRequest).ID
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: first}})
	cl.Tick()
	cl.Tick() // retry with fresh id
	second := cap.sent[1].Msg.(*core.PutRequest).ID
	// One more DISTINCT replica acking the second attempt completes.
	cl.HandleMessage(transport.Envelope{From: 6, Msg: &core.PutAck{ID: second}})
	if res == nil || res.Acks != 2 {
		t.Fatalf("res = %+v", res)
	}
}

// TestPutAckToSupersededAttemptCounts pins the retry-aliasing fix: a
// retry re-issues the put under a fresh request id, but acks provoked
// by the PREVIOUS attempt are from distinct replicas of the same
// (key, version) and may still be in flight. Dropping them made
// PutAcks>1 operations time out needlessly; the old id must stay
// aliased to the live op.
func TestPutAckToSupersededAttemptCounts(t *testing.T) {
	cl, cap := newTestCore(t, Config{PutAcks: 2, TimeoutTicks: 2, Retries: 3}, []transport.NodeID{1})
	var res *Result
	cl.StartPut("k", 1, nil, func(r Result) { res = &r })
	first := cap.sent[0].Msg.(*core.PutRequest).ID

	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: first}})
	cl.Tick()
	cl.Tick() // deadline hits → retry under a fresh id
	second := cap.sent[1].Msg.(*core.PutRequest).ID
	if second == first {
		t.Fatal("retry reused the request id")
	}
	// The replica that already acked attempt one acking again — via the
	// old id — is still one replica and must not complete the op.
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: first}})
	if res != nil {
		t.Fatal("duplicate replica completed the put via the old id")
	}
	// A second, distinct replica whose ack is addressed to the OLD
	// attempt id completes the op: the acks are split across attempts.
	cl.HandleMessage(transport.Envelope{From: 6, Msg: &core.PutAck{ID: first}})
	if res == nil || res.Err != nil || res.Acks != 2 || res.Retries != 1 {
		t.Fatalf("res = %+v, want 2 acks across attempts", res)
	}
	if cl.Pending() != 0 {
		t.Errorf("pending = %d", cl.Pending())
	}
	// Late acks to either id of the completed op are dropped.
	doneAcks := res.Acks
	cl.HandleMessage(transport.Envelope{From: 7, Msg: &core.PutAck{ID: first}})
	cl.HandleMessage(transport.Envelope{From: 7, Msg: &core.PutAck{ID: second}})
	if res.Acks != doneAcks || cl.Pending() != 0 {
		t.Error("late ack revived a completed op")
	}
}

// --- per-op options, delete, batch, cancel ---------------------------------

// TestPerOpAcksOverrideConfig pins the override semantics: Opts.Acks
// beats Config.PutAcks for that one op, zero inherits, negative means
// fire-and-forget — and neighbouring ops are untouched.
func TestPerOpAcksOverrideConfig(t *testing.T) {
	cl, cap := newTestCore(t, Config{PutAcks: 1}, []transport.NodeID{1})
	var strict, inherit, forget *Result
	cl.StartPutOpts("strict", 1, nil, Opts{Acks: 2}, func(r Result) { strict = &r })
	cl.StartPutOpts("inherit", 1, nil, Opts{}, func(r Result) { inherit = &r })
	cl.StartPutOpts("forget", 1, nil, Opts{Acks: -1}, func(r Result) { forget = &r })

	if forget == nil || forget.Err != nil {
		t.Fatalf("fire-and-forget override did not complete instantly: %+v", forget)
	}
	strictID := cap.sent[0].Msg.(*core.PutRequest).ID
	inheritID := cap.sent[1].Msg.(*core.PutRequest).ID

	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: strictID}})
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutAck{ID: inheritID}})
	if inherit == nil || inherit.Acks != 1 {
		t.Fatalf("config-default op did not complete on 1 ack: %+v", inherit)
	}
	if strict != nil {
		t.Fatal("Acks:2 op completed on a single ack")
	}
	cl.HandleMessage(transport.Envelope{From: 6, Msg: &core.PutAck{ID: strictID}})
	if strict == nil || strict.Acks != 2 {
		t.Fatalf("Acks:2 op = %+v", strict)
	}
}

// TestPerOpTimeoutAndRetries: an op with a tighter per-op budget fails
// while config-default ops are still waiting.
func TestPerOpTimeoutAndRetries(t *testing.T) {
	cl, _ := newTestCore(t, Config{TimeoutTicks: 50, Retries: 3}, []transport.NodeID{1})
	var fast, slow *Result
	cl.StartGetOpts("fast", 1, Opts{TimeoutTicks: 1, Retries: -1}, func(r Result) { fast = &r })
	cl.StartGetOpts("slow", 1, Opts{}, func(r Result) { slow = &r })
	cl.Tick()
	if fast == nil || !errors.Is(fast.Err, ErrTimeout) || fast.Retries != 0 {
		t.Fatalf("per-op timeout/no-retry op = %+v", fast)
	}
	if slow != nil {
		t.Fatal("config-default op expired with the per-op one")
	}
}

func TestDeleteCompletesOnAcks(t *testing.T) {
	cl, cap := newTestCore(t, Config{PutAcks: 2}, []transport.NodeID{1})
	var res *Result
	cl.StartDelete("k", 7, Opts{}, func(r Result) { res = &r })
	req, ok := cap.sent[0].Msg.(*core.DeleteRequest)
	if !ok || req.Key != "k" || req.Version != 7 || req.TTL != core.TTLUnset {
		t.Fatalf("sent %#v", cap.sent[0].Msg)
	}
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.DeleteAck{ID: req.ID}})
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.DeleteAck{ID: req.ID}}) // dup replica
	if res != nil {
		t.Fatal("duplicate replica completed the delete")
	}
	cl.HandleMessage(transport.Envelope{From: 6, Msg: &core.DeleteAck{ID: req.ID}})
	if res == nil || res.Err != nil || res.Acks != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPutBatchCompletesOnAckAndRetriesWholeBatch(t *testing.T) {
	cl, cap := newTestCore(t, Config{TimeoutTicks: 2, Retries: 2}, []transport.NodeID{1, 2, 3, 4})
	objs := []store.Object{
		{Key: "a", Version: 1, Value: []byte("x")},
		{Key: "b", Version: 1, Value: []byte("y")},
	}
	var res *Result
	cl.StartPutBatch(objs, Opts{}, func(r Result) { res = &r })
	first, ok := cap.sent[0].Msg.(*core.PutBatchRequest)
	if !ok || len(first.Objs) != 2 || first.TTL != core.TTLUnset {
		t.Fatalf("sent %#v", cap.sent[0].Msg)
	}

	cl.Tick()
	cl.Tick() // deadline → retry under a fresh id, same payload
	second := cap.sent[1].Msg.(*core.PutBatchRequest)
	if second.ID == first.ID {
		t.Fatal("batch retry reused the request id")
	}
	if len(second.Objs) != 2 {
		t.Fatalf("retry carried %d objects, want the whole batch", len(second.Objs))
	}
	// An ack addressed to the superseded attempt id still counts.
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.PutBatchAck{ID: first.ID, Stored: 2}})
	if res == nil || res.Err != nil || res.Acks != 1 || res.Retries != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEmptyPutBatchCompletesImmediately(t *testing.T) {
	cl, cap := newTestCore(t, Config{}, []transport.NodeID{1})
	var res *Result
	cl.StartPutBatch(nil, Opts{}, func(r Result) { res = &r })
	if res == nil || res.Err != nil {
		t.Fatalf("empty batch: %+v", res)
	}
	if len(cap.sent) != 0 || cl.Pending() != 0 {
		t.Errorf("empty batch sent %d messages, %d pending", len(cap.sent), cl.Pending())
	}
}

func TestCancelRemovesPendingOp(t *testing.T) {
	cl, cap := newTestCore(t, Config{}, []transport.NodeID{1})
	fired := false
	id := cl.StartGet("k", 1, func(Result) { fired = true })
	if cl.Pending() != 1 {
		t.Fatalf("pending = %d", cl.Pending())
	}
	if !cl.Cancel(id) {
		t.Fatal("Cancel did not find the op")
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending after cancel = %d", cl.Pending())
	}
	// A late reply to the canceled id is dropped, and the callback
	// never runs — not even with an error.
	reqID := cap.sent[0].Msg.(*core.GetRequest).ID
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.GetReply{ID: reqID, Value: []byte("late")}})
	for i := 0; i < 50; i++ {
		cl.Tick()
	}
	if fired {
		t.Fatal("canceled op's callback ran")
	}
	if cl.Cancel(id) {
		t.Fatal("second Cancel found a ghost op")
	}
}

// TestCancelBySupersededAttemptID: the public wrapper only knows the
// first attempt's id; after retries, Cancel must still find the live op
// through the alias table.
func TestCancelBySupersededAttemptID(t *testing.T) {
	cl, _ := newTestCore(t, Config{PutAcks: 2, TimeoutTicks: 1, Retries: 5}, []transport.NodeID{1})
	first := cl.StartPut("k", 1, nil, nil)
	cl.Tick() // retry: first id now lives in the alias table
	if cl.Pending() != 1 {
		t.Fatalf("pending = %d", cl.Pending())
	}
	if !cl.Cancel(first) {
		t.Fatal("Cancel lost track of the op across a retry")
	}
	if cl.Pending() != 0 {
		t.Fatalf("pending after cancel = %d", cl.Pending())
	}
}

func TestEmptyLoadBalancerFailsAfterRetries(t *testing.T) {
	cl, cap := newTestCore(t, Config{TimeoutTicks: 1, Retries: 1}, nil)
	var res *Result
	cl.StartGet("k", 1, func(r Result) { res = &r })
	if len(cap.sent) != 0 {
		t.Fatal("sent despite empty balancer")
	}
	for i := 0; i < 5 && res == nil; i++ {
		cl.Tick()
	}
	if res == nil || res.Err == nil {
		t.Fatalf("res = %+v, want timeout", res)
	}
}

// --- load balancers ---------------------------------------------------------

func TestRandomLBUniform(t *testing.T) {
	lb := NewRandomLB([]transport.NodeID{1, 2, 3, 4}, sim.RNG(5, 5))
	counts := map[transport.NodeID]int{}
	for i := 0; i < 4000; i++ {
		id, ok := lb.Contact("any")
		if !ok {
			t.Fatal("no contact")
		}
		counts[id]++
	}
	for id, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("node %v picked %d of 4000", id, c)
		}
	}
}

func TestRandomLBEmpty(t *testing.T) {
	lb := NewRandomLB(nil, sim.RNG(1, 1))
	if _, ok := lb.Contact("k"); ok {
		t.Error("empty balancer returned a contact")
	}
	lb.SetNodes([]transport.NodeID{9})
	if id, ok := lb.Contact("k"); !ok || id != 9 {
		t.Errorf("Contact = %v, %v", id, ok)
	}
}

func TestCachingLBLearnsAndForgets(t *testing.T) {
	inner := NewRandomLB([]transport.NodeID{1, 2, 3}, sim.RNG(2, 2))
	lb := NewCachingLB(inner, 4)

	// Cold: falls back to random.
	if _, ok := lb.Contact("key-a"); !ok {
		t.Fatal("no fallback contact")
	}
	// Learn which node answered for key-a's slice, then always use it.
	lb.ObserveReply("key-a", 2, 42)
	for i := 0; i < 10; i++ {
		if id, _ := lb.Contact(keyInSlice(t, 2, 4)); id != 42 {
			t.Fatalf("cached contact = %v, want 42", id)
		}
	}
	if lb.CacheSize() != 1 {
		t.Errorf("CacheSize = %d", lb.CacheSize())
	}
	// A timeout evicts the node everywhere.
	lb.Forget(42)
	if lb.CacheSize() != 0 {
		t.Errorf("CacheSize after Forget = %d", lb.CacheSize())
	}
}

func TestCachingLBIgnoresNegativeSlice(t *testing.T) {
	lb := NewCachingLB(NewRandomLB([]transport.NodeID{1}, sim.RNG(3, 3)), 4)
	lb.ObserveReply("k", -1, 42)
	if lb.CacheSize() != 0 {
		t.Error("cached an unknown slice")
	}
}

// keyInSlice finds a key that maps to the wanted slice under k slices.
func keyInSlice(t *testing.T, want int32, k int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := "probe" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		if slicing.KeySlice(key, k) == want {
			return key
		}
	}
	t.Fatal("no key found for slice")
	return ""
}

func TestRequestIDsAreClientScoped(t *testing.T) {
	cl, cap := newTestCore(t, Config{}, []transport.NodeID{1})
	cl.StartGet("a", 1, nil)
	cl.StartGet("b", 1, nil)
	id1 := cap.sent[0].Msg.(*core.GetRequest).ID
	id2 := cap.sent[1].Msg.(*core.GetRequest).ID
	if id1 == id2 {
		t.Error("two ops share a request id")
	}
	if gossip.RequestID(id1).Origin() != cl.ID() {
		t.Errorf("origin = %v, want %v", id1.Origin(), cl.ID())
	}
	if id1.Seq() == id2.Seq() {
		t.Error("sequence numbers repeat")
	}
}
