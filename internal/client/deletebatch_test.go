package client

import (
	"errors"
	"testing"

	"dataflasks/internal/core"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

func TestDeleteBatchCompletesWithApplied(t *testing.T) {
	cl, cap := newTestCore(t, Config{}, []transport.NodeID{1, 2, 3})
	items := []core.DeleteItem{
		{Key: "a", Version: 1},
		{Key: "b", Version: store.Latest},
	}
	var res *Result
	cl.StartDeleteBatch(items, Opts{}, func(r Result) { res = &r })

	if len(cap.sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(cap.sent))
	}
	req, ok := cap.sent[0].Msg.(*core.DeleteBatchRequest)
	if !ok {
		t.Fatalf("sent %#v", cap.sent[0].Msg)
	}
	if req.TTL != core.TTLUnset {
		t.Errorf("client stamped TTL %d itself", req.TTL)
	}
	if len(req.Items) != 2 || req.Items[1].Version != store.Latest {
		t.Fatalf("wire items = %+v", req.Items)
	}
	if res != nil {
		t.Fatal("delete batch completed before any ack")
	}

	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.DeleteBatchAck{ID: req.ID, Applied: 1}})
	if res == nil || res.Err != nil {
		t.Fatalf("delete batch not completed: %+v", res)
	}
	if res.Applied != 1 {
		t.Errorf("applied = %d, want 1", res.Applied)
	}
	if cl.Pending() != 0 {
		t.Errorf("pending = %d", cl.Pending())
	}
}

// TestDeleteBatchAppliedIsMaxAcrossReplicas: replicas may hold
// different subsets mid-convergence; the surfaced count is the most
// complete replica's view.
func TestDeleteBatchAppliedIsMaxAcrossReplicas(t *testing.T) {
	cl, cap := newTestCore(t, Config{PutAcks: 2}, []transport.NodeID{1})
	var res *Result
	cl.StartDeleteBatch([]core.DeleteItem{{Key: "a", Version: 1}, {Key: "b", Version: 2}},
		Opts{}, func(r Result) { res = &r })
	id := cap.sent[0].Msg.(*core.DeleteBatchRequest).ID

	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.DeleteBatchAck{ID: id, Applied: 2}})
	if res != nil {
		t.Fatal("completed with one of two required acks")
	}
	cl.HandleMessage(transport.Envelope{From: 6, Msg: &core.DeleteBatchAck{ID: id, Applied: 1}})
	if res == nil || res.Acks != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.Applied != 2 {
		t.Errorf("applied = %d, want the max across replicas (2)", res.Applied)
	}
}

func TestDeleteBatchEmptyCompletesImmediately(t *testing.T) {
	cl, cap := newTestCore(t, Config{}, []transport.NodeID{1})
	var res *Result
	cl.StartDeleteBatch(nil, Opts{}, func(r Result) { res = &r })
	if res == nil || res.Err != nil {
		t.Fatalf("empty batch did not complete immediately: %+v", res)
	}
	if len(cap.sent) != 0 {
		t.Errorf("empty batch sent %d messages", len(cap.sent))
	}
}

func TestDeleteBatchRetriesAliasAcks(t *testing.T) {
	cl, cap := newTestCore(t, Config{PutAcks: 2, TimeoutTicks: 1, Retries: 3}, []transport.NodeID{1})
	var res *Result
	cl.StartDeleteBatch([]core.DeleteItem{{Key: "a", Version: 1}},
		Opts{}, func(r Result) { res = &r })
	firstID := cap.sent[0].Msg.(*core.DeleteBatchRequest).ID

	cl.Tick() // expire attempt 1 → re-issue under a fresh id
	if len(cap.sent) != 2 {
		t.Fatalf("sent %d messages after retry, want 2", len(cap.sent))
	}
	secondID := cap.sent[1].Msg.(*core.DeleteBatchRequest).ID
	if secondID == firstID {
		t.Fatal("retry reused the request id")
	}

	// One ack addressed to the superseded attempt + one to the live
	// attempt: distinct replicas, so together they complete the op.
	cl.HandleMessage(transport.Envelope{From: 5, Msg: &core.DeleteBatchAck{ID: firstID, Applied: 1}})
	cl.HandleMessage(transport.Envelope{From: 6, Msg: &core.DeleteBatchAck{ID: secondID, Applied: 1}})
	if res == nil || res.Err != nil || res.Acks != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDeleteBatchTimesOut(t *testing.T) {
	cl, _ := newTestCore(t, Config{TimeoutTicks: 1, Retries: -1}, []transport.NodeID{1})
	var res *Result
	cl.StartDeleteBatch([]core.DeleteItem{{Key: "a", Version: 1}},
		Opts{}, func(r Result) { res = &r })
	cl.Tick()
	if res == nil || !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("res = %+v, want ErrTimeout", res)
	}
}
