package slicing

import (
	"context"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dataflasks/internal/transport"
)

func TestKeySliceBounds(t *testing.T) {
	prop := func(key string, k uint8) bool {
		slices := int(k%32) + 1
		s := KeySlice(key, slices)
		return s >= 0 && s < int32(slices)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKeySliceStable(t *testing.T) {
	if KeySlice("alpha", 10) != KeySlice("alpha", 10) {
		t.Error("KeySlice not deterministic")
	}
}

func TestKeySliceUniform(t *testing.T) {
	const n, k = 10000, 10
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[KeySlice(Key(i), k)]++
	}
	for s, c := range counts {
		if c < n/k*7/10 || c > n/k*13/10 {
			t.Errorf("slice %d holds %d of %d keys (want ~%d)", s, c, n, n/k)
		}
	}
}

// Key formats a test key (mirrors the workload generator's format).
func Key(i int) string {
	return "user" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) +
		string(rune('0'+(i/100)%10)) + string(rune('0'+(i/1000)%10))
}

func TestKeySliceDegenerate(t *testing.T) {
	if s := KeySlice("x", 0); s != 0 {
		t.Errorf("k=0 → %d, want 0", s)
	}
	if s := KeySlice("x", 1); s != 0 {
		t.Errorf("k=1 → %d, want 0", s)
	}
}

func TestFracToSliceEdges(t *testing.T) {
	if s := fracToSlice(0, 10); s != 0 {
		t.Errorf("frac 0 → %d", s)
	}
	if s := fracToSlice(0.999999, 10); s != 9 {
		t.Errorf("frac ~1 → %d", s)
	}
	if s := fracToSlice(1.0, 10); s != 9 {
		t.Errorf("frac 1 clamps to %d, want 9", s)
	}
}

func TestLessTotalOrder(t *testing.T) {
	// Attribute ties break by id, so ranks form a strict total order.
	if !less(1.0, 1, 1.0, 2) {
		t.Error("tie not broken by id")
	}
	if less(1.0, 2, 1.0, 1) {
		t.Error("tie broken wrong way")
	}
	if !less(0.5, 9, 1.0, 1) {
		t.Error("attribute order ignored")
	}
}

// --- RankSlicer -----------------------------------------------------------

// feedRank feeds the slicer rounds of samples drawn uniformly from a
// fixed attribute population.
func feedRank(s *RankSlicer, population []float64, ids []transport.NodeID, rounds, perRound int, rng *rand.Rand) {
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			j := rng.IntN(len(population))
			s.Observe(ids[j], population[j])
		}
		s.Tick(context.Background())
	}
}

func TestRankSlicerConverges(t *testing.T) {
	const n, k = 100, 5
	population := make([]float64, n)
	ids := make([]transport.NodeID, n)
	for i := range population {
		population[i] = float64(i) / n // attribute = true rank fraction
		ids[i] = transport.NodeID(i + 1)
	}
	rng := rand.New(rand.NewPCG(1, 1))

	// A node with attribute 0.52 (true rank ~52%) should claim slice 2
	// of 5 ([0.4, 0.6)).
	s := NewRankSlicer(999, 0.52, RankSlicerConfig{Slices: k})
	feedRank(s, population, ids, 40, 10, rng)
	if got := s.Slice(); got != 2 {
		t.Errorf("slice = %d (estimate %.3f), want 2", got, s.Estimate())
	}

	// Extremes.
	low := NewRankSlicer(998, -1, RankSlicerConfig{Slices: k})
	feedRank(low, population, ids, 40, 10, rng)
	if got := low.Slice(); got != 0 {
		t.Errorf("lowest node slice = %d, want 0", got)
	}
	high := NewRankSlicer(997, 2, RankSlicerConfig{Slices: k})
	feedRank(high, population, ids, 40, 10, rng)
	if got := high.Slice(); got != k-1 {
		t.Errorf("highest node slice = %d, want %d", got, k-1)
	}
}

func TestRankSlicerUnknownBeforeSamples(t *testing.T) {
	s := NewRankSlicer(1, 0.5, RankSlicerConfig{Slices: 10})
	if s.Slice() != SliceUnknown {
		t.Errorf("slice = %d before any samples, want unknown", s.Slice())
	}
	s.Tick(context.Background()) // no samples: still unknown
	if s.Slice() != SliceUnknown {
		t.Error("tick without samples decided a slice")
	}
}

func TestRankSlicerHysteresis(t *testing.T) {
	s := NewRankSlicer(1, 0.5, RankSlicerConfig{Slices: 2, Alpha: 1, StickRounds: 3, MinSamples: 1})
	// First decision is immediate.
	s.Observe(2, 0.9)
	s.Observe(3, 0.8)
	s.Observe(4, 0.7)
	s.Tick(context.Background())
	if s.Slice() != 0 {
		t.Fatalf("initial slice = %d, want 0", s.Slice())
	}
	// A single contradictory round must not flip the claim...
	s.Observe(2, 0.1)
	s.Observe(3, 0.2)
	s.Observe(4, 0.3)
	s.Tick(context.Background())
	if s.Slice() != 0 {
		t.Fatalf("one noisy round flipped the slice")
	}
	// ...but a sustained change must.
	for i := 0; i < 3; i++ {
		s.Observe(2, 0.1)
		s.Observe(3, 0.2)
		s.Observe(4, 0.3)
		s.Tick(context.Background())
	}
	if s.Slice() != 1 {
		t.Fatalf("sustained change did not flip the slice: %d", s.Slice())
	}
}

func TestRankSlicerSetSliceCount(t *testing.T) {
	s := NewRankSlicer(1, 0.5, RankSlicerConfig{Slices: 2, MinSamples: 1})
	s.Observe(2, 0.9)
	s.Observe(3, 0.1)
	s.Tick(context.Background())
	if s.SliceCount() != 2 {
		t.Fatalf("SliceCount = %d", s.SliceCount())
	}
	s.SetSliceCount(10)
	if s.SliceCount() != 10 {
		t.Fatalf("SliceCount after set = %d", s.SliceCount())
	}
	// The claim re-derives immediately from the estimate (~0.5 → slice 5).
	if got := s.Slice(); got < 3 || got > 6 {
		t.Errorf("slice after reconfiguration = %d (estimate %.2f)", got, s.Estimate())
	}
	s.SetSliceCount(0) // ignored
	if s.SliceCount() != 10 {
		t.Error("SetSliceCount(0) changed k")
	}
}

func TestRankSlicerIgnoresSelfSamples(t *testing.T) {
	s := NewRankSlicer(1, 0.5, RankSlicerConfig{Slices: 2, MinSamples: 1})
	s.Observe(1, 0.9) // self: ignored
	s.Tick(context.Background())
	if s.Slice() != SliceUnknown {
		t.Error("self sample advanced the estimate")
	}
}

// --- SwapSlicer -----------------------------------------------------------

// swapHarness wires n swap slicers with synchronous delivery. Ticks are
// staggered (deliveries happen after each node's tick) as they are in
// real deployments; fully lockstep rounds would make every responder
// Busy.
type swapHarness struct {
	ids   []transport.NodeID
	nodes map[transport.NodeID]*SwapSlicer
	queue []transport.Envelope
}

func newSwapHarness(n int, k int, attrs []float64) *swapHarness {
	h := &swapHarness{nodes: make(map[transport.NodeID]*SwapSlicer, n)}
	ids := make([]transport.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = transport.NodeID(i + 1)
	}
	h.ids = ids
	for i := 0; i < n; i++ {
		id := ids[i]
		rng := rand.New(rand.NewPCG(11, uint64(i)))
		partnerRng := rand.New(rand.NewPCG(13, uint64(i)))
		partner := func() (transport.NodeID, bool) {
			for {
				p := ids[partnerRng.IntN(n)]
				if p != id {
					return p, true
				}
			}
		}
		sender := transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
			h.queue = append(h.queue, transport.Envelope{From: id, To: to, Msg: msg})
			return nil
		})
		h.nodes[id] = NewSwapSlicer(id, attrs[i], SwapSlicerConfig{Slices: k}, sender, partner, rng)
	}
	return h
}

func (h *swapHarness) round() {
	for _, id := range h.ids {
		h.nodes[id].Tick(context.Background())
		for len(h.queue) > 0 {
			env := h.queue[0]
			h.queue = h.queue[1:]
			h.nodes[env.To].Handle(context.Background(), env.From, env.Msg)
		}
	}
}

func TestSwapSlicerConverges(t *testing.T) {
	const n, k = 60, 3
	attrs := make([]float64, n)
	for i := range attrs {
		attrs[i] = float64((i * 7919) % n) // permuted attributes
	}
	h := newSwapHarness(n, k, attrs)
	for r := 0; r < 80; r++ {
		h.round()
	}
	// Count nodes whose claimed slice matches their true rank slice.
	correct := 0
	for id, s := range h.nodes {
		rank := 0
		for j := range attrs {
			other := transport.NodeID(j + 1)
			if other == id {
				continue
			}
			if less(attrs[j], other, attrs[int(id)-1], id) {
				rank++
			}
		}
		want := int32(rank * k / n)
		if s.Slice() == want {
			correct++
		}
	}
	if correct < n*7/10 {
		t.Errorf("only %d/%d nodes in their rank slice after 80 rounds", correct, n)
	}
}

func TestSwapSlicerValuesStayPermutation(t *testing.T) {
	const n = 20
	attrs := make([]float64, n)
	for i := range attrs {
		attrs[i] = float64(i)
	}
	h := newSwapHarness(n, 4, attrs)
	before := map[float64]int{}
	for _, s := range h.nodes {
		before[s.X()]++
	}
	for r := 0; r < 50; r++ {
		h.round()
	}
	after := map[float64]int{}
	for _, s := range h.nodes {
		after[s.X()]++
	}
	// With synchronous rounds (one exchange at a time per pair) the
	// value multiset is preserved exactly.
	for v, c := range before {
		if after[v] != c {
			t.Errorf("value %v count changed %d → %d", v, c, after[v])
		}
	}
}

func TestMisordered(t *testing.T) {
	// attr order a<b but x order a>b → must swap.
	if !misordered(1, 1, 0.9, 2, 2, 0.1) {
		t.Error("misordered pair not detected")
	}
	// consistent order → no swap.
	if misordered(1, 1, 0.1, 2, 2, 0.9) {
		t.Error("ordered pair flagged")
	}
}

// --- StaticSlicer ---------------------------------------------------------

func TestStaticSlicerSpreadsAndIsStable(t *testing.T) {
	const n, k = 500, 10
	counts := make([]int, k)
	for i := 1; i <= n; i++ {
		s := NewStaticSlicer(transport.NodeID(i), k)
		if s.Slice() != NewStaticSlicer(transport.NodeID(i), k).Slice() {
			t.Fatal("static slice not stable")
		}
		counts[s.Slice()]++
	}
	for s, c := range counts {
		if c < n/k/2 || c > n/k*2 {
			t.Errorf("slice %d has %d of %d nodes: %v", s, c, n, counts)
		}
	}
}

func TestStaticSlicerNoProtocolActivity(t *testing.T) {
	s := NewStaticSlicer(1, 4)
	before := s.Slice()
	s.Tick(context.Background())
	s.Observe(2, 0.5)
	if s.Handle(context.Background(), 2, &SwapRequest{}) {
		t.Error("static slicer claimed a message")
	}
	if s.Slice() != before {
		t.Error("static slice moved")
	}
}
