package slicing

import (
	"context"

	"dataflasks/internal/transport"
)

// RankSlicerConfig tunes the rank-estimation slicer.
type RankSlicerConfig struct {
	// Slices is the initial slice count k.
	Slices int
	// Alpha is the EWMA smoothing factor applied to the per-round rank
	// estimate. Smaller is steadier, larger adapts faster. Default 0.2.
	Alpha float64
	// StickRounds is how many consecutive rounds a new slice target must
	// persist before the claim switches (hysteresis against flapping,
	// the "steady" in Slead). Default 3.
	StickRounds int
	// MinSamples is how many samples a round needs before it updates
	// the estimate. Default 3.
	MinSamples int
}

func (c *RankSlicerConfig) defaults() {
	if c.Slices <= 0 {
		c.Slices = 1
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.StickRounds <= 0 {
		c.StickRounds = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
}

// RankSlicer estimates the local node's attribute rank from the uniform
// sample stream the Peer Sampling Service delivers: the fraction of
// observed attributes below our own converges to our normalized rank.
// It keeps only O(1) state (two counters and an EWMA), which is the
// defining property of Slead/DSlead. The slice claim is
// floor(rank·k), with hysteresis so transient noise does not flap the
// claim — important because slice changes trigger state transfer.
//
// RankSlicer is not safe for concurrent use.
type RankSlicer struct {
	self transport.NodeID
	attr float64
	cfg  RankSlicerConfig

	k          int
	estimate   float64 // EWMA of rank in [0,1]
	haveEst    bool
	claim      int32
	pendTarget int32 // candidate slice waiting out hysteresis
	pendRounds int

	roundBelow int
	roundTotal int
}

var _ Slicer = (*RankSlicer)(nil)

// NewRankSlicer creates a rank-estimation slicer for a node with the
// given attribute (for example its storage capacity).
func NewRankSlicer(self transport.NodeID, attr float64, cfg RankSlicerConfig) *RankSlicer {
	cfg.defaults()
	return &RankSlicer{
		self:       self,
		attr:       attr,
		cfg:        cfg,
		k:          cfg.Slices,
		claim:      SliceUnknown,
		pendTarget: SliceUnknown,
	}
}

// Attr returns the node's slicing attribute.
func (s *RankSlicer) Attr() float64 { return s.attr }

// Estimate returns the current rank estimate in [0,1] (0 before any
// samples).
func (s *RankSlicer) Estimate() float64 { return s.estimate }

// Slice implements Slicer.
func (s *RankSlicer) Slice() int32 { return s.claim }

// SliceCount implements Slicer.
func (s *RankSlicer) SliceCount() int { return s.k }

// SetSliceCount implements Slicer. Non-positive counts are ignored.
func (s *RankSlicer) SetSliceCount(k int) {
	if k <= 0 || k == s.k {
		return
	}
	s.k = k
	if s.haveEst {
		// Re-derive the claim immediately: a reconfiguration is a
		// deliberate global event, not noise to smooth over.
		s.claim = fracToSlice(s.estimate, s.k)
		s.pendTarget = SliceUnknown
		s.pendRounds = 0
	}
}

// Observe implements Slicer: count how the sample orders against us.
func (s *RankSlicer) Observe(id transport.NodeID, attr float64) {
	if id == s.self {
		return
	}
	s.roundTotal++
	if less(attr, id, s.attr, s.self) {
		s.roundBelow++
	}
}

// Handle implements Slicer. The rank slicer is message-free: all its
// input piggybacks on peer sampling.
func (s *RankSlicer) Handle(context.Context, transport.NodeID, interface{}) bool { return false }

// Tick implements Slicer: fold this round's samples into the estimate
// and update the claim under hysteresis. The slicer sends nothing, so
// ctx is unused.
func (s *RankSlicer) Tick(context.Context) {
	if s.roundTotal < s.cfg.MinSamples {
		return
	}
	frac := float64(s.roundBelow) / float64(s.roundTotal)
	s.roundBelow, s.roundTotal = 0, 0

	if !s.haveEst {
		s.estimate = frac
		s.haveEst = true
		s.claim = fracToSlice(s.estimate, s.k)
		return
	}
	s.estimate = s.cfg.Alpha*frac + (1-s.cfg.Alpha)*s.estimate

	target := fracToSlice(s.estimate, s.k)
	switch {
	case target == s.claim:
		s.pendTarget = SliceUnknown
		s.pendRounds = 0
	case target == s.pendTarget:
		s.pendRounds++
		if s.pendRounds >= s.cfg.StickRounds {
			s.claim = target
			s.pendTarget = SliceUnknown
			s.pendRounds = 0
		}
	default:
		s.pendTarget = target
		s.pendRounds = 1
	}
}
