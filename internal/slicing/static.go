package slicing

import (
	"context"

	"dataflasks/internal/hashmix"
	"dataflasks/internal/transport"
)

// StaticSlicer assigns slices by hashing the node id — the "coin toss"
// alternative the paper discusses and rejects (§IV-A): it distributes
// nodes uniformly but, being memoryless, cannot rebalance after a
// correlated failure wipes out most of one slice. It exists as the
// baseline for the correlated-failure experiment (E4).
type StaticSlicer struct {
	self transport.NodeID
	k    int
	frac float64
}

var _ Slicer = (*StaticSlicer)(nil)

// NewStaticSlicer creates the hash-based baseline slicer.
func NewStaticSlicer(self transport.NodeID, slices int) *StaticSlicer {
	if slices <= 0 {
		slices = 1
	}
	return &StaticSlicer{
		self: self,
		k:    slices,
		frac: hashmix.Frac(hashmix.HashUint64(uint64(self))),
	}
}

// Slice implements Slicer.
func (s *StaticSlicer) Slice() int32 { return fracToSlice(s.frac, s.k) }

// SliceCount implements Slicer.
func (s *StaticSlicer) SliceCount() int { return s.k }

// SetSliceCount implements Slicer.
func (s *StaticSlicer) SetSliceCount(k int) {
	if k > 0 {
		s.k = k
	}
}

// Observe implements Slicer (no-op).
func (s *StaticSlicer) Observe(transport.NodeID, float64) {}

// Tick implements Slicer (no-op).
func (s *StaticSlicer) Tick(context.Context) {}

// Handle implements Slicer (no-op).
func (s *StaticSlicer) Handle(context.Context, transport.NodeID, interface{}) bool { return false }
