// Package slicing implements distributed slicing: autonomously
// partitioning the system into k ordered groups ("slices") by a locally
// measured attribute, with no global knowledge (paper §II, §IV-A).
//
// Three interchangeable slicers are provided:
//
//   - RankSlicer — the DSlead-style low-memory estimator used by
//     DataFlasks: each node estimates its attribute's rank from the
//     uniform descriptor stream the Peer Sampling Service already
//     delivers, at zero extra message cost.
//   - SwapSlicer — the Jelasity–Kermarrec ordered-slicing protocol:
//     nodes hold random values and swap them pairwise until the value
//     order matches the attribute order.
//   - StaticSlicer — the "coin toss" baseline the paper argues against
//     (§IV-A): a fixed hash of the node id. Uniform, but unable to
//     rebalance after correlated failures.
package slicing

import (
	"context"

	"dataflasks/internal/hashmix"
	"dataflasks/internal/transport"
)

// Slicer is the slice-manager interface the node runtime drives.
type Slicer interface {
	// Slice returns the node's current slice claim in [0, k), or
	// SliceUnknown before the first decision.
	Slice() int32
	// SliceCount returns k.
	SliceCount() int
	// SetSliceCount reconfigures k at runtime (replication management,
	// paper §IV-C); the claim adapts on subsequent ticks.
	SetSliceCount(k int)
	// Observe feeds one uniform sample from the peer-sampling stream.
	Observe(id transport.NodeID, attr float64)
	// Tick runs one protocol round; ctx bounds the round's sends.
	Tick(ctx context.Context)
	// Handle processes a message, reporting false when it is not a
	// slicing message. ctx bounds any sends the handler makes (swap
	// replies).
	Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool
}

// SliceUnknown is returned before a slicer has made its first decision.
const SliceUnknown int32 = -1

// KeyFraction maps a key to [0,1) by FNV-1a hashing with full-avalanche
// finalization; the whole key space is spread uniformly across slices.
func KeyFraction(key string) float64 {
	return hashmix.Frac(hashmix.HashString(key))
}

// KeySlice maps a key to its owning slice under k slices.
func KeySlice(key string, k int) int32 {
	if k <= 0 {
		return 0
	}
	s := int32(KeyFraction(key) * float64(k))
	if s >= int32(k) {
		s = int32(k) - 1
	}
	return s
}

// fracToSlice converts a rank estimate in [0,1] to a slice index.
func fracToSlice(frac float64, k int) int32 {
	if k <= 0 {
		return 0
	}
	s := int32(frac * float64(k))
	if s >= int32(k) {
		s = int32(k) - 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// less orders nodes by (attribute, id): ids break attribute ties so
// ranks form a total order even with equal capacities.
func less(attrA float64, idA transport.NodeID, attrB float64, idB transport.NodeID) bool {
	if attrA != attrB {
		return attrA < attrB
	}
	return idA < idB
}
