package slicing

import (
	"context"
	"math/rand/v2"

	"dataflasks/internal/transport"
)

// SwapRequest proposes an ordered-slicing exchange: the initiator sends
// its attribute and current random value.
type SwapRequest struct {
	Attr float64
	X    float64
	// Seq matches replies to requests: a reply delayed past the next
	// round must not complete a newer exchange.
	Seq uint32
}

// SwapReply answers with the responder's pre-exchange state and whether
// it performed the swap. Busy refuses the exchange (the responder has
// its own exchange in flight), which keeps the value multiset a
// permutation under concurrency.
type SwapReply struct {
	Attr    float64
	X       float64
	Swapped bool
	Busy    bool
	Seq     uint32
}

// SwapSlicerConfig tunes the ordered-swap slicer.
type SwapSlicerConfig struct {
	// Slices is the initial slice count k.
	Slices int
	// OnSendErr observes swap send failures. A lost exchange costs a
	// round (the pending flag clears at the next Tick), but the
	// failure is counted, never silently dropped (wire_send_errors).
	OnSendErr func(error)
}

// PartnerFunc supplies a random gossip partner (typically from the
// peer-sampling view).
type PartnerFunc func() (transport.NodeID, bool)

// SwapSlicer implements Jelasity–Kermarrec ordered slicing: every node
// draws a random value x ∈ [0,1); each round it compares (attribute, x)
// order with a random partner and swaps the x values when they disagree.
// At convergence the sorted order of x matches the sorted order of
// attributes, so floor(x·k) is the node's slice. It costs two messages
// per node per round, which is why DataFlasks prefers the message-free
// rank estimator; it is included as the classic alternative and for the
// ablation experiments.
//
// Concurrency control: a node with its own exchange outstanding answers
// Busy instead of swapping. The initiator's x is therefore stable
// between request and reply, and the responder commits atomically in
// its handler, so swaps preserve the global multiset of values (an
// exact permutation), which the slice mapping depends on. A lost reply
// merely wastes a round: the pending flag clears at the next Tick.
//
// SwapSlicer is not safe for concurrent use by multiple goroutines.
type SwapSlicer struct {
	self    transport.NodeID
	attr    float64
	x       float64
	k       int
	out     transport.Sender
	partner PartnerFunc
	rng     *rand.Rand
	onErr   func(error)

	hasPending  bool
	pendingPeer transport.NodeID
	seq         uint32
}

var _ Slicer = (*SwapSlicer)(nil)

// NewSwapSlicer creates an ordered-swap slicer; rng seeds the node's
// random value.
func NewSwapSlicer(self transport.NodeID, attr float64, cfg SwapSlicerConfig, out transport.Sender, partner PartnerFunc, rng *rand.Rand) *SwapSlicer {
	if cfg.Slices <= 0 {
		cfg.Slices = 1
	}
	if out == nil || partner == nil || rng == nil {
		panic("slicing: NewSwapSlicer requires sender, partner func and rng")
	}
	return &SwapSlicer{
		self:    self,
		attr:    attr,
		x:       rng.Float64(),
		k:       cfg.Slices,
		out:     out,
		partner: partner,
		rng:     rng,
		onErr:   cfg.OnSendErr,
	}
}

// sendErr reports a failed swap send to the configured observer.
func (s *SwapSlicer) sendErr(err error) {
	if err != nil && s.onErr != nil {
		s.onErr(err)
	}
}

// X returns the node's current random value (exported for tests and the
// convergence experiment).
func (s *SwapSlicer) X() float64 { return s.x }

// Slice implements Slicer.
func (s *SwapSlicer) Slice() int32 { return fracToSlice(s.x, s.k) }

// SliceCount implements Slicer.
func (s *SwapSlicer) SliceCount() int { return s.k }

// SetSliceCount implements Slicer. Non-positive counts are ignored.
func (s *SwapSlicer) SetSliceCount(k int) {
	if k > 0 {
		s.k = k
	}
}

// Observe implements Slicer; the swap slicer ignores the passive stream.
func (s *SwapSlicer) Observe(transport.NodeID, float64) {}

// Tick implements Slicer: initiate one exchange. A still-outstanding
// exchange from the previous round (lost reply, dead partner) is
// abandoned first.
func (s *SwapSlicer) Tick(ctx context.Context) {
	s.hasPending = false
	peer, ok := s.partner()
	if !ok || peer == s.self {
		return
	}
	s.seq++
	s.hasPending = true
	s.pendingPeer = peer
	s.sendErr(s.out.Send(ctx, peer, &SwapRequest{Attr: s.attr, X: s.x, Seq: s.seq}))
}

// Handle implements Slicer.
func (s *SwapSlicer) Handle(ctx context.Context, from transport.NodeID, msg interface{}) bool {
	switch m := msg.(type) {
	case *SwapRequest:
		if s.hasPending {
			// Our own exchange is in flight; swapping now would
			// invalidate the value we promised the other partner.
			s.sendErr(s.out.Send(ctx, from, &SwapReply{Busy: true, Seq: m.Seq}))
			return true
		}
		myAttr, myX := s.attr, s.x
		if misordered(m.Attr, from, m.X, myAttr, s.self, myX) {
			s.x = m.X // commit our half atomically
			s.sendErr(s.out.Send(ctx, from, &SwapReply{Attr: myAttr, X: myX, Swapped: true, Seq: m.Seq}))
		} else {
			s.sendErr(s.out.Send(ctx, from, &SwapReply{Attr: myAttr, X: myX, Swapped: false, Seq: m.Seq}))
		}
		return true
	case *SwapReply:
		if !s.hasPending || s.pendingPeer != from || m.Seq != s.seq {
			return true // stale or unsolicited reply
		}
		s.hasPending = false
		if m.Busy {
			return true
		}
		if m.Swapped {
			// The responder took our x; adopt theirs to complete the
			// swap. Our x cannot have changed since the request: the
			// pending flag refused every exchange in between.
			s.x = m.X
		}
		return true
	default:
		return false
	}
}

// misordered reports whether the attribute order of (a, b) disagrees
// with their random-value order, in which case the values must swap.
func misordered(attrA float64, idA transport.NodeID, xA float64, attrB float64, idB transport.NodeID, xB float64) bool {
	attrLess := less(attrA, idA, attrB, idB)
	xLess := xA < xB
	return attrLess != xLess
}
