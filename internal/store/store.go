// Package store implements the Data Store abstraction of the paper's
// node architecture (§V): a versioned object store addressed by
// (key, version). Versions are assigned by the upper layer
// (DataDroplets) which totally orders puts, so the store never resolves
// conflicts — it keeps the versions it is given and serves exact-version
// or latest-version reads.
//
// Three engines are provided: a memory engine for simulations and
// caches; a disk engine (file per object, atomic rename writes) that is
// simple and debuggable; and a log engine (segmented append-only files,
// CRC-checksummed records, group-commit fsync, background compaction)
// whose batched sequential writes carry the persistence DataFlasks owes
// the soft-state layer above it (§III) at epidemic replication rates.
package store

import (
	"errors"
	"fmt"
)

// Latest is the version sentinel for newest-wins reads.
const Latest uint64 = ^uint64(0)

// AllVersions is the version sentinel for deletes that remove every
// stored version of a key (whole-key removal — Redis DEL semantics
// through the RESP gateway). It is interpreted by the node's delete
// paths, which expand it to the replica's stored versions; engines
// never see it.
const AllVersions uint64 = ^uint64(0) - 1

// Object is one stored (key, version, value) triple.
type Object struct {
	Key     string
	Version uint64
	Value   []byte
}

// Deletion names one (key, version) pair of a DeleteBatch. Version may
// be Latest (resolved per item against the not-yet-deleted state).
type Deletion struct {
	Key     string
	Version uint64
}

// Ref names one stored (key, version) pair without its value — the
// unit of streamed reads (StreamObjects). Unlike Deletion, a Ref
// always names a concrete version: streaming serves exactly what a
// digest advertised, never a resolved sentinel.
type Ref struct {
	Key     string
	Version uint64
}

// ReservedVersion reports whether v is a sentinel no object may be
// stored under — every engine's Put/PutBatch rejects these, so a
// poisoned write can never shadow Latest reads or alias the delete
// sentinels.
func ReservedVersion(v uint64) bool { return v == Latest || v == AllVersions }

// SegmentInfo describes one sealed, immutable unit of bulk transfer:
// in the log engine a sealed segment file, in the other engines a
// synthetic segment covering the whole object set. The manifest is
// what a bootstrap peer advertises and what a snapshot records, so it
// carries everything a receiver needs to schedule and verify the
// transfer without reading a byte of data: size, record count, a CRC
// of the full record stream, and the key range for slice-coverage
// decisions.
type SegmentInfo struct {
	// ID is the engine-local segment identifier. IDs are only
	// meaningful to the store that issued the manifest; two nodes'
	// segment 3 share nothing.
	ID uint64
	// Bytes is the exact length of the segment's record stream.
	Bytes int64
	// Records counts records (puts and tombstones) in the stream.
	Records int
	// CRC is the IEEE CRC32 of the full record stream, chunk CRCs
	// chained in order — the end-to-end check after a chunked fetch.
	CRC uint32
	// MinKey and MaxKey bound the keys appearing in the segment
	// (both empty for an empty segment). Receivers use them to skip
	// segments entirely outside their slice's key coverage.
	MinKey, MaxKey string
}

// SegmentRef names a piece of a sealed segment to stream: the whole
// segment when Offset is 0, or a resume point (a chunk boundary a
// previous stream reported) otherwise.
type SegmentRef struct {
	ID     uint64
	Offset int64
}

// SegmentChunk is one verbatim piece of a sealed segment's record
// stream, aligned to record boundaries so every chunk parses on its
// own. Data may alias a buffer reused between callbacks: receivers
// copy what they keep.
type SegmentChunk struct {
	Segment uint64
	Offset  int64 // byte offset of Data within the record stream
	Data    []byte
	Last    bool // true on the chunk that reaches the segment's end
}

// Store is the node-local persistence interface.
//
// Implementations must be safe for concurrent use: the node event loop,
// anti-entropy and test harnesses may touch the store from different
// goroutines in live deployments.
type Store interface {
	// Put stores value under (key, version). Storing an existing
	// (key, version) pair again is idempotent: the upper layer totally
	// orders puts, so equal pairs carry equal values and the second
	// write is a no-op.
	Put(key string, version uint64, value []byte) error
	// PutBatch stores a batch of objects in one engine call: one lock
	// acquisition, and in the log engine one encoded append plus one
	// group-commit fsync for the whole batch. Each engine applies its
	// own Put validation rules to every object before storing any, so
	// an object the engine's Put would reject (the reserved version
	// everywhere; an oversized key or value where the engine has such
	// limits) fails the batch with no side effects; an I/O failure
	// mid-batch may leave a prefix applied. Objects already present
	// are skipped like idempotent re-puts.
	PutBatch(objs []Object) error
	// Get returns the value at (key, version); version Latest returns
	// the highest stored version. ok is false when absent.
	Get(key string, version uint64) (value []byte, actualVersion uint64, ok bool, err error)
	// Versions returns the stored versions of key in ascending order.
	Versions(key string) ([]uint64, error)
	// Delete removes one version of key; version Latest removes the
	// newest stored version (mirroring Get). It is a no-op when
	// absent; existed reports whether anything was actually removed
	// (batch deletes and the RESP gateway's DEL count rely on it).
	Delete(key string, version uint64) (existed bool, err error)
	// DeleteBatch removes a batch of (key, version) pairs in one
	// engine call — mirroring PutBatch: one lock acquisition and, in
	// the log engine, one group-commit fsync for every tombstone
	// instead of one per pair. Item versions may be Latest, resolved
	// in item order against the not-yet-deleted state. existed[i]
	// reports whether item i removed anything; an I/O failure
	// mid-batch may leave a prefix applied (existed reflects what
	// was).
	DeleteBatch(items []Deletion) (existed []bool, err error)
	// StreamObjects reads the values of the listed (key, version)
	// pairs and calls fn once per pair found, in list order. It is the
	// repair read path: engines with checksummed records (the log
	// engine) re-verify every record straight from its segment bytes,
	// and a record that is unreadable or fails verification is SKIPPED
	// — counted in corrupt, never served and never failing the rest of
	// the stream — so one rotted record cannot block the repair of the
	// objects around it. Pairs absent from the store are skipped
	// silently. The value passed to fn may alias a buffer reused
	// between calls (or, in the memory engine, the stored bytes): fn
	// must copy what it keeps and must not call back into the store.
	// Returning false from fn stops the stream early.
	StreamObjects(refs []Ref, fn func(o Object) bool) (corrupt int, err error)
	// Segments returns the manifest of sealed, immutable segments in
	// ascending id order — the units a bootstrap peer or snapshot can
	// stream in bulk. The log engine lists its sealed segment files
	// (never the active one, whose delta anti-entropy mops up); the
	// memory and disk engines synthesize a single segment covering the
	// whole object set. An empty store returns an empty manifest.
	Segments() ([]SegmentInfo, error)
	// StreamSegments streams the verbatim record bytes of the named
	// sealed segments, chunk by chunk in offset order, calling fn once
	// per chunk. Chunks align to record boundaries and every record is
	// CRC-re-verified as it is read, so a chunk that reaches fn is
	// whole and parseable on its own; a record that fails verification
	// stops that segment's stream with ErrCorrupt (a corrupt byte must
	// never be shipped verbatim — the receiver falls back to the
	// object-wise path for the remainder). A ref whose segment no
	// longer exists (compacted away since the manifest) is skipped
	// silently. Chunk data may alias a reused buffer: fn copies what
	// it keeps and must not call back into the store. Returning false
	// from fn stops the whole stream early.
	StreamSegments(refs []SegmentRef, fn func(c SegmentChunk) bool) error
	// ForEach visits every stored object header (no value) in
	// unspecified order; returning false stops iteration. Used to build
	// anti-entropy digests and slice handoffs.
	ForEach(fn func(key string, version uint64) bool) error
	// Count returns the number of stored objects (versions, not keys).
	Count() int
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// Stats is a point-in-time snapshot of an engine's physical state —
// what capacity planning and compaction monitoring need beyond the
// logical object Count. Engines without segment files report zeros.
type Stats struct {
	// Segments is the number of segment files, including the active one.
	Segments int
	// LiveBytes is the byte total of records the index still points at.
	LiveBytes int64
	// DeadBytes is the byte total of overwritten, deleted or tombstone
	// records awaiting compaction (file size minus live bytes).
	DeadBytes int64
	// CompactionPasses counts compaction passes that found candidate
	// segments and rewrote them (passes that found nothing are free and
	// uncounted).
	CompactionPasses uint64
}

// StatsProvider is implemented by engines that can report physical
// Stats (the log engine). Callers type-assert: the interface is
// optional so simple engines and test stubs need not fake segment
// accounting.
type StatsProvider interface {
	Stats() Stats
}

// Errors shared by engines.
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("store: closed")
	// ErrKeyTooLong reports a key exceeding an engine's limit.
	ErrKeyTooLong = errors.New("store: key too long")
	// ErrBadVersion reports a reserved sentinel (Latest, AllVersions)
	// used as a concrete version in Put.
	ErrBadVersion = fmt.Errorf("store: versions %d and %d are reserved", AllVersions, Latest)
	// ErrCorrupt reports a record that fails checksum or structural
	// verification; a corrupt record is never served as data.
	ErrCorrupt = errors.New("store: corrupt record")
	// ErrValueTooLarge reports a value exceeding an engine's record
	// size limit.
	ErrValueTooLarge = errors.New("store: value too large")
)
