package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// recordSize is the on-disk size of one put record.
func recordSize(key string, value []byte) int64 {
	return int64(recHeaderLen + recFixedLen + len(key) + len(value))
}

func TestLogRecordRoundTrip(t *testing.T) {
	rec := appendRecord(nil, recPut, "key", 42, []byte("value"))
	got, n, ok := parseRecord(rec)
	if !ok || n != len(rec) {
		t.Fatalf("parseRecord ok=%v n=%d", ok, n)
	}
	if got.typ != recPut || got.key != "key" || got.version != 42 || string(got.value) != "value" {
		t.Fatalf("parseRecord = %+v", got)
	}
	tomb := appendRecord(nil, recTomb, "key", 42, nil)
	got, _, ok = parseRecord(tomb)
	if !ok || got.typ != recTomb || got.key != "key" || got.version != 42 {
		t.Fatalf("tombstone roundtrip = %+v ok=%v", got, ok)
	}
}

func TestLogParseRejectsDamage(t *testing.T) {
	rec := appendRecord(nil, recPut, "key", 7, []byte("value"))
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x40
		if got, _, ok := parseRecord(bad); ok {
			// A flip in the length field may still parse iff the CRC
			// happens to match the re-framed body — effectively
			// impossible; any accepted parse here is a bug.
			t.Fatalf("flip at %d accepted: %+v", i, got)
		}
	}
	if _, _, ok := parseRecord(rec[:recHeaderLen-2]); ok {
		t.Error("short header accepted")
	}
	if _, _, ok := parseRecord(rec[:len(rec)-1]); ok {
		t.Error("truncated body accepted")
	}
}

func TestLogTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put("a", 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Put("b", 2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second record in half, as a crash mid-append would.
	seg := filepath.Join(dir, segmentName(1))
	full := recordSize("a", []byte("first")) + recordSize("b", []byte("second"))
	if err := os.Truncate(seg, full-3); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if l2.Count() != 1 {
		t.Fatalf("recovered %d objects, want 1", l2.Count())
	}
	if val, _, ok, err := l2.Get("a", 1); err != nil || !ok || string(val) != "first" {
		t.Fatalf("intact record lost: %q %v %v", val, ok, err)
	}
	if _, _, ok, _ := l2.Get("b", 2); ok {
		t.Fatal("torn record served")
	}
	// The tail was physically truncated, so appends resume cleanly.
	if err := l2.Put("c", 3, []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	if val, _, ok, _ := l2.Get("c", 3); !ok || string(val) != "after recovery" {
		t.Fatalf("post-recovery put = %q %v", val, ok)
	}
}

// TestLogCrashRecoveryProperty is the randomized crash test: N puts,
// then the tail is truncated or bit-flipped at a random offset. After
// reopening, every record wholly before the damage must survive with
// its exact value, nothing at or past the damage may be served, and the
// log must accept new writes.
func TestLogCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xf1a5, 0xc0de))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		l, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		type obj struct {
			key string
			ver uint64
			val []byte
			end int64 // file offset just past this record
		}
		var objs []obj
		var off int64
		n := 20 + rng.IntN(40)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%03d", rng.IntN(7))
			ver := uint64(i + 1)
			val := make([]byte, rng.IntN(64))
			for j := range val {
				val[j] = byte(rng.UintN(256))
			}
			if err := l.Put(key, ver, val); err != nil {
				t.Fatal(err)
			}
			off += recordSize(key, val)
			objs = append(objs, obj{key, ver, val, off})
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		seg := filepath.Join(dir, segmentName(1))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != off {
			t.Fatalf("segment size %d, expected %d", fi.Size(), off)
		}
		// Damage the log at a random offset. Truncation keeps records
		// wholly below the cut; a bit flip additionally destroys the
		// record containing the flipped byte.
		cut := rng.Int64N(off) // damage point in [0, off)
		damageStart := cut
		if rng.IntN(2) == 0 {
			if err := os.Truncate(seg, cut); err != nil {
				t.Fatal(err)
			}
		} else {
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			data[cut] ^= 0xff
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			// The damaged record starts at the end of the last record
			// that finishes at or before the flipped byte.
			damageStart = 0
			for _, o := range objs {
				if o.end <= cut {
					damageStart = o.end
				}
			}
		}

		l2, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatalf("trial %d: reopen after damage at %d: %v", trial, cut, err)
		}
		want := 0
		for _, o := range objs {
			if o.end <= damageStart {
				want++
				val, ver, ok, err := l2.Get(o.key, o.ver)
				if err != nil || !ok || ver != o.ver || !bytes.Equal(val, o.val) {
					t.Fatalf("trial %d: intact %s@%d lost (ok=%v err=%v)", trial, o.key, o.ver, ok, err)
				}
			} else {
				if _, _, ok, err := l2.Get(o.key, o.ver); ok || err != nil {
					t.Fatalf("trial %d: damaged %s@%d served (ok=%v err=%v)", trial, o.key, o.ver, ok, err)
				}
			}
		}
		if l2.Count() != want {
			t.Fatalf("trial %d: recovered %d objects, want %d", trial, l2.Count(), want)
		}
		if err := l2.Put("resume", uint64(n+1), []byte("post-crash")); err != nil {
			t.Fatalf("trial %d: post-recovery put: %v", trial, err)
		}
		l2.Close()
	}
}

func TestLogCorruptionInSealedSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentMaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Put(fmt.Sprintf("k%d", i), 1, []byte("some value here")); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("expected several segments, got %d", l.SegmentCount())
	}
	l.Close()
	// Corruption in a non-last segment is not a torn tail: it means
	// acknowledged history was damaged, and replay must say so.
	seg1 := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(dir, LogOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-log corruption: %v, want ErrCorrupt", err)
	}
}

func TestLogTombstonesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Put("k", 1, []byte("doomed"))
	_ = l.Put("k", 2, []byte("kept"))
	if _, err := l.Delete("k", 1); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := l2.Get("k", 1); ok {
		t.Fatal("deleted version resurrected by replay")
	}
	if val, _, ok, _ := l2.Get("k", 2); !ok || string(val) != "kept" {
		t.Fatalf("surviving version = %q %v", val, ok)
	}
	// Re-put after delete is a fresh write and must survive another
	// restart even though an older tombstone for it is in the log.
	if err := l2.Put("k", 1, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if val, _, ok, _ := l3.Get("k", 1); !ok || string(val) != "reborn" {
		t.Fatalf("re-put after delete = %q %v", val, ok)
	}
}

func TestLogSegmentRollAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentMaxBytes: 256, CompactLiveRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 40; i++ {
		if err := l.Put(fmt.Sprintf("k%02d", i), 1, val); err != nil {
			t.Fatal(err)
		}
	}
	before := l.SegmentCount()
	if before < 5 {
		t.Fatalf("expected many segments, got %d", before)
	}
	// Kill most objects; the sealed segments' live ratio collapses.
	for i := 0; i < 36; i++ {
		if _, err := l.Delete(fmt.Sprintf("k%02d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after := l.SegmentCount()
	if after >= before {
		t.Fatalf("compaction kept %d segments (was %d)", after, before)
	}
	for i := 36; i < 40; i++ {
		key := fmt.Sprintf("k%02d", i)
		got, _, ok, err := l.Get(key, 1)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("survivor %s lost after compaction (ok=%v err=%v)", key, ok, err)
		}
	}
	if l.Count() != 4 {
		t.Fatalf("Count = %d after compaction, want 4", l.Count())
	}
	l.Close()
	// The compacted log must replay to the same state.
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != 4 {
		t.Fatalf("reopened compacted log has %d objects, want 4", l2.Count())
	}
	for i := 0; i < 36; i++ {
		if _, _, ok, _ := l2.Get(fmt.Sprintf("k%02d", i), 1); ok {
			t.Fatalf("deleted k%02d resurrected after compaction+reopen", i)
		}
	}
}

func TestLogGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				errs <- l.Put(fmt.Sprintf("w%d-%d", w, i), 1, []byte{byte(w), byte(i)})
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != writers*perWriter {
		t.Fatalf("Count = %d, want %d", l.Count(), writers*perWriter)
	}
	l.Close()
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != writers*perWriter {
		t.Fatalf("recovered %d objects, want %d", l2.Count(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			val, _, ok, err := l2.Get(fmt.Sprintf("w%d-%d", w, i), 1)
			if err != nil || !ok || !bytes.Equal(val, []byte{byte(w), byte(i)}) {
				t.Fatalf("w%d-%d lost (ok=%v err=%v)", w, i, ok, err)
			}
		}
	}
}

func TestLogCorruptRecordNotServed(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Put("k", 1, []byte("pristine value")); err != nil {
		t.Fatal(err)
	}
	// Rot a value byte on disk behind the running store's back.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, recordSize("k", []byte("pristine value"))-3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, _, err := l.Get("k", 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on rotted record: %v, want ErrCorrupt", err)
	}
}

func TestLogRejectsOversizedValue(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A record the parser would reject must be refused at Put time,
	// not acknowledged and then unreadable. Probe the boundary without
	// allocating a gigabyte: a value just over the limit for its key.
	huge := make([]byte, 16)
	if err := l.Put("k", 1, huge); err != nil {
		t.Fatalf("small value refused: %v", err)
	}
	// The oversized buffer is never touched (the size check fires
	// before encoding), so the 1 GiB allocation stays lazy zero pages.
	over := make([]byte, maxRecBody-recFixedLen-len("k")+1)
	if err := l.Put("k", 2, over); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("oversized value err = %v, want ErrValueTooLarge", err)
	}
	if l.Count() != 1 {
		t.Fatalf("Count = %d after rejected put", l.Count())
	}
}

func TestLogDuplicatePutWaitsForDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put("k", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The duplicate must report success only through the group-commit
	// path (joining any pending fsync of the original), and never
	// deadlock or error.
	for i := 0; i < 3; i++ {
		if err := l.Put("k", 1, []byte("v")); err != nil {
			t.Fatalf("dup put %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != 1 {
		t.Fatalf("Count = %d after dup puts, want 1", l2.Count())
	}
}

func TestLogPutBatchDurableAfterReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]Object, 64)
	for i := range objs {
		objs[i] = Object{Key: fmt.Sprintf("b%02d", i), Version: 1, Value: []byte{byte(i)}}
	}
	if err := l.PutBatch(objs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != len(objs) {
		t.Fatalf("recovered %d objects, want %d", l2.Count(), len(objs))
	}
	for i := range objs {
		val, _, ok, err := l2.Get(fmt.Sprintf("b%02d", i), 1)
		if err != nil || !ok || !bytes.Equal(val, []byte{byte(i)}) {
			t.Fatalf("b%02d lost (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestLogPutBatchRollsSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentMaxBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 200)
	objs := make([]Object, 10) // ~2 KiB total, past the 1 KiB roll point
	for i := range objs {
		objs[i] = Object{Key: fmt.Sprintf("k%02d", i), Version: 1, Value: val}
	}
	if err := l.PutBatch(objs); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() < 2 {
		t.Fatalf("oversized batch did not roll the segment: %d segments", l.SegmentCount())
	}
	if err := l.Put("after", 1, val); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := OpenLog(dir, LogOptions{SegmentMaxBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != len(objs)+1 {
		t.Fatalf("recovered %d objects, want %d", l2.Count(), len(objs)+1)
	}
}

func TestLogDeleteLatestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Put("k", 1, []byte("old"))
	_ = l.Put("k", 5, []byte("new"))
	if _, err := l.Delete("k", Latest); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, _, ok, _ := l2.Get("k", 5); ok {
		t.Fatal("Delete(Latest) did not survive reopen")
	}
	if val, _, ok, _ := l2.Get("k", 1); !ok || string(val) != "old" {
		t.Fatalf("older version lost: %q %v", val, ok)
	}
}

// TestLogConcurrentOpsDuringCompaction hammers Put/Get/Delete from
// several goroutines while Compact runs continuously. No read may ever
// observe ErrCorrupt, the final state must match what each writer's
// deterministic schedule left behind, and compaction must reclaim
// space once the churn settles. Run with -race this doubles as the
// locking proof for the snapshot/copy/revalidate pass.
func TestLogConcurrentOpsDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentMaxBytes: 4 << 10, CompactLiveRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	perWriter := 300
	if testing.Short() {
		perWriter = 100
	}
	errCh := make(chan error, writers+1)
	stop := make(chan struct{})
	var compactWG sync.WaitGroup
	compactWG.Add(1)
	go func() {
		defer compactWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Compact(); err != nil {
				errCh <- fmt.Errorf("compact: %w", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xbeef))
			val := bytes.Repeat([]byte{byte(w + 1)}, 128)
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%32)
				ver := uint64(i + 1)
				if err := l.Put(key, ver, val); err != nil {
					errCh <- fmt.Errorf("put: %w", err)
					return
				}
				probe := fmt.Sprintf("w%d-k%d", w, rng.IntN(32))
				if _, _, _, err := l.Get(probe, Latest); err != nil {
					errCh <- fmt.Errorf("get: %w", err)
					return
				}
				if i > 0 && i%3 == 0 {
					if _, err := l.Delete(key, ver); err != nil {
						errCh <- fmt.Errorf("delete: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	compactWG.Wait()
	close(errCh)
	for err := range errCh {
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("concurrent op observed corruption: %v", err)
		}
		t.Fatal(err)
	}
	// Each writer's schedule is deterministic: perWriter puts minus the
	// i>0, i%3==0 deletes.
	deleted := (perWriter - 1) / 3
	want := writers * (perWriter - deleted)
	if l.Count() != want {
		t.Fatalf("Count = %d after churn, want %d", l.Count(), want)
	}
	// Kill most of what's left; compaction must reclaim segments.
	before := l.SegmentCount()
	for w := 0; w < writers; w++ {
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			for _, v := range mustVersions(t, l, key) {
				if _, err := l.Delete(key, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("final compaction: %v", err)
	}
	if after := l.SegmentCount(); after >= before {
		t.Fatalf("compaction reclaimed nothing: %d segments before, %d after", before, after)
	}
	// The compacted log replays to the same state.
	finalCount := l.Count()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("reopen after churn+compaction: %v", err)
	}
	defer l2.Close()
	if l2.Count() != finalCount {
		t.Fatalf("reopened Count = %d, want %d", l2.Count(), finalCount)
	}
}

func mustVersions(t *testing.T, s Store, key string) []uint64 {
	t.Helper()
	vs, err := s.Versions(key)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// TestLogCompactionDoesNotBlockForeground pins the tentpole property:
// with compaction throttled hard (a pass that would take ~40s),
// foreground Put/Get complete promptly because the pass never holds
// the store lock across its reads, sleeps or rewrites. Close then
// interrupts the throttled pass via the stop channel.
func TestLogCompactionDoesNotBlockForeground(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{
		SegmentMaxBytes:        32 << 10,
		CompactLiveRatio:       0.9,
		CompactRateBytesPerSec: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 300; i++ {
		if err := l.Put(fmt.Sprintf("k%04d", i), 1, val); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.SegmentCount()
	// The deletes kick the background pass, which immediately reads the
	// first 32 KiB segment and then owes the throttle ~4s — long after
	// this test is done, and before it may remove anything.
	for i := 0; i < 270; i++ {
		if _, err := l.Delete(fmt.Sprintf("k%04d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%04d", 270+i%30)
		if _, _, ok, err := l.Get(key, 1); err != nil || !ok {
			t.Fatalf("Get during throttled compaction: ok=%v err=%v", ok, err)
		}
		if err := l.Put(fmt.Sprintf("fg%04d", i), 1, val); err != nil {
			t.Fatalf("Put during throttled compaction: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("foreground ops took %s under throttled compaction", elapsed)
	}
	if got := l.SegmentCount(); got < segs {
		t.Fatalf("throttled pass already removed segments (%d -> %d); throttle not applied?", segs, got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close with compaction in flight: %v", err)
	}
	// The interrupted pass must leave a consistent, replayable log.
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("reopen after interrupted compaction: %v", err)
	}
	defer l2.Close()
	if l2.Count() != 300-270+200 {
		t.Fatalf("reopened Count = %d, want %d", l2.Count(), 300-270+200)
	}
}

func TestLogCompactionErrSurfaced(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Compact(); err != nil {
		t.Fatalf("no-op compaction: %v", err)
	}
	if err := l.CompactionErr(); err != nil {
		t.Fatalf("CompactionErr after clean pass: %v", err)
	}
}

func TestLogIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README.txt", "0000000001.seg.bak", "notaseg"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Count() != 0 {
		t.Fatalf("indexed %d foreign objects", l.Count())
	}
}

func TestLogReopenRollsFullActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Put("k", 1, bytes.Repeat([]byte("x"), 1<<20))
	l.Close()
	l2, err := OpenLog(dir, LogOptions{SegmentMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.SegmentCount() != 2 {
		t.Fatalf("full segment not sealed on reopen: %d segments", l2.SegmentCount())
	}
	if val, _, ok, _ := l2.Get("k", 1); !ok || len(val) != 1<<20 {
		t.Fatalf("big object lost (ok=%v len=%d)", ok, len(val))
	}
}

// --- shared persistent-engine recovery suite --------------------------------

func TestPersistentEnginesRecoverAfterReopen(t *testing.T) {
	for name, open := range persistentEngines() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			_ = s.Put("persist", 3, []byte("across restarts"))
			_ = s.Put("persist", 5, []byte("newer"))
			_ = s.Put("other", 1, []byte("x"))
			if _, err := s.Delete("other", 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Count() != 2 {
				t.Fatalf("recovered %d objects, want 2", s2.Count())
			}
			val, ver, ok, err := s2.Get("persist", Latest)
			if err != nil || !ok || ver != 5 || string(val) != "newer" {
				t.Fatalf("recovered latest = (%q, v%d, %v, %v)", val, ver, ok, err)
			}
			if _, _, ok, _ := s2.Get("other", 1); ok {
				t.Fatal("delete did not survive reopen")
			}
		})
	}
}

func TestPersistentEnginesSurviveStrayFiles(t *testing.T) {
	for name, open := range persistentEngines() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := s.Put(fmt.Sprintf("k%d", i), 1, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			// A crash can leave unrelated junk (editor backups, torn
			// temp files) in the data directory; recovery must ignore
			// it and keep every acknowledged object.
			for _, junk := range []string{"tmp-999.partial", "junk.bin"} {
				if err := os.WriteFile(filepath.Join(dir, junk), []byte("torn"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			s2, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Count() != 5 {
				t.Fatalf("recovered %d objects, want 5", s2.Count())
			}
		})
	}
}

func TestDiskDirSyncAfterRename(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("k", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d.dirSyncs != 1 {
		t.Fatalf("dirSyncs = %d after Put, want 1 (rename must be followed by a directory fsync)", d.dirSyncs)
	}
	if _, err := d.Delete("k", 1); err != nil {
		t.Fatal(err)
	}
	if d.dirSyncs != 2 {
		t.Fatalf("dirSyncs = %d after Delete, want 2", d.dirSyncs)
	}
	// Without Fsync the engine promises nothing and must not pay for
	// directory syncs.
	d2, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	_ = d2.Put("k", 1, []byte("v"))
	if d2.dirSyncs != 0 {
		t.Fatalf("dirSyncs = %d without Fsync, want 0", d2.dirSyncs)
	}
}
