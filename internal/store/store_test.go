package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// engines returns a fresh instance of every Store implementation; the
// whole suite runs against each.
func engines(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	lg, err := OpenLog(t.TempDir(), LogOptions{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return map[string]Store{
		"memory": NewMemory(),
		"disk":   disk,
		"log":    lg,
	}
}

// persistentEngines returns a reopenable factory per durable engine, so
// recovery tests run against each.
func persistentEngines() map[string]func(dir string) (Store, error) {
	return map[string]func(dir string) (Store, error){
		"disk": func(dir string) (Store, error) { return OpenDisk(dir, DiskOptions{Fsync: true}) },
		"log":  func(dir string) (Store, error) { return OpenLog(dir, LogOptions{Fsync: true}) },
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := s.Put("k", 1, []byte("v1")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			val, ver, ok, err := s.Get("k", 1)
			if err != nil || !ok {
				t.Fatalf("Get: ok=%v err=%v", ok, err)
			}
			if ver != 1 || !bytes.Equal(val, []byte("v1")) {
				t.Fatalf("Get = (%q, v%d)", val, ver)
			}
		})
	}
}

func TestStoreLatestResolution(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			for _, v := range []uint64{3, 1, 7, 5} { // out of order
				if err := s.Put("k", v, []byte{byte(v)}); err != nil {
					t.Fatalf("Put v%d: %v", v, err)
				}
			}
			val, ver, ok, err := s.Get("k", Latest)
			if err != nil || !ok {
				t.Fatalf("Get latest: ok=%v err=%v", ok, err)
			}
			if ver != 7 || val[0] != 7 {
				t.Fatalf("latest = v%d (%v), want v7", ver, val)
			}
		})
	}
}

func TestStoreVersionsSorted(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			for _, v := range []uint64{9, 2, 5} {
				_ = s.Put("k", v, nil)
			}
			vs, err := s.Versions("k")
			if err != nil {
				t.Fatal(err)
			}
			want := []uint64{2, 5, 9}
			if len(vs) != 3 {
				t.Fatalf("Versions = %v", vs)
			}
			for i := range want {
				if vs[i] != want[i] {
					t.Fatalf("Versions = %v, want %v", vs, want)
				}
			}
		})
	}
}

func TestStoreMissing(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, _, ok, err := s.Get("ghost", 1); ok || err != nil {
				t.Errorf("missing key: ok=%v err=%v", ok, err)
			}
			if _, _, ok, _ := s.Get("ghost", Latest); ok {
				t.Error("missing key latest: ok")
			}
			_ = s.Put("k", 2, nil)
			if _, _, ok, _ := s.Get("k", 1); ok {
				t.Error("missing version reported present")
			}
			vs, err := s.Versions("ghost")
			if err != nil || vs != nil {
				t.Errorf("Versions(ghost) = %v, %v", vs, err)
			}
		})
	}
}

func TestStoreIdempotentPut(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			_ = s.Put("k", 1, []byte("original"))
			if err := s.Put("k", 1, []byte("different")); err != nil {
				t.Fatalf("re-put errored: %v", err)
			}
			val, _, _, _ := s.Get("k", 1)
			if string(val) != "original" {
				t.Errorf("re-put overwrote: %q", val)
			}
			if s.Count() != 1 {
				t.Errorf("Count = %d after re-put", s.Count())
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			_ = s.Put("k", 1, []byte("a"))
			_ = s.Put("k", 2, []byte("b"))
			if existed, err := s.Delete("k", 1); err != nil || !existed {
				t.Fatalf("delete present version: existed=%v err=%v", existed, err)
			}
			if _, _, ok, _ := s.Get("k", 1); ok {
				t.Error("deleted version still present")
			}
			if _, _, ok, _ := s.Get("k", 2); !ok {
				t.Error("sibling version vanished")
			}
			if existed, err := s.Delete("k", 1); err != nil || existed {
				t.Errorf("double delete: existed=%v err=%v", existed, err)
			}
			if existed, err := s.Delete("ghost", 1); err != nil || existed {
				t.Errorf("delete missing key: existed=%v err=%v", existed, err)
			}
			if s.Count() != 1 {
				t.Errorf("Count = %d, want 1", s.Count())
			}
		})
	}
}

// TestStoreDeleteLatest pins the Delete(key, Latest) semantics: it
// resolves to the newest stored version, mirroring Get, instead of
// being a silent no-op (Latest is never a stored version).
func TestStoreDeleteLatest(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			_ = s.Put("k", 2, []byte("old"))
			_ = s.Put("k", 5, []byte("new"))
			if _, err := s.Delete("k", Latest); err != nil {
				t.Fatalf("Delete(Latest): %v", err)
			}
			if _, _, ok, _ := s.Get("k", 5); ok {
				t.Fatal("newest version survived Delete(Latest)")
			}
			if val, _, ok, _ := s.Get("k", 2); !ok || string(val) != "old" {
				t.Fatalf("older version lost: %q %v", val, ok)
			}
			if _, err := s.Delete("k", Latest); err != nil {
				t.Fatalf("second Delete(Latest): %v", err)
			}
			if s.Count() != 0 {
				t.Fatalf("Count = %d after deleting every version", s.Count())
			}
			if _, err := s.Delete("k", Latest); err != nil {
				t.Errorf("Delete(Latest) on empty key errored: %v", err)
			}
			if _, err := s.Delete("ghost", Latest); err != nil {
				t.Errorf("Delete(Latest) on missing key errored: %v", err)
			}
		})
	}
}

func TestStorePutBatch(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			_ = s.Put("pre", 1, []byte("existing"))
			batch := []Object{
				{Key: "a", Version: 1, Value: []byte("a1")},
				{Key: "a", Version: 2, Value: []byte("a2")},
				{Key: "b", Version: 7, Value: []byte("b7")},
				{Key: "a", Version: 1, Value: []byte("dup-in-batch")},
				{Key: "pre", Version: 1, Value: []byte("dup-existing")},
			}
			if err := s.PutBatch(batch); err != nil {
				t.Fatalf("PutBatch: %v", err)
			}
			if s.Count() != 4 {
				t.Fatalf("Count = %d, want 4 (dups skipped)", s.Count())
			}
			for _, want := range []struct {
				key string
				ver uint64
				val string
			}{
				{"a", 1, "a1"}, {"a", 2, "a2"}, {"b", 7, "b7"}, {"pre", 1, "existing"},
			} {
				val, _, ok, err := s.Get(want.key, want.ver)
				if err != nil || !ok || string(val) != want.val {
					t.Fatalf("Get(%s@%d) = %q, %v, %v; want %q", want.key, want.ver, val, ok, err, want.val)
				}
			}
			if err := s.PutBatch(nil); err != nil {
				t.Errorf("empty batch errored: %v", err)
			}
		})
	}
}

func TestStoreDeleteBatch(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			_ = s.Put("a", 1, []byte("a1"))
			_ = s.Put("a", 2, []byte("a2"))
			_ = s.Put("b", 7, []byte("b7"))
			_ = s.Put("c", 3, []byte("c3"))
			existed, err := s.DeleteBatch([]Deletion{
				{Key: "a", Version: 1},      // concrete hit
				{Key: "b", Version: Latest}, // Latest resolves to 7
				{Key: "ghost", Version: 1},  // missing key
				{Key: "c", Version: 9},      // missing version
				{Key: "a", Version: 1},      // already removed above
			})
			if err != nil {
				t.Fatalf("DeleteBatch: %v", err)
			}
			want := []bool{true, true, false, false, false}
			for i, w := range want {
				if existed[i] != w {
					t.Fatalf("existed = %v, want %v", existed, want)
				}
			}
			if s.Count() != 2 {
				t.Fatalf("Count = %d, want 2 (a@2, c@3 survive)", s.Count())
			}
			if _, _, ok, _ := s.Get("a", 2); !ok {
				t.Fatal("sibling version a@2 vanished")
			}
			// Two Latest items for one key remove its two newest
			// versions (resolution sees the not-yet-deleted state).
			_ = s.Put("m", 1, []byte("m1"))
			_ = s.Put("m", 2, []byte("m2"))
			existed, err = s.DeleteBatch([]Deletion{
				{Key: "m", Version: Latest},
				{Key: "m", Version: Latest},
			})
			if err != nil || !existed[0] || !existed[1] {
				t.Fatalf("double-Latest: existed=%v err=%v", existed, err)
			}
			if _, _, ok, _ := s.Get("m", Latest); ok {
				t.Fatal("versions of m survived the double-Latest batch")
			}
			if _, err := s.DeleteBatch(nil); err != nil {
				t.Errorf("empty delete batch errored: %v", err)
			}
		})
	}
}

// TestStorePutBatchValidatesUpfront pins the all-or-nothing contract
// for statically invalid batches: a reserved version anywhere in the
// batch must fail it before any object is stored.
func TestStorePutBatchValidatesUpfront(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			batch := []Object{
				{Key: "good", Version: 1, Value: []byte("v")},
				{Key: "bad", Version: Latest, Value: []byte("v")},
			}
			if err := s.PutBatch(batch); !errors.Is(err, ErrBadVersion) {
				t.Fatalf("PutBatch with reserved version: %v, want ErrBadVersion", err)
			}
			if s.Count() != 0 {
				t.Fatalf("Count = %d after rejected batch, want 0", s.Count())
			}
		})
	}
}

func TestStoreReservedVersion(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := s.Put("k", Latest, nil); !errors.Is(err, ErrBadVersion) {
				t.Errorf("Put(Latest) err = %v, want ErrBadVersion", err)
			}
			// AllVersions is the whole-key delete sentinel: an object
			// stored under it would shadow Latest reads forever and be
			// individually unaddressable by delete.
			if err := s.Put("k", AllVersions, nil); !errors.Is(err, ErrBadVersion) {
				t.Errorf("Put(AllVersions) err = %v, want ErrBadVersion", err)
			}
			if err := s.PutBatch([]Object{{Key: "k", Version: AllVersions}}); !errors.Is(err, ErrBadVersion) {
				t.Errorf("PutBatch(AllVersions) err = %v, want ErrBadVersion", err)
			}
		})
	}
}

func TestStoreForEach(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			_ = s.Put("a", 1, nil)
			_ = s.Put("a", 2, nil)
			_ = s.Put("b", 1, nil)
			var seen []string
			err := s.ForEach(func(key string, version uint64) bool {
				seen = append(seen, fmt.Sprintf("%s@%d", key, version))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != 3 {
				t.Fatalf("ForEach visited %v", seen)
			}
			// Early stop.
			count := 0
			_ = s.ForEach(func(string, uint64) bool {
				count++
				return false
			})
			if count != 1 {
				t.Errorf("early stop visited %d", count)
			}
		})
	}
}

func TestStoreValueIsolation(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			buf := []byte("mutate me")
			_ = s.Put("k", 1, buf)
			buf[0] = 'X'
			val, _, _, _ := s.Get("k", 1)
			if val[0] == 'X' {
				t.Error("store aliased caller's put buffer")
			}
			val[0] = 'Y'
			val2, _, _, _ := s.Get("k", 1)
			if val2[0] == 'Y' {
				t.Error("store aliased returned buffer")
			}
		})
	}
}

func TestStoreClosedErrors(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s.Close()
			if err := s.Put("k", 1, nil); !errors.Is(err, ErrClosed) {
				t.Errorf("Put after close: %v", err)
			}
			if _, _, _, err := s.Get("k", 1); !errors.Is(err, ErrClosed) {
				t.Errorf("Get after close: %v", err)
			}
			if err := s.ForEach(func(string, uint64) bool { return true }); !errors.Is(err, ErrClosed) {
				t.Errorf("ForEach after close: %v", err)
			}
		})
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	prop := func(key string, version uint64, value []byte) bool {
		if version == Latest {
			version--
		}
		if err := s.Put(key, version, value); err != nil {
			return false
		}
		got, ver, ok, err := s.Get(key, version)
		return err == nil && ok && ver == version && bytes.Equal(got, value)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryCapped(t *testing.T) {
	s := NewMemoryCapped(3)
	defer s.Close()
	for v := uint64(1); v <= 5; v++ {
		_ = s.Put("k", v, []byte{byte(v)})
	}
	vs, _ := s.Versions("k")
	if len(vs) != 3 || vs[0] != 3 {
		t.Fatalf("capped versions = %v, want [3 4 5]", vs)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	_, _, ok, _ := s.Get("k", 1)
	if ok {
		t.Error("GC'd version still readable")
	}
}

// --- disk-specific behaviour ----------------------------------------------

func TestDiskRecoversAfterReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Put("persist", 3, []byte("across restarts"))
	_ = d.Put("persist", 5, []byte("newer"))
	_ = d.Put("other", 1, []byte("x"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Count() != 3 {
		t.Fatalf("recovered %d objects, want 3", d2.Count())
	}
	val, ver, ok, err := d2.Get("persist", Latest)
	if err != nil || !ok || ver != 5 || string(val) != "newer" {
		t.Fatalf("recovered latest = (%q, v%d, %v, %v)", val, ver, ok, err)
	}
}

func TestDiskIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp-123.partial"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Count() != 0 {
		t.Fatalf("indexed %d foreign files", d.Count())
	}
}

func TestDiskKeyTooLong(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	long := make([]byte, 200)
	if err := d.Put(string(long), 1, nil); !errors.Is(err, ErrKeyTooLong) {
		t.Errorf("long key err = %v, want ErrKeyTooLong", err)
	}
}

func TestDiskBinaryKeysAndValues(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	key := string([]byte{0, 1, 2, '/', '\\', 0xff})
	value := []byte{0, 255, 128, 7}
	if err := d.Put(key, 1, value); err != nil {
		t.Fatal(err)
	}
	got, _, ok, err := d.Get(key, 1)
	if err != nil || !ok || !bytes.Equal(got, value) {
		t.Fatalf("binary roundtrip = (%v, %v, %v)", got, ok, err)
	}
}

func TestObjectNameRoundTrip(t *testing.T) {
	prop := func(key string, version uint64) bool {
		if len(key) > maxKeyLen || version == Latest {
			return true
		}
		name := objectName(key, version)
		gotKey, gotVer, ok := parseObjectName(name)
		return ok && gotKey == key && gotVer == version
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestParseObjectNameRejectsGarbage(t *testing.T) {
	// Note "@1.obj" is NOT garbage: it is the valid encoding of the
	// empty key.
	for _, name := range []string{
		"", "foo", "foo.obj", "abc@x.obj", "!!!@1.obj",
		"MFXA@18446744073709551615.obj", // version == Latest sentinel
	} {
		if _, _, ok := parseObjectName(name); ok {
			t.Errorf("parseObjectName(%q) accepted", name)
		}
	}
}

func TestDiskDeleteRemovesFile(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	_ = d.Put("k", 1, []byte("x"))
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("%d files after put", len(files))
	}
	_, _ = d.Delete("k", 1)
	files, _ = os.ReadDir(dir)
	if len(files) != 0 {
		t.Fatalf("%d files after delete", len(files))
	}
}
