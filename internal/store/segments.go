package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Segment streaming: the bulk-transfer read path behind bootstrap and
// snapshots. The log engine streams its sealed segment files verbatim
// — chunked reads into one reused buffer, every record re-verified
// against its CRC32 before a byte is handed out, chunks aligned to
// record boundaries so each one parses on its own. The memory and disk
// engines have no segment files; they emulate the contract
// object-at-a-time by encoding their whole object set into the same
// record format as one synthetic segment, so a receiver never needs to
// know which engine the sender runs.

// streamChunkBytes is the target chunk size of a segment stream —
// large enough to amortize syscalls, small enough that a receiver can
// apply and checkpoint chunk by chunk (and that one chunk fits a wire
// message comfortably).
const streamChunkBytes = 64 << 10

// syntheticSegmentID is the id of the single whole-store segment the
// memory and disk engines synthesize.
const syntheticSegmentID = 1

// Seal syncs and rolls the log's active segment so every record
// written so far joins the sealed, streamable set. Snapshots call it
// to make a point-in-time capture complete; an empty active segment is
// left in place.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active.size == 0 {
		return nil
	}
	return l.seal()
}

// Segments implements Store: the manifest of sealed segment files in
// ascending id order. A sealed segment is immutable, so its manifest
// entry (record count, CRC of the full stream, key range) is computed
// by one verified walk and cached on the segment; later calls are
// index-speed. Segments compacted away between the snapshot and the
// walk are simply absent from the result.
func (l *Log) Segments() ([]SegmentInfo, error) {
	type sealedSeg struct {
		id     uint64
		size   int64
		cached *SegmentInfo
	}
	l.mu.RLock()
	if l.closed {
		l.mu.RUnlock()
		return nil, ErrClosed
	}
	list := make([]sealedSeg, 0, len(l.segIDs))
	for _, id := range l.segIDs {
		seg := l.segs[id]
		if seg == l.active {
			continue
		}
		list = append(list, sealedSeg{id: id, size: seg.size, cached: seg.manifest})
	}
	l.mu.RUnlock()

	out := make([]SegmentInfo, 0, len(list))
	var scratch []byte
	for _, s := range list {
		if s.cached != nil {
			out = append(out, *s.cached)
			continue
		}
		info, ok, err := l.scanManifest(s.id, s.size, &scratch)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // compacted away mid-walk
		}
		out = append(out, info)
		l.mu.Lock()
		if seg := l.segs[info.ID]; seg != nil && seg != l.active {
			cached := info
			seg.manifest = &cached
		}
		l.mu.Unlock()
	}
	return out, nil
}

// scanManifest builds one sealed segment's manifest entry by a full
// verified walk. ok is false when the segment vanished (compaction)
// before the walk finished.
func (l *Log) scanManifest(id uint64, size int64, scratch *[]byte) (SegmentInfo, bool, error) {
	info := SegmentInfo{ID: id, Bytes: size}
	reached, _, err := l.streamSealed(id, size, 0, scratch, func(c SegmentChunk) bool {
		info.CRC = crc32.Update(info.CRC, crc32.IEEETable, c.Data)
		for p := 0; p < len(c.Data); {
			rec, n, _ := parseRecord(c.Data[p:]) // chunk already verified
			if info.Records == 0 {
				info.MinKey, info.MaxKey = rec.key, rec.key
			} else {
				if rec.key < info.MinKey {
					info.MinKey = rec.key
				}
				if rec.key > info.MaxKey {
					info.MaxKey = rec.key
				}
			}
			info.Records++
			p += n
		}
		return true
	})
	if err != nil {
		return SegmentInfo{}, false, err
	}
	return info, reached == size, nil
}

// StreamSegments implements Store for the log engine: each ref's
// sealed segment is streamed verbatim from its resume offset. Refs
// whose segment vanished (compacted away) or that name the active
// segment are skipped silently.
func (l *Log) StreamSegments(refs []SegmentRef, fn func(c SegmentChunk) bool) error {
	var scratch []byte
	for _, r := range refs {
		l.mu.RLock()
		if l.closed {
			l.mu.RUnlock()
			return ErrClosed
		}
		seg := l.segs[r.ID]
		if seg == nil || seg == l.active {
			l.mu.RUnlock()
			continue
		}
		size := seg.size
		l.mu.RUnlock()
		_, stopped, err := l.streamSealed(r.ID, size, r.Offset, &scratch, fn)
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// streamSealed walks one sealed segment's record stream from startOff,
// re-verifying every record CRC and handing whole-record-aligned
// chunks to fn. It returns the offset the walk reached — equal to size
// when the segment streamed completely, short when it vanished under
// compaction mid-stream (ended silently) — and whether fn stopped the
// stream. A record that fails verification returns ErrCorrupt with its
// location: corrupt bytes are never shipped verbatim.
func (l *Log) streamSealed(id uint64, size, startOff int64, scratch *[]byte, fn func(c SegmentChunk) bool) (reached int64, stopped bool, err error) {
	off := startOff
	if off < 0 || off > size {
		return off, false, fmt.Errorf("store: segment %d resume offset %d outside [0, %d]", id, off, size)
	}
	if off == size {
		// Resuming at the very end: emit one empty terminal chunk so
		// the caller still observes completion.
		return off, !fn(SegmentChunk{Segment: id, Offset: off, Last: true}), nil
	}
	need := int64(streamChunkBytes)
	for off < size {
		n := size - off
		if n > need {
			n = need
		}
		if int64(cap(*scratch)) < n {
			*scratch = make([]byte, n)
		}
		buf := (*scratch)[:n]
		vanished, err := l.readSealed(id, off, buf)
		if err != nil {
			return off, false, err
		}
		if vanished {
			return off, false, nil
		}
		verified := 0
		for verified < len(buf) {
			_, rn, ok := parseRecord(buf[verified:])
			if !ok {
				break
			}
			verified += rn
		}
		if verified == 0 {
			// Not one whole record in the window: either the window cut
			// a record short (grow it) or the bytes are corrupt.
			grow, truncated := truncatedNeed(buf, size-off)
			if !truncated {
				return off, false, fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, id, off)
			}
			need = grow
			continue
		}
		need = streamChunkBytes
		last := off+int64(verified) == size
		if !fn(SegmentChunk{Segment: id, Offset: off, Data: buf[:verified], Last: last}) {
			return off, true, nil
		}
		off += int64(verified)
	}
	return off, false, nil
}

// readSealed reads len(buf) bytes at off from sealed segment id under
// the store lock (mirroring StreamObjects' locking). vanished is true
// when the segment was compacted away since the caller looked it up.
func (l *Log) readSealed(id uint64, off int64, buf []byte) (vanished bool, err error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return false, ErrClosed
	}
	seg := l.segs[id]
	if seg == nil || seg == l.active {
		return true, nil
	}
	if n, err := seg.f.ReadAt(buf, off); err != nil && !(err == io.EOF && n == len(buf)) {
		return false, fmt.Errorf("store: read segment %d: %w", id, err)
	}
	return false, nil
}

// truncatedNeed reports whether the unparseable bytes at the head of b
// are merely a record cut short by the read window rather than
// corruption, and if so how many bytes the record needs. remaining is
// how many segment bytes exist from b's start.
func truncatedNeed(b []byte, remaining int64) (need int64, truncated bool) {
	if int64(len(b)) >= remaining {
		return 0, false // the whole tail was in the window: corrupt
	}
	if len(b) < recHeaderLen {
		return recHeaderLen, true
	}
	body := binary.LittleEndian.Uint32(b[0:4])
	if body < recFixedLen || body > maxRecBody {
		return 0, false // nonsensical length: corrupt
	}
	need = int64(recHeaderLen) + int64(body)
	switch {
	case need > remaining:
		return 0, false // declared length runs past the segment: corrupt
	case need <= int64(len(b)):
		return 0, false // record fully present yet unparseable: bad CRC
	default:
		return need, true
	}
}

// DecodeRecords parses a verbatim record chunk (whole-record-aligned,
// as produced by StreamSegments) back into objects and deletions, in
// stream order. It is the receiver half of segment streaming: a
// bootstrap joiner or snapshot restore applies the puts via PutBatch
// and resolves the tombstones afterwards. fn receives each record's
// byte offset within b, so callers can order records within a chunk,
// not just across chunks. Values alias b; callers that keep them past
// b's lifetime must copy. n is the count of bytes consumed — short of
// len(b) only when err is non-nil (ErrCorrupt).
func DecodeRecords(b []byte, fn func(off int, o Object, tombstone bool) bool) (n int, err error) {
	off := 0
	for off < len(b) {
		rec, rn, ok := parseRecord(b[off:])
		if !ok {
			return off, fmt.Errorf("%w: offset %d", ErrCorrupt, off)
		}
		if !fn(off, Object{Key: rec.key, Version: rec.version, Value: rec.value}, rec.typ == recTomb) {
			return off, nil
		}
		off += rn
	}
	return off, nil
}

// appendObjectRecord encodes one object (or tombstone, when value is
// nil and tomb is set) in the log record format — the synthetic-
// segment encoder for engines without segment files, and the test
// helper for corruption fixtures.
func appendObjectRecord(dst []byte, o Object, tomb bool) []byte {
	typ := recPut
	if tomb {
		typ = recTomb
	}
	return appendRecord(dst, typ, o.Key, o.Version, o.Value)
}

// synthCollect snapshots a header list in (key, version) order — the
// deterministic record order of a synthetic segment.
func synthCollect(st Store) ([]Ref, error) {
	var refs []Ref
	err := st.ForEach(func(key string, version uint64) bool {
		refs = append(refs, Ref{Key: key, Version: version})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Key != refs[j].Key {
			return refs[i].Key < refs[j].Key
		}
		return refs[i].Version < refs[j].Version
	})
	return refs, nil
}

// synthSegments builds the single-entry manifest of a synthetic
// whole-store segment: every object encoded as a put record in sorted
// (key, version) order. Object-at-a-time: values are streamed through
// the engine's StreamObjects, never held all at once.
func synthSegments(st Store) ([]SegmentInfo, error) {
	refs, err := synthCollect(st)
	if err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, nil
	}
	info := SegmentInfo{ID: syntheticSegmentID}
	var rec []byte
	_, err = st.StreamObjects(refs, func(o Object) bool {
		rec = appendObjectRecord(rec[:0], o, false)
		info.Bytes += int64(len(rec))
		info.CRC = crc32.Update(info.CRC, crc32.IEEETable, rec)
		if info.Records == 0 {
			info.MinKey, info.MaxKey = o.Key, o.Key
		} else {
			if o.Key < info.MinKey {
				info.MinKey = o.Key
			}
			if o.Key > info.MaxKey {
				info.MaxKey = o.Key
			}
		}
		info.Records++
		return true
	})
	if err != nil {
		return nil, err
	}
	return []SegmentInfo{info}, nil
}

// synthStream streams the synthetic segment's record bytes in
// record-aligned chunks from each ref's resume offset. The encoding
// is only stable while the store is quiescent — exactly the bootstrap
// and snapshot situation — and a receiver that detects drift via the
// manifest CRC re-fetches, the same recovery as a vanished log
// segment.
func synthStream(st Store, srefs []SegmentRef, fn func(c SegmentChunk) bool) error {
	for _, sr := range srefs {
		if sr.ID != syntheticSegmentID {
			continue
		}
		refs, err := synthCollect(st)
		if err != nil {
			return err
		}
		var total int64
		var chunk []byte
		var rec []byte
		flush := func(last bool) bool {
			if len(chunk) == 0 && !last {
				return true
			}
			ok := fn(SegmentChunk{
				Segment: syntheticSegmentID,
				Offset:  total - int64(len(chunk)),
				Data:    chunk,
				Last:    last,
			})
			chunk = chunk[:0]
			return ok
		}
		stopped := false
		_, err = st.StreamObjects(refs, func(o Object) bool {
			rec = appendObjectRecord(rec[:0], o, false)
			if total+int64(len(rec)) <= sr.Offset {
				total += int64(len(rec)) // before the resume point: skip
				return true
			}
			if len(chunk) > 0 && len(chunk)+len(rec) > streamChunkBytes {
				if !flush(false) {
					stopped = true
					return false
				}
			}
			chunk = append(chunk, rec...)
			total += int64(len(rec))
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
		if !flush(true) {
			return nil
		}
	}
	return nil
}

// Segments implements Store for the memory engine: one synthetic
// whole-store segment (empty manifest for an empty store).
func (m *Memory) Segments() ([]SegmentInfo, error) { return synthSegments(m) }

// StreamSegments implements Store for the memory engine:
// object-at-a-time emulation over the synthetic segment.
func (m *Memory) StreamSegments(refs []SegmentRef, fn func(c SegmentChunk) bool) error {
	return synthStream(m, refs, fn)
}

// Segments implements Store for the disk engine: one synthetic
// whole-store segment (empty manifest for an empty store).
func (d *Disk) Segments() ([]SegmentInfo, error) { return synthSegments(d) }

// StreamSegments implements Store for the disk engine:
// object-at-a-time emulation over the synthetic segment.
func (d *Disk) StreamSegments(refs []SegmentRef, fn func(c SegmentChunk) bool) error {
	return synthStream(d, refs, fn)
}
