package store

// RecordApplier applies verbatim record chunks (bootstrap fetches,
// snapshot restores) to a store. Puts are batched — one PutBatch, and
// in the log engine one group-commit fsync, per accumulated batch
// instead of per record — and tombstones are DEFERRED until Finish:
// chunks may arrive from parallel segment fetches in any order, and a
// tombstone applied before the put it supersedes has even arrived
// would silently resurrect the deleted object when that put lands. At
// Finish, a tombstone is dropped if a put of the same (key, version)
// appeared LATER in the stream order (segment id, then offset) — the
// re-put-after-delete case — and every survivor is applied in one
// DeleteBatch.
//
// Not safe for concurrent use; one applier serves one stream.
type RecordApplier struct {
	st     Store
	filter func(key string) bool // nil accepts everything

	batch      []Object
	batchBytes int
	arena      []byte // value backing for the current batch

	// tombs maps each tombstoned pair to the stream position of its
	// newest tombstone; puts tracks the newest put position of pairs
	// that currently have a pending tombstone.
	tombs map[Ref]recPos
	puts  map[Ref]recPos
}

// recPos orders records across a segment stream.
type recPos struct {
	seg uint64
	off int64
}

func (p recPos) after(q recPos) bool {
	if p.seg != q.seg {
		return p.seg > q.seg
	}
	return p.off > q.off
}

// applierBatchObjects / applierBatchBytes bound the put batch: large
// enough to amortize the fsync, small enough to bound arena memory.
const (
	applierBatchObjects = 512
	applierBatchBytes   = 1 << 20
)

// NewRecordApplier creates an applier writing into st. filter, when
// non-nil, selects which keys to apply (a bootstrap joiner passes its
// slice predicate so a peer's foreign records are not even stored);
// filtered-out records are skipped silently, tombstones included.
func NewRecordApplier(st Store, filter func(key string) bool) *RecordApplier {
	return &RecordApplier{
		st:     st,
		filter: filter,
		tombs:  make(map[Ref]recPos),
		puts:   make(map[Ref]recPos),
	}
}

// Apply decodes one record-aligned chunk of segment seg starting at
// byte offset off and stages its records. It returns how many put
// records were accepted (post-filter). Chunk data may alias a reused
// buffer: values are copied into the applier's arena before Apply
// returns.
func (a *RecordApplier) Apply(seg uint64, off int64, data []byte) (objects int, err error) {
	// Each record gets its true stream position (chunk base + offset
	// within the chunk): a tombstone followed by a re-put of the same
	// (key, version) later in the SAME chunk must lose to that put at
	// Finish, exactly as log replay would resolve it.
	_, err = DecodeRecords(data, func(recOff int, o Object, tombstone bool) bool {
		if a.filter != nil && !a.filter(o.Key) {
			return true
		}
		if !tombstone {
			objects++
		}
		a.stage(o, tombstone, recPos{seg: seg, off: off + int64(recOff)})
		return true
	})
	if err != nil {
		return objects, err
	}
	if len(a.batch) >= applierBatchObjects || a.batchBytes >= applierBatchBytes {
		err = a.Flush()
	}
	return objects, err
}

// stage records one decoded record at stream position pos.
func (a *RecordApplier) stage(o Object, tombstone bool, pos recPos) {
	ref := Ref{Key: o.Key, Version: o.Version}
	if tombstone {
		if prev, ok := a.tombs[ref]; !ok || pos.after(prev) {
			a.tombs[ref] = pos
		}
		return
	}
	if prev, ok := a.puts[ref]; !ok || pos.after(prev) {
		a.puts[ref] = pos
	}
	start := len(a.arena)
	a.arena = append(a.arena, o.Value...)
	a.batch = append(a.batch, Object{Key: o.Key, Version: o.Version, Value: a.arena[start:len(a.arena):len(a.arena)]})
	a.batchBytes += len(o.Value)
}

// Flush writes the staged put batch to the store.
func (a *RecordApplier) Flush() error {
	if len(a.batch) == 0 {
		return nil
	}
	err := a.st.PutBatch(a.batch)
	a.batch = a.batch[:0]
	a.arena = a.arena[:0]
	a.batchBytes = 0
	return err
}

// Finish flushes the final batch and applies the surviving tombstones:
// those not superseded by a later put of the same pair. It returns how
// many deletions were applied. The applier is reusable afterwards
// (fresh stream).
func (a *RecordApplier) Finish() (tombstones int, err error) {
	if err := a.Flush(); err != nil {
		return 0, err
	}
	items := make([]Deletion, 0, len(a.tombs))
	for ref, tpos := range a.tombs {
		if ppos, ok := a.puts[ref]; ok && ppos.after(tpos) {
			continue // re-put after delete: the put wins
		}
		items = append(items, Deletion{Key: ref.Key, Version: ref.Version})
	}
	a.tombs = make(map[Ref]recPos)
	a.puts = make(map[Ref]recPos)
	if len(items) == 0 {
		return 0, nil
	}
	existed, err := a.st.DeleteBatch(items)
	for _, e := range existed {
		if e {
			tombstones++
		}
	}
	return tombstones, err
}
