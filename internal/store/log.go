package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Log is the log-structured engine: objects are appended to segmented
// write-ahead files as length-prefixed, CRC32-checksummed records, and
// an in-memory header index maps (key, version) to the record's
// location. Opening a log replays every segment sequentially to rebuild
// the index; a torn record at the tail of the last segment (a crash
// mid-append) is truncated away instead of failing recovery, so a node
// always comes back with every object it made durable.
//
// The hot write path is one sequential write per Put. With Fsync
// enabled, concurrent writers coalesce into a single fsync per
// commit-window (group commit): each Put appends under the log lock,
// registers a waiter, and the committer goroutine syncs the active
// segment once for every waiter that appended before the sync.
// Deletes append tombstone records so they survive restarts.
//
// Segments seal at SegmentMaxBytes and a background compactor rewrites
// the prefix of sealed segments whose live ratio (bytes of records
// still referenced by the index over total bytes) fell below
// CompactLiveRatio, dropping superseded duplicates, deleted objects and
// tombstones. Compaction only ever processes a downward-closed prefix
// of segments: a tombstone is always appended at or after its target
// put, so dropping every tombstone in a prefix can never resurrect a
// record in the segments that remain.
//
// A compaction pass runs almost entirely outside the store lock so the
// foreground Put/Get/Delete path never stalls behind segment-sized
// I/O: live record locations are snapshotted under a brief read lock,
// segment reads and the copy loop run with no lock held (throttled by
// CompactRateBytesPerSec), each copied batch is revalidated against
// the current index under a short write lock before the swap, and
// records deleted mid-flight are simply discarded.
//
// Safe for concurrent use.
type Log struct {
	mu   sync.RWMutex
	dir  string
	dirF *os.File
	opts LogOptions

	index  map[string]*logKey
	count  int
	segs   map[uint64]*segment
	segIDs []uint64 // ascending; last is the active segment
	active *segment
	closed bool

	// compactErr is the result of the most recent compaction pass; the
	// background loop has no caller to return it to.
	compactErr error
	// compactPasses counts passes that found candidates and rewrote
	// them (Stats), guarded by mu like the rest of the bookkeeping.
	compactPasses uint64
	// compactMu serializes compaction passes (the background loop and
	// direct Compact calls) without blocking the store lock.
	compactMu sync.Mutex

	// Group commit: waiters are Puts/Deletes blocked on durability.
	commitMu sync.Mutex
	waiters  []chan error

	commitKick  chan struct{}
	compactKick chan struct{}
	stop        chan struct{}
	wg          sync.WaitGroup
}

var _ Store = (*Log)(nil)
var _ StatsProvider = (*Log)(nil)

// LogOptions tunes the log engine. The zero value is a working
// configuration: no fsync, 64 MiB segments, compaction below 50% live.
type LogOptions struct {
	// Fsync makes Put and Delete block until the record is on stable
	// storage. Concurrent writers share fsyncs via group commit.
	Fsync bool
	// SegmentMaxBytes seals the active segment once it reaches this
	// size (default 64 MiB).
	SegmentMaxBytes int64
	// CommitWindow is how long the committer waits after the first
	// pending writer before syncing, letting a batch grow. Zero (the
	// default) syncs immediately: batches still form naturally from
	// writers that arrive while the previous fsync is in flight.
	CommitWindow time.Duration
	// CompactLiveRatio triggers compaction of sealed segments whose
	// live-byte ratio falls below it (default 0.5; negative disables
	// compaction).
	CompactLiveRatio float64
	// CompactRateBytesPerSec throttles compaction copy throughput
	// (bytes read plus bytes re-appended per second) so background
	// maintenance cannot monopolize the disk under foreground load.
	// Zero means unlimited.
	CompactRateBytesPerSec int64
}

func (o LogOptions) withDefaults() LogOptions {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 64 << 20
	}
	if o.CompactLiveRatio == 0 {
		o.CompactLiveRatio = 0.5
	}
	return o
}

// segment is one append-only file of the log.
type segment struct {
	id   uint64
	f    *os.File
	size int64
	live int64 // bytes of records the index still points at
	// manifest caches the sealed segment's bulk-transfer metadata
	// (Segments()); valid because sealed segment bytes never change.
	manifest *SegmentInfo
}

// recLoc locates one record inside a segment.
type recLoc struct {
	seg uint64
	off int64
	len int64
}

// logKey indexes the stored versions of one key.
type logKey struct {
	versions []uint64 // ascending
	locs     map[uint64]recLoc
}

// Record layout, little-endian:
//
//	u32 body length | u32 CRC32(body) | body
//	body: u8 type | u64 version | u16 key length | key | value
//
// The CRC covers the whole body, so a torn header, torn body or bit rot
// anywhere in the record fails verification.
const (
	recHeaderLen = 8
	recFixedLen  = 1 + 8 + 2
	recPut       = byte(1)
	recTomb      = byte(2)
	maxRecBody   = 1 << 30
)

// record is one decoded log record; value aliases the decode buffer.
type record struct {
	typ     byte
	key     string
	version uint64
	value   []byte
}

func appendRecord(dst []byte, typ byte, key string, version uint64, value []byte) []byte {
	body := recFixedLen + len(key) + len(value)
	start := len(dst)
	dst = append(dst, make([]byte, recHeaderLen+body)...)
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(body))
	p := b[recHeaderLen:]
	p[0] = typ
	binary.LittleEndian.PutUint64(p[1:9], version)
	binary.LittleEndian.PutUint16(p[9:11], uint16(len(key)))
	copy(p[11:], key)
	copy(p[11+len(key):], value)
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(p))
	return dst
}

// parseRecord decodes the record at the head of b. ok is false for a
// short, corrupt or nonsensical record — the caller decides whether
// that means a torn tail (truncate) or corruption (fail).
func parseRecord(b []byte) (rec record, size int, ok bool) {
	if len(b) < recHeaderLen {
		return record{}, 0, false
	}
	body := binary.LittleEndian.Uint32(b[0:4])
	if body < recFixedLen || body > maxRecBody || len(b) < recHeaderLen+int(body) {
		return record{}, 0, false
	}
	p := b[recHeaderLen : recHeaderLen+int(body)]
	if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(b[4:8]) {
		return record{}, 0, false
	}
	typ := p[0]
	if typ != recPut && typ != recTomb {
		return record{}, 0, false
	}
	version := binary.LittleEndian.Uint64(p[1:9])
	keyLen := int(binary.LittleEndian.Uint16(p[9:11]))
	if recFixedLen+keyLen > int(body) || version == Latest ||
		(typ == recTomb && recFixedLen+keyLen != int(body)) {
		return record{}, 0, false
	}
	return record{
		typ:     typ,
		key:     string(p[11 : 11+keyLen]),
		version: version,
		value:   p[11+keyLen:],
	}, recHeaderLen + int(body), true
}

func segmentName(id uint64) string {
	return fmt.Sprintf("%010d.seg", id)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	id, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

// OpenLog opens (creating if needed) a log store rooted at dir and
// rebuilds the header index by replaying every segment in order.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	dirF, err := os.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open dir: %w", err)
	}
	l := &Log{
		dir:         dir,
		dirF:        dirF,
		opts:        opts,
		index:       make(map[string]*logKey),
		segs:        make(map[uint64]*segment),
		commitKick:  make(chan struct{}, 1),
		compactKick: make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		dirF.Close()
		return nil, fmt.Errorf("store: scan dir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := parseSegmentName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if err := l.replaySegment(id, i == len(ids)-1); err != nil {
			l.closeFiles()
			return nil, err
		}
	}
	if len(ids) == 0 {
		seg, err := l.createSegment(1)
		if err != nil {
			l.closeFiles()
			return nil, err
		}
		l.active = seg
	} else {
		l.active = l.segs[ids[len(ids)-1]]
		if l.active.size >= l.opts.SegmentMaxBytes {
			if err := l.seal(); err != nil {
				l.closeFiles()
				return nil, err
			}
		}
	}
	l.wg.Add(1)
	go l.compactLoop()
	if l.opts.Fsync {
		l.wg.Add(1)
		go l.commitLoop()
	}
	return l, nil
}

// Dir returns the store's root directory.
func (l *Log) Dir() string { return l.dir }

// replaySegment scans one segment sequentially, applying puts and
// tombstones to the index. A record that fails verification in the
// last segment is a torn tail: the file is truncated at the last good
// offset. Anywhere else it is corruption and replay fails.
func (l *Log) replaySegment(id uint64, last bool) error {
	path := filepath.Join(l.dir, segmentName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: read segment: %w", err)
	}
	seg := &segment{id: id, f: f}
	l.segs[id] = seg
	l.segIDs = append(l.segIDs, id)
	off := 0
	for off < len(data) {
		rec, n, ok := parseRecord(data[off:])
		if !ok {
			if !last {
				return fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, id, off)
			}
			if err := f.Truncate(int64(off)); err != nil {
				return fmt.Errorf("store: truncate torn tail: %w", err)
			}
			break
		}
		switch rec.typ {
		case recPut:
			k := l.index[rec.key]
			if k == nil {
				k = &logKey{locs: make(map[uint64]recLoc, 1)}
				l.index[rec.key] = k
			}
			if _, dup := k.locs[rec.version]; !dup {
				k.locs[rec.version] = recLoc{seg: id, off: int64(off), len: int64(n)}
				k.versions = insertSorted(k.versions, rec.version)
				seg.live += int64(n)
				l.count++
			}
		case recTomb:
			if k := l.index[rec.key]; k != nil {
				if loc, ok := k.locs[rec.version]; ok {
					l.dropIndexed(k, rec.key, rec.version, loc)
				}
			}
		}
		off += n
	}
	seg.size = int64(off)
	// The handle's write offset must sit at the replayed end (the file
	// was read separately), or appends would overwrite the head.
	if _, err := f.Seek(seg.size, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek segment end: %w", err)
	}
	return nil
}

// dropIndexed removes (key, version) from the index and discounts its
// record from the owning segment's live bytes. Caller holds mu.
func (l *Log) dropIndexed(k *logKey, key string, version uint64, loc recLoc) {
	delete(k.locs, version)
	i := sort.Search(len(k.versions), func(i int) bool { return k.versions[i] >= version })
	if i < len(k.versions) && k.versions[i] == version {
		k.versions = append(k.versions[:i], k.versions[i+1:]...)
	}
	if len(k.versions) == 0 {
		delete(l.index, key)
	}
	if seg := l.segs[loc.seg]; seg != nil {
		seg.live -= loc.len
	}
	l.count--
}

// createSegment opens a fresh segment file and makes its directory
// entry durable. Caller holds mu (or is inside Open).
func (l *Log) createSegment(id uint64) (*segment, error) {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(id)), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create segment: %w", err)
	}
	if err := l.dirF.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sync dir: %w", err)
	}
	seg := &segment{id: id, f: f}
	l.segs[id] = seg
	l.segIDs = append(l.segIDs, id)
	return seg, nil
}

// seal syncs the active segment and rolls to a new one. Caller holds
// mu.
func (l *Log) seal() error {
	if err := l.active.f.Sync(); err != nil {
		return fmt.Errorf("store: sync sealed segment: %w", err)
	}
	seg, err := l.createSegment(l.active.id + 1)
	if err != nil {
		return err
	}
	l.active = seg
	l.kickCompact()
	return nil
}

// appendLocked writes one encoded record to the active segment and
// rolls it when full. On a short write the segment is truncated back so
// the log stays parseable. Caller holds mu.
func (l *Log) appendLocked(rec []byte) (off int64, err error) {
	off = l.active.size
	if _, err := l.active.f.Write(rec); err != nil {
		_ = l.active.f.Truncate(off)
		_, _ = l.active.f.Seek(off, io.SeekStart)
		return 0, fmt.Errorf("store: append record: %w", err)
	}
	l.active.size += int64(len(rec))
	return off, nil
}

// enqueueDurable registers a group-commit waiter. Must be called while
// holding mu so Close cannot set closed between the append and the
// registration (it would strand the waiter).
func (l *Log) enqueueDurable() chan error {
	ch := make(chan error, 1)
	l.commitMu.Lock()
	l.waiters = append(l.waiters, ch)
	l.commitMu.Unlock()
	return ch
}

func (l *Log) kickCommit() {
	select {
	case l.commitKick <- struct{}{}:
	default:
	}
}

func (l *Log) kickCompact() {
	select {
	case l.compactKick <- struct{}{}:
	default:
	}
}

// validateRecord rejects a put the record format cannot represent: a
// record the parser would refuse must never be acknowledged — it would
// read back as corruption and poison replay.
func validateRecord(key string, value []byte) error {
	if len(key) > maxKeyLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), maxKeyLen)
	}
	if len(value) > maxRecBody-recFixedLen-len(key) {
		return fmt.Errorf("%w: value %d bytes (max %d)", ErrValueTooLarge, len(value), maxRecBody-recFixedLen-len(key))
	}
	return nil
}

// Put implements Store.
func (l *Log) Put(key string, version uint64, value []byte) error {
	if ReservedVersion(version) {
		return ErrBadVersion
	}
	if err := validateRecord(key, value); err != nil {
		return err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	k := l.index[key]
	if k != nil {
		if _, dup := k.locs[version]; dup {
			// Idempotent re-put — but under Fsync the caller is being
			// told the object is durable, and the original record may
			// still be waiting on its group commit. Join it.
			var ch chan error
			if l.opts.Fsync {
				ch = l.enqueueDurable()
			}
			l.mu.Unlock()
			if ch == nil {
				return nil
			}
			l.kickCommit()
			return <-ch
		}
	}
	rec := appendRecord(nil, recPut, key, version, value)
	off, err := l.appendLocked(rec)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	if k == nil {
		k = &logKey{locs: make(map[uint64]recLoc, 1)}
		l.index[key] = k
	}
	k.locs[version] = recLoc{seg: l.active.id, off: off, len: int64(len(rec))}
	k.versions = insertSorted(k.versions, version)
	l.active.live += int64(len(rec))
	l.count++
	var sealErr error
	if l.active.size >= l.opts.SegmentMaxBytes {
		sealErr = l.seal()
	}
	var ch chan error
	if l.opts.Fsync {
		ch = l.enqueueDurable()
	}
	l.mu.Unlock()
	if sealErr != nil {
		return sealErr
	}
	if ch == nil {
		return nil
	}
	l.kickCommit()
	return <-ch
}

// PutBatch implements Store: the whole batch becomes one encoded
// append buffer written under a single lock acquisition, and — with
// Fsync — one group-commit waiter, so the cost of durability is paid
// once per batch instead of once per object.
func (l *Log) PutBatch(objs []Object) error {
	if len(objs) == 0 {
		return nil
	}
	for _, o := range objs {
		if ReservedVersion(o.Version) {
			return ErrBadVersion
		}
		if err := validateRecord(o.Key, o.Value); err != nil {
			return err
		}
	}
	type entry struct {
		key string
		ver uint64
		len int64
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	var buf []byte
	var entries []entry
	// flush appends the buffered records as one write, indexes them and
	// rolls the segment when full, so a batch larger than
	// SegmentMaxBytes still produces bounded segment files.
	flush := func() error {
		if len(entries) == 0 {
			return nil
		}
		off, err := l.appendLocked(buf)
		if err != nil {
			return err
		}
		for _, e := range entries {
			k := l.index[e.key]
			if k == nil {
				k = &logKey{locs: make(map[uint64]recLoc, 1)}
				l.index[e.key] = k
			}
			k.locs[e.ver] = recLoc{seg: l.active.id, off: off, len: e.len}
			k.versions = insertSorted(k.versions, e.ver)
			l.active.live += e.len
			l.count++
			off += e.len
		}
		buf, entries = buf[:0], entries[:0]
		if l.active.size >= l.opts.SegmentMaxBytes {
			return l.seal()
		}
		return nil
	}
	inBatch := make(map[string]map[uint64]bool)
	for _, o := range objs {
		if k := l.index[o.Key]; k != nil {
			if _, dup := k.locs[o.Version]; dup {
				continue // idempotent re-put
			}
		}
		if inBatch[o.Key][o.Version] {
			continue // duplicate within the batch
		}
		if inBatch[o.Key] == nil {
			inBatch[o.Key] = make(map[uint64]bool, 1)
		}
		inBatch[o.Key][o.Version] = true
		if len(buf) > 0 && l.active.size+int64(len(buf)) >= l.opts.SegmentMaxBytes {
			if err := flush(); err != nil {
				l.mu.Unlock()
				return err
			}
		}
		before := len(buf)
		buf = appendRecord(buf, recPut, o.Key, o.Version, o.Value)
		entries = append(entries, entry{key: o.Key, ver: o.Version, len: int64(len(buf) - before)})
	}
	if err := flush(); err != nil {
		l.mu.Unlock()
		return err
	}
	var ch chan error
	if l.opts.Fsync {
		// One waiter covers the batch: every record was appended before
		// the committer's next fsync of the active segment (records
		// behind a mid-batch seal were synced by the seal itself). An
		// all-duplicate batch still joins the group commit, like Put.
		ch = l.enqueueDurable()
	}
	l.mu.Unlock()
	if ch == nil {
		return nil
	}
	l.kickCommit()
	return <-ch
}

// Get implements Store. The record is re-verified against its checksum
// on every read, so a torn or rotted record is reported as ErrCorrupt
// rather than served.
func (l *Log) Get(key string, version uint64) ([]byte, uint64, bool, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, 0, false, ErrClosed
	}
	k := l.index[key]
	if k == nil || len(k.versions) == 0 {
		return nil, 0, false, nil
	}
	v := version
	if version == Latest {
		v = k.versions[len(k.versions)-1]
	}
	loc, ok := k.locs[v]
	if !ok {
		return nil, 0, false, nil
	}
	buf := make([]byte, loc.len)
	if _, err := l.segs[loc.seg].f.ReadAt(buf, loc.off); err != nil {
		return nil, 0, false, fmt.Errorf("store: read record: %w", err)
	}
	rec, _, ok := parseRecord(buf)
	if !ok || rec.typ != recPut || rec.key != key || rec.version != v {
		return nil, 0, false, fmt.Errorf("%w: %q version %d", ErrCorrupt, key, v)
	}
	return rec.value, v, true, nil
}

// Versions implements Store.
func (l *Log) Versions(key string) ([]uint64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, ErrClosed
	}
	k := l.index[key]
	if k == nil {
		return nil, nil
	}
	out := make([]uint64, len(k.versions))
	copy(out, k.versions)
	return out, nil
}

// Delete implements Store. It appends a tombstone record so the delete
// survives restarts, then drops the version from the index. Version
// Latest resolves to the newest stored version, mirroring Get; the
// tombstone always carries the resolved concrete version.
func (l *Log) Delete(key string, version uint64) (bool, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false, ErrClosed
	}
	k := l.index[key]
	if k == nil || len(k.versions) == 0 {
		l.mu.Unlock()
		return false, nil
	}
	if version == Latest {
		version = k.versions[len(k.versions)-1]
	}
	loc, ok := k.locs[version]
	if !ok {
		l.mu.Unlock()
		return false, nil
	}
	rec := appendRecord(nil, recTomb, key, version, nil)
	if _, err := l.appendLocked(rec); err != nil {
		l.mu.Unlock()
		return false, err
	}
	l.dropIndexed(k, key, version, loc)
	var sealErr error
	if l.active.size >= l.opts.SegmentMaxBytes {
		sealErr = l.seal()
	}
	var ch chan error
	if l.opts.Fsync {
		ch = l.enqueueDurable()
	}
	l.mu.Unlock()
	l.kickCompact()
	if sealErr != nil {
		return false, sealErr
	}
	if ch == nil {
		return true, nil
	}
	l.kickCommit()
	if err := <-ch; err != nil {
		return false, err
	}
	return true, nil
}

// DeleteBatch implements Store: every tombstone is appended under one
// lock acquisition and ONE group-commit fsync covers the whole batch —
// the same asymmetry-removal PutBatch provides for writes. Latest
// resolves per item against the not-yet-deleted state, so two Latest
// items for one key remove its two newest versions.
func (l *Log) DeleteBatch(items []Deletion) ([]bool, error) {
	existed := make([]bool, len(items))
	if len(items) == 0 {
		return existed, nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return existed, ErrClosed
	}
	var rec []byte
	appended := false
	for i, it := range items {
		k := l.index[it.Key]
		if k == nil || len(k.versions) == 0 {
			continue
		}
		version := it.Version
		if version == Latest {
			version = k.versions[len(k.versions)-1]
		}
		loc, ok := k.locs[version]
		if !ok {
			continue
		}
		// Append before dropping the index entry (crash ordering: a
		// tombstone may exist without the drop, never the reverse).
		rec = appendRecord(rec[:0], recTomb, it.Key, version, nil)
		if _, err := l.appendLocked(rec); err != nil {
			l.mu.Unlock()
			l.kickCompact()
			return existed, err
		}
		l.dropIndexed(k, it.Key, version, loc)
		existed[i] = true
		appended = true
		if l.active.size >= l.opts.SegmentMaxBytes {
			if err := l.seal(); err != nil {
				l.mu.Unlock()
				l.kickCompact()
				return existed, err
			}
		}
	}
	var ch chan error
	if l.opts.Fsync && appended {
		// No tombstone appended → nothing to make durable; skipping the
		// group-commit wait keeps an all-absent batch (a DEL of missing
		// keys) from stalling the caller for a full fsync.
		ch = l.enqueueDurable()
	}
	l.mu.Unlock()
	l.kickCompact()
	if ch == nil {
		return existed, nil
	}
	l.kickCommit()
	if err := <-ch; err != nil {
		return existed, err
	}
	return existed, nil
}

// StreamObjects implements Store: the repair read path. Each record is
// read straight from its segment offset into ONE scratch buffer reused
// across the whole stream — no per-object allocation, no whole-record
// copy handed out (fn sees the value sub-slice of the scratch) — and
// re-verified against its CRC32 before it is served. A record that
// fails verification (bit rot under a live index entry) or cannot be
// read is counted in corrupt and skipped, so anti-entropy ships the
// healthy objects of a push instead of aborting on the first bad one;
// Get on the same pair still reports ErrCorrupt for operators. The
// store lock is held only for the index lookup and the segment read,
// never across fn.
func (l *Log) StreamObjects(refs []Ref, fn func(o Object) bool) (int, error) {
	corrupt := 0
	var scratch []byte
	for _, r := range refs {
		l.mu.RLock()
		if l.closed {
			l.mu.RUnlock()
			return corrupt, ErrClosed
		}
		var loc recLoc
		ok := false
		if k := l.index[r.Key]; k != nil {
			loc, ok = k.locs[r.Version]
		}
		if !ok {
			l.mu.RUnlock()
			continue
		}
		if int64(cap(scratch)) < loc.len {
			scratch = make([]byte, loc.len)
		}
		buf := scratch[:loc.len]
		_, err := l.segs[loc.seg].f.ReadAt(buf, loc.off)
		l.mu.RUnlock()
		if err != nil {
			corrupt++
			continue
		}
		rec, _, pok := parseRecord(buf)
		if !pok || rec.typ != recPut || rec.key != r.Key || rec.version != r.Version {
			corrupt++
			continue
		}
		if !fn(Object{Key: r.Key, Version: r.Version, Value: rec.value}) {
			return corrupt, nil
		}
	}
	return corrupt, nil
}

// ForEach implements Store. Like Memory, it iterates a sorted snapshot
// of the headers so fn may call back into the store.
func (l *Log) ForEach(fn func(key string, version uint64) bool) error {
	l.mu.RLock()
	if l.closed {
		l.mu.RUnlock()
		return ErrClosed
	}
	snapshot := make([]Object, 0, l.count)
	for key, k := range l.index {
		for _, v := range k.versions {
			snapshot = append(snapshot, Object{Key: key, Version: v})
		}
	}
	l.mu.RUnlock()
	sort.Slice(snapshot, func(i, j int) bool {
		if snapshot[i].Key != snapshot[j].Key {
			return snapshot[i].Key < snapshot[j].Key
		}
		return snapshot[i].Version < snapshot[j].Version
	})
	for _, o := range snapshot {
		if !fn(o.Key, o.Version) {
			return nil
		}
	}
	return nil
}

// Count implements Store.
func (l *Log) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return 0
	}
	return l.count
}

// SegmentCount returns how many segment files the log currently has
// (including the active one). Exposed for tests and metrics.
func (l *Log) SegmentCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.segIDs)
}

// Stats implements StatsProvider: segment count, the live/dead byte
// split compaction works from, and how many passes have rewritten
// segments so far.
func (l *Log) Stats() Stats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := Stats{Segments: len(l.segIDs), CompactionPasses: l.compactPasses}
	for _, seg := range l.segs {
		s.LiveBytes += seg.live
		s.DeadBytes += seg.size - seg.live
	}
	return s
}

// commitLoop is the group committer: it turns any number of pending
// durability waiters into one fsync of the active segment.
func (l *Log) commitLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stop:
			return
		case <-l.commitKick:
		}
		if l.opts.CommitWindow > 0 {
			time.Sleep(l.opts.CommitWindow)
		}
		l.commitMu.Lock()
		ws := l.waiters
		l.waiters = nil
		l.commitMu.Unlock()
		if len(ws) == 0 {
			continue
		}
		// Every waiter in ws appended before this point, to the current
		// active file or to one already synced by a seal, so one fsync
		// of the active file covers the batch. The sync runs outside mu
		// so writers keep appending meanwhile, growing the next batch.
		l.mu.RLock()
		f := l.active.f
		l.mu.RUnlock()
		err := f.Sync()
		if err != nil && errors.Is(err, os.ErrClosed) {
			// The snapshot raced with a seal + compaction: the file was
			// sealed (synced) and then compacted away. Both paths made
			// every waiter's record durable before closing it.
			err = nil
		}
		for _, ch := range ws {
			ch <- err
		}
	}
}

// compactLoop runs segment compaction in the background whenever a
// seal or delete suggests dead bytes may have accumulated.
func (l *Log) compactLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stop:
			return
		case <-l.compactKick:
		}
		l.compactOnce()
	}
}

// Compact forces one synchronous compaction evaluation. The background
// loop calls the same logic; tests and operators can call it directly.
func (l *Log) Compact() error { return l.compactOnce() }

// CompactionErr returns the error of the most recent compaction pass
// (nil when it succeeded). Background compaction has no caller to
// report to, so failures — ENOSPC, I/O errors, a corrupt sealed
// segment — are surfaced here instead of disappearing.
func (l *Log) CompactionErr() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.compactErr
}

func (l *Log) compactOnce() error {
	l.compactMu.Lock()
	err := l.compactPass()
	l.compactMu.Unlock()
	l.mu.Lock()
	l.compactErr = err
	l.mu.Unlock()
	return err
}

// compactRec is one put record's location inside a candidate segment.
type compactRec struct {
	key string
	ver uint64
	loc recLoc
}

// compactSeg is one candidate segment at snapshot time.
type compactSeg struct {
	seg  *segment
	id   uint64
	size int64
}

// compactBatchBytes bounds how many copied bytes are swapped per
// write-lock critical section, keeping each foreground stall to one
// small buffered write instead of a whole segment rewrite.
const compactBatchBytes = 64 << 10

// compactPass runs one compaction evaluation. Only the snapshot, the
// per-batch swap and the final bookkeeping trim take the store lock —
// every segment read, record copy and throttle sleep happens with no
// lock held, so foreground operations proceed while the pass churns.
func (l *Log) compactPass() error {
	candidates := l.compactCandidates()
	if len(candidates) == 0 {
		return nil
	}
	l.mu.Lock()
	l.compactPasses++
	l.mu.Unlock()
	for _, cs := range candidates {
		if err := l.copyLive(cs); err != nil {
			return err
		}
	}
	// New copies must be durable before the old ones disappear. Every
	// copy went to the current active file or to one already synced by
	// a seal, so one fsync covers them all (same invariant as the
	// group committer).
	l.mu.RLock()
	closed, f := l.closed, l.active.f
	l.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync compacted records: %w", err)
	}
	// Remove in ascending order, syncing the directory after each
	// unlink: the filesystem does not persist un-fsynced directory
	// updates in issue order, and a crash that keeps a put's segment
	// while losing its tombstone's would resurrect deleted data. With
	// the per-remove sync, a surviving tombstone may at worst point at
	// an already-removed put (harmless). Bookkeeping is trimmed per
	// segment — under a short write lock, with the unlink itself
	// outside — so an error return leaves segs and segIDs consistent
	// for the next pass.
	for _, cs := range candidates {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		seg := l.segs[cs.id]
		if seg == nil {
			l.mu.Unlock()
			continue
		}
		if seg.live != 0 {
			// Nothing appends to a sealed segment, so a drained
			// candidate must have no live bytes; anything else is a
			// bookkeeping bug and removal would lose data.
			l.mu.Unlock()
			return fmt.Errorf("store: segment %d still has %d live bytes after compaction", cs.id, seg.live)
		}
		delete(l.segs, cs.id)
		l.segIDs = l.segIDs[1:] // prefix sits at the front
		l.mu.Unlock()
		// os.File tolerates a concurrent Sync from the group committer:
		// the loser observes os.ErrClosed, which the committer maps to
		// success (sealing already synced this file).
		seg.f.Close()
		err := os.Remove(filepath.Join(l.dir, segmentName(cs.id)))
		if err == nil {
			err = l.dirF.Sync()
		}
		if err != nil {
			return fmt.Errorf("store: remove compacted segment %d: %w", cs.id, err)
		}
	}
	return nil
}

// compactCandidates picks, under a brief read lock, the candidate
// prefix: a downward-closed prefix of the sealed segments, up to the
// newest one below the live-ratio threshold. The prefix property is
// what makes dropping tombstones safe: a tombstone's target put is
// always in the same or an earlier segment. Only segment metadata is
// snapshotted — the record set is derived lock-free from the segment
// bytes in copyLive, and liveness is decided per batch against the
// current index in relocateBatch.
func (l *Log) compactCandidates() []*compactSeg {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed || l.opts.CompactLiveRatio < 0 {
		return nil
	}
	cut := -1
	for i, id := range l.segIDs {
		if id == l.active.id {
			break
		}
		seg := l.segs[id]
		if seg.size > 0 && float64(seg.live)/float64(seg.size) < l.opts.CompactLiveRatio {
			cut = i
		}
	}
	if cut < 0 {
		return nil
	}
	out := make([]*compactSeg, 0, cut+1)
	for _, id := range l.segIDs[:cut+1] {
		out = append(out, &compactSeg{seg: l.segs[id], id: id, size: l.segs[id].size})
	}
	return out
}

// copyLive reads one candidate segment with no lock held, parses its
// put records (a sealed segment is immutable, so the unlocked read and
// parse are stable, and the CRC walk reports rot instead of silently
// propagating it) and re-appends the live ones to the active segment
// in bounded batches. The read is chunked with the throttle charged
// before each chunk — so the rate cap paces the disk I/O spike itself,
// not just work already done — and each swap batch charges the bytes
// it copied, so a rate-limited pass alternates short bursts with
// sleeps instead of lumping one long stall.
func (l *Log) copyLive(cs *compactSeg) error {
	if cs.size == 0 {
		return nil
	}
	data := make([]byte, cs.size)
	for off := int64(0); off < cs.size; {
		n := cs.size - off
		if n > compactBatchBytes {
			n = compactBatchBytes
		}
		l.throttleCompact(int(n))
		if _, err := cs.seg.f.ReadAt(data[off:off+n], off); err != nil {
			return fmt.Errorf("store: read segment %d: %w", cs.id, err)
		}
		off += n
	}
	var recs []compactRec
	var off int64
	for off < cs.size {
		rec, n, ok := parseRecord(data[off:])
		if !ok {
			return fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, cs.id, off)
		}
		if rec.typ == recPut {
			recs = append(recs, compactRec{
				key: rec.key, ver: rec.version,
				loc: recLoc{seg: cs.id, off: off, len: int64(n)},
			})
		}
		off += int64(n)
	}
	if len(recs) == 0 {
		return nil // tombstone-only segment: read already charged
	}
	var batch []compactRec
	var spanStart int64
	flush := func(spanEnd int64) error {
		if len(batch) == 0 {
			return nil
		}
		copied, err := l.relocateBatch(cs, data, batch)
		if err != nil {
			return err
		}
		l.throttleCompact(int(copied))
		batch, spanStart = batch[:0], spanEnd
		return nil
	}
	for _, r := range recs {
		batch = append(batch, r)
		if end := r.loc.off + r.loc.len; end-spanStart >= compactBatchBytes {
			if err := flush(end); err != nil {
				return err
			}
		}
	}
	return flush(cs.size)
}

// relocateBatch revalidates one batch of parsed records against the
// current index and appends the survivors to the active segment — the
// only write-lock critical section of the copy loop. A record that is
// superseded, deleted, or dropped mid-flight simply stays behind in
// the doomed segment. Returns the bytes copied.
func (l *Log) relocateBatch(cs *compactSeg, data []byte, batch []compactRec) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	var buf []byte
	kept := make([]compactRec, 0, len(batch))
	for _, r := range batch {
		k := l.index[r.key]
		if k == nil {
			continue
		}
		if loc, live := k.locs[r.ver]; !live || loc != r.loc {
			continue
		}
		buf = append(buf, data[r.loc.off:r.loc.off+r.loc.len]...)
		kept = append(kept, r)
	}
	if len(buf) == 0 {
		return 0, nil
	}
	off, err := l.appendLocked(buf)
	if err != nil {
		return 0, err
	}
	for _, r := range kept {
		k := l.index[r.key]
		k.locs[r.ver] = recLoc{seg: l.active.id, off: off, len: r.loc.len}
		l.active.live += r.loc.len
		cs.seg.live -= r.loc.len
		off += r.loc.len
	}
	copied := int64(len(buf))
	if l.active.size >= l.opts.SegmentMaxBytes {
		return copied, l.seal()
	}
	return copied, nil
}

// throttleCompact sleeps long enough to keep compaction I/O under
// CompactRateBytesPerSec. Closing the store interrupts the sleep so a
// heavily throttled pass cannot delay shutdown.
func (l *Log) throttleCompact(n int) {
	rate := l.opts.CompactRateBytesPerSec
	if rate <= 0 || n <= 0 {
		return
	}
	d := time.Duration(int64(time.Second) * int64(n) / rate)
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.stop:
	case <-t.C:
	}
}

// Close implements Store. Pending group-commit waiters receive the
// result of one final fsync.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	// A directly invoked Compact may still be mid-pass; closed and the
	// stop channel make it bail out fast, and holding compactMu here
	// keeps the file handles it touches valid until it has.
	l.compactMu.Lock()
	l.compactMu.Unlock()
	// No new waiters can register once closed is set (registration
	// happens under mu), so this drain is complete.
	l.commitMu.Lock()
	ws := l.waiters
	l.waiters = nil
	l.commitMu.Unlock()
	err := l.active.f.Sync()
	for _, ch := range ws {
		ch <- err
	}
	l.closeFiles()
	l.index = nil
	l.count = 0
	return err
}

func (l *Log) closeFiles() {
	for _, seg := range l.segs {
		seg.f.Close()
	}
	l.dirF.Close()
}
