package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Point-in-time snapshot and restore, built on the same sealed-segment
// machinery bootstrap streams over the wire. A snapshot directory
// holds the segments as verbatim record files plus MANIFEST.json
// (written last, atomically: a crash mid-snapshot leaves no manifest
// and the directory reads as no snapshot at all). Restore replays the
// manifest's segments through the engine-generic record applier, so a
// backup taken from a log store restores into any engine. Corruption
// in a segment file truncates that segment at the last verified record
// — the same crash-consistency rule as log replay — and is reported in
// RestoreStats rather than failing the restore.

// ManifestName is the snapshot manifest file name.
const ManifestName = "MANIFEST.json"

// SnapshotManifest records what a snapshot directory contains.
type SnapshotManifest struct {
	Format   int           `json:"format"`
	Segments []SegmentInfo `json:"segments"`
}

// snapshotFormat is the current manifest format version.
const snapshotFormat = 1

// SegmentFileName returns the file name a snapshot stores segment id
// under (the log engine's own segment naming).
func SegmentFileName(id uint64) string { return segmentName(id) }

// sealer is the optional interface of engines whose active writes can
// be rolled into the sealed set before a snapshot (the log engine).
type sealer interface{ Seal() error }

// WriteSnapshot captures st's sealed segments into dir as verbatim
// record files plus MANIFEST.json. Engines with an active segment are
// sealed first so the capture covers everything written before the
// call. A segment that vanishes or drifts mid-stream (compaction; a
// concurrent write on a synthetic-segment engine) is dropped from the
// manifest rather than recorded torn — the snapshot stays internally
// consistent, just smaller. The manifest is written last via rename,
// so a crashed snapshot leaves no manifest and ReadManifest fails
// cleanly.
func WriteSnapshot(st Store, dir string) (SnapshotManifest, error) {
	man := SnapshotManifest{Format: snapshotFormat}
	if s, ok := st.(sealer); ok {
		if err := s.Seal(); err != nil {
			return man, fmt.Errorf("store: seal before snapshot: %w", err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return man, fmt.Errorf("store: create snapshot dir: %w", err)
	}
	segs, err := st.Segments()
	if err != nil {
		return man, err
	}
	for _, info := range segs {
		ok, err := writeSnapshotSegment(st, dir, info)
		if err != nil {
			return man, err
		}
		if ok {
			man.Segments = append(man.Segments, info)
		}
	}
	return WriteManifest(dir, man.Segments)
}

// WriteManifest publishes a manifest covering segs into dir, written
// atomically (temp file + rename) and dir-synced so a crash leaves
// either the previous manifest or the new one, never a torn file. The
// segment files themselves must already be in place — this is the
// "commit" of a snapshot, used both by WriteSnapshot and by remote
// snapshot downloads.
func WriteManifest(dir string, segs []SegmentInfo) (SnapshotManifest, error) {
	man := SnapshotManifest{Format: snapshotFormat, Segments: segs}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return man, err
	}
	tmp := filepath.Join(dir, ManifestName+".partial")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return man, fmt.Errorf("store: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return man, fmt.Errorf("store: publish manifest: %w", err)
	}
	if err := syncSnapshotDir(dir); err != nil {
		return man, err
	}
	return man, nil
}

// writeSnapshotSegment streams one segment into its snapshot file,
// verifying length and CRC against the manifest entry. ok is false
// (and the file removed) when the stream came up short or drifted.
func writeSnapshotSegment(st Store, dir string, info SegmentInfo) (ok bool, err error) {
	path := filepath.Join(dir, segmentName(info.ID))
	f, err := os.Create(path)
	if err != nil {
		return false, fmt.Errorf("store: create snapshot segment: %w", err)
	}
	var crc uint32
	var n int64
	complete := false
	var werr error
	err = st.StreamSegments([]SegmentRef{{ID: info.ID}}, func(c SegmentChunk) bool {
		if c.Offset != n {
			werr = fmt.Errorf("store: snapshot segment %d: chunk at %d, expected %d", info.ID, c.Offset, n)
			return false
		}
		if _, err := f.Write(c.Data); err != nil {
			werr = fmt.Errorf("store: write snapshot segment: %w", err)
			return false
		}
		crc = crc32.Update(crc, crc32.IEEETable, c.Data)
		n += int64(len(c.Data))
		complete = c.Last
		return true
	})
	if err == nil {
		err = werr
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return false, err
	}
	if !complete || n != info.Bytes || crc != info.CRC {
		// Vanished under compaction or (synthetic segments) changed
		// under a concurrent write: not capturable this pass.
		os.Remove(path)
		return false, nil
	}
	return true, nil
}

func syncSnapshotDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open snapshot dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync snapshot dir: %w", err)
	}
	return nil
}

// ReadManifest loads and validates a snapshot directory's manifest.
func ReadManifest(dir string) (SnapshotManifest, error) {
	var man SnapshotManifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return man, fmt.Errorf("store: read snapshot manifest: %w", err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("store: parse snapshot manifest: %w", err)
	}
	if man.Format != snapshotFormat {
		return man, fmt.Errorf("store: snapshot manifest format %d not supported (want %d)", man.Format, snapshotFormat)
	}
	return man, nil
}

// RestoreStats reports what a restore applied and what it had to cut.
type RestoreStats struct {
	// Segments is how many manifest segments were replayed (fully or
	// to their truncation point).
	Segments int
	// Objects counts put records applied to the store.
	Objects int
	// Tombstones counts deletions applied after all segments replayed.
	Tombstones int
	// TruncatedBytes counts bytes dropped at corrupt or torn segment
	// tails — the restore-side analogue of log replay's torn-tail
	// truncation. Zero on a clean restore.
	TruncatedBytes int64
	// TruncatedSegments counts segments that needed truncation.
	TruncatedSegments int
}

// Restore replays a snapshot directory into st. Segments are applied
// in ascending id order through a RecordApplier, so tombstones resolve
// exactly as log replay would; a record that fails verification
// truncates its segment at the last verified byte (counted in stats)
// and the restore continues with the remaining segments — bit rot in a
// backup costs the rotten tail, never the whole restore. A missing or
// unparseable manifest fails immediately: that directory is not a
// snapshot.
func Restore(dir string, st Store) (RestoreStats, error) {
	var stats RestoreStats
	man, err := ReadManifest(dir)
	if err != nil {
		return stats, err
	}
	segs := append([]SegmentInfo(nil), man.Segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].ID < segs[j].ID })
	applier := NewRecordApplier(st, nil)
	for _, info := range segs {
		path := filepath.Join(dir, segmentName(info.ID))
		size, verified, err := walkSegmentFile(path, func(off int64, data []byte) error {
			n, err := applier.Apply(info.ID, off, data)
			stats.Objects += n
			return err
		})
		if err != nil {
			return stats, err
		}
		stats.Segments++
		if verified < size {
			stats.TruncatedBytes += size - verified
			stats.TruncatedSegments++
		}
	}
	tombs, err := applier.Finish()
	stats.Tombstones = tombs
	return stats, err
}

// walkSegmentFile streams one snapshot segment file in record-aligned,
// CRC-verified chunks. It returns the file size and the verified
// prefix length; unverifiable bytes end the walk (the caller treats
// the difference as a torn tail) while I/O errors and apply errors
// fail it.
func walkSegmentFile(path string, fn func(off int64, data []byte) error) (size, verified int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("store: open snapshot segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("store: stat snapshot segment: %w", err)
	}
	size = fi.Size()
	var off int64
	need := int64(streamChunkBytes)
	buf := make([]byte, 0, streamChunkBytes)
	for off < size {
		n := size - off
		if n > need {
			n = need
		}
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := f.ReadAt(buf, off); err != nil {
			return size, off, fmt.Errorf("store: read snapshot segment: %w", err)
		}
		chunk := 0
		for chunk < len(buf) {
			_, rn, ok := parseRecord(buf[chunk:])
			if !ok {
				break
			}
			chunk += rn
		}
		if chunk == 0 {
			grow, truncated := truncatedNeed(buf, size-off)
			if !truncated {
				return size, off, nil // corrupt or torn: verified prefix ends here
			}
			need = grow
			continue
		}
		need = streamChunkBytes
		if err := fn(off, buf[:chunk]); err != nil {
			return size, off, err
		}
		off += int64(chunk)
	}
	return size, off, nil
}
