package store

import (
	"sort"
	"sync"
)

// Memory is the in-memory engine: a map of keys to version-sorted
// entries. Values are copied on the way in and out, so callers can
// never alias internal buffers. Safe for concurrent use.
type Memory struct {
	mu     sync.RWMutex
	keys   map[string]*memKey
	count  int
	closed bool

	// maxVersionsPerKey, when positive, garbage-collects the oldest
	// versions beyond the cap. Zero keeps everything (the paper's
	// model).
	maxVersionsPerKey int
}

type memKey struct {
	// versions is kept sorted ascending.
	versions []uint64
	values   map[uint64][]byte
}

var _ Store = (*Memory)(nil)

// NewMemory creates an empty memory store that keeps every version.
func NewMemory() *Memory { return NewMemoryCapped(0) }

// NewMemoryCapped creates a memory store keeping at most maxVersions
// per key (0 = unlimited).
func NewMemoryCapped(maxVersions int) *Memory {
	return &Memory{keys: make(map[string]*memKey), maxVersionsPerKey: maxVersions}
}

// Put implements Store.
func (m *Memory) Put(key string, version uint64, value []byte) error {
	if ReservedVersion(version) {
		return ErrBadVersion
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.putLocked(key, version, value)
	return nil
}

// PutBatch implements Store: the batch is validated up front and
// applied under one lock acquisition.
func (m *Memory) PutBatch(objs []Object) error {
	for _, o := range objs {
		if ReservedVersion(o.Version) {
			return ErrBadVersion
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, o := range objs {
		m.putLocked(o.Key, o.Version, o.Value)
	}
	return nil
}

// putLocked stores one object. Caller holds mu and has validated the
// version.
func (m *Memory) putLocked(key string, version uint64, value []byte) {
	k, ok := m.keys[key]
	if !ok {
		k = &memKey{values: make(map[uint64][]byte, 1)}
		m.keys[key] = k
	}
	if _, exists := k.values[version]; exists {
		return // idempotent re-put
	}
	buf := make([]byte, len(value))
	copy(buf, value)
	k.values[version] = buf
	k.versions = insertSorted(k.versions, version)
	m.count++
	if m.maxVersionsPerKey > 0 {
		for len(k.versions) > m.maxVersionsPerKey {
			oldest := k.versions[0]
			k.versions = k.versions[1:]
			delete(k.values, oldest)
			m.count--
		}
	}
}

// Get implements Store.
func (m *Memory) Get(key string, version uint64) ([]byte, uint64, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, 0, false, ErrClosed
	}
	k, ok := m.keys[key]
	if !ok || len(k.versions) == 0 {
		return nil, 0, false, nil
	}
	v := version
	if version == Latest {
		v = k.versions[len(k.versions)-1]
	}
	val, ok := k.values[v]
	if !ok {
		return nil, 0, false, nil
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, v, true, nil
}

// Versions implements Store.
func (m *Memory) Versions(key string) ([]uint64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	k, ok := m.keys[key]
	if !ok {
		return nil, nil
	}
	out := make([]uint64, len(k.versions))
	copy(out, k.versions)
	return out, nil
}

// Delete implements Store. Version Latest resolves to the newest
// stored version, mirroring Get.
func (m *Memory) Delete(key string, version uint64) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, ErrClosed
	}
	return m.deleteLocked(key, version), nil
}

// DeleteBatch implements Store: the whole batch under one lock
// acquisition.
func (m *Memory) DeleteBatch(items []Deletion) ([]bool, error) {
	existed := make([]bool, len(items))
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return existed, ErrClosed
	}
	for i, it := range items {
		existed[i] = m.deleteLocked(it.Key, it.Version)
	}
	return existed, nil
}

// deleteLocked removes one version (Latest resolves to the newest) and
// reports whether it existed. Caller holds mu.
func (m *Memory) deleteLocked(key string, version uint64) bool {
	k, ok := m.keys[key]
	if !ok || len(k.versions) == 0 {
		return false
	}
	if version == Latest {
		version = k.versions[len(k.versions)-1]
	}
	if _, exists := k.values[version]; !exists {
		return false
	}
	delete(k.values, version)
	i := sort.Search(len(k.versions), func(i int) bool { return k.versions[i] >= version })
	if i < len(k.versions) && k.versions[i] == version {
		k.versions = append(k.versions[:i], k.versions[i+1:]...)
	}
	m.count--
	if len(k.versions) == 0 {
		delete(m.keys, key)
	}
	return true
}

// StreamObjects implements Store. The values handed to fn alias the
// stored bytes — safe because the engine never mutates a stored value
// in place (puts copy on the way in, re-puts are no-ops) — so a
// repair push streams with zero value copies inside the engine. There
// is nothing to verify in RAM; corrupt is always 0.
func (m *Memory) StreamObjects(refs []Ref, fn func(o Object) bool) (int, error) {
	for _, r := range refs {
		m.mu.RLock()
		if m.closed {
			m.mu.RUnlock()
			return 0, ErrClosed
		}
		var val []byte
		ok := false
		if k, kok := m.keys[r.Key]; kok {
			val, ok = k.values[r.Version]
		}
		m.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(Object{Key: r.Key, Version: r.Version, Value: val}) {
			return 0, nil
		}
	}
	return 0, nil
}

// ForEach implements Store. The iteration works on a snapshot of the
// headers, ordered by (key, version) — a stable order keeps protocols
// that truncate digests deterministic — so fn may call back into the
// store.
func (m *Memory) ForEach(fn func(key string, version uint64) bool) error {
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrClosed
	}
	snapshot := make([]Object, 0, m.count)
	for key, k := range m.keys {
		for _, v := range k.versions {
			snapshot = append(snapshot, Object{Key: key, Version: v})
		}
	}
	m.mu.RUnlock()
	sort.Slice(snapshot, func(i, j int) bool {
		if snapshot[i].Key != snapshot[j].Key {
			return snapshot[i].Key < snapshot[j].Key
		}
		return snapshot[i].Version < snapshot[j].Version
	})
	for _, o := range snapshot {
		if !fn(o.Key, o.Version) {
			return nil
		}
	}
	return nil
}

// Count implements Store.
func (m *Memory) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.keys = nil
	m.count = 0
	return nil
}

func insertSorted(vs []uint64, v uint64) []uint64 {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	vs = append(vs, 0)
	copy(vs[i+1:], vs[i:])
	vs[i] = v
	return vs
}
