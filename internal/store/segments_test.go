package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fillStore writes n deterministic objects through PutBatch.
func fillStore(t *testing.T, st Store, n int) []Object {
	t.Helper()
	objs := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		objs = append(objs, Object{
			Key:     fmt.Sprintf("key%04d", i),
			Version: uint64(i%3 + 1),
			Value:   bytes.Repeat([]byte{byte(i)}, 20+i%50),
		})
	}
	if err := st.PutBatch(objs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	return objs
}

// collectSegments streams the full manifest and reassembles each
// segment's byte stream, checking chunk contiguity and Last marking.
func collectSegments(t *testing.T, st Store) map[uint64][]byte {
	t.Helper()
	infos, err := st.Segments()
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	refs := make([]SegmentRef, 0, len(infos))
	for _, info := range infos {
		refs = append(refs, SegmentRef{ID: info.ID})
	}
	streams := make(map[uint64][]byte)
	sawLast := make(map[uint64]bool)
	err = st.StreamSegments(refs, func(c SegmentChunk) bool {
		if int64(len(streams[c.Segment])) != c.Offset {
			t.Fatalf("segment %d: chunk at offset %d, have %d bytes", c.Segment, c.Offset, len(streams[c.Segment]))
		}
		streams[c.Segment] = append(streams[c.Segment], c.Data...)
		if c.Last {
			sawLast[c.Segment] = true
		}
		return true
	})
	if err != nil {
		t.Fatalf("StreamSegments: %v", err)
	}
	for _, info := range infos {
		stream := streams[info.ID]
		if int64(len(stream)) != info.Bytes {
			t.Fatalf("segment %d: streamed %d bytes, manifest says %d", info.ID, len(stream), info.Bytes)
		}
		if crc := crc32.ChecksumIEEE(stream); crc != info.CRC {
			t.Fatalf("segment %d: stream CRC %08x, manifest says %08x", info.ID, crc, info.CRC)
		}
		if !sawLast[info.ID] {
			t.Fatalf("segment %d: no chunk marked Last", info.ID)
		}
	}
	return streams
}

// decodeAll parses every record of every streamed segment.
func decodeAll(t *testing.T, streams map[uint64][]byte) map[Ref][]byte {
	t.Helper()
	out := make(map[Ref][]byte)
	for id, stream := range streams {
		_, err := DecodeRecords(stream, func(_ int, o Object, tombstone bool) bool {
			if tombstone {
				delete(out, Ref{Key: o.Key, Version: o.Version})
				return true
			}
			out[Ref{Key: o.Key, Version: o.Version}] = append([]byte(nil), o.Value...)
			return true
		})
		if err != nil {
			t.Fatalf("segment %d: decode: %v", id, err)
		}
	}
	return out
}

func TestLogSegmentManifestAndStream(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogOptions{SegmentMaxBytes: 1024, CompactLiveRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	objs := fillStore(t, l, 200)

	infos, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) < 2 {
		t.Fatalf("want several sealed segments with 1KiB roll size, got %d", len(infos))
	}
	for i, info := range infos {
		if i > 0 && infos[i-1].ID >= info.ID {
			t.Fatalf("manifest not ascending: %v", infos)
		}
		if info.Records == 0 || info.Bytes == 0 {
			t.Fatalf("empty manifest entry: %+v", info)
		}
		if info.MinKey == "" || info.MaxKey < info.MinKey {
			t.Fatalf("bad key range: %+v", info)
		}
	}
	// Second call must serve the cached manifests and agree.
	again, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(infos) != fmt.Sprint(again) {
		t.Fatalf("manifest changed between calls:\n%v\n%v", infos, again)
	}

	decoded := decodeAll(t, collectSegments(t, l))
	// Every decoded record must match the written object; the active
	// segment's tail objects are allowed to be missing.
	for ref, val := range decoded {
		var want []byte
		for _, o := range objs {
			if o.Key == ref.Key && o.Version == ref.Version {
				want = o.Value
			}
		}
		if want == nil || !bytes.Equal(val, want) {
			t.Fatalf("decoded %v does not match written object", ref)
		}
	}
	if len(decoded) == 0 {
		t.Fatal("no records decoded from sealed segments")
	}
}

func TestLogSealMakesActiveStreamable(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogOptions{CompactLiveRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillStore(t, l, 10)
	infos, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("nothing sealed yet, manifest has %d entries", len(infos))
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil { // empty active: no-op
		t.Fatal(err)
	}
	infos, err = l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Records != 10 {
		t.Fatalf("after Seal want one 10-record segment, got %+v", infos)
	}
	if got := decodeAll(t, collectSegments(t, l)); len(got) != 10 {
		t.Fatalf("decoded %d records, want 10", len(got))
	}
}

func TestStreamSegmentsResume(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogOptions{CompactLiveRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillStore(t, l, 50)
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	streams := collectSegments(t, l)
	info, _ := l.Segments()
	id := info[0].ID
	full := streams[id]

	// Resume from each chunk boundary the full stream reported.
	var boundaries []int64
	_ = l.StreamSegments([]SegmentRef{{ID: id}}, func(c SegmentChunk) bool {
		boundaries = append(boundaries, c.Offset+int64(len(c.Data)))
		return true
	})
	for _, b := range boundaries {
		var got []byte
		err := l.StreamSegments([]SegmentRef{{ID: id, Offset: b}}, func(c SegmentChunk) bool {
			got = append(got, c.Data...)
			return true
		})
		if err != nil {
			t.Fatalf("resume at %d: %v", b, err)
		}
		if !bytes.Equal(got, full[b:]) {
			t.Fatalf("resume at %d: got %d bytes, want %d", b, len(got), len(full)-int(b))
		}
	}
}

func TestStreamSegmentsCorruptionStopsStream(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{CompactLiveRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillStore(t, l, 80)
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	infos, _ := l.Segments()
	id := infos[0].ID

	// Flip one byte mid-segment, past the first few records.
	path := filepath.Join(dir, SegmentFileName(id))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := len(data) / 2
	data[flip] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got int64
	err = l.StreamSegments([]SegmentRef{{ID: id}}, func(c SegmentChunk) bool {
		got = c.Offset + int64(len(c.Data))
		return true
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if got == 0 || got > int64(flip) {
		t.Fatalf("verified prefix reached %d, corruption at %d: corrupt bytes must not ship", got, flip)
	}
}

func TestSyntheticSegments(t *testing.T) {
	engines := map[string]Store{
		"memory": NewMemory(),
	}
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	engines["disk"] = d
	for name, st := range engines {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			// Empty store: empty manifest.
			infos, err := st.Segments()
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 0 {
				t.Fatalf("empty store manifest: %v", infos)
			}
			objs := fillStore(t, st, 60)
			infos, err = st.Segments()
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 1 || infos[0].Records != len(objs) {
				t.Fatalf("want one synthetic segment with %d records, got %+v", len(objs), infos)
			}
			if infos[0].MinKey != "key0000" || infos[0].MaxKey != "key0059" {
				t.Fatalf("bad key range: %+v", infos[0])
			}
			decoded := decodeAll(t, collectSegments(t, st))
			if len(decoded) != len(objs) {
				t.Fatalf("decoded %d records, want %d", len(decoded), len(objs))
			}
			for _, o := range objs {
				if !bytes.Equal(decoded[Ref{Key: o.Key, Version: o.Version}], o.Value) {
					t.Fatalf("object %s@%d did not round-trip", o.Key, o.Version)
				}
			}
			// Resume mid-stream.
			full := collectSegments(t, st)[syntheticSegmentID]
			var boundaries []int64
			_ = st.StreamSegments([]SegmentRef{{ID: syntheticSegmentID}}, func(c SegmentChunk) bool {
				boundaries = append(boundaries, c.Offset+int64(len(c.Data)))
				return true
			})
			b := boundaries[0]
			var got []byte
			if err := st.StreamSegments([]SegmentRef{{ID: syntheticSegmentID, Offset: b}}, func(c SegmentChunk) bool {
				got = append(got, c.Data...)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, full[b:]) {
				t.Fatalf("synthetic resume at %d diverged", b)
			}
		})
	}
}

func TestRecordApplierTombstoneOrdering(t *testing.T) {
	enc := func(o Object, tomb bool) []byte { return appendObjectRecord(nil, o, tomb) }
	obj := Object{Key: "k", Version: 7, Value: []byte("v")}

	// put@seg1, tomb@seg2 → deleted, regardless of arrival order.
	st := NewMemory()
	a := NewRecordApplier(st, nil)
	if _, err := a.Apply(2, 0, enc(Object{Key: "k", Version: 7}, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(1, 0, enc(obj, false)); err != nil {
		t.Fatal(err)
	}
	if n, err := a.Finish(); err != nil || n != 1 {
		t.Fatalf("Finish = %d, %v; want 1 deletion", n, err)
	}
	if _, _, ok, _ := st.Get("k", 7); ok {
		t.Fatal("tombstone after put must delete the object")
	}

	// put@seg1, tomb@seg2, re-put@seg3 → alive.
	st2 := NewMemory()
	a2 := NewRecordApplier(st2, nil)
	tomb := Object{Key: obj.Key, Version: obj.Version}
	for _, step := range []struct {
		seg  uint64
		tomb bool
	}{{2, true}, {3, false}, {1, false}} {
		rec := obj
		if step.tomb {
			rec = tomb
		}
		if _, err := a2.Apply(step.seg, 0, enc(rec, step.tomb)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := a2.Finish(); err != nil || n != 0 {
		t.Fatalf("Finish = %d, %v; want 0 deletions", n, err)
	}
	if _, _, ok, _ := st2.Get("k", 7); !ok {
		t.Fatal("re-put after tombstone must survive")
	}

	// tomb then re-put within the SAME chunk → alive: records must
	// carry their byte offset inside the chunk, not the chunk base, or
	// the pair compares equal and the tombstone wrongly survives.
	st3 := NewMemory()
	a3 := NewRecordApplier(st3, nil)
	chunk := enc(tomb, true)
	chunk = append(chunk, enc(obj, false)...)
	if _, err := a3.Apply(1, 0, chunk); err != nil {
		t.Fatal(err)
	}
	if n, err := a3.Finish(); err != nil || n != 0 {
		t.Fatalf("Finish = %d, %v; want 0 deletions", n, err)
	}
	if _, _, ok, _ := st3.Get("k", 7); !ok {
		t.Fatal("re-put later in the same chunk must survive the tombstone")
	}

	// ...and the mirror case: re-put then tomb in the same chunk, at a
	// non-zero chunk base → deleted.
	st4 := NewMemory()
	a4 := NewRecordApplier(st4, nil)
	chunk = enc(obj, false)
	chunk = append(chunk, enc(tomb, true)...)
	if _, err := a4.Apply(1, 4096, chunk); err != nil {
		t.Fatal(err)
	}
	if n, err := a4.Finish(); err != nil || n != 1 {
		t.Fatalf("Finish = %d, %v; want 1 deletion", n, err)
	}
	if _, _, ok, _ := st4.Get("k", 7); ok {
		t.Fatal("tombstone later in the same chunk must delete the object")
	}
}

func TestRecordApplierFilter(t *testing.T) {
	st := NewMemory()
	a := NewRecordApplier(st, func(key string) bool { return key == "keep" })
	chunk := appendObjectRecord(nil, Object{Key: "keep", Version: 1, Value: []byte("x")}, false)
	chunk = appendObjectRecord(chunk, Object{Key: "drop", Version: 1, Value: []byte("y")}, false)
	n, err := a.Apply(1, 0, chunk)
	if err != nil || n != 1 {
		t.Fatalf("Apply = %d, %v; want 1 accepted", n, err)
	}
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 1 {
		t.Fatalf("store has %d objects, want 1", st.Count())
	}
	if _, _, ok, _ := st.Get("drop", 1); ok {
		t.Fatal("filtered key stored")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(filepath.Join(dir, "data"), LogOptions{SegmentMaxBytes: 2048, CompactLiveRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	objs := fillStore(t, l, 150)
	// Delete a few so the snapshot carries tombstones.
	deleted := map[Ref]bool{}
	for i := 0; i < 10; i++ {
		o := objs[i*7]
		if _, err := l.Delete(o.Key, o.Version); err != nil {
			t.Fatal(err)
		}
		deleted[Ref{Key: o.Key, Version: o.Version}] = true
	}
	snapDir := filepath.Join(dir, "snap")
	man, err := WriteSnapshot(l, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) == 0 {
		t.Fatal("snapshot recorded no segments")
	}
	if _, err := ReadManifest(snapDir); err != nil {
		t.Fatal(err)
	}
	live := l.Count()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for _, engine := range []string{"memory", "log"} {
		t.Run(engine, func(t *testing.T) {
			var st Store
			if engine == "memory" {
				st = NewMemory()
			} else {
				var err error
				st, err = OpenLog(t.TempDir(), LogOptions{})
				if err != nil {
					t.Fatal(err)
				}
			}
			defer st.Close()
			stats, err := Restore(snapDir, st)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if stats.TruncatedBytes != 0 || stats.TruncatedSegments != 0 {
				t.Fatalf("clean restore reported truncation: %+v", stats)
			}
			if st.Count() != live {
				t.Fatalf("restored %d objects, want %d", st.Count(), live)
			}
			for _, o := range objs {
				_, _, ok, err := st.Get(o.Key, o.Version)
				if err != nil {
					t.Fatal(err)
				}
				want := !deleted[Ref{Key: o.Key, Version: o.Version}]
				if ok != want {
					t.Fatalf("object %s@%d present=%v, want %v", o.Key, o.Version, ok, want)
				}
			}
		})
	}
}

func TestRestoreTruncatesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(filepath.Join(dir, "data"), LogOptions{CompactLiveRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, l, 100)
	snapDir := filepath.Join(dir, "snap")
	man, err := WriteSnapshot(l, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a byte mid-way through the segment file.
	path := filepath.Join(snapDir, SegmentFileName(man.Segments[0].ID))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st := NewMemory()
	defer st.Close()
	stats, err := Restore(snapDir, st)
	if err != nil {
		t.Fatalf("Restore after corruption: %v", err)
	}
	if stats.TruncatedSegments != 1 || stats.TruncatedBytes == 0 {
		t.Fatalf("want truncation reported, got %+v", stats)
	}
	if stats.Objects == 0 || st.Count() == 0 || st.Count() >= 100 {
		t.Fatalf("want a partial restore (prefix), got %d objects", st.Count())
	}
	// Restore must never fabricate data: everything restored verifies.
	if _, _, ok, _ := st.Get("key0000", 1); !ok {
		t.Fatal("first object missing from truncated restore")
	}
}

func TestRestoreMissingManifestFails(t *testing.T) {
	st := NewMemory()
	defer st.Close()
	if _, err := Restore(t.TempDir(), st); err == nil {
		t.Fatal("restore of a non-snapshot directory must fail")
	}
}
