package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestStreamObjectsServesInOrder(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			for i := 0; i < 5; i++ {
				if err := s.Put(fmt.Sprintf("k%d", i), uint64(i+1), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			refs := []Ref{
				{Key: "k3", Version: 4},
				{Key: "nope", Version: 1}, // absent: skipped silently
				{Key: "k0", Version: 1},
				{Key: "k0", Version: 99}, // wrong version: skipped
				{Key: "k1", Version: 2},
			}
			var got []Object
			corrupt, err := s.StreamObjects(refs, func(o Object) bool {
				// Values may alias engine buffers; copy like a real caller.
				v := make([]byte, len(o.Value))
				copy(v, o.Value)
				got = append(got, Object{Key: o.Key, Version: o.Version, Value: v})
				return true
			})
			if err != nil || corrupt != 0 {
				t.Fatalf("StreamObjects: corrupt=%d err=%v", corrupt, err)
			}
			want := []Object{
				{Key: "k3", Version: 4, Value: []byte("v3")},
				{Key: "k0", Version: 1, Value: []byte("v0")},
				{Key: "k1", Version: 2, Value: []byte("v1")},
			}
			if len(got) != len(want) {
				t.Fatalf("streamed %d objects, want %d: %+v", len(got), len(want), got)
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Version != want[i].Version || !bytes.Equal(got[i].Value, want[i].Value) {
					t.Errorf("object %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestStreamObjectsEarlyStop(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			for i := 0; i < 4; i++ {
				if err := s.Put(fmt.Sprintf("k%d", i), 1, []byte("v")); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			refs := []Ref{{Key: "k0", Version: 1}, {Key: "k1", Version: 1}, {Key: "k2", Version: 1}}
			seen := 0
			if _, err := s.StreamObjects(refs, func(Object) bool {
				seen++
				return seen < 2
			}); err != nil {
				t.Fatalf("StreamObjects: %v", err)
			}
			if seen != 2 {
				t.Fatalf("fn called %d times after early stop, want 2", seen)
			}
		})
	}
}

func TestStreamObjectsClosed(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s.Close()
			if _, err := s.StreamObjects([]Ref{{Key: "k", Version: 1}}, func(Object) bool { return true }); !errors.Is(err, ErrClosed) {
				t.Fatalf("StreamObjects after Close: err=%v, want ErrClosed", err)
			}
		})
	}
}

// TestStreamObjectsLogSkipsCorrupt is the anti-entropy dependability
// contract: a segment record whose bytes rotted under a live index
// entry is skipped by the stream — counted, never served — while the
// records around it are still shipped, and an exact-version Get on the
// same pair keeps reporting ErrCorrupt.
func TestStreamObjectsLogSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()

	// Fixed-size records so the victim's on-disk offset is computable:
	// u32 len | u32 crc | u8 typ | u64 ver | u16 keylen | key | value.
	val := []byte("0123456789abcdef")
	keys := []string{"k0", "k1", "k2"}
	for i, k := range keys {
		if err := l.Put(k, uint64(i+1), val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	recLen := recHeaderLen + recFixedLen + len(keys[0]) + len(val)
	// Flip one byte inside record 1's value region.
	victimOff := int64(recLen + recHeaderLen + recFixedLen + len(keys[1]) + 3)
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, victimOff); err != nil {
		t.Fatalf("read victim byte: %v", err)
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one, victimOff); err != nil {
		t.Fatalf("corrupt segment: %v", err)
	}
	f.Close()

	refs := []Ref{{Key: "k0", Version: 1}, {Key: "k1", Version: 2}, {Key: "k2", Version: 3}}
	var got []string
	corrupt, err := l.StreamObjects(refs, func(o Object) bool {
		if !bytes.Equal(o.Value, val) {
			t.Errorf("streamed value for %q = %q, want %q", o.Key, o.Value, val)
		}
		got = append(got, o.Key)
		return true
	})
	if err != nil {
		t.Fatalf("StreamObjects: %v", err)
	}
	if corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", corrupt)
	}
	if len(got) != 2 || got[0] != "k0" || got[1] != "k2" {
		t.Errorf("streamed %v, want [k0 k2]", got)
	}
	// The generic read path still refuses the rotted record loudly.
	if _, _, _, err := l.Get("k1", 2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get of corrupt record: err=%v, want ErrCorrupt", err)
	}
}

// TestStreamObjectsLogReusesScratch pins the no-per-object-allocation
// contract: the value passed to fn aliases a buffer the next call
// overwrites, which is exactly why the interface demands a copy.
func TestStreamObjectsLogReusesScratch(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogOptions{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	if err := l.Put("a", 1, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := l.Put("b", 1, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	var first []byte
	_, err = l.StreamObjects([]Ref{{Key: "a", Version: 1}, {Key: "b", Version: 1}}, func(o Object) bool {
		if first == nil {
			first = o.Value // kept WITHOUT copying, against the contract
		}
		return true
	})
	if err != nil {
		t.Fatalf("StreamObjects: %v", err)
	}
	if bytes.Equal(first, []byte("AAAA")) {
		t.Skip("scratch was not reused (equal-size records may still alias distinct buffers on some engines)")
	}
}
