package store

import (
	"encoding/base32"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Disk is the persistent engine: one file per (key, version), written
// atomically (temp file + rename) so a crash never leaves a torn
// object. An in-memory index of headers is rebuilt by scanning the
// directory on open, which is how a restarted DataFlasks node recovers
// the state it must serve to the soft-state layer (§III).
//
// File layout: <dir>/<base32(key)>@<version>.obj. Safe for concurrent
// use.
type Disk struct {
	mu     sync.RWMutex
	dir    string
	mem    *Memory // index of headers; values live on disk only
	fsync  bool
	closed bool

	// dirSyncs counts directory fsyncs; tests assert the rename is
	// followed by one so the new directory entry is durable.
	dirSyncs int
	// dirDirty is set when a directory fsync failed after a rename, so
	// a retried (idempotent) Put re-attempts the sync instead of
	// short-circuiting to success with the entry still undurable.
	dirDirty bool
}

var _ Store = (*Disk)(nil)

// keyEncoding is a padding-free, filesystem-safe encoding.
var keyEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// maxKeyLen bounds keys so encoded file names stay within common
// filesystem limits.
const maxKeyLen = 128

// DiskOptions tunes the disk engine.
type DiskOptions struct {
	// Fsync forces an fsync per write for durability over speed.
	Fsync bool
}

// OpenDisk opens (creating if needed) a disk store rooted at dir and
// rebuilds the header index from the files present.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	d := &Disk{dir: dir, mem: NewMemory(), fsync: opts.Fsync}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		key, version, ok := parseObjectName(e.Name())
		if !ok {
			continue // foreign file; leave it alone
		}
		// Index the header; the value stays on disk.
		if err := d.mem.Put(key, version, nil); err != nil {
			return nil, fmt.Errorf("store: index %s: %w", e.Name(), err)
		}
	}
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

func objectName(key string, version uint64) string {
	return keyEncoding.EncodeToString([]byte(key)) + "@" + strconv.FormatUint(version, 10) + ".obj"
}

func parseObjectName(name string) (key string, version uint64, ok bool) {
	if !strings.HasSuffix(name, ".obj") {
		return "", 0, false
	}
	base := strings.TrimSuffix(name, ".obj")
	at := strings.LastIndexByte(base, '@')
	if at < 0 {
		return "", 0, false
	}
	raw, err := keyEncoding.DecodeString(base[:at])
	if err != nil {
		return "", 0, false
	}
	v, err := strconv.ParseUint(base[at+1:], 10, 64)
	if err != nil || ReservedVersion(v) {
		// A reserved version can no longer be stored; a legacy file at
		// one is skipped as foreign rather than failing the open.
		return "", 0, false
	}
	return string(raw), v, true
}

// Put implements Store.
func (d *Disk) Put(key string, version uint64, value []byte) error {
	if ReservedVersion(version) {
		return ErrBadVersion
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), maxKeyLen)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.putLocked(key, version, value)
}

// PutBatch implements Store: the batch is validated up front and
// applied under one lock acquisition (still one file per object — the
// layout has no cheaper batch representation).
func (d *Disk) PutBatch(objs []Object) error {
	for _, o := range objs {
		if ReservedVersion(o.Version) {
			return ErrBadVersion
		}
		if len(o.Key) > maxKeyLen {
			return fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(o.Key), maxKeyLen)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for _, o := range objs {
		if err := d.putLocked(o.Key, o.Version, o.Value); err != nil {
			return err
		}
	}
	return nil
}

// putLocked stores one object. Caller holds mu and has validated the
// key and version.
func (d *Disk) putLocked(key string, version uint64, value []byte) error {
	if _, _, exists, _ := d.mem.Get(key, version); exists {
		// Idempotent re-put — but if an earlier directory sync failed,
		// the entry may not be durable yet; retry it before claiming
		// success.
		if d.fsync && d.dirDirty {
			return d.syncDir()
		}
		return nil
	}
	final := filepath.Join(d.dir, objectName(key, version))
	tmp, err := os.CreateTemp(d.dir, "tmp-*.partial")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(value); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write object: %w", err)
	}
	if d.fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return fmt.Errorf("store: sync object: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close object: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publish object: %w", err)
	}
	// Index first: the rename already published the object, so the
	// index must reflect it even if the directory sync below fails —
	// otherwise Get/ForEach disagree with what a reopen would recover.
	if err := d.mem.Put(key, version, nil); err != nil {
		return err
	}
	if d.fsync {
		// The rename made the object visible, but only an fsync of the
		// directory makes its entry durable: without it a crash can
		// lose an acknowledged object even though its data blocks were
		// synced.
		if err := d.syncDir(); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs the store directory so entry changes (rename, remove)
// survive a crash. Caller holds mu.
func (d *Disk) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		d.dirDirty = true
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		d.dirDirty = true
		return fmt.Errorf("store: sync dir: %w", err)
	}
	d.dirDirty = false
	d.dirSyncs++
	return nil
}

// Get implements Store.
func (d *Disk) Get(key string, version uint64) ([]byte, uint64, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, 0, false, ErrClosed
	}
	_, actual, ok, err := d.mem.Get(key, version)
	if err != nil || !ok {
		return nil, 0, false, err
	}
	// The disk engine is a deliberately serialized design: reads hold
	// the store lock across the file read so a concurrent Delete cannot
	// unlink between the index hit and the open.
	//flasks:lockhold-ok
	data, err := os.ReadFile(filepath.Join(d.dir, objectName(key, actual)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("store: read object: %w", err)
	}
	return data, actual, true, nil
}

// Versions implements Store.
func (d *Disk) Versions(key string) ([]uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	return d.mem.Versions(key)
}

// Delete implements Store. Version Latest resolves to the newest
// stored version, mirroring Get.
func (d *Disk) Delete(key string, version uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	_, actual, ok, _ := d.mem.Get(key, version)
	if !ok {
		return false, nil
	}
	// Unlink under the store lock: index and directory must agree.
	//flasks:lockhold-ok
	if err := os.Remove(filepath.Join(d.dir, objectName(key, actual))); err != nil && !os.IsNotExist(err) {
		return false, fmt.Errorf("store: delete object: %w", err)
	}
	if d.fsync {
		if err := d.syncDir(); err != nil {
			return false, err
		}
	}
	return d.mem.Delete(key, actual)
}

// DeleteBatch implements Store: every object file is unlinked under
// one lock acquisition and — with Fsync — one directory sync covers
// the whole batch.
func (d *Disk) DeleteBatch(items []Deletion) ([]bool, error) {
	existed := make([]bool, len(items))
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return existed, ErrClosed
	}
	removedAny := false
	for i, it := range items {
		_, actual, ok, _ := d.mem.Get(it.Key, it.Version)
		if !ok {
			continue
		}
		// Same serialized-engine contract as Delete.
		//flasks:lockhold-ok
		if err := os.Remove(filepath.Join(d.dir, objectName(it.Key, actual))); err != nil && !os.IsNotExist(err) {
			return existed, fmt.Errorf("store: delete object: %w", err)
		}
		if _, err := d.mem.Delete(it.Key, actual); err != nil {
			return existed, err
		}
		existed[i] = true
		removedAny = true
	}
	if d.fsync && removedAny {
		if err := d.syncDir(); err != nil {
			return existed, err
		}
	}
	return existed, nil
}

// StreamObjects implements Store. The layout has no checksums, so the
// only verifiable corruption is a file the index knows about that can
// no longer be read — counted and skipped like a failed record check.
func (d *Disk) StreamObjects(refs []Ref, fn func(o Object) bool) (int, error) {
	corrupt := 0
	for _, r := range refs {
		d.mu.RLock()
		if d.closed {
			d.mu.RUnlock()
			return corrupt, ErrClosed
		}
		_, _, ok, _ := d.mem.Get(r.Key, r.Version)
		var data []byte
		var err error
		if ok {
			data, err = os.ReadFile(filepath.Join(d.dir, objectName(r.Key, r.Version)))
		}
		d.mu.RUnlock()
		if !ok {
			continue
		}
		if err != nil {
			// Index and read happen under one lock hold, so even an
			// ENOENT is not a delete race: it is an object the index
			// advertises but can no longer serve. Count it so repair
			// observability (OnCorrupt) surfaces the loss.
			corrupt++
			continue
		}
		if !fn(Object{Key: r.Key, Version: r.Version, Value: data}) {
			return corrupt, nil
		}
	}
	return corrupt, nil
}

// ForEach implements Store.
func (d *Disk) ForEach(fn func(key string, version uint64) bool) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return d.mem.ForEach(fn)
}

// Count implements Store.
func (d *Disk) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0
	}
	return d.mem.Count()
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return d.mem.Close()
}
