package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	// 90 fast samples, 10 slow ones: p50 must bound ~1ms, p99 ~100ms.
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(90 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 800*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %s, want a 2x bound of 800µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 200*time.Millisecond {
		t.Fatalf("p99 = %s, want a 2x bound of 90ms", p99)
	}
	if h.Quantile(0) == 0 || h.Quantile(1) < p99 {
		t.Fatalf("quantile edges broken: q0=%s q1=%s", h.Quantile(0), h.Quantile(1))
	}
	mean := h.Mean()
	if mean < 5*time.Millisecond || mean > 15*time.Millisecond {
		t.Fatalf("mean = %s, want ~9.7ms", mean)
	}
}

func TestLatencyHistogramExtremes(t *testing.T) {
	var h LatencyHistogram
	h.Observe(-time.Second) // clamps to zero
	h.Observe(0)
	h.Observe(365 * 24 * time.Hour) // beyond the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1.0) == 0 {
		t.Fatal("top quantile lost the overflow sample")
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestCommandStats(t *testing.T) {
	s := NewCommandStats()
	s.Stat("get").Observe(time.Millisecond, false)
	s.Stat("get").Observe(2*time.Millisecond, true)
	s.Stat("set").Observe(5*time.Millisecond, false)

	if got := s.Stat("get").Calls.Load(); got != 2 {
		t.Fatalf("get calls = %d", got)
	}
	if got := s.Stat("get").Errors.Load(); got != 1 {
		t.Fatalf("get errors = %d", got)
	}
	calls, errs := s.Totals()
	if calls != 3 || errs != 1 {
		t.Fatalf("totals = %d/%d", calls, errs)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "get" || names[1] != "set" {
		t.Fatalf("names = %v", names)
	}
	if q := s.Quantile(1.0); q < 5*time.Millisecond || q > 10*time.Millisecond {
		t.Fatalf("merged q1.0 = %s, want a 2x bound of 5ms", q)
	}
}

func TestCommandStatsConcurrent(t *testing.T) {
	s := NewCommandStats()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"get", "set", "del"}[w%3]
			for i := 0; i < 500; i++ {
				s.Stat(name).Observe(time.Microsecond, false)
			}
		}(w)
	}
	wg.Wait()
	calls, _ := s.Totals()
	if calls != 8*500 {
		t.Fatalf("calls = %d, want %d", calls, 8*500)
	}
}
