package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	// 90 fast samples, 10 slow ones: p50 must bound ~1ms, p99 ~100ms.
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(90 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 800*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %s, want a 2x bound of 800µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 200*time.Millisecond {
		t.Fatalf("p99 = %s, want a 2x bound of 90ms", p99)
	}
	if h.Quantile(0) == 0 || h.Quantile(1) < p99 {
		t.Fatalf("quantile edges broken: q0=%s q1=%s", h.Quantile(0), h.Quantile(1))
	}
	mean := h.Mean()
	if mean < 5*time.Millisecond || mean > 15*time.Millisecond {
		t.Fatalf("mean = %s, want ~9.7ms", mean)
	}
}

func TestLatencyHistogramExtremes(t *testing.T) {
	var h LatencyHistogram
	h.Observe(-time.Second) // clamps to zero
	h.Observe(0)
	h.Observe(365 * 24 * time.Hour) // beyond the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1.0) == 0 {
		t.Fatal("top quantile lost the overflow sample")
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestLatencyHistogramBuckets(t *testing.T) {
	var h LatencyHistogram
	h.Observe(0)                     // bucket 0
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // bucket 1
	h.Observe(3 * time.Microsecond)  // bucket 2
	h.Observe(365 * 24 * time.Hour)  // clamped into the last bucket

	b := h.Buckets()
	if b[0] != 2 || b[1] != 1 || b[2] != 1 || b[NumLatencyBuckets-1] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	var total uint64
	for _, c := range b {
		total += c
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != count %d", total, h.Count())
	}
	if h.SumMicroseconds() != 1+3+uint64(365*24*time.Hour/time.Microsecond) {
		t.Fatalf("sum = %dµs", h.SumMicroseconds())
	}
	if BucketBound(0) != time.Microsecond || BucketBound(3) != 8*time.Microsecond {
		t.Fatalf("bounds: %s %s", BucketBound(0), BucketBound(3))
	}
}

// TestLatencyHistogramBucketsConcurrent races Buckets snapshots
// against a storm of Observe calls; under -race this proves the
// accessor is safe for a scraper thread, and the final snapshot must
// account for every sample.
func TestLatencyHistogramBucketsConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := h.Buckets()
				var total uint64
				for _, c := range b {
					total += c
				}
				if total > workers*per {
					t.Errorf("snapshot total %d exceeds samples", total)
					return
				}
				_ = h.SumMicroseconds()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	b := h.Buckets()
	var total uint64
	for _, c := range b {
		total += c
	}
	if total != workers*per {
		t.Fatalf("final bucket total = %d, want %d", total, workers*per)
	}
}

func TestCommandStats(t *testing.T) {
	s := NewCommandStats()
	s.Stat("get").Observe(time.Millisecond, false)
	s.Stat("get").Observe(2*time.Millisecond, true)
	s.Stat("set").Observe(5*time.Millisecond, false)

	if got := s.Stat("get").Calls.Load(); got != 2 {
		t.Fatalf("get calls = %d", got)
	}
	if got := s.Stat("get").Errors.Load(); got != 1 {
		t.Fatalf("get errors = %d", got)
	}
	calls, errs := s.Totals()
	if calls != 3 || errs != 1 {
		t.Fatalf("totals = %d/%d", calls, errs)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "get" || names[1] != "set" {
		t.Fatalf("names = %v", names)
	}
	if q := s.Quantile(1.0); q < 5*time.Millisecond || q > 10*time.Millisecond {
		t.Fatalf("merged q1.0 = %s, want a 2x bound of 5ms", q)
	}
}

func TestCommandStatsConcurrent(t *testing.T) {
	s := NewCommandStats()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"get", "set", "del"}[w%3]
			for i := 0; i < 500; i++ {
				s.Stat(name).Observe(time.Microsecond, false)
			}
		}(w)
	}
	wg.Wait()
	calls, _ := s.Totals()
	if calls != 8*500 {
		t.Fatalf("calls = %d, want %d", calls, 8*500)
	}
}
