// Package metrics provides the observability primitives shared by the
// DataFlasks evaluation harness and the live runtime.
//
// Two concurrency regimes coexist deliberately. NodeMetrics is plain
// uint64 counters owned by one node's event loop — protocol code is
// single-threaded per node, so counting costs one increment, and
// harnesses aggregate across nodes after the run (Summarize) or via
// Snapshot. SharedCounter, LatencyHistogram, CommandStat and
// CommandStats are atomic, for paths crossed by many goroutines: the
// transport's producer-side mailbox-drop counting and the RESP
// gateway's per-command call/error/latency accounting.
//
// The Counter constants name everything the node runtime measures —
// per-protocol message counts, served operations, and the anti-entropy
// bandwidth split (digest bytes vs pushed value bytes) the repair
// experiments assert on. Summary/SummarizeValues compute the
// distribution statistics the paper's figures report (mean, min/max,
// percentiles), Histogram renders small-value distributions (in-
// degree), and Series renders (x, y) tables in gnuplot form.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter names used by the node runtime. Keeping them as typed constants
// avoids typo'd strings scattered through protocol code.
type Counter int

const (
	// MsgSent counts every protocol message a node handed to the transport.
	MsgSent Counter = iota
	// MsgRecv counts every protocol message delivered to a node.
	MsgRecv
	// MsgDropped counts sends that failed (dead peer, full mailbox).
	MsgDropped
	// PSSSent counts peer-sampling shuffle messages sent.
	PSSSent
	// SliceSent counts slicing protocol messages sent.
	SliceSent
	// DiscoverySent counts slice-mate discovery messages sent.
	DiscoverySent
	// DataSent counts put/get/reply dissemination messages sent.
	DataSent
	// AntiEntropySent counts anti-entropy digest/pull messages sent.
	AntiEntropySent
	// AntiEntropyDigestBytes sums the approximate wire bytes of repair
	// difference-discovery traffic sent (full header lists, Bloom
	// summaries, pull lists) — the cost of finding out WHAT to repair.
	AntiEntropyDigestBytes
	// AntiEntropyPushBytes sums the value bytes shipped in repair
	// pushes — the cost of the repairs themselves.
	AntiEntropyPushBytes
	// AntiEntropyPushedObjects counts objects shipped in repair pushes.
	AntiEntropyPushedObjects
	// AntiEntropyCorruptSkipped counts locally corrupt records that
	// repair serving verified, skipped and did NOT propagate.
	AntiEntropyCorruptSkipped
	// AggregateSent counts push-sum aggregation messages sent.
	AggregateSent
	// StoredObjects counts objects currently held by the local store.
	StoredObjects
	// PutsServed counts objects this node stored locally (batch puts
	// count every object).
	PutsServed
	// GetsServed counts get requests this node answered from its store.
	GetsServed
	// DeletesServed counts delete requests this node applied locally.
	DeletesServed
	// CoalescedPuts counts intra-slice relay puts that landed via the
	// event loop's accumulation window as batch appends instead of
	// individual store writes.
	CoalescedPuts
	// RequestsRelayed counts requests forwarded during routing.
	RequestsRelayed
	// DuplicatesSuppressed counts requests dropped by the dedup cache.
	DuplicatesSuppressed
	// WireSendErrors counts fabric sends that returned an error from any
	// protocol or routing path — the errors that used to be silently
	// discarded with `_ =`. MsgDropped counts the subset observed by the
	// node's accounting sender; WireSendErrors covers every send site.
	WireSendErrors
	// BootstrapSent counts segment-bootstrap protocol messages sent
	// (manifest probes and replies, fetches, chunks, dones).
	BootstrapSent
	// BootstrapSegments counts whole segments a joiner streamed down and
	// verified end to end against the peer's manifest.
	BootstrapSegments
	// BootstrapBytes sums the verified segment bytes a joiner applied.
	BootstrapBytes
	// BootstrapChunksRejected counts received bootstrap chunks (or
	// completed segments) that failed CRC or manifest verification; each
	// rejection abandons the serving peer and re-fetches elsewhere.
	BootstrapChunksRejected
	// BootstrapFallbackObjects counts objects that arrived via
	// object-wise anti-entropy pushes AFTER the joiner gave up on
	// segment streaming (no peer answered the manifest probe) — the
	// mixed-cluster fallback path doing the work segment streaming
	// could not.
	BootstrapFallbackObjects

	numCounters
)

var counterNames = [...]string{
	MsgSent:                   "msg_sent",
	MsgRecv:                   "msg_recv",
	MsgDropped:                "msg_dropped",
	PSSSent:                   "pss_sent",
	SliceSent:                 "slice_sent",
	DiscoverySent:             "discovery_sent",
	DataSent:                  "data_sent",
	AntiEntropySent:           "antientropy_sent",
	AntiEntropyDigestBytes:    "antientropy_digest_bytes",
	AntiEntropyPushBytes:      "antientropy_push_bytes",
	AntiEntropyPushedObjects:  "antientropy_pushed_objects",
	AntiEntropyCorruptSkipped: "antientropy_corrupt_skipped",
	AggregateSent:             "aggregate_sent",
	StoredObjects:             "stored_objects",
	PutsServed:                "puts_served",
	GetsServed:                "gets_served",
	DeletesServed:             "deletes_served",
	CoalescedPuts:             "coalesced_puts",
	RequestsRelayed:           "requests_relayed",
	DuplicatesSuppressed:      "duplicates_suppressed",
	WireSendErrors:            "wire_send_errors",
	BootstrapSent:             "bootstrap_sent",
	BootstrapSegments:         "bootstrap_segments",
	BootstrapBytes:            "bootstrap_bytes",
	BootstrapChunksRejected:   "bootstrap_chunks_rejected",
	BootstrapFallbackObjects:  "bootstrap_fallback_objects",
}

// String returns the snake_case name of the counter.
func (c Counter) String() string {
	if c < 0 || int(c) >= len(counterNames) {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// NumCounters is the number of defined counters.
const NumCounters = int(numCounters)

// NodeMetrics holds one node's counters. The zero value is ready to use.
// It is not safe for concurrent use; each node mutates only its own
// metrics from its own event loop, and aggregation happens after the
// run (simulation) or via Snapshot (live runtime).
type NodeMetrics struct {
	counts [numCounters]uint64
}

// Inc adds one to counter c.
func (m *NodeMetrics) Inc(c Counter) { m.counts[c]++ }

// Add adds delta to counter c.
func (m *NodeMetrics) Add(c Counter, delta uint64) { m.counts[c] += delta }

// Set overwrites counter c (used for gauges such as StoredObjects).
func (m *NodeMetrics) Set(c Counter, v uint64) { m.counts[c] = v }

// Get returns the current value of counter c.
func (m *NodeMetrics) Get(c Counter) uint64 { return m.counts[c] }

// Snapshot copies the current counter values.
func (m *NodeMetrics) Snapshot() [NumCounters]uint64 {
	var out [NumCounters]uint64
	copy(out[:], m.counts[:])
	return out
}

// Reset zeroes all counters.
func (m *NodeMetrics) Reset() {
	for i := range m.counts {
		m.counts[i] = 0
	}
}

// ShardCounters is one data-plane shard's counter array: the same
// Counter index space as NodeMetrics, but atomic — a shard goroutine
// counts concurrently with the control loop and with /metrics scrapes.
// The array is padded on both sides to a cache-line multiple so two
// shards allocated back to back never false-share a line; within a
// shard the counters are hot only on that shard's core, so intra-array
// adjacency is free. The zero value is ready to use.
type ShardCounters struct {
	_      [64]byte
	counts [numCounters]atomic.Uint64
	_      [64]byte
}

// Inc adds one to counter c.
func (m *ShardCounters) Inc(c Counter) { m.counts[c].Add(1) }

// Add adds delta to counter c.
func (m *ShardCounters) Add(c Counter, delta uint64) { m.counts[c].Add(delta) }

// Get returns the current value of counter c.
func (m *ShardCounters) Get(c Counter) uint64 { return m.counts[c].Load() }

// AddTo accumulates this shard's counters into dst (the merge step of
// a whole-node metrics read).
func (m *ShardCounters) AddTo(dst *NodeMetrics) {
	for i := range m.counts {
		dst.counts[i] += m.counts[i].Load()
	}
}

// Reset zeroes all counters. Concurrent Inc/Add calls can survive a
// reset; harnesses reset only between quiesced phases.
func (m *ShardCounters) Reset() {
	for i := range m.counts {
		m.counts[i].Store(0)
	}
}

// SharedCounter is an atomic counter for paths crossed by multiple
// goroutines — unlike NodeMetrics, which is owned by one event loop.
// The canonical use is mailbox overflow: transport goroutines drop
// messages for a mailbox the event loop is too slow to drain, and the
// drop must be counted from the producer side. The zero value is ready
// to use.
type SharedCounter struct {
	v atomic.Uint64
}

// Inc adds one.
func (s *SharedCounter) Inc() { s.v.Add(1) }

// Add adds delta.
func (s *SharedCounter) Add(delta uint64) { s.v.Add(delta) }

// Load returns the current value.
func (s *SharedCounter) Load() uint64 { return s.v.Load() }

// WireStats counts wire-level codec and datagram activity. All fields
// are atomic SharedCounters: encoding happens on per-connection and
// event-loop goroutines, and the status reporter reads concurrently.
// One instance is shared by a node's TCP and UDP transports so the
// counters describe the node, not one socket.
type WireStats struct {
	// EncodeBytes sums frame bytes produced by the wire codec
	// (wire_encode_bytes): every TCP frame and UDP datagram payload.
	EncodeBytes SharedCounter
	// CodecFallbacks counts connections that negotiated down to the
	// gob compat codec — or redialed raw-gob after a peer rejected the
	// binary hello (codec_fallbacks). A nonzero value in a uniformly
	// configured cluster means a rolling upgrade is in progress.
	CodecFallbacks SharedCounter
	// UDPSent counts datagrams handed to the UDP socket
	// (udp_datagrams_sent).
	UDPSent SharedCounter
	// UDPDropped counts datagrams lost before the socket — no learned
	// peer address, a closed transport, a write error — plus inbound
	// datagrams that failed to decode (udp_datagrams_dropped).
	UDPDropped SharedCounter
	// UDPOversize counts control messages whose frame exceeded the
	// datagram cap and were bounced to the stream path
	// (udp_datagrams_oversize).
	UDPOversize SharedCounter
}

// WireSnapshot is a point-in-time copy of WireStats, for status lines
// and tests.
type WireSnapshot struct {
	EncodeBytes    uint64
	CodecFallbacks uint64
	UDPSent        uint64
	UDPDropped     uint64
	UDPOversize    uint64
}

// Snapshot copies the counters.
func (w *WireStats) Snapshot() WireSnapshot {
	return WireSnapshot{
		EncodeBytes:    w.EncodeBytes.Load(),
		CodecFallbacks: w.CodecFallbacks.Load(),
		UDPSent:        w.UDPSent.Load(),
		UDPDropped:     w.UDPDropped.Load(),
		UDPOversize:    w.UDPOversize.Load(),
	}
}

// latencyBuckets is the bucket count of LatencyHistogram: bucket 0 is
// sub-microsecond, bucket i ≥ 1 covers [2^(i-1), 2^i) microseconds, so
// 40 buckets span sub-µs to ~6 days — every latency a gateway will
// ever observe.
const latencyBuckets = 40

// NumLatencyBuckets exports the LatencyHistogram bucket count for
// renderers (the Prometheus exposition writer) that need to size
// snapshots and compute bucket bounds.
const NumLatencyBuckets = latencyBuckets

// LatencyHistogram is a lock-free histogram of durations in
// power-of-two microsecond buckets, safe for concurrent Observe from
// many goroutines (RESP connections record completions concurrently).
// The zero value is ready to use. Quantiles are upper bounds of the
// bucket the quantile falls in, so they are exact to within 2×.
type LatencyHistogram struct {
	count   atomic.Uint64
	sumUsec atomic.Uint64
	buckets [latencyBuckets]atomic.Uint64
}

// Observe records one duration (negative durations count as zero).
func (h *LatencyHistogram) Observe(d time.Duration) {
	us := uint64(0)
	if d > 0 {
		us = uint64(d / time.Microsecond)
	}
	idx := bits.Len64(us) // 0 for us==0, else floor(log2(us))+1
	if idx >= latencyBuckets {
		idx = latencyBuckets - 1
	}
	h.count.Add(1)
	h.sumUsec.Add(us)
	h.buckets[idx].Add(1)
}

// Count returns how many durations were observed.
func (h *LatencyHistogram) Count() uint64 { return h.count.Load() }

// SumMicroseconds returns the sum of observed durations in
// microseconds (the exposition writer's `_sum`).
func (h *LatencyHistogram) SumMicroseconds() uint64 { return h.sumUsec.Load() }

// Buckets copies the per-bucket counts. The copy is not atomic across
// buckets — concurrent Observe calls can land mid-read — so readers
// must derive totals from the returned array rather than pairing it
// with a separate Count call.
func (h *LatencyHistogram) Buckets() [NumLatencyBuckets]uint64 {
	var out [NumLatencyBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketBound returns bucket i's exclusive upper bound: bucket 0 holds
// sub-microsecond observations (bound 1 µs = 2^0 µs) and bucket i ≥ 1
// covers [2^(i-1), 2^i) µs (bound 2^i µs). The last bucket also
// absorbs every larger observation, so its bound is only nominal —
// exposition renders it as +Inf.
func BucketBound(i int) time.Duration {
	if i < 0 || i >= latencyBuckets {
		panic("metrics: bucket index out of range")
	}
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Mean returns the mean observed duration (0 when empty).
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUsec.Load()/n) * time.Microsecond
}

// Quantile returns an upper bound of the q-quantile (q in [0, 1]) of
// the observed durations, 0 when empty. The snapshot is not atomic
// across buckets; concurrent observers can skew a quantile by at most
// the few samples that land mid-read.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	var counts [latencyBuckets]uint64
	total := uint64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	seen := uint64(0)
	for i, c := range counts {
		seen += c
		if seen >= rank {
			// Bucket i holds values < 2^i µs, so 2^i µs is an upper
			// bound (bucket 0 is sub-µs: report 1 µs).
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(latencyBuckets-1)) * time.Microsecond
}

// String renders "n=<count> mean=<d> p50=<d> p99=<d>".
func (h *LatencyHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}

// CommandStat accumulates one named command's call/error counters and
// latency distribution. All fields are safe for concurrent use.
type CommandStat struct {
	Calls   SharedCounter
	Errors  SharedCounter
	Latency LatencyHistogram
}

// Observe records one completed call.
func (s *CommandStat) Observe(d time.Duration, isErr bool) {
	s.Calls.Inc()
	if isErr {
		s.Errors.Inc()
	}
	s.Latency.Observe(d)
}

// CommandStats is a registry of per-command statistics keyed by
// command name (the RESP gateway's per-command counters + latency
// histograms). Safe for concurrent use; Stat lazily creates entries.
type CommandStats struct {
	mu   sync.RWMutex
	cmds map[string]*CommandStat
}

// NewCommandStats creates an empty registry.
func NewCommandStats() *CommandStats {
	return &CommandStats{cmds: make(map[string]*CommandStat)}
}

// Stat returns the named command's accumulator, creating it on first
// use.
func (s *CommandStats) Stat(name string) *CommandStat {
	s.mu.RLock()
	st, ok := s.cmds[name]
	s.mu.RUnlock()
	if ok {
		return st
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok = s.cmds[name]; ok {
		return st
	}
	st = &CommandStat{}
	s.cmds[name] = st
	return st
}

// Names returns the registered command names in sorted order.
func (s *CommandStats) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.cmds))
	for name := range s.cmds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Totals returns the summed call and error counts across all commands.
func (s *CommandStats) Totals() (calls, errs uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, st := range s.cmds {
		calls += st.Calls.Load()
		errs += st.Errors.Load()
	}
	return calls, errs
}

// Quantile returns an upper bound of the q-quantile across every
// command's observations (0 when nothing was observed). It merges the
// per-command bucket counts, so mixed workloads weight by call volume.
func (s *CommandStats) Quantile(q float64) time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var merged LatencyHistogram
	for _, st := range s.cmds {
		merged.count.Add(st.Latency.count.Load())
		for i := range st.Latency.buckets {
			merged.buckets[i].Add(st.Latency.buckets[i].Load())
		}
	}
	return merged.Quantile(q)
}

// Summary aggregates one counter across a population of nodes.
type Summary struct {
	N      int
	Total  uint64
	Mean   float64
	Min    uint64
	Max    uint64
	P50    uint64
	P95    uint64
	P99    uint64
	Stddev float64
}

// Summarize computes distribution statistics for counter c across nodes.
func Summarize(nodes []*NodeMetrics, c Counter) Summary {
	if len(nodes) == 0 {
		return Summary{}
	}
	vals := make([]uint64, 0, len(nodes))
	for _, n := range nodes {
		vals = append(vals, n.Get(c))
	}
	return SummarizeValues(vals)
}

// SummarizeValues computes distribution statistics for raw samples.
func SummarizeValues(vals []uint64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := make([]uint64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var total uint64
	for _, v := range sorted {
		total += v
	}
	mean := float64(total) / float64(len(sorted))
	var ss float64
	for _, v := range sorted {
		d := float64(v) - mean
		ss += d * d
	}
	return Summary{
		N:      len(sorted),
		Total:  total,
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentile(sorted, 0.50),
		P95:    percentile(sorted, 0.95),
		P99:    percentile(sorted, 0.99),
		Stddev: math.Sqrt(ss / float64(len(sorted))),
	}
}

// percentile returns the value at quantile q of an ascending-sorted slice
// using the nearest-rank method.
func percentile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Histogram is a fixed-bucket histogram for small non-negative values
// (for example per-node in-degree). The zero value is unusable; create
// with NewHistogram.
type Histogram struct {
	buckets []uint64
	width   uint64
	over    uint64
	count   uint64
	sum     uint64
}

// NewHistogram creates a histogram with n buckets of the given width.
// Values >= n*width are counted in an overflow bucket.
func NewHistogram(n int, width uint64) *Histogram {
	if n <= 0 || width == 0 {
		panic("metrics: histogram needs n > 0 and width > 0")
	}
	return &Histogram{buckets: make([]uint64, n), width: width}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	idx := v / h.width
	if int(idx) >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[idx]++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of observed samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Overflow returns the count of samples beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.over }

// String renders a compact ASCII view, one line per non-empty bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%4d,%4d) %6d %s\n",
			uint64(i)*h.width, uint64(i+1)*h.width, c, bar(c, h.count))
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "[%4d,  +∞) %6d %s\n",
			uint64(len(h.buckets))*h.width, h.over, bar(h.over, h.count))
	}
	return b.String()
}

func bar(c, total uint64) string {
	if total == 0 {
		return ""
	}
	n := int(float64(c) / float64(total) * 40)
	return strings.Repeat("#", n)
}

// Series accumulates (x, y) points for a figure and renders them as the
// rows the paper's plots report.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders aligned "x y" rows with a header, mirroring gnuplot input.
func (s *Series) Table(xLabel, yLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# %-12s %s\n", s.Name, xLabel, yLabel)
	for i := range s.X {
		fmt.Fprintf(&b, "%-14.6g %.6g\n", s.X[i], s.Y[i])
	}
	return b.String()
}
