package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNodeMetricsCounters(t *testing.T) {
	var m NodeMetrics
	m.Inc(MsgSent)
	m.Inc(MsgSent)
	m.Add(MsgRecv, 5)
	m.Set(StoredObjects, 42)
	if got := m.Get(MsgSent); got != 2 {
		t.Errorf("MsgSent = %d, want 2", got)
	}
	if got := m.Get(MsgRecv); got != 5 {
		t.Errorf("MsgRecv = %d, want 5", got)
	}
	if got := m.Get(StoredObjects); got != 42 {
		t.Errorf("StoredObjects = %d, want 42", got)
	}
	snap := m.Snapshot()
	if snap[int(MsgSent)] != 2 {
		t.Errorf("snapshot MsgSent = %d, want 2", snap[int(MsgSent)])
	}
	m.Reset()
	if m.Get(MsgSent) != 0 || m.Get(StoredObjects) != 0 {
		t.Error("Reset left counters non-zero")
	}
	if snap[int(MsgSent)] != 2 {
		t.Error("Reset mutated a prior snapshot")
	}
}

func TestCounterNames(t *testing.T) {
	seen := make(map[string]bool)
	for c := Counter(0); int(c) < NumCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Errorf("counter %d has no name", int(c))
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if got := Counter(999).String(); got != "counter(999)" {
		t.Errorf("out-of-range name = %q", got)
	}
}

func TestSummarizeValues(t *testing.T) {
	s := SummarizeValues([]uint64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Total != 15 || s.Mean != 3 {
		t.Errorf("basic stats: %+v", s)
	}
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("order stats: %+v", s)
	}
	if s.Stddev < 1.41 || s.Stddev > 1.42 {
		t.Errorf("stddev = %v, want ~1.414", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := SummarizeValues(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s := Summarize(nil, MsgSent); s.N != 0 {
		t.Errorf("empty node summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []uint64{3, 1, 2}
	SummarizeValues(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(i + 1) // 1..100
	}
	s := SummarizeValues(vals)
	if s.P50 != 50 {
		t.Errorf("P50 = %d, want 50", s.P50)
	}
	if s.P95 != 95 {
		t.Errorf("P95 = %d, want 95", s.P95)
	}
	if s.P99 != 99 {
		t.Errorf("P99 = %d, want 99", s.P99)
	}
}

func TestPercentileSingleValue(t *testing.T) {
	s := SummarizeValues([]uint64{7})
	if s.P50 != 7 || s.P95 != 7 || s.P99 != 7 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single-value summary = %+v", s)
	}
}

func TestSummaryPropertyBounds(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = uint64(v)
		}
		s := SummarizeValues(vals)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []uint64{0, 5, 9, 10, 25, 39, 40, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if h.Bucket(0) != 3 { // 0, 5, 9
		t.Errorf("bucket 0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 10
		t.Errorf("bucket 1 = %d, want 1", h.Bucket(1))
	}
	if h.Overflow() != 2 { // 40, 1000
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.Mean() != (0+5+9+10+25+39+40+1000)/8.0 {
		t.Errorf("mean = %v", h.Mean())
	}
	if !strings.Contains(h.String(), "#") {
		t.Errorf("String() has no bars:\n%s", h.String())
	}
}

func TestHistogramBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 10)
}

func TestSeriesTable(t *testing.T) {
	var s Series
	s.Name = "fig"
	s.Append(500, 100.5)
	s.Append(1000, 101)
	out := s.Table("nodes", "msgs")
	if !strings.Contains(out, "# fig") || !strings.Contains(out, "500") || !strings.Contains(out, "101") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // 2 header + 2 data
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}
