package core

import (
	"context"
	"fmt"
	"testing"

	"dataflasks/internal/antientropy"
	"dataflasks/internal/gossip"
	"dataflasks/internal/metrics"
	"dataflasks/internal/obs"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// TestStoredObjectsGaugeInitializedFromStore pins the -restore
// regression: StartNode replays snapshots into the store BEFORE the
// core exists, so the gauge must be seeded from the store at
// construction — not stay zero until the first tick.
func TestStoredObjectsGaugeInitializedFromStore(t *testing.T) {
	st := store.NewMemory()
	for _, k := range []string{"a", "b", "c"} {
		if err := st.Put(k, 1, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cap := &capture{}
	n := NewNode(9, Config{
		Slices: 4, Slicer: SlicerStatic, SystemSize: 100,
		AntiEntropyEvery: -1, Seed: 1,
	}, st, cap.sender(9))
	if got := n.Metrics().Get(metrics.StoredObjects); got != 3 {
		t.Fatalf("stored_objects gauge = %d before any tick, want 3 (restored objects invisible)", got)
	}
}

// keysForSlice finds n distinct keys owned by the wanted slice.
func keysForSlice(t *testing.T, want int32, k, n int) []string {
	t.Helper()
	var keys []string
	for i := 0; i < 100000 && len(keys) < n; i++ {
		key := fmt.Sprintf("obskey%06d", i)
		if slicing.KeySlice(key, k) == want {
			keys = append(keys, key)
		}
	}
	if len(keys) < n {
		t.Fatal("not enough keys found")
	}
	return keys
}

// TestStoredObjectsGaugeAfterRepairPush pins the other staleness path:
// anti-entropy pushes ingest objects between ticks, and the gauge must
// follow immediately rather than waiting for the next round.
func TestStoredObjectsGaugeAfterRepairPush(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	cap := &capture{}
	n := NewNode(id, Config{
		Slices: k, Slicer: SlicerStatic, SystemSize: 100,
		AntiEntropyEvery: 10, Seed: 1,
	}, store.NewMemory(), cap.sender(id))

	keys := keysForSlice(t, 2, k, 2)
	key1, key2 := keys[0], keys[1]
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &antientropy.Push{
		Objects: []store.Object{
			{Key: key1, Version: 1, Value: []byte("v1")},
			{Key: key2, Version: 1, Value: []byte("v2")},
		},
	}})
	if got := n.Metrics().Get(metrics.StoredObjects); got != uint64(n.Store().Count()) || got == 0 {
		t.Fatalf("stored_objects gauge = %d after repair push, store holds %d", got, n.Store().Count())
	}
}

// TestTracedPutJournalsLifecycle: a traced put must land in the node's
// /trace ring with its trace id and key; an untraced one must not.
func TestTracedPutJournalsLifecycle(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	ring := obs.NewRing(64)
	cap := &capture{}
	n := NewNode(id, Config{
		Slices: k, Slicer: SlicerStatic, SystemSize: 100,
		AntiEntropyEvery: -1, Seed: 1, Trace: ring,
	}, store.NewMemory(), cap.sender(id))
	key := keyForSlice(t, 2, k)

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Key: key, Version: 1,
		Value: []byte("v"), Origin: 0xC0000001, TTL: TTLUnset,
	}})
	if got := len(ring.Snapshot()); got != 0 {
		t.Fatalf("untraced put journaled %d events", got)
	}

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(0xC0000001, 2), Key: key, Version: 2,
		Value: []byte("v2"), Origin: 0xC0000001, TTL: TTLUnset, TraceID: 1234,
	}})
	var apply *obs.Event
	for _, ev := range ring.Snapshot() {
		if ev.Kind == obs.TracePutApply && ev.TraceID == 1234 {
			apply = &ev
			break
		}
	}
	if apply == nil {
		t.Fatalf("traced put produced no put_apply event; ring: %+v", ring.Snapshot())
	}
	if apply.Key != key || apply.Bytes != 2 {
		t.Fatalf("put_apply event mangled: %+v", *apply)
	}
}

// TestTickObservesDuration: every Tick lands one observation in the
// per-tick histogram the /metrics plane exports.
func TestTickObservesDuration(t *testing.T) {
	n, _ := staticNode(t, 9, 4)
	if n.TickDurations().Count() != 0 {
		t.Fatal("histogram dirty before first tick")
	}
	n.Tick(context.Background())
	n.Tick(context.Background())
	if got := n.TickDurations().Count(); got != 2 {
		t.Fatalf("tick histogram count = %d, want 2", got)
	}
}

// TestTraceOpDisabledAllocs pins the acceptance requirement on the
// event loop itself: with tracing off (nil ring) the per-request
// journal hook must not allocate.
func TestTraceOpDisabledAllocs(t *testing.T) {
	n, _ := staticNode(t, 9, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		n.traceOp(obs.TracePutApply, 7, "some-key", 128, 1)
	})
	if allocs != 0 {
		t.Fatalf("traceOp allocates %.1f times per call with tracing disabled, want 0", allocs)
	}
}

func BenchmarkTraceOpDisabled(b *testing.B) {
	cap := &capture{}
	n := NewNode(9, Config{
		Slices: 4, Slicer: SlicerStatic, SystemSize: 100,
		AntiEntropyEvery: -1, Seed: 1,
	}, store.NewMemory(), cap.sender(9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.traceOp(obs.TracePutApply, 7, "some-key", 128, 1)
	}
}
