// Data-plane sharding: the node's put/get/delete path partitioned by
// key hash into independent shard states.
//
// A dataShard owns everything the data handlers mutate — the dedup
// cache, the coalescing window, the relay RNG and the counters — so a
// shard can run on its own goroutine without touching another shard's
// state. The epidemic control plane (PSS, slicing, aggregation,
// anti-entropy, bootstrap) stays on the node's single-threaded loop;
// shards see its routing decisions through an immutable routeView
// snapshot the control loop republishes after every tick and control
// message. The shared store is the only mutable structure shards touch
// concurrently, and store.Store is safe for concurrent use by
// contract.
//
// Two driving modes share the handler code:
//
//   - inline (simulations, the default): HandleMessage calls the data
//     handlers synchronously with the owning shard's state. Routing
//     reads live control-plane state and relays draw from the node's
//     RNG, preserving single-threaded semantics exactly.
//   - external (live nodes, in-process clusters): StartShards gives
//     every shard a mailbox and a goroutine; DispatchData routes data
//     envelopes to the owning shard's mailbox with a non-blocking
//     send. Routing reads the routeView snapshot and relays draw from
//     the shard's own RNG.
//
// A key's requests always hash to the same shard, so per-shard dedup
// caches and coalescing windows lose nothing: two deliveries of one
// request id meet in the same cache, and a read or delete flushing its
// shard's window observes every buffered put for its key.
package core

import (
	"context"
	"math/rand/v2"
	"time"

	"dataflasks/internal/gossip"
	"dataflasks/internal/metrics"
	"dataflasks/internal/obs"
	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// shardMailboxCap bounds each shard's mailbox; overflow drops the
// message (counted per shard), which epidemic redundancy tolerates.
const shardMailboxCap = 1024

// shardSalt decorrelates the shard hash from slicing.KeySlice: all of
// one node's keys share a slice, so the shard partition must come from
// an independent hash of the same keys.
const shardSalt = 0x9e3779b97f4a7c15

// shardRNGSalt decorrelates per-shard RNG streams from the node's.
const shardRNGSalt = 0x5a4dbeef

// shardIndex maps a key to its owning shard (FNV-1a over the key,
// salted so it is independent of the slice hash).
func shardIndex(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(14695981039346656037) ^ shardSalt
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(shards))
}

// dataShardKey classifies an envelope's message: data-plane requests
// return their routing key (batches route by first key, matching the
// target-slice choice in the handlers) and true; everything else —
// control protocols, mate discovery, client-bound acks — returns
// false.
func dataShardKey(msg interface{}) (string, bool) {
	switch m := msg.(type) {
	case *PutRequest:
		return m.Key, true
	case *GetRequest:
		return m.Key, true
	case *DeleteRequest:
		return m.Key, true
	case *PutBatchRequest:
		if len(m.Objs) > 0 {
			return m.Objs[0].Key, true
		}
		return "", true
	case *DeleteBatchRequest:
		if len(m.Items) > 0 {
			return m.Items[0].Key, true
		}
		return "", true
	}
	return "", false
}

// routeView is the control plane's routing state as one immutable
// snapshot: slice identity, gossip budgets and the peer/mate id sets
// relays sample from. The control loop republishes it (publishRoute)
// after every tick and handled control message; shard goroutines load
// it per operation and never mutate it — sampling copies.
type routeView struct {
	slice      int32
	sliceCount int
	fanout     int
	putTTL     uint8
	getTTL     uint8
	intraTTL   uint8
	mates      []transport.NodeID
	peers      []transport.NodeID
}

// dataShard is one data-plane partition's private state.
type dataShard struct {
	n  *Node
	id int

	// mailbox carries dispatched data envelopes in external mode (nil
	// inline). drops counts producer-side overflow.
	mailbox chan transport.Envelope
	drops   metrics.SharedCounter

	// dedup and rng are this shard's request suppression cache and
	// relay-sampling stream.
	dedup *gossip.Dedup
	rng   *rand.Rand

	// met absorbs every counter the data handlers touch; reads merge
	// it with the control loop's NodeMetrics (Node.Metrics).
	met metrics.ShardCounters

	// tickDur observes shard-loop flush ticks (external mode), the
	// per-shard analogue of the node's tick histogram.
	tickDur metrics.LatencyHistogram

	// coalesce is this shard's put accumulation window (see
	// Config.CoalesceMax); coalesceSeen de-duplicates (key, version)
	// within the buffer.
	coalesce     []store.Object
	coalesceSeen map[objRef]struct{}
}

// newShards builds the per-shard states. The dedup capacity is divided
// across shards: a request id only ever reaches the shard its key
// hashes to.
func newShards(n *Node, cfg Config) []*dataShard {
	count := cfg.DataShards
	dedupCap := cfg.DedupCapacity / count
	if dedupCap < 128 {
		dedupCap = 128
	}
	shards := make([]*dataShard, count)
	for i := range shards {
		shards[i] = &dataShard{
			n:     n,
			id:    i,
			dedup: gossip.NewDedup(dedupCap),
			rng:   sim.RNG(cfg.Seed, uint64(n.id)*1000003+uint64(i)^shardRNGSalt),
		}
	}
	return shards
}

// shardFor returns the shard owning key.
func (n *Node) shardFor(key string) *dataShard {
	return n.shards[shardIndex(key, len(n.shards))]
}

// handleData dispatches one data-plane message on shard s. The caller
// is either HandleMessage (inline mode) or the shard's own loop.
func (n *Node) handleData(ctx context.Context, s *dataShard, msg interface{}) {
	switch m := msg.(type) {
	case *PutRequest:
		n.onPut(ctx, s, m)
	case *PutBatchRequest:
		n.onPutBatch(ctx, s, m)
	case *GetRequest:
		n.onGet(ctx, s, m)
	case *DeleteRequest:
		n.onDelete(ctx, s, m)
	case *DeleteBatchRequest:
		n.onDeleteBatch(ctx, s, m)
	}
}

// StartShards moves the data plane onto per-shard goroutines: every
// shard gets a mailbox and a loop that handles dispatched envelopes
// and flushes its coalescing window once per round period. ctx bounds
// the sends shard handlers make (acks, replies, relays); the owner
// must keep it alive until StopShards returns, or draining could not
// ack what it applies. Call at most once, before messages flow.
func (n *Node) StartShards(ctx context.Context) {
	if n.external.Load() {
		panic("core: StartShards called twice")
	}
	n.shardStop = make(chan struct{})
	for _, s := range n.shards {
		s.mailbox = make(chan transport.Envelope, shardMailboxCap)
	}
	n.publishRoute()
	n.external.Store(true)
	for _, s := range n.shards {
		n.shardWG.Add(1)
		go n.runShard(ctx, s)
	}
}

// StopShards drains and stops the shard goroutines: each shard
// consumes what its mailbox already holds, flushes its coalescing
// window, and exits. It returns after every shard goroutine is gone,
// so the owner can close the store next without racing an in-flight
// write ("drain before close"). Safe to call when shards never
// started; not safe concurrently with StartShards.
func (n *Node) StopShards() {
	if !n.external.Load() {
		return
	}
	close(n.shardStop)
	n.shardWG.Wait()
	n.external.Store(false)
}

// DispatchData routes a data-plane envelope to its owning shard's
// mailbox. It reports false when the caller must deliver the envelope
// to HandleMessage instead: shards are not running externally, or the
// message is not data-plane. Safe from any goroutine (fabric handlers
// call it directly to keep data off the control loop); a full mailbox
// drops the message and counts it.
func (n *Node) DispatchData(env transport.Envelope) bool {
	if !n.external.Load() {
		return false
	}
	key, ok := dataShardKey(env.Msg)
	if !ok {
		return false
	}
	s := n.shardFor(key)
	select {
	case s.mailbox <- env:
	default:
		s.drops.Inc()
	}
	return true
}

// runShard is one shard's goroutine: dispatched data envelopes, a
// per-round flush tick, then a final drain on stop.
func (n *Node) runShard(ctx context.Context, s *dataShard) {
	defer n.shardWG.Done()
	ticker := time.NewTicker(n.cfg.RoundPeriod)
	defer ticker.Stop()
	for {
		select {
		case env := <-s.mailbox:
			s.met.Inc(metrics.MsgRecv)
			n.handleData(ctx, s, env.Msg)
		case <-ticker.C:
			t0 := time.Now()
			s.flush()
			s.tickDur.Observe(time.Since(t0))
		case <-n.shardStop:
			n.drainShard(ctx, s)
			return
		}
	}
}

// drainShard consumes everything the mailbox holds at stop time and
// flushes the coalescing window, so no accepted write is lost between
// the last round and the store closing.
func (n *Node) drainShard(ctx context.Context, s *dataShard) {
	for {
		select {
		case env := <-s.mailbox:
			s.met.Inc(metrics.MsgRecv)
			n.handleData(ctx, s, env.Msg)
		default:
			s.flush()
			return
		}
	}
}

// publishRoute snapshots the control plane's routing state for shard
// goroutines. Only meaningful in external mode; the control loop calls
// it after ticks and control messages (cheap enough there — control
// traffic is a few messages per round).
func (n *Node) publishRoute() {
	view := n.pssP.View()
	peers := make([]transport.NodeID, 0, len(view))
	for _, d := range view {
		peers = append(peers, d.ID)
	}
	n.routeSnap.Store(&routeView{
		slice:      n.currentSlice(),
		sliceCount: n.slicer.SliceCount(),
		fanout:     n.fanout(),
		putTTL:     n.putTTL(),
		getTTL:     n.getTTL(),
		intraTTL:   n.intraTTL(),
		mates:      n.intra.IDs(),
		peers:      peers,
	})
}

// sliceInfo returns the slice claim and slice count the data path must
// route by: the published snapshot when shards run externally, the
// live slicer inline.
func (s *dataShard) sliceInfo() (int32, int) {
	if v := s.n.routeSnap.Load(); v != nil {
		return v.slice, v.sliceCount
	}
	return s.n.currentSlice(), s.n.slicer.SliceCount()
}

func (s *dataShard) putTTL() uint8 {
	if v := s.n.routeSnap.Load(); v != nil {
		return v.putTTL
	}
	return s.n.putTTL()
}

func (s *dataShard) getTTL() uint8 {
	if v := s.n.routeSnap.Load(); v != nil {
		return v.getTTL
	}
	return s.n.getTTL()
}

func (s *dataShard) intraTTL() uint8 {
	if v := s.n.routeSnap.Load(); v != nil {
		return v.intraTTL
	}
	return s.n.intraTTL()
}

// sampleIDs draws up to k ids uniformly without replacement. ids is
// shared snapshot state: the sample copies before shuffling.
func sampleIDs(rng *rand.Rand, ids []transport.NodeID, k int) []transport.NodeID {
	if len(ids) == 0 || k <= 0 {
		return nil
	}
	out := make([]transport.NodeID, len(ids))
	copy(out, ids)
	if k >= len(out) {
		return out
	}
	for i := 0; i < k; i++ {
		j := i + rng.IntN(len(out)-i)
		out[i], out[j] = out[j], out[i]
	}
	return out[:k]
}

// relayGlobal forwards a request in its global phase to fanout random
// peers. build constructs the forwarded copy given the decremented
// TTL; the same copy is shared across peers because receivers never
// mutate messages.
func (s *dataShard) relayGlobal(ctx context.Context, ttl uint8, build func(uint8) interface{}) {
	if ttl == 0 {
		return
	}
	var peers []transport.NodeID
	if v := s.n.routeSnap.Load(); v != nil {
		peers = sampleIDs(s.rng, v.peers, v.fanout)
	} else {
		peers = s.n.pssP.RandomPeers(s.n.fanout())
	}
	if len(peers) == 0 {
		return
	}
	fwd := build(ttl - 1)
	s.met.Inc(metrics.RequestsRelayed)
	for _, p := range peers {
		s.sendData(ctx, p, fwd)
	}
}

// relayIntra forwards a request to a sample of the intra-slice view.
func (s *dataShard) relayIntra(ctx context.Context, fwd interface{}) {
	var mates []transport.NodeID
	if v := s.n.routeSnap.Load(); v != nil {
		mates = sampleIDs(s.rng, v.mates, s.n.cfg.IntraFanout)
	} else {
		mates = s.n.intra.Sample(s.n.rng, s.n.cfg.IntraFanout)
	}
	if len(mates) == 0 {
		return
	}
	s.met.Inc(metrics.RequestsRelayed)
	for _, p := range mates {
		s.sendData(ctx, p, fwd)
	}
}

// sendData mirrors Node.sendData with the shard's counters.
func (s *dataShard) sendData(ctx context.Context, to transport.NodeID, msg interface{}) {
	s.met.Inc(metrics.MsgSent)
	s.met.Inc(metrics.DataSent)
	if err := s.n.raw.Send(ctx, to, msg); err != nil {
		s.met.Inc(metrics.MsgDropped)
		s.countSendErr(err)
	}
}

// countSendErr mirrors Node.countSendErr with the shard's counters.
// Config.OnSendErr must be safe for concurrent use when shards run
// externally.
func (s *dataShard) countSendErr(err error) {
	s.met.Inc(metrics.WireSendErrors)
	if s.n.cfg.OnSendErr != nil {
		s.n.cfg.OnSendErr(err)
	}
}

// traceOp journals one traced request's lifecycle step, stamped with
// the 1-based id of the shard that handled it (0 in /trace output
// means a control-plane event). The ring's publish step is one atomic
// claim plus one pointer store, so shard goroutines and the control
// loop journal into the same ring safely.
func (s *dataShard) traceOp(kind obs.TraceKind, traceID uint64, key string, bytes, objects int) {
	if s.n.trace == nil || traceID == 0 {
		return
	}
	s.n.trace.Add(obs.Event{
		Kind: kind, TraceID: traceID, Key: key,
		Bytes: uint64(bytes), Objects: uint64(objects),
		Shard: uint64(s.id) + 1,
	})
}

// coalescePut buffers one intra-slice relay put for the next batched
// flush; with coalescing disabled it stores directly.
func (s *dataShard) coalescePut(key string, version uint64, value []byte) {
	if s.n.cfg.CoalesceMax <= 0 {
		if s.n.st.Put(key, version, value) == nil {
			s.met.Inc(metrics.PutsServed)
		}
		return
	}
	ref := objRef{key: key, version: version}
	if s.coalesceSeen == nil {
		s.coalesceSeen = make(map[objRef]struct{}, s.n.cfg.CoalesceMax)
	}
	if _, dup := s.coalesceSeen[ref]; dup {
		return // same object via two request ids (client retry)
	}
	s.coalesceSeen[ref] = struct{}{}
	// Messages are immutable, so referencing the value is safe; engines
	// copy on store.
	s.coalesce = append(s.coalesce, store.Object{Key: key, Version: version, Value: value})
	if len(s.coalesce) >= s.n.cfg.CoalesceMax {
		s.flush()
	}
}

// flush applies the accumulation window as one store.PutBatch. A
// batch-level failure (one invalid object fails the whole batch with
// no side effects) degrades to individual puts so valid objects are
// not lost to a poisoned batch.
func (s *dataShard) flush() {
	if len(s.coalesce) == 0 {
		return
	}
	batch := s.coalesce
	s.coalesce = nil
	s.coalesceSeen = nil
	if err := s.n.st.PutBatch(batch); err != nil {
		for _, o := range batch {
			if s.n.st.Put(o.Key, o.Version, o.Value) == nil {
				s.met.Inc(metrics.PutsServed)
			}
		}
		return
	}
	s.met.Add(metrics.PutsServed, uint64(len(batch)))
	s.met.Add(metrics.CoalescedPuts, uint64(len(batch)))
}

// ShardCount returns how many data-plane shards the node runs.
func (n *Node) ShardCount() int { return len(n.shards) }

// ShardMailboxCapacity returns the per-shard mailbox bound.
func (n *Node) ShardMailboxCapacity() int { return shardMailboxCap }

// ShardDepth returns shard i's current mailbox depth (0 before
// StartShards or for an out-of-range index). Safe from any goroutine.
func (n *Node) ShardDepth(i int) int {
	if i < 0 || i >= len(n.shards) {
		return 0
	}
	s := n.shards[i]
	if s.mailbox == nil {
		return 0
	}
	return len(s.mailbox)
}

// ShardTickDurations exposes shard i's flush-tick histogram (atomic;
// the observability plane reads it live). Nil for an out-of-range
// index.
func (n *Node) ShardTickDurations(i int) *metrics.LatencyHistogram {
	if i < 0 || i >= len(n.shards) {
		return nil
	}
	return &n.shards[i].tickDur
}

// ShardDropped sums producer-side shard mailbox drops across shards.
func (n *Node) ShardDropped() uint64 {
	var total uint64
	for _, s := range n.shards {
		total += s.drops.Load()
	}
	return total
}
