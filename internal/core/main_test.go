package core

import (
	"os"
	"testing"

	"dataflasks/internal/leakcheck"
)

// TestMain fails the package if any goroutine outlives the tests: the
// core is single-threaded by contract, so a surviving goroutine means
// a test harness (or a regression in the core) started one and lost
// it.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
