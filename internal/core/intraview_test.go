package core

import (
	"context"
	"testing"

	"dataflasks/internal/pss"
	"dataflasks/internal/sim"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

func desc(id transport.NodeID, slice int32) pss.Descriptor {
	return pss.Descriptor{ID: id, Slice: slice}
}

func TestIntraViewTouchAndRefresh(t *testing.T) {
	v := newIntraView(4, 10)
	v.Touch(desc(1, 0), 1)
	v.Touch(desc(2, 0), 1)
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Touch(desc(1, 0), 5) // refresh
	v.Expire(12)           // 12-1 > 10 for node 2, 12-5 < 10 for node 1
	if v.Len() != 1 {
		t.Fatalf("after expire Len = %d", v.Len())
	}
	ids := v.IDs()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("survivor = %v", ids)
	}
}

func TestIntraViewCapacityEvictsStalest(t *testing.T) {
	v := newIntraView(2, 100)
	v.Touch(desc(1, 0), 1)
	v.Touch(desc(2, 0), 5)
	v.Touch(desc(3, 0), 9) // evicts node 1 (stalest)
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	ids := v.IDs()
	if ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("members = %v, want [2 3]", ids)
	}
}

func TestIntraViewFullOfFreshKeepsExisting(t *testing.T) {
	v := newIntraView(2, 100)
	v.Touch(desc(1, 0), 7)
	v.Touch(desc(2, 0), 7)
	v.Touch(desc(3, 0), 7) // everyone equally fresh: newcomer dropped
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, id := range v.IDs() {
		if id == 3 {
			t.Fatal("newcomer displaced a fresh member")
		}
	}
}

func TestIntraViewRemoveAndClear(t *testing.T) {
	v := newIntraView(4, 10)
	v.Touch(desc(1, 0), 1)
	v.Touch(desc(2, 0), 1)
	v.Remove(1)
	if v.Len() != 1 {
		t.Fatalf("Len after remove = %d", v.Len())
	}
	v.Clear()
	if v.Len() != 0 {
		t.Fatalf("Len after clear = %d", v.Len())
	}
}

func TestIntraViewSampleIsBoundedAndDistinct(t *testing.T) {
	v := newIntraView(16, 10)
	for i := 1; i <= 10; i++ {
		v.Touch(desc(transport.NodeID(i), 0), 1)
	}
	rng := sim.RNG(1, 1)
	s := v.Sample(rng, 4)
	if len(s) != 4 {
		t.Fatalf("sample = %v", s)
	}
	seen := map[transport.NodeID]bool{}
	for _, id := range s {
		if seen[id] {
			t.Fatalf("duplicate %v in sample", id)
		}
		seen[id] = true
	}
	if got := v.Sample(rng, 99); len(got) != 10 {
		t.Fatalf("oversized sample = %d", len(got))
	}
}

func TestIntraViewRandomEmpty(t *testing.T) {
	v := newIntraView(4, 10)
	if _, ok := v.Random(sim.RNG(1, 2)); ok {
		t.Fatal("empty view returned a member")
	}
}

func TestNodeSliceChangeClearsIntraView(t *testing.T) {
	// A node whose slicer flips slices must drop its old mates.
	sink := transport.SenderFunc(func(context.Context, transport.NodeID, interface{}) error { return nil })
	n := NewNode(1, Config{
		Slices: 4, Slicer: SlicerRank, SystemSize: 100, AntiEntropyEvery: -1, Seed: 3,
	}, newTestStore(), sink)

	// Rank slicer with attr drawn from id; feed samples that put us in
	// slice 0 first.
	for i := 0; i < 5; i++ {
		n.slicer.Observe(transport.NodeID(100+i), n.attr+1) // everyone above us
	}
	n.slicer.Tick(context.Background())
	if n.Slice() != 0 {
		t.Fatalf("slice = %d, want 0", n.Slice())
	}
	n.Tick(context.Background()) // lastSlice bookkeeping
	n.intra.Touch(desc(50, 0), n.round)
	if n.IntraViewSize() != 1 {
		t.Fatal("intra view not populated")
	}

	// Now sustained samples all below us → slice flips to 3.
	for r := 0; r < 10; r++ {
		for i := 0; i < 5; i++ {
			n.slicer.Observe(transport.NodeID(200+i), n.attr-1)
		}
		n.Tick(context.Background())
	}
	if n.Slice() != 3 {
		t.Fatalf("slice = %d after flip, want 3", n.Slice())
	}
	if n.IntraViewSize() != 0 {
		t.Error("slice change kept stale mates")
	}
}

func newTestStore() store.Store { return store.NewMemory() }
