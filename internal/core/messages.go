// Package core implements the DataFlasks node — the paper's primary
// contribution (§IV, §V): an epidemic key-value substrate in which
// every node locally decides what to store, requests are routed by
// bounded gossip over peer-sampling views until they reach the target
// slice and are then disseminated intra-slice only, and replication
// equals slice membership.
package core

import (
	"dataflasks/internal/gossip"
	"dataflasks/internal/pss"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// PutRequest writes (Key, Version) → Value. Version ordering is the
// upper layer's responsibility (§III); DataFlasks stores what it is
// told. The request is flooded in two phases: a TTL-bounded global
// phase over PSS views, switching to an intra-slice phase (Intra=true)
// the moment it reaches a node of the target slice.
type PutRequest struct {
	ID      gossip.RequestID
	Key     string
	Version uint64
	Value   []byte
	// Origin is the client endpoint acks are sent to.
	Origin transport.NodeID
	// OriginAddr is the client's dialable address for TCP fabrics
	// (empty in simulations): replicas must be able to answer a client
	// they have never heard from.
	OriginAddr string
	TTL        uint8
	Intra      bool
	// NoAck suppresses PutAck (fire-and-forget writes).
	NoAck bool
	// TraceID, when non-zero, journals this request's lifecycle in
	// every hop's /trace ring so one put can be stitched across
	// relays. On the wire it is an optional trailing field (same
	// backward-compatible trick as the Bloom filter salt): old nodes
	// ignore it, old frames decode with it zero — and it must stay the
	// LAST field of this message.
	TraceID uint64
}

// PutAck confirms a put was stored by one replica. It is emitted only
// by slice nodes that received the request in its global phase (the
// slice "entry points"), which bounds acks per put by the flood's
// expected slice hits rather than the slice size.
type PutAck struct {
	ID      gossip.RequestID
	Key     string
	Version uint64
}

// GetRequest reads Key at Version (store.Latest for newest). Routed
// exactly like PutRequest. Every slice node holding the object answers
// the Origin directly; the client library de-duplicates replies by ID
// (paper §V).
type GetRequest struct {
	ID      gossip.RequestID
	Key     string
	Version uint64
	Origin  transport.NodeID
	// OriginAddr mirrors PutRequest.OriginAddr.
	OriginAddr string
	TTL        uint8
	Intra      bool
	// TraceID mirrors PutRequest.TraceID (optional trailing wire
	// field; must stay last).
	TraceID uint64
}

// GetReply answers a GetRequest.
type GetReply struct {
	ID      gossip.RequestID
	Key     string
	Version uint64
	Value   []byte
	// Slice is the responder's slice, letting clients warm their
	// slice-contact cache (§VII load-balancer optimization).
	Slice int32
}

// PutBatchRequest writes a batch of objects that all map to one target
// slice (the client groups per slice before sending). It is routed
// exactly like PutRequest — TTL-bounded global phase, then intra-slice
// dissemination — but lands on each replica as a single store.PutBatch
// call: one lock acquisition and, in the log engine, one appended
// record batch plus one group-commit fsync. Nodes that predate this
// message type ignore it (unknown kinds fall through HandleMessage's
// default case), so mixed-version deployments degrade to "batch not
// replicated by old nodes" rather than crashing.
type PutBatchRequest struct {
	ID gossip.RequestID
	// Objs all belong to one slice under the sender's slice count; the
	// receiving node recomputes the target from Objs[0].Key.
	Objs       []store.Object
	Origin     transport.NodeID
	OriginAddr string
	TTL        uint8
	Intra      bool
	NoAck      bool
	// TraceID mirrors PutRequest.TraceID (optional trailing wire
	// field; must stay last).
	TraceID uint64
}

// PutBatchAck confirms a whole batch was stored by one replica, with
// the same entry-point-only emission rule as PutAck.
type PutBatchAck struct {
	ID gossip.RequestID
	// Stored is how many objects the replica applied (always the full
	// batch; partial application fails the batch and is not acked).
	Stored int
}

// DeleteRequest removes (Key, Version) from the target slice's
// replicas; Version store.Latest removes each replica's newest stored
// version (resolved independently per replica, mirroring Get). Routed
// exactly like PutRequest: deletes must reach the whole target slice.
type DeleteRequest struct {
	ID         gossip.RequestID
	Key        string
	Version    uint64
	Origin     transport.NodeID
	OriginAddr string
	TTL        uint8
	Intra      bool
	// NoAck suppresses DeleteAck (fire-and-forget deletes).
	NoAck bool
	// TraceID mirrors PutRequest.TraceID (optional trailing wire
	// field; must stay last).
	TraceID uint64
}

// DeleteAck confirms a delete was applied by one replica.
type DeleteAck struct {
	ID      gossip.RequestID
	Key     string
	Version uint64
}

// DeleteItem names one (key, version) pair of a batch delete. Version
// store.Latest removes each replica's newest stored version of the key.
type DeleteItem struct {
	Key     string
	Version uint64
}

// DeleteBatchRequest removes a batch of objects that all map to one
// target slice (the client groups per slice before sending), mirroring
// PutBatchRequest: routed like a write — TTL-bounded global phase, then
// intra-slice dissemination — and applied by each replica in one pass
// over the local store. Nodes that predate this message type ignore it
// (unknown kinds fall through HandleMessage's default case), so
// mixed-version deployments degrade to "batch not deleted by old nodes"
// rather than crashing.
type DeleteBatchRequest struct {
	ID gossip.RequestID
	// Items all belong to one slice under the sender's slice count; the
	// receiving node recomputes the target from Items[0].Key.
	Items      []DeleteItem
	Origin     transport.NodeID
	OriginAddr string
	TTL        uint8
	Intra      bool
	// NoAck suppresses DeleteBatchAck (fire-and-forget deletes).
	NoAck bool
	// TraceID mirrors PutRequest.TraceID (optional trailing wire
	// field; must stay last).
	TraceID uint64
}

// DeleteBatchAck confirms a whole delete batch was applied by one
// replica, with the same entry-point-only emission rule as PutAck.
type DeleteBatchAck struct {
	ID gossip.RequestID
	// Applied is how many of the batch's items named an object this
	// replica actually held (and therefore removed). Replicas may
	// disagree while convergence is in progress; clients surface the
	// largest count observed.
	Applied int
}

// MateQuery asks a random peer for members of the sender's slice it
// happens to know; this is how the intra-slice view bootstraps when
// slices are scarce in the PSS stream.
type MateQuery struct {
	Slice int32
}

// MateReply returns known members of the queried slice.
type MateReply struct {
	Slice int32
	Mates []pss.Descriptor
}
