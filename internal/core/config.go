package core

import (
	"time"

	"dataflasks/internal/obs"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// PSSKind selects the peer-sampling protocol.
type PSSKind int

// Peer-sampling protocol choices.
const (
	PSSCyclon PSSKind = iota + 1
	PSSNewscast
)

// SlicerKind selects the slice-manager implementation.
type SlicerKind int

// Slicer choices.
const (
	// SlicerRank is the DSlead-style message-free rank estimator
	// (DataFlasks' default).
	SlicerRank SlicerKind = iota + 1
	// SlicerSwap is Jelasity–Kermarrec ordered slicing.
	SlicerSwap
	// SlicerStatic is the hash "coin toss" baseline (§IV-A).
	SlicerStatic
)

// StoreEngine selects the node-local persistence engine.
type StoreEngine int

// Store engine choices.
const (
	// StoreMemory keeps objects in RAM — simulations, caches, tests.
	StoreMemory StoreEngine = iota + 1
	// StoreDisk is the file-per-object engine: simple, debuggable,
	// one file (and with Fsync one fsync) per write.
	StoreDisk
	// StoreLog is the log-structured engine: segmented append-only
	// files, checksummed records, group-commit fsync and background
	// compaction. The default for persistent deployments.
	StoreLog
)

// StoreConfig selects and tunes the persistence engine. The zero value
// means "memory without a data directory, log with one".
type StoreConfig struct {
	// Engine picks the implementation (default: StoreLog when a data
	// directory is given, StoreMemory otherwise).
	Engine StoreEngine
	// Fsync makes writes block until durable. The log engine amortizes
	// the cost across concurrent writers via group commit.
	Fsync bool
	// SegmentMaxBytes is the log engine's segment roll size
	// (default 64 MiB).
	SegmentMaxBytes int64
	// CommitWindow is the log engine's group-commit window (default 0:
	// batches form naturally while an fsync is in flight).
	CommitWindow time.Duration
	// CompactLiveRatio is the live-byte ratio under which the log
	// engine compacts sealed segments (default 0.5; negative disables).
	CompactLiveRatio float64
	// CompactRateBytesPerSec throttles the log engine's compaction
	// copy I/O (0 = unlimited) so background maintenance cannot starve
	// foreground requests.
	CompactRateBytesPerSec int64
}

// Open builds the configured engine rooted at dir. An empty dir (or
// StoreMemory) yields the memory engine.
func (sc StoreConfig) Open(dir string) (store.Store, error) {
	engine := sc.Engine
	if dir == "" || engine == StoreMemory {
		return store.NewMemory(), nil
	}
	switch engine {
	case StoreDisk:
		return store.OpenDisk(dir, store.DiskOptions{Fsync: sc.Fsync})
	default:
		return store.OpenLog(dir, store.LogOptions{
			Fsync:                  sc.Fsync,
			SegmentMaxBytes:        sc.SegmentMaxBytes,
			CommitWindow:           sc.CommitWindow,
			CompactLiveRatio:       sc.CompactLiveRatio,
			CompactRateBytesPerSec: sc.CompactRateBytesPerSec,
		})
	}
}

// Config tunes one DataFlasks node. The zero value is completed by
// defaults(); Slices and SystemSize are the two knobs every deployment
// sets.
type Config struct {
	// Slices is the number of slices k. Slice size N/k is the
	// replication factor (§IV-C).
	Slices int

	// Control, when set, carries control-plane messages (as classified
	// by IsControl) instead of the node's main sender. Real deployments
	// pass the datagram fast path here, typically wrapped in a
	// transport.FallbackSender so oversize frames ride the stream
	// fabric. Nil sends everything over the main sender.
	Control transport.Sender
	// IsControl classifies messages for Control routing; deployments
	// pass wire.Control so the routing split derives from the message
	// table. Required when Control is set.
	IsControl func(msg interface{}) bool
	// OnSendErr, when set, observes every failed fabric send in
	// addition to the node's own wire_send_errors counter. It is called
	// from the event loop; live deployments use it to mirror the count
	// into an atomic the status reporter can read.
	OnSendErr func(error)
	// SystemSize is the deployer's estimate of N, used to size fanout
	// and TTL. When zero the node uses its extrema-propagation size
	// estimate (internal/aggregate).
	SystemSize int

	// PSS selects the peer-sampling protocol (default Cyclon).
	PSS PSSKind
	// ViewSize bounds the PSS partial view (default 20).
	ViewSize int
	// ShuffleLen is the Cyclon exchange length (default ViewSize/2+1).
	ShuffleLen int

	// Slicer selects the slice manager (default SlicerRank).
	Slicer SlicerKind
	// Capacity is the node's slicing attribute (storage capacity,
	// §IV-A). Zero means "draw from node id" so heterogeneity exists
	// even in lazy deployments.
	Capacity float64

	// FanoutC is the c in fanout = ln(N)+c (default 1.0; §II gives
	// atomic-infection probability e^(-e^(-c))).
	FanoutC float64
	// GetCoverageC controls the TTL of the bounded global phase used
	// for reads (§IV-B: "it is sufficient to reach only the percentage
	// of system nodes that guarantees that some nodes of the target
	// slice are reached"): the flood is sized to cover
	// ~GetCoverageC·k random nodes, for slice-miss probability
	// e^(-GetCoverageC). Default 3.
	GetCoverageC float64
	// BoundedPutFlood routes writes with the same bounded global phase
	// as reads, relying on anti-entropy to finish replication. Off by
	// default: writes use a full epidemic flood so the whole target
	// slice stores synchronously, which is the regime the paper's
	// write-only evaluation measures. Exposed for the ablation
	// experiments.
	BoundedPutFlood bool
	// IntraFanout is the relay fanout within a slice (default 8).
	IntraFanout int

	// IntraViewTarget is the desired intra-slice view size (default 8).
	IntraViewTarget int
	// IntraStaleRounds evicts intra-view entries not refreshed for this
	// many rounds (default 12).
	IntraStaleRounds int
	// DiscoveryMaxQueries bounds slice-mate discovery queries per round
	// (default 6).
	DiscoveryMaxQueries int

	// DedupCapacity bounds the request-id suppression cache
	// (default 8192). With DataShards > 1 the capacity is divided
	// across the per-shard caches (a key's requests always hash to the
	// same shard, so the split loses nothing).
	DedupCapacity int

	// DataShards partitions the data plane (put/get/delete, batches,
	// coalescing) by key hash into this many independent shard states.
	// When the owner runs the shards (Node.StartShards) each shard is
	// its own goroutine with its own mailbox, dedup cache, coalescing
	// window and counters, so data operations on different shards
	// proceed in parallel while the epidemic control plane (PSS,
	// slicing, aggregation, anti-entropy, bootstrap) stays on the
	// single-threaded loop. Without StartShards the shard states are
	// still used but driven inline by HandleMessage, preserving
	// single-threaded simulation semantics. Default 1.
	DataShards int

	// CoalesceMax is the event loop's put accumulation window:
	// intra-slice relay puts (which carry no ack obligation) are
	// buffered and land in one store.PutBatch — one lock acquisition
	// and, in the log engine, one group-commit fsync — at the next tick
	// or once this many are buffered, whichever comes first. Reads,
	// deletes and incoming batches flush the buffer first, so a node
	// still observes its own relayed writes. Default 64; negative
	// disables coalescing (every relay put hits the store
	// individually).
	CoalesceMax int

	// AntiEntropyEvery runs one anti-entropy exchange every this many
	// rounds (default 10; negative disables anti-entropy).
	AntiEntropyEvery int
	// AntiEntropyMaxPush bounds objects shipped per exchange
	// (default 64).
	AntiEntropyMaxPush int
	// AntiEntropyMaxPushBytes bounds the value bytes shipped per
	// repair Push message (default 1 MiB); a single larger object
	// still ships alone.
	AntiEntropyMaxPushBytes int
	// AntiEntropyRateBytes is the per-node repair-rate limiter: a
	// token bucket refilled by this many bytes each anti-entropy round
	// that every pushed value is charged against, so background repair
	// cannot starve foreground puts (0 = unlimited).
	AntiEntropyRateBytes int
	// AntiEntropyFullEvery makes every Nth anti-entropy round a
	// full-header exchange; the rounds between open with a Bloom
	// summary of the local headers (O(bits) digest bandwidth instead
	// of O(objects)). The periodic full round guarantees convergence
	// past the filter's ~1% false positives. Default 8; 1 exchanges
	// full headers every round (Bloom disabled).
	AntiEntropyFullEvery int
	// EvictForeign drops stored objects whose key no longer maps to
	// this node's slice (after a slice change). Off by default: the
	// paper keeps data conservatively (§VII).
	EvictForeign bool

	// Bootstrap makes the node recover its slice's data in bulk at
	// startup: once it knows its slice it asks a slice mate for whole
	// sealed segments (internal/bootstrap) and lets anti-entropy mop up
	// the delta. Off by default — fresh nodes in a new cluster have
	// nothing to recover.
	Bootstrap bool
	// DisableBootstrap removes the segment-streaming protocol entirely:
	// the node neither joins via segments nor serves them. For
	// experiments that need an object-repair-only baseline.
	DisableBootstrap bool
	// BootstrapRateBytes is the per-round token budget for serving
	// segment chunks (0 = 1 MiB default, negative = unlimited), the
	// bulk-transfer analogue of AntiEntropyRateBytes.
	BootstrapRateBytes int

	// RoundPeriod is the live-runtime gossip period (default 500ms);
	// simulations drive ticks explicitly and ignore it.
	RoundPeriod time.Duration

	// Store selects and tunes the persistence engine. The node runtime
	// (not the protocol core) opens it against its data directory.
	Store StoreConfig

	// AdvertiseAddr is the node's dialable address, gossiped inside
	// PSS descriptors so TCP fabrics can build their routing
	// directory. Empty in simulations and in-process clusters.
	AdvertiseAddr string
	// AddressBook receives (id, addr) pairs learned from descriptors;
	// TCP fabrics implement it. Nil otherwise.
	AddressBook transport.AddressBook

	// Seed feeds the node's deterministic RNG stream.
	Seed uint64

	// Trace, when non-nil, journals protocol round events and traced
	// request lifecycles into this ring (served by the observability
	// plane's /trace). Nil keeps tracing entirely off the event loop's
	// path — no event is even constructed.
	Trace *obs.Ring
}

// withDefaults returns a copy with zero fields filled in.
func (c Config) withDefaults() Config {
	if c.Slices <= 0 {
		c.Slices = 10
	}
	if c.PSS == 0 {
		c.PSS = PSSCyclon
	}
	if c.ViewSize <= 0 {
		c.ViewSize = 20
	}
	if c.Slicer == 0 {
		c.Slicer = SlicerRank
	}
	if c.FanoutC == 0 {
		c.FanoutC = 1.0
	}
	if c.GetCoverageC == 0 {
		c.GetCoverageC = 3.0
	}
	if c.IntraFanout <= 0 {
		c.IntraFanout = 8
	}
	if c.IntraViewTarget <= 0 {
		c.IntraViewTarget = 8
	}
	if c.IntraStaleRounds <= 0 {
		c.IntraStaleRounds = 12
	}
	if c.DiscoveryMaxQueries <= 0 {
		c.DiscoveryMaxQueries = 6
	}
	if c.DedupCapacity <= 0 {
		c.DedupCapacity = 8192
	}
	if c.DataShards <= 0 {
		c.DataShards = 1
	}
	if c.CoalesceMax == 0 {
		c.CoalesceMax = 64
	}
	if c.AntiEntropyEvery < 0 {
		c.AntiEntropyEvery = 0
	} else if c.AntiEntropyEvery == 0 {
		c.AntiEntropyEvery = 10
	}
	if c.AntiEntropyMaxPush <= 0 {
		c.AntiEntropyMaxPush = 64
	}
	if c.AntiEntropyMaxPushBytes <= 0 {
		c.AntiEntropyMaxPushBytes = 1 << 20
	}
	if c.AntiEntropyRateBytes < 0 {
		c.AntiEntropyRateBytes = 0
	}
	if c.AntiEntropyFullEvery == 0 {
		c.AntiEntropyFullEvery = 8
	}
	if c.RoundPeriod <= 0 {
		c.RoundPeriod = 500 * time.Millisecond
	}
	return c
}
