package core

import (
	"math/rand/v2"
	"sort"

	"dataflasks/internal/pss"
	"dataflasks/internal/transport"
)

// intraView is the node's view of its own slice: the dissemination
// targets for the intra-slice phase (§IV-B "Peer Sampling Service
// intra-slice") and the anti-entropy partners. It is populated
// passively from the PSS descriptor stream and actively by mate
// discovery, and entries expire when not refreshed so crashed mates age
// out.
type intraView struct {
	capacity int
	stale    uint64 // rounds before an unrefreshed entry is dropped
	entries  map[transport.NodeID]*intraEntry
}

type intraEntry struct {
	desc pss.Descriptor
	seen uint64 // round of last refresh
}

func newIntraView(capacity int, staleRounds int) *intraView {
	return &intraView{
		capacity: capacity,
		stale:    uint64(staleRounds),
		entries:  make(map[transport.NodeID]*intraEntry, capacity),
	}
}

// Touch records that d was observed (claiming our slice) at round now.
// When the view is full the entry seen longest ago is replaced.
func (v *intraView) Touch(d pss.Descriptor, now uint64) {
	if e, ok := v.entries[d.ID]; ok {
		e.desc = d
		e.seen = now
		return
	}
	if len(v.entries) >= v.capacity {
		// Deterministic victim: stalest entry, smallest id on ties, so
		// simulations replay bit-for-bit.
		var victim transport.NodeID
		var oldest uint64 = ^uint64(0)
		for id, e := range v.entries {
			if e.seen < oldest || (e.seen == oldest && id < victim) {
				oldest = e.seen
				victim = id
			}
		}
		if oldest >= now { // everyone fresh; drop the newcomer instead
			return
		}
		delete(v.entries, victim)
	}
	v.entries[d.ID] = &intraEntry{desc: d, seen: now}
}

// Remove drops id (observed in another slice, or known dead).
func (v *intraView) Remove(id transport.NodeID) { delete(v.entries, id) }

// Expire drops entries not refreshed within the staleness window.
func (v *intraView) Expire(now uint64) {
	for id, e := range v.entries {
		if now-e.seen > v.stale {
			delete(v.entries, id)
		}
	}
}

// Clear empties the view (after a slice change).
func (v *intraView) Clear() {
	for id := range v.entries {
		delete(v.entries, id)
	}
}

// Len returns the current view size.
func (v *intraView) Len() int { return len(v.entries) }

// IDs returns the member ids in ascending order (stable order keeps
// simulations deterministic).
func (v *intraView) IDs() []transport.NodeID {
	out := make([]transport.NodeID, 0, len(v.entries))
	for id := range v.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descriptors returns the member descriptors ordered by id.
func (v *intraView) Descriptors() []pss.Descriptor {
	out := make([]pss.Descriptor, 0, len(v.entries))
	for _, id := range v.IDs() {
		out = append(out, v.entries[id].desc)
	}
	return out
}

// Sample returns up to n distinct member ids chosen uniformly.
func (v *intraView) Sample(rng *rand.Rand, n int) []transport.NodeID {
	ids := v.IDs()
	if n >= len(ids) {
		return ids
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids[:n]
}

// Random returns one uniformly chosen member.
func (v *intraView) Random(rng *rand.Rand) (transport.NodeID, bool) {
	ids := v.IDs()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[rng.IntN(len(ids))], true
}
