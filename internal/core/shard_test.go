package core

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dataflasks/internal/gossip"
	"dataflasks/internal/leakcheck"
	"dataflasks/internal/metrics"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// shardedNode builds a single-slice node whose store it owns: static
// slicer with one slice, so every key is local and every non-intra put
// stores synchronously. The discard sender swallows relays and acks.
func shardedNode(t *testing.T, st store.Store, shards int) *Node {
	t.Helper()
	cfg := Config{
		Slices:     1,
		Slicer:     SlicerStatic,
		DataShards: shards,
		Seed:       7,
	}
	discard := transport.SenderFunc(func(context.Context, transport.NodeID, interface{}) error { return nil })
	return NewNode(1, cfg, st, discard)
}

func putEnv(id uint64, key string, version uint64) transport.Envelope {
	return transport.Envelope{From: 2, To: 1, Msg: &PutRequest{
		ID: gossip.RequestID(id), Key: key, Version: version,
		Value: []byte("v"), NoAck: true, TTL: TTLUnset,
	}}
}

func TestDataShardKeyClassifiesEveryDataKind(t *testing.T) {
	cases := []struct {
		msg  interface{}
		key  string
		data bool
	}{
		{&PutRequest{Key: "a"}, "a", true},
		{&GetRequest{Key: "b"}, "b", true},
		{&DeleteRequest{Key: "c"}, "c", true},
		{&PutBatchRequest{Objs: []store.Object{{Key: "d"}, {Key: "x"}}}, "d", true},
		{&DeleteBatchRequest{Items: []DeleteItem{{Key: "e"}, {Key: "y"}}}, "e", true},
		{&PutBatchRequest{}, "", true}, // empty batch still routes (shard 0) and is dropped there
		{&DeleteBatchRequest{}, "", true},
		{&PutAck{}, "", false},
		{&GetReply{}, "", false},
		{&MateQuery{}, "", false},
		{nil, "", false},
	}
	for _, c := range cases {
		key, ok := dataShardKey(c.msg)
		if ok != c.data || key != c.key {
			t.Errorf("dataShardKey(%T) = (%q, %v), want (%q, %v)", c.msg, key, ok, c.key, c.data)
		}
	}
}

func TestShardIndexStableAndSpread(t *testing.T) {
	const shards = 8
	counts := make([]int, shards)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("key-%d", i)
		a := shardIndex(key, shards)
		if b := shardIndex(key, shards); a != b {
			t.Fatalf("shardIndex(%q) unstable: %d then %d", key, a, b)
		}
		if a < 0 || a >= shards {
			t.Fatalf("shardIndex(%q) = %d out of range", key, a)
		}
		counts[a]++
	}
	for s, c := range counts {
		if c < 4096/shards/2 || c > 4096/shards*2 {
			t.Errorf("shard %d got %d of 4096 keys (poor spread): %v", s, c, counts)
		}
	}
	if shardIndex("anything", 1) != 0 {
		t.Error("single shard must swallow every key")
	}
}

// TestInlineModeUnchanged pins the compatibility contract: without
// StartShards, DispatchData declines everything and HandleMessage runs
// data handlers synchronously, whatever the shard count.
func TestInlineModeUnchanged(t *testing.T) {
	for _, shards := range []int{1, 4} {
		st := store.NewMemory()
		n := shardedNode(t, st, shards)
		env := putEnv(1, "k", 1)
		if n.DispatchData(env) {
			t.Fatalf("shards=%d: DispatchData accepted an envelope before StartShards", shards)
		}
		n.HandleMessage(context.Background(), env)
		if _, _, ok, _ := st.Get("k", 1); !ok {
			t.Fatalf("shards=%d: inline put did not land synchronously", shards)
		}
		if got := n.Metrics().Get(metrics.PutsServed); got != 1 {
			t.Fatalf("shards=%d: PutsServed = %d, want 1 (shard counters must merge)", shards, got)
		}
	}
}

// closeGuardStore fails every mutation after Close — the detector for
// the shutdown-ordering contract (drain the shards, then close the
// store).
type closeGuardStore struct {
	store.Store
	closed    atomic.Bool
	lateOps   atomic.Uint64
	putsSeen  atomic.Uint64
	batchSeen atomic.Uint64
}

func (g *closeGuardStore) check() error {
	if g.closed.Load() {
		g.lateOps.Add(1)
		return fmt.Errorf("store used after Close")
	}
	return nil
}

func (g *closeGuardStore) Put(key string, version uint64, value []byte) error {
	if err := g.check(); err != nil {
		return err
	}
	g.putsSeen.Add(1)
	return g.Store.Put(key, version, value)
}

func (g *closeGuardStore) PutBatch(objs []store.Object) error {
	if err := g.check(); err != nil {
		return err
	}
	g.batchSeen.Add(uint64(len(objs)))
	return g.Store.PutBatch(objs)
}

func (g *closeGuardStore) Delete(key string, version uint64) (bool, error) {
	if err := g.check(); err != nil {
		return false, err
	}
	return g.Store.Delete(key, version)
}

func (g *closeGuardStore) Close() error {
	g.closed.Store(true)
	return g.Store.Close()
}

// TestStopShardsDrainsBeforeStoreClose is the shutdown-ordering
// contract: every envelope a shard mailbox accepted is fully applied
// by the time StopShards returns, so the owner can close the store
// with nothing in flight — and nothing may touch the store afterwards.
func TestStopShardsDrainsBeforeStoreClose(t *testing.T) {
	before := leakcheck.Snapshot()
	guard := &closeGuardStore{Store: store.NewMemory()}
	n := shardedNode(t, guard, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n.StartShards(ctx)

	const producers = 4
	const perProducer = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := uint64(p)<<32 | uint64(i+1)
				env := putEnv(id, fmt.Sprintf("key-%d-%d", p, i), 1)
				for !n.DispatchData(env) {
					t.Error("DispatchData declined a data envelope in external mode")
					return
				}
			}
		}(p)
	}
	wg.Wait()
	n.StopShards()

	// Drain accounting: every dispatched put was either applied or
	// visibly dropped on mailbox overflow — none may be in flight.
	served := n.Metrics().Get(metrics.PutsServed)
	dropped := n.ShardDropped()
	if served+dropped != producers*perProducer {
		t.Fatalf("after drain: served %d + dropped %d != dispatched %d",
			served, dropped, producers*perProducer)
	}
	if served != guard.putsSeen.Load() {
		t.Fatalf("PutsServed %d != store puts %d", served, guard.putsSeen.Load())
	}
	if err := guard.Close(); err != nil {
		t.Fatal(err)
	}
	// Envelopes dispatched after the drain are lost, not applied: the
	// store must never see them.
	_ = n.DispatchData(putEnv(1<<40, "late", 1))
	time.Sleep(20 * time.Millisecond)
	if late := guard.lateOps.Load(); late != 0 {
		t.Fatalf("%d store operations after Close", late)
	}
	leakcheck.Check(t, before)
}

// TestStartShardsTwicePanics pins the lifecycle contract.
func TestStartShardsTwicePanics(t *testing.T) {
	n := shardedNode(t, store.NewMemory(), 2)
	ctx := context.Background()
	n.StartShards(ctx)
	defer n.StopShards()
	defer func() {
		if recover() == nil {
			t.Error("second StartShards did not panic")
		}
	}()
	n.StartShards(ctx)
}

// TestStopShardsWithoutStartIsNoop: inline nodes (simulator, unit
// tests) never start shards; their owners may still call StopShards.
func TestStopShardsWithoutStartIsNoop(t *testing.T) {
	n := shardedNode(t, store.NewMemory(), 4)
	n.StopShards() // must not panic or block
}

// TestShardObservabilitySurface: depths, capacity, tick histograms and
// the drop counter must stay readable while shards run.
func TestShardObservabilitySurface(t *testing.T) {
	n := shardedNode(t, store.NewMemory(), 4)
	if n.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", n.ShardCount())
	}
	if n.ShardMailboxCapacity() <= 0 {
		t.Fatal("ShardMailboxCapacity must be positive")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n.StartShards(ctx)
	for i := 0; i < 200; i++ {
		n.DispatchData(putEnv(uint64(i+1), fmt.Sprintf("k%d", i), 1))
	}
	for i := 0; i < n.ShardCount(); i++ {
		if d := n.ShardDepth(i); d < 0 || d > n.ShardMailboxCapacity() {
			t.Errorf("shard %d depth %d out of range", i, d)
		}
		if n.ShardTickDurations(i) == nil {
			t.Errorf("shard %d has no tick histogram", i)
		}
	}
	if n.ShardDepth(99) != 0 {
		t.Error("out-of-range shard index must read depth 0")
	}
	n.StopShards()
}

// TestResetMetricsClearsShardCounters: the lab harness resets between
// measurement phases; shard-side counts must reset too.
func TestResetMetricsClearsShardCounters(t *testing.T) {
	n := shardedNode(t, store.NewMemory(), 4)
	n.HandleMessage(context.Background(), putEnv(1, "a", 1))
	if n.Metrics().Get(metrics.PutsServed) != 1 {
		t.Fatal("put not counted")
	}
	n.ResetMetrics()
	if got := n.Metrics().Get(metrics.PutsServed); got != 0 {
		t.Fatalf("PutsServed = %d after ResetMetrics, want 0", got)
	}
}

// TestShardHammer is the race-hammer: concurrent Put/Get/Delete and
// batches dispatched across 8 shards, against a compacting log store,
// while the control loop ticks (anti-entropy digests walk the store)
// and the node finally drains and closes. Run under -race this is the
// proof the shard boundary is sound; -short keeps it in CI scale,
// nightly runs it full.
func TestShardHammer(t *testing.T) {
	before := leakcheck.Snapshot()
	dir, err := os.MkdirTemp("", "shard-hammer-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// Tiny segments and an aggressive live ratio force compaction to
	// churn underneath the shards.
	logStore, err := store.OpenLog(dir, store.LogOptions{
		SegmentMaxBytes:  32 << 10,
		CompactLiveRatio: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	guard := &closeGuardStore{Store: logStore}
	n := shardedNode(t, guard, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n.StartShards(ctx)

	iters := 4000
	if testing.Short() {
		iters = 800
	}

	// Control plane: one goroutine ticking (PSS, anti-entropy, shard
	// route publication) at a hot cadence.
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for {
			select {
			case <-stopTick:
				return
			default:
				n.Tick(ctx)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	val := make([]byte, 256)
	for p := 0; p < 6; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := uint64(p+1)<<40 | uint64(i+1)
				key := fmt.Sprintf("h-%d", i%512) // overlap keys across producers
				var env transport.Envelope
				switch i % 5 {
				case 0, 1:
					env = transport.Envelope{From: 2, To: 1, Msg: &PutRequest{
						ID: gossip.RequestID(id), Key: key, Version: uint64(i + 1),
						Value: val, NoAck: true, TTL: TTLUnset,
					}}
				case 2:
					env = transport.Envelope{From: 2, To: 1, Msg: &GetRequest{
						ID: gossip.RequestID(id), Key: key, Version: store.Latest, TTL: TTLUnset,
					}}
				case 3:
					objs := []store.Object{
						{Key: key, Version: uint64(i + 2), Value: val},
						{Key: fmt.Sprintf("h-%d", (i+7)%512), Version: uint64(i + 2), Value: val},
					}
					env = transport.Envelope{From: 2, To: 1, Msg: &PutBatchRequest{
						ID: gossip.RequestID(id), Objs: objs, NoAck: true, TTL: TTLUnset,
					}}
				default:
					env = transport.Envelope{From: 2, To: 1, Msg: &DeleteRequest{
						ID: gossip.RequestID(id), Key: key, Version: store.Latest,
						NoAck: true, TTL: TTLUnset,
					}}
				}
				n.DispatchData(env)
			}
		}(p)
	}
	wg.Wait()
	close(stopTick)
	tickWG.Wait()
	n.StopShards()
	if guard.putsSeen.Load()+guard.batchSeen.Load() == 0 {
		t.Fatal("hammer stored nothing — the workload never reached the store")
	}
	// Post-drain the store must be quiescent and closable.
	if err := guard.Close(); err != nil {
		t.Fatal(err)
	}
	if late := guard.lateOps.Load(); late != 0 {
		t.Fatalf("%d store operations after Close", late)
	}
	leakcheck.Check(t, before)
}

// TestShardEquivalenceSingleVsMany feeds the same single-node workload
// through 1 shard and 8 shards (external mode both times) and demands
// identical converged store contents — keys, versions and values.
func TestShardEquivalenceSingleVsMany(t *testing.T) {
	run := func(shards int) store.Store {
		st := store.NewMemory()
		n := shardedNode(t, st, shards)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		n.StartShards(ctx)
		// Single-producer backpressure: never outrun a shard's mailbox,
		// so no envelope is dropped and both runs see the same
		// per-key operation order.
		dispatch := func(env transport.Envelope) {
			key, _ := dataShardKey(env.Msg)
			si := shardIndex(key, shards)
			for n.ShardDepth(si) >= n.ShardMailboxCapacity()-1 {
				time.Sleep(100 * time.Microsecond)
			}
			if !n.DispatchData(env) {
				t.Fatal("dispatch declined in external mode")
			}
		}
		for i := 0; i < 3000; i++ {
			key := fmt.Sprintf("eq-%d", i%300)
			var env transport.Envelope
			id := uint64(i + 1)
			switch i % 7 {
			case 6:
				env = transport.Envelope{From: 2, To: 1, Msg: &DeleteRequest{
					ID: gossip.RequestID(id), Key: key, Version: uint64(i / 300), NoAck: true, TTL: TTLUnset,
				}}
			default:
				env = transport.Envelope{From: 2, To: 1, Msg: &PutRequest{
					ID: gossip.RequestID(id), Key: key, Version: uint64(i/300 + 1),
					Value: []byte(key), NoAck: true, TTL: TTLUnset,
				}}
			}
			dispatch(env)
		}
		n.StopShards()
		if n.ShardDropped() != 0 {
			t.Fatalf("%d envelopes dropped despite backpressure", n.ShardDropped())
		}
		return st
	}
	a, b := run(1), run(8)
	if a.Count() != b.Count() {
		t.Fatalf("store contents diverge: 1 shard holds %d versions, 8 shards hold %d", a.Count(), b.Count())
	}
	var diverged bool
	_ = a.ForEach(func(key string, version uint64) bool {
		av, _, okA, _ := a.Get(key, version)
		bv, _, okB, _ := b.Get(key, version)
		if !okA || !okB || string(av) != string(bv) {
			t.Errorf("key %q v%d: 1-shard ok=%v, 8-shard ok=%v", key, version, okA, okB)
			diverged = true
			return false
		}
		return true
	})
	if diverged {
		t.Fatal("sharded and unsharded runs converged to different stores")
	}
}
