package core

import (
	"context"
	"fmt"
	"testing"

	"dataflasks/internal/gossip"
	"dataflasks/internal/metrics"
	"dataflasks/internal/pss"
	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// pssDescriptor shortens test literals.
type pssDescriptor = pss.Descriptor

// capture collects a node's outbound traffic.
type capture struct {
	sent []transport.Envelope
}

func (c *capture) sender(from transport.NodeID) transport.Sender {
	return transport.SenderFunc(func(_ context.Context, to transport.NodeID, msg interface{}) error {
		c.sent = append(c.sent, transport.Envelope{From: from, To: to, Msg: msg})
		return nil
	})
}

func (c *capture) byType(pick func(interface{}) bool) []transport.Envelope {
	var out []transport.Envelope
	for _, env := range c.sent {
		if pick(env.Msg) {
			out = append(out, env)
		}
	}
	return out
}

// staticNode builds a node pinned to a slice via the static slicer so
// routing tests are deterministic and convergence-free.
func staticNode(t *testing.T, id transport.NodeID, k int) (*Node, *capture) {
	t.Helper()
	cap := &capture{}
	n := NewNode(id, Config{
		Slices:           k,
		Slicer:           SlicerStatic,
		SystemSize:       100,
		AntiEntropyEvery: -1,
		Seed:             1,
	}, store.NewMemory(), cap.sender(id))
	return n, cap
}

// findNodeInSlice scans ids until the static slicer puts one in the
// wanted slice.
func findNodeInSlice(t *testing.T, want int32, k int) transport.NodeID {
	t.Helper()
	for id := transport.NodeID(1); id < 10000; id++ {
		if slicing.NewStaticSlicer(id, k).Slice() == want {
			return id
		}
	}
	t.Fatal("no node found for slice")
	return 0
}

// keyForSlice finds a key owned by the wanted slice.
func keyForSlice(t *testing.T, want int32, k int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("key%06d", i)
		if slicing.KeySlice(key, k) == want {
			return key
		}
	}
	t.Fatal("no key found")
	return ""
}

func TestNodeStoresAndAcksInSlicePut(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Key: key, Version: 1,
		Value: []byte("v"), Origin: 0xC0000001, TTL: TTLUnset,
	}})

	if _, _, ok, _ := n.Store().Get(key, 1); !ok {
		t.Fatal("in-slice put not stored")
	}
	acks := cap.byType(func(m interface{}) bool { _, ok := m.(*PutAck); return ok })
	if len(acks) != 1 || acks[0].To != 0xC0000001 {
		t.Fatalf("acks = %+v", acks)
	}
	if n.Metrics().Get(metrics.PutsServed) != 1 {
		t.Error("PutsServed not counted")
	}
}

// failingStore wraps a store whose Put always fails, as a full disk or
// closed engine would.
type failingStore struct {
	store.Store
}

func (f *failingStore) Put(string, uint64, []byte) error {
	return fmt.Errorf("store: disk full")
}

// TestNodeNoAckWhenStoreFails pins the durability contract: a node
// whose local Put failed must not acknowledge the write — an acked put
// that was never stored would let the client count a phantom replica.
func TestNodeNoAckWhenStoreFails(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	cap := &capture{}
	n := NewNode(id, Config{
		Slices:           k,
		Slicer:           SlicerStatic,
		SystemSize:       100,
		AntiEntropyEvery: -1,
		Seed:             1,
	}, &failingStore{Store: store.NewMemory()}, cap.sender(id))
	key := keyForSlice(t, 2, k)

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Key: key, Version: 1,
		Value: []byte("v"), Origin: 0xC0000001, TTL: TTLUnset,
	}})

	if acks := cap.byType(func(m interface{}) bool { _, ok := m.(*PutAck); return ok }); len(acks) != 0 {
		t.Fatalf("failed store Put was acknowledged: %+v", acks)
	}
	if n.Metrics().Get(metrics.PutsServed) != 0 {
		t.Error("failed put counted as served")
	}
}

func TestNodeIntraPutStoresWithoutAck(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Key: key, Version: 1,
		Value: []byte("v"), Origin: 0xC0000001, TTL: 4, Intra: true,
	}})

	// Intra copies ride the accumulation window; the next tick flushes
	// them as one batch append.
	n.Tick(context.Background())
	if _, _, ok, _ := n.Store().Get(key, 1); !ok {
		t.Fatal("intra put not stored after tick")
	}
	if acks := cap.byType(func(m interface{}) bool { _, ok := m.(*PutAck); return ok }); len(acks) != 0 {
		t.Fatalf("intra-phase copy acked: %+v", acks)
	}
	if n.Metrics().Get(metrics.CoalescedPuts) != 1 {
		t.Errorf("CoalescedPuts = %d, want 1", n.Metrics().Get(metrics.CoalescedPuts))
	}
}

// TestNodeCoalescedPutVisibleToGet pins read-your-relayed-writes: a get
// arriving between an intra put and the next tick must flush the
// accumulation window, not miss the object.
func TestNodeCoalescedPutVisibleToGet(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Key: key, Version: 1,
		Value: []byte("v"), Origin: 0xC0000001, TTL: 4, Intra: true,
	}})
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &GetRequest{
		ID: gossip.MakeRequestID(0xC0000001, 2), Key: key, Version: 1,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})

	replies := cap.byType(func(m interface{}) bool { _, ok := m.(*GetReply); return ok })
	if len(replies) != 1 || string(replies[0].Msg.(*GetReply).Value) != "v" {
		t.Fatalf("get did not observe the coalesced put: %+v", replies)
	}
}

// TestNodeCoalesceWindowDedupsAndCapFlushes drives CoalesceMax+1 intra
// puts (distinct request ids, one duplicated object) and checks the cap
// flush plus in-buffer dedup.
func TestNodeCoalesceWindowDedupsAndCapFlushes(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	cap := &capture{}
	n := NewNode(id, Config{
		Slices:           k,
		Slicer:           SlicerStatic,
		SystemSize:       100,
		AntiEntropyEvery: -1,
		CoalesceMax:      4,
		Seed:             1,
	}, store.NewMemory(), cap.sender(id))
	key := keyForSlice(t, 2, k)

	send := func(seq uint32, version uint64) {
		n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
			ID: gossip.MakeRequestID(0xC0000001, seq), Key: key, Version: version,
			Value: []byte("v"), TTL: 2, Intra: true,
		}})
	}
	send(1, 1)
	send(2, 1) // same object under a fresh id (a client retry): deduped
	send(3, 2)
	send(4, 3)
	if n.Store().Count() != 0 {
		t.Fatalf("buffer flushed early: %d objects stored", n.Store().Count())
	}
	send(5, 4) // hits CoalesceMax → flush without waiting for a tick
	if got := n.Store().Count(); got != 4 {
		t.Fatalf("stored %d objects after cap flush, want 4", got)
	}
	if n.Metrics().Get(metrics.CoalescedPuts) != 4 {
		t.Errorf("CoalescedPuts = %d, want 4", n.Metrics().Get(metrics.CoalescedPuts))
	}
}

func TestNodeAppliesBatchViaOnePutBatch(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	cap := &capture{}
	cs := &countingStore{Store: store.NewMemory()}
	n := NewNode(id, Config{
		Slices:           k,
		Slicer:           SlicerStatic,
		SystemSize:       100,
		AntiEntropyEvery: -1,
		Seed:             1,
	}, cs, cap.sender(id))

	objs := make([]store.Object, 0, 3)
	for i := 0; len(objs) < 3; i++ {
		key := fmt.Sprintf("batch%06d", i)
		if slicing.KeySlice(key, k) == 2 {
			objs = append(objs, store.Object{Key: key, Version: 1, Value: []byte("v")})
		}
	}
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutBatchRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Objs: objs,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})

	if cs.batchCalls != 1 || cs.putCalls != 0 {
		t.Fatalf("batch applied via %d PutBatch / %d Put calls, want 1 / 0", cs.batchCalls, cs.putCalls)
	}
	if n.Store().Count() != len(objs) {
		t.Fatalf("stored %d of %d batch objects", n.Store().Count(), len(objs))
	}
	acks := cap.byType(func(m interface{}) bool { _, ok := m.(*PutBatchAck); return ok })
	if len(acks) != 1 || acks[0].To != 0xC0000001 || acks[0].Msg.(*PutBatchAck).Stored != len(objs) {
		t.Fatalf("batch acks = %+v", acks)
	}
	if n.Metrics().Get(metrics.PutsServed) != uint64(len(objs)) {
		t.Errorf("PutsServed = %d", n.Metrics().Get(metrics.PutsServed))
	}

	// A duplicate delivery must not re-apply the batch.
	n.HandleMessage(context.Background(), transport.Envelope{From: 78, To: id, Msg: &PutBatchRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Objs: objs,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})
	if cs.batchCalls != 1 {
		t.Fatalf("duplicate batch re-applied: %d PutBatch calls", cs.batchCalls)
	}
}

// countingStore counts write-path entry points.
type countingStore struct {
	store.Store
	putCalls   int
	batchCalls int
}

func (c *countingStore) Put(key string, version uint64, value []byte) error {
	c.putCalls++
	return c.Store.Put(key, version, value)
}

func (c *countingStore) PutBatch(objs []store.Object) error {
	c.batchCalls++
	return c.Store.PutBatch(objs)
}

func TestNodeRelaysForeignSliceBatch(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 1, k)
	n, cap := staticNode(t, id, k)
	n.Bootstrap([]transport.NodeID{500, 501, 502})
	key := keyForSlice(t, 3, k) // not ours

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutBatchRequest{
		ID:   gossip.MakeRequestID(1, 1),
		Objs: []store.Object{{Key: key, Version: 1, Value: []byte("v")}},
		TTL:  TTLUnset,
	}})
	if n.Store().Count() != 0 {
		t.Fatal("node stored a foreign-slice batch")
	}
	relays := cap.byType(func(m interface{}) bool { _, ok := m.(*PutBatchRequest); return ok })
	if len(relays) == 0 {
		t.Fatal("foreign batch not relayed")
	}
	fwd := relays[0].Msg.(*PutBatchRequest)
	if fwd.TTL == TTLUnset || fwd.TTL == 0 || fwd.Intra {
		t.Errorf("forwarded batch TTL=%d intra=%v", fwd.TTL, fwd.Intra)
	}
}

func TestNodeDeletesAndAcks(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)
	_ = n.Store().Put(key, 1, []byte("old"))
	_ = n.Store().Put(key, 9, []byte("new"))

	// Latest resolves to the newest stored version on this replica.
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &DeleteRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Key: key, Version: store.Latest,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})

	if _, _, ok, _ := n.Store().Get(key, 9); ok {
		t.Fatal("latest version survived the delete")
	}
	if _, _, ok, _ := n.Store().Get(key, 1); !ok {
		t.Fatal("delete removed more than the latest version")
	}
	acks := cap.byType(func(m interface{}) bool { _, ok := m.(*DeleteAck); return ok })
	if len(acks) != 1 || acks[0].To != 0xC0000001 {
		t.Fatalf("delete acks = %+v", acks)
	}
	if n.Metrics().Get(metrics.DeletesServed) != 1 {
		t.Error("DeletesServed not counted")
	}
}

// TestNodeDeleteFlushesCoalescedPut pins ordering: an intra relay put
// buffered in the accumulation window must be applied before a delete
// for the same key, or the later flush would resurrect the object.
func TestNodeDeleteFlushesCoalescedPut(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, _ := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(0xC0000001, 1), Key: key, Version: 3,
		Value: []byte("v"), TTL: 2, Intra: true,
	}})
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &DeleteRequest{
		ID: gossip.MakeRequestID(0xC0000001, 2), Key: key, Version: 3,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})
	n.Tick(context.Background())
	if _, _, ok, _ := n.Store().Get(key, 3); ok {
		t.Fatal("coalesced put resurrected a deleted object")
	}
}

func TestNodeRelaysForeignSliceDelete(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 1, k)
	n, cap := staticNode(t, id, k)
	n.Bootstrap([]transport.NodeID{500, 501})
	key := keyForSlice(t, 3, k)
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &DeleteRequest{
		ID: gossip.MakeRequestID(1, 1), Key: key, Version: 1, TTL: TTLUnset,
	}})
	relays := cap.byType(func(m interface{}) bool { _, ok := m.(*DeleteRequest); return ok })
	if len(relays) == 0 {
		t.Fatal("foreign delete not relayed")
	}
	if acks := cap.byType(func(m interface{}) bool { _, ok := m.(*DeleteAck); return ok }); len(acks) != 0 {
		t.Fatal("off-slice node acked a delete")
	}
}

func TestNodeNoAckSuppressed(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(1, 1), Key: key, Version: 1,
		Origin: 0xC0000001, TTL: TTLUnset, NoAck: true,
	}})
	if acks := cap.byType(func(m interface{}) bool { _, ok := m.(*PutAck); return ok }); len(acks) != 0 {
		t.Fatal("NoAck put acked")
	}
}

func TestNodeRelaysForeignSlicePut(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 1, k)
	n, cap := staticNode(t, id, k)
	// Give the node some view so it has relay targets.
	seeds := make([]transport.NodeID, 0, 8)
	for s := transport.NodeID(500); s < 508; s++ {
		seeds = append(seeds, s)
	}
	n.Bootstrap(seeds)
	key := keyForSlice(t, 3, k) // not ours

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(1, 1), Key: key, Version: 1, TTL: TTLUnset,
	}})

	if _, _, ok, _ := n.Store().Get(key, 1); ok {
		t.Fatal("node stored a foreign-slice object")
	}
	relays := cap.byType(func(m interface{}) bool { _, ok := m.(*PutRequest); return ok })
	if len(relays) == 0 {
		t.Fatal("foreign put not relayed")
	}
	fwd := relays[0].Msg.(*PutRequest)
	if fwd.TTL == TTLUnset || fwd.TTL == 0 {
		t.Errorf("forwarded TTL = %d, want stamped and decremented", fwd.TTL)
	}
	if fwd.Intra {
		t.Error("global relay marked intra")
	}
}

func TestNodeDropsExpiredTTL(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 1, k)
	n, cap := staticNode(t, id, k)
	n.Bootstrap([]transport.NodeID{500, 501})
	key := keyForSlice(t, 3, k)
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(1, 1), Key: key, Version: 1, TTL: 0,
	}})
	if len(cap.sent) != 0 {
		t.Fatalf("expired-TTL request relayed: %+v", cap.sent)
	}
}

func TestNodeSuppressesDuplicates(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)
	req := &PutRequest{
		ID: gossip.MakeRequestID(1, 7), Key: key, Version: 1,
		Origin: 0xC0000001, TTL: TTLUnset,
	}
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: req})
	before := len(cap.sent)
	n.HandleMessage(context.Background(), transport.Envelope{From: 78, To: id, Msg: req})
	if len(cap.sent) != before {
		t.Fatal("duplicate triggered more traffic")
	}
	if n.Metrics().Get(metrics.DuplicatesSuppressed) != 1 {
		t.Error("duplicate not counted")
	}
	if !n.HasSeen(req.ID) {
		t.Error("HasSeen = false")
	}
}

func TestNodeServesGetAndReportsSlice(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)
	_ = n.Store().Put(key, 3, []byte("served"))

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &GetRequest{
		ID: gossip.MakeRequestID(1, 1), Key: key, Version: 3,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})

	replies := cap.byType(func(m interface{}) bool { _, ok := m.(*GetReply); return ok })
	if len(replies) != 1 {
		t.Fatalf("replies = %+v", cap.sent)
	}
	rep := replies[0].Msg.(*GetReply)
	if string(rep.Value) != "served" || rep.Version != 3 || rep.Slice != 2 {
		t.Errorf("reply = %+v", rep)
	}
	if replies[0].To != 0xC0000001 {
		t.Errorf("reply sent to %v", replies[0].To)
	}
	if n.Metrics().Get(metrics.GetsServed) != 1 {
		t.Error("GetsServed not counted")
	}
}

func TestNodeGetLatestVersion(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)
	_ = n.Store().Put(key, 1, []byte("old"))
	_ = n.Store().Put(key, 9, []byte("new"))

	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &GetRequest{
		ID: gossip.MakeRequestID(1, 2), Key: key, Version: store.Latest,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})
	replies := cap.byType(func(m interface{}) bool { _, ok := m.(*GetReply); return ok })
	if len(replies) != 1 || replies[0].Msg.(*GetReply).Version != 9 {
		t.Fatalf("latest reply = %+v", replies)
	}
}

func TestNodeMissingObjectKeepsRequestAlive(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	key := keyForSlice(t, 2, k)

	// No intra view yet → nothing to relay to, but critically: no
	// reply must be sent (a replica without the object stays silent).
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &GetRequest{
		ID: gossip.MakeRequestID(1, 3), Key: key, Version: 1,
		Origin: 0xC0000001, TTL: TTLUnset,
	}})
	if replies := cap.byType(func(m interface{}) bool { _, ok := m.(*GetReply); return ok }); len(replies) != 0 {
		t.Fatal("replica without object replied")
	}
}

func TestNodeMateQueryAnswersWithSelf(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)

	n.HandleMessage(context.Background(), transport.Envelope{From: 88, To: id, Msg: &MateQuery{Slice: 2}})
	replies := cap.byType(func(m interface{}) bool { _, ok := m.(*MateReply); return ok })
	if len(replies) != 1 {
		t.Fatalf("mate replies = %+v", cap.sent)
	}
	mates := replies[0].Msg.(*MateReply).Mates
	found := false
	for _, d := range mates {
		if d.ID == id && d.Slice == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("reply lacks self descriptor: %+v", mates)
	}
}

func TestNodeMateQueryForeignSliceSilentWhenUnknown(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, cap := staticNode(t, id, k)
	n.HandleMessage(context.Background(), transport.Envelope{From: 88, To: id, Msg: &MateQuery{Slice: 3}})
	if len(cap.sent) != 0 {
		t.Fatalf("replied without knowing any slice-3 node: %+v", cap.sent)
	}
}

func TestNodeMateReplyFillsIntraView(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 2, k)
	n, _ := staticNode(t, id, k)
	mate := findNodeInSlice(t, 2, k)
	if mate == id {
		mate = findNextNodeInSlice(t, 2, k, id)
	}
	n.HandleMessage(context.Background(), transport.Envelope{From: 99, To: id, Msg: &MateReply{
		Slice: 2,
		Mates: []pssDescriptor{{ID: mate, Slice: 2}},
	}})
	if n.IntraViewSize() != 1 {
		t.Fatalf("intra view = %d after mate reply", n.IntraViewSize())
	}
	// A reply for a slice we are not in is ignored.
	other := findNodeInSlice(t, 3, k)
	n.HandleMessage(context.Background(), transport.Envelope{From: 99, To: id, Msg: &MateReply{
		Slice: 3,
		Mates: []pssDescriptor{{ID: other, Slice: 3}},
	}})
	if n.IntraViewSize() != 1 {
		t.Fatal("foreign-slice mate reply polluted intra view")
	}
}

func TestDedupSampleMatesRemovesDuplicates(t *testing.T) {
	rng := sim.RNG(3, 3)
	// The same mate known via the intra view and the PSS view must use
	// one reply slot, not two.
	mates := []pssDescriptor{
		{ID: 1, Slice: 2}, {ID: 2, Slice: 2}, {ID: 1, Slice: 2}, {ID: 3, Slice: 2}, {ID: 2, Slice: 2},
	}
	got := dedupSampleMates(mates, 16, rng)
	if len(got) != 3 {
		t.Fatalf("dedup kept %d descriptors, want 3: %+v", len(got), got)
	}
	seen := map[transport.NodeID]bool{}
	for _, d := range got {
		if seen[d.ID] {
			t.Fatalf("duplicate ID %v survived dedup", d.ID)
		}
		seen[d.ID] = true
	}
}

// TestDedupSampleMatesUniform pins the truncation fix: mates[:16] used
// to always favor the head of the candidate list (the responder's own
// view), starving candidates appended later (the PSS view). A uniform
// sample must regularly include tail candidates.
func TestDedupSampleMatesUniform(t *testing.T) {
	const candidates, max = 40, 16
	tailPicks := 0
	for trial := 0; trial < 50; trial++ {
		rng := sim.RNG(uint64(trial), 7)
		mates := make([]pssDescriptor, candidates)
		for i := range mates {
			mates[i] = pssDescriptor{ID: transport.NodeID(i + 1), Slice: 2}
		}
		got := dedupSampleMates(mates, max, rng)
		if len(got) != max {
			t.Fatalf("sampled %d, want %d", len(got), max)
		}
		seen := map[transport.NodeID]bool{}
		for _, d := range got {
			if seen[d.ID] {
				t.Fatalf("duplicate ID %v in sample", d.ID)
			}
			seen[d.ID] = true
			if d.ID > candidates-10 { // one of the 10 tail ("PSS-sourced") candidates
				tailPicks++
			}
		}
	}
	// E[tail picks] = 50 trials * 10 tail * 16/40 = 200; zero means the
	// old head-biased truncation is back.
	if tailPicks < 50 {
		t.Fatalf("tail candidates picked %d times over 50 trials; sampling is not uniform", tailPicks)
	}
}

func findNextNodeInSlice(t *testing.T, want int32, k int, after transport.NodeID) transport.NodeID {
	t.Helper()
	for id := after + 1; id < after+10000; id++ {
		if slicing.NewStaticSlicer(id, k).Slice() == want {
			return id
		}
	}
	t.Fatal("no second node found")
	return 0
}

func TestNodeTickCountsRounds(t *testing.T) {
	n, _ := staticNode(t, 1, 4)
	n.Tick(context.Background())
	n.Tick(context.Background())
	if n.Round() != 2 {
		t.Errorf("Round = %d", n.Round())
	}
}

func TestNodeMetricsCountTraffic(t *testing.T) {
	const k = 4
	id := findNodeInSlice(t, 1, k)
	n, _ := staticNode(t, id, k)
	n.Bootstrap([]transport.NodeID{500, 501, 502})
	key := keyForSlice(t, 3, k)
	n.HandleMessage(context.Background(), transport.Envelope{From: 77, To: id, Msg: &PutRequest{
		ID: gossip.MakeRequestID(1, 1), Key: key, Version: 1, TTL: TTLUnset,
	}})
	m := n.Metrics()
	if m.Get(metrics.MsgRecv) != 1 {
		t.Errorf("MsgRecv = %d", m.Get(metrics.MsgRecv))
	}
	if m.Get(metrics.MsgSent) == 0 || m.Get(metrics.DataSent) == 0 {
		t.Errorf("sends not counted: sent=%d data=%d", m.Get(metrics.MsgSent), m.Get(metrics.DataSent))
	}
	if m.Get(metrics.RequestsRelayed) != 1 {
		t.Errorf("RequestsRelayed = %d", m.Get(metrics.RequestsRelayed))
	}
}

func TestNodeIgnoresUnknownMessages(t *testing.T) {
	n, cap := staticNode(t, 1, 4)
	n.HandleMessage(context.Background(), transport.Envelope{From: 2, To: 1, Msg: "mystery"})
	n.HandleMessage(context.Background(), transport.Envelope{From: 2, To: 1, Msg: &PutAck{}})
	n.HandleMessage(context.Background(), transport.Envelope{From: 2, To: 1, Msg: &GetReply{}})
	if len(cap.sent) != 0 {
		t.Fatal("unknown messages triggered traffic")
	}
}

func TestStampPutAndGet(t *testing.T) {
	n, _ := staticNode(t, 1, 4)
	p := &PutRequest{TTL: TTLUnset}
	n.StampPut(p)
	if p.TTL == TTLUnset || p.TTL == 0 {
		t.Errorf("StampPut TTL = %d", p.TTL)
	}
	g := &GetRequest{TTL: TTLUnset}
	n.StampGet(g)
	if g.TTL == TTLUnset || g.TTL == 0 {
		t.Errorf("StampGet TTL = %d", g.TTL)
	}
	if g.TTL >= p.TTL {
		t.Errorf("get TTL %d not tighter than put TTL %d (reads are coverage-bounded)", g.TTL, p.TTL)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Slices != 10 || cfg.ViewSize != 20 || cfg.PSS != PSSCyclon || cfg.Slicer != SlicerRank {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.AntiEntropyEvery != 10 {
		t.Errorf("AntiEntropyEvery default = %d", cfg.AntiEntropyEvery)
	}
	disabled := Config{AntiEntropyEvery: -1}.withDefaults()
	if disabled.AntiEntropyEvery != 0 {
		t.Errorf("AntiEntropyEvery -1 → %d, want 0 (disabled)", disabled.AntiEntropyEvery)
	}
}
