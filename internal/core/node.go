package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"dataflasks/internal/aggregate"
	"dataflasks/internal/antientropy"
	"dataflasks/internal/bootstrap"
	"dataflasks/internal/gossip"
	"dataflasks/internal/metrics"
	"dataflasks/internal/obs"
	"dataflasks/internal/pss"
	"dataflasks/internal/sim"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// TTLUnset marks a request whose TTL the first DataFlasks node must
// stamp; clients do not know the system size or slice count.
const TTLUnset uint8 = 255

// Node is one DataFlasks host (paper Figure 2): the request Handler
// wired to the Slice Manager (a slicing protocol), the Node Sampling
// service (a PSS) and the Data Store. It is event-driven and
// single-threaded: the owner delivers messages via HandleMessage and
// clock ticks via Tick, either from a discrete-event simulation or from
// one goroutine per node in live deployments.
type Node struct {
	id  transport.NodeID
	cfg Config

	raw    transport.Sender
	pssP   pss.Protocol
	slicer slicing.Slicer
	st     store.Store
	intra  *intraView
	ae     *antientropy.Protocol
	boot   *bootstrap.Protocol // nil when DisableBootstrap
	size   *aggregate.Extrema  // nil when SystemSize is configured

	met   *metrics.NodeMetrics
	rng   *rand.Rand
	round uint64
	attr  float64

	// trace is Config.Trace (nil: tracing off-path). tickDur is the
	// per-tick duration histogram the observability plane exports; it
	// is atomic, so the plane reads it live while the loop observes.
	trace   *obs.Ring
	tickDur metrics.LatencyHistogram

	lastSlice int32

	// shards hold the data plane's per-partition state — dedup cache,
	// coalescing window, relay RNG, counters (see shard.go). external
	// flips true while StartShards-launched goroutines drive them;
	// routeSnap is the control plane's published routing snapshot those
	// goroutines read instead of live protocol state.
	shards    []*dataShard
	external  atomic.Bool
	shardStop chan struct{}
	shardWG   sync.WaitGroup
	routeSnap atomic.Pointer[routeView]
}

// objRef identifies one (key, version) pair in the coalesce buffer.
type objRef struct {
	key     string
	version uint64
}

// NewNode assembles a DataFlasks node. The store is owned by the caller
// (it survives node restarts); the sender is the node's link to the
// fabric.
func NewNode(id transport.NodeID, cfg Config, st store.Store, out transport.Sender) *Node {
	cfg = cfg.withDefaults()
	if st == nil {
		panic("core: NewNode requires a store")
	}
	if out == nil {
		panic("core: NewNode requires a sender")
	}
	if cfg.Control != nil && cfg.IsControl == nil {
		panic("core: Config.Control requires IsControl")
	}
	n := &Node{
		id:        id,
		cfg:       cfg,
		raw:       out,
		st:        st,
		met:       &metrics.NodeMetrics{},
		rng:       sim.RNG(cfg.Seed, uint64(id)),
		trace:     cfg.Trace,
		lastSlice: slicing.SliceUnknown,
	}
	n.shards = newShards(n, cfg)
	n.intra = newIntraView(cfg.IntraViewTarget*2, cfg.IntraStaleRounds)
	// The gauge must be right from round zero: the owner may have
	// restored a snapshot into the store before assembling the node,
	// and waiting for the first Tick would report 0 objects meanwhile.
	n.met.Set(metrics.StoredObjects, uint64(st.Count()))

	attr := cfg.Capacity
	if attr == 0 {
		// Synthesize a stable pseudo-capacity so heterogeneity exists
		// even when the deployer does not measure one.
		attr = sim.RNG(cfg.Seed, uint64(id)^0xcafe).Float64()
	}
	n.attr = attr

	selfInfo := func() (float64, int32) { return attr, n.currentSlice() }
	switch cfg.PSS {
	case PSSNewscast:
		n.pssP = pss.NewNewscast(id, pss.NewscastConfig{
			ViewSize:  cfg.ViewSize,
			SelfAddr:  cfg.AdvertiseAddr,
			OnSendErr: n.countSendErr,
		}, n.sender(metrics.PSSSent), n.rng, selfInfo)
	default:
		n.pssP = pss.NewCyclon(id, pss.CyclonConfig{
			ViewSize:   cfg.ViewSize,
			ShuffleLen: cfg.ShuffleLen,
			SelfAddr:   cfg.AdvertiseAddr,
			OnSendErr:  n.countSendErr,
		}, n.sender(metrics.PSSSent), n.rng, selfInfo)
	}
	n.pssP.SetObserver(n.observeDescriptor)

	partner := func() (transport.NodeID, bool) {
		peers := n.pssP.RandomPeers(1)
		if len(peers) == 0 {
			return 0, false
		}
		return peers[0], true
	}
	switch cfg.Slicer {
	case SlicerSwap:
		n.slicer = slicing.NewSwapSlicer(id, attr,
			slicing.SwapSlicerConfig{Slices: cfg.Slices, OnSendErr: n.countSendErr},
			n.sender(metrics.SliceSent), partner, n.rng)
	case SlicerStatic:
		n.slicer = slicing.NewStaticSlicer(id, cfg.Slices)
	default:
		n.slicer = slicing.NewRankSlicer(id, attr, slicing.RankSlicerConfig{Slices: cfg.Slices})
	}

	if cfg.SystemSize <= 0 {
		n.size = aggregate.NewExtrema(aggregate.ExtremaConfig{OnSendErr: n.countSendErr},
			n.sender(metrics.AggregateSent), partner, n.rng)
	}

	if cfg.AntiEntropyEvery > 0 {
		n.ae = antientropy.New(
			antientropy.Config{
				MaxPush:           cfg.AntiEntropyMaxPush,
				MaxPushBytes:      cfg.AntiEntropyMaxPushBytes,
				RateBytesPerRound: cfg.AntiEntropyRateBytes,
				FullEvery:         cfg.AntiEntropyFullEvery,
				EvictForeign:      cfg.EvictForeign,
			},
			antientropy.Env{
				Store:         st,
				Send:          n.sender(metrics.AntiEntropySent),
				Partner:       func() (transport.NodeID, bool) { return n.intra.Random(n.rng) },
				Slice:         n.currentSlice,
				KeyInSlice:    n.keyInMySlice,
				OnDigestBytes: func(b int) { n.met.Add(metrics.AntiEntropyDigestBytes, uint64(b)) },
				OnPush: func(objs, bytes int) {
					n.met.Add(metrics.AntiEntropyPushedObjects, uint64(objs))
					n.met.Add(metrics.AntiEntropyPushBytes, uint64(bytes))
				},
				OnCorrupt: func(c int) { n.met.Add(metrics.AntiEntropyCorruptSkipped, uint64(c)) },
				OnSendErr: n.countSendErr,
			},
			n.rng,
		)
	}

	if !cfg.DisableBootstrap {
		// Every node serves segments; only a node configured to join
		// drives the fetch state machine. The bootstrap partner is a
		// slice-mate: the intra view is the only peer set whose stores
		// hold our slice's data.
		n.boot = bootstrap.New(
			bootstrap.Config{
				Join:              cfg.Bootstrap,
				RateBytesPerRound: cfg.BootstrapRateBytes,
			},
			bootstrap.Env{
				Store:      st,
				Send:       n.sender(metrics.BootstrapSent),
				Partner:    func() (transport.NodeID, bool) { return n.intra.Random(n.rng) },
				Slice:      n.currentSlice,
				KeyInSlice: n.keyInMySlice,
				OnFetch: func(segment uint64, offset int64) {
					if n.trace != nil {
						n.trace.Add(obs.Event{Kind: obs.TraceBootFetch, Seg: segment, Bytes: uint64(offset)})
					}
				},
				OnSegment: func() {
					n.met.Inc(metrics.BootstrapSegments)
					if n.trace != nil {
						n.trace.Add(obs.Event{Kind: obs.TraceBootSegment})
					}
				},
				OnBytes:         func(b int) { n.met.Add(metrics.BootstrapBytes, uint64(b)) },
				OnChunkRejected: func() { n.met.Inc(metrics.BootstrapChunksRejected) },
				OnSendErr:       n.countSendErr,
			},
			n.rng,
		)
	}
	return n
}

// route picks the fabric for one message: control-plane traffic takes
// the configured Control sender (the datagram fast path in real
// deployments), everything else the main sender.
func (n *Node) route(msg interface{}) transport.Sender {
	if n.cfg.Control != nil && n.cfg.IsControl(msg) {
		return n.cfg.Control
	}
	return n.raw
}

// sender wraps the fabric with message accounting under category and
// per-message control-plane routing.
func (n *Node) sender(cat metrics.Counter) transport.Sender {
	return transport.SenderFunc(func(ctx context.Context, to transport.NodeID, msg interface{}) error {
		n.met.Inc(metrics.MsgSent)
		n.met.Inc(cat)
		err := n.route(msg).Send(ctx, to, msg)
		if err != nil {
			n.met.Inc(metrics.MsgDropped)
		}
		return err
	})
}

// countSendErr feeds every protocol's send-failure hook: failed fabric
// sends are counted (wire_send_errors), never silently discarded.
func (n *Node) countSendErr(err error) {
	n.met.Inc(metrics.WireSendErrors)
	if n.cfg.OnSendErr != nil {
		n.cfg.OnSendErr(err)
	}
}

// ID returns the node's identifier.
func (n *Node) ID() transport.NodeID { return n.id }

// Metrics returns a merged copy of the node's counters: the control
// loop's own plus every data shard's. Harnesses read it after runs;
// the live runtime snapshots it once per tick from the control loop.
// The copy is detached — to zero the node's counters use ResetMetrics.
func (n *Node) Metrics() *metrics.NodeMetrics {
	out := &metrics.NodeMetrics{}
	*out = *n.met
	for _, s := range n.shards {
		s.met.AddTo(out)
	}
	return out
}

// ResetMetrics zeroes the control loop's and every shard's counters
// (harnesses reset between quiesced experiment phases).
func (n *Node) ResetMetrics() {
	n.met.Reset()
	for _, s := range n.shards {
		s.met.Reset()
	}
}

// TickDurations exposes the per-tick duration histogram. Unlike the
// plain counters it is atomic, so the observability plane reads it
// concurrently with the event loop.
func (n *Node) TickDurations() *metrics.LatencyHistogram { return &n.tickDur }

// traceOp journals one traced request's lifecycle step. It is on
// every data-path hop unconditionally, so the disabled cases return
// before an event is even built: tracing off (nil ring) or an
// untraced request (zero id).
func (n *Node) traceOp(kind obs.TraceKind, traceID uint64, key string, bytes, objects int) {
	if n.trace == nil || traceID == 0 {
		return
	}
	n.trace.Add(obs.Event{
		Kind: kind, TraceID: traceID, Key: key,
		Bytes: uint64(bytes), Objects: uint64(objects),
	})
}

// Store exposes the node's local store.
func (n *Node) Store() store.Store { return n.st }

// Slice returns the node's current slice claim.
func (n *Node) Slice() int32 { return n.currentSlice() }

// Attr returns the node's slicing attribute (its capacity).
func (n *Node) Attr() float64 { return n.attr }

// SliceCount returns the node's current slice count k.
func (n *Node) SliceCount() int { return n.slicer.SliceCount() }

// SetSliceCount reconfigures k (replication management, §IV-C).
func (n *Node) SetSliceCount(k int) { n.slicer.SetSliceCount(k) }

// IntraViewSize returns the current intra-slice view size.
func (n *Node) IntraViewSize() int { return n.intra.Len() }

// PSSView returns a copy of the peer-sampling view.
func (n *Node) PSSView() []pss.Descriptor { return n.pssP.View() }

// Round returns how many ticks the node has run.
func (n *Node) Round() uint64 { return n.round }

// HasSeen reports whether the node processed a request with this id
// (observability hook for dissemination experiments). It reads the
// per-shard dedup caches without synchronization, so it is only valid
// while the node is driven inline (simulations) or quiesced.
func (n *Node) HasSeen(id gossip.RequestID) bool {
	for _, s := range n.shards {
		if s.dedup.Contains(id) {
			return true
		}
	}
	return false
}

// SystemSizeEstimate returns the node's working estimate of N.
func (n *Node) SystemSizeEstimate() int { return n.systemSize() }

// Bootstrap seeds the PSS view with initial contacts.
func (n *Node) Bootstrap(seeds []transport.NodeID) {
	n.pssP.Bootstrap(seeds)
	if n.external.Load() {
		n.publishRoute()
	}
}

// BootstrapDone reports whether the startup segment bootstrap finished
// (trivially true when the node was not configured to join, or the
// protocol is disabled).
func (n *Node) BootstrapDone() bool { return n.boot == nil || n.boot.Done() }

// BootstrapFellBack reports whether the segment bootstrap gave up and
// left convergence to object-wise anti-entropy repair.
func (n *Node) BootstrapFellBack() bool { return n.boot != nil && n.boot.FellBack() }

func (n *Node) currentSlice() int32 {
	if n.slicer == nil {
		return slicing.SliceUnknown
	}
	return n.slicer.Slice()
}

func (n *Node) keyInMySlice(key string) bool {
	mine := n.currentSlice()
	return mine != slicing.SliceUnknown && slicing.KeySlice(key, n.slicer.SliceCount()) == mine
}

// observeDescriptor consumes the PSS uniform sample stream: it feeds
// the rank slicer, the fabric's address directory and keeps the
// intra-slice view warm.
func (n *Node) observeDescriptor(d pss.Descriptor) {
	if n.cfg.AddressBook != nil && d.Addr != "" {
		n.cfg.AddressBook.Learn(d.ID, d.Addr)
	}
	n.slicer.Observe(d.ID, d.Attr)
	mine := n.currentSlice()
	if mine == slicing.SliceUnknown || d.Slice == pss.SliceUnknown {
		return
	}
	if d.Slice == mine {
		n.intra.Touch(d, n.round)
	} else {
		// The node advertises another slice now; drop a stale mate entry.
		n.intra.Remove(d.ID)
	}
}

// systemSize returns the configured or estimated N (at least 2).
func (n *Node) systemSize() int {
	if n.cfg.SystemSize > 0 {
		return n.cfg.SystemSize
	}
	if n.size != nil {
		est, _ := n.size.Estimate()
		if est >= 2 {
			return int(est)
		}
	}
	return 2
}

func (n *Node) fanout() int {
	return gossip.Fanout(n.systemSize(), n.cfg.FanoutC)
}

// putTTL covers the whole system: writes must reach every replica of
// the target slice synchronously (unless BoundedPutFlood).
func (n *Node) putTTL() uint8 {
	if n.cfg.BoundedPutFlood {
		return n.getTTL()
	}
	return gossip.TTL(n.systemSize(), n.fanout(), 2)
}

// getTTL covers ~GetCoverageC·k random nodes — just enough that some
// target-slice node is reached w.h.p. (§IV-B).
func (n *Node) getTTL() uint8 {
	k := n.slicer.SliceCount()
	target := int(math.Ceil(n.cfg.GetCoverageC * float64(k)))
	size := n.systemSize()
	if target > size {
		target = size
	}
	return gossip.TTL(target, n.fanout(), 1)
}

// intraTTL bounds the intra-slice flood by the expected slice size.
func (n *Node) intraTTL() uint8 {
	sliceSize := n.systemSize() / n.slicer.SliceCount()
	if sliceSize < 2 {
		sliceSize = 2
	}
	return gossip.TTL(sliceSize, n.cfg.IntraFanout, 2)
}

// Tick runs one gossip round: coalesced-put flush, peer sampling,
// slicing, slice-change bookkeeping, view expiry, mate discovery,
// periodic anti-entropy and the size estimator. ctx bounds every send
// the round makes; it is the owner's lifecycle context, so an
// in-flight round stops dialing the moment the node shuts down.
func (n *Node) Tick(ctx context.Context) {
	tickStart := time.Now()
	n.round++
	if !n.external.Load() {
		// Inline mode: the tick owns the shard states; flush every
		// coalescing window. Externally-run shards flush on their own
		// loops' tickers instead.
		for _, s := range n.shards {
			s.flush()
		}
	}
	if n.trace != nil {
		t0 := time.Now()
		n.pssP.Tick(ctx)
		n.trace.Add(obs.Event{Kind: obs.TraceShuffle, Dur: time.Since(t0)})
	} else {
		n.pssP.Tick(ctx)
	}
	n.slicer.Tick(ctx)

	if cur := n.currentSlice(); cur != n.lastSlice {
		// Slice changed: the old mates are no longer ours.
		n.intra.Clear()
		n.lastSlice = cur
	}
	n.intra.Expire(n.round)
	n.discoverMates(ctx)

	if n.size != nil {
		n.size.Tick(ctx)
	}
	if n.ae != nil && n.cfg.AntiEntropyEvery > 0 && n.round%uint64(n.cfg.AntiEntropyEvery) == 0 {
		if n.trace != nil {
			// Journal the round's repair cost as counter deltas around
			// the tick: the digest bytes charged and objects pushed from
			// this round's exchange start (replies land in later events'
			// deltas only if traced rounds repeat — good enough to see a
			// repair storm in /trace).
			dig0 := n.met.Get(metrics.AntiEntropyDigestBytes)
			obj0 := n.met.Get(metrics.AntiEntropyPushedObjects)
			t0 := time.Now()
			n.ae.Tick(ctx)
			n.trace.Add(obs.Event{Kind: obs.TraceAERound,
				Bytes:   n.met.Get(metrics.AntiEntropyDigestBytes) - dig0,
				Objects: n.met.Get(metrics.AntiEntropyPushedObjects) - obj0,
				Dur:     time.Since(t0)})
		} else {
			n.ae.Tick(ctx)
		}
	}
	if n.boot != nil {
		n.boot.Tick(ctx)
	}
	n.met.Set(metrics.StoredObjects, uint64(n.st.Count()))
	if n.external.Load() {
		n.publishRoute()
	}
	n.tickDur.Observe(time.Since(tickStart))
}

// discoverMates tops up the intra-slice view by querying random peers
// for members of our slice. When slices are scarce (large k) the
// passive PSS stream rarely delivers mates and this active path carries
// the load — the cost regime behind the paper's Figure 4.
func (n *Node) discoverMates(ctx context.Context) {
	mine := n.currentSlice()
	if mine == slicing.SliceUnknown {
		return
	}
	deficit := n.cfg.IntraViewTarget - n.intra.Len()
	if deficit <= 0 {
		return
	}
	queries := deficit
	if queries > n.cfg.DiscoveryMaxQueries {
		queries = n.cfg.DiscoveryMaxQueries
	}
	for _, peer := range n.pssP.RandomPeers(queries) {
		n.met.Inc(metrics.MsgSent)
		n.met.Inc(metrics.DiscoverySent)
		msg := &MateQuery{Slice: mine}
		if err := n.route(msg).Send(ctx, peer, msg); err != nil {
			n.met.Inc(metrics.MsgDropped)
			n.countSendErr(err)
		}
	}
}

// HandleMessage dispatches one delivered message. It must only be
// called from the node's driving loop. ctx bounds any sends the
// handlers make (acks, replies, relays). With externally-run shards
// (StartShards) data-plane messages are forwarded to the owning
// shard's mailbox and everything else — the control plane — is
// handled here, republishing the routing snapshot afterwards.
func (n *Node) HandleMessage(ctx context.Context, env transport.Envelope) {
	if n.DispatchData(env) {
		return // a shard goroutine owns it; counted on delivery there
	}
	if n.external.Load() {
		defer n.publishRoute()
	}
	n.met.Inc(metrics.MsgRecv)
	if n.pssP.Handle(ctx, env.From, env.Msg) {
		return
	}
	if n.slicer.Handle(ctx, env.From, env.Msg) {
		return
	}
	if n.size != nil && n.size.Handle(ctx, env.From, env.Msg) {
		return
	}
	if n.boot != nil {
		if m, ok := env.Msg.(*antientropy.Push); ok && n.boot.FellBack() {
			// After a failed segment bootstrap, repair pushes ARE the
			// recovery path; count what rides it so the fallback is
			// visible in metrics (bootstrap_fallback_objects).
			n.met.Add(metrics.BootstrapFallbackObjects, uint64(len(m.Objects)))
		}
		if n.boot.Handle(ctx, env.From, env.Msg) {
			// Bootstrap chunks ingest objects in bulk between ticks;
			// refresh the gauge so a scrape mid-join sees them.
			n.met.Set(metrics.StoredObjects, uint64(n.st.Count()))
			return
		}
	}
	if n.ae != nil && n.ae.Handle(ctx, env.From, env.Msg) {
		if _, ok := env.Msg.(*antientropy.Push); ok {
			// Repair pushes (including the bootstrap fallback path)
			// change the store outside the put path; keep the gauge
			// honest without waiting for the next tick.
			n.met.Set(metrics.StoredObjects, uint64(n.st.Count()))
		}
		return
	}
	switch m := env.Msg.(type) {
	case *PutRequest, *PutBatchRequest, *GetRequest, *DeleteRequest, *DeleteBatchRequest:
		// Inline mode (DispatchData declined above): run the data
		// handler synchronously on the owning shard's state.
		key, _ := dataShardKey(env.Msg)
		n.handleData(ctx, n.shardFor(key), env.Msg)
	case *MateQuery:
		n.onMateQuery(ctx, env.From, m)
	case *MateReply:
		n.onMateReply(m)
	case *PutAck, *PutBatchAck, *GetReply, *DeleteAck, *DeleteBatchAck:
		// Client-bound traffic that reached a node (stale origin);
		// nothing to do.
	default:
		// Unknown message kinds are ignored: a mixed-version deployment
		// must not crash old nodes.
	}
}

// onPut implements §IV-B routing for writes. Messages are immutable
// (the fabric may deliver one pointer to many recipients): relays work
// on copies.
func (n *Node) onPut(ctx context.Context, s *dataShard, m *PutRequest) {
	if s.dedup.Seen(m.ID) {
		s.met.Inc(metrics.DuplicatesSuppressed)
		return
	}
	mine, k := s.sliceInfo()
	target := slicing.KeySlice(m.Key, k)

	if mine == target {
		if !m.Intra {
			// Entry point into the slice: the object is stored
			// synchronously (the ack must reflect a store that really
			// holds it) and acknowledged — only if the local store
			// really holds the object now; acking a failed Put (disk
			// full, oversized value, closed store) would tell the
			// client a write is replicated when no one stored it — and
			// the intra-slice phase starts either way, since mates may
			// still succeed.
			err := n.st.Put(m.Key, m.Version, m.Value)
			if err == nil {
				s.met.Inc(metrics.PutsServed)
				s.traceOp(obs.TracePutApply, m.TraceID, m.Key, len(m.Value), 1)
				if !m.NoAck && m.Origin != 0 {
					n.learnOrigin(m.Origin, m.OriginAddr)
					s.sendData(ctx, m.Origin, &PutAck{ID: m.ID, Key: m.Key, Version: m.Version})
				}
			}
			s.traceOp(obs.TracePutRelay, m.TraceID, m.Key, 0, 0)
			fwd := *m
			fwd.Intra = true
			fwd.TTL = s.intraTTL()
			s.relayIntra(ctx, &fwd)
			return
		}
		// Intra-phase copy: no ack obligation, so the write can ride
		// the accumulation window and land as part of one batch append.
		s.traceOp(obs.TracePutApply, m.TraceID, m.Key, len(m.Value), 1)
		s.coalescePut(m.Key, m.Version, m.Value)
		if m.TTL > 0 {
			s.traceOp(obs.TracePutRelay, m.TraceID, m.Key, 0, 0)
			fwd := *m
			fwd.TTL--
			s.relayIntra(ctx, &fwd)
		}
		return
	}

	if m.Intra {
		// A stale intra-view pointed at us after we changed slice; the
		// epidemic redundancy inside the slice covers for the loss.
		return
	}
	ttl := m.TTL
	if ttl == TTLUnset {
		ttl = s.putTTL() // first hop from a client: stamp the budget
	}
	s.traceOp(obs.TracePutRelay, m.TraceID, m.Key, 0, 0)
	s.relayGlobal(ctx, ttl, func(next uint8) interface{} {
		fwd := *m
		fwd.TTL = next
		return &fwd
	})
}

// onPutBatch routes a multi-object write exactly like onPut, but a
// target-slice node applies the whole batch in one store.PutBatch call.
func (n *Node) onPutBatch(ctx context.Context, s *dataShard, m *PutBatchRequest) {
	if s.dedup.Seen(m.ID) {
		s.met.Inc(metrics.DuplicatesSuppressed)
		return
	}
	if len(m.Objs) == 0 {
		return
	}
	mine, k := s.sliceInfo()
	target := slicing.KeySlice(m.Objs[0].Key, k)

	if mine == target {
		// Flush buffered relay puts first so the store applies writes
		// in arrival order.
		s.flush()
		err := n.st.PutBatch(m.Objs)
		if err == nil {
			s.met.Add(metrics.PutsServed, uint64(len(m.Objs)))
			s.traceOp(obs.TracePutApply, m.TraceID, m.Objs[0].Key, 0, len(m.Objs))
		}
		if !m.Intra {
			if err == nil && !m.NoAck && m.Origin != 0 {
				n.learnOrigin(m.Origin, m.OriginAddr)
				s.sendData(ctx, m.Origin, &PutBatchAck{ID: m.ID, Stored: len(m.Objs)})
			}
			s.traceOp(obs.TracePutRelay, m.TraceID, m.Objs[0].Key, 0, len(m.Objs))
			fwd := *m
			fwd.Intra = true
			fwd.TTL = s.intraTTL()
			s.relayIntra(ctx, &fwd)
			return
		}
		if m.TTL > 0 {
			s.traceOp(obs.TracePutRelay, m.TraceID, m.Objs[0].Key, 0, len(m.Objs))
			fwd := *m
			fwd.TTL--
			s.relayIntra(ctx, &fwd)
		}
		return
	}

	if m.Intra {
		return
	}
	ttl := m.TTL
	if ttl == TTLUnset {
		ttl = s.putTTL() // batches are writes: full-coverage budget
	}
	s.traceOp(obs.TracePutRelay, m.TraceID, m.Objs[0].Key, 0, len(m.Objs))
	s.relayGlobal(ctx, ttl, func(next uint8) interface{} {
		fwd := *m
		fwd.TTL = next
		return &fwd
	})
}

// onDelete routes a delete like a write (the whole target slice must
// apply it). Version store.Latest is resolved independently by each
// replica's store, mirroring Get.
func (n *Node) onDelete(ctx context.Context, s *dataShard, m *DeleteRequest) {
	if s.dedup.Seen(m.ID) {
		s.met.Inc(metrics.DuplicatesSuppressed)
		return
	}
	mine, k := s.sliceInfo()
	target := slicing.KeySlice(m.Key, k)

	if mine == target {
		// A buffered relay put for this key must be applied before the
		// delete, or the flush would resurrect the object.
		s.flush()
		existed, err := n.applyDelete(m.Key, m.Version)
		if err == nil && existed {
			s.met.Inc(metrics.DeletesServed)
			s.traceOp(obs.TraceDeleteApply, m.TraceID, m.Key, 0, 1)
		}
		if !m.Intra {
			if err == nil && !m.NoAck && m.Origin != 0 {
				n.learnOrigin(m.Origin, m.OriginAddr)
				s.sendData(ctx, m.Origin, &DeleteAck{ID: m.ID, Key: m.Key, Version: m.Version})
			}
			s.traceOp(obs.TraceDeleteRelay, m.TraceID, m.Key, 0, 0)
			fwd := *m
			fwd.Intra = true
			fwd.TTL = s.intraTTL()
			s.relayIntra(ctx, &fwd)
			return
		}
		if m.TTL > 0 {
			s.traceOp(obs.TraceDeleteRelay, m.TraceID, m.Key, 0, 0)
			fwd := *m
			fwd.TTL--
			s.relayIntra(ctx, &fwd)
		}
		return
	}

	if m.Intra {
		return
	}
	ttl := m.TTL
	if ttl == TTLUnset {
		ttl = s.putTTL() // deletes are writes: full-coverage budget
	}
	s.traceOp(obs.TraceDeleteRelay, m.TraceID, m.Key, 0, 0)
	s.relayGlobal(ctx, ttl, func(next uint8) interface{} {
		fwd := *m
		fwd.TTL = next
		return &fwd
	})
}

// onDeleteBatch routes a multi-object delete exactly like onDelete, but
// a target-slice node applies the whole batch in one pass over its
// store. The ack carries how many items named objects this replica
// really held, which is what a Redis-style multi-key DEL reports.
func (n *Node) onDeleteBatch(ctx context.Context, s *dataShard, m *DeleteBatchRequest) {
	if s.dedup.Seen(m.ID) {
		s.met.Inc(metrics.DuplicatesSuppressed)
		return
	}
	if len(m.Items) == 0 {
		return
	}
	mine, k := s.sliceInfo()
	target := slicing.KeySlice(m.Items[0].Key, k)

	if mine == target {
		// Buffered relay puts must land first, or the flush would
		// resurrect objects this batch deletes.
		s.flush()
		applied, firstErr := n.applyDeleteBatch(m.Items)
		s.met.Add(metrics.DeletesServed, uint64(applied))
		s.traceOp(obs.TraceDeleteApply, m.TraceID, m.Items[0].Key, 0, applied)
		if !m.Intra {
			if firstErr == nil && !m.NoAck && m.Origin != 0 {
				n.learnOrigin(m.Origin, m.OriginAddr)
				s.sendData(ctx, m.Origin, &DeleteBatchAck{ID: m.ID, Applied: applied})
			}
			s.traceOp(obs.TraceDeleteRelay, m.TraceID, m.Items[0].Key, 0, len(m.Items))
			fwd := *m
			fwd.Intra = true
			fwd.TTL = s.intraTTL()
			s.relayIntra(ctx, &fwd)
			return
		}
		if m.TTL > 0 {
			s.traceOp(obs.TraceDeleteRelay, m.TraceID, m.Items[0].Key, 0, len(m.Items))
			fwd := *m
			fwd.TTL--
			s.relayIntra(ctx, &fwd)
		}
		return
	}

	if m.Intra {
		return
	}
	ttl := m.TTL
	if ttl == TTLUnset {
		ttl = s.putTTL() // batch deletes are writes: full-coverage budget
	}
	s.traceOp(obs.TraceDeleteRelay, m.TraceID, m.Items[0].Key, 0, len(m.Items))
	s.relayGlobal(ctx, ttl, func(next uint8) interface{} {
		fwd := *m
		fwd.TTL = next
		return &fwd
	})
}

// applyDelete removes (key, version) from the local store and reports
// whether anything actually existed. Version store.Latest removes the
// newest stored version; store.AllVersions expands to every stored
// version of the key (whole-key removal — engines never see the
// sentinel; the expansion rides one store.DeleteBatch, so a key with
// many versions still pays one group-commit wait).
func (n *Node) applyDelete(key string, version uint64) (existed bool, err error) {
	if version != store.AllVersions {
		return n.st.Delete(key, version)
	}
	vs, err := n.st.Versions(key)
	if err != nil || len(vs) == 0 {
		return false, err
	}
	dels := make([]store.Deletion, len(vs))
	for i, v := range vs {
		dels[i] = store.Deletion{Key: key, Version: v}
	}
	removed, err := n.st.DeleteBatch(dels)
	for _, e := range removed {
		if e {
			existed = true
		}
	}
	return existed, err
}

// applyDeleteBatch expands a wire batch (AllVersions items become one
// concrete deletion per stored version) and applies it as ONE
// store.DeleteBatch call: one lock acquisition and, in the log engine,
// one group-commit fsync for the whole batch — mirroring how batch
// puts land. applied counts the ITEMS that named at least one object
// this replica really held (what DeleteBatchAck reports).
func (n *Node) applyDeleteBatch(items []DeleteItem) (applied int, firstErr error) {
	dels := make([]store.Deletion, 0, len(items))
	itemOf := make([]int, 0, len(items))
	for i, it := range items {
		if it.Version != store.AllVersions {
			dels = append(dels, store.Deletion{Key: it.Key, Version: it.Version})
			itemOf = append(itemOf, i)
			continue
		}
		vs, err := n.st.Versions(it.Key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, v := range vs {
			dels = append(dels, store.Deletion{Key: it.Key, Version: v})
			itemOf = append(itemOf, i)
		}
	}
	removed, err := n.st.DeleteBatch(dels)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	itemHit := make(map[int]bool, len(items))
	for j, e := range removed {
		if e && !itemHit[itemOf[j]] {
			itemHit[itemOf[j]] = true
			applied++
		}
	}
	return applied, firstErr
}

// onGet implements §IV-B routing for reads.
func (n *Node) onGet(ctx context.Context, s *dataShard, m *GetRequest) {
	if s.dedup.Seen(m.ID) {
		s.met.Inc(metrics.DuplicatesSuppressed)
		return
	}
	mine, k := s.sliceInfo()
	target := slicing.KeySlice(m.Key, k)

	if mine == target {
		// Serve reads against everything received, including puts still
		// sitting in the accumulation window.
		s.flush()
		val, actual, ok, err := n.st.Get(m.Key, m.Version)
		if err == nil && ok {
			s.met.Inc(metrics.GetsServed)
			s.traceOp(obs.TraceGetServe, m.TraceID, m.Key, len(val), 1)
			n.learnOrigin(m.Origin, m.OriginAddr)
			s.sendData(ctx, m.Origin, &GetReply{
				ID: m.ID, Key: m.Key, Version: actual, Value: val, Slice: mine,
			})
			return
		}
		// We are a replica but do not hold it (fresh in the slice):
		// keep the request alive among the mates.
		s.traceOp(obs.TraceGetRelay, m.TraceID, m.Key, 0, 0)
		fwd := *m
		if !m.Intra {
			fwd.Intra = true
			fwd.TTL = s.intraTTL()
		} else if m.TTL == 0 {
			return
		} else {
			fwd.TTL--
		}
		s.relayIntra(ctx, &fwd)
		return
	}

	if m.Intra {
		return
	}
	ttl := m.TTL
	if ttl == TTLUnset {
		ttl = s.getTTL() // first hop from a client: stamp the budget
	}
	s.traceOp(obs.TraceGetRelay, m.TraceID, m.Key, 0, 0)
	s.relayGlobal(ctx, ttl, func(next uint8) interface{} {
		fwd := *m
		fwd.TTL = next
		return &fwd
	})
}

// learnOrigin teaches the fabric how to dial a reply's destination.
func (n *Node) learnOrigin(origin transport.NodeID, addr string) {
	if n.cfg.AddressBook != nil && addr != "" {
		n.cfg.AddressBook.Learn(origin, addr)
	}
}

// maxMateReply bounds descriptors per MateReply.
const maxMateReply = 16

func (n *Node) onMateQuery(ctx context.Context, from transport.NodeID, m *MateQuery) {
	var mates []pss.Descriptor
	if n.currentSlice() == m.Slice {
		attr, slice := float64(0), m.Slice
		if rs, ok := n.slicer.(*slicing.RankSlicer); ok {
			attr = rs.Attr()
		}
		mates = append(mates, pss.Descriptor{ID: n.id, Age: 0, Attr: attr, Slice: slice})
		// Our own intra view is the best source for the querier.
		mates = append(mates, n.intra.Descriptors()...)
	}
	for _, d := range n.pssP.View() {
		if d.Slice == m.Slice {
			mates = append(mates, d)
		}
	}
	// The same mate can sit in both the intra view and the PSS view;
	// dedup so the reply never wastes a slot, and truncate by uniform
	// sampling so PSS-sourced candidates (always appended last) are not
	// systematically starved out of the reply.
	mates = dedupSampleMates(mates, maxMateReply, n.rng)
	if len(mates) == 0 {
		return
	}
	n.met.Inc(metrics.MsgSent)
	n.met.Inc(metrics.DiscoverySent)
	reply := &MateReply{Slice: m.Slice, Mates: mates}
	if err := n.route(reply).Send(ctx, from, reply); err != nil {
		n.met.Inc(metrics.MsgDropped)
		n.countSendErr(err)
	}
}

// dedupSampleMates drops duplicate descriptors by ID (first occurrence
// wins) and, when more than max remain, keeps a uniform random sample
// so no source is favored by its position in the slice.
func dedupSampleMates(mates []pss.Descriptor, max int, rng *rand.Rand) []pss.Descriptor {
	seen := make(map[transport.NodeID]bool, len(mates))
	uniq := mates[:0]
	for _, d := range mates {
		if seen[d.ID] {
			continue
		}
		seen[d.ID] = true
		uniq = append(uniq, d)
	}
	if len(uniq) <= max {
		return uniq
	}
	for i := 0; i < max; i++ {
		j := i + rng.IntN(len(uniq)-i)
		uniq[i], uniq[j] = uniq[j], uniq[i]
	}
	return uniq[:max]
}

func (n *Node) onMateReply(m *MateReply) {
	if m.Slice != n.currentSlice() {
		return // we moved on since asking
	}
	for _, d := range m.Mates {
		if d.ID == n.id {
			continue
		}
		if n.cfg.AddressBook != nil && d.Addr != "" {
			n.cfg.AddressBook.Learn(d.ID, d.Addr)
		}
		n.intra.Touch(d, n.round)
	}
}

// StampPut prepares a client-originated put for injection at this node
// (used by harnesses that bypass the client library).
func (n *Node) StampPut(m *PutRequest) {
	if m.TTL == TTLUnset {
		m.TTL = n.putTTL()
	}
}

// StampGet mirrors StampPut for reads.
func (n *Node) StampGet(m *GetRequest) {
	if m.TTL == TTLUnset {
		m.TTL = n.getTTL()
	}
}

// String describes the node for logs.
func (n *Node) String() string {
	return fmt.Sprintf("%s[slice=%d/%d store=%d]", n.id, n.currentSlice(), n.slicer.SliceCount(), n.st.Count())
}
